(* Telemetry recorder semantics (push/pull, exports, sparklines) and
   the invariant health monitor: a sound backbone passes every probe,
   tightened thresholds surface violations, and violations fire typed
   trace alerts that survive the Chrome round-trip. *)

module T = Obs.Telemetry

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let deployment seed n radius =
  let rng = Wireless.Rand.create seed in
  fst
    (Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
       ~max_attempts:2000)

let render f x =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt x;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_telemetry_pull_probes () =
  let t = T.create () in
  let tick = ref 0. in
  T.register t "tick" (fun () ->
      tick := !tick +. 1.;
      !tick);
  T.register t "const" (fun () -> 7.);
  T.sample t ~round:0;
  T.sample t ~round:1;
  T.sample t ~round:2;
  Alcotest.(check (list int)) "rounds" [ 0; 1; 2 ] (T.rounds t);
  Alcotest.(check (list (pair int (float 0.))))
    "pull series" [ (0, 1.); (1, 2.); (2, 3.) ] (T.series t "tick");
  Alcotest.(check (option (float 0.))) "last" (Some 7.) (T.last t "const");
  Alcotest.(check (list string)) "names sorted" [ "const"; "tick" ] (T.names t)

let test_telemetry_push_and_sketch () =
  let t = T.create () in
  for r = 0 to 99 do
    T.record t ~round:r "v" (float_of_int r)
  done;
  checki "one hundred rounds" 100 (List.length (T.rounds t));
  (match T.sketch t "v" with
  | None -> Alcotest.fail "sketch missing"
  | Some sk ->
    checki "sketch fed" 100 (Obs.Sketch.count sk);
    check "median near 50" true
      (abs_float (Obs.Sketch.quantile sk 0.5 -. 49.5) < 2.));
  check "unknown probe" true (T.series t "nope" = [] && T.sketch t "nope" = None)

let test_telemetry_jsonl_roundtrip () =
  let t = T.create () in
  T.record t ~round:0 "b" 1.5;
  T.record t ~round:0 "a" 0.125;
  T.record t ~round:3 "a" (-7.25);
  T.record t ~round:3 "b" 1e-17;
  let rows = T.read_jsonl (render T.write_jsonl t) in
  Alcotest.(check (list (pair int (list (pair string (float 0.))))))
    "jsonl round-trips, names sorted within a round"
    [ (0, [ ("a", 0.125); ("b", 1.5) ]); (3, [ ("a", -7.25); ("b", 1e-17) ]) ]
    rows

let test_telemetry_csv () =
  let t = T.create () in
  T.record t ~round:0 "b" 2.;
  T.record t ~round:1 "a" 1.;
  T.record t ~round:1 "b" 3.;
  let out = render T.write_csv t in
  let lines =
    String.split_on_char '\n' (String.trim out) |> List.map String.trim
  in
  Alcotest.(check (list string))
    "sorted header, empty cell for the missing value"
    [ "round,a,b"; "0,,2"; "1,1,3" ]
    lines

let test_sparkline () =
  let bars = T.sparkline [ 0.; 1.; 2.; 3. ] in
  (* four glyphs, three bytes each, first lowest and last highest *)
  checki "four glyphs" 12 (String.length bars);
  check "starts low" true (String.sub bars 0 3 = "\xe2\x96\x81");
  check "ends high" true (String.sub bars 9 3 = "\xe2\x96\x88");
  check "empty series" true (T.sparkline [] = "");
  check "nan-only series" true (T.sparkline [ nan; nan ] = "");
  Alcotest.(check string)
    "constant series is mid-height"
    "\xe2\x96\x84\xe2\x96\x84"
    (T.sparkline [ 5.; 5. ])

(* ------------------------------------------------------------------ *)
(* Monitor                                                             *)
(* ------------------------------------------------------------------ *)

let built_backbone () =
  let pts = deployment 2002L 60 60. in
  Core.Backbone.build pts ~radius:60.

let test_monitor_healthy () =
  let bb = built_backbone () in
  let mon = Core.Monitor.create ~stretch_sources:6 ~seed:1L () in
  for r = 1 to 3 do
    let vs = Core.Monitor.observe mon ~round:r bb in
    check "no violations on a sound backbone" true (vs = [])
  done;
  check "healthy" true (Core.Monitor.healthy mon);
  check "no violations accumulated" true (Core.Monitor.violations mon = []);
  let t = Core.Monitor.telemetry mon in
  Alcotest.(check (list int)) "three rounds recorded" [ 1; 2; 3 ] (T.rounds t);
  List.iter
    (fun (probe, _) ->
      checki (probe ^ " recorded every round") 3
        (List.length (T.series t probe)))
    (Core.Monitor.invariants mon);
  check "gauges recorded too" true
    (List.length (T.series t "backbone_nodes") = 3
    && List.length (T.series t "gc_heap_words") = 3);
  (* extra values land under the same round *)
  let _ =
    Core.Monitor.observe mon ~round:4 ~extra:[ ("links_broken", 2.) ] bb
  in
  Alcotest.(check (option (float 0.)))
    "extra recorded" (Some 2.) (T.last t "links_broken")

let test_monitor_violation_injection () =
  let bb = built_backbone () in
  let th = { Core.Monitor.default_thresholds with max_degree = 0. } in
  let mon = Core.Monitor.create ~thresholds:th ~stretch_sources:4 () in
  let vs = Core.Monitor.observe mon ~round:7 bb in
  check "not healthy" true (not (Core.Monitor.healthy mon));
  match
    List.find_opt (fun v -> v.Core.Monitor.v_probe = "deg_max") vs
  with
  | None -> Alcotest.fail "deg_max violation not raised"
  | Some v ->
    checki "round carried" 7 v.Core.Monitor.v_round;
    Alcotest.(check (float 0.)) "limit carried" 0. v.Core.Monitor.v_limit;
    check "value above limit" true (v.Core.Monitor.v_value > 0.);
    check "witness node implicated" true
      (v.Core.Monitor.v_node >= 0
      && v.Core.Monitor.v_node < Array.length bb.Core.Backbone.points);
    check "also in the accumulated list" true
      (List.mem v (Core.Monitor.violations mon))

let test_monitor_stretch_gate () =
  (* an absurd stretch limit must trip the sampled-stretch probes *)
  let bb = built_backbone () in
  let th =
    { Core.Monitor.default_thresholds with
      max_len_stretch = 0.5; max_hop_stretch = 0.5 }
  in
  let mon = Core.Monitor.create ~thresholds:th ~stretch_sources:4 () in
  let vs = Core.Monitor.observe mon ~round:0 bb in
  let probes = List.map (fun v -> v.Core.Monitor.v_probe) vs in
  check "len gate fired" true (List.mem "len_stretch_max" probes);
  check "hop gate fired" true (List.mem "hop_stretch_max" probes)

let test_monitor_alert_trace () =
  let bb = built_backbone () in
  let th = { Core.Monitor.default_thresholds with max_degree = 0. } in
  let mon = Core.Monitor.create ~thresholds:th ~stretch_sources:4 () in
  Obs.Trace.start ();
  let vs = Core.Monitor.observe mon ~round:5 bb in
  Obs.Trace.stop ();
  check "violation seen" true (vs <> []);
  let events = Obs.Trace.events () in
  let alerts =
    List.filter_map
      (fun e ->
        match e.Obs.Trace.payload with
        | Obs.Trace.Alert { round; probe; value; limit; node } ->
          Some (round, probe, value, limit, node)
        | _ -> None)
      events
  in
  (match
     List.find_opt (fun (r, p, _, _, _) -> r = 5 && p = "deg_max") alerts
   with
  | None -> Alcotest.fail "no deg_max alert event recorded"
  | Some (_, _, value, limit, node) ->
    check "alert payload consistent" true
      (value > limit && node >= 0));
  (* the alert survives the Chrome export round-trip *)
  let parsed =
    Obs.Trace.read_chrome
      (render (fun fmt evs -> Obs.Trace.write_chrome fmt evs) events)
  in
  check "chrome round-trip preserves alerts" true (parsed = events)

let suites =
  [
    ( "telemetry",
      [
        Alcotest.test_case "pull probes" `Quick test_telemetry_pull_probes;
        Alcotest.test_case "push + sketch" `Quick
          test_telemetry_push_and_sketch;
        Alcotest.test_case "jsonl round-trip" `Quick
          test_telemetry_jsonl_roundtrip;
        Alcotest.test_case "csv export" `Quick test_telemetry_csv;
        Alcotest.test_case "sparkline" `Quick test_sparkline;
      ] );
    ( "monitor",
      [
        Alcotest.test_case "healthy backbone passes" `Quick
          test_monitor_healthy;
        Alcotest.test_case "violation injection" `Quick
          test_monitor_violation_injection;
        Alcotest.test_case "stretch gates" `Quick test_monitor_stretch_gate;
        Alcotest.test_case "alerts reach the trace" `Quick
          test_monitor_alert_trace;
      ] );
  ]
