(* Parallel-seeded side of the fixture: a Pool.parallel_for callback
   whose chain reaches Random / a wall clock / shared mutable state,
   so the retargeted interprocedural rules (and E001/E002) also fire
   on this tree.  Never built. *)

let hits = ref 0

let noise () = Random.float 1.0 (* D001, via the chain below *)

let jitter x =
  incr hits (* M001: shared toplevel ref *) ;
  x +. noise ()

let step u =
  print_endline "step" (* E001: blocking I/O, no guard on the chain *) ;
  if u < 0.0 then failwith "negative" (* E002: no handler on the chain *) ;
  jitter u

let run pool xs = Netgraph.Pool.parallel_for pool ~n:(Array.length xs) (fun i -> step xs.(i))

let cold () = Random.bits () (* not reachable from any seed: must NOT fire *)
