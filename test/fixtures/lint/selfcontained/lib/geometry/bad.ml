(* Deliberately rule-breaking module used by the dune runtest smoke to
   check that spanner_lint exits 1 on a dirty tree.  One violation per
   rule family (plus a missing .mli for H001); never built. *)

let cache = Hashtbl.create 16 (* M001: toplevel mutable state *)

let pick xs =
  let i = Random.int (List.length xs) (* D001 *) in
  List.nth xs i

let total tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] (* D002: order leaks *)

let degenerate x = x = 0. (* F002 *)

let cmp_weights (a : float) b = compare a b (* F001 *)

let stamp () = Unix.gettimeofday () (* D003 *)

let boom () = assert false

let coerce (x : int) : float = Obj.magic x (* H002 *)
