(* End-to-end integration: the full pipeline on fixed seeds, the
   experiment harness, and cross-structure consistency. *)

module G = Netgraph.Graph

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let build seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  Core.Backbone.build pts ~radius

let test_pipeline_structures () =
  let bb = build 400L 80 50. in
  let structures = Core.Backbone.structures bb in
  checki "ten structures" 10 (List.length structures);
  let names = List.map (fun (n, _, _) -> n) structures in
  Alcotest.(check (list string))
    "table-one order"
    [
      "UDG"; "RNG"; "GG"; "LDel"; "CDS"; "CDS'"; "ICDS"; "ICDS'";
      "LDel(ICDS)"; "LDel(ICDS')";
    ]
    names;
  (* every structure is a subgraph of the UDG except the primed ones
     which add only UDG edges anyway *)
  List.iter
    (fun (name, g, _) ->
      check (name ^ " within UDG") true (G.is_subgraph g bb.Core.Backbone.udg))
    structures

let test_sparseness () =
  (* every derived structure has O(n) edges: at most 6n here, versus
     the UDG's potentially quadratic count *)
  let bb = build 401L 100 60. in
  let n = 100 in
  List.iter
    (fun (name, g, _) ->
      if name <> "UDG" then
        check (name ^ " sparse") true (G.edge_count g <= 6 * n))
    (Core.Backbone.structures bb)

let test_quality_rows () =
  let bb = build 402L 70 50. in
  let rows = Core.Quality.rows bb in
  checki "ten rows" 10 (List.length rows);
  List.iter
    (fun (r : Core.Quality.row) ->
      check (r.Core.Quality.name ^ " has degrees") true
        (r.Core.Quality.deg_avg >= 0.);
      match r.Core.Quality.name with
      | "CDS" | "ICDS" | "LDel(ICDS)" ->
        check "backbone rows have no stretch" true
          (r.Core.Quality.len_avg = None)
      | "UDG" ->
        check "UDG stretch is 1" true
          (r.Core.Quality.len_avg = Some 1. && r.Core.Quality.hop_max = Some 1.)
      | _ ->
        check "spanning rows have stretch" true
          (r.Core.Quality.len_avg <> None))
    rows

let test_quality_aggregate () =
  let rows1 = Core.Quality.rows (build 403L 50 50.) in
  let rows2 = Core.Quality.rows (build 404L 50 50.) in
  let aggs = Core.Quality.aggregate [ rows1; rows2 ] in
  checki "ten aggregates" 10 (List.length aggs);
  List.iteri
    (fun i (a : Core.Quality.agg) ->
      let r1 = List.nth rows1 i and r2 = List.nth rows2 i in
      check "max is max" true
        (a.Core.Quality.a_deg_max
        = max r1.Core.Quality.deg_max r2.Core.Quality.deg_max);
      check "avg is mean" true
        (Float.abs
           (a.Core.Quality.a_deg_avg
           -. ((r1.Core.Quality.deg_avg +. r2.Core.Quality.deg_avg) /. 2.))
        < 1e-9))
    aggs

let test_experiments_table1_quick () =
  let cfg = { Core.Experiments.quick with instances = 2 } in
  let aggs = Core.Experiments.table1 ~cfg ~n:40 ~radius:60. () in
  checki "ten structures" 10 (List.length aggs);
  let udg = List.hd aggs in
  check "first row is UDG" true (udg.Core.Quality.a_name = "UDG");
  check "UDG stretch 1" true (udg.Core.Quality.a_len_max = Some 1.)

let test_experiments_sweep_quick () =
  let cfg = { Core.Experiments.quick with instances = 2 } in
  let series = Core.Experiments.degree_vs_n ~cfg ~radius:60. ~ns:[ 20; 30 ] () in
  checki "twelve curves" 12 (List.length series);
  List.iter
    (fun (s : Core.Experiments.series) ->
      checki "two points each" 2 (List.length s.Core.Experiments.points))
    series;
  (* determinism: the same sweep twice gives identical numbers *)
  let series2 = Core.Experiments.degree_vs_n ~cfg ~radius:60. ~ns:[ 20; 30 ] () in
  check "deterministic" true (series = series2)

let test_experiments_comm_quick () =
  let cfg = { Core.Experiments.quick with instances = 2 } in
  let series = Core.Experiments.comm_vs_n ~cfg ~radius:60. ~ns:[ 20; 30 ] () in
  checki "six curves" 6 (List.length series);
  (* communication cost per node is a small constant *)
  List.iter
    (fun (s : Core.Experiments.series) ->
      List.iter
        (fun (_, v) -> check "bounded" true (v > 0. && v < 150.))
        s.Core.Experiments.points)
    series

let test_ldel_icds'_equals_planar_plus_links () =
  let bb = build 405L 70 50. in
  (* LDel(ICDS') = PLDel(ICDS) + dominatee-dominator links *)
  G.iter_edges bb.Core.Backbone.ldel_icds' (fun u v ->
      let in_planar = G.has_edge bb.Core.Backbone.ldel_icds_g u v in
      let roles = bb.Core.Backbone.cds.Core.Cds.roles in
      let dominatee_link =
        (roles.(u) = Core.Mis.Dominatee && roles.(v) = Core.Mis.Dominator)
        || (roles.(v) = Core.Mis.Dominatee && roles.(u) = Core.Mis.Dominator)
      in
      check "edge classified" true (in_planar || dominatee_link))

let test_run_config_equals_build () =
  let rng = Wireless.Rand.create 407L in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n:60 ~side:200. ~radius:50.
      ~max_attempts:2000
  in
  let via_build = Core.Backbone.build pts ~radius:50. in
  let via_run =
    Core.Backbone.run
      { Core.Backbone.Config.default with Core.Backbone.Config.radius = 50. }
      pts
  in
  check "same udg" true
    (G.equal via_build.Core.Backbone.udg via_run.Core.Backbone.udg);
  List.iter2
    (fun (name, g1, _) (_, g2, _) ->
      check (name ^ " identical via run") true (G.equal g1 g2))
    (Core.Backbone.structures via_build)
    (Core.Backbone.structures via_run)

let test_run_quasi_radio () =
  let rng = Wireless.Rand.create 408L in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n:60 ~side:200. ~radius:50.
      ~max_attempts:2000
  in
  let bb =
    Core.Backbone.run
      {
        Core.Backbone.Config.default with
        Core.Backbone.Config.radius = 50.;
        radio = Core.Backbone.Config.Quasi { r_min = 35.; seed = 9L };
      }
      pts
  in
  let disk = Core.Backbone.build pts ~radius:50. in
  check "quasi udg within disk udg" true
    (G.is_subgraph bb.Core.Backbone.udg disk.Core.Backbone.udg);
  (* derived structures still live inside the (quasi) UDG *)
  List.iter
    (fun (name, g, _) ->
      check (name ^ " within quasi UDG") true
        (G.is_subgraph g bb.Core.Backbone.udg))
    (Core.Backbone.structures bb)

let test_registry_is_single_source () =
  Alcotest.(check (list string))
    "registry drives the published name list"
    [
      "UDG"; "RNG"; "GG"; "LDel"; "CDS"; "CDS'"; "ICDS"; "ICDS'"; "LDel(ICDS)";
      "LDel(ICDS')";
    ]
    Core.Backbone.names;
  let bb = build 409L 50 50. in
  Alcotest.(check (list string))
    "structures follow the registry order" Core.Backbone.names
    (List.map (fun (n, _, _) -> n) (Core.Backbone.structures bb));
  Alcotest.(check (list string))
    "backbone family subset, in order"
    [ "CDS"; "CDS'"; "ICDS"; "ICDS'"; "LDel(ICDS)"; "LDel(ICDS')" ]
    (List.map (fun (n, _, _) -> n) (Core.Backbone.backbone_structures bb));
  Alcotest.(check (list string))
    "spanning backbone structures are the primed ones"
    [ "CDS'"; "ICDS'"; "LDel(ICDS')" ]
    (List.map (fun (n, _, _) -> n)
       (Core.Backbone.spanning_backbone_structures bb));
  (* scopes: exactly the non-spanning backbones are Backbone_only *)
  List.iter
    (fun (name, _, scope) ->
      let expect_backbone_only =
        List.mem name [ "CDS"; "ICDS"; "LDel(ICDS)" ]
      in
      check (name ^ " scope") true
        (scope = if expect_backbone_only then `Backbone_only else `Spans_all))
    (Core.Backbone.structures bb)

let test_deterministic_pipeline () =
  let bb1 = build 406L 60 50. in
  let bb2 = build 406L 60 50. in
  check "same udg" true (G.equal bb1.Core.Backbone.udg bb2.Core.Backbone.udg);
  check "same backbone graph" true
    (G.equal bb1.Core.Backbone.ldel_icds_g bb2.Core.Backbone.ldel_icds_g)

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "pipeline structures" `Quick
          test_pipeline_structures;
        Alcotest.test_case "sparseness" `Quick test_sparseness;
        Alcotest.test_case "quality rows" `Quick test_quality_rows;
        Alcotest.test_case "quality aggregation" `Quick test_quality_aggregate;
        Alcotest.test_case "table1 (quick)" `Quick
          test_experiments_table1_quick;
        Alcotest.test_case "degree sweep (quick)" `Slow
          test_experiments_sweep_quick;
        Alcotest.test_case "comm sweep (quick)" `Slow
          test_experiments_comm_quick;
        Alcotest.test_case "LDel(ICDS') composition" `Quick
          test_ldel_icds'_equals_planar_plus_links;
        Alcotest.test_case "Backbone.run equals build" `Quick
          test_run_config_equals_build;
        Alcotest.test_case "Backbone.run quasi radio" `Quick
          test_run_quasi_radio;
        Alcotest.test_case "registry single source" `Quick
          test_registry_is_single_source;
        Alcotest.test_case "pipeline deterministic" `Quick
          test_deterministic_pipeline;
      ] );
  ]
