(* The P² streaming quantile sketch, checked against exact quantiles
   computed from the full sorted stream: accuracy on uniform, skewed
   and adversarial inputs, exactness below the marker count, merge and
   reset semantics, and the monotone-in-q property. *)

let check = Alcotest.(check bool)

(* exact quantile of a sample, same interpolation convention as the
   sketch: linear over positions 0..n-1 *)
let exact xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n = 1 then a.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (floor pos) in
    if i >= n - 1 then a.(n - 1)
    else a.(i) +. ((pos -. float_of_int i) *. (a.(i + 1) -. a.(i)))
  end

let feed sk xs = List.iter (Obs.Sketch.observe sk) xs

(* relative error against the sample's spread, so a 2% tolerance means
   "within 2% of the data range" regardless of scale or offset *)
let spread xs =
  List.fold_left max neg_infinity xs -. List.fold_left min infinity xs

let assert_close ?(qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99 ]) ~tol ~what
    xs sk =
  let sp = spread xs in
  List.iter
    (fun q ->
      let est = Obs.Sketch.quantile sk q and ex = exact xs q in
      let err = abs_float (est -. ex) /. sp in
      if err > tol then
        Alcotest.failf "%s: q=%.2f est=%g exact=%g err=%.4f > %.4f" what q
          est ex err tol)
    qs

let quantiles = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99 ]

let stream_of rng n f = List.init n (fun _ -> f rng)

let test_uniform_10k () =
  let rng = Wireless.Rand.create 42L in
  let xs = stream_of rng 10_000 (fun r -> Wireless.Rand.float r 1000.) in
  let sk = Obs.Sketch.create ~quantiles () in
  feed sk xs;
  Alcotest.(check int) "count" 10_000 (Obs.Sketch.count sk);
  assert_close ~tol:0.02 ~what:"uniform" xs sk

let test_skewed_10k () =
  (* exponential-ish tail: squaring a uniform pushes mass to 0 *)
  let rng = Wireless.Rand.create 7L in
  let xs =
    stream_of rng 10_000 (fun r ->
        let u = Wireless.Rand.float r 1. in
        u *. u *. u *. 1000.)
  in
  let sk = Obs.Sketch.create ~quantiles () in
  feed sk xs;
  assert_close ~tol:0.02 ~what:"skewed" xs sk

let test_adversarial_sorted () =
  (* sorted input is the classic P² stressor *)
  let xs = List.init 10_000 float_of_int in
  let sk = Obs.Sketch.create ~quantiles () in
  feed sk xs;
  assert_close ~tol:0.02 ~what:"sorted" xs sk;
  let sk' = Obs.Sketch.create ~quantiles () in
  feed sk' (List.rev xs);
  assert_close ~tol:0.02 ~what:"reverse-sorted" xs sk'

let test_adversarial_bimodal () =
  (* two far-apart clusters with nothing in between; quantiles landing
     inside a cluster must still be tight, while the median — which
     falls in the empty gap, where any marker scheme can only
     interpolate — just has to stay between the clusters *)
  let rng = Wireless.Rand.create 11L in
  let xs =
    stream_of rng 10_000 (fun r ->
        let base = if Wireless.Rand.int r 2 = 0 then 0. else 10_000. in
        base +. Wireless.Rand.float r 10.)
  in
  let sk = Obs.Sketch.create ~quantiles () in
  feed sk xs;
  assert_close ~tol:0.02 ~what:"bimodal"
    ~qs:[ 0.1; 0.25; 0.75; 0.9; 0.95; 0.99 ]
    xs sk;
  List.iter
    (fun q ->
      let v = Obs.Sketch.quantile sk q in
      if not (v >= 0. && v <= 10_010.) then
        Alcotest.failf "near-gap q=%.2f escaped the data range: %g" q v)
    [ 0.4; 0.5; 0.6 ]

let test_tiny_n_exact () =
  let sk = Obs.Sketch.create ~quantiles:[ 0.5 ] () in
  check "empty is nan" true (Float.is_nan (Obs.Sketch.quantile sk 0.5));
  check "empty min is nan" true (Float.is_nan (Obs.Sketch.min_value sk));
  Obs.Sketch.observe sk 3.;
  Alcotest.(check (float 0.)) "one sample" 3. (Obs.Sketch.quantile sk 0.5);
  Obs.Sketch.observe sk 1.;
  Obs.Sketch.observe sk 2.;
  (* below the marker count the sketch holds everything: exact *)
  Alcotest.(check (float 1e-9)) "tiny median exact" 2.
    (Obs.Sketch.quantile sk 0.5);
  Alcotest.(check (float 1e-9)) "tiny q0 exact" 1. (Obs.Sketch.quantile sk 0.);
  Alcotest.(check (float 1e-9)) "tiny q1 exact" 3. (Obs.Sketch.quantile sk 1.);
  Alcotest.(check (float 0.)) "min" 1. (Obs.Sketch.min_value sk);
  Alcotest.(check (float 0.)) "max" 3. (Obs.Sketch.max_value sk)

let test_extremes_exact () =
  let rng = Wireless.Rand.create 99L in
  let xs = stream_of rng 5_000 (fun r -> Wireless.Rand.float r 1. -. 0.5) in
  let sk = Obs.Sketch.create () in
  feed sk xs;
  let mn = List.fold_left min infinity xs
  and mx = List.fold_left max neg_infinity xs in
  Alcotest.(check (float 0.)) "min exact" mn (Obs.Sketch.min_value sk);
  Alcotest.(check (float 0.)) "max exact" mx (Obs.Sketch.max_value sk);
  Alcotest.(check (float 0.)) "q0 is min" mn (Obs.Sketch.quantile sk 0.);
  Alcotest.(check (float 0.)) "q1 is max" mx (Obs.Sketch.quantile sk 1.)

let test_merge () =
  let rng = Wireless.Rand.create 5L in
  let xs = stream_of rng 4_000 (fun r -> Wireless.Rand.float r 100.)
  and ys = stream_of rng 6_000 (fun r -> 50. +. Wireless.Rand.float r 100.) in
  let a = Obs.Sketch.create ~quantiles () in
  let b = Obs.Sketch.create ~quantiles () in
  feed a xs;
  feed b ys;
  let m = Obs.Sketch.merge a b in
  Alcotest.(check int) "counts add exactly" 10_000 (Obs.Sketch.count m);
  check "inputs untouched" true
    (Obs.Sketch.count a = 4_000 && Obs.Sketch.count b = 6_000);
  (* a merge of summaries is lossier than one pass; allow 5% *)
  assert_close ~tol:0.05 ~what:"merge" (xs @ ys) m

let test_merge_tiny () =
  let a = Obs.Sketch.create ~quantiles:[ 0.5 ] () in
  let b = Obs.Sketch.create ~quantiles:[ 0.5 ] () in
  feed a [ 1.; 2. ];
  feed b [ 3. ];
  let m = Obs.Sketch.merge a b in
  Alcotest.(check int) "tiny counts add" 3 (Obs.Sketch.count m);
  Alcotest.(check (float 1e-9)) "tiny merge exact" 2.
    (Obs.Sketch.quantile m 0.5)

let test_reset () =
  let sk = Obs.Sketch.create ~quantiles:[ 0.25; 0.75 ] () in
  feed sk (List.init 1000 float_of_int);
  Obs.Sketch.reset sk;
  Alcotest.(check int) "count zeroed" 0 (Obs.Sketch.count sk);
  check "quantile nan after reset" true
    (Float.is_nan (Obs.Sketch.quantile sk 0.5));
  Alcotest.(check (list (float 0.))) "targets kept" [ 0.25; 0.75 ]
    (Obs.Sketch.targets sk);
  feed sk [ 5.; 6.; 7. ];
  Alcotest.(check (float 1e-9)) "usable after reset" 6.
    (Obs.Sketch.quantile sk 0.5)

let test_create_validation () =
  check "empty quantiles rejected" true
    (try
       ignore (Obs.Sketch.create ~quantiles:[] ());
       false
     with Invalid_argument _ -> true);
  check "q=0 rejected" true
    (try
       ignore (Obs.Sketch.create ~quantiles:[ 0. ] ());
       false
     with Invalid_argument _ -> true);
  check "q=1 rejected" true
    (try
       ignore (Obs.Sketch.create ~quantiles:[ 1. ] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (list (float 0.)))
    "targets sorted, deduplicated" [ 0.5; 0.9 ]
    (Obs.Sketch.targets (Obs.Sketch.create ~quantiles:[ 0.9; 0.5; 0.9 ] ()))

(* property: for any stream, the quantile function is monotone in q
   and stays within [min, max] *)
let prop_monotone =
  QCheck.Test.make ~count:100 ~name:"sketch quantile monotone in q"
    QCheck.(list_of_size (Gen.int_range 1 400) (float_range (-1000.) 1000.))
    (fun xs ->
      let sk = Obs.Sketch.create ~quantiles:[ 0.5; 0.9 ] () in
      feed sk xs;
      let qs = List.init 21 (fun i -> float_of_int i /. 20.) in
      let vs = List.map (Obs.Sketch.quantile sk) qs in
      let mn = Obs.Sketch.min_value sk and mx = Obs.Sketch.max_value sk in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vs && List.for_all (fun v -> v >= mn -. 1e-9 && v <= mx +. 1e-9) vs)

let suites =
  [
    ( "sketch",
      [
        Alcotest.test_case "uniform 10k within 2%" `Quick test_uniform_10k;
        Alcotest.test_case "skewed 10k within 2%" `Quick test_skewed_10k;
        Alcotest.test_case "sorted streams within 2%" `Quick
          test_adversarial_sorted;
        Alcotest.test_case "bimodal within 2%" `Quick test_adversarial_bimodal;
        Alcotest.test_case "tiny n is exact" `Quick test_tiny_n_exact;
        Alcotest.test_case "extremes exact" `Quick test_extremes_exact;
        Alcotest.test_case "merge" `Quick test_merge;
        Alcotest.test_case "merge tiny" `Quick test_merge_tiny;
        Alcotest.test_case "reset" `Quick test_reset;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        QCheck_alcotest.to_alcotest prop_monotone;
      ] );
  ]
