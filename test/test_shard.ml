(* Sharded CSR-native construction: bit-identity against the serial
   Hashtbl-graph pipeline, for any tiling and any job count. *)

module G = Netgraph.Graph
module Csr = Netgraph.Csr
module Pool = Netgraph.Pool

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let edge_list = Alcotest.(check (list (pair int int)))

(* a reproducible connected-ish deployment *)
let deployment seed n side radius =
  let rng = Wireless.Rand.create seed in
  let pts = Wireless.Deploy.uniform rng ~n ~side in
  (pts, Wireless.Udg.build pts ~radius)

(* split node ids into [k] tiles by spatial cell — the partition the
   pipeline itself uses; correctness must hold for ANY partition, so
   some tests below use a round-robin split instead *)
let spatial_tiles pts k =
  let side = 200. in
  let grid = Wireless.Cellgrid.create ~cell_size:(side /. float_of_int k) pts in
  Array.init (Wireless.Cellgrid.cells grid) (Wireless.Cellgrid.nodes_of grid)

let round_robin_tiles n k =
  let tiles = Array.make k [] in
  for u = n - 1 downto 0 do
    tiles.(u mod k) <- u :: tiles.(u mod k)
  done;
  Array.map Array.of_list tiles

let with_jobs jobs f =
  if jobs = 1 then f None else Pool.with_pool ~jobs (fun p -> f (Some p))

(* --- UDG ------------------------------------------------------------ *)

let test_udg_csr_identity () =
  List.iter
    (fun jobs ->
      let pts, g = deployment 11L 300 200. 25. in
      let want = Csr.edges (Csr.of_graph g) in
      with_jobs jobs (fun pool ->
          let csr = Wireless.Udg.build_csr ?pool pts ~radius:25. in
          edge_list
            (Printf.sprintf "udg edges jobs=%d" jobs)
            want (Csr.edges csr)))
    [ 1; 2; 4 ]

let test_udg_csr_tiny () =
  let csr = Wireless.Udg.build_csr [||] ~radius:1. in
  checki "empty nodes" 0 (Csr.node_count csr);
  let csr = Wireless.Udg.build_csr [| { Geometry.Point.x = 0.; y = 0. } |] ~radius:1. in
  checki "single node" 1 (Csr.node_count csr);
  checki "single node edges" 0 (Csr.edge_count csr)

(* --- MIS ------------------------------------------------------------ *)

let test_mis_csr_identity () =
  let pts, g = deployment 12L 400 200. 22. in
  let csr = Csr.of_graph g in
  let want = Core.Mis.compute g in
  List.iter
    (fun jobs ->
      List.iter
        (fun tiles ->
          with_jobs jobs (fun pool ->
              let got = Core.Mis.compute_csr ?pool ?owners:tiles csr in
              check
                (Printf.sprintf "mis jobs=%d" jobs)
                true (want = got)))
        [
          None;
          Some (spatial_tiles pts 3);
          Some (round_robin_tiles (Array.length pts) 7);
        ])
    [ 1; 2; 4 ]

let test_mis_csr_priority () =
  let _, g = deployment 13L 200 200. 30. in
  let priority u = -u in
  let want = Core.Mis.compute_with_priority g ~priority in
  let got = Core.Mis.compute_csr ~priority (Csr.of_graph g) in
  check "priority identical" true (want = got)

(* --- Connectors ----------------------------------------------------- *)

let test_connectors_csr_identity () =
  let pts, g = deployment 14L 400 200. 22. in
  let csr = Csr.of_graph g in
  let roles = Core.Mis.compute g in
  let want = Core.Connectors.find g roles in
  List.iter
    (fun jobs ->
      List.iter
        (fun tiles ->
          with_jobs jobs (fun pool ->
              let got = Core.Connectors.find_csr ?pool ?owners:tiles csr roles in
              let tag s = Printf.sprintf "%s jobs=%d" s jobs in
              check (tag "connector") true
                (want.Core.Connectors.connector = got.Core.Connectors.connector);
              edge_list (tag "cds_edges") want.Core.Connectors.cds_edges
                got.Core.Connectors.cds_edges;
              edge_list (tag "two_hop") want.Core.Connectors.two_hop_pairs
                got.Core.Connectors.two_hop_pairs;
              edge_list (tag "three_hop") want.Core.Connectors.three_hop_pairs
                got.Core.Connectors.three_hop_pairs))
        [
          None;
          Some (spatial_tiles pts 4);
          Some (round_robin_tiles (Array.length pts) 5);
        ])
    [ 1; 2; 4 ]

(* --- LDel ----------------------------------------------------------- *)

let tri_list = Alcotest.(check (list (triple int int int)))

let test_ldel_csr_identity () =
  let pts, g = deployment 15L 300 200. 28. in
  let csr = Csr.of_graph g in
  let want = Core.Ldel.build g pts ~radius:28. in
  List.iter
    (fun jobs ->
      List.iter
        (fun tiles ->
          with_jobs jobs (fun pool ->
              let parts = Core.Ldel.build_csr ?pool ?owners:tiles csr pts ~radius:28. in
              let tag s = Printf.sprintf "%s jobs=%d" s jobs in
              edge_list (tag "gabriel") want.Core.Ldel.gabriel_edges
                parts.Core.Ldel.p_gabriel;
              tri_list (tag "triangles") want.Core.Ldel.triangles
                parts.Core.Ldel.p_triangles;
              tri_list (tag "kept") want.Core.Ldel.kept_triangles
                parts.Core.Ldel.p_kept;
              let rebuilt = Core.Ldel.of_parts (Array.length pts) parts in
              check (tag "ldel1 graph") true
                (G.equal want.Core.Ldel.ldel1 rebuilt.Core.Ldel.ldel1);
              check (tag "planar graph") true
                (G.equal want.Core.Ldel.planar rebuilt.Core.Ldel.planar)))
        [ None; Some (spatial_tiles pts 3) ])
    [ 1; 2; 4 ]

(* the induced backbone graph has isolated nodes and sparse rows — the
   other shape [build_csr] must reproduce *)
let test_ldel_csr_on_backbone () =
  let pts, g = deployment 16L 250 200. 30. in
  let cds = Core.Cds.of_udg g in
  let icds = cds.Core.Cds.icds in
  let want = Core.Ldel.build icds pts ~radius:30. in
  let parts = Core.Ldel.build_csr (Csr.of_graph icds) pts ~radius:30. in
  edge_list "gabriel" want.Core.Ldel.gabriel_edges parts.Core.Ldel.p_gabriel;
  tri_list "triangles" want.Core.Ldel.triangles parts.Core.Ldel.p_triangles;
  tri_list "kept" want.Core.Ldel.kept_triangles parts.Core.Ldel.p_kept

(* --- Builder / View ------------------------------------------------- *)

module B = Netgraph.Builder
module V = Netgraph.View

let test_builder_seal () =
  let b = B.create 5 in
  B.add_edges b [ (1, 2); (2, 1); (0, 4); (1, 2) ];
  checki "pending counts duplicates" 4 (B.pending b);
  let csr = B.seal b in
  edge_list "dedup both orientations" [ (0, 4); (1, 2) ] (Csr.edges csr);
  let b2 = B.create 5 in
  B.add_edges b2 [ (4, 0); (1, 2) ];
  edge_list "append order irrelevant" (Csr.edges csr)
    (Csr.edges (B.seal b2));
  let into = B.create 5 in
  B.add_edge into 0 4;
  B.append ~into b2;
  edge_list "append stitches" [ (0, 4); (1, 2) ] (Csr.edges (B.seal into));
  (* seal is non-destructive: keep appending, seal again *)
  B.add_edge b2 3 4;
  edge_list "incremental reseal" [ (0, 4); (1, 2); (3, 4) ]
    (Csr.edges (B.seal b2));
  check "self-loop rejected" true
    (try
       B.add_edge b2 1 1;
       false
     with Invalid_argument _ -> true);
  check "out-of-range rejected" true
    (try
       B.add_edge b2 0 5;
       false
     with Invalid_argument _ -> true);
  check "seal_graph adapter" true
    (G.equal (B.seal_graph b2) (Csr.to_graph (B.seal b2)));
  (* pooled seal is bit-identical to the serial seal *)
  let pts, g = deployment 32L 300 200. 25. in
  let bb = B.create (Array.length pts) in
  B.add_graph bb g;
  let serial = B.seal ~points:pts bb in
  Pool.with_pool ~jobs:3 (fun p ->
      let pooled = B.seal ~pool:p ~points:pts bb in
      edge_list "pooled seal" (Csr.edges serial) (Csr.edges pooled))

let test_view_dispatch () =
  let _, g = deployment 33L 200 200. 30. in
  let vg = V.of_graph g and vc = V.of_csr (Csr.of_graph g) in
  checki "node_count" (V.node_count vg) (V.node_count vc);
  checki "edge_count" (V.edge_count vg) (V.edge_count vc);
  edge_list "edges agree" (V.edges vg) (V.edges vc);
  edge_list "edges match graph" (G.edges g) (V.edges vc);
  let rows_agree = ref true in
  for u = 0 to V.node_count vg - 1 do
    if V.neighbors vg u <> V.neighbors vc u then rows_agree := false;
    if V.degree vg u <> V.degree vc u then rows_agree := false
  done;
  check "neighbor rows agree" true !rows_agree;
  check "has_edge symmetric" true
    (match G.edges g with
    | (u, v) :: _ -> V.has_edge vc u v && V.has_edge vc v u
    | [] -> true);
  (* a snapshot view freezes to itself when no weights are demanded *)
  let c = Csr.of_graph g in
  check "to_csr reuses snapshot" true (V.to_csr (V.of_csr c) == c)

(* --- Halo properties ------------------------------------------------ *)

(* induced sub-deployment over a sorted id set: the remap is monotone,
   so every smallest-id tie-break elects the same winners *)
let induce pts ids =
  let old_of = Array.of_list ids in
  let new_of = Hashtbl.create (Array.length old_of) in
  Array.iteri (fun i u -> Hashtbl.add new_of u i) old_of;
  (old_of, (fun u -> Hashtbl.find_opt new_of u),
   Array.map (fun u -> pts.(u)) old_of)

let halo_ids grid cell ~rings =
  let acc = ref [] in
  for r = 0 to rings do
    Wireless.Cellgrid.iter_ring_cells grid cell r (fun k ->
        Wireless.Cellgrid.iter_cell grid k (fun u -> acc := u :: !acc))
  done;
  List.sort_uniq Int.compare !acc

(* Connector elections are 2-local around the owning dominator: the
   serial algorithm, re-run on just the halo (cells within Chebyshev
   3 of the tile — 3 hops at cell = radius), reproduces exactly the
   pairs owned by the tile's dominators.  This is the property that
   makes per-tile sharding correct. *)
let test_connectors_halo () =
  let radius = 30. in
  let pts, g = deployment 31L 800 300. radius in
  let roles = Core.Mis.compute g in
  let full = Core.Connectors.find g roles in
  let grid = Wireless.Cellgrid.create ~cell_size:radius pts in
  let n_cells = Wireless.Cellgrid.cells grid in
  List.iter
    (fun cell ->
      let cell = cell mod n_cells in
      let old_of, remap, sub_pts =
        induce pts (halo_ids grid cell ~rings:3)
      in
      let sub_g = Wireless.Udg.build sub_pts ~radius in
      let sub_roles = Array.map (fun u -> roles.(u)) old_of in
      let sub = Core.Connectors.find sub_g sub_roles in
      let in_tile u = Wireless.Cellgrid.cell_of grid u = cell in
      (* tile-owned pairs of the full run, in halo coordinates *)
      let owned pairs =
        List.filter_map
          (fun (u, v) ->
            if in_tile u then
              match (remap u, remap v) with
              | Some u', Some v' -> Some (u', v')
              | _ -> None (* unreachable: halo covers 3 hops *)
            else None)
          pairs
      in
      (* tile-owned pairs of the halo re-run *)
      let sub_owned pairs =
        List.filter (fun (u', _) -> in_tile old_of.(u')) pairs
      in
      let tag s = Printf.sprintf "%s cell=%d" s cell in
      edge_list (tag "two-hop halo")
        (owned full.Core.Connectors.two_hop_pairs)
        (sub_owned sub.Core.Connectors.two_hop_pairs);
      edge_list (tag "three-hop halo")
        (owned full.Core.Connectors.three_hop_pairs)
        (sub_owned sub.Core.Connectors.three_hop_pairs))
    [ 0; 17; 23; 38 ]

(* LDel(1) is 2-local: a triangle needs its own corner neighborhoods
   (1 hop) plus the corners' local Delaunay votes (their 1-hop views),
   so a 2-ring halo reproduces every accepted triangle and Gabriel
   edge whose min corner lies in the tile.  (Planarization is global
   — [kept_triangles] is deliberately not compared.) *)
let test_ldel_halo () =
  let radius = 28. in
  let pts, g = deployment 34L 600 250. radius in
  let full = Core.Ldel.build g pts ~radius in
  let grid = Wireless.Cellgrid.create ~cell_size:radius pts in
  let n_cells = Wireless.Cellgrid.cells grid in
  List.iter
    (fun cell ->
      let cell = cell mod n_cells in
      let old_of, remap, sub_pts =
        induce pts (halo_ids grid cell ~rings:2)
      in
      let sub = Core.Ldel.build (Wireless.Udg.build sub_pts ~radius) sub_pts ~radius in
      let in_tile u = Wireless.Cellgrid.cell_of grid u = cell in
      let tag s = Printf.sprintf "%s cell=%d" s cell in
      edge_list (tag "gabriel halo")
        (List.filter_map
           (fun (u, v) ->
             if in_tile u then
               match (remap u, remap v) with
               | Some u', Some v' -> Some (u', v')
               | _ -> None
             else None)
           full.Core.Ldel.gabriel_edges)
        (List.filter
           (fun (u', _) -> in_tile old_of.(u'))
           sub.Core.Ldel.gabriel_edges);
      tri_list (tag "triangle halo")
        (List.filter_map
           (fun (a, b, c) ->
             if in_tile a then
               match (remap a, remap b, remap c) with
               | Some a', Some b', Some c' -> Some (a', b', c')
               | _ -> None
             else None)
           full.Core.Ldel.triangles)
        (List.filter
           (fun (a', _, _) -> in_tile old_of.(a'))
           sub.Core.Ldel.triangles))
    [ 0; 11; 29 ]

(* --- Full pipeline -------------------------------------------------- *)

let same_backbone tag (a : Core.Backbone.t) (b : Core.Backbone.t) =
  check (tag ^ " udg") true (G.equal a.Core.Backbone.udg b.Core.Backbone.udg);
  check (tag ^ " roles") true
    (a.Core.Backbone.cds.Core.Cds.roles = b.Core.Backbone.cds.Core.Cds.roles);
  edge_list (tag ^ " cds_edges")
    a.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.cds_edges
    b.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.cds_edges;
  check (tag ^ " cds' graph") true
    (G.equal a.Core.Backbone.cds.Core.Cds.cds' b.Core.Backbone.cds.Core.Cds.cds');
  check (tag ^ " icds graph") true
    (G.equal a.Core.Backbone.cds.Core.Cds.icds b.Core.Backbone.cds.Core.Cds.icds);
  check (tag ^ " planar") true
    (G.equal a.Core.Backbone.ldel_icds_g b.Core.Backbone.ldel_icds_g);
  check (tag ^ " primed planar") true
    (G.equal a.Core.Backbone.ldel_icds' b.Core.Backbone.ldel_icds');
  edge_list
    (tag ^ " planar csr")
    (Csr.edges a.Core.Backbone.planar_csr)
    (Csr.edges b.Core.Backbone.planar_csr)

(* serial vs sharded [Backbone.run]: identical records for jobs 1/2/4
   and a sweep of tile counts *)
let test_pipeline_identity () =
  let rng = Wireless.Rand.create 21L in
  let pts = Wireless.Deploy.uniform rng ~n:600 ~side:300. in
  let serial =
    Core.Backbone.run
      {
        Core.Backbone.Config.default with
        Core.Backbone.Config.radius = 30.;
        partition = Core.Backbone.Config.Serial;
      }
      pts
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun k ->
          let sharded =
            Core.Backbone.run
              {
                Core.Backbone.Config.default with
                Core.Backbone.Config.radius = 30.;
                partition = Core.Backbone.Config.Tiles k;
                jobs;
              }
              pts
          in
          same_backbone (Printf.sprintf "tiles=%d jobs=%d" k jobs) serial
            sharded)
        [ 1; 2; 3; 5 ])
    [ 1; 2; 4 ]

(* [Backbone.snapshot] agrees with the record the sharded [run]
   materializes *)
let test_snapshot_matches_run () =
  let rng = Wireless.Rand.create 22L in
  let pts = Wireless.Deploy.uniform rng ~n:500 ~side:300. in
  let cfg =
    {
      Core.Backbone.Config.default with
      Core.Backbone.Config.radius = 32.;
      partition = Core.Backbone.Config.Tiles 3;
      jobs = 2;
    }
  in
  let t = Core.Backbone.run cfg pts in
  let s = Core.Backbone.snapshot cfg pts in
  check "roles" true (t.Core.Backbone.cds.Core.Cds.roles = s.Core.Shard.roles);
  edge_list "udg" (G.edges t.Core.Backbone.udg) (Csr.edges s.Core.Shard.udg);
  edge_list "icds"
    (G.edges t.Core.Backbone.cds.Core.Cds.icds)
    (Csr.edges s.Core.Shard.icds);
  edge_list "icds'"
    (G.edges t.Core.Backbone.cds.Core.Cds.icds')
    (Csr.edges s.Core.Shard.icds');
  edge_list "cds"
    (G.edges t.Core.Backbone.cds.Core.Cds.cds)
    (Csr.edges s.Core.Shard.cds);
  edge_list "pldel"
    (G.edges t.Core.Backbone.ldel_icds_g)
    (Csr.edges s.Core.Shard.pldel);
  edge_list "pldel'"
    (G.edges t.Core.Backbone.ldel_icds')
    (Csr.edges s.Core.Shard.pldel')

(* quasi radio: the UDG stage is serial (RNG stream) but the sharded
   stages must still reproduce the serial chain on it *)
let test_pipeline_quasi () =
  let rng = Wireless.Rand.create 23L in
  let pts = Wireless.Deploy.uniform rng ~n:300 ~side:250. in
  let cfg partition =
    {
      Core.Backbone.Config.default with
      Core.Backbone.Config.radius = 35.;
      radio = Core.Backbone.Config.Quasi { r_min = 25.; seed = 99L };
      partition;
    }
  in
  let serial = Core.Backbone.run (cfg Core.Backbone.Config.Serial) pts in
  let sharded = Core.Backbone.run (cfg (Core.Backbone.Config.Tiles 3)) pts in
  same_backbone "quasi" serial sharded

(* tiling invariants: every node exactly once, tile side >= radius *)
let test_tiling_partition () =
  let rng = Wireless.Rand.create 24L in
  let pts = Wireless.Deploy.uniform rng ~n:700 ~side:300. in
  List.iter
    (fun k ->
      let owners = Core.Shard.tiling ~tiles:k pts ~radius:40. in
      let seen = Array.make (Array.length pts) 0 in
      Array.iter
        (Array.iter (fun u -> seen.(u) <- seen.(u) + 1))
        owners;
      check
        (Printf.sprintf "partition k=%d" k)
        true
        (Array.for_all (fun c -> c = 1) seen);
      (* side 300, radius 40: at most 300/40 = 7 tiles per axis no
         matter how many were requested *)
      check
        (Printf.sprintf "clamped k=%d" k)
        true
        (Array.length owners <= 8 * 8))
    [ 1; 2; 7; 50 ]

(* ISSUE acceptance: n = 10^4, sharded bit-identical to serial for
   jobs in {1, 2, 4} — UDG, CDS family and PLDel compared edge by
   edge.  [Auto] partitions here (n >= 5000, Disk radio). *)
let test_acceptance_10k () =
  let rng = Wireless.Rand.create 41L in
  let pts = Wireless.Deploy.uniform rng ~n:10_000 ~side:1000. in
  let cfg partition jobs =
    {
      Core.Backbone.Config.default with
      Core.Backbone.Config.radius = 20.;
      partition;
      jobs;
    }
  in
  let serial = Core.Backbone.run (cfg Core.Backbone.Config.Serial 1) pts in
  List.iter
    (fun jobs ->
      let sharded =
        Core.Backbone.run (cfg Core.Backbone.Config.Auto jobs) pts
      in
      same_backbone (Printf.sprintf "10k jobs=%d" jobs) serial sharded)
    [ 1; 2; 4 ]

let suites =
  [
    ( "shard.stages",
      [
        Alcotest.test_case "udg csr identity" `Quick test_udg_csr_identity;
        Alcotest.test_case "udg csr tiny" `Quick test_udg_csr_tiny;
        Alcotest.test_case "mis csr identity" `Quick test_mis_csr_identity;
        Alcotest.test_case "mis csr priority" `Quick test_mis_csr_priority;
        Alcotest.test_case "connectors csr identity" `Quick
          test_connectors_csr_identity;
        Alcotest.test_case "ldel csr identity" `Quick test_ldel_csr_identity;
        Alcotest.test_case "ldel csr on backbone" `Quick
          test_ldel_csr_on_backbone;
      ] );
    ( "shard.builder",
      [
        Alcotest.test_case "builder seal" `Quick test_builder_seal;
        Alcotest.test_case "view dispatch" `Quick test_view_dispatch;
      ] );
    ( "shard.halo",
      [
        Alcotest.test_case "connectors 2-local" `Quick test_connectors_halo;
        Alcotest.test_case "ldel 2-local" `Quick test_ldel_halo;
      ] );
    ( "shard.pipeline",
      [
        Alcotest.test_case "serial vs sharded run" `Quick
          test_pipeline_identity;
        Alcotest.test_case "snapshot matches run" `Quick
          test_snapshot_matches_run;
        Alcotest.test_case "quasi radio" `Quick test_pipeline_quasi;
        Alcotest.test_case "tiling partition" `Quick test_tiling_partition;
        Alcotest.test_case "acceptance n=10^4 jobs sweep" `Slow
          test_acceptance_10k;
      ] );
  ]
