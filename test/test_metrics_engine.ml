(* Tests for the multicore metrics engine: the shared Heap, CSR
   snapshots vs the mutable Graph, the Domain pool, and the fused
   all-pairs stretch — including the bit-identity guarantee across
   worker counts and a regression against a verbatim copy of the
   implementation the engine replaced. *)

module G = Netgraph.Graph
module T = Netgraph.Traversal
module C = Netgraph.Csr
module H = Netgraph.Heap
module M = Netgraph.Metrics
module P = Geometry.Point

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* deterministic pseudo-random stream, independent of stdlib Random *)
let mk_rand seed =
  let state = ref seed in
  fun () ->
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_float (Int64.shift_right_logical !state 11) /. 9007199254740992.

(* ---------------- Heap ---------------- *)

let test_heap_sort () =
  let rand = mk_rand 1L in
  let h = H.create () in
  (* duplicate keys on purpose: draws from a 16-value set *)
  let keys = Array.init 500 (fun _ -> float_of_int (int_of_float (rand () *. 16.))) in
  Array.iteri (fun i k -> H.push h k i) keys;
  checki "length" 500 (H.length h);
  let out = ref [] in
  let rec drain () =
    match H.pop h with
    | Some (k, _) ->
      out := k :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  let popped = Array.of_list (List.rev !out) in
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  check "pops keys in sorted order" true (popped = sorted);
  check "empty after drain" true (H.is_empty h)

let test_heap_interleaved () =
  let h = H.create ~capacity:2 () in
  H.push h 3. 30;
  H.push h 1. 10;
  checkf "min key" 1. (H.min_key h);
  checki "min value" 10 (H.min_value h);
  H.remove_min h;
  H.push h 2. 20;
  H.push h 0.5 5;
  check "pop order" true (H.pop h = Some (0.5, 5));
  check "pop order 2" true (H.pop h = Some (2., 20));
  check "pop order 3" true (H.pop h = Some (3., 30));
  check "pop empty" true (H.pop h = None);
  H.push h 9. 9;
  H.clear h;
  checki "cleared" 0 (H.length h);
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "min_key empty raises" true (raises (fun () -> ignore (H.min_key h)));
  check "min_value empty raises" true (raises (fun () -> ignore (H.min_value h)));
  check "remove_min empty raises" true (raises (fun () -> H.remove_min h))

(* ---------------- Graph neighbor iteration ---------------- *)

let test_graph_neighbor_iteration () =
  let g = G.of_edges 5 [ (0, 3); (0, 1); (2, 0) ] in
  let seen = ref [] in
  G.iter_neighbors g 0 (fun v -> seen := v :: !seen);
  Alcotest.(check (list int)) "iter order" [ 1; 2; 3 ] (List.rev !seen);
  checki "fold degree" 3 (G.fold_neighbors g 0 (fun acc _ -> acc + 1) 0);
  checki "fold sum" 6 (G.fold_neighbors g 0 (fun acc v -> acc + v) 0);
  checki "fold isolated" 0 (G.fold_neighbors g 4 (fun acc _ -> acc + 1) 0)

(* ---------------- CSR vs Graph ---------------- *)

let random_udg seed ~n ~radius =
  let rng = Wireless.Rand.create seed in
  let pts = Wireless.Deploy.uniform rng ~n ~side:200. in
  (pts, Wireless.Udg.build pts ~radius)

let reference_labels g =
  (* smallest-id component labels via repeated BFS, independent of
     both Components and Csr *)
  let n = G.node_count g in
  let label = Array.make n (-1) in
  for s = 0 to n - 1 do
    if label.(s) < 0 then
      Array.iteri
        (fun v d -> if d <> max_int then label.(v) <- s)
        (T.bfs g s)
  done;
  label

let test_csr_structure () =
  List.iter
    (fun seed ->
      let _, g = random_udg seed ~n:60 ~radius:50. in
      let c = C.of_graph g in
      checki "nodes" (G.node_count g) (C.node_count c);
      checki "edges" (G.edge_count g) (C.edge_count c);
      for u = 0 to G.node_count g - 1 do
        checki "degree" (G.degree g u) (C.degree c u);
        Alcotest.(check (list int))
          "neighbors" (G.neighbors g u) (C.neighbors c u);
        for v = 0 to G.node_count g - 1 do
          if u <> v then
            check "mem_edge" (G.has_edge g u v) (C.mem_edge c u v)
        done
      done)
    [ 11L; 12L; 13L ]

let test_csr_traversals_exact () =
  List.iter
    (fun seed ->
      let pts, g = random_udg seed ~n:60 ~radius:50. in
      let c = C.of_graph ~points:pts ~beta:2. g in
      check "has weights" true (C.has_weights c);
      check "has power weights" true (C.has_power_weights c);
      let power_cost u v = P.dist pts.(u) pts.(v) ** 2. in
      for s = 0 to G.node_count g - 1 do
        check "bfs exact" true (C.bfs c s = T.bfs g s);
        (* float distances must match bit for bit, not approximately *)
        check "dijkstra exact" true (C.dijkstra c s = T.dijkstra g pts s);
        check "power exact" true
          (C.power_sssp c s = M.weighted_sssp g power_cost s)
      done)
    [ 21L; 22L ]

let test_csr_weightless_raises () =
  let g = G.of_edges 2 [ (0, 1) ] in
  let c = C.of_graph g in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "dijkstra needs weights" true (raises (fun () -> ignore (C.dijkstra c 0)));
  check "power needs beta" true
    (raises (fun () ->
         ignore (C.power_sssp (C.of_graph ~points:[| P.make 0. 0.; P.make 1. 0. |] g) 0)))

let test_csr_components () =
  List.iter
    (fun seed ->
      let _, g = random_udg seed ~n:50 ~radius:25. in
      let c = C.of_graph g in
      check "labels" true (C.component_labels c = reference_labels g);
      check "connectivity" true
        (C.is_connected c = Netgraph.Components.is_connected g);
      check "components module agrees" true
        (Netgraph.Components.component_labels g = reference_labels g))
    [ 31L; 32L; 33L ]

(* ---------------- Pool ---------------- *)

let test_pool_parallel_for () =
  List.iter
    (fun jobs ->
      let n = 1000 in
      let out = Array.make n (-1) in
      Netgraph.Pool.with_pool ~jobs (fun pool ->
          Netgraph.Pool.parallel_for pool ~n (fun () i -> out.(i) <- i * i));
      check
        (Printf.sprintf "all indices done (jobs %d)" jobs)
        true
        (Array.for_all (fun x -> x >= 0) out);
      for i = 0 to n - 1 do
        if out.(i) <> i * i then Alcotest.failf "slot %d wrong" i
      done)
    [ 1; 2; 4 ]

let test_pool_exception () =
  let got =
    try
      Netgraph.Pool.with_pool ~jobs:4 (fun pool ->
          Netgraph.Pool.parallel_for pool ~n:100 (fun () i ->
              if i >= 37 then failwith (string_of_int i)));
      None
    with Failure msg -> Some msg
  in
  (* the smallest failing index wins, independent of scheduling *)
  check "smallest index re-raised" true (got = Some "37")

let test_pool_reuse () =
  Netgraph.Pool.with_pool ~jobs:2 (fun pool ->
      checki "jobs" 2 (Netgraph.Pool.jobs pool);
      let a = Array.make 10 0 and b = Array.make 10 0 in
      Netgraph.Pool.parallel_for pool ~n:10 (fun () i -> a.(i) <- i);
      Netgraph.Pool.parallel_for pool ~n:10 (fun () i -> b.(i) <- a.(i) + 1);
      check "second job sees first" true (Array.for_all2 (fun x y -> y = x + 1) a b))

(* ---------------- The fused engine vs its predecessor ---------------- *)

(* Verbatim copy of the replaced implementation: one pass per metric,
   neighbor lists, a settled array — the reference the fused engine
   must reproduce. *)
module Reference = struct
  let sssp g cost s =
    let n = G.node_count g in
    let dist = Array.make n infinity in
    let settled = Array.make n false in
    dist.(s) <- 0.;
    let h = H.create () in
    H.push h 0. s;
    let rec loop () =
      match H.pop h with
      | None -> ()
      | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun v ->
              let nd = d +. cost u v in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                H.push h nd v
              end)
            (G.neighbors g u)
        end;
        loop ()
    in
    loop ();
    dist

  let generic_stretch ~one_hop_direct ~base ~sub sssp to_float =
    let n = G.node_count base in
    let sum = ref 0. and maxr = ref 0. and pairs = ref 0 in
    for s = 0 to n - 1 do
      let db = sssp base s in
      let ds = sssp sub s in
      for t = s + 1 to n - 1 do
        if one_hop_direct && G.has_edge base s t then begin
          sum := !sum +. 1.;
          if !maxr < 1. then maxr := 1.;
          incr pairs
        end
        else
          match (to_float db.(t), to_float ds.(t)) with
          | None, _ -> ()
          | Some _, None -> failwith "disconnected"
          | Some b, Some sb ->
            if b > 0. then begin
              let r = sb /. b in
              sum := !sum +. r;
              if r > !maxr then maxr := r;
              incr pairs
            end
      done
    done;
    if !pairs = 0 then (1., 1.) else (!sum /. float_of_int !pairs, !maxr)

  let stretch ~one_hop_direct ~base ~sub points =
    let float_dist d = if d = infinity then None else Some d in
    let hop_dist d = if d = max_int then None else Some (float_of_int d) in
    let euclid u v = P.dist points.(u) points.(v) in
    let len = generic_stretch ~one_hop_direct ~base ~sub
        (fun g s -> sssp g euclid s) float_dist
    in
    let hop = generic_stretch ~one_hop_direct ~base ~sub
        (fun g s -> T.bfs g s) hop_dist
    in
    (len, hop)

  let power ~one_hop_direct ~base ~sub points ~beta =
    let cost u v = P.dist points.(u) points.(v) ** beta in
    let to_float d = if d = infinity then None else Some d in
    generic_stretch ~one_hop_direct ~base ~sub (fun g s -> sssp g cost s)
      to_float
end

let backbone_instance seed =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n:80 ~side:200. ~radius:50.
      ~max_attempts:2000
  in
  let bb = Core.Backbone.build pts ~radius:50. in
  (pts, bb.Core.Backbone.udg, bb.Core.Backbone.ldel_icds')

(* maxima are grouping-insensitive, so they must match exactly;
   averages may differ from the reference only in float-sum grouping *)
let check_pair name ((ra, rm) : float * float) ((fa, fm) : float * float) =
  check (name ^ " max exact") true (rm = fm);
  checkf (name ^ " avg") ra fa

let test_engine_vs_reference () =
  List.iter
    (fun seed ->
      let pts, base, sub = backbone_instance seed in
      List.iter
        (fun one_hop_direct ->
          let (rl, rh) = Reference.stretch ~one_hop_direct ~base ~sub pts in
          let s = M.stretch_factors ~one_hop_direct ~base ~sub pts in
          check_pair "len" rl (s.M.len_avg, s.M.len_max);
          check_pair "hop" rh (s.M.hop_avg, s.M.hop_max);
          let rp = Reference.power ~one_hop_direct ~base ~sub pts ~beta:2. in
          check_pair "power"
            rp
            (M.power_stretch ~one_hop_direct ~base ~sub pts ~beta:2.))
        [ true; false ])
    [ 101L; 102L ]

let test_engine_jobs_bit_identical () =
  let pts, base, sub = backbone_instance 103L in
  let run jobs =
    ( M.stretch_factors ~jobs ~base ~sub pts,
      M.combined_stretch ~jobs ~beta:2. ~base pts [ ("sub", sub) ] )
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  (* structural equality on the full result records: every float must
     be bit-identical whatever the worker count *)
  check "jobs 2 = jobs 1" true (r2 = r1);
  check "jobs 4 = jobs 1" true (r4 = r1)

let test_combined_equals_individual () =
  let pts, base, sub = backbone_instance 104L in
  match M.combined_stretch ~beta:2. ~base pts [ ("sub", sub) ] with
  | [ (name, c) ] ->
    check "name" true (name = "sub");
    let s = M.stretch_factors ~base ~sub pts in
    check "stretch exact" true (c.M.c_stretch = s);
    let p = M.power_stretch ~base ~sub pts ~beta:2. in
    check "power exact" true (c.M.c_power = Some p)
  | _ -> Alcotest.fail "expected one result"

let test_combined_multiple_subs () =
  let pts, base, sub = backbone_instance 105L in
  (* measuring the base against itself alongside another sub: the base
     rows must come out exactly 1, and the other sub must match its
     individually computed stretch *)
  match M.combined_stretch ~base pts [ ("id", base); ("sub", sub) ] with
  | [ (_, cid); (_, csub) ] ->
    checkf "identity len" 1. cid.M.c_stretch.M.len_max;
    checkf "identity hop" 1. cid.M.c_stretch.M.hop_max;
    check "shared base pass exact" true
      (csub.M.c_stretch = M.stretch_factors ~base ~sub pts)
  | _ -> Alcotest.fail "expected two results"

let test_engine_disconnected_raises () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 2. 0. |] in
  let base = G.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let sub = G.of_edges 3 [ (0, 1) ] in
  let got =
    try
      ignore (M.stretch_factors ~one_hop_direct:false ~jobs:2 ~base ~sub pts);
      None
    with Invalid_argument msg -> Some msg
  in
  check "raises with the first offending pair" true
    (got
    = Some
        "Metrics.stretch_factors: pair (0, 2) connected in base but not in \
         subgraph")

(* ---------------- Udg.is_udg ---------------- *)

let brute_force_is_udg pts ~radius g =
  let n = Array.length pts in
  G.node_count g = n
  &&
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if P.dist pts.(u) pts.(v) <= radius <> G.has_edge g u v then ok := false
    done
  done;
  !ok

let test_is_udg () =
  List.iter
    (fun seed ->
      let radius = 40. in
      let pts, g = random_udg seed ~n:50 ~radius in
      check "built UDG verifies" true (Wireless.Udg.is_udg pts ~radius g);
      (* removing any edge must be caught *)
      (match G.edges g with
      | (u, v) :: _ ->
        let g' = G.copy g in
        G.remove_edge g' u v;
        check "missing edge detected" false (Wireless.Udg.is_udg pts ~radius g')
      | [] -> ());
      (* adding an out-of-range edge must be caught by the edge count *)
      let far = ref None in
      for u = 0 to 49 do
        for v = u + 1 to 49 do
          if !far = None && P.dist pts.(u) pts.(v) > radius then
            far := Some (u, v)
        done
      done;
      (match !far with
      | Some (u, v) ->
        let g' = G.copy g in
        G.add_edge g' u v;
        check "extra edge detected" false (Wireless.Udg.is_udg pts ~radius g')
      | None -> ());
      (* agree with the O(n^2) definition on arbitrary graphs *)
      let rand = mk_rand seed in
      let mangled = G.copy g in
      List.iter
        (fun _ ->
          let u = int_of_float (rand () *. 50.) in
          let v = int_of_float (rand () *. 50.) in
          if u <> v then
            if G.has_edge mangled u v then G.remove_edge mangled u v
            else G.add_edge mangled u v)
        [ (); (); () ];
      check "matches brute force" (brute_force_is_udg pts ~radius mangled)
        (Wireless.Udg.is_udg pts ~radius mangled))
    [ 41L; 42L; 43L ]

let test_is_udg_degenerate () =
  check "empty" true (Wireless.Udg.is_udg [||] ~radius:1. (G.create 0));
  check "singleton" true
    (Wireless.Udg.is_udg [| P.make 0. 0. |] ~radius:1. (G.create 1));
  check "node count mismatch" false
    (Wireless.Udg.is_udg [| P.make 0. 0. |] ~radius:1. (G.create 2));
  (* radius 0: distinct points are never in range *)
  let pts = [| P.make 0. 0.; P.make 1. 0. |] in
  check "radius 0 empty graph" true (Wireless.Udg.is_udg pts ~radius:0. (G.create 2));
  check "radius 0 extra edge" false
    (Wireless.Udg.is_udg pts ~radius:0. (G.of_edges 2 [ (0, 1) ]))

let suites =
  [
    ( "netgraph.heap",
      [
        Alcotest.test_case "heap sort with duplicates" `Quick test_heap_sort;
        Alcotest.test_case "interleaved push/pop" `Quick test_heap_interleaved;
      ] );
    ( "netgraph.graph.neighbors",
      [ Alcotest.test_case "iter/fold" `Quick test_graph_neighbor_iteration ] );
    ( "netgraph.csr",
      [
        Alcotest.test_case "structure mirrors Graph" `Quick test_csr_structure;
        Alcotest.test_case "traversals bit-identical" `Quick
          test_csr_traversals_exact;
        Alcotest.test_case "weightless snapshots raise" `Quick
          test_csr_weightless_raises;
        Alcotest.test_case "component labels" `Quick test_csr_components;
      ] );
    ( "netgraph.pool",
      [
        Alcotest.test_case "parallel_for covers all indices" `Quick
          test_pool_parallel_for;
        Alcotest.test_case "smallest-index exception wins" `Quick
          test_pool_exception;
        Alcotest.test_case "pool reuse across jobs" `Quick test_pool_reuse;
      ] );
    ( "netgraph.metrics.engine",
      [
        Alcotest.test_case "matches the replaced implementation" `Quick
          test_engine_vs_reference;
        Alcotest.test_case "jobs 1/2/4 bit-identical" `Quick
          test_engine_jobs_bit_identical;
        Alcotest.test_case "combined = individual calls" `Quick
          test_combined_equals_individual;
        Alcotest.test_case "multiple subs share the base pass" `Quick
          test_combined_multiple_subs;
        Alcotest.test_case "disconnected sub raises" `Quick
          test_engine_disconnected_raises;
      ] );
    ( "wireless.is_udg",
      [
        Alcotest.test_case "grid verification" `Quick test_is_udg;
        Alcotest.test_case "degenerate inputs" `Quick test_is_udg_degenerate;
      ] );
  ]
