(* The route-query serving layer: epoch store, workload generator and
   the concurrent engine (lib/serve). *)

module P = Geometry.Point
module W = Serve.Workload
module E = Serve.Engine

let check = Alcotest.(check bool)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  pts

let snapshot_of pts radius =
  Core.Backbone.snapshot
    {
      Core.Backbone.Config.default with
      Core.Backbone.Config.radius;
      jobs = 1;
    }
    pts

(* ---------------- store ---------------- *)

let test_store_epochs () =
  let pts = instance 91L 120 60. in
  let snap = snapshot_of pts 60. in
  let store = Serve.Store.create snap in
  let e0 = Serve.Store.pin store in
  Alcotest.(check int) "first epoch id" 0 (Serve.Store.id e0);
  Alcotest.(check int) "node count" (Array.length pts)
    (Serve.Store.node_count e0);
  check "udg reweighted for stretch" true
    (Netgraph.Csr.has_weights (Serve.Store.udg_w e0));
  let e1 = Serve.Store.publish store snap in
  Alcotest.(check int) "published id" 1 (Serve.Store.id e1);
  Alcotest.(check int) "pin sees the new epoch" 1
    (Serve.Store.id (Serve.Store.pin store));
  (* the old pin is still a fully usable generation *)
  Alcotest.(check int) "old pin unchanged" 0 (Serve.Store.id e0);
  check "old view still routes" true
    (Core.Routing.greedy_v (Serve.Store.view e0) (Serve.Store.points e0)
       ~src:0 ~dst:0
    = Some [ 0 ])

(* ---------------- workload ---------------- *)

let test_workload_determinism () =
  let gen () =
    W.generate ~seed:5L ~n:200 ~count:500 ~skew:(W.Zipf 0.9) ~rate:1000. ()
  in
  let a = gen () and b = gen () in
  check "kinds repeat" true (a.W.kind = b.W.kind);
  check "srcs repeat" true (a.W.src = b.W.src);
  check "dsts repeat" true (a.W.dst = b.W.dst);
  check "arrivals repeat" true (a.W.arrival_us = b.W.arrival_us);
  Alcotest.(check int) "arrival per query" 500 (Array.length a.W.arrival_us);
  (* open-loop arrivals are monotone at 1/rate spacing *)
  for i = 1 to 499 do
    if not (a.W.arrival_us.(i) > a.W.arrival_us.(i - 1)) then
      Alcotest.fail "arrivals must be strictly increasing"
  done;
  let c = W.generate ~seed:6L ~n:200 ~count:500 () in
  check "different seed differs" true (a.W.src <> c.W.src);
  check "closed loop has no arrivals" true (c.W.arrival_us = [||])

let test_workload_spellings () =
  let m = { W.greedy = 0.5; gfg = 0.25; compass = 0.25; stretch = 0. } in
  (match W.mix_of_string (W.mix_to_string m) with
  | Ok m' -> check "mix round-trips" true (m = m')
  | Error e -> Alcotest.fail e);
  (match W.mix_of_string "greedy=1,unknown=2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scheme must be rejected");
  (match W.mix_of_string "greedy=0,gfg=0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "all-zero mix must be rejected");
  List.iter
    (fun s ->
      match W.skew_of_string s with
      | Ok sk -> check ("skew round-trips: " ^ s) true (W.skew_to_string sk = s)
      | Error e -> Alcotest.fail e)
    [ "uniform"; "zipf:0.9"; "hotspot:0.8/16" ];
  match W.skew_of_string "pareto:3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown skew must be rejected"

let test_workload_skew () =
  let freq n (w : W.t) =
    let f = Array.make n 0 in
    Array.iter (fun u -> f.(u) <- f.(u) + 1) w.W.src;
    Array.iter (fun u -> f.(u) <- f.(u) + 1) w.W.dst;
    f
  in
  let zipf =
    freq 100 (W.generate ~seed:8L ~n:100 ~count:4000 ~skew:(W.Zipf 1.2) ())
  in
  check "zipf: low ids hot" true (zipf.(0) > zipf.(50) && zipf.(0) > zipf.(99));
  let hot =
    freq 100
      (W.generate ~seed:8L ~n:100 ~count:1000
         ~skew:(W.Hotspot { nodes = 1; frac = 1. })
         ())
  in
  let nonzero = Array.fold_left (fun a f -> if f > 0 then a + 1 else a) 0 hot in
  Alcotest.(check int) "hotspot frac=1, one node takes all" 1 nonzero

(* ---------------- engine ---------------- *)

let small_mix = { W.default_mix with W.stretch = 0.01 }

let serve_jsonl (w : W.t) r =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  E.write_jsonl fmt w r;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_engine_jobs_identical () =
  let pts = instance 92L 300 40. in
  let store = Serve.Store.create (snapshot_of pts 40.) in
  let w =
    W.generate ~seed:17L ~n:(Array.length pts) ~count:3000 ~mix:small_mix
      ~skew:(W.Hotspot { nodes = 8; frac = 0.4 })
      ()
  in
  let run jobs = E.run ~jobs ~batch:256 ~latency:false ~store w in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  check "hops identical 1/2" true (r1.E.hops = r2.E.hops);
  check "hops identical 1/4" true (r1.E.hops = r4.E.hops);
  check "epochs identical" true
    (r1.E.epoch = r2.E.epoch && r1.E.epoch = r4.E.epoch);
  check "stretch identical (NaN-aware)" true
    (compare r1.E.stretch r2.E.stretch = 0
    && compare r1.E.stretch r4.E.stretch = 0);
  (* and the result logs are byte-identical *)
  let l1 = serve_jsonl w r1 in
  Alcotest.(check string) "jsonl identical 1/2" l1 (serve_jsonl w r2);
  Alcotest.(check string) "jsonl identical 1/4" l1 (serve_jsonl w r4);
  (* some queries were actually served *)
  let delivered =
    Array.fold_left (fun a h -> if h >= 0 then a + 1 else a) 0 r1.E.hops
  in
  check "some delivered" true (delivered > 0)

let test_engine_churn_epochs () =
  let pts = instance 93L 200 50. in
  let store = Serve.Store.create (snapshot_of pts 50.) in
  let w = W.generate ~seed:18L ~n:(Array.length pts) ~count:2000 () in
  let jitter = Wireless.Rand.create 930L in
  let moved () =
    Array.map
      (fun (p : P.t) ->
        let j () = Wireless.Rand.float jitter 2. -. 1. in
        P.make (p.P.x +. j ()) (p.P.y +. j ()))
      pts
  in
  (* publish a rebuilt snapshot before every even batch *)
  let on_batch b =
    if b > 0 && b mod 2 = 0 then
      ignore (Serve.Store.publish store (snapshot_of (moved ()) 50.))
  in
  let r = E.run ~jobs:2 ~batch:250 ~latency:false ~on_batch ~store w in
  (* 8 batches, publishes before b = 2, 4, 6 -> epochs 0..3 *)
  Alcotest.(check int) "final epoch" 3 (Serve.Store.id (Serve.Store.pin store));
  Alcotest.(check int) "first query on epoch 0" 0 r.E.epoch.(0);
  Alcotest.(check int) "last query on epoch 3" 3 r.E.epoch.(1999);
  Array.iteri
    (fun q e ->
      if q > 0 && e < r.E.epoch.(q - 1) then
        Alcotest.fail "epoch must be non-decreasing over the query index";
      (* batch boundaries are the only roll points *)
      if q > 0 && q mod 250 <> 0 && e <> r.E.epoch.(q - 1) then
        Alcotest.fail "epoch rolled mid-batch")
    r.E.epoch

(* The acceptance gate for the zero-allocation query path: a
   100k-query greedy/compass run at jobs = 1 with latency sampling off
   must stay within a few minor words per query — the per-batch
   closures and one-time scratch warmup, nothing per-query. *)
let test_engine_alloc_gate () =
  let pts = instance 94L 400 40. in
  let store = Serve.Store.create (snapshot_of pts 40.) in
  let w =
    W.generate ~seed:19L ~n:(Array.length pts) ~count:100_000
      ~mix:{ W.greedy = 0.7; gfg = 0.; compass = 0.3; stretch = 0. }
      ()
  in
  let r = E.run ~jobs:1 ~batch:8192 ~latency:false ~store w in
  let per_query = r.E.minor_words /. float_of_int r.E.count in
  if per_query >= 4. then
    Alcotest.failf "steady-state allocation: %.2f minor words/query" per_query

let test_engine_stretch_sane () =
  let pts = instance 95L 250 50. in
  let store = Serve.Store.create (snapshot_of pts 50.) in
  let w =
    W.generate ~seed:20L ~n:(Array.length pts) ~count:400
      ~mix:{ W.greedy = 0.; gfg = 0.; compass = 0.; stretch = 1. }
      ()
  in
  let r = E.run ~latency:false ~store w in
  let seen = ref 0 in
  Array.iteri
    (fun q s ->
      if not (Float.is_nan s) then begin
        incr seen;
        if s < 1. -. 1e-9 then
          Alcotest.failf "stretch %.17g < 1 at query %d" s q;
        if r.E.hops.(q) < 0 then
          Alcotest.fail "stretch recorded for a dropped query"
      end)
    r.E.stretch;
  check "stretch probes measured" true (!seen > 0)

let test_engine_open_loop_latency () =
  let pts = instance 96L 150 60. in
  let store = Serve.Store.create (snapshot_of pts 60.) in
  let w =
    W.generate ~seed:21L ~n:(Array.length pts) ~count:300 ~rate:1_000_000. ()
  in
  let r = E.run ~store w in
  Alcotest.(check int) "latency per query" 300 (Array.length r.E.latency_us);
  Array.iter
    (fun l ->
      if Float.is_nan l then Alcotest.fail "open-loop latency must be sampled")
    r.E.latency_us;
  let s = E.summarize r in
  check "p50 <= p99 <= p999" true
    (s.E.s_lat_p50_us <= s.E.s_lat_p99_us
    && s.E.s_lat_p99_us <= s.E.s_lat_p999_us);
  check "throughput positive" true (s.E.s_qps > 0.);
  (* latency off leaves no array behind *)
  let r' = E.run ~latency:false ~store (W.generate ~seed:21L ~n:10 ~count:5 ()) in
  check "no latency array when off" true (r'.E.latency_us = [||])

let test_engine_empty_workload () =
  let pts = instance 97L 60 60. in
  let store = Serve.Store.create (snapshot_of pts 60.) in
  let r = E.run ~store (W.generate ~seed:1L ~n:60 ~count:0 ()) in
  Alcotest.(check int) "no queries" 0 r.E.count;
  let s = E.summarize r in
  Alcotest.(check int) "nothing delivered" 0 s.E.s_delivered

(* ---------------- result log ---------------- *)

let test_jsonl_roundtrip () =
  let pts = instance 98L 200 50. in
  let store = Serve.Store.create (snapshot_of pts 50.) in
  let w =
    W.generate ~seed:23L ~n:(Array.length pts) ~count:600 ~mix:small_mix ()
  in
  let r = E.run ~latency:false ~store w in
  let rows = E.read_jsonl (serve_jsonl w r) in
  Alcotest.(check int) "row per query" 600 (List.length rows);
  List.iteri
    (fun i (row : E.row) ->
      Alcotest.(check int) "q in file order" i row.E.r_q;
      Alcotest.(check int) "hops" r.E.hops.(i) row.E.r_hops;
      Alcotest.(check int) "epoch" r.E.epoch.(i) row.E.r_epoch;
      Alcotest.(check int) "src" w.W.src.(i) row.E.r_src;
      Alcotest.(check int) "dst" w.W.dst.(i) row.E.r_dst;
      Alcotest.(check string) "op" (W.op_name w.W.kind.(i)) row.E.r_op;
      if w.W.kind.(i) = W.k_stretch then
        check "stretch round-trips (NaN-aware)" true
          (Float.equal row.E.r_stretch r.E.stretch.(i))
      else check "no stretch field" true (Float.is_nan row.E.r_stretch))
    rows;
  match E.read_jsonl "{\"kind\":\"serve\",\"q\":banana}" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line must raise"

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "store epochs: publish and pin" `Quick
          test_store_epochs;
        Alcotest.test_case "workload determinism" `Quick
          test_workload_determinism;
        Alcotest.test_case "workload flag spellings" `Quick
          test_workload_spellings;
        Alcotest.test_case "workload skew shapes" `Quick test_workload_skew;
        Alcotest.test_case "engine: jobs 1/2/4 bit-identical" `Slow
          test_engine_jobs_identical;
        Alcotest.test_case "engine: churn rolls epochs at batches" `Slow
          test_engine_churn_epochs;
        Alcotest.test_case "engine: zero-alloc steady state" `Slow
          test_engine_alloc_gate;
        Alcotest.test_case "engine: stretch >= 1" `Quick
          test_engine_stretch_sane;
        Alcotest.test_case "engine: open-loop latency" `Quick
          test_engine_open_loop_latency;
        Alcotest.test_case "engine: empty workload" `Quick
          test_engine_empty_workload;
        Alcotest.test_case "result log round-trips" `Quick test_jsonl_roundtrip;
      ] );
  ]
