(* The lint layer: tokenizer behaviour on the constructs that usually
   break naive scanners, positive and negative fixtures for every rule
   in the catalog, suppression and baseline round-trips, JSON
   round-trips, and the self-lint — the repo must come out clean under
   its own analyzer. *)

let check = Alcotest.(check bool)

module T = Lint.Tokenizer

(* ---------- tokenizer ---------- *)

let kinds src = List.map (fun t -> t.T.kind) (T.tokenize src)
let texts src = List.map (fun t -> t.T.text) (T.tokenize src)

let tok_nested_comments () =
  check "nested comment is one token" true
    (kinds "(* a (* nested *) b *) x" = [ T.Comment; T.Ident ]);
  check "string closer inside comment ignored" true
    (kinds "(* \"*)\" still comment *) y" = [ T.Comment; T.Ident ])

let tok_strings () =
  check "escaped quote stays inside" true
    (texts "\"a\\\"b\" z" = [ "a\\\"b"; "z" ]);
  check "quoted string literal" true
    (kinds "{xx|raw \" (* not a comment *) |xx} q"
    = [ T.String_lit; T.Ident ]);
  check "idents inside strings are not code" true
    (kinds "\"Hashtbl.iter\"" = [ T.String_lit ])

let tok_chars () =
  check "simple char" true (kinds "'a' f" = [ T.Char_lit; T.Ident ]);
  check "escaped quote char" true (kinds "'\\''" = [ T.Char_lit ]);
  check "newline escape" true (kinds "'\\n'" = [ T.Char_lit ]);
  check "type variable is an op + ident" true
    (kinds "'a list" = [ T.Op; T.Ident; T.Ident ])

let tok_dotted () =
  check "dotted path merges" true
    (texts "Stdlib.Random.self_init ()"
    = [ "Stdlib.Random.self_init"; "("; ")" ]);
  check "record access merges" true (List.mem "h.keys" (texts "h.keys <- x"));
  check "array access does not merge" true
    (texts "a.(0)" = [ "a"; "."; "("; "0"; ")" ]);
  let t = List.hd (T.tokenize "Stdlib.Random.int") in
  check "has_component" true (T.has_component t "Random");
  check "has_component miss" false (T.has_component t "Rand");
  check "last_component" true (T.last_component t = "int")

let tok_numbers () =
  check "float with exponent" true (kinds "1.5e3" = [ T.Float_lit ]);
  check "trailing-dot float" true (kinds "9007.  " = [ T.Float_lit ]);
  check "int" true (kinds "42" = [ T.Int_lit ]);
  check "hex int" true (kinds "0x9E37L" = [ T.Int_lit ]);
  check "line/col" true
    (match T.tokenize "let x =\n  3.14" with
    | [ _; _; _; f ] -> f.T.line = 2 && f.T.col = 3 && f.T.kind = T.Float_lit
    | _ -> false)

(* ---------- rules: positive / negative fixtures ---------- *)

let lint ?(path = "lib/geometry/snippet.ml") ?(has_mli = true) src =
  fst (Lint.Engine.lint_source ~has_mli ~path src)

let rules_of ds = List.map (fun d -> d.Lint.Diag.rule) ds
let fires r ?path ?has_mli src = List.mem r (rules_of (lint ?path ?has_mli src))

let d001 () =
  check "Random.int flagged" true
    (fires "D001" ~path:"lib/core/x.ml" "let x = Random.int 5");
  check "Stdlib.Random.self_init flagged" true
    (fires "D001" ~path:"bin/x.ml" "let () = Stdlib.Random.self_init ()");
  check "rand.ml exempt" false
    (fires "D001" ~path:"lib/wireless/rand.ml" "let x = Random.int 5");
  check "Wireless.Rand fine" false
    (fires "D001" ~path:"lib/core/x.ml" "let x = Rand.int r 5")

let d002 () =
  check "bare fold flagged" true
    (fires "D002" ~path:"lib/core/x.ml"
       "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []");
  check "iter flagged" true
    (fires "D002" ~path:"lib/core/x.ml"
       "let f tbl = Hashtbl.iter (fun _ v -> out v) tbl");
  check "sort-wrapped fold allowed" false
    (fires "D002" ~path:"lib/core/x.ml"
       "let f tbl = List.sort cmp (Hashtbl.fold (fun k _ a -> k :: a) tbl [])");
  check "piped into sort allowed" false
    (fires "D002" ~path:"lib/core/x.ml"
       "let f tbl =\n\
       \  Hashtbl.fold (fun k _ a -> k :: a) tbl [] |> List.sort_uniq cmp");
  check "graph.ml hosts the wrappers" false
    (fires "D002" ~path:"lib/netgraph/graph.ml"
       "let f tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl []");
  check "outside lib not scoped" false
    (fires "D002" ~path:"bench/x.ml"
       "let f tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl []")

let d003 () =
  check "gettimeofday flagged" true
    (fires "D003" ~path:"lib/core/x.ml" "let t = Unix.gettimeofday ()");
  check "Sys.time flagged" true
    (fires "D003" ~path:"lib/distsim/x.ml" "let t = Sys.time ()");
  check "obs exempt" false
    (fires "D003" ~path:"lib/obs/obs.ml" "let t = Unix.gettimeofday ()");
  check "bench exempt" false
    (fires "D003" ~path:"bench/main.ml" "let t = Unix.gettimeofday ()")

let f001 () =
  check "List.sort compare flagged" true
    (fires "F001" ~path:"lib/netgraph/x.ml" "let s l = List.sort compare l");
  check "min of float flagged" true
    (fires "F001" ~path:"lib/geometry/x.ml" "let m x = min x 0.5");
  check "Float.compare fine" false
    (fires "F001" ~path:"lib/netgraph/x.ml"
       "let s l = List.sort Float.compare l");
  check "defining compare fine" false
    (fires "F001" ~path:"lib/netgraph/x.ml" "let compare a b = 0");
  check "int min fine" false
    (fires "F001" ~path:"lib/netgraph/x.ml" "let m x = min 1 x");
  check "core out of scope" false
    (fires "F001" ~path:"lib/core/x.ml" "let s l = List.sort compare l")

let f002 () =
  check "x = 0. flagged" true
    (fires "F002" ~path:"lib/netgraph/x.ml" "let f x = x = 0.");
  check "<> 1e-9 flagged" true
    (fires "F002" ~path:"lib/delaunay/x.ml" "let f x = x <> 1e-9");
  check "= nan flagged" true
    (fires "F002" ~path:"lib/geometry/x.ml" "let f x = x = nan");
  check "let binding fine" false
    (fires "F002" ~path:"lib/geometry/x.ml" "let x = 0.");
  check "record literal fine" false
    (fires "F002" ~path:"lib/geometry/x.ml"
       "let p = { x = 0.; y = 1.5 }");
  check "optional default fine" false
    (fires "F002" ~path:"lib/geometry/x.ml"
       "let f ?(eps = 1e-9) x = x + eps");
  check "predicates.ml exempt" false
    (fires "F002" ~path:"lib/geometry/predicates.ml" "let f e = e = 0.")

let m001 () =
  check "toplevel Hashtbl flagged" true
    (fires "M001" ~path:"lib/geometry/x.ml" "let cache = Hashtbl.create 16");
  check "toplevel ref flagged" true
    (fires "M001" ~path:"lib/netgraph/x.ml" "let acc = ref []");
  check "toplevel scratch array flagged" true
    (fires "M001" ~path:"lib/wireless/x.ml" "let buf = Array.make 64 0.");
  check "function binding fine" false
    (fires "M001" ~path:"lib/geometry/x.ml"
       "let make n = Array.make n 0.");
  check "Atomic fine" false
    (fires "M001" ~path:"lib/geometry/x.ml" "let hits = Atomic.make 0");
  check "DLS fine" false
    (fires "M001" ~path:"lib/netgraph/x.ml"
       "let key = Domain.DLS.new_key (fun () -> ref [])");
  check "annotation fine" false
    (fires "M001" ~path:"lib/geometry/x.ml"
       "(* lint: domain-local scratch, reset at every public entry *)\n\
        let buf = ref []");
  check "serve in scope" true
    (fires "M001" ~path:"lib/serve/x.ml" "let cache = Hashtbl.create 16");
  check "serve Atomic fine" false
    (fires "M001" ~path:"lib/serve/x.ml" "let cell = Atomic.make e");
  check "core out of scope" false
    (fires "M001" ~path:"lib/core/x.ml" "let cache = Hashtbl.create 16")

let m002 () =
  check "G.add_edge in core flagged" true
    (fires "M002" ~path:"lib/core/x.ml" "let f g = G.add_edge g u v");
  check "qualified Netgraph.Graph.add_edge flagged" true
    (fires "M002" ~path:"lib/core/x.ml"
       "let f g = Netgraph.Graph.add_edge g 0 1");
  check "remove_edge flagged" true
    (fires "M002" ~path:"lib/core/x.ml" "let f g = G.remove_edge g u v");
  check "Builder.add_edge fine" false
    (fires "M002" ~path:"lib/core/x.ml" "let f b = Builder.add_edge b u v");
  check "local add_edge helper fine" false
    (fires "M002" ~path:"lib/core/x.ml"
       "let add_edge u v = Hashtbl.replace edges (u, v) ()");
  check "of_edges sealing fine" false
    (fires "M002" ~path:"lib/core/x.ml" "let g = G.of_edges n edges");
  check "outside core not scoped" false
    (fires "M002" ~path:"lib/netgraph/x.ml" "let f g = G.add_edge g u v")

let h001 () =
  check "lib module without mli flagged" true
    (fires "H001" ~path:"lib/geometry/x.ml" ~has_mli:false "let x = 1");
  check "with mli fine" false
    (fires "H001" ~path:"lib/geometry/x.ml" ~has_mli:true "let x = 1");
  check "bin exempt" false
    (fires "H001" ~path:"bin/x.ml" ~has_mli:false "let x = 1")

let h002 () =
  check "Obj.magic flagged" true
    (fires "H002" ~path:"bin/x.ml" "let f x = Obj.magic x");
  check "Obj.repr fine" false
    (fires "H002" ~path:"bin/x.ml" "let f x = Obj.repr x")

let h003 () =
  check "bare assert false flagged" true
    (fires "H003" ~path:"lib/core/x.ml" "let f () = assert false");
  check "commented assert false fine" false
    (fires "H003" ~path:"lib/core/x.ml"
       "let f () = assert false (* unreachable: guarded above *)");
  check "empty failwith flagged" true
    (fires "H003" ~path:"lib/core/x.ml" "let f () = failwith \"\"");
  check "failwith with message fine" false
    (fires "H003" ~path:"lib/core/x.ml" "let f () = failwith \"boom\"");
  check "ordinary assert fine" false
    (fires "H003" ~path:"lib/core/x.ml" "let f x = assert (x > 0)");
  check "tests exempt" false
    (fires "H003" ~path:"test/x.ml" "let f () = assert false")

let o001 () =
  check "uppercase name flagged" true
    (fires "O001" ~path:"lib/serve/x.ml"
       "let c = Obs.counter \"Serve.Queries\"");
  check "space in name flagged" true
    (fires "O001" ~path:"bin/x.ml" "let d = Obs.dist \"serve hops\"");
  check "empty name flagged" true
    (fires "O001" ~path:"lib/core/x.ml" "let g = Obs.gauge \"\"");
  check "dash flagged" true
    (fires "O001" ~path:"lib/core/x.ml"
       "let h = Obs.histogram \"serve-latency\"");
  check "dotted lowercase fine" false
    (fires "O001" ~path:"lib/serve/x.ml"
       "let c = Obs.counter \"serve.queries_total.v2\"");
  check "computed names skipped" false
    (fires "O001" ~path:"bench/x.ml"
       "let c = Obs.counter (Printf.sprintf \"bench.%s.n%d\" name n)");
  check "other Obs calls out of scope" false
    (fires "O001" ~path:"lib/core/x.ml" "let v = Obs.span \"Not A Metric\" f");
  check "name inside a plain string is not a registration" false
    (fires "O001" ~path:"lib/core/x.ml"
       "let doc = \"call Obs.counter with a name like X Y\"")

let o002 () =
  check "raw Obs.Trace.send in lib flagged" true
    (fires "O002" ~path:"lib/core/x.ml"
       "let f () = Obs.Trace.send ~round:0 ~time:0. ~kind:\"k\" ~src:0 \
        ~dst:(-1) ~lam:1 ~sseq:0");
  check "raw Trace.deliver in bin flagged" true
    (fires "O002" ~path:"bin/x.ml"
       "let g () = Trace.deliver ~round:0 ~time:0. ~kind:\"k\" ~src:0 ~dst:1 \
        ~lam:2 ~sseq:0 ~dseq:0");
  check "the stamping helper itself is exempt" false
    (fires "O002" ~path:"lib/distsim/stamp.ml"
       "let f () = Obs.Trace.send ~round:0 ~time:0. ~kind:\"k\" ~src:0 \
        ~dst:(-1) ~lam:1 ~sseq:0");
  check "the hook definitions are exempt" false
    (fires "O002" ~path:"lib/obs/obs.ml" "let x = Trace.send");
  check "tests exercising raw hooks are out of scope" false
    (fires "O002" ~path:"test/x.ml" "let f () = T.send; Obs.Trace.send");
  check "Stamp.send is the sanctioned path" false
    (fires "O002" ~path:"lib/core/x.ml"
       "let f st = Stamp.send st ~round:0 ~time:0. ~kind:\"k\" ~src:0");
  check "unrelated sends out of scope" false
    (fires "O002" ~path:"lib/core/x.ml" "let f ch m = Channel.send ch m")

(* ---------- suppressions ---------- *)

let suppression () =
  let src =
    "let f tbl =\n\
    \  (* lint: disable D002 order-insensitive accumulation into a set *)\n\
    \  Hashtbl.fold (fun k _ a -> add k a) tbl empty"
  in
  let findings, cut = Lint.Engine.lint_source ~path:"lib/core/x.ml" src in
  check "suppressed" true (findings = []);
  check "counted" true (cut = 1);
  let wrong =
    "let f tbl =\n\
    \  (* lint: disable D001 wrong rule *)\n\
    \  Hashtbl.fold (fun k _ a -> a) tbl []"
  in
  check "wrong rule id does not silence" true
    (fires "D002" ~path:"lib/core/x.ml" wrong);
  let reasonless =
    "let f tbl =\n\
    \  (* lint: disable D002 *)\n\
    \  Hashtbl.fold (fun k _ a -> a) tbl []"
  in
  check "reasonless suppression is inert" true
    (fires "D002" ~path:"lib/core/x.ml" reasonless)

(* ---------- baseline ---------- *)

let mk_diag ?(rule = "D002") ?(file = "lib/core/x.ml") ?(line = 3) () =
  {
    Lint.Diag.rule;
    severity = Lint.Diag.Error;
    file;
    line;
    col = 1;
    message = "msg";
    excerpt = "Hashtbl.fold ...";
  }

let baseline_roundtrip () =
  let entries =
    [
      { Lint.Baseline.rule = "D002"; file = "lib/obs/obs.ml"; count = 3;
        reason = "order-insensitive reset" };
      { Lint.Baseline.rule = "H003"; file = "lib/core/ldel.ml"; count = 1;
        reason = "documented in DESIGN.md" };
    ]
  in
  let back = Lint.Baseline.of_string (Lint.Baseline.to_string entries) in
  check "round-trips" true (back = entries);
  check "reasonless entry rejected" true
    (try
       ignore (Lint.Baseline.of_string "D002\tlib/x.ml\t1\t \n");
       false
     with Failure _ -> true)

let baseline_apply () =
  let e =
    [ { Lint.Baseline.rule = "D002"; file = "lib/core/x.ml"; count = 1;
        reason = "grandfathered" } ]
  in
  let d1 = mk_diag ~line:3 () and d2 = mk_diag ~line:9 () in
  let keep, grand = Lint.Baseline.apply e [ d2; d1 ] in
  check "budget consumed in position order" true
    (match grand with [ (g, r) ] -> g.Lint.Diag.line = 3 && r = "grandfathered" | _ -> false);
  check "excess finding still fails" true
    (match keep with [ k ] -> k.Lint.Diag.line = 9 | _ -> false);
  let other = mk_diag ~rule:"D001" () in
  let keep2, _ = Lint.Baseline.apply e [ other ] in
  check "other rules unaffected" true (keep2 = [ other ]);
  check "of_findings collapses" true
    (Lint.Baseline.of_findings ~reason:"r" [ d1; d2 ]
    = [ { Lint.Baseline.rule = "D002"; file = "lib/core/x.ml"; count = 2;
          reason = "r" } ])

(* ---------- JSON ---------- *)

let json_roundtrip () =
  let d =
    {
      Lint.Diag.rule = "F002";
      severity = Lint.Diag.Warning;
      file = "lib/geometry/x.ml";
      line = 12;
      col = 7;
      message = "tricky \"quotes\" and \\ backslash";
      excerpt = "if x = 0. then (* \"why\" *)";
    }
  in
  (match Lint.Diag.of_json_line (Lint.Diag.to_json_line d) with
  | Some back -> check "finding round-trips" true (Lint.Diag.equal d back)
  | None -> Alcotest.fail "finding did not parse back");
  let report =
    Lint.Diag.to_json_line d ^ "\n\n"
    ^ "{\"kind\":\"summary\",\"findings\":1,\"grandfathered\":0,\"suppressed\":0,\"files\":1}\n"
  in
  check "reader skips summary and blanks" true
    (match Lint.Diag.read_json_lines report with
    | [ one ] -> Lint.Diag.equal d one
    | _ -> false)

(* ---------- self-lint ---------- *)

(* Tests run from _build/default/test; the tree above it is the
   (copied) repository root, declared as deps in test/dune. *)
let repo_root = ".."

let self_lint () =
  let baseline_file = Filename.concat repo_root "lint.baseline" in
  check "baseline present" true (Sys.file_exists baseline_file);
  let baseline = Lint.Baseline.read baseline_file in
  List.iter
    (fun (e : Lint.Baseline.entry) ->
      check ("baseline reason: " ^ e.file) true
        (String.trim e.reason <> ""))
    baseline;
  let res = Lint.Engine.run ~baseline repo_root in
  List.iter
    (fun d -> Format.eprintf "self-lint: %a@." Lint.Diag.pp d)
    res.findings;
  check "zero unsuppressed findings" true (res.findings = []);
  check "scanned the whole tree" true (res.files > 50);
  check "no stale baseline entries" true (res.unused_baseline = []);
  (* the --json report of everything the run saw must round-trip
     through the reader *)
  let all = List.map fst res.grandfathered in
  let report =
    String.concat "\n" (List.map Lint.Diag.to_json_line all)
    ^ "\n{\"kind\":\"summary\",\"findings\":0,\"grandfathered\":3,\"suppressed\":2,\"files\":84}"
  in
  let back = Lint.Diag.read_json_lines report in
  check "self report round-trips" true
    (List.length back = List.length all
    && List.for_all2 Lint.Diag.equal all back)

let catalog () =
  check "at least 8 rules" true (List.length Lint.Rules.all >= 8);
  let families =
    List.sort_uniq String.compare
      (List.map (fun (r : Lint.Rules.rule) -> r.family) Lint.Rules.all)
  in
  check "four families" true (List.length families = 4);
  List.iter
    (fun (r : Lint.Rules.rule) ->
      check ("doc for " ^ r.id) true (String.length r.doc > 20))
    Lint.Rules.all;
  check "find" true
    (match Lint.Rules.find "D001" with Some r -> r.id = "D001" | None -> false);
  check "find miss" true (Lint.Rules.find "Z999" = None)

let suites =
  [
    ( "lint.tokenizer",
      [
        Alcotest.test_case "nested comments" `Quick tok_nested_comments;
        Alcotest.test_case "strings" `Quick tok_strings;
        Alcotest.test_case "chars" `Quick tok_chars;
        Alcotest.test_case "dotted paths" `Quick tok_dotted;
        Alcotest.test_case "numbers, positions" `Quick tok_numbers;
      ] );
    ( "lint.rules",
      [
        Alcotest.test_case "D001 stdlib random" `Quick d001;
        Alcotest.test_case "D002 hashtbl order" `Quick d002;
        Alcotest.test_case "D003 wall clock" `Quick d003;
        Alcotest.test_case "F001 poly compare" `Quick f001;
        Alcotest.test_case "F002 float literal eq" `Quick f002;
        Alcotest.test_case "M001 toplevel mutable" `Quick m001;
        Alcotest.test_case "M002 mutable graph construction" `Quick m002;
        Alcotest.test_case "H001 missing mli" `Quick h001;
        Alcotest.test_case "H002 obj magic" `Quick h002;
        Alcotest.test_case "H003 silent dead ends" `Quick h003;
        Alcotest.test_case "O001 metric name convention" `Quick o001;
        Alcotest.test_case "O002 stamped trace events" `Quick o002;
        Alcotest.test_case "catalog" `Quick catalog;
      ] );
    ( "lint.plumbing",
      [
        Alcotest.test_case "suppressions" `Quick suppression;
        Alcotest.test_case "baseline round-trip" `Quick baseline_roundtrip;
        Alcotest.test_case "baseline apply" `Quick baseline_apply;
        Alcotest.test_case "json round-trip" `Quick json_roundtrip;
      ] );
    ("lint.self", [ Alcotest.test_case "repo self-lints clean" `Quick self_lint ]);
  ]
