(* The lint layer: tokenizer behaviour on the constructs that usually
   break naive scanners (plus the torture cases that broke this one),
   positive and negative fixtures for the local rules, multi-file
   projects exercising the interprocedural layer (call-graph
   resolution hard cases, Pool-reachability retargeting with witness
   chains, E001–E003), suppression and baseline round-trips, the DOT
   export's structure, and the self-lint — the repo must come out
   clean under its own analyzer. *)

let check = Alcotest.(check bool)

module T = Lint.Tokenizer

(* ---------- tokenizer ---------- *)

let kinds src = List.map (fun t -> t.T.kind) (T.tokenize src)
let texts src = List.map (fun t -> t.T.text) (T.tokenize src)

let tok_nested_comments () =
  check "nested comment is one token" true
    (kinds "(* a (* nested *) b *) x" = [ T.Comment; T.Ident ]);
  check "string closer inside comment ignored" true
    (kinds "(* \"*)\" still comment *) y" = [ T.Comment; T.Ident ])

let tok_strings () =
  check "escaped quote stays inside" true
    (texts "\"a\\\"b\" z" = [ "a\\\"b"; "z" ]);
  check "quoted string literal" true
    (kinds "{xx|raw \" (* not a comment *) |xx} q"
    = [ T.String_lit; T.Ident ]);
  check "idents inside strings are not code" true
    (kinds "\"Hashtbl.iter\"" = [ T.String_lit ])

let tok_chars () =
  check "simple char" true (kinds "'a' f" = [ T.Char_lit; T.Ident ]);
  check "escaped quote char" true (kinds "'\\''" = [ T.Char_lit ]);
  check "newline escape" true (kinds "'\\n'" = [ T.Char_lit ]);
  check "type variable is an op + ident" true
    (kinds "'a list" = [ T.Op; T.Ident; T.Ident ])

(* The cases that break naive scanners: literals nested inside
   comments must be skipped the way the real lexer skips them, or a
   comment-closer inside them eats the rest of the file. *)
let tok_torture () =
  check "char-lit quote inside comment does not open a string" true
    (kinds "(* match c with '\"' -> () *) k" = [ T.Comment; T.Ident ]);
  check "string with escaped quote then closer inside comment" true
    (kinds "(* \"a\\\"*)\" b *) w" = [ T.Comment; T.Ident ]);
  check "quoted string inside comment hides the closer" true
    (kinds "(* {q|*)|q} *) y" = [ T.Comment; T.Ident ]);
  check "escaped-quote char inside comment hides the closer" true
    (kinds "(* '\\'' *) z" = [ T.Comment; T.Ident ]);
  check "mismatched quoted-string id is not a closer" true
    (texts "{a|xx |b} yy|a} z" = [ "xx |b} yy"; "z" ]);
  check "empty-id quoted string" true
    (kinds "{|raw \" body |} tail" = [ T.String_lit; T.Ident ]);
  check "nested quoted delimiters stay one literal" true
    (kinds "{outer|{inner|x|inner}|outer} e" = [ T.String_lit; T.Ident ]);
  check "backslash-backslash before closing quote" true
    (texts "\"a\\\\\" b" = [ "a\\\\"; "b" ]);
  check "brace before pipe-less body is an op" true
    (kinds "{ x = 1 }" <> [ T.String_lit ])

let tok_dotted () =
  check "dotted path merges" true
    (texts "Stdlib.Random.self_init ()"
    = [ "Stdlib.Random.self_init"; "("; ")" ]);
  check "record access merges" true (List.mem "h.keys" (texts "h.keys <- x"));
  check "array access does not merge" true
    (texts "a.(0)" = [ "a"; "."; "("; "0"; ")" ]);
  let t = List.hd (T.tokenize "Stdlib.Random.int") in
  check "has_component" true (T.has_component t "Random");
  check "has_component miss" false (T.has_component t "Rand");
  check "last_component" true (T.last_component t = "int")

let tok_numbers () =
  check "float with exponent" true (kinds "1.5e3" = [ T.Float_lit ]);
  check "trailing-dot float" true (kinds "9007.  " = [ T.Float_lit ]);
  check "int" true (kinds "42" = [ T.Int_lit ]);
  check "hex int" true (kinds "0x9E37L" = [ T.Int_lit ]);
  check "line/col" true
    (match T.tokenize "let x =\n  3.14" with
    | [ _; _; _; f ] -> f.T.line = 2 && f.T.col = 3 && f.T.kind = T.Float_lit
    | _ -> false)

(* ---------- local rules: positive / negative fixtures ---------- *)

let lint ?(path = "lib/geometry/snippet.ml") ?(has_mli = true) src =
  fst (Lint.Engine.lint_source ~has_mli ~path src)

let rules_of ds = List.map (fun d -> d.Lint.Diag.rule) ds
let fires r ?path ?has_mli src = List.mem r (rules_of (lint ?path ?has_mli src))

let f001 () =
  check "List.sort compare flagged" true
    (fires "F001" ~path:"lib/netgraph/x.ml" "let s l = List.sort compare l");
  check "min of float flagged" true
    (fires "F001" ~path:"lib/geometry/x.ml" "let m x = min x 0.5");
  check "Float.compare fine" false
    (fires "F001" ~path:"lib/netgraph/x.ml"
       "let s l = List.sort Float.compare l");
  check "defining compare fine" false
    (fires "F001" ~path:"lib/netgraph/x.ml" "let compare a b = 0");
  check "int min fine" false
    (fires "F001" ~path:"lib/netgraph/x.ml" "let m x = min 1 x");
  check "core out of scope" false
    (fires "F001" ~path:"lib/core/x.ml" "let s l = List.sort compare l")

let f002 () =
  check "x = 0. flagged" true
    (fires "F002" ~path:"lib/netgraph/x.ml" "let f x = x = 0.");
  check "<> 1e-9 flagged" true
    (fires "F002" ~path:"lib/delaunay/x.ml" "let f x = x <> 1e-9");
  check "= nan flagged" true
    (fires "F002" ~path:"lib/geometry/x.ml" "let f x = x = nan");
  check "let binding fine" false
    (fires "F002" ~path:"lib/geometry/x.ml" "let x = 0.");
  check "record literal fine" false
    (fires "F002" ~path:"lib/geometry/x.ml"
       "let p = { x = 0.; y = 1.5 }");
  check "optional default fine" false
    (fires "F002" ~path:"lib/geometry/x.ml"
       "let f ?(eps = 1e-9) x = x + eps");
  check "predicates.ml exempt" false
    (fires "F002" ~path:"lib/geometry/predicates.ml" "let f e = e = 0.")

let h001 () =
  check "lib module without mli flagged" true
    (fires "H001" ~path:"lib/geometry/x.ml" ~has_mli:false "let x = 1");
  check "with mli fine" false
    (fires "H001" ~path:"lib/geometry/x.ml" ~has_mli:true "let x = 1");
  check "bin exempt" false
    (fires "H001" ~path:"bin/x.ml" ~has_mli:false "let x = 1")

let h002 () =
  check "Obj.magic flagged" true
    (fires "H002" ~path:"bin/x.ml" "let f x = Obj.magic x");
  check "Obj.repr fine" false
    (fires "H002" ~path:"bin/x.ml" "let f x = Obj.repr x")

let h003 () =
  check "bare assert false flagged" true
    (fires "H003" ~path:"lib/core/x.ml" "let f () = assert false");
  check "commented assert false fine" false
    (fires "H003" ~path:"lib/core/x.ml"
       "let f () = assert false (* unreachable: guarded above *)");
  check "empty failwith flagged" true
    (fires "H003" ~path:"lib/core/x.ml" "let f () = failwith \"\"");
  check "failwith with message fine" false
    (fires "H003" ~path:"lib/core/x.ml" "let f () = failwith \"boom\"");
  check "ordinary assert fine" false
    (fires "H003" ~path:"lib/core/x.ml" "let f x = assert (x > 0)");
  check "tests exempt" false
    (fires "H003" ~path:"test/x.ml" "let f () = assert false")

let o001 () =
  check "uppercase name flagged" true
    (fires "O001" ~path:"lib/serve/x.ml"
       "let c = Obs.counter \"Serve.Queries\"");
  check "space in name flagged" true
    (fires "O001" ~path:"bin/x.ml" "let d = Obs.dist \"serve hops\"");
  check "dotted lowercase fine" false
    (fires "O001" ~path:"lib/serve/x.ml"
       "let c = Obs.counter \"serve.queries_total.v2\"");
  check "computed names skipped" false
    (fires "O001" ~path:"bench/x.ml"
       "let c = Obs.counter (Printf.sprintf \"bench.%s.n%d\" name n)")

let o002 () =
  check "raw Obs.Trace.send in lib flagged" true
    (fires "O002" ~path:"lib/core/x.ml"
       "let f () = Obs.Trace.send ~round:0 ~time:0. ~kind:\"k\" ~src:0 \
        ~dst:(-1) ~lam:1 ~sseq:0");
  check "the stamping helper itself is exempt" false
    (fires "O002" ~path:"lib/distsim/stamp.ml"
       "let f () = Obs.Trace.send ~round:0 ~time:0. ~kind:\"k\" ~src:0 \
        ~dst:(-1) ~lam:1 ~sseq:0");
  check "unrelated sends out of scope" false
    (fires "O002" ~path:"lib/core/x.ml" "let f ch m = Channel.send ch m")

(* ---------- interprocedural layer ---------- *)

(* [lint_project] over an in-memory multi-file project; [only]
   restricts to the rule under test so H001 etc. stay out of the way. *)
let project ?only files =
  let findings, _, _ = Lint.Engine.lint_project ?only files in
  findings

let pfires rule ?only files =
  List.exists (fun d -> d.Lint.Diag.rule = rule) (project ?only files)

let msg_of rule files =
  match
    List.filter (fun d -> d.Lint.Diag.rule = rule) (project ~only:[ rule ] files)
  with
  | d :: _ -> d.Lint.Diag.message
  | [] -> ""

let contains sub s =
  let n = String.length sub and h = String.length s in
  let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Acceptance case: a multi-hop chain from a Pool.parallel_for
   callback to the flagged effect site, and the same effect in a
   function no seed reaches staying unflagged. *)
let retarget_chain () =
  let reachable =
    [
      ( "lib/core/a.ml",
        "let leaf () = Random.int 5\n\n\
         let middle () = leaf () + 1\n\n\
         let driver p =\n\
        \  Netgraph.Pool.parallel_for p ~n:2 (fun i -> ignore (middle () + i))\n"
      );
    ]
  in
  check "D001 fires through the chain" true
    (pfires "D001" ~only:[ "D001" ] reachable);
  let m = msg_of "D001" reachable in
  check "witness chain is multi-hop" true
    (contains "->" m && contains "middle" m && contains "leaf" m);
  check "chain names the Pool call site" true
    (contains "Pool call at lib/core/a.ml" m);
  let unreachable =
    [
      ( "lib/core/a.ml",
        "let unrelated () = Random.int 7\n\n\
         let calm x = x + 1\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:2 (fun i -> calm i)\n"
      );
    ]
  in
  check "effectful but unreachable: not flagged" false
    (pfires "D001" ~only:[ "D001" ] unreachable)

let retarget_rules () =
  let seeded body =
    [
      ( "lib/core/a.ml",
        body
        ^ "\nlet driver p = Netgraph.Pool.parallel_for p ~n:2 (fun i -> work i)\n"
      );
    ]
  in
  check "D003 clock on parallel path" true
    (pfires "D003" ~only:[ "D003" ]
       (seeded "let work _ = Unix.gettimeofday ()"));
  check "D003 clock off parallel path" false
    (pfires "D003" ~only:[ "D003" ]
       [ ("lib/core/a.ml", "let cold () = Unix.gettimeofday ()\n") ]);
  check "D002 unordered fold on parallel path" true
    (pfires "D002" ~only:[ "D002" ]
       (seeded "let work tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl []"));
  check "D002 sort-wrapped fold allowed" false
    (pfires "D002" ~only:[ "D002" ]
       (seeded
          "let work tbl =\n\
          \  List.sort cmp (Hashtbl.fold (fun k _ a -> k :: a) tbl [])"));
  check "M001 shared global touched on parallel path" true
    (pfires "M001" ~only:[ "M001" ]
       (seeded "let acc = ref []\n\nlet work x = acc := x :: !acc"));
  check "M001 Atomic global fine" false
    (pfires "M001" ~only:[ "M001" ]
       (seeded "let acc = Atomic.make 0\n\nlet work _ = Atomic.incr acc"));
  check "M001 unreferenced global fine" false
    (pfires "M001" ~only:[ "M001" ]
       (seeded "let acc = ref []\n\nlet work x = x + 1"));
  check "M002 graph mutation on parallel path" true
    (pfires "M002" ~only:[ "M002" ]
       (seeded "let work g = Netgraph.Graph.add_edge g 0 1"));
  check "M002 builder sealing fine" false
    (pfires "M002" ~only:[ "M002" ]
       (seeded "let work b = Builder.add_edge b 0 1"))

let e001_e002 () =
  let files body =
    [
      ( "lib/core/a.ml",
        body
        ^ "\nlet driver p = Netgraph.Pool.parallel_for p ~n:1 (fun i -> work i)\n"
      );
    ]
  in
  check "E001 unguarded print on parallel path" true
    (pfires "E001" ~only:[ "E001" ]
       (files "let work _ = print_endline \"x\""));
  check "E001 guarded by an Atomic on the chain" false
    (pfires "E001" ~only:[ "E001" ]
       (files
          "let once = Atomic.make false\n\n\
           let work _ =\n\
          \  if not (Atomic.exchange once true) then print_endline \"x\""));
  check "E001 off the parallel path" false
    (pfires "E001" ~only:[ "E001" ]
       [ ("lib/core/a.ml", "let report () = print_endline \"x\"\n") ]);
  check "E002 escaping failwith" true
    (pfires "E002" ~only:[ "E002" ]
       (files "let work u = if u < 0 then failwith \"neg\" else u"));
  check "E002 handler on the chain" false
    (pfires "E002" ~only:[ "E002" ]
       (files
          "let risky u = if u < 0 then failwith \"neg\" else u\n\n\
           let work u = try risky u with _ -> 0"))

let e003 () =
  let drift =
    [
      ("lib/core/c.ml", "let visible () = 1\n\nlet hidden () = 2\n");
      ("lib/core/c.mli", "val visible : unit -> int\n\nval ghost : unit -> int\n");
    ]
  in
  let fs = project ~only:[ "E003" ] drift in
  check "missing implementation flagged at the .mli" true
    (List.exists
       (fun d ->
         d.Lint.Diag.file = "lib/core/c.mli" && contains "ghost" d.Lint.Diag.message)
       fs);
  check "dead unexported value flagged at the .ml" true
    (List.exists
       (fun d ->
         d.Lint.Diag.file = "lib/core/c.ml" && contains "hidden" d.Lint.Diag.message)
       fs);
  let agreed =
    [
      ("lib/core/c.ml", "let visible () = 1\n\nlet helper () = 2\n\nlet also () = helper ()\n");
      ("lib/core/c.mli", "val visible : unit -> int\n\nval also : unit -> int\n");
    ]
  in
  check "agreeing surfaces are clean" false (pfires "E003" ~only:[ "E003" ] agreed);
  let hazard =
    [
      ("lib/core/c.ml", "let hidden () = 2\n");
      ("lib/core/c.mli", "include module type of Base\n");
    ]
  in
  check "include in the .mli skips the unit" false
    (pfires "E003" ~only:[ "E003" ] hazard)

(* ---------- call-graph hard cases ---------- *)

let cg_functor () =
  let pos =
    [
      ( "lib/core/f.ml",
        "module Cfg = struct\n\
        \  let n = 3\n\
         end\n\n\
         module Mk (R : sig\n\
        \  val n : int\n\
         end) =\n\
         struct\n\
        \  let noisy () = Random.int R.n\n\n\
        \  let unused_noise () = Random.bits ()\n\
         end\n\n\
         module Inst = Mk (Cfg)\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:1 (fun _ -> Inst.noisy ())\n"
      );
    ]
  in
  let fs =
    List.filter (fun d -> d.Lint.Diag.rule = "D001") (project ~only:[ "D001" ] pos)
  in
  check "call through the functor instance is reachable" true
    (List.exists (fun d -> contains "noisy" d.Lint.Diag.message) fs);
  check "uncalled functor member is not flagged" false
    (List.exists (fun d -> contains "unused_noise" d.Lint.Diag.message) fs)

let cg_local_open () =
  let pos =
    [
      ( "lib/core/f.ml",
        "module Helpers = struct\n\
        \  let noisy () = Random.int 4\n\
         end\n\n\
         let f () =\n\
        \  let open Helpers in\n\
        \  noisy ()\n\n\
         let lone () = Random.int 8\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:1 (fun _ -> f ())\n"
      );
    ]
  in
  let fs =
    List.filter (fun d -> d.Lint.Diag.rule = "D001") (project ~only:[ "D001" ] pos)
  in
  check "name through a let-open resolves and is reachable" true
    (List.exists (fun d -> contains "noisy" d.Lint.Diag.message) fs);
  check "effectful toplevel nothing calls stays unflagged" false
    (List.exists (fun d -> contains "lone" d.Lint.Diag.message) fs)

let cg_alias () =
  let files call =
    [
      ( "lib/core/f.ml",
        "module Helpers = struct\n\
        \  let noisy () = Random.int 4\n\
         end\n\n\
         module H = Helpers\n\n\
         let f () = " ^ call
        ^ "\n\nlet driver p = Netgraph.Pool.parallel_for p ~n:1 (fun _ -> f ())\n"
      );
    ]
  in
  check "aliased module path reaches the definition" true
    (pfires "D001" ~only:[ "D001" ] (files "H.noisy ()"));
  check "alias without the call stays clean" false
    (pfires "D001" ~only:[ "D001" ] (files "0"))

let cg_shadowing () =
  let shadowed =
    [
      ( "lib/core/f.ml",
        "let noisy () = Random.int 4\n\n\
         let f () =\n\
        \  let noisy () = 0 in\n\
        \  noisy ()\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:1 (fun _ -> f ())\n"
      );
    ]
  in
  check "local shadow cuts reachability to the toplevel" false
    (pfires "D001" ~only:[ "D001" ] shadowed);
  let unshadowed =
    [
      ( "lib/core/f.ml",
        "let noisy () = Random.int 4\n\n\
         let f () = noisy ()\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:1 (fun _ -> f ())\n"
      );
    ]
  in
  check "without the shadow the toplevel is reachable" true
    (pfires "D001" ~only:[ "D001" ] unshadowed)

let cg_mutual_rec () =
  let pos =
    [
      ( "lib/core/f.ml",
        "let rec ping n = if n = 0 then Random.int 3 else pong (n - 1)\n\n\
         and pong n = ping (n / 2)\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:1 (fun i -> pong i)\n"
      );
    ]
  in
  check "mutual recursion: effect reaches through the cycle" true
    (pfires "D001" ~only:[ "D001" ] pos);
  let neg =
    [
      ( "lib/core/f.ml",
        "let rec ping n = if n = 0 then Random.int 3 else pong (n - 1)\n\n\
         and pong n = ping (n / 2)\n\n\
         let other i = i + 1\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:1 (fun i -> other i)\n"
      );
    ]
  in
  check "cycle no seed reaches stays unflagged" false
    (pfires "D001" ~only:[ "D001" ] neg)

(* ---------- suppressions ---------- *)

let suppression () =
  let src =
    "let f x =\n\
    \  (* lint: disable H002 serialized through a stable tag, reviewed *)\n\
    \  Obj.magic x"
  in
  let findings, cut = Lint.Engine.lint_source ~path:"lib/core/x.ml" src in
  check "suppressed" true
    (not (List.mem "H002" (rules_of findings)));
  check "counted" true (cut = 1);
  let wrong =
    "let f x =\n\
    \  (* lint: disable H003 wrong rule *)\n\
    \  Obj.magic x"
  in
  check "wrong rule id does not silence" true
    (fires "H002" ~path:"lib/core/x.ml" wrong);
  let reasonless =
    "let f x =\n\
    \  (* lint: disable H002 *)\n\
    \  Obj.magic x"
  in
  check "reasonless suppression is inert" true
    (fires "H002" ~path:"lib/core/x.ml" reasonless);
  (* interprocedural findings honour the same inline suppressions *)
  let proj =
    [
      ( "lib/core/a.ml",
        "let work _ =\n\
        \  (* lint: disable E001 single writer: the pool pins slot 0 *)\n\
        \  print_endline \"x\"\n\n\
         let driver p = Netgraph.Pool.parallel_for p ~n:1 (fun i -> work i)\n"
      );
    ]
  in
  let findings, cut, _ = Lint.Engine.lint_project ~only:[ "E001" ] proj in
  check "effect finding suppressed in its file" true (findings = []);
  check "effect suppression counted" true (cut = 1)

(* ---------- baseline ---------- *)

let mk_diag ?(rule = "D002") ?(file = "lib/core/x.ml") ?(line = 3) () =
  {
    Lint.Diag.rule;
    severity = Lint.Diag.Error;
    file;
    line;
    col = 1;
    message = "msg";
    excerpt = "Hashtbl.fold ...";
  }

let baseline_roundtrip () =
  let entries =
    [
      { Lint.Baseline.rule = "D002"; file = "lib/obs/obs.ml"; count = 3;
        reason = "order-insensitive reset" };
      { Lint.Baseline.rule = "H003"; file = "lib/core/ldel.ml"; count = 1;
        reason = "documented in DESIGN.md" };
    ]
  in
  let back = Lint.Baseline.of_string (Lint.Baseline.to_string entries) in
  check "round-trips" true (back = entries);
  check "reasonless entry rejected" true
    (try
       ignore (Lint.Baseline.of_string "D002\tlib/x.ml\t1\t \n");
       false
     with Failure _ -> true)

let baseline_apply () =
  let e =
    [ { Lint.Baseline.rule = "D002"; file = "lib/core/x.ml"; count = 1;
        reason = "grandfathered" } ]
  in
  let d1 = mk_diag ~line:3 () and d2 = mk_diag ~line:9 () in
  let keep, grand = Lint.Baseline.apply e [ d2; d1 ] in
  check "budget consumed in position order" true
    (match grand with [ (g, r) ] -> g.Lint.Diag.line = 3 && r = "grandfathered" | _ -> false);
  check "excess finding still fails" true
    (match keep with [ k ] -> k.Lint.Diag.line = 9 | _ -> false);
  let other = mk_diag ~rule:"D001" () in
  let keep2, _ = Lint.Baseline.apply e [ other ] in
  check "other rules unaffected" true (keep2 = [ other ]);
  check "of_findings collapses" true
    (Lint.Baseline.of_findings ~reason:"r" [ d1; d2 ]
    = [ { Lint.Baseline.rule = "D002"; file = "lib/core/x.ml"; count = 2;
          reason = "r" } ])

let baseline_merge () =
  let old =
    [
      { Lint.Baseline.rule = "D002"; file = "lib/core/x.ml"; count = 9;
        reason = "documented debt" };
      { Lint.Baseline.rule = "M002"; file = "lib/core/gone.ml"; count = 2;
        reason = "stale, must be pruned" };
    ]
  in
  let fresh =
    [
      { Lint.Baseline.rule = "D002"; file = "lib/core/x.ml"; count = 2;
        reason = "TODO: justify or fix" };
      { Lint.Baseline.rule = "H003"; file = "lib/core/y.ml"; count = 1;
        reason = "TODO: justify or fix" };
    ]
  in
  let merged = Lint.Baseline.merge_reasons ~old fresh in
  check "reason carried over, count refreshed" true
    (match merged with
    | a :: _ -> a.Lint.Baseline.reason = "documented debt" && a.count = 2
    | [] -> false);
  check "new entries keep the placeholder" true
    (match merged with
    | [ _; b ] -> b.Lint.Baseline.reason = "TODO: justify or fix"
    | _ -> false);
  check "stale old entries are not resurrected" true
    (List.length merged = 2)

(* ---------- JSON ---------- *)

let json_roundtrip () =
  let d =
    {
      Lint.Diag.rule = "F002";
      severity = Lint.Diag.Warning;
      file = "lib/geometry/x.ml";
      line = 12;
      col = 7;
      message = "tricky \"quotes\" and \\ backslash";
      excerpt = "if x = 0. then (* \"why\" *)";
    }
  in
  (match Lint.Diag.of_json_line (Lint.Diag.to_json_line d) with
  | Some back -> check "finding round-trips" true (Lint.Diag.equal d back)
  | None -> Alcotest.fail "finding did not parse back");
  let report =
    Lint.Diag.to_json_line d ^ "\n\n"
    ^ "{\"kind\":\"summary\",\"findings\":1,\"grandfathered\":0,\"suppressed\":0,\"files\":1}\n"
  in
  check "reader skips summary and blanks" true
    (match Lint.Diag.read_json_lines report with
    | [ one ] -> Lint.Diag.equal d one
    | _ -> false)

(* ---------- self-lint, stats, DOT ---------- *)

(* Tests run from _build/default/test; the tree above it is the
   (copied) repository root, declared as deps in test/dune. *)
let repo_root = ".."

let self_analysis () =
  let files =
    Lint.Engine.project_files repo_root
    |> List.filter (fun (p, _) ->
           String.length p > 4 && String.sub p 0 4 = "lib/")
  in
  Lint.Effects.analyze (Lint.Callgraph.of_sources files)

let self_lint () =
  let baseline_file = Filename.concat repo_root "lint.baseline" in
  check "baseline present" true (Sys.file_exists baseline_file);
  let baseline = Lint.Baseline.read baseline_file in
  List.iter
    (fun (e : Lint.Baseline.entry) ->
      check ("baseline reason: " ^ e.file) true
        (String.trim e.reason <> ""))
    baseline;
  let res = Lint.Engine.run ~baseline repo_root in
  List.iter
    (fun d -> Format.eprintf "self-lint: %a@." Lint.Diag.pp d)
    res.findings;
  check "zero unsuppressed findings" true (res.findings = []);
  check "scanned the whole tree" true (res.files > 50);
  check "no stale baseline entries" true (res.unused_baseline = []);
  (* the --json report of everything the run saw must round-trip
     through the reader *)
  let all = List.map fst res.grandfathered in
  let report =
    String.concat "\n" (List.map Lint.Diag.to_json_line all)
    ^ "\n{\"kind\":\"summary\",\"findings\":0,\"grandfathered\":0,\"suppressed\":2,\"files\":98}"
  in
  let back = Lint.Diag.read_json_lines report in
  check "self report round-trips" true
    (List.length back = List.length all
    && List.for_all2 Lint.Diag.equal all back)

let self_stale_baseline () =
  let fake =
    [
      { Lint.Baseline.rule = "D002"; file = "lib/obs/obs.ml"; count = 4;
        reason = "retired by the reachability retargeting" };
    ]
  in
  let res = Lint.Engine.run ~baseline:fake repo_root in
  check "stale entry surfaces in unused_baseline" true
    (res.unused_baseline <> [])

let count_sub sub s =
  let n = String.length sub and h = String.length s in
  let c = ref 0 in
  for i = 0 to h - n do
    if String.sub s i n = sub then incr c
  done;
  !c

(* Acceptance case: the DOT export parses structurally, the
   parallel-reachable cluster is non-empty, and the edge count matches
   the JSON summary. *)
let graph_dot () =
  let a = self_analysis () in
  let dot = Lint.Effects.to_dot a in
  let s = Lint.Effects.stats a in
  check "starts as a digraph" true
    (String.length dot > 16 && String.sub dot 0 8 = "digraph ");
  check "braces balance" true (count_sub "{" dot = count_sub "}" dot);
  check "has the parallel cluster" true
    (contains "subgraph cluster_parallel {" dot);
  (* cluster body = everything between the cluster opener and the
     first closing brace at that nesting: it must contain node lines *)
  check "cluster is non-empty" true (s.Lint.Effects.s_reachable > 0);
  let cluster_nodes =
    (* reachable nodes are emitted inside the cluster, one per line *)
    count_sub "\n    n" dot
  in
  check "reachable nodes sit inside the cluster" true
    (cluster_nodes = s.Lint.Effects.s_reachable);
  check "edge count matches the JSON summary" true
    (count_sub " -> " dot = s.Lint.Effects.s_edges);
  let j = Lint.Effects.stats_json s in
  check "stats json shape" true
    (contains "\"kind\":\"callgraph\"" j
    && contains (Printf.sprintf "\"edges\":%d" s.Lint.Effects.s_edges) j);
  check "analysis is substantial" true
    (s.Lint.Effects.s_functions > 500
    && s.Lint.Effects.s_edges > 1000
    && s.Lint.Effects.s_seeds > 5)

let graph_summary () =
  let a = self_analysis () in
  (match Lint.Effects.function_summary a "triangulate" with
  | Some s ->
    check "summary names the def site" true
      (contains "lib/delaunay/triangulation.ml" s);
    check "summary reports reachability" true
      (contains "parallel-reachable: yes" s);
    check "summary has a witness chain" true (contains " -> " s)
  | None -> Alcotest.fail "triangulate not found by suffix");
  check "unknown function is None" true
    (Lint.Effects.function_summary a "no_such_function_anywhere" = None)

let catalog () =
  let local = Lint.Rules.all in
  let inter = Lint.Effects.rules in
  check "at least 8 rules across both catalogs" true
    (List.length local + List.length inter >= 8);
  let families =
    List.sort_uniq String.compare
      (List.map (fun (r : Lint.Rules.rule) -> r.family) local
      @ List.map (fun (r : Lint.Effects.rule_info) -> r.family) inter)
  in
  check "four families" true (List.length families = 4);
  List.iter
    (fun (r : Lint.Rules.rule) ->
      check ("doc for " ^ r.id) true (String.length r.doc > 20))
    local;
  List.iter
    (fun (r : Lint.Effects.rule_info) ->
      check ("doc for " ^ r.id) true (String.length r.doc > 20))
    inter;
  check "interprocedural find" true
    (match Lint.Effects.find_rule "D001" with
    | Some r -> r.id = "D001" && r.family = "determinism"
    | None -> false);
  check "local find" true
    (match Lint.Rules.find "F001" with Some r -> r.id = "F001" | None -> false);
  check "local catalog no longer owns D001" true (Lint.Rules.find "D001" = None);
  check "find miss" true
    (Lint.Rules.find "Z999" = None && Lint.Effects.find_rule "Z999" = None)

let suites =
  [
    ( "lint.tokenizer",
      [
        Alcotest.test_case "nested comments" `Quick tok_nested_comments;
        Alcotest.test_case "strings" `Quick tok_strings;
        Alcotest.test_case "chars" `Quick tok_chars;
        Alcotest.test_case "torture: literals in comments" `Quick tok_torture;
        Alcotest.test_case "dotted paths" `Quick tok_dotted;
        Alcotest.test_case "numbers, positions" `Quick tok_numbers;
      ] );
    ( "lint.rules",
      [
        Alcotest.test_case "F001 poly compare" `Quick f001;
        Alcotest.test_case "F002 float literal eq" `Quick f002;
        Alcotest.test_case "H001 missing mli" `Quick h001;
        Alcotest.test_case "H002 obj magic" `Quick h002;
        Alcotest.test_case "H003 silent dead ends" `Quick h003;
        Alcotest.test_case "O001 metric name convention" `Quick o001;
        Alcotest.test_case "O002 stamped trace events" `Quick o002;
        Alcotest.test_case "catalog" `Quick catalog;
      ] );
    ( "lint.effects",
      [
        Alcotest.test_case "retarget: witness chain" `Quick retarget_chain;
        Alcotest.test_case "retarget: D002 D003 M001 M002" `Quick retarget_rules;
        Alcotest.test_case "E001/E002 guards and handlers" `Quick e001_e002;
        Alcotest.test_case "E003 mli drift" `Quick e003;
      ] );
    ( "lint.callgraph",
      [
        Alcotest.test_case "functor application" `Quick cg_functor;
        Alcotest.test_case "local open" `Quick cg_local_open;
        Alcotest.test_case "module alias" `Quick cg_alias;
        Alcotest.test_case "shadowed names" `Quick cg_shadowing;
        Alcotest.test_case "mutual let rec" `Quick cg_mutual_rec;
      ] );
    ( "lint.plumbing",
      [
        Alcotest.test_case "suppressions" `Quick suppression;
        Alcotest.test_case "baseline round-trip" `Quick baseline_roundtrip;
        Alcotest.test_case "baseline apply" `Quick baseline_apply;
        Alcotest.test_case "baseline reason merge" `Quick baseline_merge;
        Alcotest.test_case "json round-trip" `Quick json_roundtrip;
      ] );
    ( "lint.self",
      [
        Alcotest.test_case "repo self-lints clean" `Quick self_lint;
        Alcotest.test_case "stale baseline detection" `Quick self_stale_baseline;
        Alcotest.test_case "dot export structure" `Quick graph_dot;
        Alcotest.test_case "function summary" `Quick graph_summary;
      ] );
  ]
