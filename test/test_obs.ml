(* The observability layer: counter/span semantics, determinism of the
   work counters for a fixed seed, sink round-trips, and the disabled
   path leaving the registry untouched. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Every test starts from a clean, disabled registry and must leave
   the global switch off for the rest of the suite. *)
let isolated f () =
  Obs.reset ();
  Obs.set_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let deployment seed n radius =
  let rng = Wireless.Rand.create seed in
  fst
    (Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
       ~max_attempts:2000)

(* ------------------------------------------------------------------ *)
(* Core semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let c = Obs.counter "test.basics" in
  Obs.incr c;
  checki "disabled incr is a no-op" 0 (Obs.value c);
  Obs.set_enabled true;
  Obs.incr c;
  Obs.add c 41;
  checki "enabled counts" 42 (Obs.value c);
  check "same name, same cell" true (Obs.counter "test.basics" == c);
  Obs.reset ();
  checki "reset zeroes but keeps the handle" 0 (Obs.value c)

let test_disabled_leaves_counters_untouched () =
  (* run a real pipeline with obs off: nothing may move *)
  let pts = deployment 2002L 40 60. in
  let bb = Core.Backbone.build pts ~radius:60. in
  let _ = Core.Protocol.run pts ~radius:60. in
  ignore (Core.Backbone.ldel_full bb);
  let snap = Obs.Snapshot.capture () in
  List.iter
    (fun (name, v) -> checki (name ^ " untouched") 0 v)
    snap.Obs.Snapshot.counters;
  check "no dists" true (snap.Obs.Snapshot.dists = []);
  check "no spans" true (snap.Obs.Snapshot.spans = [])

let test_span_nesting () =
  Obs.set_enabled true;
  let v =
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> ());
        Obs.span "inner" (fun () -> ());
        7)
  in
  checki "span returns the body's value" 7 v;
  Obs.span "outer" (fun () -> ());
  let snap = Obs.Snapshot.capture () in
  let paths =
    List.map
      (fun s -> (s.Obs.Snapshot.path, s.Obs.Snapshot.calls))
      snap.Obs.Snapshot.spans
  in
  Alcotest.(check (list (pair string int)))
    "paths nest and accumulate"
    [ ("outer", 2); ("outer/inner", 2) ]
    paths

let test_span_unwinds_on_exception () =
  Obs.set_enabled true;
  (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.span "after" (fun () -> ());
  let snap = Obs.Snapshot.capture () in
  let paths = List.map (fun s -> s.Obs.Snapshot.path) snap.Obs.Snapshot.spans in
  Alcotest.(check (list string))
    "stack popped despite the raise (snapshot sorts by path)"
    [ "after"; "boom" ] paths

let test_gauge_basics () =
  let g = Obs.gauge "test.gauge" in
  Obs.set_gauge g 3.5;
  check "disabled set is a no-op" true (Float.is_nan (Obs.gauge_value g));
  Obs.set_enabled true;
  Obs.set_gauge g 3.5;
  Obs.set_gauge g 4.5;
  Alcotest.(check (float 0.)) "last write wins" 4.5 (Obs.gauge_value g);
  check "same name, same cell" true (Obs.gauge "test.gauge" == g);
  let snap = Obs.Snapshot.capture () in
  check "set gauges snapshot" true
    (List.mem_assoc "test.gauge" snap.Obs.Snapshot.gauges);
  check "unset gauges do not" true
    (ignore (Obs.gauge "test.gauge.unset");
     not
       (List.mem_assoc "test.gauge.unset"
          (Obs.Snapshot.capture ()).Obs.Snapshot.gauges));
  Obs.reset ();
  check "reset clears the value" true (Float.is_nan (Obs.gauge_value g));
  check "reset clears the snapshot" true
    ((Obs.Snapshot.capture ()).Obs.Snapshot.gauges = [])

let test_gc_gauges () =
  Obs.set_enabled true;
  Obs.set_gc_sampling true;
  Fun.protect ~finally:(fun () -> Obs.set_gc_sampling false) @@ fun () ->
  Obs.span "work" (fun () -> ignore (Array.init 10_000 (fun i -> [ i ])));
  let snap = Obs.Snapshot.capture () in
  let v name = List.assoc_opt name snap.Obs.Snapshot.gauges in
  check "heap words sampled" true
    (match v "gc.heap_words" with Some x -> x > 0. | None -> false);
  check "minor words sampled" true
    (match v "gc.minor_words" with Some x -> x > 0. | None -> false)

(* ------------------------------------------------------------------ *)
(* Determinism for a fixed seed                                        *)
(* ------------------------------------------------------------------ *)

let counters_of f =
  Obs.reset ();
  Obs.set_enabled true;
  f ();
  Obs.set_enabled false;
  (Obs.Snapshot.capture ()).Obs.Snapshot.counters

let test_backbone_counters_deterministic () =
  let pts = deployment 2002L 60 60. in
  let run () = ignore (Core.Backbone.build pts ~radius:60.) in
  let c1 = counters_of run and c2 = counters_of run in
  check "two identical builds, identical counters" true (c1 = c2);
  let v name = List.assoc name c1 in
  check "predicates counted" true (v "predicates.incircle" > 0);
  check "insertions counted" true (v "delaunay.insertions" > 0);
  check "grid queried once per node" true (v "grid.queries" = 60);
  check "fallbacks never exceed calls" true
    (v "predicates.orient2d.exact" <= v "predicates.orient2d"
    && v "predicates.incircle.exact" <= v "predicates.incircle")

let test_protocol_message_counters_deterministic () =
  let pts = deployment 2002L 50 60. in
  let run () = ignore (Core.Protocol.run pts ~radius:60.) in
  let c1 = counters_of run and c2 = counters_of run in
  check "message counters deterministic" true (c1 = c2);
  let v name = List.assoc name c1 in
  check "messages flowed" true (v "distsim.messages" > 0);
  checki "four engine phases" 4 (v "distsim.runs");
  (* the obs channel agrees with the engine's own per-phase account *)
  Obs.reset ();
  Obs.set_enabled true;
  let r = Core.Protocol.run pts ~radius:60. in
  Obs.set_enabled false;
  let snap = (Obs.Snapshot.capture ()).Obs.Snapshot.counters in
  let total =
    List.fold_left
      (fun acc s -> acc + Distsim.Engine.total_sent s)
      0
      [
        r.Core.Protocol.stats_cluster;
        r.Core.Protocol.stats_connector;
        r.Core.Protocol.stats_status;
        r.Core.Protocol.stats_ldel;
      ]
  in
  checki "obs total = stats total" total (List.assoc "distsim.messages" snap);
  let by_kind_total =
    List.fold_left
      (fun acc (name, v) ->
        if String.length name > 12 && String.sub name 0 12 = "distsim.msg." then
          acc + v
        else acc)
      0 snap
  in
  checki "per-kind counters sum to the total" total by_kind_total

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_basics () =
  let module H = Obs.Histogram in
  let h = H.create () in
  H.observe h 1.0;
  H.observe h 1.5;
  H.observe h 0.;
  checki "count" 3 (H.count h);
  Alcotest.(check (float 1e-12)) "sum" 2.5 (H.sum h);
  let b = H.buckets h in
  checki "le bound is inclusive: 1.0 lands on the 1.0 bucket" 1 b.(10);
  checki "1.5 lands in the next bucket (le 2.0)" 1 b.(11);
  checki "values at or below the lowest bound share bucket 0" 1 b.(0);
  Alcotest.(check (float 0.)) "p50 is the holding bucket's upper bound" 1.0
    (H.quantile h 0.5);
  Alcotest.(check (float 0.)) "p99 reaches the top bucket" 2.0
    (H.quantile h 0.99);
  check "empty histogram quantile is nan" true
    (Float.is_nan (H.quantile (H.create ()) 0.5));
  let over = H.create () in
  H.observe over 1e12;
  checki "beyond the last bound overflows into the +Inf bucket" 1
    (H.buckets over).(H.buckets_len - 1)

let test_histogram_merge_commutes () =
  let module H = Obs.Histogram in
  let obs h vs = List.iter (H.observe h) vs in
  let a = H.create () and b = H.create () in
  obs a [ 0.5; 3.0; 700. ];
  obs b [ 0.5; 0.25 ];
  let ab = H.create () and ba = H.create () in
  H.merge_into ~into:ab a;
  H.merge_into ~into:ab b;
  H.merge_into ~into:ba b;
  H.merge_into ~into:ba a;
  check "merge is commutative bucket-for-bucket" true
    (H.buckets ab = H.buckets ba
    && H.count ab = H.count ba
    && H.sum ab = H.sum ba);
  checki "merged count is the sum" 5 (H.count ab)

let test_histogram_registry () =
  let h = Obs.histogram "test.hist" in
  Obs.observe_hist h 1.0;
  checki "disabled observe is a no-op" 0 (Obs.Histogram.count h);
  Obs.set_enabled true;
  Obs.observe_hist h 1.0;
  check "same name, same cell" true (Obs.histogram "test.hist" == h);
  let snap = Obs.Snapshot.capture () in
  check "observed histograms snapshot" true
    (List.mem_assoc "test.hist" snap.Obs.Snapshot.hists);
  check "empty histograms do not" true
    (ignore (Obs.histogram "test.hist.empty");
     not
       (List.mem_assoc "test.hist.empty"
          (Obs.Snapshot.capture ()).Obs.Snapshot.hists));
  Obs.reset ();
  checki "reset zeroes but keeps the handle" 0 (Obs.Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Sparkline rendering, including degenerate series                    *)
(* ------------------------------------------------------------------ *)

let spark = Obs.Telemetry.sparkline
let mid_bar = "\xe2\x96\x84" (* ▄ *)
let lo_bar = "\xe2\x96\x81" (* ▁ *)
let hi_bar = "\xe2\x96\x88" (* █ *)

let test_sparkline_basics () =
  Alcotest.(check string) "empty series" "" (spark []);
  Alcotest.(check string) "two-point ramp" (lo_bar ^ hi_bar) (spark [ 0.; 7. ])

let test_sparkline_single_sample () =
  Alcotest.(check string) "one sample renders the middle bar" mid_bar
    (spark [ 42. ])

let test_sparkline_constant_series () =
  Alcotest.(check string) "constant series renders flat middle bars"
    (mid_bar ^ mid_bar ^ mid_bar)
    (spark [ 3.; 3.; 3. ]);
  Alcotest.(check string) "constant zero too" (mid_bar ^ mid_bar)
    (spark [ 0.; 0. ])

let test_sparkline_non_finite () =
  Alcotest.(check string) "nan samples are dropped" mid_bar (spark [ nan; 5. ]);
  Alcotest.(check string) "all-nan renders nothing" "" (spark [ nan; nan ]);
  Alcotest.(check string) "infinity pins to the top bar without skewing scale"
    (lo_bar ^ hi_bar ^ hi_bar)
    (spark [ 1.; 2.; infinity ]);
  Alcotest.(check string) "neg_infinity pins to the bottom bar"
    (lo_bar ^ lo_bar ^ hi_bar)
    (spark [ neg_infinity; 1.; 2. ])

(* ------------------------------------------------------------------ *)
(* check_against mismatch paths                                        *)
(* ------------------------------------------------------------------ *)

let snapshot_of f =
  Obs.reset ();
  Obs.set_enabled true;
  f ();
  Obs.set_enabled false;
  Obs.Snapshot.capture ()

let mentions needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let some_err needle errs = List.exists (mentions needle) errs

let test_check_against_mismatch_paths () =
  let populate () =
    Obs.add (Obs.counter "ck.c") 5;
    Obs.observe (Obs.dist "ck.d") 1.0;
    Obs.observe_hist (Obs.histogram "ck.h") 1.0;
    Obs.span "ck.s" (fun () -> ())
  in
  let reference = snapshot_of populate in
  let same = snapshot_of populate in
  Alcotest.(check (list string))
    "identical run checks clean" []
    (Obs.Snapshot.check_against ~threshold:0.5 ~reference same);
  (* missing keys, a kind swap (ck.d re-registered as a counter), a
     counter delta and a histogram observed into a different bucket *)
  let drift =
    snapshot_of (fun () ->
        Obs.add (Obs.counter "ck.c") 7;
        Obs.add (Obs.counter "ck.d") 1;
        Obs.observe_hist (Obs.histogram "ck.h") 700.;
        Obs.span "ck.s" (fun () -> ()))
  in
  let errs = Obs.Snapshot.check_against ~threshold:0.5 ~reference drift in
  check "counter delta reported" true
    (some_err "counter ck.c: 7 differs from reference 5" errs);
  check "kind swap surfaces as the dist gone missing" true
    (some_err "dist ck.d missing" errs);
  check "histogram bucket deltas are itemized with their le bound" true
    (some_err "ck.h[le=" errs);
  (* a histogram absent from the run *)
  let hist_gone =
    snapshot_of (fun () ->
        Obs.add (Obs.counter "ck.c") 5;
        Obs.observe (Obs.dist "ck.d") 1.0;
        Obs.span "ck.s" (fun () -> ()))
  in
  check "missing histogram reported" true
    (some_err "hist ck.h missing"
       (Obs.Snapshot.check_against ~threshold:0.5 ~reference hist_gone));
  (* span wall-clock beyond the threshold: doctor the captured seconds
     so the delta is deterministic *)
  let slow =
    {
      same with
      Obs.Snapshot.spans =
        List.map
          (fun (s : Obs.Snapshot.span_stats) ->
            { s with Obs.Snapshot.seconds = s.Obs.Snapshot.seconds +. 1. })
          same.Obs.Snapshot.spans;
    }
  in
  check "span regression beyond threshold reported" true
    (some_err "ck.s"
       (Obs.Snapshot.check_against ~threshold:0.5 ~reference slow));
  check "span within threshold passes" true
    (Obs.Snapshot.check_against ~threshold:0.5 ~reference:slow slow = [])

(* ------------------------------------------------------------------ *)
(* Sinks round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let populated_snapshot () =
  Obs.set_enabled true;
  let c = Obs.counter "rt.counter" in
  Obs.add c 12345;
  let d = Obs.dist "rt.dist" in
  Obs.observe d 1.5;
  Obs.observe d 0.25;
  Obs.span "rt" (fun () -> Obs.span "leg" (fun () -> ()));
  Obs.set_gauge (Obs.gauge "rt.gauge") 2.75;
  let h = Obs.histogram "rt.hist" in
  Obs.observe_hist h 0.5;
  Obs.observe_hist h 3.0;
  Obs.observe_hist h 1e12;
  ignore (Core.Backbone.build (deployment 2002L 30 60.) ~radius:60.);
  Obs.set_enabled false;
  Obs.Snapshot.capture ()

let render sink_of snap =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  (sink_of fmt : Obs.sink) snap;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_json_roundtrip () =
  let snap = populated_snapshot () in
  let parsed = Obs.Snapshot.of_json_lines (render Obs.json snap) in
  check "json round-trips bit-for-bit" true (parsed = snap)

let test_csv_roundtrip () =
  let snap = populated_snapshot () in
  let parsed = Obs.Snapshot.of_csv (render Obs.csv snap) in
  check "csv round-trips bit-for-bit" true (parsed = snap)

let test_pretty_mentions_everything () =
  let snap = populated_snapshot () in
  let out = render Obs.pretty snap in
  let mentions needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check ("pretty mentions " ^ needle) true (mentions needle))
    [ "rt.counter"; "12345"; "rt.dist"; "leg"; "rt.gauge";
      "predicates.orient2d" ]

let test_named_sinks () =
  check "pretty known" true
    (Obs.named_sink Format.str_formatter "pretty" <> None);
  check "json known" true (Obs.named_sink Format.str_formatter "json" <> None);
  check "csv known" true (Obs.named_sink Format.str_formatter "csv" <> None);
  check "xml unknown" true (Obs.named_sink Format.str_formatter "xml" = None)

(* ------------------------------------------------------------------ *)
(* Backbone.Config sink plumbing                                       *)
(* ------------------------------------------------------------------ *)

let test_config_sink () =
  let captured = ref None in
  let cfg =
    {
      Core.Backbone.Config.default with
      Core.Backbone.Config.radius = 60.;
      sink = Some (fun snap -> captured := Some snap);
    }
  in
  ignore (Core.Backbone.run cfg (deployment 2002L 40 60.));
  check "obs restored to disabled" true (not (Obs.enabled ()));
  match !captured with
  | None -> Alcotest.fail "sink not invoked"
  | Some snap ->
    let v name = List.assoc name snap.Obs.Snapshot.counters in
    check "counters flowed through the sink" true
      (v "predicates.incircle" > 0 && v "delaunay.insertions" > 0);
    check "stage spans reported" true
      (List.exists
         (fun s -> s.Obs.Snapshot.path = "backbone/cds/mis")
         snap.Obs.Snapshot.spans)

(* ------------------------------------------------------------------ *)
(* Recorder ring wrap                                                  *)
(* ------------------------------------------------------------------ *)

let test_recorder_wrap_order () =
  Fun.protect
    ~finally:(fun () ->
      Obs.Recorder.set_capacity 256;
      Obs.Recorder.clear ())
    (fun () ->
      Obs.Recorder.set_capacity 4;
      Obs.Recorder.clear ();
      let note i = Obs.Recorder.record (Obs.Recorder.Note (string_of_int i)) in
      (* main fills part of its ring... *)
      note 0;
      note 1;
      (* ...a second domain wraps its own ring completely... *)
      Domain.join
        (Domain.spawn (fun () ->
             for i = 2 to 6 do
               note i
             done));
      (* ...then main wraps too *)
      for i = 7 to 11 do
        note i
      done;
      let entries = Obs.Recorder.entries () in
      (* per-domain rings keep their newest 4: seqs 3-6 from the spawned
         domain, 8-11 from main — and the cross-domain merge must
         deliver them in global-sequence order despite both wraps *)
      let seqs = List.map (fun (e : Obs.Recorder.entry) -> e.Obs.Recorder.e_seq) entries in
      Alcotest.(check (list int)) "survivors in global order"
        [ 3; 4; 5; 6; 8; 9; 10; 11 ] seqs;
      let notes =
        List.map
          (fun (e : Obs.Recorder.entry) ->
            match e.Obs.Recorder.e_event with
            | Obs.Recorder.Note s -> s
            | _ -> "?")
          entries
      in
      Alcotest.(check (list string)) "payloads follow the sequence"
        [ "3"; "4"; "5"; "6"; "8"; "9"; "10"; "11" ] notes;
      check "two domains contributed" true
        (List.length
           (List.sort_uniq compare
              (List.map (fun (e : Obs.Recorder.entry) -> e.Obs.Recorder.e_dom) entries))
        = 2))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "counter basics" `Quick (isolated test_counter_basics);
        Alcotest.test_case "disabled leaves counters untouched" `Quick
          (isolated test_disabled_leaves_counters_untouched);
        Alcotest.test_case "span nesting" `Quick (isolated test_span_nesting);
        Alcotest.test_case "span unwinds on exception" `Quick
          (isolated test_span_unwinds_on_exception);
        Alcotest.test_case "gauge basics" `Quick (isolated test_gauge_basics);
        Alcotest.test_case "gc gauges" `Quick (isolated test_gc_gauges);
        Alcotest.test_case "histogram basics" `Quick
          (isolated test_histogram_basics);
        Alcotest.test_case "histogram merge commutes" `Quick
          (isolated test_histogram_merge_commutes);
        Alcotest.test_case "histogram registry" `Quick
          (isolated test_histogram_registry);
        Alcotest.test_case "sparkline basics" `Quick
          (isolated test_sparkline_basics);
        Alcotest.test_case "sparkline single sample" `Quick
          (isolated test_sparkline_single_sample);
        Alcotest.test_case "sparkline constant series" `Quick
          (isolated test_sparkline_constant_series);
        Alcotest.test_case "sparkline non-finite samples" `Quick
          (isolated test_sparkline_non_finite);
        Alcotest.test_case "check_against mismatch paths" `Quick
          (isolated test_check_against_mismatch_paths);
        Alcotest.test_case "backbone counters deterministic" `Quick
          (isolated test_backbone_counters_deterministic);
        Alcotest.test_case "protocol message counters deterministic" `Quick
          (isolated test_protocol_message_counters_deterministic);
        Alcotest.test_case "json round-trip" `Quick (isolated test_json_roundtrip);
        Alcotest.test_case "csv round-trip" `Quick (isolated test_csv_roundtrip);
        Alcotest.test_case "pretty output" `Quick
          (isolated test_pretty_mentions_everything);
        Alcotest.test_case "named sinks" `Quick (isolated test_named_sinks);
        Alcotest.test_case "Config sink plumbing" `Quick
          (isolated test_config_sink);
        Alcotest.test_case "recorder ring-wrap ordering" `Quick
          (isolated test_recorder_wrap_order);
      ] );
  ]
