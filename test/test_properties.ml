(* Property-based tests (qcheck): the paper's lemmas and the
   substrate's algebraic invariants, checked on randomized inputs. *)

module P = Geometry.Point
module Pred = Geometry.Predicates
module G = Netgraph.Graph

(* ---------------- generators ---------------- *)

let coord = QCheck.Gen.float_range 0. 100.

let gen_point = QCheck.Gen.map2 P.make coord coord

let gen_points ~min ~max =
  QCheck.Gen.(int_range min max >>= fun n -> array_size (return n) gen_point)

(* random connected wireless instance; regenerates until connected *)
let gen_instance ~min ~max ~radius =
  let open QCheck.Gen in
  int_bound 1_000_000 >>= fun seed ->
  int_range min max >>= fun n ->
  return
    (let rng = Wireless.Rand.create (Int64.of_int (seed + 17)) in
     let pts, _ =
       Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
         ~max_attempts:5000
     in
     pts)

let arb gen print = QCheck.make ~print gen

let print_points pts =
  Printf.sprintf "[%d points]" (Array.length pts)

(* ---------------- geometry properties ---------------- *)

let prop_dist_symmetric =
  QCheck.Test.make ~name:"dist symmetric" ~count:200
    (arb QCheck.Gen.(pair gen_point gen_point) (fun _ -> "pair"))
    (fun (a, b) -> P.dist a b = P.dist b a)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    (arb QCheck.Gen.(triple gen_point gen_point gen_point) (fun _ -> "triple"))
    (fun (a, b, c) -> P.dist a c <= P.dist a b +. P.dist b c +. 1e-9)

let prop_orient_antisymmetric =
  QCheck.Test.make ~name:"orient2d antisymmetry" ~count:500
    (arb QCheck.Gen.(triple gen_point gen_point gen_point) (fun _ -> "triple"))
    (fun (a, b, c) ->
      let flip = function
        | Pred.Ccw -> Pred.Cw
        | Pred.Cw -> Pred.Ccw
        | Pred.Collinear -> Pred.Collinear
      in
      Pred.orient2d a b c = flip (Pred.orient2d b a c))

let prop_orient_rotation =
  QCheck.Test.make ~name:"orient2d cyclic invariance" ~count:500
    (arb QCheck.Gen.(triple gen_point gen_point gen_point) (fun _ -> "triple"))
    (fun (a, b, c) -> Pred.orient2d a b c = Pred.orient2d b c a)

let prop_incircle_corner_rotation =
  QCheck.Test.make ~name:"incircle invariant under corner rotation" ~count:300
    (arb
       QCheck.Gen.(pair (triple gen_point gen_point gen_point) gen_point)
       (fun _ -> "quad"))
    (fun ((a, b, c), d) ->
      Pred.incircle a b c d = Pred.incircle b c a d)

let prop_segment_intersect_symmetric =
  QCheck.Test.make ~name:"proper intersection symmetric" ~count:300
    (arb
       QCheck.Gen.(
         pair (pair gen_point gen_point) (pair gen_point gen_point))
       (fun _ -> "segs"))
    (fun ((a, b), (c, d)) ->
      let s1 = Geometry.Segment.make a b and s2 = Geometry.Segment.make c d in
      Geometry.Segment.properly_intersect s1 s2
      = Geometry.Segment.properly_intersect s2 s1)

let prop_hull_contains_all =
  QCheck.Test.make ~name:"hull contains all inputs" ~count:50
    (arb (gen_points ~min:3 ~max:60) print_points)
    (fun pts ->
      let h = Geometry.Hull.convex_hull (Array.to_list pts) in
      List.length h < 3
      || Array.for_all (Geometry.Hull.contains_point h) pts)

(* ---------------- Delaunay properties ---------------- *)

let distinct pts =
  let tbl = Hashtbl.create 16 in
  Array.for_all
    (fun (q : P.t) ->
      if Hashtbl.mem tbl (q.x, q.y) then false
      else (
        Hashtbl.add tbl (q.x, q.y) ();
        true))
    pts

let prop_delaunay_empty_circumcircle =
  QCheck.Test.make ~name:"Delaunay empty circumcircle" ~count:40
    (arb (gen_points ~min:3 ~max:80) print_points)
    (fun pts ->
      QCheck.assume (distinct pts);
      let t = Delaunay.Triangulation.triangulate pts in
      Delaunay.Triangulation.is_delaunay pts
        (Delaunay.Triangulation.triangles t))

let prop_delaunay_planar =
  QCheck.Test.make ~name:"Delaunay edges are planar" ~count:25
    (arb (gen_points ~min:3 ~max:60) print_points)
    (fun pts ->
      QCheck.assume (distinct pts);
      let t = Delaunay.Triangulation.triangulate pts in
      let g =
        G.of_edges (Array.length pts) (Delaunay.Triangulation.edges t)
      in
      Netgraph.Planarity.is_planar g pts)

(* ---------------- paper lemmas on random instances ---------------- *)

let prop_mis_valid =
  QCheck.Test.make ~name:"clustering yields a maximal independent set"
    ~count:25
    (arb (gen_instance ~min:20 ~max:80 ~radius:50.) print_points)
    (fun pts ->
      let g = Wireless.Udg.build pts ~radius:50. in
      let roles = Core.Mis.compute g in
      Core.Mis.is_independent g roles
      && Core.Mis.is_dominating g roles
      && Core.Mis.is_maximal g roles)

let prop_lemma1_five_dominators =
  QCheck.Test.make ~name:"Lemma 1: dominatee has ≤ 5 dominators" ~count:25
    (arb (gen_instance ~min:30 ~max:100 ~radius:50.) print_points)
    (fun pts ->
      let g = Wireless.Udg.build pts ~radius:50. in
      let roles = Core.Mis.compute g in
      let ok = ref true in
      Array.iteri
        (fun u r ->
          if
            r = Core.Mis.Dominatee
            && List.length (Core.Mis.dominators_of g roles u) > 5
          then ok := false)
        roles;
      !ok)

let prop_lemma2_bounded_dominators_in_disk =
  QCheck.Test.make
    ~name:"Lemma 2: dominators within 2R of a node are bounded" ~count:20
    (arb (gen_instance ~min:40 ~max:120 ~radius:40.) print_points)
    (fun pts ->
      let radius = 40. in
      let g = Wireless.Udg.build pts ~radius in
      let roles = Core.Mis.compute g in
      (* Lemma 2 with k = 2: the area argument gives pi(k+.5)^2/(pi/4)
         = (2k+1)^2 = 25; any two dominators are > R apart so the
         bound holds with room to spare *)
      Array.for_all
        (fun (p : P.t) ->
          let count = ref 0 in
          Array.iteri
            (fun v r ->
              if r = Core.Mis.Dominator && P.dist p pts.(v) <= 2. *. radius
              then incr count)
            roles;
          !count <= 25)
        pts)

let prop_cds_connected =
  QCheck.Test.make ~name:"CDS connects the backbone" ~count:20
    (arb (gen_instance ~min:30 ~max:100 ~radius:50.) print_points)
    (fun pts ->
      let g = Wireless.Udg.build pts ~radius:50. in
      let cds = Core.Cds.of_udg g in
      Netgraph.Components.connected_within cds.Core.Cds.cds
        (Core.Cds.backbone_nodes cds))

let prop_lemma5_hop_stretch =
  QCheck.Test.make
    ~name:"Lemma 5: CDS' hop distance ≤ 3h + 2" ~count:12
    (arb (gen_instance ~min:25 ~max:70 ~radius:50.) print_points)
    (fun pts ->
      let g = Wireless.Udg.build pts ~radius:50. in
      let cds = Core.Cds.of_udg g in
      let n = Array.length pts in
      let ok = ref true in
      for s = 0 to n - 1 do
        let hb = Netgraph.Traversal.bfs g s in
        let hs = Netgraph.Traversal.bfs cds.Core.Cds.cds' s in
        for t = 0 to n - 1 do
          if t <> s && hb.(t) <> max_int then
            if hs.(t) = max_int || hs.(t) > (3 * hb.(t)) + 2 then ok := false
        done
      done;
      !ok)

let prop_lemma6_length_stretch =
  QCheck.Test.make
    ~name:"Lemma 6: CDS' length ≤ 6·len + 5R" ~count:12
    (arb (gen_instance ~min:25 ~max:70 ~radius:50.) print_points)
    (fun pts ->
      let radius = 50. in
      let g = Wireless.Udg.build pts ~radius in
      let cds = Core.Cds.of_udg g in
      let n = Array.length pts in
      let ok = ref true in
      for s = 0 to n - 1 do
        let db = Netgraph.Traversal.dijkstra g pts s in
        let ds = Netgraph.Traversal.dijkstra cds.Core.Cds.cds' pts s in
        for t = 0 to n - 1 do
          if t <> s && db.(t) < infinity then
            if ds.(t) > (6. *. db.(t)) +. (5. *. radius) +. 1e-6 then
              ok := false
        done
      done;
      !ok)

let prop_pldel_planar =
  QCheck.Test.make ~name:"PLDel(ICDS) is planar" ~count:15
    (arb (gen_instance ~min:30 ~max:90 ~radius:50.) print_points)
    (fun pts ->
      let bb = Core.Backbone.build pts ~radius:50. in
      Netgraph.Planarity.is_planar bb.Core.Backbone.ldel_icds_g pts)

let prop_ldel_icds'_spans =
  QCheck.Test.make ~name:"LDel(ICDS') spans all nodes" ~count:15
    (arb (gen_instance ~min:30 ~max:90 ~radius:50.) print_points)
    (fun pts ->
      let bb = Core.Backbone.build pts ~radius:50. in
      Netgraph.Components.is_connected bb.Core.Backbone.ldel_icds')

let prop_rng_lune_empty =
  QCheck.Test.make ~name:"RNG edges have empty lunes" ~count:15
    (arb (gen_instance ~min:20 ~max:60 ~radius:50.) print_points)
    (fun pts ->
      let udg = Wireless.Udg.build pts ~radius:50. in
      let rng_g = Wireless.Proximity.rng_graph udg pts in
      G.fold_edges rng_g
        (fun acc u v ->
          acc
          && Array.for_all
               (fun w ->
                 P.equal w pts.(u) || P.equal w pts.(v)
                 || not (Geometry.Circle.in_lune pts.(u) pts.(v) w))
               pts)
        true)

let prop_gabriel_disk_empty =
  QCheck.Test.make ~name:"Gabriel edges have empty diametral disks" ~count:15
    (arb (gen_instance ~min:20 ~max:60 ~radius:50.) print_points)
    (fun pts ->
      let udg = Wireless.Udg.build pts ~radius:50. in
      let gg = Wireless.Proximity.gabriel_graph udg pts in
      G.fold_edges gg
        (fun acc u v ->
          acc
          && Array.for_all
               (fun w ->
                 P.equal w pts.(u) || P.equal w pts.(v)
                 || not (Geometry.Circle.in_diametral pts.(u) pts.(v) w))
               pts)
        true)

let prop_gfg_delivers =
  QCheck.Test.make ~name:"GFG delivers on the planar backbone" ~count:10
    (arb (gen_instance ~min:30 ~max:70 ~radius:50.) print_points)
    (fun pts ->
      let bb = Core.Backbone.build pts ~radius:50. in
      let planar = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
      let n = Array.length pts in
      let ok = ref true in
      for src = 0 to min 10 (n - 1) do
        let dst = n - 1 - src in
        if src <> dst then
          match Core.Routing.gfg planar pts ~src ~dst with
          | Some p -> if not (Netgraph.Traversal.is_path planar p) then ok := false
          | None -> ok := false
      done;
      !ok)

let prop_protocol_equals_centralized =
  QCheck.Test.make ~name:"protocol ≡ centralized (randomized)" ~count:8
    (arb (gen_instance ~min:20 ~max:50 ~radius:50.) print_points)
    (fun pts ->
      let bb = Core.Backbone.build pts ~radius:50. in
      let pr = Core.Protocol.run pts ~radius:50. in
      pr.Core.Protocol.roles = bb.Core.Backbone.cds.Core.Cds.roles
      && pr.Core.Protocol.cds_edges
         = bb.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.cds_edges
      && G.equal pr.Core.Protocol.ldel_graph bb.Core.Backbone.ldel_icds_g)

let to_alcotest tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let suites =
  [
    ( "properties.geometry",
      to_alcotest
        [
          prop_dist_symmetric;
          prop_triangle_inequality;
          prop_orient_antisymmetric;
          prop_orient_rotation;
          prop_incircle_corner_rotation;
          prop_segment_intersect_symmetric;
          prop_hull_contains_all;
        ] );
    ( "properties.delaunay",
      to_alcotest [ prop_delaunay_empty_circumcircle; prop_delaunay_planar ]
    );
    ( "properties.lemmas",
      to_alcotest
        [
          prop_mis_valid;
          prop_lemma1_five_dominators;
          prop_lemma2_bounded_dominators_in_disk;
          prop_cds_connected;
          prop_lemma5_hop_stretch;
          prop_lemma6_length_stretch;
          prop_pldel_planar;
          prop_ldel_icds'_spans;
          prop_rng_lune_empty;
          prop_gabriel_disk_empty;
          prop_gfg_delivers;
          prop_protocol_equals_centralized;
        ] );
  ]
