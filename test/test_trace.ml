(* The trace layer: deterministic merge across worker counts, Chrome
   round-trip, engine send/deliver semantics, profile and folded-stack
   aggregation, the message audit, and the bench regression gate. *)

module T = Obs.Trace
module G = Netgraph.Graph
module E = Distsim.Engine

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* Every test starts from a clean, disarmed tracer and leaves both
   global switches off for the rest of the suite. *)
let isolated f () =
  Obs.reset ();
  Obs.set_enabled false;
  T.stop ();
  Fun.protect
    ~finally:(fun () ->
      T.stop ();
      Obs.set_enabled false;
      Obs.reset ())
    f

let deployment seed n radius =
  let rng = Wireless.Rand.create seed in
  fst
    (Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
       ~max_attempts:2000)

(* ------------------------------------------------------------------ *)
(* Deterministic merge                                                 *)
(* ------------------------------------------------------------------ *)

(* Everything except wall-clock: the stream restricted to this
   projection must be bit-identical for any worker count. *)
let project evs =
  List.map (fun (e : T.event) -> (e.T.task, e.T.phase, e.T.payload)) evs

let trace_metrics pts base jobs =
  T.start ();
  let r =
    Netgraph.Metrics.combined_stretch ~jobs ~beta:2. ~base pts
      [ ("sub", base) ]
  in
  T.stop ();
  ignore r;
  let evs = T.events () in
  checki "nothing dropped" 0 (T.dropped ());
  project evs

let test_merge_invariant_under_jobs () =
  Obs.set_enabled true;
  let pts = deployment 2002L 60 60. in
  let base = Wireless.Udg.build pts ~radius:60. in
  let t1 = trace_metrics pts base 1 in
  let t2 = trace_metrics pts base 2 in
  let t4 = trace_metrics pts base 4 in
  check "trace has events" true (t1 <> []);
  check "jobs=2 replays jobs=1 exactly" true (t2 = t1);
  check "jobs=4 replays jobs=1 exactly" true (t4 = t1)

let test_pool_job_brackets () =
  Obs.set_enabled true;
  let pts = deployment 7L 40 60. in
  let base = Wireless.Udg.build pts ~radius:60. in
  T.start ();
  ignore (Netgraph.Metrics.combined_stretch ~jobs:3 ~base pts [ ("s", base) ]);
  T.stop ();
  let evs = T.events () in
  let depth = ref 0 and min_depth = ref 0 and jobs = ref 0 in
  List.iter
    (fun (e : T.event) ->
      match e.T.payload with
      | T.Span_begin "pool.job" ->
        incr jobs;
        incr depth
      | T.Span_end "pool.job" ->
        decr depth;
        if !depth < !min_depth then min_depth := !depth
      | _ -> ())
    evs;
    check "at least one pool job traced" true (!jobs > 0);
    checki "job brackets balance" 0 !depth;
    checki "never more ends than begins" 0 !min_depth;
    (* worker events appear only inside a bracket, tagged with a task *)
    let in_job = ref false in
    List.iter
      (fun (e : T.event) ->
        (match e.T.payload with
        | T.Span_begin "pool.job" -> in_job := true
        | T.Span_end "pool.job" -> in_job := false
        | _ -> ());
        if e.T.task >= 0 then check "task context only inside jobs" true !in_job)
      evs

(* ------------------------------------------------------------------ *)
(* Chrome round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_chrome_roundtrip () =
  Obs.set_enabled true;
  T.start ();
  let c = Obs.counter "trace.rt" in
  Obs.span "rt.outer" (fun () ->
      Obs.incr c;
      Obs.add c 3;
      T.send ~round:3 ~time:0.5 ~kind:"Hello, \"world\"" ~src:1 ~dst:(-1)
        ~lam:1 ~sseq:0;
      T.deliver ~round:4 ~time:1.0625 ~kind:"Hello, \"world\"" ~src:1 ~dst:2
        ~lam:2 ~sseq:0 ~dseq:0;
      Obs.span "rt.inner" (fun () -> Obs.incr c));
  T.stop ();
  let evs = T.events () in
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  T.write_chrome fmt evs;
  Format.pp_print_flush fmt ();
  let parsed = T.read_chrome (Buffer.contents buf) in
  check "chrome JSON round-trips exactly" true (parsed = evs);
  (* the two incr's around the send/deliver pair cannot coalesce *)
  let counts =
    List.filter
      (fun (e : T.event) ->
        match e.T.payload with T.Count _ -> true | _ -> false)
      evs
  in
  checki "interleaved counts stay separate" 2 (List.length counts)

let test_count_coalescing () =
  Obs.set_enabled true;
  T.start ();
  let c = Obs.counter "trace.coalesce" in
  for _ = 1 to 1000 do
    Obs.incr c
  done;
  T.stop ();
  match project (T.events ()) with
  | [ (_, _, T.Count { name = "trace.coalesce"; delta = 1000 }) ] -> ()
  | evs ->
    Alcotest.failf "expected one coalesced count event, got %d"
      (List.length evs)

(* ------------------------------------------------------------------ *)
(* Engine audit semantics                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_send_deliver () =
  Obs.set_enabled true;
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let proto =
    {
      E.init = (fun _ _ -> ());
      E.on_round =
        (fun ctx st _ ->
          if ctx.E.round = 0 then ctx.E.broadcast ctx.E.me;
          st);
    }
  in
  T.start ();
  let _, stats = E.run ~classify:(fun _ -> "id") g proto in
  T.stop ();
  let evs = T.events () in
  let sends, delivers =
    List.partition
      (fun (e : T.event) ->
        match e.T.payload with T.Send _ -> true | _ -> false)
      (List.filter
         (fun (e : T.event) ->
           match e.T.payload with
           | T.Send _ | T.Deliver _ -> true
           | _ -> false)
         evs)
  in
  checki "one send event per transmission" (E.total_sent stats)
    (List.length sends);
  (* path graph 0-1-2-3: degrees 1,2,2,1 = 6 point-to-point deliveries *)
  checki "one deliver event per reception" 6 (List.length delivers);
  List.iter
    (fun (e : T.event) ->
      match e.T.payload with
      | T.Send { round; _ } -> checki "sends happen in round 0" 0 round
      | T.Deliver { round; src; dst; _ } ->
        checki "delivery lands one round after the send" 1 round;
        check "src/dst are an edge" true (G.has_edge g src dst)
      | _ -> ())
    (sends @ delivers)

let test_async_by_kind () =
  let pts = deployment 11L 30 60. in
  let udg = Wireless.Udg.build pts ~radius:60. in
  let delay ~from:_ ~dst:_ ~seq = 1. +. (float_of_int (seq mod 7) /. 10.) in
  let roles, stats = Core.Async_cluster.run ~delay udg in
  let doms =
    Array.fold_left
      (fun acc r -> if r = Core.Mis.Dominator then acc + 1 else acc)
      0 roles
  in
  let kind k =
    Option.value ~default:0 (List.assoc_opt k stats.Distsim.Async_engine.by_kind)
  in
  checki "one IamDominator per dominator" doms (kind "IamDominator");
  checki "one IamDominatee per dominatee" (Array.length roles - doms)
    (kind "IamDominatee");
  checki "kinds account for every transmission"
    (Array.fold_left ( + ) 0 stats.Distsim.Async_engine.sent)
    (kind "IamDominator" + kind "IamDominatee")

let test_message_audit () =
  Obs.set_enabled true;
  let pts = deployment 2002L 40 60. in
  T.start ();
  let r = Core.Protocol.run pts ~radius:60. in
  T.stop ();
  let evs = T.events () in
  let audit = T.message_audit evs in
  (* every phase's traced sends equal the engine's own counters *)
  let traced phase =
    List.fold_left
      (fun acc (row : T.audit_row) ->
        if row.T.a_phase = phase then acc + row.T.a_sends else acc)
      0 audit
  in
  List.iter2
    (fun name stats ->
      checki
        ("traced sends = engine total for " ^ name)
        (E.total_sent stats)
        (traced ("protocol/" ^ name)))
    Core.Protocol.phases
    [
      r.Core.Protocol.stats_cluster; r.Core.Protocol.stats_connector;
      r.Core.Protocol.stats_status; r.Core.Protocol.stats_ldel;
    ];
  (* clustering audits exactly the paper's kinds *)
  let cluster_kinds =
    List.filter_map
      (fun (row : T.audit_row) ->
        if row.T.a_phase = "protocol/cluster" then Some row.T.a_kind else None)
      audit
  in
  check "clustering kinds" true
    (List.sort compare cluster_kinds
    = [ "Hello"; "IamDominatee"; "IamDominator" ])

let test_slope_fit () =
  (* exact power laws recover their exponent *)
  checkf "linear" 1.
    (T.fit_loglog_slope [ (100., 300.); (200., 600.); (400., 1200.) ]);
  checkf "quadratic" 2.
    (T.fit_loglog_slope [ (10., 500.); (20., 2000.); (40., 8000.) ]);
  check "degenerate input is nan" true
    (Float.is_nan (T.fit_loglog_slope [ (10., 5.) ]))

(* ------------------------------------------------------------------ *)
(* Profile and folded stacks                                           *)
(* ------------------------------------------------------------------ *)

let test_profile_nesting () =
  Obs.set_enabled true;
  T.start ();
  Obs.span "prof.a" (fun () ->
      Obs.span "prof.b" (fun () -> Obs.span "prof.b" (fun () -> ())));
  T.stop ();
  let rows = T.profile (T.events ()) in
  let row path =
    match List.find_opt (fun (r : T.profile_row) -> r.T.p_path = path) rows with
    | Some r -> r
    | None -> Alcotest.failf "missing profile row %s" path
  in
  let a = row "prof.a" and b = row "prof.a/prof.b" in
  let bb = row "prof.a/prof.b/prof.b" in
  checki "outer called once" 1 a.T.p_calls;
  checki "inner twice (recursively)" 1 b.T.p_calls;
  checki "recursive leaf" 1 bb.T.p_calls;
  check "total includes children" true (a.T.p_total >= b.T.p_total);
  checkf "outer self = total - children" (a.T.p_total -. b.T.p_total)
    a.T.p_self;
  checkf "leaf self = leaf total" bb.T.p_total bb.T.p_self

let test_folded_stacks () =
  Obs.set_enabled true;
  T.start ();
  Obs.span "fold.a" (fun () -> Obs.span "fold.b" (fun () -> ()));
  T.stop ();
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  T.write_folded fmt (T.events ());
  Format.pp_print_flush fmt ();
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  checki "one line per span path" 2 (List.length lines);
  check "nesting uses semicolons" true
    (List.exists
       (fun l -> String.length l > 13 && String.sub l 0 13 = "fold.a;fold.b")
       lines)

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)
(* ------------------------------------------------------------------ *)

let gate_snapshot () =
  Obs.set_enabled true;
  let c = Obs.counter "gate.work" in
  Obs.add c 42;
  let d = Obs.dist "gate.sizes" in
  List.iter (fun x -> Obs.observe d x) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Obs.span "gate.stage" (fun () -> ());
  Obs.Snapshot.capture ()

let test_check_against_identical () =
  let snap = gate_snapshot () in
  check "identical snapshot passes" true
    (Obs.Snapshot.check_against ~threshold:0.5 ~reference:snap snap = [])

let test_check_against_regressions () =
  (* pin the span timing so the test is deterministic: the "current"
     run took 1s where the committed baseline took 0.5s — a 2x
     slowdown must fail a +50% gate, naming the span *)
  let with_seconds secs s =
    {
      s with
      Obs.Snapshot.spans =
        List.map
          (fun (sp : Obs.Snapshot.span_stats) ->
            { sp with Obs.Snapshot.seconds = secs })
          s.Obs.Snapshot.spans;
    }
  in
  let snap = with_seconds 1.0 (gate_snapshot ()) in
  let halved = with_seconds 0.5 snap in
  (match Obs.Snapshot.check_against ~threshold:0.5 ~reference:halved snap with
  | [] -> Alcotest.fail "2x slowdown passed a +50% gate"
  | vs ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check "violation names the span" true
      (List.exists (fun v -> contains v "gate.stage") vs));
  (* counter drift is a hard failure at any threshold *)
  let drifted =
    {
      snap with
      Obs.Snapshot.counters =
        List.map
          (fun (n, v) -> if n = "gate.work" then (n, v + 1) else (n, v))
          snap.Obs.Snapshot.counters;
    }
  in
  check "counter drift fails" true
    (Obs.Snapshot.check_against ~threshold:10. ~reference:drifted snap <> []);
  (* metrics only present in the current run are ignored *)
  let trimmed = { snap with Obs.Snapshot.counters = [] } in
  check "reference without the counter still passes" true
    (Obs.Snapshot.check_against ~threshold:0.5 ~reference:trimmed snap = [])

let test_dist_moments () =
  let snap = gate_snapshot () in
  let stats = List.assoc "gate.sizes" snap.Obs.Snapshot.dists in
  checki "count" 8 stats.Obs.Snapshot.count;
  checkf "mean" 5. (Obs.Snapshot.dist_mean stats);
  checkf "population stddev" 2. (Obs.Snapshot.dist_stddev stats);
  (* the moments survive both sink round-trips *)
  let via render parse =
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    render fmt snap;
    Format.pp_print_flush fmt ();
    List.assoc "gate.sizes" (parse (Buffer.contents buf)).Obs.Snapshot.dists
  in
  let js = via (fun fmt s -> Obs.json fmt s) Obs.Snapshot.of_json_lines in
  let cs = via (fun fmt s -> Obs.csv fmt s) Obs.Snapshot.of_csv in
  check "json keeps sumsq" true (js = stats);
  check "csv keeps sumsq" true (cs = stats)

(* ------------------------------------------------------------------ *)
(* Causal analysis                                                     *)
(* ------------------------------------------------------------------ *)

module C = Obs.Causal

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Token relay over a path graph: node 0 fires, each node forwards on
   hearing its predecessor — O(n) messages, causal depth n. *)
let relay_protocol =
  {
    E.init = (fun i _ -> i = 0);
    E.on_round =
      (fun ctx fired inbox ->
        if ctx.E.round = 0 && ctx.E.me = 0 then begin
          ctx.E.broadcast 0;
          true
        end
        else if
          (not fired)
          && List.exists
               (fun (d : int E.delivery) -> d.E.msg = ctx.E.me - 1)
               inbox
        then begin
          ctx.E.broadcast ctx.E.me;
          true
        end
        else fired);
  }

let path_graph n = G.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let relay_events n =
  T.start ();
  Obs.span "causal.relay" (fun () ->
      ignore (E.run ~classify:(fun _ -> "Token") (path_graph n) relay_protocol));
  T.stop ();
  T.events ()

let test_causal_relay_depth () =
  Obs.set_enabled true;
  let r = C.analyze (relay_events 5) in
  checki "one phase" 1 (List.length r.C.r_phases);
  let ph = List.hd r.C.r_phases in
  check "phase is the span path" true (ph.C.ph_phase = "causal.relay");
  (* 5 sends, one deliver per (sender, neighbor) on the path: 8 *)
  checki "events" 13 ph.C.ph_events;
  checki "token chain has depth n" 5 ph.C.ph_depth;
  checki "rounds spanned by the path" 6 ph.C.ph_rounds;
  checki "single phase = end to end" ph.C.ph_depth r.C.r_depth;
  check "no violations" true (r.C.r_violations = []);
  (* the critical path walks the whole chain: n sends, n delivers *)
  checki "path length" 10 (List.length ph.C.ph_path);
  check "path roots at depth 0" true
    (match ph.C.ph_path with s :: _ -> s.C.s_depth = 0 | [] -> false);
  check "path depths never decrease" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a.C.s_depth <= b.C.s_depth && mono rest
       | _ -> true
     in
     mono ph.C.ph_path);
  (* width buckets cover every event exactly once *)
  checki "width sums to events" ph.C.ph_events
    (List.fold_left (fun a (_, w) -> a + w) 0 ph.C.ph_width);
  checki "width has depth+1 buckets" (ph.C.ph_depth + 1)
    (List.length ph.C.ph_width);
  check "attribution sorted most-loaded first" true
    (match ph.C.ph_attribution with
    | (_, c1) :: (_, c2) :: _ -> c1 >= c2
    | [ _ ] -> true
    | [] -> false)

let test_causal_flood_depth () =
  Obs.set_enabled true;
  T.start ();
  let proto =
    {
      E.init = (fun _ _ -> ());
      E.on_round =
        (fun ctx st _ ->
          if ctx.E.round = 0 then ctx.E.broadcast ctx.E.me;
          st);
    }
  in
  Obs.span "causal.flood" (fun () ->
      ignore (E.run ~classify:(fun _ -> "id") (path_graph 4) proto));
  T.stop ();
  let r = C.analyze (T.events ()) in
  let ph = List.hd r.C.r_phases in
  (* one broadcast round: every chain is send -> deliver *)
  checki "flood depth is one hop" 1 ph.C.ph_depth;
  checki "rounds" 2 ph.C.ph_rounds;
  check "no violations" true (r.C.r_violations = [])

(* The analyzer only reads the merged stream, so its output is
   bit-identical whatever worker count produced the interleaved pool
   events around the protocol's. *)
let causal_with_jobs jobs =
  let pts = deployment 2002L 40 60. in
  let base = Wireless.Udg.build pts ~radius:60. in
  T.start ();
  let r = Core.Protocol.run pts ~radius:60. in
  ignore r;
  ignore
    (Netgraph.Metrics.combined_stretch ~jobs ~beta:2. ~base pts
       [ ("sub", base) ]);
  T.stop ();
  let evs = T.events () in
  checki "nothing dropped" 0 (T.dropped ());
  C.analyze evs

let test_causal_jobs_identity () =
  Obs.set_enabled true;
  let r1 = causal_with_jobs 1 in
  let r2 = causal_with_jobs 2 in
  let r4 = causal_with_jobs 4 in
  check "protocol phases analyzed" true (List.length r1.C.r_phases >= 4);
  check "depth positive" true (r1.C.r_depth > 0);
  check "jobs=2 report is bit-identical" true (r2 = r1);
  check "jobs=4 report is bit-identical" true (r4 = r1)

let test_causal_violations () =
  Obs.set_enabled true;
  T.start ();
  (* raw hooks on purpose: forge streams the stamping helper cannot
     produce *)
  Obs.span "causal.bad" (fun () ->
      T.send ~round:0 ~time:0. ~kind:"k" ~src:0 ~dst:(-1) ~lam:5 ~sseq:0;
      (* node 0 stamps again without advancing past 5 *)
      T.send ~round:1 ~time:0. ~kind:"k" ~src:0 ~dst:(-1) ~lam:3 ~sseq:1;
      (* no send (src 2, sseq 9) precedes this *)
      T.deliver ~round:1 ~time:0. ~kind:"k" ~src:2 ~dst:1 ~lam:1 ~sseq:9
        ~dseq:0;
      (* matched send has lam 5; a deliver stamp must dominate it *)
      T.deliver ~round:1 ~time:0. ~kind:"k" ~src:0 ~dst:3 ~lam:4 ~sseq:0
        ~dseq:0);
  T.stop ();
  let r = C.analyze (T.events ()) in
  let orphans, regressions =
    List.partition
      (function C.Orphan_deliver _ -> true | _ -> false)
      r.C.r_violations
  in
  check "orphan deliver detected" true
    (match orphans with
    | [ C.Orphan_deliver { src = 2; dst = 1; sseq = 9; _ } ] -> true
    | _ -> false);
  checki "both regressions detected" 2 (List.length regressions);
  check "regressions carry the stamps" true
    (List.for_all
       (function
         | C.Clock_regression { lam; prev; _ } -> lam <= prev
         | _ -> false)
       regressions);
  (* diagnostics render *)
  List.iter
    (fun v ->
      check "violation pretty-prints" true
        (String.length (Format.asprintf "%a" C.pp_violation v) > 10))
    r.C.r_violations

let test_causal_dot () =
  Obs.set_enabled true;
  let evs = relay_events 4 in
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  C.write_dot fmt evs;
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buf in
  let count c =
    String.fold_left (fun a ch -> if ch = c then a + 1 else a) 0 text
  in
  check "digraph prefix" true
    (String.length text > 7 && String.sub text 0 7 = "digraph");
  check "braces balance" true (count '{' = count '}' && count '{' >= 2);
  check "has message edges" true (contains text "style=solid");
  check "has program-order edges" true (contains text "style=dashed");
  check "critical path highlighted" true (contains text "color=red");
  (* one DOT node per protocol event: 4 sends + 6 deliveries *)
  let occurrences needle =
    let nn = String.length needle in
    let rec go i acc =
      if i + nn > String.length text then acc
      else if String.sub text i nn = needle then go (i + nn) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  checki "one node per protocol event" 10 (occurrences "[label=\"")

let test_chrome_flows_roundtrip () =
  Obs.set_enabled true;
  let evs = relay_events 5 in
  let r = C.analyze evs in
  let flows = C.flows evs r in
  check "relay path yields flow arrows" true (List.length flows >= 4);
  List.iter
    (fun ((s : T.event), (d : T.event)) ->
      check "flow source is a send" true
        (match s.T.payload with T.Send _ -> true | _ -> false);
      check "flow target is a deliver" true
        (match d.T.payload with T.Deliver _ -> true | _ -> false))
    flows;
  let buf = Buffer.create 8192 in
  let fmt = Format.formatter_of_buffer buf in
  T.write_chrome ~flows fmt evs;
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buf in
  check "flow-start records emitted" true
    (contains text "\"cat\":\"flow\",\"ph\":\"s\"");
  check "flow-finish records emitted" true
    (contains text "\"cat\":\"flow\",\"ph\":\"f\"");
  (* arrows are presentation-only: the read-back is still lossless *)
  check "flow arrows don't disturb the round-trip" true
    (T.read_chrome text = evs)

let test_async_classify_tracing () =
  Obs.set_enabled true;
  let pts = deployment 11L 30 60. in
  let udg = Wireless.Udg.build pts ~radius:60. in
  let delay ~from:_ ~dst:_ ~seq = 1. +. (float_of_int (seq mod 7) /. 10.) in
  T.start ();
  let _, stats = Core.Async_cluster.run ~delay udg in
  T.stop ();
  let evs = T.events () in
  let send_count k =
    List.fold_left
      (fun acc (e : T.event) ->
        match e.T.payload with
        | T.Send { kind; _ } when kind = k -> acc + 1
        | _ -> acc)
      0 evs
  in
  let deliver_count k =
    List.fold_left
      (fun acc (e : T.event) ->
        match e.T.payload with
        | T.Deliver { kind; _ } when kind = k -> acc + 1
        | _ -> acc)
      0 evs
  in
  (* each send of kind k from u fans out to deg(u) deliveries *)
  let expected_deliveries k =
    List.fold_left
      (fun acc (e : T.event) ->
        match e.T.payload with
        | T.Send { kind; src; _ } when kind = k -> acc + G.degree udg src
        | _ -> acc)
      0 evs
  in
  let by_kind = stats.Distsim.Async_engine.by_kind in
  check "both kinds classified" true
    (List.map fst by_kind = [ "IamDominatee"; "IamDominator" ]);
  List.iter
    (fun (k, c) ->
      checki ("traced sends match the counter for " ^ k) c (send_count k);
      checki
        ("traced deliveries fan out per degree for " ^ k)
        (expected_deliveries k) (deliver_count k))
    by_kind;
  checki "every delivery traced with its kind"
    stats.Distsim.Async_engine.deliveries
    (List.fold_left (fun a (k, _) -> a + deliver_count k) 0 by_kind);
  (* async stamping is causally coherent too *)
  check "no violations in the async stream" true
    ((C.analyze evs).C.r_violations = [])

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "merge invariant under jobs" `Quick
          (isolated test_merge_invariant_under_jobs);
        Alcotest.test_case "pool job brackets" `Quick
          (isolated test_pool_job_brackets);
        Alcotest.test_case "chrome round-trip" `Quick
          (isolated test_chrome_roundtrip);
        Alcotest.test_case "count coalescing" `Quick
          (isolated test_count_coalescing);
        Alcotest.test_case "engine send/deliver" `Quick
          (isolated test_engine_send_deliver);
        Alcotest.test_case "async per-kind stats" `Quick
          (isolated test_async_by_kind);
        Alcotest.test_case "message audit matches engine" `Quick
          (isolated test_message_audit);
        Alcotest.test_case "log-log slope fit" `Quick
          (isolated test_slope_fit);
        Alcotest.test_case "profile nesting" `Quick
          (isolated test_profile_nesting);
        Alcotest.test_case "folded stacks" `Quick
          (isolated test_folded_stacks);
        Alcotest.test_case "check_against identical" `Quick
          (isolated test_check_against_identical);
        Alcotest.test_case "check_against regressions" `Quick
          (isolated test_check_against_regressions);
        Alcotest.test_case "dist mean/stddev" `Quick
          (isolated test_dist_moments);
      ] );
    ( "causal",
      [
        Alcotest.test_case "relay critical path" `Quick
          (isolated test_causal_relay_depth);
        Alcotest.test_case "flood depth" `Quick
          (isolated test_causal_flood_depth);
        Alcotest.test_case "bit-identical across jobs" `Quick
          (isolated test_causal_jobs_identity);
        Alcotest.test_case "violation diagnostics" `Quick
          (isolated test_causal_violations);
        Alcotest.test_case "dot dump" `Quick (isolated test_causal_dot);
        Alcotest.test_case "chrome flow arrows" `Quick
          (isolated test_chrome_flows_roundtrip);
        Alcotest.test_case "async classify under tracing" `Quick
          (isolated test_async_classify_tracing);
      ] );
  ]
