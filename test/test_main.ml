let () =
  Alcotest.run "geospanner"
    (Test_geometry.suites @ Test_netgraph.suites @ Test_delaunay.suites
   @ Test_wireless.suites @ Test_distsim.suites @ Test_mis.suites
   @ Test_cds.suites @ Test_ldel.suites @ Test_protocol.suites
   @ Test_routing.suites @ Test_properties.suites @ Test_viz.suites
   @ Test_maintenance.suites @ Test_claims.suites @ Test_broadcast.suites
   @ Test_packetsim.suites @ Test_stress.suites @ Test_async.suites
   @ Test_energy.suites @ Test_integration.suites @ Test_obs.suites
   @ Test_metrics_engine.suites @ Test_trace.suites @ Test_sketch.suites
   @ Test_monitor.suites @ Test_shard.suites @ Test_serve.suites
   @ Test_export.suites @ Test_lint.suites)
