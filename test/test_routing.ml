(* Geographic routing: greedy, GFG (GPSR-style), hierarchical. *)

module G = Netgraph.Graph
module P = Geometry.Point

let check = Alcotest.(check bool)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  pts

let test_greedy_straight_line () =
  let pts = Array.init 5 (fun i -> P.make (float_of_int i) 0.) in
  let g = Wireless.Udg.build pts ~radius:1.2 in
  (match Core.Routing.greedy g pts ~src:0 ~dst:4 with
  | Some p -> Alcotest.(check (list int)) "direct chain" [ 0; 1; 2; 3; 4 ] p
  | None -> Alcotest.fail "greedy should succeed on a line");
  match Core.Routing.greedy g pts ~src:2 ~dst:2 with
  | Some p -> Alcotest.(check (list int)) "self" [ 2 ] p
  | None -> Alcotest.fail "self route"

let test_greedy_local_minimum () =
  (* a "C" shape: src and dst close in space, but the only path goes
     around; greedy gets stuck at the tip *)
  let pts =
    [|
      P.make 0. 0.; (* src *)
      P.make 0. 2.; (* up *)
      P.make 2. 2.; (* across *)
      P.make 2. 0.; (* down = dst side *)
      P.make 0.9 0.; (* dead-end closer to dst *)
    |]
  in
  let g = G.of_edges 5 [ (0, 4); (0, 1); (1, 2); (2, 3) ] in
  check "greedy stuck" true (Core.Routing.greedy g pts ~src:0 ~dst:3 = None);
  (* GFG recovers via the perimeter *)
  match Core.Routing.gfg g pts ~src:0 ~dst:3 with
  | Some p ->
    check "valid path" true (Netgraph.Traversal.is_path g p);
    check "ends at dst" true (List.nth p (List.length p - 1) = 3)
  | None -> Alcotest.fail "gfg must deliver on planar connected"

let test_gfg_delivery_guarantee () =
  for seed = 300 to 304 do
    let pts = instance (Int64.of_int seed) 60 50. in
    let bb = Core.Backbone.build pts ~radius:50. in
    let planar = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
    check "planar precondition" true
      (Netgraph.Planarity.is_planar planar pts);
    let n = Array.length pts in
    for src = 0 to n - 1 do
      let dst = (src + (n / 2)) mod n in
      if src <> dst then
        match Core.Routing.gfg planar pts ~src ~dst with
        | Some p ->
          check "path valid" true (Netgraph.Traversal.is_path planar p);
          check "starts at src" true (List.hd p = src)
        | None -> Alcotest.failf "undelivered %d->%d (seed %d)" src dst seed
    done
  done

let test_gfg_disconnected_returns_none () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 50. 0.; P.make 51. 0. |] in
  let g = G.of_edges 4 [ (0, 1); (2, 3) ] in
  check "unreachable" true (Core.Routing.gfg g pts ~src:0 ~dst:3 = None)

let test_hierarchical_delivery () =
  for seed = 310 to 312 do
    let pts = instance (Int64.of_int seed) 80 50. in
    let bb = Core.Backbone.build pts ~radius:50. in
    let n = Array.length pts in
    let rng = Wireless.Rand.create 999L in
    for _ = 1 to 50 do
      let src = Wireless.Rand.int rng n and dst = Wireless.Rand.int rng n in
      match Core.Routing.hierarchical bb ~src ~dst with
      | Some p ->
        check "starts" true (List.hd p = src);
        check "ends" true (List.nth p (List.length p - 1) = dst)
      | None -> Alcotest.failf "hierarchical undelivered %d->%d" src dst
    done
  done

let test_hierarchical_adjacent_direct () =
  let pts = instance 313L 60 50. in
  let bb = Core.Backbone.build pts ~radius:50. in
  let udg = bb.Core.Backbone.udg in
  G.iter_edges udg (fun u v ->
      match Core.Routing.hierarchical bb ~src:u ~dst:v with
      | Some p -> check "one hop" true (List.length p <= 2)
      | None -> Alcotest.fail "adjacent must deliver")

let test_hierarchical_path_edges_exist () =
  (* every hop of a hierarchical route is a real UDG link *)
  let pts = instance 314L 70 50. in
  let bb = Core.Backbone.build pts ~radius:50. in
  let n = Array.length pts in
  for src = 0 to n - 1 do
    let dst = (src + 17) mod n in
    if src <> dst then
      match Core.Routing.hierarchical bb ~src ~dst with
      | Some p ->
        check "UDG-realizable" true
          (Netgraph.Traversal.is_path bb.Core.Backbone.udg p)
      | None -> Alcotest.fail "undelivered"
  done

let test_variants_on_line () =
  (* on a straight chain every directional rule routes hop by hop *)
  let pts = Array.init 6 (fun i -> P.make (float_of_int i) 0.) in
  let g = Wireless.Udg.build pts ~radius:1.2 in
  List.iter
    (fun (name, route) ->
      match route g pts ~src:0 ~dst:5 with
      | Some p ->
        Alcotest.(check (list int)) (name ^ " chain") [ 0; 1; 2; 3; 4; 5 ] p
      | None -> Alcotest.failf "%s failed on the chain" name)
    [
      ("greedy", Core.Routing.greedy);
      ("compass", Core.Routing.compass);
      ("mfr", Core.Routing.mfr);
      ("nfp", Core.Routing.nfp);
    ]

let test_variants_choose_differently () =
  (* src 0 at origin, dst 3 to the east; neighbor 1 is closest to dst
     (greedy's pick), neighbor 2 makes more forward progress (MFR's
     pick), and is nearer to src than... set up so NFP picks 1 *)
  let pts =
    [|
      P.make 0. 0.; (* src *)
      P.make 4. 0.5; (* closer to dst, less progress, nearer to src *)
      P.make 5. 3.; (* most forward progress, farther from dst *)
      P.make 7. 0.; (* dst *)
    |]
  in
  let g = G.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (match Core.Routing.greedy g pts ~src:0 ~dst:3 with
  | Some (_ :: v :: _) ->
    Alcotest.(check int) "greedy takes nearest-to-dst" 1 v
  | _ -> Alcotest.fail "greedy failed");
  (match Core.Routing.mfr g pts ~src:0 ~dst:3 with
  | Some (_ :: v :: _) -> Alcotest.(check int) "mfr takes most-forward" 2 v
  | _ -> Alcotest.fail "mfr failed");
  match Core.Routing.nfp g pts ~src:0 ~dst:3 with
  | Some (_ :: v :: _) ->
    Alcotest.(check int) "nfp takes nearest-with-progress" 1 v
  | _ -> Alcotest.fail "nfp failed"

let test_variants_fail_without_progress () =
  (* dead end: no neighbor makes forward progress *)
  let pts = [| P.make 0. 0.; P.make (-1.) 0.; P.make 5. 0. |] in
  let g = G.of_edges 3 [ (0, 1) ] in
  check "greedy stuck" true (Core.Routing.greedy g pts ~src:0 ~dst:2 = None);
  check "mfr stuck" true (Core.Routing.mfr g pts ~src:0 ~dst:2 = None);
  check "nfp stuck" true (Core.Routing.nfp g pts ~src:0 ~dst:2 = None)

let test_variants_delivery_rates () =
  (* on dense random UDGs all directional heuristics deliver most
     pairs and produce valid paths *)
  let pts = instance 320L 100 60. in
  let g = Wireless.Udg.build pts ~radius:60. in
  let n = Array.length pts in
  List.iter
    (fun (name, route, threshold) ->
      let ok = ref 0 and total = ref 0 in
      for src = 0 to n - 1 do
        let dst = (src + (n / 3)) mod n in
        if src <> dst then begin
          incr total;
          match route g pts ~src ~dst with
          | Some p ->
            check (name ^ " path valid") true (Netgraph.Traversal.is_path g p);
            incr ok
          | None -> ()
        end
      done;
      check
        (Printf.sprintf "%s delivers enough (%d/%d)" name !ok !total)
        true
        (float_of_int !ok >= threshold *. float_of_int !total))
    [
      ("greedy", Core.Routing.greedy, 0.9);
      ("compass", Core.Routing.compass, 0.9);
      ("mfr", Core.Routing.mfr, 0.9);
      (* NFP's short steps make it orbit near the destination on some
         pairs — delivery is genuinely weaker, which is part of why
         greedy+face won out historically *)
      ("nfp", Core.Routing.nfp, 0.6);
    ]

let test_evaluate () =
  let pts = instance 315L 60 50. in
  let bb = Core.Backbone.build pts ~radius:50. in
  let planar = bb.Core.Backbone.ldel_icds' in
  let rng = Wireless.Rand.create 5L in
  let ev =
    Core.Routing.evaluate
      ~router:(fun ~src ~dst -> Core.Routing.hierarchical bb ~src ~dst)
      ~base:bb.Core.Backbone.udg pts ~pairs:40 rng
  in
  ignore planar;
  Alcotest.(check int) "all pairs sampled" 40 ev.Core.Routing.pairs;
  Alcotest.(check int) "all delivered" 40 ev.Core.Routing.delivered;
  check "stretch sane" true
    (ev.Core.Routing.avg_length_stretch >= 1.
    && ev.Core.Routing.avg_length_stretch < 10.)

(* Uniform endpoint contract across all five routers (both the legacy
   Graph form and the View form): src = dst is the trivial delivery
   [Some [src]], any out-of-range node id is a clean [None]. *)
let test_endpoint_contract () =
  let pts = instance 55L 40 60. in
  let g = Wireless.Udg.build pts ~radius:60. in
  let v = Netgraph.View.of_graph g in
  let n = Array.length pts in
  let graph_routers =
    [
      ("greedy", fun ~src ~dst -> Core.Routing.greedy g pts ~src ~dst);
      ("compass", fun ~src ~dst -> Core.Routing.compass g pts ~src ~dst);
      ("mfr", fun ~src ~dst -> Core.Routing.mfr g pts ~src ~dst);
      ("nfp", fun ~src ~dst -> Core.Routing.nfp g pts ~src ~dst);
      ("gfg", fun ~src ~dst -> Core.Routing.gfg g pts ~src ~dst);
    ]
  in
  let view_routers =
    [
      ("greedy_v", fun ~src ~dst -> Core.Routing.greedy_v v pts ~src ~dst);
      ("compass_v", fun ~src ~dst -> Core.Routing.compass_v v pts ~src ~dst);
      ("mfr_v", fun ~src ~dst -> Core.Routing.mfr_v v pts ~src ~dst);
      ("nfp_v", fun ~src ~dst -> Core.Routing.nfp_v v pts ~src ~dst);
      ("gfg_v", fun ~src ~dst -> Core.Routing.gfg_v v pts ~src ~dst);
    ]
  in
  List.iter
    (fun (name, router) ->
      (match router ~src:7 ~dst:7 with
      | Some p ->
        Alcotest.(check (list int)) (name ^ ": src = dst") [ 7 ] p
      | None -> Alcotest.fail (name ^ ": src = dst must deliver trivially"));
      check (name ^ ": src out of range") true (router ~src:n ~dst:0 = None);
      check (name ^ ": negative src") true (router ~src:(-1) ~dst:0 = None);
      check (name ^ ": dst out of range") true
        (router ~src:0 ~dst:(n + 3) = None);
      check (name ^ ": negative dst") true (router ~src:0 ~dst:(-2) = None);
      (* src = dst wins over range checks only when in range *)
      check (name ^ ": src = dst out of range") true
        (router ~src:n ~dst:n = None))
    (graph_routers @ view_routers)

(* One scratch reused across many queries must answer exactly like a
   fresh scratch per query — the epoch-stamped visited marks and path
   buffer carry no state between routes. *)
let test_scratch_reuse_identical () =
  let pts = instance 56L 80 50. in
  let g = Wireless.Udg.build pts ~radius:50. in
  let v = Netgraph.View.of_graph g in
  let n = Array.length pts in
  let shared = Core.Routing.Scratch.create ~n () in
  let rng = Wireless.Rand.create 560L in
  for _ = 1 to 200 do
    let src = Wireless.Rand.int rng n and dst = Wireless.Rand.int rng n in
    List.iter
      (fun (name, route) ->
        let reused = route ~scratch:shared ~src ~dst in
        let fresh =
          route ~scratch:(Core.Routing.Scratch.create ~n ()) ~src ~dst
        in
        if reused <> fresh then
          Alcotest.failf "%s: shared scratch diverges on %d -> %d" name src
            dst)
      [
        ( "greedy_v",
          fun ~scratch ~src ~dst ->
            Core.Routing.greedy_v ~scratch v pts ~src ~dst );
        ( "compass_v",
          fun ~scratch ~src ~dst ->
            Core.Routing.compass_v ~scratch v pts ~src ~dst );
        ( "mfr_v",
          fun ~scratch ~src ~dst -> Core.Routing.mfr_v ~scratch v pts ~src ~dst
        );
        ( "nfp_v",
          fun ~scratch ~src ~dst -> Core.Routing.nfp_v ~scratch v pts ~src ~dst
        );
        ( "gfg_v",
          fun ~scratch ~src ~dst -> Core.Routing.gfg_v ~scratch v pts ~src ~dst
        );
      ]
  done

let suites =
  [
    ( "core.routing",
      [
        Alcotest.test_case "greedy straight line" `Quick
          test_greedy_straight_line;
        Alcotest.test_case "greedy local minimum + gfg recovery" `Quick
          test_greedy_local_minimum;
        Alcotest.test_case "gfg delivery guarantee" `Slow
          test_gfg_delivery_guarantee;
        Alcotest.test_case "gfg on disconnected" `Quick
          test_gfg_disconnected_returns_none;
        Alcotest.test_case "hierarchical delivery" `Slow
          test_hierarchical_delivery;
        Alcotest.test_case "hierarchical adjacent = direct" `Quick
          test_hierarchical_adjacent_direct;
        Alcotest.test_case "hierarchical uses UDG links" `Quick
          test_hierarchical_path_edges_exist;
        Alcotest.test_case "variants on a line" `Quick test_variants_on_line;
        Alcotest.test_case "variants choose differently" `Quick
          test_variants_choose_differently;
        Alcotest.test_case "variants fail without progress" `Quick
          test_variants_fail_without_progress;
        Alcotest.test_case "variants delivery rates" `Quick
          test_variants_delivery_rates;
        Alcotest.test_case "evaluate" `Quick test_evaluate;
        Alcotest.test_case "endpoint contract (src=dst, out of range)" `Quick
          test_endpoint_contract;
        Alcotest.test_case "scratch reuse is invisible" `Quick
          test_scratch_reuse_identical;
      ] );
  ]
