(* The live-introspection endpoint (Obs.Export): scrape a running
   process over HTTP, re-parse the Prometheus exposition, and
   cross-check it against the in-process snapshot.  Also pins down the
   jobs-bit-identity guarantee with the listener and recorder live. *)

module W = Serve.Workload
module E = Serve.Engine

let check = Alcotest.(check bool)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  pts

let snapshot_of pts radius =
  Core.Backbone.snapshot
    {
      Core.Backbone.Config.default with
      Core.Backbone.Config.radius;
      jobs = 1;
    }
    pts

let status_code (status, _) =
  (* "HTTP/1.0 200 OK" -> 200 *)
  int_of_string (String.sub status 9 3)

let with_server ?health ?routes f =
  let h = Obs.Export.start ?health ?routes ~port:0 () in
  Fun.protect ~finally:(fun () -> Obs.Export.stop h) (fun () -> f h)

(* ---------------- exposition format ---------------- *)

let test_metrics_text_parses () =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.add (Obs.counter "ex.queries") 7;
  Obs.set_gauge (Obs.gauge "ex.load") 0.5;
  Obs.observe (Obs.dist "ex.work_us") 12.5;
  let h = Obs.histogram "ex.lat.hist" in
  List.iter (Obs.Histogram.observe h) [ 0.7; 1.0; 900.; 1e12 ];
  Obs.set_enabled false;
  let snap = Obs.Snapshot.capture () in
  let text = Obs.Export.metrics_text snap in
  let samples = Obs.Export.parse_exposition text in
  let v key = List.assoc key samples in
  check "counter sample" true (v "ex_queries" = 7.);
  check "gauge sample" true (v "ex_load" = 0.5);
  check "dist count" true (v "ex_work_us_count" = 1.);
  check "dist sum" true (v "ex_work_us_sum" = 12.5);
  check "hist count" true (v "ex_lat_hist_count" = 4.);
  (* cumulative buckets: le="1" holds 0.7 and the inclusive 1.0 *)
  check "hist le=1 cumulative" true (v "ex_lat_hist_bucket{le=\"1\"}" = 2.);
  check "hist +Inf equals count" true
    (v "ex_lat_hist_bucket{le=\"+Inf\"}" = 4.);
  (* the round-trip gate the scrape smokes rely on *)
  check "self cross-check clean" true
    (Obs.Export.check_snapshot samples snap = []);
  (* and a perturbed snapshot is caught *)
  Obs.reset ();
  Obs.set_enabled true;
  Obs.add (Obs.counter "ex.queries") 8;
  Obs.set_enabled false;
  check "drifted snapshot flagged" true
    (Obs.Export.check_snapshot samples (Obs.Snapshot.capture ()) <> [])

let test_exposition_escaping () =
  Obs.reset ();
  Obs.set_enabled true;
  (* names and span paths exercising every character the 0.0.4 format
     must escape: backslash, double-quote, newline.  The computed
     counter name dodges the O001 literal convention on purpose — the
     escaping has to survive names the lint can't vet. *)
  let weird = "ex.weird" ^ "\"name\\with\nbreaks" in
  Obs.add (Obs.counter weird) 5;
  Obs.span ("we\"ird\\sp" ^ "\nan") (fun () -> ());
  Obs.set_enabled false;
  let snap = Obs.Snapshot.capture () in
  let text = Obs.Export.metrics_text snap in
  (* escaped, the exposition stays one line per sample and re-parses *)
  let samples = Obs.Export.parse_exposition text in
  check "weird names pass the scrape cross-check" true
    (Obs.Export.check_snapshot samples snap = []);
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  check "label value escapes the quote" true (contains text "we\\\"ird");
  check "label value escapes the backslash" true (contains text "\\\\sp");
  check "label value escapes the newline" true (contains text "\\nan");
  check "help text escapes the backslash" true (contains text "\\\\with");
  check "help text escapes the newline" true (contains text "\\nbreaks");
  check "no raw quote survives unescaped in a label" false
    (contains text "we\"ird")

(* ---------------- HTTP surface ---------------- *)

let test_http_routes () =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.add (Obs.counter "ex.http.hits") 3;
  Obs.set_enabled false;
  Obs.Recorder.clear ();
  Obs.Recorder.record (Obs.Recorder.Note "export test marker");
  let healthy = ref true in
  let health () = (!healthy, if !healthy then "ok" else "degraded") in
  with_server ~health
    ~routes:[ ("/epoch", fun () -> "41\n") ]
    (fun h ->
      let port = Obs.Export.port h in
      check "ephemeral port bound" true (port > 0);
      (* /metrics parses and matches the registry *)
      let r = Obs.Export.get ~port "/metrics" in
      Alcotest.(check int) "metrics 200" 200 (status_code r);
      let samples = Obs.Export.parse_exposition (snd r) in
      check "scraped counter" true (List.assoc "ex_http_hits" samples = 3.);
      check "scrape matches snapshot" true
        (Obs.Export.check_snapshot samples (Obs.Snapshot.capture ()) = []);
      (* /healthz flips with the probe *)
      let ok = Obs.Export.get ~port "/healthz" in
      Alcotest.(check int) "healthz 200" 200 (status_code ok);
      check "healthz body" true (snd ok = "ok\n");
      healthy := false;
      Alcotest.(check int) "healthz 503 when degraded" 503
        (status_code (Obs.Export.get ~port "/healthz"));
      healthy := true;
      (* extra routes are served verbatim *)
      let ep = Obs.Export.get ~port "/epoch" in
      Alcotest.(check int) "epoch 200" 200 (status_code ep);
      check "epoch body" true (snd ep = "41\n");
      (* the flight recorder dump is JSON and holds our marker *)
      let ring = Obs.Export.get ~port "/debug/ring" in
      Alcotest.(check int) "ring 200" 200 (status_code ring);
      let body = snd ring in
      check "ring is a json array" true
        (String.length body > 0 && body.[0] = '[');
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      check "ring holds the note" true (contains body "export test marker");
      (* unknown paths 404 without killing the listener *)
      Alcotest.(check int) "404 route" 404
        (status_code (Obs.Export.get ~port "/nope"));
      check "scrapes counted" true (Obs.Export.scrape_count h >= 1));
  Obs.Recorder.clear ()

(* ---------------- scraping a live serve run ---------------- *)

(* The acceptance gate in one test: run the serve engine with the
   listener up and the recorder armed, scrape mid-run (parse-validity)
   and after the join (exact cross-check), and require per-query
   results bit-identical to a listener-free jobs=1 run. *)
let test_scrape_live_engine () =
  let pts = instance 181L 300 40. in
  let snap = snapshot_of pts 40. in
  let w =
    W.generate ~seed:31L ~n:(Array.length pts) ~count:2000
      ~mix:{ W.default_mix with W.stretch = 0.01 }
      ()
  in
  let run ?on_batch jobs =
    let store = Serve.Store.create snap in
    E.run ~jobs ~batch:256 ~latency:false ?on_batch ~store w
  in
  (* reference: no listener, no recorder traffic *)
  Obs.reset ();
  let r_ref = run 1 in
  Obs.reset ();
  Obs.set_enabled true;
  Obs.Recorder.clear ();
  Obs.Recorder.arm_gc_alarm ();
  let r_live, mid_samples =
    Fun.protect
      ~finally:(fun () -> Obs.Recorder.disarm_gc_alarm ())
      (fun () ->
        with_server (fun h ->
          let port = Obs.Export.port h in
          let mid = ref [] in
          let on_batch b =
            if b = 4 then
              mid :=
                Obs.Export.parse_exposition
                  (snd (Obs.Export.get ~port "/metrics"))
          in
          let r = run ~on_batch 2 in
          (* post-join, the scrape agrees with the snapshot exactly *)
          let samples =
            Obs.Export.parse_exposition (snd (Obs.Export.get ~port "/metrics"))
          in
          let errs =
            Obs.Export.check_snapshot samples (Obs.Snapshot.capture ())
          in
          if errs <> [] then
            Alcotest.failf "post-join scrape mismatch: %s" (List.hd errs);
          (r, !mid)))
  in
  Obs.set_enabled false;
  check "mid-run scrape parsed" true (mid_samples <> []);
  check "mid-run scrape saw query counters" true
    (List.mem_assoc "serve_queries" mid_samples);
  check "hops identical with listener live" true (r_ref.E.hops = r_live.E.hops);
  check "epochs identical with listener live" true
    (r_ref.E.epoch = r_live.E.epoch);
  check "stretch identical with listener live (NaN-aware)" true
    (compare r_ref.E.stretch r_live.E.stretch = 0);
  (* the recorder saw the engine's batches *)
  let batches =
    List.filter
      (fun (e : Obs.Recorder.entry) ->
        match e.Obs.Recorder.e_event with
        | Obs.Recorder.Batch _ -> true
        | _ -> false)
      (Obs.Recorder.entries ())
  in
  check "recorder captured batches" true (List.length batches > 0);
  Obs.Recorder.clear ();
  Obs.reset ()

let suites =
  [
    ( "export",
      [
        Alcotest.test_case "exposition text round-trips" `Quick
          test_metrics_text_parses;
        Alcotest.test_case "exposition escaping (0.0.4)" `Quick
          test_exposition_escaping;
        Alcotest.test_case "http routes: metrics/healthz/ring/404" `Quick
          test_http_routes;
        Alcotest.test_case "scrape-while-serving: live engine cross-check"
          `Slow test_scrape_live_engine;
      ] );
  ]
