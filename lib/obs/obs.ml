let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* Run [f] with the registry disabled, restoring the previous state.
   Parallel construction stages wrap their worker fan-out in this:
   the registry is not domain-safe, and instrumented inner loops
   (predicates, triangulation, grid queries) would otherwise race.
   An enclosing [span] entered before the quiesce still records its
   timing — [span] checks the switch once at entry. *)
let quiesced f =
  let was = !on in
  on := false;
  Fun.protect ~finally:(fun () -> on := was) f

(* %.17g round-trips IEEE doubles exactly *)
let g17 = Printf.sprintf "%.17g"

type counter = { c_name : string; mutable c_value : int }

type dist_cell = {
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_sumsq : float;
  mutable d_min : float;
  mutable d_max : float;
}

type dist = dist_cell

type span_cell = { mutable s_calls : int; mutable s_seconds : float }

type gauge = { mutable g_value : float; mutable g_set : bool }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let dists : (string, dist_cell) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_cell) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

(* span paths in first-entered order, reversed *)
let span_order : string list ref = ref []

(* the '/'-joined path of currently open spans *)
let span_path = ref ""

module Trace = struct
  let on = ref false
  let enabled () = !on

  type payload =
    | Span_begin of string
    | Span_end of string
    | Count of { name : string; delta : int }
    | Send of { round : int; time : float; kind : string; src : int; dst : int }
    | Deliver of {
        round : int;
        time : float;
        kind : string;
        src : int;
        dst : int;
      }
    | Job of { group : int; enter : bool }
    | Alert of {
        round : int;
        probe : string;
        value : float;
        limit : float;
        node : int;
      }

  type event = {
    ts : float; (* microseconds since Trace.start *)
    dom : int;
    group : int;
    task : int;
    phase : string;
    payload : payload;
  }

  let dummy =
    { ts = 0.; dom = 0; group = -1; task = -1; phase = "";
      payload = Span_begin "" }

  (* One ring buffer per domain, reached through domain-local storage so
     recording never takes a lock; the global list (mutex-protected,
     touched only at buffer creation and export) lets the exporting
     domain find everyone's events. *)
  type buf = {
    b_dom : int;
    mutable b_events : event array;
    mutable b_start : int;
    mutable b_len : int;
    mutable b_dropped : int;
    mutable b_group : int;
    mutable b_task : int;
  }

  let registry_mutex = Mutex.create ()
  let all_bufs : buf list ref = ref []
  let capacity = ref (1 lsl 16)
  let t0 = ref 0.
  let group_counter = Atomic.make 0

  let fresh_buf () =
    let b =
      { b_dom = (Domain.self () :> int);
        b_events = Array.make !capacity dummy;
        b_start = 0; b_len = 0; b_dropped = 0; b_group = -1; b_task = -1 }
    in
    Mutex.lock registry_mutex;
    all_bufs := b :: !all_bufs;
    Mutex.unlock registry_mutex;
    b

  let key = Domain.DLS.new_key fresh_buf
  let my_buf () = Domain.DLS.get key

  let start ?capacity:(cap = 1 lsl 16) () =
    Mutex.lock registry_mutex;
    capacity := cap;
    List.iter
      (fun b ->
        b.b_events <- Array.make cap dummy;
        b.b_start <- 0;
        b.b_len <- 0;
        b.b_dropped <- 0;
        b.b_group <- -1;
        b.b_task <- -1)
      !all_bufs;
    Mutex.unlock registry_mutex;
    Atomic.set group_counter 0;
    t0 := Unix.gettimeofday ();
    on := true

  let stop () = on := false

  let dropped () =
    Mutex.lock registry_mutex;
    let d = List.fold_left (fun a b -> a + b.b_dropped) 0 !all_bufs in
    Mutex.unlock registry_mutex;
    d

  let now_us () = (Unix.gettimeofday () -. !t0) *. 1e6

  let push b ev =
    let cap = Array.length b.b_events in
    if b.b_len = cap then begin
      (* full: overwrite the oldest *)
      b.b_events.(b.b_start) <- ev;
      b.b_start <- (b.b_start + 1) mod cap;
      b.b_dropped <- b.b_dropped + 1
    end
    else begin
      b.b_events.((b.b_start + b.b_len) mod cap) <- ev;
      b.b_len <- b.b_len + 1
    end

  (* The span-path phase label is only safe to read from the domain
     that owns the span stack, i.e. outside pool tasks. *)
  let current_phase b = if b.b_task >= 0 then "" else !span_path

  let record b payload =
    push b
      { ts = now_us (); dom = b.b_dom; group = b.b_group; task = b.b_task;
        phase = current_phase b; payload }

  let span_begin name = if !on then record (my_buf ()) (Span_begin name)
  let span_end name = if !on then record (my_buf ()) (Span_end name)

  let count name delta =
    if !on then begin
      let b = my_buf () in
      let coalesced =
        b.b_len > 0
        &&
        let cap = Array.length b.b_events in
        let i = (b.b_start + b.b_len - 1) mod cap in
        let last = b.b_events.(i) in
        match last.payload with
        | Count c
          when c.name = name && last.task = b.b_task
               && last.phase = current_phase b ->
          b.b_events.(i) <-
            { last with payload = Count { name; delta = c.delta + delta } };
          true
        | _ -> false
      in
      if not coalesced then record b (Count { name; delta })
    end

  let send ~round ~time ~kind ~src ~dst =
    if !on then record (my_buf ()) (Send { round; time; kind; src; dst })

  let deliver ~round ~time ~kind ~src ~dst =
    if !on then record (my_buf ()) (Deliver { round; time; kind; src; dst })

  let alert ~round ~probe ~value ~limit ~node =
    if !on then record (my_buf ()) (Alert { round; probe; value; limit; node })

  let new_group () = Atomic.fetch_and_add group_counter 1

  let job_enter g =
    if !on then record (my_buf ()) (Job { group = g; enter = true })

  let job_leave g =
    if !on then record (my_buf ()) (Job { group = g; enter = false })

  let set_context ~group ~task =
    let b = my_buf () in
    b.b_group <- group;
    b.b_task <- task

  let buffer_events b =
    let cap = Array.length b.b_events in
    List.init b.b_len (fun i -> b.b_events.((b.b_start + i) mod cap))

  (* Deterministic merge: the exporting domain's stream keeps recorded
     order; every event recorded inside a pool job (group >= 0, from
     any domain including the caller's) is pulled out, stable-sorted by
     task index, and spliced back at that job's end marker.  Because a
     task runs entirely on one domain and each domain claims strictly
     increasing indices, within-task order is preserved and the merged
     (task, phase, payload) sequence is independent of worker count and
     scheduling. *)
  let events () =
    let me = (Domain.self () :> int) in
    ignore (my_buf () : buf);
    Mutex.lock registry_mutex;
    let bufs = !all_bufs in
    Mutex.unlock registry_mutex;
    let mine, others = List.partition (fun b -> b.b_dom = me) bufs in
    let grouped : (int, event list ref) Hashtbl.t = Hashtbl.create 16 in
    let add_grouped ev =
      match Hashtbl.find_opt grouped ev.group with
      | Some r -> r := ev :: !r
      | None -> Hashtbl.add grouped ev.group (ref [ ev ])
    in
    List.iter
      (fun b ->
        List.iter
          (fun ev -> if ev.group >= 0 then add_grouped ev)
          (buffer_events b))
      others;
    let main =
      List.concat_map buffer_events mine
      |> List.filter (fun ev ->
             if ev.group >= 0 then begin
               add_grouped ev;
               false
             end
             else true)
    in
    let by_task evs =
      List.stable_sort (fun a b -> compare a.task b.task) evs
    in
    let splice g =
      match Hashtbl.find_opt grouped g with
      | None -> []
      | Some r ->
        Hashtbl.remove grouped g;
        by_task (List.rev !r)
    in
    let rewrite ev =
      match ev.payload with
      | Job { enter = true; _ } -> { ev with payload = Span_begin "pool.job" }
      | Job { enter = false; _ } -> { ev with payload = Span_end "pool.job" }
      | _ -> ev
    in
    let merged =
      List.concat_map
        (fun ev ->
          match ev.payload with
          | Job { group = g; enter = false } -> splice g @ [ rewrite ev ]
          | _ -> [ rewrite ev ])
        main
    in
    (* groups whose end marker was lost to the ring: append in group order *)
    let leftovers =
      Hashtbl.fold (fun g r acc -> (g, by_task (List.rev !r)) :: acc) grouped []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.concat_map snd
    in
    merged @ leftovers

  (* Chrome trace-event format (Perfetto-loadable): one event object per
     line so {!read_chrome} can parse the exact subset back with Scanf,
     like Snapshot.of_json_lines. *)
  let write_chrome fmt evs =
    let open Format in
    fprintf fmt "{\"traceEvents\":[";
    let totals : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let first = ref true in
    let sep () =
      if !first then begin
        first := false;
        fprintf fmt "@\n"
      end
      else fprintf fmt ",@\n"
    in
    let common ev =
      Printf.sprintf "\"ts\":%s,\"pid\":0,\"tid\":%d" (g17 ev.ts) ev.dom
    in
    let instant ev dir ~round ~time ~kind ~src ~dst =
      fprintf fmt
        "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"dir\":%S,\"round\":%d,\"time\":%s,\"src\":%d,\"dst\":%d,\"group\":%d,\"task\":%d}}"
        kind ev.phase (common ev) dir round (g17 time) src dst ev.group ev.task
    in
    let duration ev ph name =
      fprintf fmt
        "{\"name\":%S,\"cat\":%S,\"ph\":\"%s\",%s,\"args\":{\"group\":%d,\"task\":%d}}"
        name ev.phase ph (common ev) ev.group ev.task
    in
    List.iter
      (fun ev ->
        sep ();
        match ev.payload with
        | Span_begin name -> duration ev "B" name
        | Span_end name -> duration ev "E" name
        | Job { enter = true; _ } -> duration ev "B" "pool.job"
        | Job { enter = false; _ } -> duration ev "E" "pool.job"
        | Count { name; delta } ->
          let v =
            delta + Option.value ~default:0 (Hashtbl.find_opt totals name)
          in
          Hashtbl.replace totals name v;
          fprintf fmt
            "{\"name\":%S,\"cat\":%S,\"ph\":\"C\",%s,\"args\":{\"value\":%d,\"delta\":%d,\"group\":%d,\"task\":%d}}"
            name ev.phase (common ev) v delta ev.group ev.task
        | Send { round; time; kind; src; dst } ->
          instant ev "send" ~round ~time ~kind ~src ~dst
        | Deliver { round; time; kind; src; dst } ->
          instant ev "recv" ~round ~time ~kind ~src ~dst
        | Alert { round; probe; value; limit; node } ->
          fprintf fmt
            "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"dir\":\"alert\",\"round\":%d,\"value\":%s,\"limit\":%s,\"node\":%d,\"group\":%d,\"task\":%d}}"
            probe ev.phase (common ev) round (g17 value) (g17 limit) node
            ev.group ev.task)
      evs;
    fprintf fmt "@\n]}@."

  let read_chrome s =
    let strip_comma l =
      let n = String.length l in
      if n > 0 && l.[n - 1] = ',' then String.sub l 0 (n - 1) else l
    in
    let try_duration line ph mk =
      Scanf.sscanf line
        "{\"name\":%S,\"cat\":%S,\"ph\":%S,\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"group\":%d,\"task\":%d}}"
        (fun name phase ph' ts dom group task ->
          if ph' <> ph then failwith "ph";
          { ts; dom; group; task; phase; payload = mk name })
    in
    let parse line =
      let attempts =
        [ (fun () -> try_duration line "B" (fun n -> Span_begin n));
          (fun () -> try_duration line "E" (fun n -> Span_end n));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"C\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"value\":%d,\"delta\":%d,\"group\":%d,\"task\":%d}}"
              (fun name phase ts dom _value delta group task ->
                { ts; dom; group; task; phase;
                  payload = Count { name; delta } }));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"dir\":%S,\"round\":%d,\"time\":%f,\"src\":%d,\"dst\":%d,\"group\":%d,\"task\":%d}}"
              (fun kind phase ts dom dir round time src dst group task ->
                let payload =
                  match dir with
                  | "send" -> Send { round; time; kind; src; dst }
                  | "recv" -> Deliver { round; time; kind; src; dst }
                  | _ -> failwith "dir"
                in
                { ts; dom; group; task; phase; payload }));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"dir\":\"alert\",\"round\":%d,\"value\":%f,\"limit\":%f,\"node\":%d,\"group\":%d,\"task\":%d}}"
              (fun probe phase ts dom round value limit node group task ->
                { ts; dom; group; task; phase;
                  payload = Alert { round; probe; value; limit; node } }))
        ]
      in
      let rec go = function
        | [] -> failwith ("Obs.Trace.read_chrome: bad line: " ^ line)
        | f :: rest -> (
          try f () with
          | Scanf.Scan_failure _ | End_of_file | Failure _ -> go rest)
      in
      go attempts
    in
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = strip_comma (String.trim l) in
           if l = "" || l = "{\"traceEvents\":[" || l = "]}" then None
           else Some (parse l))

  type profile_row = {
    p_path : string;
    p_calls : int;
    p_total : float;
    p_self : float;
  }

  (* Walk span begin/end pairs per domain; self time is total minus the
     time attributed to spans opened (on the same domain) inside.
     Unmatched ends (their begin was overwritten in the ring) are
     dropped. *)
  let profile evs =
    let rows : (string, profile_row) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let stacks : (int, (string * float * float ref) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let stack dom =
      match Hashtbl.find_opt stacks dom with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
    in
    List.iter
      (fun ev ->
        match ev.payload with
        | Span_begin name ->
          let s = stack ev.dom in
          s := (name, ev.ts, ref 0.) :: !s
        | Span_end name -> (
          let s = stack ev.dom in
          match !s with
          | (n, t_begin, children) :: rest when n = name ->
            s := rest;
            let total_us = Float.max 0. (ev.ts -. t_begin) in
            let self_us = Float.max 0. (total_us -. !children) in
            (match rest with
            | (_, _, pc) :: _ -> pc := !pc +. total_us
            | [] -> ());
            let row =
              match Hashtbl.find_opt rows name with
              | Some r -> r
              | None ->
                order := name :: !order;
                { p_path = name; p_calls = 0; p_total = 0.; p_self = 0. }
            in
            Hashtbl.replace rows name
              { row with
                p_calls = row.p_calls + 1;
                p_total = row.p_total +. (total_us /. 1e6);
                p_self = row.p_self +. (self_us /. 1e6) }
          | _ -> ())
        | _ -> ())
      evs;
    List.rev_map (fun n -> Hashtbl.find rows n) !order

  let write_folded fmt evs =
    let semicolons p = String.map (fun c -> if c = '/' then ';' else c) p in
    profile evs
    |> List.sort (fun a b -> compare a.p_path b.p_path)
    |> List.iter (fun r ->
           Format.fprintf fmt "%s %.0f@." (semicolons r.p_path)
             (r.p_self *. 1e6))

  type audit_row = {
    a_phase : string;
    a_kind : string;
    a_sends : int;
    a_deliveries : int;
  }

  let message_audit evs =
    let tbl : (string * string, int ref * int ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let phase_order = ref [] in
    let cell phase kind =
      match Hashtbl.find_opt tbl (phase, kind) with
      | Some c -> c
      | None ->
        if not (List.mem phase !phase_order) then
          phase_order := phase :: !phase_order;
        let c = (ref 0, ref 0) in
        Hashtbl.add tbl (phase, kind) c;
        c
    in
    List.iter
      (fun ev ->
        match ev.payload with
        | Send { kind; _ } -> Stdlib.incr (fst (cell ev.phase kind))
        | Deliver { kind; _ } -> Stdlib.incr (snd (cell ev.phase kind))
        | _ -> ())
      evs;
    List.rev !phase_order
    |> List.concat_map (fun phase ->
           Hashtbl.fold
             (fun (p, k) (s, d) acc ->
               if p = phase then
                 { a_phase = p; a_kind = k; a_sends = !s; a_deliveries = !d }
                 :: acc
               else acc)
             tbl []
           |> List.sort (fun a b -> compare a.a_kind b.a_kind))

  let fit_loglog_slope pts =
    let pts = List.filter (fun (x, y) -> x > 0. && y > 0.) pts in
    match pts with
    | [] | [ _ ] -> nan
    | _ ->
      let n = float_of_int (List.length pts) in
      let sx, sy, sxx, sxy =
        List.fold_left
          (fun (sx, sy, sxx, sxy) (x, y) ->
            let lx = log x and ly = log y in
            (sx +. lx, sy +. ly, sxx +. (lx *. lx), sxy +. (lx *. ly)))
          (0., 0., 0., 0.) pts
      in
      let den = (n *. sxx) -. (sx *. sx) in
      if Float.abs den < 1e-12 then nan
      else ((n *. sxy) -. (sx *. sy)) /. den
end

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let incr c =
  if !on then begin
    c.c_value <- c.c_value + 1;
    if !Trace.on then Trace.count c.c_name 1
  end

let add c n =
  if !on then begin
    c.c_value <- c.c_value + n;
    if !Trace.on then Trace.count c.c_name n
  end

let value c = c.c_value

let dist name =
  match Hashtbl.find_opt dists name with
  | Some d -> d
  | None ->
    let d =
      { d_count = 0; d_sum = 0.; d_sumsq = 0.; d_min = infinity;
        d_max = neg_infinity }
    in
    Hashtbl.add dists name d;
    d

let observe d v =
  if !on then begin
    d.d_count <- d.d_count + 1;
    d.d_sum <- d.d_sum +. v;
    d.d_sumsq <- d.d_sumsq +. (v *. v);
    if v < d.d_min then d.d_min <- v;
    if v > d.d_max then d.d_max <- v
  end

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_value = nan; g_set = false } in
    Hashtbl.add gauges name g;
    g

let set_gauge g v =
  if !on then begin
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_value g = g.g_value

(* GC sampling is its own switch, like Trace: a single load-and-branch
   at each span boundary when armed, nothing at all when not. *)
let gc_gauges = ref false
let gc_sampling () = !gc_gauges
let set_gc_sampling b = gc_gauges := b

let g_gc_minor = gauge "gc.minor_words"
let g_gc_major = gauge "gc.major_words"
let g_gc_heap = gauge "gc.heap_words"
let g_gc_minor_n = gauge "gc.minor_collections"
let g_gc_major_n = gauge "gc.major_collections"
let g_gc_compact = gauge "gc.compactions"

let sample_gc () =
  let s = Gc.quick_stat () in
  set_gauge g_gc_minor s.Gc.minor_words;
  set_gauge g_gc_major s.Gc.major_words;
  set_gauge g_gc_heap (float_of_int s.Gc.heap_words);
  set_gauge g_gc_minor_n (float_of_int s.Gc.minor_collections);
  set_gauge g_gc_major_n (float_of_int s.Gc.major_collections);
  set_gauge g_gc_compact (float_of_int s.Gc.compactions)

(* The one wall clock exported to the rest of the library: D003 keeps
   raw [Unix.gettimeofday]/[Sys.time] out of every other lib, so code
   that must stamp real time (the serve engine's latency samples)
   reads it through here.  Stateless, hence safe from any domain. *)
let clock_us () = Unix.gettimeofday () *. 1e6

let span name f =
  if not !on then f ()
  else begin
    let parent = !span_path in
    let path = if parent = "" then name else parent ^ "/" ^ name in
    let cell =
      match Hashtbl.find_opt spans path with
      | Some c -> c
      | None ->
        let c = { s_calls = 0; s_seconds = 0. } in
        Hashtbl.add spans path c;
        span_order := path :: !span_order;
        c
    in
    if !Trace.on then Trace.span_begin path;
    if !gc_gauges then sample_gc ();
    span_path := path;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        cell.s_calls <- cell.s_calls + 1;
        cell.s_seconds <- cell.s_seconds +. (Unix.gettimeofday () -. t0);
        span_path := parent;
        if !gc_gauges then sample_gc ();
        if !Trace.on then Trace.span_end path)
      f
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ d ->
      d.d_count <- 0;
      d.d_sum <- 0.;
      d.d_sumsq <- 0.;
      d.d_min <- infinity;
      d.d_max <- neg_infinity)
    dists;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- nan;
      g.g_set <- false)
    gauges;
  Hashtbl.reset spans;
  span_order := [];
  span_path := ""

(* The P-squared streaming quantile estimator (Jain & Chlamtac, CACM
   1985), extended variant: for target quantiles q_1 < ... < q_m it
   keeps 2m+3 markers at probabilities 0, q_1/2, q_1, (q_1+q_2)/2,
   ..., q_m, (1+q_m)/2, 1.  Each observation shifts markers by at most
   one position, adjusting heights with a piecewise-parabolic fit
   (falling back to linear when the parabola would break height
   ordering), so heights stay sorted and quantile estimates are
   monotone in q.  Until the stream is as long as the marker count the
   raw samples are kept and answers are exact. *)
module Sketch = struct
  type t = {
    targets : float list;
    probs : float array; (* marker probabilities, increasing, 0 and 1 incl. *)
    heights : float array; (* marker heights q_i *)
    pos : float array; (* actual marker positions n_i (1-based) *)
    mutable count : int;
    buffer : float array; (* first observations, exact mode *)
  }

  let create ?(quantiles = [ 0.5; 0.9; 0.99 ]) () =
    if quantiles = [] then invalid_arg "Obs.Sketch.create: no quantiles";
    List.iter
      (fun q ->
        if not (q > 0. && q < 1.) then
          invalid_arg "Obs.Sketch.create: quantile outside (0, 1)")
      quantiles;
    let qs = List.sort_uniq compare quantiles in
    let m = List.length qs in
    let probs = Array.make ((2 * m) + 3) 0. in
    List.iteri (fun i q -> probs.((2 * i) + 2) <- q) qs;
    probs.((2 * m) + 2) <- 1.;
    (* midpoints between consecutive principal markers *)
    for i = 0 to m do
      probs.((2 * i) + 1) <- (probs.(2 * i) +. probs.((2 * i) + 2)) /. 2.
    done;
    let k = Array.length probs in
    {
      targets = qs;
      probs;
      heights = Array.make k 0.;
      pos = Array.make k 0.;
      count = 0;
      buffer = Array.make k 0.;
    }

  let targets t = t.targets
  let count t = t.count

  let reset t =
    t.count <- 0

  let markers t = Array.length t.probs

  (* leave exact mode: sort the buffer into the initial marker heights *)
  let init_markers t =
    let k = markers t in
    Array.sort compare t.buffer;
    Array.blit t.buffer 0 t.heights 0 k;
    for i = 0 to k - 1 do
      t.pos.(i) <- float_of_int (i + 1)
    done

  let parabolic t i s =
    let q = t.heights and n = t.pos in
    q.(i)
    +. s
       /. (n.(i + 1) -. n.(i - 1))
       *. (((n.(i) -. n.(i - 1) +. s) *. (q.(i + 1) -. q.(i))
            /. (n.(i + 1) -. n.(i)))
          +. ((n.(i + 1) -. n.(i) -. s) *. (q.(i) -. q.(i - 1))
             /. (n.(i) -. n.(i - 1))))

  let linear t i s =
    let q = t.heights and n = t.pos in
    let j = i + int_of_float s in
    q.(i) +. (s *. (q.(j) -. q.(i)) /. (n.(j) -. n.(i)))

  let observe t x =
    let k = markers t in
    if t.count < k then begin
      t.buffer.(t.count) <- x;
      t.count <- t.count + 1;
      if t.count = k then init_markers t
    end
    else begin
      t.count <- t.count + 1;
      let q = t.heights and n = t.pos in
      (* locate the cell and stretch the extremes *)
      let cell =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(k - 1) then begin
          q.(k - 1) <- x;
          k - 2
        end
        else begin
          let j = ref 0 in
          while not (x >= q.(!j) && x < q.(!j + 1)) do
            Stdlib.incr j
          done;
          !j
        end
      in
      for i = cell + 1 to k - 1 do
        n.(i) <- n.(i) +. 1.
      done;
      (* adjust interior markers toward their desired positions *)
      for i = 1 to k - 2 do
        let desired = 1. +. (float_of_int (t.count - 1) *. t.probs.(i)) in
        let d = desired -. n.(i) in
        if
          (d >= 1. && n.(i + 1) -. n.(i) > 1.)
          || (d <= -1. && n.(i - 1) -. n.(i) < -1.)
        then begin
          let s = if d >= 0. then 1. else -1. in
          let h = parabolic t i s in
          if q.(i - 1) < h && h < q.(i + 1) then q.(i) <- h
          else q.(i) <- linear t i s;
          n.(i) <- n.(i) +. s
        end
      done
    end

  (* piecewise-linear interpolation over (probability, height) points;
     in exact mode the sorted sample at rank q*(n-1) with linear
     interpolation between neighbours *)
  let quantile t q =
    if t.count = 0 then nan
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let interp xs ys m =
        (* xs increasing (weakly); find the bracketing pair *)
        if q <= xs.(0) then ys.(0)
        else if q >= xs.(m - 1) then ys.(m - 1)
        else begin
          let i = ref 0 in
          while xs.(!i + 1) < q do
            Stdlib.incr i
          done;
          let x0 = xs.(!i) and x1 = xs.(!i + 1) in
          if x1 -. x0 <= 0. then ys.(!i + 1)
          else
            let w = (q -. x0) /. (x1 -. x0) in
            ys.(!i) +. (w *. (ys.(!i + 1) -. ys.(!i)))
        end
      in
      if t.count < markers t then begin
        let m = t.count in
        let sorted = Array.sub t.buffer 0 m in
        Array.sort compare sorted;
        if m = 1 then sorted.(0)
        else begin
          let xs =
            Array.init m (fun i -> float_of_int i /. float_of_int (m - 1))
          in
          interp xs sorted m
        end
      end
      else begin
        let k = markers t in
        let denom = float_of_int (t.count - 1) in
        let xs =
          Array.init k (fun i ->
              if denom <= 0. then t.probs.(i) else (t.pos.(i) -. 1.) /. denom)
        in
        interp xs t.heights k
      end
    end

  let min_value t =
    if t.count = 0 then nan
    else if t.count < markers t then
      Array.fold_left Float.min infinity (Array.sub t.buffer 0 t.count)
    else t.heights.(0)

  let max_value t =
    if t.count = 0 then nan
    else if t.count < markers t then
      Array.fold_left Float.max neg_infinity (Array.sub t.buffer 0 t.count)
    else t.heights.(markers t - 1)

  (* replay a sketch's contents into [into]: raw samples while in exact
     mode, otherwise each marker height weighted by the count mass
     between it and its predecessor, so counts add exactly *)
  let replay_into into t =
    if t.count < markers t then
      for i = 0 to t.count - 1 do
        observe into t.buffer.(i)
      done
    else begin
      let k = markers t in
      let prev = ref 0. in
      for i = 0 to k - 1 do
        let w =
          if i = k - 1 then t.count - int_of_float !prev
          else
            let here = Float.round t.pos.(i) in
            let w = int_of_float (here -. !prev) in
            prev := here;
            w
        in
        for _ = 1 to max 0 w do
          observe into t.heights.(i)
        done
      done
    end

  let merge a b =
    let t = create ~quantiles:a.targets () in
    replay_into t a;
    replay_into t b;
    t
end

(* Round-clock telemetry: named probes recorded per round, with one
   Sketch per probe summarizing the full run.  Pull probes registered
   with [register] are sampled by [sample]; anything can also push
   values directly with [record]. *)
module Telemetry = struct
  type cell = {
    mutable t_fn : (unit -> float) option;
    mutable t_values : (int * float) list; (* reversed *)
    t_sketch : Sketch.t;
  }

  type t = {
    tbl : (string, cell) Hashtbl.t;
    mutable order : string list; (* registration order, reversed *)
    mutable t_rounds : int list; (* reversed *)
  }

  let create () = { tbl = Hashtbl.create 16; order = []; t_rounds = [] }

  let cell t name =
    match Hashtbl.find_opt t.tbl name with
    | Some c -> c
    | None ->
      let c =
        { t_fn = None; t_values = [];
          t_sketch = Sketch.create () }
      in
      Hashtbl.add t.tbl name c;
      t.order <- name :: t.order;
      c

  let register t name fn = (cell t name).t_fn <- Some fn

  let note_round t round =
    match t.t_rounds with
    | r :: _ when r = round -> ()
    | _ -> t.t_rounds <- round :: t.t_rounds

  let record t ~round name v =
    note_round t round;
    let c = cell t name in
    c.t_values <- (round, v) :: c.t_values;
    Sketch.observe c.t_sketch v

  let sample t ~round =
    note_round t round;
    List.iter
      (fun name ->
        let c = Hashtbl.find t.tbl name in
        match c.t_fn with
        | Some fn -> record t ~round name (fn ())
        | None -> ())
      (List.rev t.order)

  let rounds t = List.rev t.t_rounds
  let names t = List.sort compare (List.rev t.order)

  let series t name =
    match Hashtbl.find_opt t.tbl name with
    | None -> []
    | Some c -> List.rev c.t_values

  let last t name =
    match Hashtbl.find_opt t.tbl name with
    | None | Some { t_values = []; _ } -> None
    | Some { t_values = (_, v) :: _; _ } -> Some v

  let sketch t name =
    Option.map (fun c -> c.t_sketch) (Hashtbl.find_opt t.tbl name)

  let reset t =
    Hashtbl.reset t.tbl;
    t.order <- [];
    t.t_rounds <- []

  (* rows in round order, names sorted within a round *)
  let rows t =
    let ns = names t in
    List.map
      (fun round ->
        ( round,
          List.filter_map
            (fun name ->
              List.assoc_opt round (series t name)
              |> Option.map (fun v -> (name, v)))
            ns ))
      (rounds t)

  let write_jsonl fmt t =
    List.iter
      (fun (round, cells) ->
        List.iter
          (fun (name, v) ->
            Format.fprintf fmt
              "{\"kind\":\"telemetry\",\"round\":%d,\"name\":%S,\"value\":%s}@."
              round name (g17 v))
          cells)
      (rows t)

  let read_jsonl s =
    let parse line =
      try
        Scanf.sscanf line
          "{\"kind\":\"telemetry\",\"round\":%d,\"name\":%S,\"value\":%f}"
          (fun round name v -> (round, name, v))
      with Scanf.Scan_failure _ | End_of_file | Failure _ ->
        failwith ("Obs.Telemetry.read_jsonl: bad line: " ^ line)
    in
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" then None else Some (parse l))
    |> List.fold_left
         (fun acc (round, name, v) ->
           match acc with
           | (r, cells) :: rest when r = round ->
             (r, (name, v) :: cells) :: rest
           | _ -> (round, [ (name, v) ]) :: acc)
         []
    |> List.rev_map (fun (r, cells) -> (r, List.rev cells))

  let write_csv fmt t =
    let ns = names t in
    Format.fprintf fmt "round%s@."
      (String.concat "" (List.map (fun n -> "," ^ n) ns));
    List.iter
      (fun (round, cells) ->
        Format.fprintf fmt "%d%s@." round
          (String.concat ""
             (List.map
                (fun n ->
                  match List.assoc_opt n cells with
                  | Some v -> "," ^ g17 v
                  | None -> ",")
                ns)))
      (rows t)

  let spark_bars =
    [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
       "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

  let sparkline vs =
    match List.filter (fun v -> not (Float.is_nan v)) vs with
    | [] -> ""
    | vs ->
      let lo = List.fold_left Float.min infinity vs in
      let hi = List.fold_left Float.max neg_infinity vs in
      let pick v =
        if hi -. lo <= 0. || Float.is_nan v then spark_bars.(3)
        else
          let i =
            int_of_float (Float.round ((v -. lo) /. (hi -. lo) *. 7.))
          in
          spark_bars.(max 0 (min 7 i))
      in
      String.concat "" (List.map pick vs)
end

module Snapshot = struct
  type dist_stats = {
    count : int;
    sum : float;
    sumsq : float;
    min : float;
    max : float;
  }

  type span_stats = { path : string; calls : int; seconds : float }

  type t = {
    counters : (string * int) list;
    dists : (string * dist_stats) list;
    spans : span_stats list;
    gauges : (string * float) list;
  }

  let dist_mean d = if d.count = 0 then 0. else d.sum /. float_of_int d.count

  let dist_stddev d =
    if d.count = 0 then 0.
    else
      let n = float_of_int d.count in
      let m = d.sum /. n in
      sqrt (Float.max 0. ((d.sumsq /. n) -. (m *. m)))

  let capture () =
    {
      counters =
        List.sort compare
          (Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) counters []);
      dists =
        List.sort compare
          (Hashtbl.fold
             (fun k d acc ->
               if d.d_count = 0 then acc
               else
                 ( k,
                   { count = d.d_count; sum = d.d_sum; sumsq = d.d_sumsq;
                     min = d.d_min; max = d.d_max } )
                 :: acc)
             dists []);
      spans =
        (* sorted by path, not execution order, so every sink and
           check_against diff is stable across runs and --jobs; '/'
           sorts before any path character we use, so parents still
           precede their children *)
        List.rev_map
          (fun path ->
            let c = Hashtbl.find spans path in
            { path; calls = c.s_calls; seconds = c.s_seconds })
          !span_order
        |> List.sort (fun a b -> compare a.path b.path);
      gauges =
        List.sort compare
          (Hashtbl.fold
             (fun k g acc -> if g.g_set then (k, g.g_value) :: acc else acc)
             gauges []);
    }

  let lines s =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")

  let of_json_lines s =
    let parse acc line =
      try
        Scanf.sscanf line "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}"
          (fun name v -> { acc with counters = (name, v) :: acc.counters })
      with Scanf.Scan_failure _ | End_of_file -> (
        try
          Scanf.sscanf line
            "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%g,\"sumsq\":%g,\"min\":%g,\"max\":%g}"
            (fun name count sum sumsq min max ->
              {
                acc with
                dists = (name, { count; sum; sumsq; min; max }) :: acc.dists;
              })
        with Scanf.Scan_failure _ | End_of_file -> (
          try
            Scanf.sscanf line
              "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%g}"
              (fun path calls seconds ->
                { acc with spans = { path; calls; seconds } :: acc.spans })
          with Scanf.Scan_failure _ | End_of_file -> (
            try
              Scanf.sscanf line "{\"kind\":\"gauge\",\"name\":%S,\"value\":%g}"
                (fun name v -> { acc with gauges = (name, v) :: acc.gauges })
            with Scanf.Scan_failure _ | End_of_file ->
              failwith ("Obs.Snapshot.of_json_lines: bad line: " ^ line))))
    in
    let acc =
      List.fold_left parse
        { counters = []; dists = []; spans = []; gauges = [] }
        (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
      gauges = List.rev acc.gauges;
    }

  let of_csv s =
    let parse acc line =
      match String.split_on_char ',' line with
      | [ "kind"; "name"; _; _; _; _; _ ] -> acc
      | [ "counter"; name; v; _; _; _; _ ] ->
        { acc with counters = (name, int_of_string v) :: acc.counters }
      | [ "dist"; name; count; sum; sumsq; min; max ] ->
        {
          acc with
          dists =
            ( name,
              { count = int_of_string count; sum = float_of_string sum;
                sumsq = float_of_string sumsq; min = float_of_string min;
                max = float_of_string max } )
            :: acc.dists;
        }
      | [ "span"; path; calls; seconds; _; _; _ ] ->
        {
          acc with
          spans =
            { path; calls = int_of_string calls;
              seconds = float_of_string seconds }
            :: acc.spans;
        }
      | [ "gauge"; name; v; _; _; _; _ ] ->
        { acc with gauges = (name, float_of_string v) :: acc.gauges }
      | _ -> failwith ("Obs.Snapshot.of_csv: bad line: " ^ line)
    in
    let acc =
      List.fold_left parse
        { counters = []; dists = []; spans = []; gauges = [] }
        (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
      gauges = List.rev acc.gauges;
    }

  type mismatch = {
    m_kind : string;
    m_name : string;
    m_expected : float;
    m_actual : float; (* nan when missing from current *)
  }

  (* Regression gate: counters and call/observation counts are
     deterministic for a fixed configuration, so they must match
     exactly; only span seconds are wall-clock noise and get the
     threshold.  Metrics present in [current] but absent from
     [reference] are ignored so new instrumentation does not invalidate
     committed baselines, and gauges are skipped entirely
     (instantaneous samples are not reproducible). *)
  let compare_against ~threshold ~(reference : t) (current : t) =
    let out = ref [] in
    let say m_kind m_name m_expected m_actual =
      out := { m_kind; m_name; m_expected; m_actual } :: !out
    in
    List.iter
      (fun (name, v) ->
        match List.assoc_opt name current.counters with
        | None -> if v <> 0 then say "counter" name (float_of_int v) nan
        | Some v' ->
          if v' <> v then
            say "counter" name (float_of_int v) (float_of_int v'))
      reference.counters;
    List.iter
      (fun (name, (d : dist_stats)) ->
        match List.assoc_opt name current.dists with
        | None -> say "dist.count" name (float_of_int d.count) nan
        | Some d' ->
          if d'.count <> d.count then
            say "dist.count" name (float_of_int d.count)
              (float_of_int d'.count))
      reference.dists;
    List.iter
      (fun (r : span_stats) ->
        match
          List.find_opt (fun (c : span_stats) -> c.path = r.path) current.spans
        with
        | None -> say "span.calls" r.path (float_of_int r.calls) nan
        | Some c ->
          if c.calls <> r.calls then
            say "span.calls" r.path (float_of_int r.calls)
              (float_of_int c.calls);
          if c.seconds > r.seconds *. (1. +. threshold) then
            say "span.seconds" r.path r.seconds c.seconds)
      reference.spans;
    List.rev !out

  let check_against ~threshold ~(reference : t) (current : t) =
    compare_against ~threshold ~reference current
    |> List.map (fun m ->
           let missing = Float.is_nan m.m_actual in
           match m.m_kind with
           | "counter" ->
             if missing then
               Printf.sprintf "counter %s missing (reference %d)" m.m_name
                 (int_of_float m.m_expected)
             else
               Printf.sprintf "counter %s: %d differs from reference %d"
                 m.m_name (int_of_float m.m_actual)
                 (int_of_float m.m_expected)
           | "dist.count" ->
             if missing then
               Printf.sprintf "dist %s missing (reference count %d)" m.m_name
                 (int_of_float m.m_expected)
             else
               Printf.sprintf "dist %s: count %d differs from reference %d"
                 m.m_name (int_of_float m.m_actual)
                 (int_of_float m.m_expected)
           | "span.calls" ->
             if missing then
               Printf.sprintf "span %s missing (reference %d calls)" m.m_name
                 (int_of_float m.m_expected)
             else
               Printf.sprintf "span %s: %d calls differ from reference %d"
                 m.m_name (int_of_float m.m_actual)
                 (int_of_float m.m_expected)
           | _ ->
             Printf.sprintf
               "span %s: %.4fs exceeds reference %.4fs by more than %.0f%%"
               m.m_name m.m_actual m.m_expected (100. *. threshold))
end

type sink = Snapshot.t -> unit

let pretty fmt (s : Snapshot.t) =
  let open Format in
  if s.counters <> [] then begin
    fprintf fmt "counters:@.";
    List.iter
      (fun (name, v) -> fprintf fmt "  %-40s %12d@." name v)
      s.counters
  end;
  if s.spans <> [] then begin
    fprintf fmt "spans:%42s %12s@." "calls" "seconds";
    List.iter
      (fun { Snapshot.path; calls; seconds } ->
        let depth =
          String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path
        in
        let leaf =
          match String.rindex_opt path '/' with
          | None -> path
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        in
        let indent = String.make (2 + (2 * depth)) ' ' in
        fprintf fmt "%s%-*s %12d %12.6f@." indent
          (max 1 (46 - String.length indent))
          leaf calls seconds)
      s.spans
  end;
  if s.dists <> [] then begin
    fprintf fmt "dists:%41s %9s %9s %9s %9s@." "count" "avg" "stddev" "min"
      "max";
    List.iter
      (fun (name, d) ->
        fprintf fmt "  %-40s %5d %9.2f %9.2f %9.2f %9.2f@." name
          d.Snapshot.count (Snapshot.dist_mean d) (Snapshot.dist_stddev d)
          d.Snapshot.min d.Snapshot.max)
      s.dists
  end;
  if s.gauges <> [] then begin
    fprintf fmt "gauges:@.";
    List.iter
      (fun (name, v) -> fprintf fmt "  %-40s %12g@." name v)
      s.gauges
  end

let json fmt (s : Snapshot.t) =
  let open Format in
  List.iter
    (fun (name, v) ->
      fprintf fmt "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; sumsq; min; max }) ->
      fprintf fmt
        "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%s,\"sumsq\":%s,\"min\":%s,\"max\":%s}@."
        name count (g17 sum) (g17 sumsq) (g17 min) (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%s}@."
        path calls (g17 seconds))
    s.spans;
  List.iter
    (fun (name, v) ->
      fprintf fmt "{\"kind\":\"gauge\",\"name\":%S,\"value\":%s}@." name (g17 v))
    s.gauges

let csv fmt (s : Snapshot.t) =
  let open Format in
  fprintf fmt "kind,name,a,b,c,d,e@.";
  List.iter
    (fun (name, v) -> fprintf fmt "counter,%s,%d,,,,@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; sumsq; min; max }) ->
      fprintf fmt "dist,%s,%d,%s,%s,%s,%s@." name count (g17 sum) (g17 sumsq)
        (g17 min) (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "span,%s,%d,%s,,,@." path calls (g17 seconds))
    s.spans;
  List.iter
    (fun (name, v) -> fprintf fmt "gauge,%s,%s,,,,@." name (g17 v))
    s.gauges

let named_sink fmt = function
  | "pretty" -> Some (pretty fmt)
  | "json" -> Some (json fmt)
  | "csv" -> Some (csv fmt)
  | _ -> None

let report sink = sink (Snapshot.capture ())
