let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* %.17g round-trips IEEE doubles exactly *)
let g17 = Printf.sprintf "%.17g"

type counter = { c_name : string; mutable c_value : int }

type dist_cell = {
  d_name : string;
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_sumsq : float;
  mutable d_min : float;
  mutable d_max : float;
}

type dist = dist_cell

type span_cell = { mutable s_calls : int; mutable s_seconds : float }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let dists : (string, dist_cell) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_cell) Hashtbl.t = Hashtbl.create 16

(* span paths in first-entered order, reversed *)
let span_order : string list ref = ref []

(* the '/'-joined path of currently open spans *)
let span_path = ref ""

module Trace = struct
  let on = ref false
  let enabled () = !on

  type payload =
    | Span_begin of string
    | Span_end of string
    | Count of { name : string; delta : int }
    | Send of { round : int; time : float; kind : string; src : int; dst : int }
    | Deliver of {
        round : int;
        time : float;
        kind : string;
        src : int;
        dst : int;
      }
    | Job of { group : int; enter : bool }

  type event = {
    ts : float; (* microseconds since Trace.start *)
    dom : int;
    group : int;
    task : int;
    phase : string;
    payload : payload;
  }

  let dummy =
    { ts = 0.; dom = 0; group = -1; task = -1; phase = "";
      payload = Span_begin "" }

  (* One ring buffer per domain, reached through domain-local storage so
     recording never takes a lock; the global list (mutex-protected,
     touched only at buffer creation and export) lets the exporting
     domain find everyone's events. *)
  type buf = {
    b_dom : int;
    mutable b_events : event array;
    mutable b_start : int;
    mutable b_len : int;
    mutable b_dropped : int;
    mutable b_group : int;
    mutable b_task : int;
  }

  let registry_mutex = Mutex.create ()
  let all_bufs : buf list ref = ref []
  let capacity = ref (1 lsl 16)
  let t0 = ref 0.
  let group_counter = Atomic.make 0

  let fresh_buf () =
    let b =
      { b_dom = (Domain.self () :> int);
        b_events = Array.make !capacity dummy;
        b_start = 0; b_len = 0; b_dropped = 0; b_group = -1; b_task = -1 }
    in
    Mutex.lock registry_mutex;
    all_bufs := b :: !all_bufs;
    Mutex.unlock registry_mutex;
    b

  let key = Domain.DLS.new_key fresh_buf
  let my_buf () = Domain.DLS.get key

  let start ?capacity:(cap = 1 lsl 16) () =
    Mutex.lock registry_mutex;
    capacity := cap;
    List.iter
      (fun b ->
        b.b_events <- Array.make cap dummy;
        b.b_start <- 0;
        b.b_len <- 0;
        b.b_dropped <- 0;
        b.b_group <- -1;
        b.b_task <- -1)
      !all_bufs;
    Mutex.unlock registry_mutex;
    Atomic.set group_counter 0;
    t0 := Unix.gettimeofday ();
    on := true

  let stop () = on := false

  let dropped () =
    Mutex.lock registry_mutex;
    let d = List.fold_left (fun a b -> a + b.b_dropped) 0 !all_bufs in
    Mutex.unlock registry_mutex;
    d

  let now_us () = (Unix.gettimeofday () -. !t0) *. 1e6

  let push b ev =
    let cap = Array.length b.b_events in
    if b.b_len = cap then begin
      (* full: overwrite the oldest *)
      b.b_events.(b.b_start) <- ev;
      b.b_start <- (b.b_start + 1) mod cap;
      b.b_dropped <- b.b_dropped + 1
    end
    else begin
      b.b_events.((b.b_start + b.b_len) mod cap) <- ev;
      b.b_len <- b.b_len + 1
    end

  (* The span-path phase label is only safe to read from the domain
     that owns the span stack, i.e. outside pool tasks. *)
  let current_phase b = if b.b_task >= 0 then "" else !span_path

  let record b payload =
    push b
      { ts = now_us (); dom = b.b_dom; group = b.b_group; task = b.b_task;
        phase = current_phase b; payload }

  let span_begin name = if !on then record (my_buf ()) (Span_begin name)
  let span_end name = if !on then record (my_buf ()) (Span_end name)

  let count name delta =
    if !on then begin
      let b = my_buf () in
      let coalesced =
        b.b_len > 0
        &&
        let cap = Array.length b.b_events in
        let i = (b.b_start + b.b_len - 1) mod cap in
        let last = b.b_events.(i) in
        match last.payload with
        | Count c
          when c.name = name && last.task = b.b_task
               && last.phase = current_phase b ->
          b.b_events.(i) <-
            { last with payload = Count { name; delta = c.delta + delta } };
          true
        | _ -> false
      in
      if not coalesced then record b (Count { name; delta })
    end

  let send ~round ~time ~kind ~src ~dst =
    if !on then record (my_buf ()) (Send { round; time; kind; src; dst })

  let deliver ~round ~time ~kind ~src ~dst =
    if !on then record (my_buf ()) (Deliver { round; time; kind; src; dst })

  let new_group () = Atomic.fetch_and_add group_counter 1

  let job_enter g =
    if !on then record (my_buf ()) (Job { group = g; enter = true })

  let job_leave g =
    if !on then record (my_buf ()) (Job { group = g; enter = false })

  let set_context ~group ~task =
    let b = my_buf () in
    b.b_group <- group;
    b.b_task <- task

  let buffer_events b =
    let cap = Array.length b.b_events in
    List.init b.b_len (fun i -> b.b_events.((b.b_start + i) mod cap))

  (* Deterministic merge: the exporting domain's stream keeps recorded
     order; every event recorded inside a pool job (group >= 0, from
     any domain including the caller's) is pulled out, stable-sorted by
     task index, and spliced back at that job's end marker.  Because a
     task runs entirely on one domain and each domain claims strictly
     increasing indices, within-task order is preserved and the merged
     (task, phase, payload) sequence is independent of worker count and
     scheduling. *)
  let events () =
    let me = (Domain.self () :> int) in
    ignore (my_buf () : buf);
    Mutex.lock registry_mutex;
    let bufs = !all_bufs in
    Mutex.unlock registry_mutex;
    let mine, others = List.partition (fun b -> b.b_dom = me) bufs in
    let grouped : (int, event list ref) Hashtbl.t = Hashtbl.create 16 in
    let add_grouped ev =
      match Hashtbl.find_opt grouped ev.group with
      | Some r -> r := ev :: !r
      | None -> Hashtbl.add grouped ev.group (ref [ ev ])
    in
    List.iter
      (fun b ->
        List.iter
          (fun ev -> if ev.group >= 0 then add_grouped ev)
          (buffer_events b))
      others;
    let main =
      List.concat_map buffer_events mine
      |> List.filter (fun ev ->
             if ev.group >= 0 then begin
               add_grouped ev;
               false
             end
             else true)
    in
    let by_task evs =
      List.stable_sort (fun a b -> compare a.task b.task) evs
    in
    let splice g =
      match Hashtbl.find_opt grouped g with
      | None -> []
      | Some r ->
        Hashtbl.remove grouped g;
        by_task (List.rev !r)
    in
    let rewrite ev =
      match ev.payload with
      | Job { enter = true; _ } -> { ev with payload = Span_begin "pool.job" }
      | Job { enter = false; _ } -> { ev with payload = Span_end "pool.job" }
      | _ -> ev
    in
    let merged =
      List.concat_map
        (fun ev ->
          match ev.payload with
          | Job { group = g; enter = false } -> splice g @ [ rewrite ev ]
          | _ -> [ rewrite ev ])
        main
    in
    (* groups whose end marker was lost to the ring: append in group order *)
    let leftovers =
      Hashtbl.fold (fun g r acc -> (g, by_task (List.rev !r)) :: acc) grouped []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.concat_map snd
    in
    merged @ leftovers

  (* Chrome trace-event format (Perfetto-loadable): one event object per
     line so {!read_chrome} can parse the exact subset back with Scanf,
     like Snapshot.of_json_lines. *)
  let write_chrome fmt evs =
    let open Format in
    fprintf fmt "{\"traceEvents\":[";
    let totals : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let first = ref true in
    let sep () =
      if !first then begin
        first := false;
        fprintf fmt "@\n"
      end
      else fprintf fmt ",@\n"
    in
    let common ev =
      Printf.sprintf "\"ts\":%s,\"pid\":0,\"tid\":%d" (g17 ev.ts) ev.dom
    in
    let instant ev dir ~round ~time ~kind ~src ~dst =
      fprintf fmt
        "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"dir\":%S,\"round\":%d,\"time\":%s,\"src\":%d,\"dst\":%d,\"group\":%d,\"task\":%d}}"
        kind ev.phase (common ev) dir round (g17 time) src dst ev.group ev.task
    in
    let duration ev ph name =
      fprintf fmt
        "{\"name\":%S,\"cat\":%S,\"ph\":\"%s\",%s,\"args\":{\"group\":%d,\"task\":%d}}"
        name ev.phase ph (common ev) ev.group ev.task
    in
    List.iter
      (fun ev ->
        sep ();
        match ev.payload with
        | Span_begin name -> duration ev "B" name
        | Span_end name -> duration ev "E" name
        | Job { enter = true; _ } -> duration ev "B" "pool.job"
        | Job { enter = false; _ } -> duration ev "E" "pool.job"
        | Count { name; delta } ->
          let v =
            delta + Option.value ~default:0 (Hashtbl.find_opt totals name)
          in
          Hashtbl.replace totals name v;
          fprintf fmt
            "{\"name\":%S,\"cat\":%S,\"ph\":\"C\",%s,\"args\":{\"value\":%d,\"delta\":%d,\"group\":%d,\"task\":%d}}"
            name ev.phase (common ev) v delta ev.group ev.task
        | Send { round; time; kind; src; dst } ->
          instant ev "send" ~round ~time ~kind ~src ~dst
        | Deliver { round; time; kind; src; dst } ->
          instant ev "recv" ~round ~time ~kind ~src ~dst)
      evs;
    fprintf fmt "@\n]}@."

  let read_chrome s =
    let strip_comma l =
      let n = String.length l in
      if n > 0 && l.[n - 1] = ',' then String.sub l 0 (n - 1) else l
    in
    let try_duration line ph mk =
      Scanf.sscanf line
        "{\"name\":%S,\"cat\":%S,\"ph\":%S,\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"group\":%d,\"task\":%d}}"
        (fun name phase ph' ts dom group task ->
          if ph' <> ph then failwith "ph";
          { ts; dom; group; task; phase; payload = mk name })
    in
    let parse line =
      let attempts =
        [ (fun () -> try_duration line "B" (fun n -> Span_begin n));
          (fun () -> try_duration line "E" (fun n -> Span_end n));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"C\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"value\":%d,\"delta\":%d,\"group\":%d,\"task\":%d}}"
              (fun name phase ts dom _value delta group task ->
                { ts; dom; group; task; phase;
                  payload = Count { name; delta } }));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"dir\":%S,\"round\":%d,\"time\":%f,\"src\":%d,\"dst\":%d,\"group\":%d,\"task\":%d}}"
              (fun kind phase ts dom dir round time src dst group task ->
                let payload =
                  match dir with
                  | "send" -> Send { round; time; kind; src; dst }
                  | "recv" -> Deliver { round; time; kind; src; dst }
                  | _ -> failwith "dir"
                in
                { ts; dom; group; task; phase; payload }))
        ]
      in
      let rec go = function
        | [] -> failwith ("Obs.Trace.read_chrome: bad line: " ^ line)
        | f :: rest -> (
          try f () with
          | Scanf.Scan_failure _ | End_of_file | Failure _ -> go rest)
      in
      go attempts
    in
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = strip_comma (String.trim l) in
           if l = "" || l = "{\"traceEvents\":[" || l = "]}" then None
           else Some (parse l))

  type profile_row = {
    p_path : string;
    p_calls : int;
    p_total : float;
    p_self : float;
  }

  (* Walk span begin/end pairs per domain; self time is total minus the
     time attributed to spans opened (on the same domain) inside.
     Unmatched ends (their begin was overwritten in the ring) are
     dropped. *)
  let profile evs =
    let rows : (string, profile_row) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let stacks : (int, (string * float * float ref) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let stack dom =
      match Hashtbl.find_opt stacks dom with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
    in
    List.iter
      (fun ev ->
        match ev.payload with
        | Span_begin name ->
          let s = stack ev.dom in
          s := (name, ev.ts, ref 0.) :: !s
        | Span_end name -> (
          let s = stack ev.dom in
          match !s with
          | (n, t_begin, children) :: rest when n = name ->
            s := rest;
            let total_us = Float.max 0. (ev.ts -. t_begin) in
            let self_us = Float.max 0. (total_us -. !children) in
            (match rest with
            | (_, _, pc) :: _ -> pc := !pc +. total_us
            | [] -> ());
            let row =
              match Hashtbl.find_opt rows name with
              | Some r -> r
              | None ->
                order := name :: !order;
                { p_path = name; p_calls = 0; p_total = 0.; p_self = 0. }
            in
            Hashtbl.replace rows name
              { row with
                p_calls = row.p_calls + 1;
                p_total = row.p_total +. (total_us /. 1e6);
                p_self = row.p_self +. (self_us /. 1e6) }
          | _ -> ())
        | _ -> ())
      evs;
    List.rev_map (fun n -> Hashtbl.find rows n) !order

  let write_folded fmt evs =
    let semicolons p = String.map (fun c -> if c = '/' then ';' else c) p in
    profile evs
    |> List.sort (fun a b -> compare a.p_path b.p_path)
    |> List.iter (fun r ->
           Format.fprintf fmt "%s %.0f@." (semicolons r.p_path)
             (r.p_self *. 1e6))

  type audit_row = {
    a_phase : string;
    a_kind : string;
    a_sends : int;
    a_deliveries : int;
  }

  let message_audit evs =
    let tbl : (string * string, int ref * int ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let phase_order = ref [] in
    let cell phase kind =
      match Hashtbl.find_opt tbl (phase, kind) with
      | Some c -> c
      | None ->
        if not (List.mem phase !phase_order) then
          phase_order := phase :: !phase_order;
        let c = (ref 0, ref 0) in
        Hashtbl.add tbl (phase, kind) c;
        c
    in
    List.iter
      (fun ev ->
        match ev.payload with
        | Send { kind; _ } -> Stdlib.incr (fst (cell ev.phase kind))
        | Deliver { kind; _ } -> Stdlib.incr (snd (cell ev.phase kind))
        | _ -> ())
      evs;
    List.rev !phase_order
    |> List.concat_map (fun phase ->
           Hashtbl.fold
             (fun (p, k) (s, d) acc ->
               if p = phase then
                 { a_phase = p; a_kind = k; a_sends = !s; a_deliveries = !d }
                 :: acc
               else acc)
             tbl []
           |> List.sort (fun a b -> compare a.a_kind b.a_kind))

  let fit_loglog_slope pts =
    let pts = List.filter (fun (x, y) -> x > 0. && y > 0.) pts in
    match pts with
    | [] | [ _ ] -> nan
    | _ ->
      let n = float_of_int (List.length pts) in
      let sx, sy, sxx, sxy =
        List.fold_left
          (fun (sx, sy, sxx, sxy) (x, y) ->
            let lx = log x and ly = log y in
            (sx +. lx, sy +. ly, sxx +. (lx *. lx), sxy +. (lx *. ly)))
          (0., 0., 0., 0.) pts
      in
      let den = (n *. sxx) -. (sx *. sx) in
      if Float.abs den < 1e-12 then nan
      else ((n *. sxy) -. (sx *. sy)) /. den
end

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let incr c =
  if !on then begin
    c.c_value <- c.c_value + 1;
    if !Trace.on then Trace.count c.c_name 1
  end

let add c n =
  if !on then begin
    c.c_value <- c.c_value + n;
    if !Trace.on then Trace.count c.c_name n
  end

let value c = c.c_value

let dist name =
  match Hashtbl.find_opt dists name with
  | Some d -> d
  | None ->
    let d =
      { d_name = name; d_count = 0; d_sum = 0.; d_sumsq = 0.; d_min = infinity;
        d_max = neg_infinity }
    in
    Hashtbl.add dists name d;
    d

let observe d v =
  if !on then begin
    d.d_count <- d.d_count + 1;
    d.d_sum <- d.d_sum +. v;
    d.d_sumsq <- d.d_sumsq +. (v *. v);
    if v < d.d_min then d.d_min <- v;
    if v > d.d_max then d.d_max <- v
  end

let span name f =
  if not !on then f ()
  else begin
    let parent = !span_path in
    let path = if parent = "" then name else parent ^ "/" ^ name in
    let cell =
      match Hashtbl.find_opt spans path with
      | Some c -> c
      | None ->
        let c = { s_calls = 0; s_seconds = 0. } in
        Hashtbl.add spans path c;
        span_order := path :: !span_order;
        c
    in
    if !Trace.on then Trace.span_begin path;
    span_path := path;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        cell.s_calls <- cell.s_calls + 1;
        cell.s_seconds <- cell.s_seconds +. (Unix.gettimeofday () -. t0);
        span_path := parent;
        if !Trace.on then Trace.span_end path)
      f
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ d ->
      d.d_count <- 0;
      d.d_sum <- 0.;
      d.d_sumsq <- 0.;
      d.d_min <- infinity;
      d.d_max <- neg_infinity)
    dists;
  Hashtbl.reset spans;
  span_order := [];
  span_path := ""

module Snapshot = struct
  type dist_stats = {
    count : int;
    sum : float;
    sumsq : float;
    min : float;
    max : float;
  }

  type span_stats = { path : string; calls : int; seconds : float }

  type t = {
    counters : (string * int) list;
    dists : (string * dist_stats) list;
    spans : span_stats list;
  }

  let dist_mean d = if d.count = 0 then 0. else d.sum /. float_of_int d.count

  let dist_stddev d =
    if d.count = 0 then 0.
    else
      let n = float_of_int d.count in
      let m = d.sum /. n in
      sqrt (Float.max 0. ((d.sumsq /. n) -. (m *. m)))

  let capture () =
    {
      counters =
        List.sort compare
          (Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) counters []);
      dists =
        List.sort compare
          (Hashtbl.fold
             (fun k d acc ->
               if d.d_count = 0 then acc
               else
                 ( k,
                   { count = d.d_count; sum = d.d_sum; sumsq = d.d_sumsq;
                     min = d.d_min; max = d.d_max } )
                 :: acc)
             dists []);
      spans =
        List.rev_map
          (fun path ->
            let c = Hashtbl.find spans path in
            { path; calls = c.s_calls; seconds = c.s_seconds })
          !span_order;
    }

  let lines s =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")

  let of_json_lines s =
    let parse acc line =
      try
        Scanf.sscanf line "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}"
          (fun name v -> { acc with counters = (name, v) :: acc.counters })
      with Scanf.Scan_failure _ | End_of_file -> (
        try
          Scanf.sscanf line
            "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%g,\"sumsq\":%g,\"min\":%g,\"max\":%g}"
            (fun name count sum sumsq min max ->
              {
                acc with
                dists = (name, { count; sum; sumsq; min; max }) :: acc.dists;
              })
        with Scanf.Scan_failure _ | End_of_file -> (
          try
            Scanf.sscanf line
              "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%g}"
              (fun path calls seconds ->
                { acc with spans = { path; calls; seconds } :: acc.spans })
          with Scanf.Scan_failure _ | End_of_file ->
            failwith ("Obs.Snapshot.of_json_lines: bad line: " ^ line)))
    in
    let acc =
      List.fold_left parse { counters = []; dists = []; spans = [] } (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
    }

  let of_csv s =
    let parse acc line =
      match String.split_on_char ',' line with
      | [ "kind"; "name"; _; _; _; _; _ ] -> acc
      | [ "counter"; name; v; _; _; _; _ ] ->
        { acc with counters = (name, int_of_string v) :: acc.counters }
      | [ "dist"; name; count; sum; sumsq; min; max ] ->
        {
          acc with
          dists =
            ( name,
              { count = int_of_string count; sum = float_of_string sum;
                sumsq = float_of_string sumsq; min = float_of_string min;
                max = float_of_string max } )
            :: acc.dists;
        }
      | [ "span"; path; calls; seconds; _; _; _ ] ->
        {
          acc with
          spans =
            { path; calls = int_of_string calls;
              seconds = float_of_string seconds }
            :: acc.spans;
        }
      | _ -> failwith ("Obs.Snapshot.of_csv: bad line: " ^ line)
    in
    let acc =
      List.fold_left parse { counters = []; dists = []; spans = [] } (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
    }

  (* Regression gate: counters and call/observation counts are
     deterministic for a fixed configuration, so they must match
     exactly; only span seconds are wall-clock noise and get the
     threshold.  Metrics present in [current] but absent from
     [reference] are ignored so new instrumentation does not invalidate
     committed baselines. *)
  let check_against ~threshold ~(reference : t) (current : t) =
    let out = ref [] in
    let say fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
    List.iter
      (fun (name, v) ->
        match List.assoc_opt name current.counters with
        | None -> if v <> 0 then say "counter %s missing (reference %d)" name v
        | Some v' ->
          if v' <> v then
            say "counter %s: %d differs from reference %d" name v' v)
      reference.counters;
    List.iter
      (fun (name, (d : dist_stats)) ->
        match List.assoc_opt name current.dists with
        | None -> say "dist %s missing (reference count %d)" name d.count
        | Some d' ->
          if d'.count <> d.count then
            say "dist %s: count %d differs from reference %d" name d'.count
              d.count)
      reference.dists;
    List.iter
      (fun (r : span_stats) ->
        match
          List.find_opt (fun (c : span_stats) -> c.path = r.path) current.spans
        with
        | None -> say "span %s missing (reference %d calls)" r.path r.calls
        | Some c ->
          if c.calls <> r.calls then
            say "span %s: %d calls differ from reference %d" r.path c.calls
              r.calls;
          if c.seconds > r.seconds *. (1. +. threshold) then
            say "span %s: %.4fs exceeds reference %.4fs by more than %.0f%%"
              r.path c.seconds r.seconds (100. *. threshold))
      reference.spans;
    List.rev !out
end

type sink = Snapshot.t -> unit

let pretty fmt (s : Snapshot.t) =
  let open Format in
  if s.counters <> [] then begin
    fprintf fmt "counters:@.";
    List.iter
      (fun (name, v) -> fprintf fmt "  %-40s %12d@." name v)
      s.counters
  end;
  if s.spans <> [] then begin
    fprintf fmt "spans:%42s %12s@." "calls" "seconds";
    List.iter
      (fun { Snapshot.path; calls; seconds } ->
        let depth =
          String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path
        in
        let leaf =
          match String.rindex_opt path '/' with
          | None -> path
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        in
        let indent = String.make (2 + (2 * depth)) ' ' in
        fprintf fmt "%s%-*s %12d %12.6f@." indent
          (max 1 (46 - String.length indent))
          leaf calls seconds)
      s.spans
  end;
  if s.dists <> [] then begin
    fprintf fmt "dists:%41s %9s %9s %9s %9s@." "count" "avg" "stddev" "min"
      "max";
    List.iter
      (fun (name, d) ->
        fprintf fmt "  %-40s %5d %9.2f %9.2f %9.2f %9.2f@." name
          d.Snapshot.count (Snapshot.dist_mean d) (Snapshot.dist_stddev d)
          d.Snapshot.min d.Snapshot.max)
      s.dists
  end

let json fmt (s : Snapshot.t) =
  let open Format in
  List.iter
    (fun (name, v) ->
      fprintf fmt "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; sumsq; min; max }) ->
      fprintf fmt
        "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%s,\"sumsq\":%s,\"min\":%s,\"max\":%s}@."
        name count (g17 sum) (g17 sumsq) (g17 min) (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%s}@."
        path calls (g17 seconds))
    s.spans

let csv fmt (s : Snapshot.t) =
  let open Format in
  fprintf fmt "kind,name,a,b,c,d,e@.";
  List.iter
    (fun (name, v) -> fprintf fmt "counter,%s,%d,,,,@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; sumsq; min; max }) ->
      fprintf fmt "dist,%s,%d,%s,%s,%s,%s@." name count (g17 sum) (g17 sumsq)
        (g17 min) (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "span,%s,%d,%s,,,@." path calls (g17 seconds))
    s.spans

let named_sink fmt = function
  | "pretty" -> Some (pretty fmt)
  | "json" -> Some (json fmt)
  | "csv" -> Some (csv fmt)
  | _ -> None

let report sink = sink (Snapshot.capture ())
