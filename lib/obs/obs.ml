let on = ref false
let enabled () = !on
let set_enabled b = on := b

type counter = { c_name : string; mutable c_value : int }

type dist_cell = {
  d_name : string;
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
}

type dist = dist_cell

type span_cell = { mutable s_calls : int; mutable s_seconds : float }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let dists : (string, dist_cell) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_cell) Hashtbl.t = Hashtbl.create 16

(* span paths in first-entered order, reversed *)
let span_order : string list ref = ref []

(* the '/'-joined path of currently open spans *)
let span_path = ref ""

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let incr c = if !on then c.c_value <- c.c_value + 1
let add c n = if !on then c.c_value <- c.c_value + n
let value c = c.c_value

let dist name =
  match Hashtbl.find_opt dists name with
  | Some d -> d
  | None ->
    let d =
      { d_name = name; d_count = 0; d_sum = 0.; d_min = infinity;
        d_max = neg_infinity }
    in
    Hashtbl.add dists name d;
    d

let observe d v =
  if !on then begin
    d.d_count <- d.d_count + 1;
    d.d_sum <- d.d_sum +. v;
    if v < d.d_min then d.d_min <- v;
    if v > d.d_max then d.d_max <- v
  end

let span name f =
  if not !on then f ()
  else begin
    let parent = !span_path in
    let path = if parent = "" then name else parent ^ "/" ^ name in
    let cell =
      match Hashtbl.find_opt spans path with
      | Some c -> c
      | None ->
        let c = { s_calls = 0; s_seconds = 0. } in
        Hashtbl.add spans path c;
        span_order := path :: !span_order;
        c
    in
    span_path := path;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        cell.s_calls <- cell.s_calls + 1;
        cell.s_seconds <- cell.s_seconds +. (Unix.gettimeofday () -. t0);
        span_path := parent)
      f
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ d ->
      d.d_count <- 0;
      d.d_sum <- 0.;
      d.d_min <- infinity;
      d.d_max <- neg_infinity)
    dists;
  Hashtbl.reset spans;
  span_order := [];
  span_path := ""

module Snapshot = struct
  type dist_stats = { count : int; sum : float; min : float; max : float }
  type span_stats = { path : string; calls : int; seconds : float }

  type t = {
    counters : (string * int) list;
    dists : (string * dist_stats) list;
    spans : span_stats list;
  }

  let capture () =
    {
      counters =
        List.sort compare
          (Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) counters []);
      dists =
        List.sort compare
          (Hashtbl.fold
             (fun k d acc ->
               if d.d_count = 0 then acc
               else
                 ( k,
                   { count = d.d_count; sum = d.d_sum; min = d.d_min;
                     max = d.d_max } )
                 :: acc)
             dists []);
      spans =
        List.rev_map
          (fun path ->
            let c = Hashtbl.find spans path in
            { path; calls = c.s_calls; seconds = c.s_seconds })
          !span_order;
    }

  let lines s =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")

  let of_json_lines s =
    let parse acc line =
      try
        Scanf.sscanf line "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}"
          (fun name v -> { acc with counters = (name, v) :: acc.counters })
      with Scanf.Scan_failure _ | End_of_file -> (
        try
          Scanf.sscanf line
            "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g}"
            (fun name count sum min max ->
              { acc with dists = (name, { count; sum; min; max }) :: acc.dists })
        with Scanf.Scan_failure _ | End_of_file -> (
          try
            Scanf.sscanf line
              "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%g}"
              (fun path calls seconds ->
                { acc with spans = { path; calls; seconds } :: acc.spans })
          with Scanf.Scan_failure _ | End_of_file ->
            failwith ("Obs.Snapshot.of_json_lines: bad line: " ^ line)))
    in
    let acc =
      List.fold_left parse { counters = []; dists = []; spans = [] } (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
    }

  let of_csv s =
    let parse acc line =
      match String.split_on_char ',' line with
      | [ "kind"; "name"; _; _; _; _ ] -> acc
      | [ "counter"; name; v; _; _; _ ] ->
        { acc with counters = (name, int_of_string v) :: acc.counters }
      | [ "dist"; name; count; sum; min; max ] ->
        {
          acc with
          dists =
            ( name,
              { count = int_of_string count; sum = float_of_string sum;
                min = float_of_string min; max = float_of_string max } )
            :: acc.dists;
        }
      | [ "span"; path; calls; seconds; _; _ ] ->
        {
          acc with
          spans =
            { path; calls = int_of_string calls;
              seconds = float_of_string seconds }
            :: acc.spans;
        }
      | _ -> failwith ("Obs.Snapshot.of_csv: bad line: " ^ line)
    in
    let acc =
      List.fold_left parse { counters = []; dists = []; spans = [] } (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
    }
end

type sink = Snapshot.t -> unit

let pretty fmt (s : Snapshot.t) =
  let open Format in
  if s.counters <> [] then begin
    fprintf fmt "counters:@.";
    List.iter
      (fun (name, v) -> fprintf fmt "  %-40s %12d@." name v)
      s.counters
  end;
  if s.spans <> [] then begin
    fprintf fmt "spans:%42s %12s@." "calls" "seconds";
    List.iter
      (fun { Snapshot.path; calls; seconds } ->
        let depth =
          String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path
        in
        let leaf =
          match String.rindex_opt path '/' with
          | None -> path
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        in
        let indent = String.make (2 + (2 * depth)) ' ' in
        fprintf fmt "%s%-*s %12d %12.6f@." indent
          (max 1 (46 - String.length indent))
          leaf calls seconds)
      s.spans
  end;
  if s.dists <> [] then begin
    fprintf fmt "dists:%41s %9s %9s %9s@." "count" "avg" "min" "max";
    List.iter
      (fun (name, { Snapshot.count; sum; min; max }) ->
        fprintf fmt "  %-40s %5d %9.2f %9.2f %9.2f@." name count
          (sum /. float_of_int count)
          min max)
      s.dists
  end

(* %.17g round-trips IEEE doubles exactly *)
let g17 = Printf.sprintf "%.17g"

let json fmt (s : Snapshot.t) =
  let open Format in
  List.iter
    (fun (name, v) ->
      fprintf fmt "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; min; max }) ->
      fprintf fmt
        "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}@."
        name count (g17 sum) (g17 min) (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%s}@."
        path calls (g17 seconds))
    s.spans

let csv fmt (s : Snapshot.t) =
  let open Format in
  fprintf fmt "kind,name,a,b,c,d@.";
  List.iter
    (fun (name, v) -> fprintf fmt "counter,%s,%d,,,@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; min; max }) ->
      fprintf fmt "dist,%s,%d,%s,%s,%s@." name count (g17 sum) (g17 min)
        (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "span,%s,%d,%s,,@." path calls (g17 seconds))
    s.spans

let named_sink fmt = function
  | "pretty" -> Some (pretty fmt)
  | "json" -> Some (json fmt)
  | "csv" -> Some (csv fmt)
  | _ -> None

let report sink = sink (Snapshot.capture ())
