(* lint: domain-local toggled between runs, read-only in parallel regions *)
let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* Run [f] with the registry disabled, restoring the previous state.
   Parallel construction stages wrap their worker fan-out in this:
   the registry is not domain-safe, and instrumented inner loops
   (predicates, triangulation, grid queries) would otherwise race.
   An enclosing [span] entered before the quiesce still records its
   timing — [span] checks the switch once at entry. *)
let quiesced f =
  let was = !on in
  on := false;
  Fun.protect ~finally:(fun () -> on := was) f

(* %.17g round-trips IEEE doubles exactly *)
let g17 = Printf.sprintf "%.17g"

type counter = { c_name : string; mutable c_value : int }

type dist_cell = {
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_sumsq : float;
  mutable d_min : float;
  mutable d_max : float;
}

type dist = dist_cell

type span_cell = { mutable s_calls : int; mutable s_seconds : float }

type gauge = { mutable g_value : float; mutable g_set : bool }

(* Fixed-bucket mergeable histograms.  P-squared sketches estimate
   quantiles but two sketches cannot be combined without loss; a
   histogram over one global log-2 bucket ladder merges by element-wise
   addition, so a merged result is independent of how observations were
   split across slots or domains — the property the serve engine needs
   to keep jobs-bit-identity.  The ladder covers 2^-10 .. 2^30 (values
   at or below the first bound land in bucket 0; anything above the
   last bound lands in the overflow bucket), which spans both hop
   counts and microsecond latencies.  Bucketing is a binary search over
   exact powers of two — no logs, no rounding ambiguity. *)
module Histogram = struct
  let bounds = Array.init 41 (fun i -> ldexp 1. (i - 10))
  let buckets_len = Array.length bounds + 1

  (* [h_sum] lives in a one-slot floatarray so updating it is an
     unboxed store — a mutable float field in this mixed record would
     allocate a box per observation, and [observe_int] sits on the
     engine's zero-alloc per-query path. *)
  type t = {
    mutable h_count : int;
    h_sum : floatarray;
    h_buckets : int array; (* length [buckets_len]; last is +Inf *)
  }

  let create () =
    {
      h_count = 0;
      h_sum = Float.Array.make 1 0.;
      h_buckets = Array.make buckets_len 0;
    }

  (* smallest [i] with [v <= bounds.(i)]; the overflow slot otherwise
     (NaN also overflows — it compares false against every bound) *)
  let bucket_index v =
    let lo = ref 0 and hi = ref (Array.length bounds) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let add_sum h v =
    Float.Array.unsafe_set h.h_sum 0 (Float.Array.unsafe_get h.h_sum 0 +. v)

  let observe h v =
    h.h_count <- h.h_count + 1;
    add_sum h v;
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1

  (* [observe (float_of_int n)] without any float crossing a call
     boundary: [bounds.(10 + k) = 2.^k], so the bucket of a positive
     [n] is 10 plus the position of its highest set bit (rounded up),
     capped at the overflow slot. *)
  let observe_int h n =
    h.h_count <- h.h_count + 1;
    add_sum h (float_of_int n);
    let i =
      if n <= 0 then 0
      else begin
        let k = ref 0 in
        while 1 lsl !k < n && !k < 31 do incr k done;
        min (10 + !k) (buckets_len - 1)
      end
    in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1

  let count h = h.h_count
  let sum h = Float.Array.get h.h_sum 0
  let buckets h = Array.copy h.h_buckets

  let reset h =
    h.h_count <- 0;
    Float.Array.set h.h_sum 0 0.;
    Array.fill h.h_buckets 0 buckets_len 0

  let merge_into ~into src =
    into.h_count <- into.h_count + src.h_count;
    add_sum into (Float.Array.get src.h_sum 0);
    for i = 0 to buckets_len - 1 do
      into.h_buckets.(i) <- into.h_buckets.(i) + src.h_buckets.(i)
    done

  (* upper bound of the bucket holding rank ceil(q * count): an upper
     estimate, exact to within one bucket width *)
  let quantile_of ~count (buckets : int array) q =
    if count = 0 then nan
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int count))) in
      let acc = ref 0 and ans = ref infinity in
      (try
         Array.iteri
           (fun i c ->
             acc := !acc + c;
             if !acc >= rank then begin
               (ans :=
                  if i < Array.length bounds then bounds.(i) else infinity);
               raise Exit
             end)
           buckets
       with Exit -> ());
      !ans
    end

  let quantile h q = quantile_of ~count:h.h_count h.h_buckets q
end

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let dists : (string, dist_cell) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_cell) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let hists : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

(* The single-writer scrape contract.  The registry's cells are only
   ever mutated from the main thread of the main domain (parallel
   stages quiesce their fan-out), and cell updates are word-sized
   stores, so the Export listener thread may *read* them at any time
   without tearing.  What it must not race with is registration — a
   [Hashtbl.add] can resize the table mid-fold.  Registration is rare
   (first use of a name) and snapshots are rare, so both sides take
   this mutex; the hot observation paths ([incr], [observe], ...)
   never do. *)
let registration_mutex = Mutex.create ()

let registered tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    let c = make () in
    Mutex.lock registration_mutex;
    Hashtbl.add tbl name c;
    Mutex.unlock registration_mutex;
    c

(* span paths in first-entered order, reversed *)
let span_order : string list ref = ref []

(* the '/'-joined path of currently open spans *)
let span_path = ref ""

module Trace = struct
  (* lint: domain-local toggled between runs, read-only in parallel regions *)
  let on = ref false
  let enabled () = !on

  type payload =
    | Span_begin of string
    | Span_end of string
    | Count of { name : string; delta : int }
    | Send of {
        round : int;
        time : float;
        kind : string;
        src : int;
        dst : int;
        lam : int;
        sseq : int;
      }
    | Deliver of {
        round : int;
        time : float;
        kind : string;
        src : int;
        dst : int;
        lam : int;
        sseq : int;
        dseq : int;
      }
    | Job of { group : int; enter : bool }
    | Alert of {
        round : int;
        probe : string;
        value : float;
        limit : float;
        node : int;
      }

  type event = {
    ts : float; (* microseconds since Trace.start *)
    dom : int;
    group : int;
    task : int;
    phase : string;
    payload : payload;
  }

  let dummy =
    { ts = 0.; dom = 0; group = -1; task = -1; phase = "";
      payload = Span_begin "" }

  (* One ring buffer per domain, reached through domain-local storage so
     recording never takes a lock; the global list (mutex-protected,
     touched only at buffer creation and export) lets the exporting
     domain find everyone's events. *)
  type buf = {
    b_dom : int;
    mutable b_events : event array;
    mutable b_start : int;
    mutable b_len : int;
    mutable b_dropped : int;
    mutable b_group : int;
    mutable b_task : int;
  }

  let registry_mutex = Mutex.create ()
  let all_bufs : buf list ref = ref []
  let capacity = ref (1 lsl 16)
  let t0 = ref 0.
  let group_counter = Atomic.make 0

  let fresh_buf () =
    let b =
      { b_dom = (Domain.self () :> int);
        b_events = Array.make !capacity dummy;
        b_start = 0; b_len = 0; b_dropped = 0; b_group = -1; b_task = -1 }
    in
    Mutex.lock registry_mutex;
    all_bufs := b :: !all_bufs;
    Mutex.unlock registry_mutex;
    b

  let key = Domain.DLS.new_key fresh_buf
  let my_buf () = Domain.DLS.get key

  let start ?capacity:(cap = 1 lsl 16) () =
    Mutex.lock registry_mutex;
    capacity := cap;
    List.iter
      (fun b ->
        b.b_events <- Array.make cap dummy;
        b.b_start <- 0;
        b.b_len <- 0;
        b.b_dropped <- 0;
        b.b_group <- -1;
        b.b_task <- -1)
      !all_bufs;
    Mutex.unlock registry_mutex;
    Atomic.set group_counter 0;
    t0 := Unix.gettimeofday ();
    on := true

  let stop () = on := false

  let dropped () =
    Mutex.lock registry_mutex;
    let d = List.fold_left (fun a b -> a + b.b_dropped) 0 !all_bufs in
    Mutex.unlock registry_mutex;
    d

  let now_us () = (Unix.gettimeofday () -. !t0) *. 1e6

  let push b ev =
    let cap = Array.length b.b_events in
    if b.b_len = cap then begin
      (* full: overwrite the oldest *)
      b.b_events.(b.b_start) <- ev;
      b.b_start <- (b.b_start + 1) mod cap;
      b.b_dropped <- b.b_dropped + 1
    end
    else begin
      b.b_events.((b.b_start + b.b_len) mod cap) <- ev;
      b.b_len <- b.b_len + 1
    end

  (* The span-path phase label is only safe to read from the domain
     that owns the span stack, i.e. outside pool tasks. *)
  let current_phase b = if b.b_task >= 0 then "" else !span_path

  let record b payload =
    push b
      { ts = now_us (); dom = b.b_dom; group = b.b_group; task = b.b_task;
        phase = current_phase b; payload }

  let span_begin name = if !on then record (my_buf ()) (Span_begin name)
  let span_end name = if !on then record (my_buf ()) (Span_end name)

  let count name delta =
    if !on then begin
      let b = my_buf () in
      let coalesced =
        b.b_len > 0
        &&
        let cap = Array.length b.b_events in
        let i = (b.b_start + b.b_len - 1) mod cap in
        let last = b.b_events.(i) in
        match last.payload with
        | Count c
          when c.name = name && last.task = b.b_task
               && last.phase = current_phase b ->
          b.b_events.(i) <-
            { last with payload = Count { name; delta = c.delta + delta } };
          true
        | _ -> false
      in
      if not coalesced then record b (Count { name; delta })
    end

  let send ~round ~time ~kind ~src ~dst ~lam ~sseq =
    if !on then record (my_buf ()) (Send { round; time; kind; src; dst; lam; sseq })

  let deliver ~round ~time ~kind ~src ~dst ~lam ~sseq ~dseq =
    if !on then
      record (my_buf ()) (Deliver { round; time; kind; src; dst; lam; sseq; dseq })

  let alert ~round ~probe ~value ~limit ~node =
    if !on then record (my_buf ()) (Alert { round; probe; value; limit; node })

  let new_group () = Atomic.fetch_and_add group_counter 1

  let job_enter g =
    if !on then record (my_buf ()) (Job { group = g; enter = true })

  let job_leave g =
    if !on then record (my_buf ()) (Job { group = g; enter = false })

  let set_context ~group ~task =
    let b = my_buf () in
    b.b_group <- group;
    b.b_task <- task

  let buffer_events b =
    let cap = Array.length b.b_events in
    List.init b.b_len (fun i -> b.b_events.((b.b_start + i) mod cap))

  (* Deterministic merge: the exporting domain's stream keeps recorded
     order; every event recorded inside a pool job (group >= 0, from
     any domain including the caller's) is pulled out, stable-sorted by
     task index, and spliced back at that job's end marker.  Because a
     task runs entirely on one domain and each domain claims strictly
     increasing indices, within-task order is preserved and the merged
     (task, phase, payload) sequence is independent of worker count and
     scheduling. *)
  let events () =
    let me = (Domain.self () :> int) in
    ignore (my_buf () : buf);
    Mutex.lock registry_mutex;
    let bufs = !all_bufs in
    Mutex.unlock registry_mutex;
    let mine, others = List.partition (fun b -> b.b_dom = me) bufs in
    let grouped : (int, event list ref) Hashtbl.t = Hashtbl.create 16 in
    let add_grouped ev =
      match Hashtbl.find_opt grouped ev.group with
      | Some r -> r := ev :: !r
      | None -> Hashtbl.add grouped ev.group (ref [ ev ])
    in
    List.iter
      (fun b ->
        List.iter
          (fun ev -> if ev.group >= 0 then add_grouped ev)
          (buffer_events b))
      others;
    let main =
      List.concat_map buffer_events mine
      |> List.filter (fun ev ->
             if ev.group >= 0 then begin
               add_grouped ev;
               false
             end
             else true)
    in
    let by_task evs =
      List.stable_sort (fun a b -> compare a.task b.task) evs
    in
    let splice g =
      match Hashtbl.find_opt grouped g with
      | None -> []
      | Some r ->
        Hashtbl.remove grouped g;
        by_task (List.rev !r)
    in
    let rewrite ev =
      match ev.payload with
      | Job { enter = true; _ } -> { ev with payload = Span_begin "pool.job" }
      | Job { enter = false; _ } -> { ev with payload = Span_end "pool.job" }
      | _ -> ev
    in
    let merged =
      List.concat_map
        (fun ev ->
          match ev.payload with
          | Job { group = g; enter = false } -> splice g @ [ rewrite ev ]
          | _ -> [ rewrite ev ])
        main
    in
    (* groups whose end marker was lost to the ring: append in group order *)
    let leftovers =
      Hashtbl.fold (fun g r acc -> (g, by_task (List.rev !r)) :: acc) grouped []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.concat_map snd
    in
    merged @ leftovers

  (* Chrome trace-event format (Perfetto-loadable): one event object per
     line so {!read_chrome} can parse the exact subset back with Scanf,
     like Snapshot.of_json_lines.  [flows] pairs (send, deliver) events
     already present in [evs]; each pair becomes a flow arrow
     (ph "s"/"f") that viewers draw between the instants — read_chrome
     skips those lines so the event round-trip stays exact. *)
  let write_chrome ?(flows = []) fmt evs =
    let open Format in
    fprintf fmt "{\"traceEvents\":[";
    let totals : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let first = ref true in
    let sep () =
      if !first then begin
        first := false;
        fprintf fmt "@\n"
      end
      else fprintf fmt ",@\n"
    in
    let common ev =
      Printf.sprintf "\"ts\":%s,\"pid\":0,\"tid\":%d" (g17 ev.ts) ev.dom
    in
    let send_ev ev ~round ~time ~kind ~src ~dst ~lam ~sseq =
      fprintf fmt
        "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"dir\":\"send\",\"round\":%d,\"time\":%s,\"src\":%d,\"dst\":%d,\"lam\":%d,\"sseq\":%d,\"group\":%d,\"task\":%d}}"
        kind ev.phase (common ev) round (g17 time) src dst lam sseq ev.group
        ev.task
    in
    let recv_ev ev ~round ~time ~kind ~src ~dst ~lam ~sseq ~dseq =
      fprintf fmt
        "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"dir\":\"recv\",\"round\":%d,\"time\":%s,\"src\":%d,\"dst\":%d,\"lam\":%d,\"sseq\":%d,\"dseq\":%d,\"group\":%d,\"task\":%d}}"
        kind ev.phase (common ev) round (g17 time) src dst lam sseq dseq
        ev.group ev.task
    in
    let duration ev ph name =
      fprintf fmt
        "{\"name\":%S,\"cat\":%S,\"ph\":\"%s\",%s,\"args\":{\"group\":%d,\"task\":%d}}"
        name ev.phase ph (common ev) ev.group ev.task
    in
    List.iter
      (fun ev ->
        sep ();
        match ev.payload with
        | Span_begin name -> duration ev "B" name
        | Span_end name -> duration ev "E" name
        | Job { enter = true; _ } -> duration ev "B" "pool.job"
        | Job { enter = false; _ } -> duration ev "E" "pool.job"
        | Count { name; delta } ->
          let v =
            delta + Option.value ~default:0 (Hashtbl.find_opt totals name)
          in
          Hashtbl.replace totals name v;
          fprintf fmt
            "{\"name\":%S,\"cat\":%S,\"ph\":\"C\",%s,\"args\":{\"value\":%d,\"delta\":%d,\"group\":%d,\"task\":%d}}"
            name ev.phase (common ev) v delta ev.group ev.task
        | Send { round; time; kind; src; dst; lam; sseq } ->
          send_ev ev ~round ~time ~kind ~src ~dst ~lam ~sseq
        | Deliver { round; time; kind; src; dst; lam; sseq; dseq } ->
          recv_ev ev ~round ~time ~kind ~src ~dst ~lam ~sseq ~dseq
        | Alert { round; probe; value; limit; node } ->
          fprintf fmt
            "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"dir\":\"alert\",\"round\":%d,\"value\":%s,\"limit\":%s,\"node\":%d,\"group\":%d,\"task\":%d}}"
            probe ev.phase (common ev) round (g17 value) (g17 limit) node
            ev.group ev.task)
      evs;
    List.iteri
      (fun i ((s : event), (d : event)) ->
        sep ();
        fprintf fmt
          "{\"name\":\"critical-path\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":0,\"tid\":%d}"
          i (g17 s.ts) s.dom;
        sep ();
        fprintf fmt
          "{\"name\":\"critical-path\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":0,\"tid\":%d}"
          i (g17 d.ts) d.dom)
      flows;
    fprintf fmt "@\n]}@."

  let read_chrome s =
    let strip_comma l =
      let n = String.length l in
      if n > 0 && l.[n - 1] = ',' then String.sub l 0 (n - 1) else l
    in
    let try_duration line ph mk =
      Scanf.sscanf line
        "{\"name\":%S,\"cat\":%S,\"ph\":%S,\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"group\":%d,\"task\":%d}}"
        (fun name phase ph' ts dom group task ->
          if ph' <> ph then failwith "ph";
          { ts; dom; group; task; phase; payload = mk name })
    in
    let parse line =
      let attempts =
        [ (fun () -> try_duration line "B" (fun n -> Span_begin n));
          (fun () -> try_duration line "E" (fun n -> Span_end n));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"C\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"value\":%d,\"delta\":%d,\"group\":%d,\"task\":%d}}"
              (fun name phase ts dom _value delta group task ->
                { ts; dom; group; task; phase;
                  payload = Count { name; delta } }));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"dir\":\"send\",\"round\":%d,\"time\":%f,\"src\":%d,\"dst\":%d,\"lam\":%d,\"sseq\":%d,\"group\":%d,\"task\":%d}}"
              (fun kind phase ts dom round time src dst lam sseq group task ->
                { ts; dom; group; task; phase;
                  payload = Send { round; time; kind; src; dst; lam; sseq } }));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"dir\":\"recv\",\"round\":%d,\"time\":%f,\"src\":%d,\"dst\":%d,\"lam\":%d,\"sseq\":%d,\"dseq\":%d,\"group\":%d,\"task\":%d}}"
              (fun kind phase ts dom round time src dst lam sseq dseq group
                   task ->
                { ts; dom; group; task; phase;
                  payload =
                    Deliver { round; time; kind; src; dst; lam; sseq; dseq } }));
          (fun () ->
            Scanf.sscanf line
              "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%f,\"pid\":0,\"tid\":%d,\"args\":{\"dir\":\"alert\",\"round\":%d,\"value\":%f,\"limit\":%f,\"node\":%d,\"group\":%d,\"task\":%d}}"
              (fun probe phase ts dom round value limit node group task ->
                { ts; dom; group; task; phase;
                  payload = Alert { round; probe; value; limit; node } }))
        ]
      in
      let rec go = function
        | [] -> failwith ("Obs.Trace.read_chrome: bad line: " ^ line)
        | f :: rest -> (
          try f () with
          | Scanf.Scan_failure _ | End_of_file | Failure _ -> go rest)
      in
      go attempts
    in
    let flow_prefix = "{\"name\":\"critical-path\",\"cat\":\"flow\"" in
    let is_flow l =
      String.length l >= String.length flow_prefix
      && String.sub l 0 (String.length flow_prefix) = flow_prefix
    in
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = strip_comma (String.trim l) in
           if l = "" || l = "{\"traceEvents\":[" || l = "]}" || is_flow l then
             None
           else Some (parse l))

  type profile_row = {
    p_path : string;
    p_calls : int;
    p_total : float;
    p_self : float;
  }

  (* Walk span begin/end pairs per domain; self time is total minus the
     time attributed to spans opened (on the same domain) inside.
     Unmatched ends (their begin was overwritten in the ring) are
     dropped. *)
  let profile evs =
    let rows : (string, profile_row) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let stacks : (int, (string * float * float ref) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let stack dom =
      match Hashtbl.find_opt stacks dom with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
    in
    List.iter
      (fun ev ->
        match ev.payload with
        | Span_begin name ->
          let s = stack ev.dom in
          s := (name, ev.ts, ref 0.) :: !s
        | Span_end name -> (
          let s = stack ev.dom in
          match !s with
          | (n, t_begin, children) :: rest when n = name ->
            s := rest;
            let total_us = Float.max 0. (ev.ts -. t_begin) in
            let self_us = Float.max 0. (total_us -. !children) in
            (match rest with
            | (_, _, pc) :: _ -> pc := !pc +. total_us
            | [] -> ());
            let row =
              match Hashtbl.find_opt rows name with
              | Some r -> r
              | None ->
                order := name :: !order;
                { p_path = name; p_calls = 0; p_total = 0.; p_self = 0. }
            in
            Hashtbl.replace rows name
              { row with
                p_calls = row.p_calls + 1;
                p_total = row.p_total +. (total_us /. 1e6);
                p_self = row.p_self +. (self_us /. 1e6) }
          | _ -> ())
        | _ -> ())
      evs;
    List.rev_map (fun n -> Hashtbl.find rows n) !order

  let write_folded fmt evs =
    let semicolons p = String.map (fun c -> if c = '/' then ';' else c) p in
    profile evs
    |> List.sort (fun a b -> compare a.p_path b.p_path)
    |> List.iter (fun r ->
           Format.fprintf fmt "%s %.0f@." (semicolons r.p_path)
             (r.p_self *. 1e6))

  type audit_row = {
    a_phase : string;
    a_kind : string;
    a_sends : int;
    a_deliveries : int;
  }

  let message_audit evs =
    let tbl : (string * string, int ref * int ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let phase_order = ref [] in
    let cell phase kind =
      match Hashtbl.find_opt tbl (phase, kind) with
      | Some c -> c
      | None ->
        if not (List.mem phase !phase_order) then
          phase_order := phase :: !phase_order;
        let c = (ref 0, ref 0) in
        Hashtbl.add tbl (phase, kind) c;
        c
    in
    List.iter
      (fun ev ->
        match ev.payload with
        | Send { kind; _ } -> Stdlib.incr (fst (cell ev.phase kind))
        | Deliver { kind; _ } -> Stdlib.incr (snd (cell ev.phase kind))
        | _ -> ())
      evs;
    List.rev !phase_order
    |> List.concat_map (fun phase ->
           Hashtbl.fold
             (fun (p, k) (s, d) acc ->
               if p = phase then
                 { a_phase = p; a_kind = k; a_sends = !s; a_deliveries = !d }
                 :: acc
               else acc)
             tbl []
           |> List.sort (fun a b -> compare a.a_kind b.a_kind))

  let fit_loglog_slope pts =
    let pts = List.filter (fun (x, y) -> x > 0. && y > 0.) pts in
    match pts with
    | [] | [ _ ] -> nan
    | _ ->
      let n = float_of_int (List.length pts) in
      let sx, sy, sxx, sxy =
        List.fold_left
          (fun (sx, sy, sxx, sxy) (x, y) ->
            let lx = log x and ly = log y in
            (sx +. lx, sy +. ly, sxx +. (lx *. lx), sxy +. (lx *. ly)))
          (0., 0., 0., 0.) pts
      in
      let den = (n *. sxx) -. (sx *. sx) in
      if Float.abs den < 1e-12 then nan
      else ((n *. sxy) -. (sx *. sy)) /. den
end

(* Post-run happens-before analysis over the merged trace stream.

   The stream returned by [Trace.events] is a valid topological
   linearization of the happens-before DAG: each engine records a
   Deliver after the Send it matches, and per-node order in the stream
   follows per-node program order.  One forward pass therefore suffices
   for the longest-chain dynamic program — O(E) time and space in the
   number of protocol events, with hash lookups keyed by (src, sseq).

   Matching is per span path ("phase"): every [Engine.run] gets a fresh
   [Stamp.t], so (src, sseq) pairs repeat across phases but are unique
   within one.  When a phase hosts two runs (no spans around either),
   a later Send overwrites its key and subsequent Delivers match the
   most recent preceding Send, which is the only causally-possible one
   in a sequential stream.

   Everything here depends only on (phase, payload) projections of the
   stream, which [Trace.events] guarantees to be bit-identical across
   worker counts — so causal statistics are too. *)
module Causal = struct
  type violation =
    | Orphan_deliver of {
        phase : string;
        src : int;
        dst : int;
        sseq : int;
        index : int;
      }
    | Clock_regression of {
        phase : string;
        node : int;
        lam : int;
        prev : int;
        index : int;
      }

  let pp_violation fmt = function
    | Orphan_deliver { phase; src; dst; sseq; index } ->
      Format.fprintf fmt
        "orphan deliver: event %d (phase %S) delivers (src %d, sseq %d) to \
         node %d with no matching send before it"
        index phase src sseq dst
    | Clock_regression { phase; node; lam; prev; index } ->
      Format.fprintf fmt
        "clock regression: event %d (phase %S) stamps node %d with lam %d, \
         not above the preceding %d"
        index phase node lam prev

  type step = {
    s_index : int;  (* position in the analyzed stream *)
    s_dir : [ `Send | `Deliver ];
    s_kind : string;
    s_node : int;  (* acting node: sender for sends, receiver for delivers *)
    s_round : int;
    s_time : float;
    s_depth : int;  (* longest causal chain, in message hops, ending here *)
  }

  type phase_report = {
    ph_phase : string;
    ph_events : int;
    ph_depth : int;  (* critical-path length in message hops *)
    ph_rounds : int;  (* engine rounds spanned by the critical path *)
    ph_span_time : float;  (* simulated time along the critical path *)
    ph_width : (int * int) list;  (* events per causal depth, 0..ph_depth *)
    ph_path : step list;  (* the critical path, root first *)
    ph_attribution : (int * int) list;
        (* node -> critical-path events, most-loaded first *)
  }

  type report = {
    r_phases : phase_report list;  (* first-seen stream order *)
    r_depth : int;  (* end-to-end: phases run sequentially, so depths add *)
    r_rounds : int;
    r_span_time : float;
    r_violations : violation list;  (* stream order *)
  }

  (* internal per-event record of the longest-chain DP *)
  type xev = {
    x_index : int;
    x_dir : [ `Send | `Deliver ];
    x_kind : string;
    x_node : int;
    x_round : int;
    x_time : float;
    x_lam : int;
    x_depth : int;
    x_tdepth : float;
    x_prev : int option;  (* program-order predecessor on the same node *)
    x_send : int option;  (* matching send, for delivers *)
    x_parent : int option;  (* the predecessor achieving x_depth *)
  }

  type pstate = {
    mutable p_evs : xev list;  (* reverse stream order *)
    mutable p_count : int;
    p_last : (int, xev) Hashtbl.t;  (* node -> its latest event *)
    p_clock : (int, int) Hashtbl.t;  (* node -> last lam seen *)
    p_sends : (int * int, xev) Hashtbl.t;  (* (src, sseq) -> send *)
    mutable p_best : xev option;  (* first deepest event *)
  }

  let scan evs =
    let phases : (string, pstate) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    let by_index : (int, xev) Hashtbl.t = Hashtbl.create 1024 in
    let violations = ref [] in
    let state phase =
      match Hashtbl.find_opt phases phase with
      | Some s -> s
      | None ->
        let s =
          { p_evs = []; p_count = 0; p_last = Hashtbl.create 64;
            p_clock = Hashtbl.create 64; p_sends = Hashtbl.create 256;
            p_best = None }
        in
        Hashtbl.add phases phase s;
        order := phase :: !order;
        s
    in
    let clock_check st phase node lam i =
      (match Hashtbl.find_opt st.p_clock node with
      | Some prev when lam <= prev ->
        violations :=
          Clock_regression { phase; node; lam; prev; index = i } :: !violations
      | _ -> ());
      Hashtbl.replace st.p_clock node lam
    in
    let put st x =
      st.p_evs <- x :: st.p_evs;
      st.p_count <- st.p_count + 1;
      Hashtbl.replace st.p_last x.x_node x;
      Hashtbl.replace by_index x.x_index x;
      match st.p_best with
      | Some b when b.x_depth >= x.x_depth -> ()
      | _ -> st.p_best <- Some x
    in
    List.iteri
      (fun i (ev : Trace.event) ->
        let phase = ev.Trace.phase in
        match ev.Trace.payload with
        | Trace.Send { round; time; kind; src; lam; sseq; _ } ->
          let st = state phase in
          let prev = Hashtbl.find_opt st.p_last src in
          let depth, tdepth, prev_i =
            match prev with
            | Some p -> (p.x_depth, p.x_tdepth, Some p.x_index)
            | None -> (0, 0., None)
          in
          clock_check st phase src lam i;
          let x =
            { x_index = i; x_dir = `Send; x_kind = kind; x_node = src;
              x_round = round; x_time = time; x_lam = lam; x_depth = depth;
              x_tdepth = tdepth; x_prev = prev_i; x_send = None;
              x_parent = prev_i }
          in
          Hashtbl.replace st.p_sends (src, sseq) x;
          put st x
        | Trace.Deliver { round; time; kind; src; dst; lam; sseq; _ } ->
          let st = state phase in
          let prev = Hashtbl.find_opt st.p_last dst in
          let sender = Hashtbl.find_opt st.p_sends (src, sseq) in
          (match sender with
          | None ->
            violations :=
              Orphan_deliver { phase; src; dst; sseq; index = i }
              :: !violations
          | Some s ->
            (* the Lamport edge property: a deliver stamp dominates its
               send stamp even when the receiver was otherwise idle *)
            if lam <= s.x_lam then
              violations :=
                Clock_regression
                  { phase; node = dst; lam; prev = s.x_lam; index = i }
                :: !violations);
          let depth, tdepth, parent =
            match (prev, sender) with
            | None, None -> (0, 0., None)
            | Some p, None -> (p.x_depth, p.x_tdepth, Some p.x_index)
            | prev, Some s -> (
              let sd = s.x_depth + 1 in
              let stt = s.x_tdepth +. Float.max 0. (time -. s.x_time) in
              match prev with
              | Some p when p.x_depth > sd ->
                (p.x_depth, p.x_tdepth, Some p.x_index)
              | _ -> (sd, stt, Some s.x_index))
          in
          clock_check st phase dst lam i;
          put st
            { x_index = i; x_dir = `Deliver; x_kind = kind; x_node = dst;
              x_round = round; x_time = time; x_lam = lam; x_depth = depth;
              x_tdepth = tdepth;
              x_prev = Option.map (fun (p : xev) -> p.x_index) prev;
              x_send = Option.map (fun (s : xev) -> s.x_index) sender;
              x_parent = parent }
        | _ -> ())
      evs;
    (phases, List.rev !order, by_index, List.rev !violations)

  let analyze evs =
    let phases, order, by_index, violations = scan evs in
    let phase_report phase =
      let st = Hashtbl.find phases phase in
      let best = st.p_best in
      let path =
        let rec walk acc = function
          | None -> acc
          | Some i ->
            let x = Hashtbl.find by_index i in
            walk (x :: acc) x.x_parent
        in
        match best with None -> [] | Some b -> walk [] (Some b.x_index)
      in
      let steps =
        List.map
          (fun x ->
            { s_index = x.x_index; s_dir = x.x_dir; s_kind = x.x_kind;
              s_node = x.x_node; s_round = x.x_round; s_time = x.x_time;
              s_depth = x.x_depth })
          path
      in
      let rounds =
        match
          List.filter_map
            (fun x -> if x.x_round >= 0 then Some x.x_round else None)
            path
        with
        | [] -> 0
        | r :: rest ->
          let mn = List.fold_left min r rest in
          let mx = List.fold_left max r rest in
          mx - mn + 1
      in
      let width =
        let tbl : (int, int) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun x ->
            Hashtbl.replace tbl x.x_depth
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x.x_depth)))
          st.p_evs;
        let maxd = match best with Some b -> b.x_depth | None -> -1 in
        List.init (maxd + 1) (fun d ->
            (d, Option.value ~default:0 (Hashtbl.find_opt tbl d)))
      in
      let attribution =
        let tbl : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
        let nodes = ref [] in
        List.iter
          (fun x ->
            match Hashtbl.find_opt tbl x.x_node with
            | Some r -> Stdlib.incr r
            | None ->
              nodes := x.x_node :: !nodes;
              Hashtbl.add tbl x.x_node (ref 1))
          path;
        List.rev_map (fun nd -> (nd, !(Hashtbl.find tbl nd))) !nodes
        |> List.sort (fun (n1, c1) (n2, c2) ->
               if c1 <> c2 then compare c2 c1 else compare n1 n2)
      in
      { ph_phase = phase; ph_events = st.p_count;
        ph_depth = (match best with Some b -> b.x_depth | None -> 0);
        ph_rounds = rounds;
        ph_span_time = (match best with Some b -> b.x_tdepth | None -> 0.);
        ph_width = width; ph_path = steps; ph_attribution = attribution }
    in
    let phase_reports = List.map phase_report order in
    { r_phases = phase_reports;
      r_depth = List.fold_left (fun a p -> a + p.ph_depth) 0 phase_reports;
      r_rounds = List.fold_left (fun a p -> a + p.ph_rounds) 0 phase_reports;
      r_span_time =
        List.fold_left (fun a p -> a +. p.ph_span_time) 0. phase_reports;
      r_violations = violations }

  (* Critical-path (send, deliver) pairs resolved back to the events
     they index, ready for [Trace.write_chrome ~flows].  A Deliver
     following a Send on the path can only have been reached over the
     message edge (program order never crosses nodes). *)
  let flows evs (r : report) =
    let arr = Array.of_list evs in
    List.concat_map
      (fun ph ->
        let rec pairs = function
          | a :: (b :: _ as rest) ->
            if a.s_dir = `Send && b.s_dir = `Deliver then
              (arr.(a.s_index), arr.(b.s_index)) :: pairs rest
            else pairs rest
          | _ -> []
        in
        pairs ph.ph_path)
      r.r_phases

  (* DOT dump of the happens-before DAG, meant for small n: solid edges
     are message (Send -> Deliver) edges, dashed edges per-node program
     order, and the critical path is red. *)
  let write_dot fmt evs =
    let phases, order, _, _ = scan evs in
    let r = analyze evs in
    let crit : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun ph ->
        let rec mark = function
          | a :: (b :: _ as rest) ->
            Hashtbl.replace crit (a.s_index, b.s_index) ();
            mark rest
          | _ -> ()
        in
        mark ph.ph_path)
      r.r_phases;
    let esc s =
      let b = Buffer.create (String.length s + 4) in
      String.iter
        (fun c ->
          match c with
          | '\\' -> Buffer.add_string b "\\\\"
          | '"' -> Buffer.add_string b "\\\""
          | '\n' -> Buffer.add_string b "\\n"
          | c -> Buffer.add_char b c)
        s;
      Buffer.contents b
    in
    Format.fprintf fmt "digraph happens_before {@\n";
    Format.fprintf fmt "  rankdir=LR;@\n  node [shape=box,fontsize=9];@\n";
    List.iteri
      (fun ci phase ->
        let st = Hashtbl.find phases phase in
        Format.fprintf fmt "  subgraph cluster_%d {@\n    label=\"%s\";@\n" ci
          (esc phase);
        List.iter
          (fun x ->
            Format.fprintf fmt "    e%d [label=\"%s %s n%d r%d d%d\"];@\n"
              x.x_index
              (match x.x_dir with `Send -> "S" | `Deliver -> "D")
              (esc x.x_kind) x.x_node x.x_round x.x_depth)
          (List.rev st.p_evs);
        Format.fprintf fmt "  }@\n")
      order;
    List.iter
      (fun phase ->
        let st = Hashtbl.find phases phase in
        List.iter
          (fun x ->
            let edge style p =
              let red =
                if Hashtbl.mem crit (p, x.x_index) then ",color=red,penwidth=2"
                else ""
              in
              Format.fprintf fmt "  e%d -> e%d [style=%s%s];@\n" p x.x_index
                style red
            in
            Option.iter (edge "dashed") x.x_prev;
            Option.iter (edge "solid") x.x_send)
          (List.rev st.p_evs))
      order;
    Format.fprintf fmt "}@."
end

let counter name = registered counters name (fun () -> { c_name = name; c_value = 0 })

let incr c =
  if !on then begin
    c.c_value <- c.c_value + 1;
    if !Trace.on then Trace.count c.c_name 1
  end

let add c n =
  if !on then begin
    c.c_value <- c.c_value + n;
    if !Trace.on then Trace.count c.c_name n
  end

let value c = c.c_value

let dist name =
  registered dists name (fun () ->
      { d_count = 0; d_sum = 0.; d_sumsq = 0.; d_min = infinity;
        d_max = neg_infinity })

let observe d v =
  if !on then begin
    d.d_count <- d.d_count + 1;
    d.d_sum <- d.d_sum +. v;
    d.d_sumsq <- d.d_sumsq +. (v *. v);
    if v < d.d_min then d.d_min <- v;
    if v > d.d_max then d.d_max <- v
  end

let gauge name =
  registered gauges name (fun () -> { g_value = nan; g_set = false })

let set_gauge g v =
  if !on then begin
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_value g = g.g_value

let histogram name = registered hists name Histogram.create
let observe_hist h v = if !on then Histogram.observe h v
let merge_hist ~into src = if !on then Histogram.merge_into ~into src

(* GC sampling is its own switch, like Trace: a single load-and-branch
   at each span boundary when armed, nothing at all when not. *)
let gc_gauges = ref false
let gc_sampling () = !gc_gauges
let set_gc_sampling b = gc_gauges := b

let g_gc_minor = gauge "gc.minor_words"
let g_gc_major = gauge "gc.major_words"
let g_gc_heap = gauge "gc.heap_words"
let g_gc_minor_n = gauge "gc.minor_collections"
let g_gc_major_n = gauge "gc.major_collections"
let g_gc_compact = gauge "gc.compactions"

let sample_gc () =
  let s = Gc.quick_stat () in
  set_gauge g_gc_minor s.Gc.minor_words;
  set_gauge g_gc_major s.Gc.major_words;
  set_gauge g_gc_heap (float_of_int s.Gc.heap_words);
  set_gauge g_gc_minor_n (float_of_int s.Gc.minor_collections);
  set_gauge g_gc_major_n (float_of_int s.Gc.major_collections);
  set_gauge g_gc_compact (float_of_int s.Gc.compactions)

(* The one wall clock exported to the rest of the library: D003 keeps
   raw [Unix.gettimeofday]/[Sys.time] out of every other lib, so code
   that must stamp real time (the serve engine's latency samples)
   reads it through here.  Stateless, hence safe from any domain. *)
let clock_us () = Unix.gettimeofday () *. 1e6

let span name f =
  if not !on then f ()
  else begin
    let parent = !span_path in
    let path = if parent = "" then name else parent ^ "/" ^ name in
    let cell =
      match Hashtbl.find_opt spans path with
      | Some c -> c
      | None ->
        let c = { s_calls = 0; s_seconds = 0. } in
        Mutex.lock registration_mutex;
        Hashtbl.add spans path c;
        span_order := path :: !span_order;
        Mutex.unlock registration_mutex;
        c
    in
    if !Trace.on then Trace.span_begin path;
    if !gc_gauges then sample_gc ();
    span_path := path;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        cell.s_calls <- cell.s_calls + 1;
        cell.s_seconds <- cell.s_seconds +. (Unix.gettimeofday () -. t0);
        span_path := parent;
        if !gc_gauges then sample_gc ();
        if !Trace.on then Trace.span_end path)
      f
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ d ->
      d.d_count <- 0;
      d.d_sum <- 0.;
      d.d_sumsq <- 0.;
      d.d_min <- infinity;
      d.d_max <- neg_infinity)
    dists;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- nan;
      g.g_set <- false)
    gauges;
  Hashtbl.iter (fun _ h -> Histogram.reset h) hists;
  Mutex.lock registration_mutex;
  Hashtbl.reset spans;
  span_order := [];
  Mutex.unlock registration_mutex;
  span_path := ""

(* The flight recorder: an always-on, bounded, per-domain ring of
   recent typed events.  Unlike [Trace] (armed per run, high volume,
   per-message granularity) the recorder holds only coarse milestones —
   batch summaries, epoch publishes, monitor violations, GC major
   slices — a few per second at most, so it is cheap enough to leave
   recording in production and dump on demand: [GET /debug/ring], a
   monitor violation, or SIGUSR2 (the CLI installs the handler).
   Events carry a global sequence number from one atomic counter so a
   dump merges the per-domain rings into one causal order. *)
module Recorder = struct
  type event =
    | Batch of { batch : int; queries : int; epoch : int; wall_us : float }
    | Epoch_published of { epoch : int; nodes : int }
    | Monitor_violation of {
        round : int;
        probe : string;
        value : float;
        limit : float;
        node : int;
      }
    | Gc_major of { heap_words : int; major_collections : int }
    | Note of string

  type entry = { e_seq : int; e_dom : int; e_t_us : float; e_event : event }

  let dummy = { e_seq = -1; e_dom = 0; e_t_us = 0.; e_event = Note "" }

  type buf = {
    b_dom : int;
    mutable b_entries : entry array;
    mutable b_start : int;
    mutable b_len : int;
  }

  let ring_mutex = Mutex.create ()
  let all_bufs : buf list ref = ref []
  let capacity = ref 256
  let seq = Atomic.make 0

  let fresh_buf () =
    let b =
      { b_dom = (Domain.self () :> int);
        b_entries = Array.make !capacity dummy; b_start = 0; b_len = 0 }
    in
    Mutex.lock ring_mutex;
    all_bufs := b :: !all_bufs;
    Mutex.unlock ring_mutex;
    b

  let key = Domain.DLS.new_key fresh_buf

  let set_capacity cap =
    let cap = max 1 cap in
    Mutex.lock ring_mutex;
    capacity := cap;
    List.iter
      (fun b ->
        b.b_entries <- Array.make cap dummy;
        b.b_start <- 0;
        b.b_len <- 0)
      !all_bufs;
    Mutex.unlock ring_mutex

  let clear () =
    Mutex.lock ring_mutex;
    List.iter
      (fun b ->
        Array.fill b.b_entries 0 (Array.length b.b_entries) dummy;
        b.b_start <- 0;
        b.b_len <- 0)
      !all_bufs;
    Mutex.unlock ring_mutex;
    Atomic.set seq 0

  let record ev =
    let b = Domain.DLS.get key in
    let e =
      { e_seq = Atomic.fetch_and_add seq 1; e_dom = b.b_dom;
        e_t_us = clock_us (); e_event = ev }
    in
    let cap = Array.length b.b_entries in
    if b.b_len = cap then begin
      (* full: overwrite the oldest *)
      b.b_entries.(b.b_start) <- e;
      b.b_start <- (b.b_start + 1) mod cap
    end
    else begin
      b.b_entries.((b.b_start + b.b_len) mod cap) <- e;
      b.b_len <- b.b_len + 1
    end

  let entries () =
    Mutex.lock ring_mutex;
    let bufs = !all_bufs in
    Mutex.unlock ring_mutex;
    List.concat_map
      (fun b ->
        let cap = Array.length b.b_entries in
        List.init b.b_len (fun i -> b.b_entries.((b.b_start + i) mod cap)))
      bufs
    |> List.sort (fun a b -> compare a.e_seq b.e_seq)

  let json_of_entry e =
    let common = Printf.sprintf "\"seq\":%d,\"dom\":%d,\"t_us\":%s" e.e_seq e.e_dom (g17 e.e_t_us) in
    match e.e_event with
    | Batch { batch; queries; epoch; wall_us } ->
      Printf.sprintf
        "{%s,\"kind\":\"batch\",\"batch\":%d,\"queries\":%d,\"epoch\":%d,\"wall_us\":%s}"
        common batch queries epoch (g17 wall_us)
    | Epoch_published { epoch; nodes } ->
      Printf.sprintf "{%s,\"kind\":\"epoch\",\"epoch\":%d,\"nodes\":%d}" common
        epoch nodes
    | Monitor_violation { round; probe; value; limit; node } ->
      Printf.sprintf
        "{%s,\"kind\":\"violation\",\"round\":%d,\"probe\":%S,\"value\":%s,\"limit\":%s,\"node\":%d}"
        common round probe (g17 value) (g17 limit) node
    | Gc_major { heap_words; major_collections } ->
      Printf.sprintf
        "{%s,\"kind\":\"gc_major\",\"heap_words\":%d,\"major_collections\":%d}"
        common heap_words major_collections
    | Note text -> Printf.sprintf "{%s,\"kind\":\"note\",\"text\":%S}" common text

  (* the whole ring as one JSON array, oldest first *)
  let to_json_string () =
    let b = Buffer.create 1024 in
    Buffer.add_string b "[";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '\n';
        Buffer.add_string b (json_of_entry e))
      (entries ());
    Buffer.add_string b "\n]\n";
    Buffer.contents b

  let dump fmt () = Format.fprintf fmt "%s@?" (to_json_string ())

  (* GC major-slice events come from a [Gc.create_alarm] callback; the
     alarm is armed explicitly (the CLI arms it for serve/monitor runs)
     so allocation-gated benchmarks are not perturbed by default. *)
  let gc_alarm : Gc.alarm option ref = ref None

  let arm_gc_alarm () =
    match !gc_alarm with
    | Some _ -> ()
    | None ->
      gc_alarm :=
        Some
          (Gc.create_alarm (fun () ->
               let s = Gc.quick_stat () in
               record
                 (Gc_major
                    { heap_words = s.Gc.heap_words;
                      major_collections = s.Gc.major_collections })))

  let disarm_gc_alarm () =
    match !gc_alarm with
    | Some a ->
      Gc.delete_alarm a;
      gc_alarm := None
    | None -> ()
end

(* The P-squared streaming quantile estimator (Jain & Chlamtac, CACM
   1985), extended variant: for target quantiles q_1 < ... < q_m it
   keeps 2m+3 markers at probabilities 0, q_1/2, q_1, (q_1+q_2)/2,
   ..., q_m, (1+q_m)/2, 1.  Each observation shifts markers by at most
   one position, adjusting heights with a piecewise-parabolic fit
   (falling back to linear when the parabola would break height
   ordering), so heights stay sorted and quantile estimates are
   monotone in q.  Until the stream is as long as the marker count the
   raw samples are kept and answers are exact. *)
module Sketch = struct
  type t = {
    targets : float list;
    probs : float array; (* marker probabilities, increasing, 0 and 1 incl. *)
    heights : float array; (* marker heights q_i *)
    pos : float array; (* actual marker positions n_i (1-based) *)
    mutable count : int;
    buffer : float array; (* first observations, exact mode *)
  }

  let create ?(quantiles = [ 0.5; 0.9; 0.99 ]) () =
    if quantiles = [] then invalid_arg "Obs.Sketch.create: no quantiles";
    List.iter
      (fun q ->
        if not (q > 0. && q < 1.) then
          invalid_arg "Obs.Sketch.create: quantile outside (0, 1)")
      quantiles;
    let qs = List.sort_uniq compare quantiles in
    let m = List.length qs in
    let probs = Array.make ((2 * m) + 3) 0. in
    List.iteri (fun i q -> probs.((2 * i) + 2) <- q) qs;
    probs.((2 * m) + 2) <- 1.;
    (* midpoints between consecutive principal markers *)
    for i = 0 to m do
      probs.((2 * i) + 1) <- (probs.(2 * i) +. probs.((2 * i) + 2)) /. 2.
    done;
    let k = Array.length probs in
    {
      targets = qs;
      probs;
      heights = Array.make k 0.;
      pos = Array.make k 0.;
      count = 0;
      buffer = Array.make k 0.;
    }

  let targets t = t.targets
  let count t = t.count

  let reset t =
    t.count <- 0

  let markers t = Array.length t.probs

  (* leave exact mode: sort the buffer into the initial marker heights *)
  let init_markers t =
    let k = markers t in
    Array.sort compare t.buffer;
    Array.blit t.buffer 0 t.heights 0 k;
    for i = 0 to k - 1 do
      t.pos.(i) <- float_of_int (i + 1)
    done

  let parabolic t i s =
    let q = t.heights and n = t.pos in
    q.(i)
    +. s
       /. (n.(i + 1) -. n.(i - 1))
       *. (((n.(i) -. n.(i - 1) +. s) *. (q.(i + 1) -. q.(i))
            /. (n.(i + 1) -. n.(i)))
          +. ((n.(i + 1) -. n.(i) -. s) *. (q.(i) -. q.(i - 1))
             /. (n.(i) -. n.(i - 1))))

  let linear t i s =
    let q = t.heights and n = t.pos in
    let j = i + int_of_float s in
    q.(i) +. (s *. (q.(j) -. q.(i)) /. (n.(j) -. n.(i)))

  let observe t x =
    let k = markers t in
    if t.count < k then begin
      t.buffer.(t.count) <- x;
      t.count <- t.count + 1;
      if t.count = k then init_markers t
    end
    else begin
      t.count <- t.count + 1;
      let q = t.heights and n = t.pos in
      (* locate the cell and stretch the extremes *)
      let cell =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(k - 1) then begin
          q.(k - 1) <- x;
          k - 2
        end
        else begin
          let j = ref 0 in
          while not (x >= q.(!j) && x < q.(!j + 1)) do
            Stdlib.incr j
          done;
          !j
        end
      in
      for i = cell + 1 to k - 1 do
        n.(i) <- n.(i) +. 1.
      done;
      (* adjust interior markers toward their desired positions *)
      for i = 1 to k - 2 do
        let desired = 1. +. (float_of_int (t.count - 1) *. t.probs.(i)) in
        let d = desired -. n.(i) in
        if
          (d >= 1. && n.(i + 1) -. n.(i) > 1.)
          || (d <= -1. && n.(i - 1) -. n.(i) < -1.)
        then begin
          let s = if d >= 0. then 1. else -1. in
          let h = parabolic t i s in
          if q.(i - 1) < h && h < q.(i + 1) then q.(i) <- h
          else q.(i) <- linear t i s;
          n.(i) <- n.(i) +. s
        end
      done
    end

  (* piecewise-linear interpolation over (probability, height) points;
     in exact mode the sorted sample at rank q*(n-1) with linear
     interpolation between neighbours *)
  let quantile t q =
    if t.count = 0 then nan
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let interp xs ys m =
        (* xs increasing (weakly); find the bracketing pair *)
        if q <= xs.(0) then ys.(0)
        else if q >= xs.(m - 1) then ys.(m - 1)
        else begin
          let i = ref 0 in
          while xs.(!i + 1) < q do
            Stdlib.incr i
          done;
          let x0 = xs.(!i) and x1 = xs.(!i + 1) in
          if x1 -. x0 <= 0. then ys.(!i + 1)
          else
            let w = (q -. x0) /. (x1 -. x0) in
            ys.(!i) +. (w *. (ys.(!i + 1) -. ys.(!i)))
        end
      in
      if t.count < markers t then begin
        let m = t.count in
        let sorted = Array.sub t.buffer 0 m in
        Array.sort compare sorted;
        if m = 1 then sorted.(0)
        else begin
          let xs =
            Array.init m (fun i -> float_of_int i /. float_of_int (m - 1))
          in
          interp xs sorted m
        end
      end
      else begin
        let k = markers t in
        let denom = float_of_int (t.count - 1) in
        let xs =
          Array.init k (fun i ->
              if denom <= 0. then t.probs.(i) else (t.pos.(i) -. 1.) /. denom)
        in
        interp xs t.heights k
      end
    end

  let min_value t =
    if t.count = 0 then nan
    else if t.count < markers t then
      Array.fold_left Float.min infinity (Array.sub t.buffer 0 t.count)
    else t.heights.(0)

  let max_value t =
    if t.count = 0 then nan
    else if t.count < markers t then
      Array.fold_left Float.max neg_infinity (Array.sub t.buffer 0 t.count)
    else t.heights.(markers t - 1)

  (* replay a sketch's contents into [into]: raw samples while in exact
     mode, otherwise each marker height weighted by the count mass
     between it and its predecessor, so counts add exactly *)
  let replay_into into t =
    if t.count < markers t then
      for i = 0 to t.count - 1 do
        observe into t.buffer.(i)
      done
    else begin
      let k = markers t in
      let prev = ref 0. in
      for i = 0 to k - 1 do
        let w =
          if i = k - 1 then t.count - int_of_float !prev
          else
            let here = Float.round t.pos.(i) in
            let w = int_of_float (here -. !prev) in
            prev := here;
            w
        in
        for _ = 1 to max 0 w do
          observe into t.heights.(i)
        done
      done
    end

  let merge a b =
    let t = create ~quantiles:a.targets () in
    replay_into t a;
    replay_into t b;
    t
end

(* Round-clock telemetry: named probes recorded per round, with one
   Sketch per probe summarizing the full run.  Pull probes registered
   with [register] are sampled by [sample]; anything can also push
   values directly with [record]. *)
module Telemetry = struct
  type cell = {
    mutable t_fn : (unit -> float) option;
    mutable t_values : (int * float) list; (* reversed *)
    t_sketch : Sketch.t;
  }

  type t = {
    tbl : (string, cell) Hashtbl.t;
    mutable order : string list; (* registration order, reversed *)
    mutable t_rounds : int list; (* reversed *)
  }

  let create () = { tbl = Hashtbl.create 16; order = []; t_rounds = [] }

  let cell t name =
    match Hashtbl.find_opt t.tbl name with
    | Some c -> c
    | None ->
      let c =
        { t_fn = None; t_values = [];
          t_sketch = Sketch.create () }
      in
      Hashtbl.add t.tbl name c;
      t.order <- name :: t.order;
      c

  let register t name fn = (cell t name).t_fn <- Some fn

  let note_round t round =
    match t.t_rounds with
    | r :: _ when r = round -> ()
    | _ -> t.t_rounds <- round :: t.t_rounds

  let record t ~round name v =
    note_round t round;
    let c = cell t name in
    c.t_values <- (round, v) :: c.t_values;
    Sketch.observe c.t_sketch v

  let sample t ~round =
    note_round t round;
    List.iter
      (fun name ->
        let c = Hashtbl.find t.tbl name in
        match c.t_fn with
        | Some fn -> record t ~round name (fn ())
        | None -> ())
      (List.rev t.order)

  let rounds t = List.rev t.t_rounds
  let names t = List.sort compare (List.rev t.order)

  let series t name =
    match Hashtbl.find_opt t.tbl name with
    | None -> []
    | Some c -> List.rev c.t_values

  let last t name =
    match Hashtbl.find_opt t.tbl name with
    | None | Some { t_values = []; _ } -> None
    | Some { t_values = (_, v) :: _; _ } -> Some v

  let sketch t name =
    Option.map (fun c -> c.t_sketch) (Hashtbl.find_opt t.tbl name)

  let reset t =
    Hashtbl.reset t.tbl;
    t.order <- [];
    t.t_rounds <- []

  (* rows in round order, names sorted within a round *)
  let rows t =
    let ns = names t in
    List.map
      (fun round ->
        ( round,
          List.filter_map
            (fun name ->
              List.assoc_opt round (series t name)
              |> Option.map (fun v -> (name, v)))
            ns ))
      (rounds t)

  let write_jsonl fmt t =
    List.iter
      (fun (round, cells) ->
        List.iter
          (fun (name, v) ->
            Format.fprintf fmt
              "{\"kind\":\"telemetry\",\"round\":%d,\"name\":%S,\"value\":%s}@."
              round name (g17 v))
          cells)
      (rows t)

  let read_jsonl s =
    let parse line =
      try
        Scanf.sscanf line
          "{\"kind\":\"telemetry\",\"round\":%d,\"name\":%S,\"value\":%f}"
          (fun round name v -> (round, name, v))
      with Scanf.Scan_failure _ | End_of_file | Failure _ ->
        failwith ("Obs.Telemetry.read_jsonl: bad line: " ^ line)
    in
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" then None else Some (parse l))
    |> List.fold_left
         (fun acc (round, name, v) ->
           match acc with
           | (r, cells) :: rest when r = round ->
             (r, (name, v) :: cells) :: rest
           | _ -> (round, [ (name, v) ]) :: acc)
         []
    |> List.rev_map (fun (r, cells) -> (r, List.rev cells))

  let write_csv fmt t =
    let ns = names t in
    Format.fprintf fmt "round%s@."
      (String.concat "" (List.map (fun n -> "," ^ n) ns));
    List.iter
      (fun (round, cells) ->
        Format.fprintf fmt "%d%s@." round
          (String.concat ""
             (List.map
                (fun n ->
                  match List.assoc_opt n cells with
                  | Some v -> "," ^ g17 v
                  | None -> ",")
                ns)))
      (rows t)

  let spark_bars =
    [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
       "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

  (* Degenerate series need care: a constant or single-sample series
     has hi = lo (scale to the middle bar, never divide by the zero
     range), and an infinite sample must pin to the extreme bar rather
     than poison the scale of its finite neighbours. *)
  let sparkline vs =
    match List.filter (fun v -> not (Float.is_nan v)) vs with
    | [] -> ""
    | vs ->
      let finite = List.filter Float.is_finite vs in
      let lo = List.fold_left Float.min infinity finite in
      let hi = List.fold_left Float.max neg_infinity finite in
      let pick v =
        if Float.is_nan v then spark_bars.(3)
        else if v > hi then spark_bars.(7) (* +inf, or all-infinite series *)
        else if v < lo then spark_bars.(0) (* -inf *)
        else if hi -. lo <= 0. then spark_bars.(3)
        else
          let i =
            int_of_float (Float.round ((v -. lo) /. (hi -. lo) *. 7.))
          in
          spark_bars.(max 0 (min 7 i))
      in
      String.concat "" (List.map pick vs)
end

module Snapshot = struct
  type dist_stats = {
    count : int;
    sum : float;
    sumsq : float;
    min : float;
    max : float;
  }

  type span_stats = { path : string; calls : int; seconds : float }

  type hist_stats = { h_count : int; h_sum : float; h_buckets : int array }

  type t = {
    counters : (string * int) list;
    dists : (string * dist_stats) list;
    spans : span_stats list;
    gauges : (string * float) list;
    hists : (string * hist_stats) list;
  }

  let dist_mean d = if d.count = 0 then 0. else d.sum /. float_of_int d.count

  let dist_stddev d =
    if d.count = 0 then 0.
    else
      let n = float_of_int d.count in
      let m = d.sum /. n in
      sqrt (Float.max 0. ((d.sumsq /. n) -. (m *. m)))

  let hist_quantile (h : hist_stats) q =
    Histogram.quantile_of ~count:h.h_count h.h_buckets q

  let hist_mean (h : hist_stats) =
    if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count

  (* nonzero buckets as "index:count;index:count" — compact, exact, and
     Scanf-parsable through %S in the JSON lines *)
  let hist_buckets_string (b : int array) =
    let out = ref [] in
    Array.iteri
      (fun i c -> if c <> 0 then out := Printf.sprintf "%d:%d" i c :: !out)
      b;
    String.concat ";" (List.rev !out)

  let hist_buckets_of_string s =
    let b = Array.make Histogram.buckets_len 0 in
    if String.trim s <> "" then
      List.iter
        (fun part ->
          match String.split_on_char ':' part with
          | [ i; c ] -> b.(int_of_string i) <- int_of_string c
          | _ -> failwith ("Obs.Snapshot: bad buckets field: " ^ s))
        (String.split_on_char ';' s);
    b

  (* The capture holds the registration mutex for the duration of the
     fold: the Export listener thread snapshots through here while the
     main thread may be registering new names, and a [Hashtbl.add]
     resize must not race the fold (cell *values* are word-sized and
     single-writer, so reading them unlocked is safe). *)
  let capture () =
    Mutex.lock registration_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock registration_mutex)
    @@ fun () ->
    {
      counters =
        List.sort compare
          (Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) counters []);
      dists =
        List.sort compare
          (Hashtbl.fold
             (fun k d acc ->
               if d.d_count = 0 then acc
               else
                 ( k,
                   { count = d.d_count; sum = d.d_sum; sumsq = d.d_sumsq;
                     min = d.d_min; max = d.d_max } )
                 :: acc)
             dists []);
      spans =
        (* sorted by path, not execution order, so every sink and
           check_against diff is stable across runs and --jobs; '/'
           sorts before any path character we use, so parents still
           precede their children *)
        List.rev_map
          (fun path ->
            let c = Hashtbl.find spans path in
            { path; calls = c.s_calls; seconds = c.s_seconds })
          !span_order
        |> List.sort (fun a b -> compare a.path b.path);
      gauges =
        List.sort compare
          (Hashtbl.fold
             (fun k g acc -> if g.g_set then (k, g.g_value) :: acc else acc)
             gauges []);
      hists =
        List.sort compare
          (Hashtbl.fold
             (fun k h acc ->
               if Histogram.count h = 0 then acc
               else
                 ( k,
                   { h_count = Histogram.count h; h_sum = Histogram.sum h;
                     h_buckets = Histogram.buckets h } )
                 :: acc)
             hists []);
    }

  let lines s =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")

  let of_json_lines s =
    let parse acc line =
      try
        Scanf.sscanf line "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}"
          (fun name v -> { acc with counters = (name, v) :: acc.counters })
      with Scanf.Scan_failure _ | End_of_file -> (
        try
          Scanf.sscanf line
            "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%g,\"sumsq\":%g,\"min\":%g,\"max\":%g}"
            (fun name count sum sumsq min max ->
              {
                acc with
                dists = (name, { count; sum; sumsq; min; max }) :: acc.dists;
              })
        with Scanf.Scan_failure _ | End_of_file -> (
          try
            Scanf.sscanf line
              "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%g}"
              (fun path calls seconds ->
                { acc with spans = { path; calls; seconds } :: acc.spans })
          with Scanf.Scan_failure _ | End_of_file -> (
            try
              Scanf.sscanf line "{\"kind\":\"gauge\",\"name\":%S,\"value\":%g}"
                (fun name v -> { acc with gauges = (name, v) :: acc.gauges })
            with Scanf.Scan_failure _ | End_of_file -> (
              try
                Scanf.sscanf line
                  "{\"kind\":\"hist\",\"name\":%S,\"count\":%d,\"sum\":%g,\"buckets\":%S}"
                  (fun name count sum buckets ->
                    {
                      acc with
                      hists =
                        ( name,
                          { h_count = count; h_sum = sum;
                            h_buckets = hist_buckets_of_string buckets } )
                        :: acc.hists;
                    })
              with Scanf.Scan_failure _ | End_of_file ->
                failwith ("Obs.Snapshot.of_json_lines: bad line: " ^ line)))))
    in
    let acc =
      List.fold_left parse
        { counters = []; dists = []; spans = []; gauges = []; hists = [] }
        (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
      gauges = List.rev acc.gauges;
      hists = List.rev acc.hists;
    }

  let of_csv s =
    let parse acc line =
      match String.split_on_char ',' line with
      | [ "kind"; "name"; _; _; _; _; _ ] -> acc
      | [ "counter"; name; v; _; _; _; _ ] ->
        { acc with counters = (name, int_of_string v) :: acc.counters }
      | [ "dist"; name; count; sum; sumsq; min; max ] ->
        {
          acc with
          dists =
            ( name,
              { count = int_of_string count; sum = float_of_string sum;
                sumsq = float_of_string sumsq; min = float_of_string min;
                max = float_of_string max } )
            :: acc.dists;
        }
      | [ "span"; path; calls; seconds; _; _; _ ] ->
        {
          acc with
          spans =
            { path; calls = int_of_string calls;
              seconds = float_of_string seconds }
            :: acc.spans;
        }
      | [ "gauge"; name; v; _; _; _; _ ] ->
        { acc with gauges = (name, float_of_string v) :: acc.gauges }
      | [ "hist"; name; count; sum; buckets; _; _ ] ->
        {
          acc with
          hists =
            ( name,
              { h_count = int_of_string count; h_sum = float_of_string sum;
                h_buckets = hist_buckets_of_string buckets } )
            :: acc.hists;
        }
      | _ -> failwith ("Obs.Snapshot.of_csv: bad line: " ^ line)
    in
    let acc =
      List.fold_left parse
        { counters = []; dists = []; spans = []; gauges = []; hists = [] }
        (lines s)
    in
    {
      counters = List.rev acc.counters;
      dists = List.rev acc.dists;
      spans = List.rev acc.spans;
      gauges = List.rev acc.gauges;
      hists = List.rev acc.hists;
    }

  type mismatch = {
    m_kind : string;
    m_name : string;
    m_expected : float;
    m_actual : float; (* nan when missing from current *)
  }

  (* Regression gate: counters and call/observation counts are
     deterministic for a fixed configuration, so they must match
     exactly; only span seconds are wall-clock noise and get the
     threshold.  Metrics present in [current] but absent from
     [reference] are ignored so new instrumentation does not invalidate
     committed baselines, and gauges are skipped entirely
     (instantaneous samples are not reproducible). *)
  let compare_against ~threshold ~(reference : t) (current : t) =
    let out = ref [] in
    let say m_kind m_name m_expected m_actual =
      out := { m_kind; m_name; m_expected; m_actual } :: !out
    in
    List.iter
      (fun (name, v) ->
        match List.assoc_opt name current.counters with
        | None -> if v <> 0 then say "counter" name (float_of_int v) nan
        | Some v' ->
          if v' <> v then
            say "counter" name (float_of_int v) (float_of_int v'))
      reference.counters;
    List.iter
      (fun (name, (d : dist_stats)) ->
        match List.assoc_opt name current.dists with
        | None -> say "dist.count" name (float_of_int d.count) nan
        | Some d' ->
          if d'.count <> d.count then
            say "dist.count" name (float_of_int d.count)
              (float_of_int d'.count))
      reference.dists;
    List.iter
      (fun (r : span_stats) ->
        match
          List.find_opt (fun (c : span_stats) -> c.path = r.path) current.spans
        with
        | None -> say "span.calls" r.path (float_of_int r.calls) nan
        | Some c ->
          if c.calls <> r.calls then
            say "span.calls" r.path (float_of_int r.calls)
              (float_of_int c.calls);
          if c.seconds > r.seconds *. (1. +. threshold) then
            say "span.seconds" r.path r.seconds c.seconds)
      reference.spans;
    (* histograms are deterministic bucket-for-bucket for a fixed
       configuration (merging is commutative addition), so both the
       total and every bucket count must match exactly *)
    List.iter
      (fun (name, (h : hist_stats)) ->
        match List.assoc_opt name current.hists with
        | None -> say "hist.count" name (float_of_int h.h_count) nan
        | Some h' ->
          if h'.h_count <> h.h_count then
            say "hist.count" name (float_of_int h.h_count)
              (float_of_int h'.h_count);
          let le i =
            if i < Array.length Histogram.bounds then
              Printf.sprintf "%g" Histogram.bounds.(i)
            else "+Inf"
          in
          Array.iteri
            (fun i c ->
              let c' =
                if i < Array.length h'.h_buckets then h'.h_buckets.(i) else 0
              in
              if c' <> c then
                say "hist.bucket"
                  (Printf.sprintf "%s[le=%s]" name (le i))
                  (float_of_int c) (float_of_int c'))
            h.h_buckets)
      reference.hists;
    List.rev !out

  let check_against ~threshold ~(reference : t) (current : t) =
    compare_against ~threshold ~reference current
    |> List.map (fun m ->
           let missing = Float.is_nan m.m_actual in
           match m.m_kind with
           | "counter" ->
             if missing then
               Printf.sprintf "counter %s missing (reference %d)" m.m_name
                 (int_of_float m.m_expected)
             else
               Printf.sprintf "counter %s: %d differs from reference %d"
                 m.m_name (int_of_float m.m_actual)
                 (int_of_float m.m_expected)
           | "dist.count" ->
             if missing then
               Printf.sprintf "dist %s missing (reference count %d)" m.m_name
                 (int_of_float m.m_expected)
             else
               Printf.sprintf "dist %s: count %d differs from reference %d"
                 m.m_name (int_of_float m.m_actual)
                 (int_of_float m.m_expected)
           | "span.calls" ->
             if missing then
               Printf.sprintf "span %s missing (reference %d calls)" m.m_name
                 (int_of_float m.m_expected)
             else
               Printf.sprintf "span %s: %d calls differ from reference %d"
                 m.m_name (int_of_float m.m_actual)
                 (int_of_float m.m_expected)
           | "hist.count" ->
             if missing then
               Printf.sprintf "hist %s missing (reference count %d)" m.m_name
                 (int_of_float m.m_expected)
             else
               Printf.sprintf "hist %s: count %d differs from reference %d"
                 m.m_name (int_of_float m.m_actual)
                 (int_of_float m.m_expected)
           | "hist.bucket" ->
             Printf.sprintf "hist %s: %d differs from reference %d" m.m_name
               (int_of_float m.m_actual)
               (int_of_float m.m_expected)
           | _ ->
             Printf.sprintf
               "span %s: %.4fs exceeds reference %.4fs by more than %.0f%%"
               m.m_name m.m_actual m.m_expected (100. *. threshold))
end

type sink = Snapshot.t -> unit

let pretty fmt (s : Snapshot.t) =
  let open Format in
  if s.counters <> [] then begin
    fprintf fmt "counters:@.";
    List.iter
      (fun (name, v) -> fprintf fmt "  %-40s %12d@." name v)
      s.counters
  end;
  if s.spans <> [] then begin
    fprintf fmt "spans:%42s %12s@." "calls" "seconds";
    List.iter
      (fun { Snapshot.path; calls; seconds } ->
        let depth =
          String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path
        in
        let leaf =
          match String.rindex_opt path '/' with
          | None -> path
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        in
        let indent = String.make (2 + (2 * depth)) ' ' in
        fprintf fmt "%s%-*s %12d %12.6f@." indent
          (max 1 (46 - String.length indent))
          leaf calls seconds)
      s.spans
  end;
  if s.dists <> [] then begin
    fprintf fmt "dists:%41s %9s %9s %9s %9s@." "count" "avg" "stddev" "min"
      "max";
    List.iter
      (fun (name, d) ->
        fprintf fmt "  %-40s %5d %9.2f %9.2f %9.2f %9.2f@." name
          d.Snapshot.count (Snapshot.dist_mean d) (Snapshot.dist_stddev d)
          d.Snapshot.min d.Snapshot.max)
      s.dists
  end;
  if s.hists <> [] then begin
    fprintf fmt "hists:%41s %9s %9s %9s@." "count" "avg" "~p50" "~p99";
    List.iter
      (fun (name, h) ->
        fprintf fmt "  %-40s %5d %9.2f %9.3g %9.3g@." name
          h.Snapshot.h_count (Snapshot.hist_mean h)
          (Snapshot.hist_quantile h 0.5)
          (Snapshot.hist_quantile h 0.99))
      s.hists
  end;
  if s.gauges <> [] then begin
    fprintf fmt "gauges:@.";
    List.iter
      (fun (name, v) -> fprintf fmt "  %-40s %12g@." name v)
      s.gauges
  end

let json fmt (s : Snapshot.t) =
  let open Format in
  List.iter
    (fun (name, v) ->
      fprintf fmt "{\"kind\":\"counter\",\"name\":%S,\"value\":%d}@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; sumsq; min; max }) ->
      fprintf fmt
        "{\"kind\":\"dist\",\"name\":%S,\"count\":%d,\"sum\":%s,\"sumsq\":%s,\"min\":%s,\"max\":%s}@."
        name count (g17 sum) (g17 sumsq) (g17 min) (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "{\"kind\":\"span\",\"name\":%S,\"calls\":%d,\"seconds\":%s}@."
        path calls (g17 seconds))
    s.spans;
  List.iter
    (fun (name, v) ->
      fprintf fmt "{\"kind\":\"gauge\",\"name\":%S,\"value\":%s}@." name (g17 v))
    s.gauges;
  List.iter
    (fun (name, h) ->
      fprintf fmt
        "{\"kind\":\"hist\",\"name\":%S,\"count\":%d,\"sum\":%s,\"buckets\":%S}@."
        name h.Snapshot.h_count
        (g17 h.Snapshot.h_sum)
        (Snapshot.hist_buckets_string h.Snapshot.h_buckets))
    s.hists

let csv fmt (s : Snapshot.t) =
  let open Format in
  fprintf fmt "kind,name,a,b,c,d,e@.";
  List.iter
    (fun (name, v) -> fprintf fmt "counter,%s,%d,,,,@." name v)
    s.counters;
  List.iter
    (fun (name, { Snapshot.count; sum; sumsq; min; max }) ->
      fprintf fmt "dist,%s,%d,%s,%s,%s,%s@." name count (g17 sum) (g17 sumsq)
        (g17 min) (g17 max))
    s.dists;
  List.iter
    (fun { Snapshot.path; calls; seconds } ->
      fprintf fmt "span,%s,%d,%s,,,@." path calls (g17 seconds))
    s.spans;
  List.iter
    (fun (name, v) -> fprintf fmt "gauge,%s,%s,,,,@." name (g17 v))
    s.gauges;
  List.iter
    (fun (name, h) ->
      fprintf fmt "hist,%s,%d,%s,%s,,@." name h.Snapshot.h_count
        (g17 h.Snapshot.h_sum)
        (Snapshot.hist_buckets_string h.Snapshot.h_buckets))
    s.hists

let named_sink fmt = function
  | "pretty" -> Some (pretty fmt)
  | "json" -> Some (json fmt)
  | "csv" -> Some (csv fmt)
  | _ -> None

let report sink = sink (Snapshot.capture ())

(* Live exposition: a minimal single-threaded HTTP listener on stdlib
   [Unix], serving the registry in Prometheus text exposition format.
   One systhread owns the accept loop; it shares the main domain's
   runtime lock, so scraping never runs *concurrently* with the query
   path — it interleaves at safepoints, and [Snapshot.capture]'s
   registration mutex keeps the only cross-thread hazard (a Hashtbl
   resize mid-fold) out.  See the single-writer scrape contract above
   [registration_mutex]. *)
module Export = struct
  let prom_name name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

  let le_label i =
    if i < Array.length Histogram.bounds then g17 Histogram.bounds.(i)
    else "+Inf"

  (* Prometheus 0.0.4 text exposition escaping: label values escape
     backslash, double quote and newline; HELP text escapes backslash
     and newline.  Everything else (tabs, spaces, UTF-8 bytes) passes
     through verbatim — OCaml's %S would mangle those.  Span paths are
     where arbitrary characters reach /metrics. *)
  let prom_escape_label s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let prom_escape_help s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* counters and gauges one sample each; dists as summary _sum/_count;
     spans as two labelled families; hists with cumulative le buckets *)
  let metrics_text (s : Snapshot.t) =
    let b = Buffer.create 4096 in
    let line fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let help n name = line "# HELP %s registry key %s\n" n (prom_escape_help name) in
    List.iter
      (fun (name, v) ->
        let n = prom_name name in
        help n name;
        line "# TYPE %s counter\n%s %d\n" n n v)
      s.Snapshot.counters;
    List.iter
      (fun (name, v) ->
        let n = prom_name name in
        help n name;
        line "# TYPE %s gauge\n%s %s\n" n n (g17 v))
      s.Snapshot.gauges;
    List.iter
      (fun (name, (d : Snapshot.dist_stats)) ->
        let n = prom_name name in
        help n name;
        line "# TYPE %s summary\n%s_sum %s\n%s_count %d\n" n n
          (g17 d.Snapshot.sum) n d.Snapshot.count)
      s.Snapshot.dists;
    if s.Snapshot.spans <> [] then begin
      line "# HELP span_calls calls per span path\n";
      line "# TYPE span_calls counter\n";
      List.iter
        (fun (sp : Snapshot.span_stats) ->
          line "span_calls{path=\"%s\"} %d\n"
            (prom_escape_label sp.Snapshot.path)
            sp.Snapshot.calls)
        s.Snapshot.spans;
      line "# HELP span_seconds cumulative seconds per span path\n";
      line "# TYPE span_seconds counter\n";
      List.iter
        (fun (sp : Snapshot.span_stats) ->
          line "span_seconds{path=\"%s\"} %s\n"
            (prom_escape_label sp.Snapshot.path)
            (g17 sp.Snapshot.seconds))
        s.Snapshot.spans
    end;
    List.iter
      (fun (name, (h : Snapshot.hist_stats)) ->
        let n = prom_name name in
        help n name;
        line "# TYPE %s histogram\n" n;
        let acc = ref 0 in
        Array.iteri
          (fun i c ->
            acc := !acc + c;
            line "%s_bucket{le=\"%s\"} %d\n" n (le_label i) !acc)
          h.Snapshot.h_buckets;
        line "%s_sum %s\n%s_count %d\n" n (g17 h.Snapshot.h_sum) n
          h.Snapshot.h_count)
      s.Snapshot.hists;
    Buffer.contents b

  (* The matching parser: [(key, value)] samples where a labelled
     sample keeps its label block in the key verbatim.  Raises on any
     line that is not a comment, a blank, or a well-formed sample — the
     scrape smokes re-parse the exposition through this. *)
  let parse_exposition text =
    let parse_sample l =
      match String.rindex_opt l ' ' with
      | None -> failwith ("Obs.Export.parse_exposition: bad line: " ^ l)
      | Some i ->
        let key = String.trim (String.sub l 0 i) in
        let v = String.sub l (i + 1) (String.length l - i - 1) in
        if key = "" then
          failwith ("Obs.Export.parse_exposition: bad line: " ^ l);
        (match float_of_string_opt v with
        | Some f -> (key, f)
        | None -> failwith ("Obs.Export.parse_exposition: bad value: " ^ l))
    in
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" then None
           else if String.length l > 0 && l.[0] = '#' then begin
             (match String.split_on_char ' ' l with
             | "#" :: "TYPE" :: _ :: [ ty ]
               when List.mem ty
                      [ "counter"; "gauge"; "summary"; "histogram" ] ->
               ()
             | "#" :: "HELP" :: _ -> ()
             | _ ->
               failwith ("Obs.Export.parse_exposition: bad comment: " ^ l));
             None
           end
           else Some (parse_sample l))

  (* Cross-check parsed samples against an in-process snapshot: every
     deterministic value (counters, dist counts, span calls, histogram
     buckets and totals) must match exactly.  Returns human-readable
     discrepancies; [] means the scrape agrees with the registry. *)
  let check_snapshot samples (s : Snapshot.t) =
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
    let sample key =
      List.fold_left
        (fun acc (k, v) -> if k = key then Some v else acc)
        None samples
    in
    let expect_int key v =
      match sample key with
      | None -> err "%s: missing from exposition" key
      | Some f ->
        if f <> float_of_int v then
          err "%s: exposition %.17g, registry %d" key f v
    in
    List.iter
      (fun (name, v) -> expect_int (prom_name name) v)
      s.Snapshot.counters;
    List.iter
      (fun (name, (d : Snapshot.dist_stats)) ->
        expect_int (prom_name name ^ "_count") d.Snapshot.count)
      s.Snapshot.dists;
    List.iter
      (fun (sp : Snapshot.span_stats) ->
        expect_int
          (Printf.sprintf "span_calls{path=\"%s\"}"
             (prom_escape_label sp.Snapshot.path))
          sp.Snapshot.calls)
      s.Snapshot.spans;
    List.iter
      (fun (name, (h : Snapshot.hist_stats)) ->
        let n = prom_name name in
        expect_int (n ^ "_count") h.Snapshot.h_count;
        let acc = ref 0 in
        Array.iteri
          (fun i c ->
            acc := !acc + c;
            expect_int
              (Printf.sprintf "%s_bucket{le=\"%s\"}" n (le_label i))
              !acc)
          h.Snapshot.h_buckets)
      s.Snapshot.hists;
    List.rev !errs

  (* ---------------- the listener ---------------- *)

  type handle = {
    h_fd : Unix.file_descr;
    h_port : int;
    mutable h_thread : Thread.t option;
    h_stop : bool Atomic.t;
    h_scrapes : int Atomic.t;
  }

  let port h = h.h_port
  let scrape_count h = Atomic.get h.h_scrapes

  let read_request fd =
    let buf = Bytes.create 2048 in
    let data = Buffer.create 256 in
    let rec go () =
      let headers_done () =
        let s = Buffer.contents data in
        let rec find i =
          i + 1 < String.length s
          && ((s.[i] = '\n' && s.[i + 1] = '\n')
             || (i + 3 < String.length s
                && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                && s.[i + 3] = '\n')
             || find (i + 1))
        in
        find 0
      in
      if Buffer.length data < 8192 && not (headers_done ()) then begin
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes data buf 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      end
    in
    go ();
    Buffer.contents data

  let request_path req =
    match String.split_on_char '\n' req with
    | first :: _ -> (
      match String.split_on_char ' ' (String.trim first) with
      | [ "GET"; path; _ ] -> Some path
      | _ -> None)
    | [] -> None

  let write_all fd s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let respond fd status content_type body =
    write_all fd
      (Printf.sprintf
         "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
         status content_type (String.length body) body)

  let handle_client ~health ~routes ~scrapes fd =
    match request_path (read_request fd) with
    | None -> respond fd "400 Bad Request" "text/plain" "bad request\n"
    | Some path -> (
      match path with
      | "/metrics" ->
        Atomic.incr scrapes;
        respond fd "200 OK" "text/plain; version=0.0.4; charset=utf-8"
          (metrics_text (Snapshot.capture ()))
      | "/healthz" ->
        let ok, msg = health () in
        respond fd (if ok then "200 OK" else "503 Service Unavailable")
          "text/plain" (msg ^ "\n")
      | "/debug/ring" ->
        respond fd "200 OK" "application/json" (Recorder.to_json_string ())
      | _ -> (
        match List.assoc_opt path routes with
        | Some f -> respond fd "200 OK" "text/plain" (f ())
        | None -> respond fd "404 Not Found" "text/plain" "not found\n"))

  let start ?(health = fun () -> (true, "ok")) ?(routes = []) ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let stop_flag = Atomic.make false in
    let scrapes = Atomic.make 0 in
    let h =
      { h_fd = fd; h_port = actual; h_thread = None; h_stop = stop_flag;
        h_scrapes = scrapes }
    in
    let rec loop () =
      match Unix.accept fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if not (Atomic.get stop_flag) then loop ()
      | exception Unix.Unix_error _ -> () (* listener closed: we're done *)
      | client, _ ->
        (try
           Fun.protect
             ~finally:(fun () ->
               try Unix.close client with Unix.Unix_error _ -> ())
             (fun () ->
               if not (Atomic.get stop_flag) then
                 handle_client ~health ~routes ~scrapes client)
         with Unix.Unix_error _ -> ());
        if not (Atomic.get stop_flag) then loop ()
    in
    h.h_thread <- Some (Thread.create loop ());
    h

  (* closing the listener from another systhread does not reliably wake
     a blocked [accept]; poke it with a throwaway connection instead *)
  let stop h =
    Atomic.set h.h_stop true;
    (try
       let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close c with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect c
             (Unix.ADDR_INET (Unix.inet_addr_loopback, h.h_port)))
     with Unix.Unix_error _ -> ());
    (match h.h_thread with Some t -> Thread.join t | None -> ());
    try Unix.close h.h_fd with Unix.Unix_error _ -> ()

  (* blocking one-shot client, for self-scrapes and tests: returns
     (status line, body) *)
  let get ~port path =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    write_all fd
      (Printf.sprintf "GET %s HTTP/1.0\r\nConnection: close\r\n\r\n" path);
    let buf = Bytes.create 4096 in
    let data = Buffer.create 4096 in
    let rec drain () =
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes data buf 0 n;
        drain ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
    in
    drain ();
    let raw = Buffer.contents data in
    let body_at =
      let rec find i =
        if i + 3 >= String.length raw then String.length raw
        else if
          raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
          && raw.[i + 3] = '\n'
        then i + 4
        else find (i + 1)
      in
      find 0
    in
    let status =
      match String.index_opt raw '\r' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    (status, String.sub raw body_at (String.length raw - body_at))
end
