(** Observability: named monotonic counters, value distributions and
    nestable timing spans, behind a near-zero-cost interface.

    Everything hangs off one global registry so instrumented modules
    (geometry predicates, the grid, the Delaunay kernel, the
    distributed engines, the backbone pipeline) report through a
    single channel.  When disabled — the default — every hot-path hook
    is a single load-and-branch on {!enabled}; no allocation, no
    hashing, no clock reads.  Counter values are deterministic for a
    deterministic computation; span durations are wall-clock and are
    the only non-deterministic quantity a {!Snapshot.t} carries.

    Handles are created once, at module initialization time
    ([let c = Obs.counter "delaunay.insertions"]), and bumped in hot
    loops.  [counter]/[dist] are idempotent per name, so two modules
    naming the same metric share one cell.

    {!Trace} adds a second, independent switch for structured event
    tracing: per-domain ring buffers of typed events with a
    deterministic merge, a Chrome trace-event exporter, a folded-stacks
    profile and protocol message audits (see DESIGN.md §7). *)

(** {1 Switch} *)

(** The global on/off flag, exposed as a ref so hot paths can guard
    compound instrumentation ([if !Obs.on then ...]) at the cost of a
    single load.  Treat as read-only outside {!set_enabled}. *)
val on : bool ref

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [quiesced f] runs [f ()] with the registry disabled, restoring the
    previous state afterwards (also on exceptions).  The registry is
    not domain-safe, so parallel construction stages wrap their worker
    fan-out in this; a {!span} entered {e before} the quiesce still
    records its timing, since [span] checks the switch once at entry. *)
val quiesced : (unit -> 'a) -> 'a

(** [reset ()] zeroes every counter, distribution, span, gauge and
    histogram while keeping all registered handles valid. *)
val reset : unit -> unit

(** {1 Counters} *)

type counter

(** [counter name] returns the monotonic counter registered under
    [name], creating it at zero on first use. *)
val counter : string -> counter

(** [incr c] adds one when enabled; a no-op when disabled. *)
val incr : counter -> unit

(** [add c n] adds [n] when enabled; a no-op when disabled. *)
val add : counter -> int -> unit

(** Current value (reads even when disabled). *)
val value : counter -> int

(** {1 Distributions}

    Count / sum / sum-of-squares / min / max of an observed stream of
    values — enough for average sizes and their spread (grid query
    degrees, cavity sizes, per-node message counts) without storing
    samples. *)

type dist

val dist : string -> dist
val observe : dist -> float -> unit

(** {1 Gauges}

    Instantaneous values — the current level of something (heap words,
    backbone size, pool utilization) — sampled rather than accumulated.
    [set_gauge] overwrites the previous sample; a snapshot reports the
    latest sample only, and only for gauges that have been set since
    the last {!reset}.  Like counters, handles are idempotent per name
    and writes are no-ops while disabled.  Because gauge samples are
    not reproducible across runs they are excluded from
    {!Snapshot.check_against}. *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

(** Latest sample (reads even when disabled); [nan] before the first
    [set_gauge]. *)
val gauge_value : gauge -> float

(** {1 Histograms}

    Fixed-bucket mergeable histograms over one global log-2 bucket
    ladder.  Where a {!Sketch} estimates quantiles but cannot be
    combined losslessly, two histograms merge by element-wise bucket
    addition — the merged result is independent of how observations
    were split across pool slots or domains, which is what lets the
    serve engine record per-slot and merge post-join without breaking
    jobs-bit-identity — and the bucket counts expose directly as a
    Prometheus [histogram] with cumulative [le] buckets.

    The ladder is the 41 exact powers of two [2^-10 .. 2^30] plus an
    overflow bucket: wide enough for hop counts and microsecond
    latencies alike, and bucketing is an exact comparison search — no
    transcendental math, no rounding ambiguity.  A value lands in the
    first bucket whose upper bound it does not exceed ([le]
    semantics). *)

module Histogram : sig
  type t

  (** The shared bucket upper bounds, increasing.  Every histogram has
      [Array.length bounds + 1] buckets; the last is [+Inf]. *)
  val bounds : float array

  val buckets_len : int

  (** A fresh, empty histogram — a plain value, no global switch
      (registered histograms are gated through {!Obs.observe_hist}). *)
  val create : unit -> t

  (** Record one value, unconditionally. *)
  val observe : t -> float -> unit

  (** [observe_int h n = observe h (float_of_int n)], allocation-free:
      no float is boxed across the call, so it is safe on zero-alloc
      per-query paths (the serve engine's hop counts). *)
  val observe_int : t -> int -> unit

  val count : t -> int
  val sum : t -> float

  (** A copy of the per-bucket (non-cumulative) counts. *)
  val buckets : t -> int array

  (** [merge_into ~into src] adds [src]'s counts and sum into [into];
      commutative and associative, [src] is unchanged. *)
  val merge_into : into:t -> t -> unit

  (** Upper bound of the bucket holding the [q]-quantile rank — an
      upper estimate exact to within one bucket width; [nan] when
      empty, [+inf] when the rank lands in the overflow bucket. *)
  val quantile : t -> float -> float

  (** [quantile] over raw snapshot data. *)
  val quantile_of : count:int -> int array -> float -> float

  val reset : t -> unit
end

(** [histogram name] returns the registry histogram under [name],
    creating it empty on first use (idempotent per name, like
    {!counter}). *)
val histogram : string -> Histogram.t

(** Record into a registry histogram when enabled; a no-op when
    disabled. *)
val observe_hist : Histogram.t -> float -> unit

(** Merge a scratch histogram (e.g. a per-slot one) into a registry
    histogram when enabled; a no-op when disabled. *)
val merge_hist : into:Histogram.t -> Histogram.t -> unit

(** {1 Runtime (GC) gauges}

    A second single load-and-branch switch, like {!Trace.on}: when
    armed, every {!span} boundary (entry and exit) samples
    [Gc.quick_stat] into the gauges [gc.minor_words],
    [gc.major_words], [gc.heap_words], [gc.minor_collections],
    [gc.major_collections] and [gc.compactions], so any instrumented
    stage bounds its allocation behaviour without touching hot
    paths. *)

val gc_gauges : bool ref
val gc_sampling : unit -> bool
val set_gc_sampling : bool -> unit

(** {1 Spans}

    [span name f] times [f ()] with a wall clock and charges it to the
    path [parent/.../name] formed by the spans currently open on the
    (thread-unsafe, global) span stack.  Re-entering the same path
    accumulates: a snapshot reports calls and total seconds per path.
    When disabled it is exactly [f ()].  When {!Trace} is armed, entry
    and exit additionally record [Span_begin]/[Span_end] events. *)

val span : string -> (unit -> 'a) -> 'a

(** {1 Clock}

    The project's only exported wall clock (lint rule D003 bans raw
    time calls outside [lib/obs] and the bench harness): microseconds
    since the Unix epoch, as a float.  Stateless and domain-safe —
    worker bodies may call it even though the registry itself is not
    domain-safe.  Deltas of this clock are wall time; like span
    seconds they are non-deterministic and must stay out of anything
    a regression gate compares exactly. *)
val clock_us : unit -> float

(** {1 Structured event tracing}

    A second switch, {!Trace.on}, arms recording of typed events into
    per-domain ring buffers.  Every hook is a single load-and-branch
    when disarmed.  Recording is lock-free (each domain owns its
    buffer, reached through [Domain.DLS]); when a ring fills, the
    oldest events are overwritten and counted in {!Trace.dropped}.

    {!Trace.events} merges all buffers deterministically: events
    recorded inside a {!Netgraph.Pool} job are stable-sorted by task
    index and spliced at the job's end marker, so the merged
    [(task, phase, payload)] sequence is bit-identical for any [--jobs]
    (timestamps and domain ids are the only scheduling-dependent
    fields). *)

module Trace : sig
  (** The trace switch; independent of {!Obs.on} so counters can stay
      cheap while events record, and vice versa.  Hot paths guard
      compound event construction with [if !Obs.Trace.on then ...]. *)
  val on : bool ref

  val enabled : unit -> bool

  (** [start ?capacity ()] clears all ring buffers, resizes them to
      [capacity] events (default [65536]; new per-domain buffers also
      use the latest capacity) and arms recording.  Must not be called
      while worker domains are recording. *)
  val start : ?capacity:int -> unit -> unit

  (** Disarm recording; buffered events stay available to {!events}. *)
  val stop : unit -> unit

  (** Events overwritten across all ring buffers since {!start}. *)
  val dropped : unit -> int

  type payload =
    | Span_begin of string  (** full span path, from {!Obs.span} *)
    | Span_end of string
    | Count of { name : string; delta : int }
        (** counter increment; consecutive same-name deltas coalesce *)
    | Send of {
        round : int;
        time : float;
        kind : string;
        src : int;
        dst : int;
        lam : int;
        sseq : int;
      }
        (** protocol transmission; [round = -1] for async engines,
            [dst = -1] for local broadcast.  [lam] is the sender's
            Lamport clock after the send tick and [sseq] its per-node
            event sequence: [(src, sseq)] names the message, which its
            deliveries reference.  Both are maintained by the single
            stamping helper [Distsim.Stamp] (lint rule O002). *)
    | Deliver of {
        round : int;
        time : float;
        kind : string;
        src : int;
        dst : int;
        lam : int;
        sseq : int;
        dseq : int;
      }
        (** reception of send [(src, sseq)] at [dst]; [lam] is the
            receiver's clock after the [max (local, sender) + 1]
            update, [dseq] the receiver's own event sequence *)
    | Job of { group : int; enter : bool }
        (** pool job bracket, internal — rewritten to
            [Span_begin/Span_end "pool.job"] by {!events} *)
    | Alert of {
        round : int;
        probe : string;
        value : float;
        limit : float;
        node : int;
      }
        (** health-monitor invariant violation: [probe] exceeded
            [limit] with [value] at [round]; [node] is a witness
            (e.g. the max-degree node, an endpoint of a crossing) or
            [-1] when no single node is implicated *)

  type event = {
    ts : float;  (** microseconds since {!start} *)
    dom : int;  (** recording domain id *)
    group : int;  (** pool job id, [-1] outside jobs *)
    task : int;  (** pool work-item index, [-1] outside jobs *)
    phase : string;
        (** the {!Obs.span} path open at record time; [""] inside pool
            tasks, where the caller's span stack cannot be read *)
    payload : payload;
  }

  (** {2 Recording hooks} *)

  val span_begin : string -> unit
  val span_end : string -> unit
  val count : string -> int -> unit

  (** Raw protocol-event hooks.  Outside [lib/obs] and [lib/distsim]
      these must not be called directly — the clocks they record are
      owned by [Distsim.Stamp] (lint rule O002 enforces this). *)

  val send :
    round:int -> time:float -> kind:string -> src:int -> dst:int ->
    lam:int -> sseq:int -> unit

  val deliver :
    round:int -> time:float -> kind:string -> src:int -> dst:int ->
    lam:int -> sseq:int -> dseq:int -> unit

  (** Record an invariant violation (see {!constructor-Alert});
      exported to Chrome JSON as an instant event with
      [dir = "alert"]. *)
  val alert :
    round:int -> probe:string -> value:float -> limit:float -> node:int -> unit

  (** {2 Pool integration}

      Used by {!Netgraph.Pool}: the caller allocates a group id and
      brackets the job; each participating domain declares the task it
      is about to run so its events carry [(group, task)]. *)

  val new_group : unit -> int
  val job_enter : int -> unit
  val job_leave : int -> unit
  val set_context : group:int -> task:int -> unit

  (** {2 Export} *)

  (** Deterministic merge of all per-domain buffers (see module
      comment).  Call from the domain that ran the traced code. *)
  val events : unit -> event list

  (** Chrome trace-event JSON ([chrome://tracing], Perfetto).  One
      event object per line; the exact subset emitted here parses back
      with {!read_chrome}.  [flows] pairs (send, deliver) events from
      [evs]; each pair is drawn as a flow arrow (see {!Causal.flows});
      flow lines are skipped by {!read_chrome}, keeping the event
      round-trip exact. *)
  val write_chrome :
    ?flows:(event * event) list -> Format.formatter -> event list -> unit

  (** Parse {!write_chrome} output.  Round-trips exactly (floats are
      printed with 17 significant digits); flow-arrow lines are
      skipped.
      @raise Failure on malformed input. *)
  val read_chrome : string -> event list

  (** Folded stacks, one [path;to;span self-µs] line per span path,
      sorted — pipe into [flamegraph.pl]. *)
  val write_folded : Format.formatter -> event list -> unit

  type profile_row = {
    p_path : string;
    p_calls : int;
    p_total : float;  (** seconds, including children *)
    p_self : float;  (** seconds, excluding children *)
  }

  (** Aggregate span begin/end pairs (per domain) into calls /
      total / self time per span path, in first-seen order. *)
  val profile : event list -> profile_row list

  type audit_row = {
    a_phase : string;
    a_kind : string;
    a_sends : int;
    a_deliveries : int;
  }

  (** Message-complexity table: sends and deliveries grouped by
      (recording phase, message kind); phases in first-seen order,
      kinds sorted within a phase. *)
  val message_audit : event list -> audit_row list

  (** Least-squares slope of [log y] against [log x] — the empirical
      growth exponent; [nan] on fewer than two usable points. *)
  val fit_loglog_slope : (float * float) list -> float
end

(** {1 Happens-before analysis}

    Post-run reconstruction of the causal structure recorded by the
    Lamport-stamped Send/Deliver events: the merged stream from
    {!Trace.events} is a valid topological linearization (engines
    record a Deliver after its Send; per-node stream order is program
    order), so one O(events) forward pass computes longest causal
    chains.  Matching is per span path — every engine run gets a fresh
    stamp state, so [(src, sseq)] keys repeat across phases but are
    unique within one.  All results depend only on the (phase, payload)
    projection of the stream, hence are bit-identical across worker
    counts, like the stream itself. *)
module Causal : sig
  (** Causality violations, reported in stream order.  [index] is the
      event's position in the analyzed stream. *)
  type violation =
    | Orphan_deliver of {
        phase : string;
        src : int;
        dst : int;
        sseq : int;
        index : int;
      }  (** a Deliver whose [(src, sseq)] has no preceding Send *)
    | Clock_regression of {
        phase : string;
        node : int;
        lam : int;
        prev : int;
        index : int;
      }
        (** a stamp that fails to advance: [lam <= prev] for the node's
            previous stamp, or for the matched send's stamp *)

  val pp_violation : Format.formatter -> violation -> unit

  (** One event on a critical path. *)
  type step = {
    s_index : int;  (** position in the analyzed stream *)
    s_dir : [ `Send | `Deliver ];
    s_kind : string;
    s_node : int;  (** sender for sends, receiver for delivers *)
    s_round : int;
    s_time : float;
    s_depth : int;  (** causal depth (message hops) at this event *)
  }

  type phase_report = {
    ph_phase : string;  (** span path the events were recorded under *)
    ph_events : int;  (** protocol events in the phase *)
    ph_depth : int;  (** critical-path length in message hops *)
    ph_rounds : int;  (** engine rounds spanned by the critical path *)
    ph_span_time : float;  (** simulated time along the critical path *)
    ph_width : (int * int) list;
        (** events per causal depth, [0..ph_depth] *)
    ph_path : step list;  (** the critical path, root first *)
    ph_attribution : (int * int) list;
        (** node -> critical-path events, most-loaded first (ties by
            node id) — where the run's latency lives *)
  }

  type report = {
    r_phases : phase_report list;  (** first-seen stream order *)
    r_depth : int;
        (** end-to-end critical path: phases run sequentially, so
            depths add *)
    r_rounds : int;
    r_span_time : float;
    r_violations : violation list;
  }

  (** One pass over a {!Trace.events} stream; non-protocol events are
      ignored.  O(n) time and space in the stream length. *)
  val analyze : Trace.event list -> report

  (** The critical-path (send, deliver) pairs of [report], resolved
      back into the events of the stream it was computed from — feed to
      {!Trace.write_chrome} as [~flows]. *)
  val flows : Trace.event list -> report -> (Trace.event * Trace.event) list

  (** DOT dump of the happens-before DAG (all protocol events, one
      cluster per phase; message edges solid, program order dashed,
      critical path red).  Meant for small n — the graph has one node
      per event. *)
  val write_dot : Format.formatter -> Trace.event list -> unit
end

(** {1 Quantile sketches}

    The P² streaming estimator (Jain & Chlamtac, CACM 1985), extended
    to a set of target quantiles: [2m + 3] markers track the empirical
    CDF so medians and tail quantiles of a long stream are available
    without retaining samples.  Until the stream is as long as the
    marker count the raw samples are kept and answers are exact.
    Marker heights are kept ordered, so {!Sketch.quantile} is monotone
    in [q]; for smooth distributions estimates land within a couple of
    percent of the exact quantile (tested against exact computations
    in [test_sketch]).  A sketch is a plain value with no global
    switch — {!Telemetry} feeds one per probe. *)

module Sketch : sig
  type t

  (** [create ?quantiles ()] tracks the given target quantiles, each
      strictly between 0 and 1 (default [[0.5; 0.9; 0.99]]).
      @raise Invalid_argument on an empty or out-of-range list. *)
  val create : ?quantiles:float list -> unit -> t

  val observe : t -> float -> unit

  (** Observations so far. *)
  val count : t -> int

  (** [quantile t q] estimates the [q]-quantile ([q] clamped to
      [[0, 1]]) by interpolating the marker CDF; exact while the
      sketch still holds all samples.  [nan] when empty. *)
  val quantile : t -> float -> float

  (** Exact minimum observed; [nan] when empty. *)
  val min_value : t -> float

  (** Exact maximum observed; [nan] when empty. *)
  val max_value : t -> float

  (** Tracked target quantiles, increasing, duplicates removed. *)
  val targets : t -> float list

  (** [merge a b] is a fresh sketch over [a]'s targets summarizing
      both inputs: each input's marker staircase is replayed with its
      observation weight, so counts add exactly while quantile
      estimates remain approximations. *)
  val merge : t -> t -> t

  (** Forget every observation, keeping the targets. *)
  val reset : t -> unit
end

(** {1 Telemetry time-series}

    A round-clock recorder, the third observability pillar next to the
    cumulative registry (counters/dists/spans) and the event {!Trace}:
    named probes are sampled once per round into an in-memory
    time-series, one {!Sketch} per probe summarizing the whole run.
    Pull probes registered with {!Telemetry.register} are sampled by
    {!Telemetry.sample}; computed values can be pushed directly with
    {!Telemetry.record}.  Series export as JSON-lines or CSV and
    render as terminal sparklines (the [spanner_cli monitor] health
    table).  A recorder is a plain value — no global switch. *)

module Telemetry : sig
  type t

  val create : unit -> t

  (** [register t name f] makes [f] a pull probe: every {!sample} tick
      records [f ()] under [name].  Re-registering replaces the
      function and keeps the recorded history. *)
  val register : t -> string -> (unit -> float) -> unit

  (** [record t ~round name v] pushes one value directly. *)
  val record : t -> round:int -> string -> float -> unit

  (** [sample t ~round] ticks the round clock: every registered pull
      probe is sampled once, in registration order. *)
  val sample : t -> round:int -> unit

  (** Rounds seen, in recording order. *)
  val rounds : t -> int list

  (** Probe names, sorted. *)
  val names : t -> string list

  (** [series t name] is the recorded [(round, value)] list in
      recording order; [[]] for unknown probes. *)
  val series : t -> string -> (int * float) list

  (** Most recently recorded value of a probe. *)
  val last : t -> string -> float option

  (** Quantile summary over everything recorded under a name. *)
  val sketch : t -> string -> Sketch.t option

  val reset : t -> unit

  (** One [{"kind":"telemetry","round":..,"name":..,"value":..}]
      object per recorded value — rounds in recording order, names
      sorted within a round, floats with 17 significant digits so
      {!read_jsonl} round-trips exactly. *)
  val write_jsonl : Format.formatter -> t -> unit

  (** Parse {!write_jsonl} output into [(round, (name, value) list)]
      rows. @raise Failure on malformed input. *)
  val read_jsonl : string -> (int * (string * float) list) list

  (** CSV matrix: header [round,<name>,...] (names sorted), one row
      per round, empty cells where a probe has no value that round. *)
  val write_csv : Format.formatter -> t -> unit

  (** Eight-level Unicode sparkline of a series, min–max scaled over
      the finite samples (NaNs dropped; infinities pin to the extreme
      bars; a constant or single-sample series renders the middle
      bar); [""] for the empty series. *)
  val sparkline : float list -> string
end

(** {1 Flight recorder}

    An always-on, bounded, per-domain ring of recent coarse events —
    batch summaries, epoch publishes, monitor violations, GC major
    slices.  Unlike {!Trace} (armed per run, per-message volume) the
    recorder only sees a few events per second, so it stays recording
    in production and is dumped on demand: [GET /debug/ring] on the
    {!Export} listener, on a monitor violation, or on [SIGUSR2] (the
    CLI installs the handler for [serve]/[monitor] runs).  Entries
    carry a global sequence number from one atomic counter, so a dump
    merges the per-domain rings into one causal order.  Timestamps are
    {!clock_us} wall time; recorder contents never feed a regression
    gate. *)

module Recorder : sig
  type event =
    | Batch of { batch : int; queries : int; epoch : int; wall_us : float }
        (** one serve-engine batch completed *)
    | Epoch_published of { epoch : int; nodes : int }
        (** a store published a new epoch *)
    | Monitor_violation of {
        round : int;
        probe : string;
        value : float;
        limit : float;
        node : int;
      }
    | Gc_major of { heap_words : int; major_collections : int }
        (** end of a GC major cycle (only when the alarm is armed) *)
    | Note of string  (** free-form milestone *)

  type entry = {
    e_seq : int;  (** global recording order *)
    e_dom : int;  (** recording domain id *)
    e_t_us : float;  (** {!clock_us} at record time *)
    e_event : event;
  }

  (** Record one event into the calling domain's ring, overwriting the
      oldest entry when full.  Always on; a few words of allocation
      per call, so keep it off per-query paths. *)
  val record : event -> unit

  (** All buffered entries, merged across domains in sequence order. *)
  val entries : unit -> entry list

  (** The merged ring as one JSON array (oldest first). *)
  val to_json_string : unit -> string

  (** [dump fmt ()] writes {!to_json_string} to [fmt] and flushes. *)
  val dump : Format.formatter -> unit -> unit

  (** Resize every ring (default capacity 256 entries per domain),
      discarding current contents. *)
  val set_capacity : int -> unit

  (** Discard all entries and restart the sequence counter. *)
  val clear : unit -> unit

  (** Arm/disarm a [Gc.create_alarm] that records {!constructor-Gc_major} at
      the end of every major cycle.  Explicit, so allocation-gated
      benchmarks are not perturbed unless a caller opts in. *)
  val arm_gc_alarm : unit -> unit

  val disarm_gc_alarm : unit -> unit
end

(** {1 Snapshots and sinks} *)

module Snapshot : sig
  type dist_stats = {
    count : int;
    sum : float;
    sumsq : float;
    min : float;
    max : float;
  }

  type span_stats = { path : string; calls : int; seconds : float }

  type hist_stats = {
    h_count : int;
    h_sum : float;
    h_buckets : int array;
        (** per-bucket (non-cumulative) counts over
            {!Histogram.bounds}; length {!Histogram.buckets_len} *)
  }

  type t = {
    counters : (string * int) list;  (** sorted by name *)
    dists : (string * dist_stats) list;  (** sorted by name; count > 0 *)
    spans : span_stats list;  (** sorted by path *)
    gauges : (string * float) list;
        (** sorted by name; only gauges set since the last reset *)
    hists : (string * hist_stats) list;  (** sorted by name; count > 0 *)
  }

  val dist_mean : dist_stats -> float

  (** Population standard deviation, from count/sum/sumsq. *)
  val dist_stddev : dist_stats -> float

  val hist_mean : hist_stats -> float

  (** {!Histogram.quantile} over captured stats. *)
  val hist_quantile : hist_stats -> float -> float

  (** Capture the registry's current state.  Counters are reported
      even when zero; distributions and histograms only once observed.
      Safe to call from the {!Export} listener thread: the capture
      holds the registration mutex, so a concurrent first-use
      registration on the writer thread cannot resize a table
      mid-fold (cell values themselves are single-writer and
      word-sized — see DESIGN.md §13). *)
  val capture : unit -> t

  (** Parse the output of the {!val-json} sink (one JSON object per
      line).  Only the exact subset this module emits is understood.
      @raise Failure on malformed input. *)
  val of_json_lines : string -> t

  (** Parse the output of the {!val-csv} sink.
      @raise Failure on malformed input. *)
  val of_csv : string -> t

  (** [check_against ~threshold ~reference current] compares a fresh
      snapshot against a committed baseline and returns violations
      (empty = pass).  Counters, distribution observation counts, span
      call counts and histogram totals and per-bucket counts are
      deterministic for a fixed configuration and must match exactly;
      span seconds may exceed the reference by at most [threshold]
      (e.g. [0.5] = +50%).  Metrics present only in [current] are
      ignored, so adding instrumentation does not break existing
      baselines. *)
  val check_against : threshold:float -> reference:t -> t -> string list

  type mismatch = {
    m_kind : string;
        (** ["counter"], ["dist.count"], ["span.calls"],
            ["span.seconds"], ["hist.count"] or ["hist.bucket"] (whose
            [m_name] carries the bucket as [name[le=bound]]) *)
    m_name : string;
    m_expected : float;
    m_actual : float;  (** [nan] when missing from the current snapshot *)
  }

  (** Structured form of {!check_against} — same comparisons, one
      mismatch record per violated key, in reference order.  Gauges
      are skipped (instantaneous samples are not reproducible). *)
  val compare_against : threshold:float -> reference:t -> t -> mismatch list
end

(** A sink consumes one snapshot; the destination (file, formatter,
    buffer) is captured in the closure, so sinks are pluggable
    end-to-end: [Backbone.Config.sink], [--stats] in the CLI and the
    bench harness all take a value of this type. *)
type sink = Snapshot.t -> unit

(** Human-readable table: counters, span tree (indented by nesting),
    distributions (count/avg/stddev/min/max), histograms
    (count/avg/approximate p50 and p99), gauges. *)
val pretty : Format.formatter -> sink

(** JSON-lines: one [{"kind":...}] object per metric.  Floats are
    printed with 17 significant digits and round-trip exactly through
    {!Snapshot.of_json_lines}. *)
val json : Format.formatter -> sink

(** CSV with header [kind,name,a,b,c,d,e]; round-trips through
    {!Snapshot.of_csv}. *)
val csv : Format.formatter -> sink

(** [named_sink fmt name] maps ["pretty"], ["json"], ["csv"] to the
    sink above; [None] for anything else. *)
val named_sink : Format.formatter -> string -> sink option

(** [report sink] captures and emits in one step. *)
val report : sink -> unit

(** {1 Live exposition}

    A minimal single-threaded HTTP listener on stdlib [Unix] serving
    the registry while the process runs:

    - [GET /metrics] — the registry in Prometheus text exposition
      format: counters and gauges as single samples, dists as a
      [summary]'s [_sum]/[_count], spans as [span_calls]/[span_seconds]
      with a [path] label, histograms with cumulative [le] buckets;
    - [GET /healthz] — [200 ok] / [503] from the [health] callback
      (the CLI wires {!Core.Monitor}'s probe status in);
    - [GET /debug/ring] — the {!Recorder} contents as JSON;
    - any extra [routes] the caller injects (e.g. [/epoch] reporting
      the serve store's current epoch id).

    The accept loop runs on one systhread inside the calling domain:
    it interleaves with the writer at safepoints instead of running in
    parallel, and {!Snapshot.capture} holds the registration mutex, so
    a scrape is a consistent snapshot that never perturbs the query
    path (the registry stays single-writer; see DESIGN.md §13). *)

module Export : sig
  type handle

  (** [start ~port ()] binds [127.0.0.1:port] ([port = 0] picks an
      ephemeral port — see {!port}) and serves until {!stop}.
      @raise Unix.Unix_error when the port cannot be bound. *)
  val start :
    ?health:(unit -> bool * string) ->
    ?routes:(string * (unit -> string)) list ->
    port:int ->
    unit ->
    handle

  (** The actually-bound port. *)
  val port : handle -> int

  (** [/metrics] requests served so far. *)
  val scrape_count : handle -> int

  (** Stop the listener and join its thread (idempotent-ish: safe to
      call once per handle). *)
  val stop : handle -> unit

  (** The exposition text for one snapshot — what [/metrics] serves.
      Label values escape backslash, double-quote and newline, and
      HELP text escapes backslash and newline, per the Prometheus
      0.0.4 text format — so arbitrary span paths and registry keys
      survive the round-trip through {!parse_exposition}. *)
  val metrics_text : Snapshot.t -> string

  (** Parse exposition text into [(sample key, value)] pairs, where a
      labelled sample keeps its label block in the key (e.g.
      [span_calls{path="backbone/cds"}]).
      @raise Failure on any malformed line — scrape smokes re-parse
      the served text through this. *)
  val parse_exposition : string -> (string * float) list

  (** [check_snapshot samples snap] cross-checks parsed samples
      against an in-process snapshot: counters, dist counts, span
      calls, histogram totals and cumulative buckets must all match
      exactly.  Returns human-readable discrepancies ([[]] = agree). *)
  val check_snapshot : (string * float) list -> Snapshot.t -> string list

  (** Blocking one-shot HTTP GET against [127.0.0.1:port]; returns
      [(status line, body)].  For self-scrapes and tests. *)
  val get : port:int -> string -> string * string
end
