(** Observability: named monotonic counters, value distributions and
    nestable timing spans, behind a near-zero-cost interface.

    Everything hangs off one global registry so instrumented modules
    (geometry predicates, the grid, the Delaunay kernel, the
    distributed engines, the backbone pipeline) report through a
    single channel.  When disabled — the default — every hot-path hook
    is a single load-and-branch on {!enabled}; no allocation, no
    hashing, no clock reads.  Counter values are deterministic for a
    deterministic computation; span durations are wall-clock and are
    the only non-deterministic quantity a {!Snapshot.t} carries.

    Handles are created once, at module initialization time
    ([let c = Obs.counter "delaunay.insertions"]), and bumped in hot
    loops.  [counter]/[dist] are idempotent per name, so two modules
    naming the same metric share one cell.

    {!Trace} adds a second, independent switch for structured event
    tracing: per-domain ring buffers of typed events with a
    deterministic merge, a Chrome trace-event exporter, a folded-stacks
    profile and protocol message audits (see DESIGN.md §7). *)

(** {1 Switch} *)

(** The global on/off flag, exposed as a ref so hot paths can guard
    compound instrumentation ([if !Obs.on then ...]) at the cost of a
    single load.  Treat as read-only outside {!set_enabled}. *)
val on : bool ref

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [reset ()] zeroes every counter, distribution and span while
    keeping all registered handles valid. *)
val reset : unit -> unit

(** {1 Counters} *)

type counter

(** [counter name] returns the monotonic counter registered under
    [name], creating it at zero on first use. *)
val counter : string -> counter

(** [incr c] adds one when enabled; a no-op when disabled. *)
val incr : counter -> unit

(** [add c n] adds [n] when enabled; a no-op when disabled. *)
val add : counter -> int -> unit

(** Current value (reads even when disabled). *)
val value : counter -> int

(** {1 Distributions}

    Count / sum / sum-of-squares / min / max of an observed stream of
    values — enough for average sizes and their spread (grid query
    degrees, cavity sizes, per-node message counts) without storing
    samples. *)

type dist

val dist : string -> dist
val observe : dist -> float -> unit

(** {1 Spans}

    [span name f] times [f ()] with a wall clock and charges it to the
    path [parent/.../name] formed by the spans currently open on the
    (thread-unsafe, global) span stack.  Re-entering the same path
    accumulates: a snapshot reports calls and total seconds per path.
    When disabled it is exactly [f ()].  When {!Trace} is armed, entry
    and exit additionally record [Span_begin]/[Span_end] events. *)

val span : string -> (unit -> 'a) -> 'a

(** {1 Structured event tracing}

    A second switch, {!Trace.on}, arms recording of typed events into
    per-domain ring buffers.  Every hook is a single load-and-branch
    when disarmed.  Recording is lock-free (each domain owns its
    buffer, reached through [Domain.DLS]); when a ring fills, the
    oldest events are overwritten and counted in {!Trace.dropped}.

    {!Trace.events} merges all buffers deterministically: events
    recorded inside a {!Netgraph.Pool} job are stable-sorted by task
    index and spliced at the job's end marker, so the merged
    [(task, phase, payload)] sequence is bit-identical for any [--jobs]
    (timestamps and domain ids are the only scheduling-dependent
    fields). *)

module Trace : sig
  (** The trace switch; independent of {!Obs.on} so counters can stay
      cheap while events record, and vice versa.  Hot paths guard
      compound event construction with [if !Obs.Trace.on then ...]. *)
  val on : bool ref

  val enabled : unit -> bool

  (** [start ?capacity ()] clears all ring buffers, resizes them to
      [capacity] events (default [65536]; new per-domain buffers also
      use the latest capacity) and arms recording.  Must not be called
      while worker domains are recording. *)
  val start : ?capacity:int -> unit -> unit

  (** Disarm recording; buffered events stay available to {!events}. *)
  val stop : unit -> unit

  (** Events overwritten across all ring buffers since {!start}. *)
  val dropped : unit -> int

  type payload =
    | Span_begin of string  (** full span path, from {!Obs.span} *)
    | Span_end of string
    | Count of { name : string; delta : int }
        (** counter increment; consecutive same-name deltas coalesce *)
    | Send of { round : int; time : float; kind : string; src : int; dst : int }
        (** protocol transmission; [round = -1] for async engines,
            [dst = -1] for local broadcast *)
    | Deliver of {
        round : int;
        time : float;
        kind : string;
        src : int;
        dst : int;
      }
    | Job of { group : int; enter : bool }
        (** pool job bracket, internal — rewritten to
            [Span_begin/Span_end "pool.job"] by {!events} *)

  type event = {
    ts : float;  (** microseconds since {!start} *)
    dom : int;  (** recording domain id *)
    group : int;  (** pool job id, [-1] outside jobs *)
    task : int;  (** pool work-item index, [-1] outside jobs *)
    phase : string;
        (** the {!Obs.span} path open at record time; [""] inside pool
            tasks, where the caller's span stack cannot be read *)
    payload : payload;
  }

  (** {2 Recording hooks} *)

  val span_begin : string -> unit
  val span_end : string -> unit
  val count : string -> int -> unit

  val send : round:int -> time:float -> kind:string -> src:int -> dst:int -> unit
  val deliver :
    round:int -> time:float -> kind:string -> src:int -> dst:int -> unit

  (** {2 Pool integration}

      Used by {!Netgraph.Pool}: the caller allocates a group id and
      brackets the job; each participating domain declares the task it
      is about to run so its events carry [(group, task)]. *)

  val new_group : unit -> int
  val job_enter : int -> unit
  val job_leave : int -> unit
  val set_context : group:int -> task:int -> unit

  (** {2 Export} *)

  (** Deterministic merge of all per-domain buffers (see module
      comment).  Call from the domain that ran the traced code. *)
  val events : unit -> event list

  (** Chrome trace-event JSON ([chrome://tracing], Perfetto).  One
      event object per line; the exact subset emitted here parses back
      with {!read_chrome}. *)
  val write_chrome : Format.formatter -> event list -> unit

  (** Parse {!write_chrome} output.  Round-trips exactly (floats are
      printed with 17 significant digits).
      @raise Failure on malformed input. *)
  val read_chrome : string -> event list

  (** Folded stacks, one [path;to;span self-µs] line per span path,
      sorted — pipe into [flamegraph.pl]. *)
  val write_folded : Format.formatter -> event list -> unit

  type profile_row = {
    p_path : string;
    p_calls : int;
    p_total : float;  (** seconds, including children *)
    p_self : float;  (** seconds, excluding children *)
  }

  (** Aggregate span begin/end pairs (per domain) into calls /
      total / self time per span path, in first-seen order. *)
  val profile : event list -> profile_row list

  type audit_row = {
    a_phase : string;
    a_kind : string;
    a_sends : int;
    a_deliveries : int;
  }

  (** Message-complexity table: sends and deliveries grouped by
      (recording phase, message kind); phases in first-seen order,
      kinds sorted within a phase. *)
  val message_audit : event list -> audit_row list

  (** Least-squares slope of [log y] against [log x] — the empirical
      growth exponent; [nan] on fewer than two usable points. *)
  val fit_loglog_slope : (float * float) list -> float
end

(** {1 Snapshots and sinks} *)

module Snapshot : sig
  type dist_stats = {
    count : int;
    sum : float;
    sumsq : float;
    min : float;
    max : float;
  }

  type span_stats = { path : string; calls : int; seconds : float }

  type t = {
    counters : (string * int) list;  (** sorted by name *)
    dists : (string * dist_stats) list;  (** sorted by name; count > 0 *)
    spans : span_stats list;  (** first-entered order (execution order) *)
  }

  val dist_mean : dist_stats -> float

  (** Population standard deviation, from count/sum/sumsq. *)
  val dist_stddev : dist_stats -> float

  (** Capture the registry's current state.  Counters are reported
      even when zero; distributions only once observed. *)
  val capture : unit -> t

  (** Parse the output of the {!val-json} sink (one JSON object per
      line).  Only the exact subset this module emits is understood.
      @raise Failure on malformed input. *)
  val of_json_lines : string -> t

  (** Parse the output of the {!val-csv} sink.
      @raise Failure on malformed input. *)
  val of_csv : string -> t

  (** [check_against ~threshold ~reference current] compares a fresh
      snapshot against a committed baseline and returns violations
      (empty = pass).  Counters, distribution observation counts and
      span call counts are deterministic for a fixed configuration and
      must match exactly; span seconds may exceed the reference by at
      most [threshold] (e.g. [0.5] = +50%).  Metrics present only in
      [current] are ignored, so adding instrumentation does not break
      existing baselines. *)
  val check_against : threshold:float -> reference:t -> t -> string list
end

(** A sink consumes one snapshot; the destination (file, formatter,
    buffer) is captured in the closure, so sinks are pluggable
    end-to-end: [Backbone.Config.sink], [--stats] in the CLI and the
    bench harness all take a value of this type. *)
type sink = Snapshot.t -> unit

(** Human-readable table: counters, span tree (indented by nesting),
    distributions (count/avg/stddev/min/max). *)
val pretty : Format.formatter -> sink

(** JSON-lines: one [{"kind":...}] object per metric.  Floats are
    printed with 17 significant digits and round-trip exactly through
    {!Snapshot.of_json_lines}. *)
val json : Format.formatter -> sink

(** CSV with header [kind,name,a,b,c,d,e]; round-trips through
    {!Snapshot.of_csv}. *)
val csv : Format.formatter -> sink

(** [named_sink fmt name] maps ["pretty"], ["json"], ["csv"] to the
    sink above; [None] for anything else. *)
val named_sink : Format.formatter -> string -> sink option

(** [report sink] captures and emits in one step. *)
val report : sink -> unit
