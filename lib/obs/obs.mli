(** Observability: named monotonic counters, value distributions and
    nestable timing spans, behind a near-zero-cost interface.

    Everything hangs off one global registry so instrumented modules
    (geometry predicates, the grid, the Delaunay kernel, the
    distributed engines, the backbone pipeline) report through a
    single channel.  When disabled — the default — every hot-path hook
    is a single load-and-branch on {!enabled}; no allocation, no
    hashing, no clock reads.  Counter values are deterministic for a
    deterministic computation; span durations are wall-clock and are
    the only non-deterministic quantity a {!Snapshot.t} carries.

    Handles are created once, at module initialization time
    ([let c = Obs.counter "delaunay.insertions"]), and bumped in hot
    loops.  [counter]/[dist] are idempotent per name, so two modules
    naming the same metric share one cell. *)

(** {1 Switch} *)

(** The global on/off flag, exposed as a ref so hot paths can guard
    compound instrumentation ([if !Obs.on then ...]) at the cost of a
    single load.  Treat as read-only outside {!set_enabled}. *)
val on : bool ref

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [reset ()] zeroes every counter, distribution and span while
    keeping all registered handles valid. *)
val reset : unit -> unit

(** {1 Counters} *)

type counter

(** [counter name] returns the monotonic counter registered under
    [name], creating it at zero on first use. *)
val counter : string -> counter

(** [incr c] adds one when enabled; a no-op when disabled. *)
val incr : counter -> unit

(** [add c n] adds [n] when enabled; a no-op when disabled. *)
val add : counter -> int -> unit

(** Current value (reads even when disabled). *)
val value : counter -> int

(** {1 Distributions}

    Count / sum / min / max of an observed stream of values — enough
    for average sizes (grid query degrees, cavity sizes) without
    storing samples. *)

type dist

val dist : string -> dist
val observe : dist -> float -> unit

(** {1 Spans}

    [span name f] times [f ()] with a wall clock and charges it to the
    path [parent/.../name] formed by the spans currently open on the
    (thread-unsafe, global) span stack.  Re-entering the same path
    accumulates: a snapshot reports calls and total seconds per path.
    When disabled it is exactly [f ()]. *)

val span : string -> (unit -> 'a) -> 'a

(** {1 Snapshots and sinks} *)

module Snapshot : sig
  type dist_stats = { count : int; sum : float; min : float; max : float }
  type span_stats = { path : string; calls : int; seconds : float }

  type t = {
    counters : (string * int) list;  (** sorted by name *)
    dists : (string * dist_stats) list;  (** sorted by name; count > 0 *)
    spans : span_stats list;  (** first-entered order (execution order) *)
  }

  (** Capture the registry's current state.  Counters are reported
      even when zero; distributions only once observed. *)
  val capture : unit -> t

  (** Parse the output of the {!val-json} sink (one JSON object per
      line).  Only the exact subset this module emits is understood.
      @raise Failure on malformed input. *)
  val of_json_lines : string -> t

  (** Parse the output of the {!val-csv} sink.
      @raise Failure on malformed input. *)
  val of_csv : string -> t
end

(** A sink consumes one snapshot; the destination (file, formatter,
    buffer) is captured in the closure, so sinks are pluggable
    end-to-end: [Backbone.Config.sink], [--stats] in the CLI and the
    bench harness all take a value of this type. *)
type sink = Snapshot.t -> unit

(** Human-readable table: counters, span tree (indented by nesting),
    distributions. *)
val pretty : Format.formatter -> sink

(** JSON-lines: one [{"kind":...}] object per metric.  Floats are
    printed with 17 significant digits and round-trip exactly through
    {!Snapshot.of_json_lines}. *)
val json : Format.formatter -> sink

(** CSV with header [kind,name,a,b,c,d]; round-trips through
    {!Snapshot.of_csv}. *)
val csv : Format.formatter -> sink

(** [named_sink fmt name] maps ["pretty"], ["json"], ["csv"] to the
    sink above; [None] for anything else. *)
val named_sink : Format.formatter -> string -> sink option

(** [report sink] captures and emits in one step. *)
val report : sink -> unit
