(* Flat counting-sort spatial buckets.

   [Geometry.Grid] hashes cells into a Hashtbl and bumps Obs counters
   on every query, which makes it unusable from pool worker domains
   (the Obs registry is not domain-safe) and costly at 10^6 nodes.
   This grid is the shard pipeline's substrate instead: three int
   arrays, built once, immutable afterwards — reads are safe from any
   number of domains.  Buckets keep node ids in ascending order (the
   counting sort scans ids in order twice), so every iteration order
   below is deterministic.

   The same structure does double duty: with [cell_size = radius] it
   drives CSR-native UDG construction, and with [cell_size = tile
   side] its buckets ARE the tile ownership sets of the sharded
   pipeline. *)

module P = Geometry.Point

type t = {
  cell : float;
  x0 : float;
  y0 : float;
  nx : int;
  ny : int;
  start : int array;  (* bucket k holds order.(start.(k) .. start.(k+1)-1) *)
  order : int array;  (* node ids grouped by bucket, ascending within *)
  cell_ix : int array;  (* node -> bucket index *)
}

let cell_index t x y =
  let cx = int_of_float ((x -. t.x0) /. t.cell) in
  let cy = int_of_float ((y -. t.y0) /. t.cell) in
  let cx = if cx < 0 then 0 else if cx >= t.nx then t.nx - 1 else cx in
  let cy = if cy < 0 then 0 else if cy >= t.ny then t.ny - 1 else cy in
  (cy * t.nx) + cx

let create ~cell_size points =
  if cell_size <= 0. then invalid_arg "Cellgrid.create: cell_size <= 0";
  let n = Array.length points in
  let x0 = ref infinity and y0 = ref infinity in
  let x1 = ref neg_infinity and y1 = ref neg_infinity in
  Array.iter
    (fun (p : P.t) ->
      if p.x < !x0 then x0 := p.x;
      if p.x > !x1 then x1 := p.x;
      if p.y < !y0 then y0 := p.y;
      if p.y > !y1 then y1 := p.y)
    points;
  let x0 = if n = 0 then 0. else !x0 and y0 = if n = 0 then 0. else !y0 in
  let span lo hi = if n = 0 then 0. else hi -. lo in
  let dim s = max 1 (1 + int_of_float (s /. cell_size)) in
  let nx = dim (span x0 !x1) and ny = dim (span y0 !y1) in
  let t =
    {
      cell = cell_size;
      x0;
      y0;
      nx;
      ny;
      start = Array.make ((nx * ny) + 1) 0;
      order = Array.make n 0;
      cell_ix = Array.make n 0;
    }
  in
  for u = 0 to n - 1 do
    let k = cell_index t points.(u).P.x points.(u).P.y in
    t.cell_ix.(u) <- k;
    t.start.(k + 1) <- t.start.(k + 1) + 1
  done;
  for k = 0 to (nx * ny) - 1 do
    t.start.(k + 1) <- t.start.(k) + t.start.(k + 1)
  done;
  let cursor = Array.copy t.start in
  for u = 0 to n - 1 do
    let k = t.cell_ix.(u) in
    t.order.(cursor.(k)) <- u;
    cursor.(k) <- cursor.(k) + 1
  done;
  t

let cells t = t.nx * t.ny
let cols t = t.nx
let rows t = t.ny
let cell_of t u = t.cell_ix.(u)

let iter_cell t k f =
  for i = t.start.(k) to t.start.(k + 1) - 1 do
    f t.order.(i)
  done

let nodes_of t k =
  Array.sub t.order t.start.(k) (t.start.(k + 1) - t.start.(k))

let population t k = t.start.(k + 1) - t.start.(k)

(* the 3x3 cell block around [u]'s cell, cells in (row, column) order,
   ascending node ids within each cell *)
let iter_near t u f =
  let k = t.cell_ix.(u) in
  let cx = k mod t.nx and cy = k / t.nx in
  for dy = -1 to 1 do
    let y = cy + dy in
    if y >= 0 && y < t.ny then
      for dx = -1 to 1 do
        let x = cx + dx in
        if x >= 0 && x < t.nx then iter_cell t ((y * t.nx) + x) f
      done
  done

(* ring of cells at Chebyshev distance exactly [r] around cell [k] *)
let iter_ring_cells t k r f =
  let cx = k mod t.nx and cy = k / t.nx in
  for dy = -r to r do
    let y = cy + dy in
    if y >= 0 && y < t.ny then
      for dx = -r to r do
        if abs dx = r || abs dy = r then begin
          let x = cx + dx in
          if x >= 0 && x < t.nx then f ((y * t.nx) + x)
        end
      done
  done

let cell_at t (p : P.t) = cell_index t p.P.x p.P.y
