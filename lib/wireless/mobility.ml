module P = Geometry.Point

type t = { pos : P.t array; advance : unit -> unit }

let c_steps = Obs.counter "mobility.steps"
let c_waypoints = Obs.counter "mobility.waypoints"
let d_displacement = Obs.dist "mobility.displacement"

let positions t = t.pos

let step t =
  Obs.incr c_steps;
  t.advance ()

let step_many t k =
  for _ = 1 to k do
    step t
  done

let clamp side v = Float.max 0. (Float.min side v)

let random_waypoint rng ~side ~min_speed ~max_speed ~init =
  if min_speed < 0. || max_speed < min_speed then
    invalid_arg "Mobility.random_waypoint: bad speed range";
  let n = Array.length init in
  let pos = Array.copy init in
  let fresh_speed () =
    min_speed +. Rand.float rng (Float.max epsilon_float (max_speed -. min_speed))
  in
  let fresh_waypoint () = P.make (Rand.float rng side) (Rand.float rng side) in
  let waypoint = Array.init n (fun _ -> fresh_waypoint ()) in
  let speed = Array.init n (fun _ -> fresh_speed ()) in
  let advance () =
    for i = 0 to n - 1 do
      let p = pos.(i) and w = waypoint.(i) in
      let d = P.dist p w in
      if d <= speed.(i) then begin
        pos.(i) <- w;
        waypoint.(i) <- fresh_waypoint ();
        speed.(i) <- fresh_speed ();
        Obs.incr c_waypoints
      end
      else pos.(i) <- P.add p (P.scale (speed.(i) /. d) (P.sub w p));
      if !Obs.on then Obs.observe d_displacement (P.dist p pos.(i))
    done
  in
  { pos; advance }

let gauss_markov rng ~side ~alpha ~mean_speed ~init =
  if alpha < 0. || alpha > 1. then invalid_arg "Mobility.gauss_markov: alpha";
  let n = Array.length init in
  let pos = Array.copy init in
  let vel =
    Array.init n (fun _ ->
        let theta = Rand.float rng (2. *. Float.pi) in
        P.scale mean_speed (P.make (cos theta) (sin theta)))
  in
  let noise = mean_speed *. sqrt (1. -. (alpha *. alpha)) in
  let advance () =
    for i = 0 to n - 1 do
      (* AR(1) velocity update *)
      let v = vel.(i) in
      let v' =
        P.make
          ((alpha *. v.P.x) +. (noise *. Rand.gaussian rng))
          ((alpha *. v.P.y) +. (noise *. Rand.gaussian rng))
      in
      let p = P.add pos.(i) v' in
      (* bounce off the borders by reflecting position and velocity *)
      let reflect lo hi x vx =
        if x < lo then (lo +. (lo -. x), -.vx)
        else if x > hi then (hi -. (x -. hi), -.vx)
        else (x, vx)
      in
      let x, vx = reflect 0. side p.P.x v'.P.x in
      let y, vy = reflect 0. side p.P.y v'.P.y in
      let p0 = pos.(i) in
      pos.(i) <- P.make (clamp side x) (clamp side y);
      vel.(i) <- P.make vx vy;
      if !Obs.on then Obs.observe d_displacement (P.dist p0 pos.(i))
    done
  in
  { pos; advance }

let partial rng ~side ~mobile ~speed ~init =
  if mobile < 0. || mobile > 1. then invalid_arg "Mobility.partial: mobile";
  let n = Array.length init in
  let moving = Array.init n (fun _ -> Rand.float rng 1. < mobile) in
  let inner = random_waypoint rng ~side ~min_speed:speed ~max_speed:speed ~init in
  let pos = Array.copy init in
  let advance () =
    (* not [step]: one model step counts once *)
    inner.advance ();
    let updated = positions inner in
    for i = 0 to n - 1 do
      if moving.(i) then pos.(i) <- updated.(i)
    done
  in
  { pos; advance }
