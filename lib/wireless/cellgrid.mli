(** Flat, immutable spatial buckets (counting sort; no Hashtbl, no
    {!Obs}).

    The shard pipeline's spatial substrate: built once from the node
    positions, then read concurrently from pool worker domains —
    unlike {!Geometry.Grid}, whose Hashtbl buckets and Obs-instrumented
    queries must stay on the calling domain.  Buckets hold node ids in
    ascending order, so every iteration here is deterministic.

    With [cell_size] = the transmission radius this drives CSR-native
    UDG construction ({!Udg.build_csr}); with [cell_size] = the tile
    side its buckets are exactly the tile ownership sets of
    {!Core.Shard}. *)

type t

(** [create ~cell_size points] buckets the points into a grid of
    square cells covering their bounding box.
    @raise Invalid_argument when [cell_size <= 0]. *)
val create : cell_size:float -> Geometry.Point.t array -> t

(** Total number of cells ([cols * rows], at least 1). *)
val cells : t -> int

val cols : t -> int
val rows : t -> int

(** Bucket index of node [u]. *)
val cell_of : t -> int -> int

(** Bucket index of an arbitrary position (clamped to the grid). *)
val cell_at : t -> Geometry.Point.t -> int

(** [iter_cell t k f] visits bucket [k]'s nodes, ascending ids. *)
val iter_cell : t -> int -> (int -> unit) -> unit

(** Bucket [k]'s nodes as a fresh array, ascending ids. *)
val nodes_of : t -> int -> int array

val population : t -> int -> int

(** [iter_near t u f] visits every node of the 3x3 cell block around
    [u]'s cell (including [u] itself) — the candidate set for any
    within-[cell_size] range query. *)
val iter_near : t -> int -> (int -> unit) -> unit

(** [iter_ring_cells t k r f] visits the cell indices at Chebyshev
    distance exactly [r] from cell [k] ([r = 0]: just [k]) — halo
    enumeration for the tile tests. *)
val iter_ring_cells : t -> int -> int -> (int -> unit) -> unit
