(** Unit disk graphs.

    Two nodes are linked exactly when their Euclidean distance is at
    most the transmission radius; after the paper's scaling the radius
    is "one unit", but the experiments vary it, so it stays a
    parameter here.  Construction uses the spatial grid, i.e. the same
    neighbor-discovery a node would do by listening locally. *)

(** [build points ~radius] is the unit disk graph of range [radius].
    @raise Invalid_argument when [radius <= 0]. *)
val build : Geometry.Point.t array -> radius:float -> Netgraph.Graph.t

(** [build_csr points ~radius] is the same unit disk graph, emitted
    directly as a {!Netgraph.Csr} snapshot — no intermediate mutable
    graph, so this is the entry point for million-node pipelines.
    With [pool], the per-node count/fill passes fan out across its
    domains; the snapshot is bit-identical to
    [Csr.of_graph (build points ~radius)] for any job count.
    @raise Invalid_argument when [radius <= 0]. *)
val build_csr :
  ?pool:Netgraph.Pool.t ->
  Geometry.Point.t array ->
  radius:float ->
  Netgraph.Csr.t

(** [neighborhood points ~radius u ~hops] is the set of nodes within
    [hops] hops of [u] in the UDG (the paper's [N_k(u)], including [u]
    itself), computed from an existing graph. *)
val neighborhood : Netgraph.Graph.t -> int -> hops:int -> int list

(** [is_udg points ~radius g] checks that [g] is exactly the unit disk
    graph of [points] — every in-range pair linked, no out-of-range
    link. *)
val is_udg : Geometry.Point.t array -> radius:float -> Netgraph.Graph.t -> bool

(** [build_quasi rng points ~r_min ~r_max] is the quasi unit disk
    graph, the standard relaxation of the paper's idealized radio
    model (its future-work section): pairs within [r_min] are always
    linked, pairs beyond [r_max] never, and pairs in between are
    linked with probability falling linearly from 1 at [r_min] to 0
    at [r_max].  With [r_min = r_max] this is exactly {!build}.  The
    robustness benches run the paper's construction on these graphs
    to see which guarantees survive a non-ideal radio.
    @raise Invalid_argument unless [0 < r_min <= r_max]. *)
val build_quasi :
  Rand.t ->
  Geometry.Point.t array ->
  r_min:float ->
  r_max:float ->
  Netgraph.Graph.t
