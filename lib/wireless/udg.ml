module P = Geometry.Point

let build points ~radius =
  if radius <= 0. then invalid_arg "Udg.build: radius <= 0";
  let n = Array.length points in
  let g = Netgraph.Graph.create n in
  if n > 1 then begin
    let grid = Geometry.Grid.create ~cell_size:radius points in
    for u = 0 to n - 1 do
      List.iter
        (fun v -> if v > u then Netgraph.Graph.add_edge g u v)
        (Geometry.Grid.neighbors_within grid u radius)
    done
  end;
  g

let neighborhood g u ~hops =
  let dist = Netgraph.Traversal.bfs g u in
  let acc = ref [] in
  Array.iteri (fun v d -> if d <= hops then acc := v :: !acc) dist;
  List.rev !acc

let is_udg points ~radius g =
  let n = Array.length points in
  Netgraph.Graph.node_count g = n
  &&
  if radius <= 0. then
    (* degenerate radius the grid cannot index; only coincident pairs
       at radius = 0 can be in range, so scan pairs directly *)
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let in_range = P.dist points.(u) points.(v) <= radius in
        if in_range <> Netgraph.Graph.has_edge g u v then ok := false
      done
    done;
    !ok
  else if n <= 1 then Netgraph.Graph.edge_count g = 0
  else begin
    (* every in-range pair (found by the grid, O(n) of them for
       bounded density) must be an edge; then matching edge counts
       rule out any out-of-range edge without scanning the n^2
       absent pairs *)
    let grid = Geometry.Grid.create ~cell_size:radius points in
    let in_range = ref 0 in
    let all_edges = ref true in
    for u = 0 to n - 1 do
      List.iter
        (fun v ->
          if v > u then begin
            incr in_range;
            if not (Netgraph.Graph.has_edge g u v) then all_edges := false
          end)
        (Geometry.Grid.neighbors_within grid u radius)
    done;
    !all_edges && Netgraph.Graph.edge_count g = !in_range
  end


let build_quasi rng points ~r_min ~r_max =
  if r_min <= 0. || r_max < r_min then
    invalid_arg "Udg.build_quasi: need 0 < r_min <= r_max";
  let n = Array.length points in
  let g = Netgraph.Graph.create n in
  if n > 1 then begin
    let grid = Geometry.Grid.create ~cell_size:r_max points in
    for u = 0 to n - 1 do
      List.iter
        (fun v ->
          if v > u then begin
            let d = P.dist points.(u) points.(v) in
            let keep =
              d <= r_min
              || (r_max > r_min
                 && Rand.float rng 1. < (r_max -. d) /. (r_max -. r_min))
            in
            if keep then Netgraph.Graph.add_edge g u v
          end)
        (Geometry.Grid.neighbors_within grid u r_max)
    done
  end;
  g
