module P = Geometry.Point

let build points ~radius =
  if radius <= 0. then invalid_arg "Udg.build: radius <= 0";
  let n = Array.length points in
  let g = Netgraph.Graph.create n in
  if n > 1 then begin
    let grid = Geometry.Grid.create ~cell_size:radius points in
    for u = 0 to n - 1 do
      List.iter
        (fun v -> if v > u then Netgraph.Graph.add_edge g u v)
        (Geometry.Grid.neighbors_within grid u radius)
    done
  end;
  g

(* CSR-native construction: two grid passes (count, fill) with the
   same in-range predicate as [build], so the edge set is identical;
   both passes write only node-[u]-owned slots and read the immutable
   cell grid, so they fan out over the pool's domains and the result
   is bit-identical for any job count. *)
let build_csr ?pool points ~radius =
  if radius <= 0. then invalid_arg "Udg.build_csr: radius <= 0";
  let n = Array.length points in
  let deg = Array.make (max 1 (n + 1)) 0 in
  if n > 1 then begin
    let grid = Cellgrid.create ~cell_size:radius points in
    let for_all_nodes body =
      match pool with
      | Some p -> Netgraph.Pool.parallel_for p ~n (fun () -> body)
      | None ->
        for u = 0 to n - 1 do
          body u
        done
    in
    let count u =
      let d = ref 0 in
      Cellgrid.iter_near grid u (fun v ->
          if v <> u && P.dist points.(u) points.(v) <= radius then incr d);
      deg.(u + 1) <- !d
    in
    for_all_nodes count;
    let offsets = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      offsets.(u + 1) <- offsets.(u) + deg.(u + 1)
    done;
    let targets = Array.make offsets.(n) 0 in
    let fill u =
      let k = ref offsets.(u) in
      Cellgrid.iter_near grid u (fun v ->
          if v <> u && P.dist points.(u) points.(v) <= radius then begin
            targets.(!k) <- v;
            incr k
          end);
      (* cells are scanned in row-major order, so the row is not yet
         sorted by id; degrees are tiny — insertion sort in place *)
      for i = offsets.(u) + 1 to offsets.(u + 1) - 1 do
        let x = targets.(i) in
        let j = ref (i - 1) in
        while !j >= offsets.(u) && targets.(!j) > x do
          targets.(!j + 1) <- targets.(!j);
          decr j
        done;
        targets.(!j + 1) <- x
      done
    in
    for_all_nodes fill;
    Netgraph.Csr.of_rows ~offsets ~targets ()
  end
  else
    Netgraph.Csr.of_rows ~offsets:(Array.make (n + 1) 0) ~targets:[||] ()

let neighborhood g u ~hops =
  let dist = Netgraph.Traversal.bfs g u in
  let acc = ref [] in
  Array.iteri (fun v d -> if d <= hops then acc := v :: !acc) dist;
  List.rev !acc

let is_udg points ~radius g =
  let n = Array.length points in
  Netgraph.Graph.node_count g = n
  &&
  if radius <= 0. then
    (* degenerate radius the grid cannot index; only coincident pairs
       at radius = 0 can be in range, so scan pairs directly *)
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let in_range = P.dist points.(u) points.(v) <= radius in
        if in_range <> Netgraph.Graph.has_edge g u v then ok := false
      done
    done;
    !ok
  else if n <= 1 then Netgraph.Graph.edge_count g = 0
  else begin
    (* every in-range pair (found by the grid, O(n) of them for
       bounded density) must be an edge; then matching edge counts
       rule out any out-of-range edge without scanning the n^2
       absent pairs *)
    let grid = Geometry.Grid.create ~cell_size:radius points in
    let in_range = ref 0 in
    let all_edges = ref true in
    for u = 0 to n - 1 do
      List.iter
        (fun v ->
          if v > u then begin
            incr in_range;
            if not (Netgraph.Graph.has_edge g u v) then all_edges := false
          end)
        (Geometry.Grid.neighbors_within grid u radius)
    done;
    !all_edges && Netgraph.Graph.edge_count g = !in_range
  end


let build_quasi rng points ~r_min ~r_max =
  if r_min <= 0. || r_max < r_min then
    invalid_arg "Udg.build_quasi: need 0 < r_min <= r_max";
  let n = Array.length points in
  let g = Netgraph.Graph.create n in
  if n > 1 then begin
    let grid = Geometry.Grid.create ~cell_size:r_max points in
    for u = 0 to n - 1 do
      List.iter
        (fun v ->
          if v > u then begin
            let d = P.dist points.(u) points.(v) in
            let keep =
              d <= r_min
              || (r_max > r_min
                 && Rand.float rng 1. < (r_max -. d) /. (r_max -. r_min))
            in
            if keep then Netgraph.Graph.add_edge g u v
          end)
        (Geometry.Grid.neighbors_within grid u r_max)
    done
  end;
  g
