(** The rule catalog: project invariants checked at the token level.

    Families (see DESIGN.md §9 for the rationale per rule):
    - determinism: D001 no [Stdlib.Random]; D002 no order-leaking
      [Hashtbl.iter]/[fold]; D003 no wall clocks outside lib/obs and
      bench.
    - float-robustness: F001 no polymorphic [compare]/[min]/[max] on
      floats in lib/geometry, lib/netgraph, lib/delaunay; F002 no
      exact float-literal equality outside predicates.ml.
    - multicore-safety: M001 no module-toplevel mutable state in
      libraries reachable from [Netgraph.Pool] workers, unless
      [Atomic]/[Domain.DLS]-based or annotated
      [(* lint: domain-local reason *)]; M002 no
      [Graph.add_edge]/[remove_edge] on lib/core construction paths
      (build through [Netgraph.Builder]/[Csr] or seal an edge list).
    - hygiene: H001 every lib module has an .mli; H002 no
      [Obj.magic]; H003 no bare [assert false] / empty [failwith]. *)

type ctx = {
  path : string;  (** repo-relative, '/'-separated *)
  code : Tokenizer.token array;  (** comments stripped *)
  comments : Tokenizer.token list;
  lines : string array;  (** source lines, for excerpts *)
  has_mli : bool;  (** a sibling .mli exists (H001) *)
}

type rule = {
  id : string;  (** e.g. ["D001"] *)
  family : string;
  severity : Diag.severity;
  title : string;
  doc : string;  (** rationale, reused by [--list-rules] and the docs *)
  check : ctx -> Diag.t list;
}

(** All rules, in catalog order (stable, id-sorted). *)
val all : rule list

val find : string -> rule option
