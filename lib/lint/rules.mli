(** The local rule catalog: single-file project invariants checked at
    the token level.  The determinism and multicore rules (D001 D002
    D003 M001 M002) and the parallel-region E-rules are
    interprocedural and live in {!Effects}; this catalog holds the
    rules a single compilation unit can answer.

    Families (see DESIGN.md §9 for the rationale per rule):
    - float-robustness: F001 no polymorphic [compare]/[min]/[max] on
      floats in lib/geometry, lib/netgraph, lib/delaunay; F002 no
      exact float-literal equality outside predicates.ml.
    - hygiene: H001 every lib module has an .mli; H002 no
      [Obj.magic]; H003 no bare [assert false] / empty [failwith];
      O001 metric name literals follow the dotted convention; O002
      protocol trace events flow through [Distsim.Stamp]. *)

type ctx = {
  path : string;  (** repo-relative, '/'-separated *)
  code : Tokenizer.token array;  (** comments stripped *)
  comments : Tokenizer.token list;
  lines : string array;  (** source lines, for excerpts *)
  has_mli : bool;  (** a sibling .mli exists (H001) *)
}

type rule = {
  id : string;  (** e.g. ["F001"] *)
  family : string;
  severity : Diag.severity;
  title : string;
  doc : string;  (** rationale, reused by [--list-rules] and the docs *)
  check : ctx -> Diag.t list;
}

(** All local rules, in catalog order (stable, id-sorted). *)
val all : rule list

val find : string -> rule option
