(** The committed baseline of grandfathered findings.

    Format: one tab-separated entry per line,
    [RULE <tab> FILE <tab> COUNT <tab> REASON], matching up to [COUNT]
    findings of [RULE] in [FILE] in position order — a new finding of
    an already-baselined kind still fails.  ['#'] comments and blank
    lines are ignored; the reason is mandatory. *)

type entry = { rule : string; file : string; count : int; reason : string }

(** Raises [Failure] with a line number on malformed entries. *)
val of_string : string -> entry list

(** [read path] — {!of_string} on a file's contents. *)
val read : string -> entry list

(** Render entries with the format header; {!of_string} round-trips. *)
val to_string : entry list -> string

val write : string -> entry list -> unit

(** [apply entries findings] splits findings (sorted by position) into
    (still failing, grandfathered-with-reason). *)
val apply :
  entry list -> Diag.t list -> Diag.t list * (Diag.t * string) list

(** Collapse findings into entries (per rule x file counts), e.g. for
    [--write-baseline]; every entry carries [reason]. *)
val of_findings : reason:string -> Diag.t list -> entry list

(** [merge_reasons ~old entries] carries the written reasons of [old]
    over to matching (rule, file) entries, so [--write-baseline]
    prunes stale entries without losing the debt notes on surviving
    ones. *)
val merge_reasons : old:entry list -> entry list -> entry list
