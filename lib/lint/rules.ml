(* The rule catalog.  Each rule is a pure function from a tokenized
   compilation unit to findings; scoping (which directories a rule
   patrols) lives with the rule so the catalog is self-describing.
   Token-level checks are deliberately conservative: a miss is cheap
   (review catches it), a false positive costs a suppression with a
   written reason — so every heuristic errs toward the patterns that
   actually appear in this repo. *)

module T = Tokenizer

type ctx = {
  path : string;  (* repo-relative, '/'-separated *)
  code : T.token array;  (* comments stripped *)
  comments : T.token list;
  lines : string array;
  has_mli : bool;
}

type rule = {
  id : string;
  family : string;
  severity : Diag.severity;
  title : string;
  doc : string;
  check : ctx -> Diag.t list;
}

(* ---------- shared helpers ---------- *)

let excerpt ctx line =
  if line >= 1 && line <= Array.length ctx.lines then
    String.trim ctx.lines.(line - 1)
  else ""

let finding ctx rule severity line col message =
  {
    Diag.rule;
    severity;
    file = ctx.path;
    line;
    col;
    message;
    excerpt = excerpt ctx line;
  }

let under dir path =
  let dir = dir ^ "/" in
  String.length path >= String.length dir
  && String.sub path 0 (String.length dir) = dir

let in_any dirs path = List.exists (fun d -> under d path) dirs

let tok ctx i =
  if i >= 0 && i < Array.length ctx.code then Some ctx.code.(i) else None

let tok_text ctx i = match tok ctx i with Some t -> t.T.text | None -> ""

(* The determinism and multicore rules (D001 D002 D003 M001 M002) that
   used to live here as path heuristics were retargeted to
   reachability-based diagnostics in [Effects]; they fire only on
   sites whose function is reachable from a Netgraph.Pool callback,
   and each finding carries the witness call chain.  This catalog
   keeps the purely local, single-file rules. *)

(* ---------- F001: polymorphic compare / min / max ---------- *)

let float_scope = [ "lib/geometry"; "lib/netgraph"; "lib/delaunay" ]

let is_definition_prev ctx i =
  match tok_text ctx (i - 1) with
  | "let" | "and" | "val" | "method" | "external" -> true
  | _ -> false

let float_flavored t =
  t.T.kind = T.Float_lit
  || (t.T.kind = T.Ident
     &&
     match t.T.text with
     | "infinity" | "neg_infinity" | "nan" | "epsilon_float" -> true
     | _ -> false)

let f001_check ctx =
  if not (in_any float_scope ctx.path) then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i t ->
        if t.T.kind = T.Ident && not (is_definition_prev ctx i) then
          match t.T.text with
          | "compare" | "Stdlib.compare" ->
            out :=
              finding ctx "F001" Diag.Error t.T.line t.T.col
                "polymorphic compare in float-bearing code; use \
                 Float.compare / Int.compare or a typed comparator"
              :: !out
          | "min" | "max" | "Stdlib.min" | "Stdlib.max" ->
            let floaty =
              (match tok ctx (i + 1) with
              | Some u -> float_flavored u
              | None -> false)
              ||
              match tok ctx (i + 2) with
              | Some u -> float_flavored u
              | None -> false
            in
            if floaty then
              out :=
                finding ctx "F001" Diag.Error t.T.line t.T.col
                  ("polymorphic " ^ t.T.text
                 ^ " applied to a float; use Float.min / Float.max")
                :: !out
          | _ -> ())
      ctx.code;
    List.rev !out
  end

(* ---------- F002: exact float-literal equality ---------- *)

let f002_binding_context ctx i =
  (* [i] indexes the '='.  Skip bindings, record fields and default
     arguments: [let x = 0.], [{ x = 0.; y = 0. }], [{ r with x = 0. }],
     [?(eps = 1e-9)]. *)
  match tok ctx (i - 1) with
  | Some p when p.T.kind = T.Ident -> (
    match tok_text ctx (i - 2) with
    | "let" | "and" | "{" | ";" | "with" | "mutable" | "?" | "~" -> true
    | "(" -> tok_text ctx (i - 3) = "?"
    | _ -> false)
  | _ -> false

let f002_check ctx =
  if
    (not (in_any float_scope ctx.path))
    || ctx.path = "lib/geometry/predicates.ml"
  then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i t ->
        if t.T.kind = T.Op && (t.T.text = "=" || t.T.text = "<>") then begin
          let lit u = u.T.kind = T.Float_lit || u.T.text = "nan" in
          let neighbor =
            (match tok ctx (i + 1) with Some u -> lit u | None -> false)
            || match tok ctx (i - 1) with Some u -> lit u | None -> false
          in
          if neighbor && not (f002_binding_context ctx i) then
            out :=
              finding ctx "F002" Diag.Error t.T.line t.T.col
                "exact float equality against a literal; use Float.equal, \
                 a sign test, or an exact predicate in \
                 Geometry.Predicates"
              :: !out
        end)
      ctx.code;
    List.rev !out
  end

(* ---------- H001: every library module has an interface ---------- *)

let h001_check ctx =
  if under "lib" ctx.path && not ctx.has_mli then
    [
      finding ctx "H001" Diag.Error 1 1
        "library module without an .mli: every lib/**/*.ml commits to an \
         interface";
    ]
  else []

(* ---------- H002: Obj.magic ---------- *)

let h002_check ctx =
  Array.to_list ctx.code
  |> List.filter_map (fun t ->
         if
           t.T.kind = T.Ident
           && T.has_component t "Obj"
           && T.last_component t = "magic"
         then
           Some
             (finding ctx "H002" Diag.Error t.T.line t.T.col
                "Obj.magic defeats the type system; find a typed \
                 representation")
         else None)

(* ---------- H003: silent dead ends ---------- *)

let h003_check ctx =
  if under "test" ctx.path then []
  else begin
    let comment_lines =
      List.fold_left (fun acc c -> c.T.line :: acc) [] ctx.comments
    in
    let out = ref [] in
    Array.iteri
      (fun i t ->
        if t.T.kind = T.Ident && t.T.text = "assert"
           && tok_text ctx (i + 1) = "false"
        then begin
          if not (List.mem t.T.line comment_lines) then
            out :=
              finding ctx "H003" Diag.Warning t.T.line t.T.col
                "bare 'assert false': state why the branch is unreachable \
                 in a same-line comment, or raise a descriptive exception"
              :: !out
        end
        else if t.T.kind = T.Ident && t.T.text = "failwith" then
          match tok ctx (i + 1) with
          | Some u when u.T.kind = T.String_lit && String.trim u.T.text = ""
            ->
            out :=
              finding ctx "H003" Diag.Warning t.T.line t.T.col
                "failwith with an empty message explains nothing; say what \
                 failed"
              :: !out
          | _ -> ())
      ctx.code;
    List.rev !out
  end

(* ---------- O001: metric name literals follow the naming convention ---------- *)

let o001_registration = function
  | "counter" | "dist" | "gauge" | "histogram" -> true
  | _ -> false

let o001_valid name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.')
       name

let o001_check ctx =
  let out = ref [] in
  Array.iteri
    (fun i t ->
      if
        t.T.kind = T.Ident
        && T.has_component t "Obs"
        && o001_registration (T.last_component t)
      then
        (* only literal registrations are checkable; a computed name
           (Printf.sprintf ...) shows up as '(' and is skipped *)
        match tok ctx (i + 1) with
        | Some u when u.T.kind = T.String_lit ->
          if not (o001_valid u.T.text) then
            out :=
              finding ctx "O001" Diag.Error u.T.line u.T.col
                (Printf.sprintf
                   "metric name %S breaks the dotted lowercase convention \
                    ([a-z0-9_.]+); registry keys sort into reports and \
                    become /metrics sample names"
                   u.T.text)
              :: !out
        | _ -> ())
    ctx.code;
  List.rev !out

(* ---------- O002: protocol trace events only via Distsim.Stamp ---------- *)

let o002_hook = function "send" | "deliver" -> true | _ -> false

let o002_check ctx =
  (* Raw [Obs.Trace.send]/[Obs.Trace.deliver] calls outside the
     stamping helper fork the Lamport clocks and desynchronize the
     happens-before DAG.  lib/distsim hosts Stamp (the single writer)
     and lib/obs defines the hooks; tests exercising the raw hooks are
     out of scope. *)
  if not (in_any [ "lib"; "bin" ] ctx.path) then []
  else if in_any [ "lib/distsim"; "lib/obs" ] ctx.path then []
  else
    Array.to_list ctx.code
    |> List.filter_map (fun t ->
           if
             t.T.kind = T.Ident
             && T.has_component t "Trace"
             && o002_hook (T.last_component t)
           then
             Some
               (finding ctx "O002" Diag.Error t.T.line t.T.col
                  (Printf.sprintf
                     "raw %s forks the Lamport clocks; protocol Send/Deliver \
                      events must be emitted through Distsim.Stamp (the \
                      single stamping writer)"
                     t.T.text))
           else None)

(* ---------- catalog ---------- *)

let all =
  [
    {
      id = "F001";
      family = "float-robustness";
      severity = Diag.Error;
      title = "no polymorphic compare on floats";
      doc =
        "Polymorphic compare/min/max in lib/geometry, lib/netgraph and \
         lib/delaunay boxes its arguments, falls through to C, and orders \
         nan inconsistently with (<).  Use Float.compare / Int.compare or \
         a typed comparator.";
      check = f001_check;
    };
    {
      id = "F002";
      family = "float-robustness";
      severity = Diag.Error;
      title = "no exact float-literal equality";
      doc =
        "x = 0. style comparisons are exact and silently false for nan; \
         outside lib/geometry/predicates.ml (whose expansion arithmetic \
         makes zero tests exact) use Float.equal, a sign test, or an exact \
         predicate.";
      check = f002_check;
    };
    {
      id = "H001";
      family = "hygiene";
      severity = Diag.Error;
      title = "every library module has an .mli";
      doc =
        "An .mli per lib/**/*.ml keeps the dependency surface explicit and \
         lets warnings catch dead code.";
      check = h001_check;
    };
    {
      id = "H002";
      family = "hygiene";
      severity = Diag.Error;
      title = "no Obj.magic";
      doc = "Obj.magic hides type errors until runtime memory corruption.";
      check = h002_check;
    };
    {
      id = "H003";
      family = "hygiene";
      severity = Diag.Warning;
      title = "no silent dead ends";
      doc =
        "A bare 'assert false' (no same-line comment) or an empty failwith \
         message turns an impossible state into an undiagnosable crash; \
         say why the branch cannot happen.";
      check = h003_check;
    };
    {
      id = "O001";
      family = "hygiene";
      severity = Diag.Error;
      title = "metric name literals follow the dotted convention";
      doc =
        "Obs.counter/dist/gauge/histogram name literals must be nonempty \
         dotted lowercase ([a-z0-9_.]+): registry keys sort into every \
         report and become Prometheus sample names on /metrics, where a \
         typo'd or CamelCase name silently forks a new time series.";
      check = o001_check;
    };
    {
      id = "O002";
      family = "hygiene";
      severity = Diag.Error;
      title = "protocol trace events flow through Distsim.Stamp";
      doc =
        "Obs.Trace.send / Obs.Trace.deliver carry Lamport stamps that only \
         Distsim.Stamp maintains; constructing protocol events anywhere \
         else (outside lib/distsim and the lib/obs definitions) forks the \
         clocks and corrupts the happens-before DAG Obs.Causal rebuilds.";
      check = o002_check;
    };
  ]

let find id = List.find_opt (fun r -> r.id = id) all
