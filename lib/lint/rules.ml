(* The rule catalog.  Each rule is a pure function from a tokenized
   compilation unit to findings; scoping (which directories a rule
   patrols) lives with the rule so the catalog is self-describing.
   Token-level checks are deliberately conservative: a miss is cheap
   (review catches it), a false positive costs a suppression with a
   written reason — so every heuristic errs toward the patterns that
   actually appear in this repo. *)

module T = Tokenizer

type ctx = {
  path : string;  (* repo-relative, '/'-separated *)
  code : T.token array;  (* comments stripped *)
  comments : T.token list;
  lines : string array;
  has_mli : bool;
}

type rule = {
  id : string;
  family : string;
  severity : Diag.severity;
  title : string;
  doc : string;
  check : ctx -> Diag.t list;
}

(* ---------- shared helpers ---------- *)

let excerpt ctx line =
  if line >= 1 && line <= Array.length ctx.lines then
    String.trim ctx.lines.(line - 1)
  else ""

let finding ctx rule severity line col message =
  {
    Diag.rule;
    severity;
    file = ctx.path;
    line;
    col;
    message;
    excerpt = excerpt ctx line;
  }

let under dir path =
  let dir = dir ^ "/" in
  String.length path >= String.length dir
  && String.sub path 0 (String.length dir) = dir

let in_any dirs path = List.exists (fun d -> under d path) dirs

let tok ctx i =
  if i >= 0 && i < Array.length ctx.code then Some ctx.code.(i) else None

let tok_text ctx i = match tok ctx i with Some t -> t.T.text | None -> ""

let contains_sub needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------- D001: Stdlib.Random ---------- *)

let d001_check ctx =
  if ctx.path = "lib/wireless/rand.ml" then []
  else
    Array.to_list ctx.code
    |> List.filter_map (fun t ->
           if t.T.kind = T.Ident && T.has_component t "Random" then
             Some
               (finding ctx "D001" Diag.Error t.T.line t.T.col
                  ("use of " ^ t.T.text
                 ^ ": Stdlib.Random is nondeterministic across runs; thread \
                    a seeded Wireless.Rand through instead"))
           else None)

(* ---------- D002: Hashtbl iteration order ---------- *)

let d002_sort_window_before = 8
let d002_sort_window_after = 48

let d002_check ctx =
  if (not (under "lib" ctx.path)) || ctx.path = "lib/netgraph/graph.ml" then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i t ->
        if
          t.T.kind = T.Ident
          && T.has_component t "Hashtbl"
          && (match T.last_component t with "iter" | "fold" -> true | _ -> false)
        then begin
          (* allowed when the call visibly feeds a sort: List.sort /
             List.sort_uniq / Graph.sorted_tbl_* within a small token
             window before (sort wraps the fold) or after (fold result
             piped into a sort) *)
          let sorted = ref false in
          for k = i - d002_sort_window_before to i + d002_sort_window_after do
            match tok ctx k with
            | Some u
              when u.T.kind = T.Ident
                   && contains_sub "sort"
                        (String.lowercase_ascii (T.last_component u)) ->
              sorted := true
            | _ -> ()
          done;
          if not !sorted then
            out :=
              finding ctx "D002" Diag.Error t.T.line t.T.col
                (t.T.text
               ^ " iterates in hash order, which can leak into outputs; \
                  route through Graph.sorted_tbl_iter/fold or sort the \
                  result")
              :: !out
        end)
      ctx.code;
    List.rev !out
  end

(* ---------- D003: wall clocks outside obs/bench ---------- *)

let d003_check ctx =
  if under "lib/obs" ctx.path || under "bench" ctx.path then []
  else
    Array.to_list ctx.code
    |> List.filter_map (fun t ->
           let hit =
             t.T.kind = T.Ident
             && ((T.has_component t "Sys" && T.last_component t = "time")
                || T.has_component t "Unix"
                   && (match T.last_component t with
                      | "gettimeofday" | "time" -> true
                      | _ -> false))
           in
           if hit then
             Some
               (finding ctx "D003" Diag.Error t.T.line t.T.col
                  ("wall-clock call " ^ t.T.text
                 ^ " outside lib/obs and bench breaks reproducibility; \
                    report timings through Obs spans"))
           else None)

(* ---------- F001: polymorphic compare / min / max ---------- *)

let float_scope = [ "lib/geometry"; "lib/netgraph"; "lib/delaunay" ]

let is_definition_prev ctx i =
  match tok_text ctx (i - 1) with
  | "let" | "and" | "val" | "method" | "external" -> true
  | _ -> false

let float_flavored t =
  t.T.kind = T.Float_lit
  || (t.T.kind = T.Ident
     &&
     match t.T.text with
     | "infinity" | "neg_infinity" | "nan" | "epsilon_float" -> true
     | _ -> false)

let f001_check ctx =
  if not (in_any float_scope ctx.path) then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i t ->
        if t.T.kind = T.Ident && not (is_definition_prev ctx i) then
          match t.T.text with
          | "compare" | "Stdlib.compare" ->
            out :=
              finding ctx "F001" Diag.Error t.T.line t.T.col
                "polymorphic compare in float-bearing code; use \
                 Float.compare / Int.compare or a typed comparator"
              :: !out
          | "min" | "max" | "Stdlib.min" | "Stdlib.max" ->
            let floaty =
              (match tok ctx (i + 1) with
              | Some u -> float_flavored u
              | None -> false)
              ||
              match tok ctx (i + 2) with
              | Some u -> float_flavored u
              | None -> false
            in
            if floaty then
              out :=
                finding ctx "F001" Diag.Error t.T.line t.T.col
                  ("polymorphic " ^ t.T.text
                 ^ " applied to a float; use Float.min / Float.max")
                :: !out
          | _ -> ())
      ctx.code;
    List.rev !out
  end

(* ---------- F002: exact float-literal equality ---------- *)

let f002_binding_context ctx i =
  (* [i] indexes the '='.  Skip bindings, record fields and default
     arguments: [let x = 0.], [{ x = 0.; y = 0. }], [{ r with x = 0. }],
     [?(eps = 1e-9)]. *)
  match tok ctx (i - 1) with
  | Some p when p.T.kind = T.Ident -> (
    match tok_text ctx (i - 2) with
    | "let" | "and" | "{" | ";" | "with" | "mutable" | "?" | "~" -> true
    | "(" -> tok_text ctx (i - 3) = "?"
    | _ -> false)
  | _ -> false

let f002_check ctx =
  if
    (not (in_any float_scope ctx.path))
    || ctx.path = "lib/geometry/predicates.ml"
  then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i t ->
        if t.T.kind = T.Op && (t.T.text = "=" || t.T.text = "<>") then begin
          let lit u = u.T.kind = T.Float_lit || u.T.text = "nan" in
          let neighbor =
            (match tok ctx (i + 1) with Some u -> lit u | None -> false)
            || match tok ctx (i - 1) with Some u -> lit u | None -> false
          in
          if neighbor && not (f002_binding_context ctx i) then
            out :=
              finding ctx "F002" Diag.Error t.T.line t.T.col
                "exact float equality against a literal; use Float.equal, \
                 a sign test, or an exact predicate in \
                 Geometry.Predicates"
              :: !out
        end)
      ctx.code;
    List.rev !out
  end

(* ---------- M001: module-toplevel mutable state ---------- *)

let m001_scope =
  [ "lib/geometry"; "lib/netgraph"; "lib/delaunay"; "lib/wireless"; "lib/serve" ]

let m001_mutable_ctor t =
  t.T.kind = T.Ident
  && (t.T.text = "ref"
     || (T.has_component t "Hashtbl" && T.last_component t = "create")
     || (T.has_component t "Array"
        &&
        match T.last_component t with
        | "make" | "create_float" | "make_matrix" -> true
        | _ -> false)
     || (T.has_component t "Bytes" && T.last_component t = "create")
     || (T.has_component t "Buffer" && T.last_component t = "create")
     || (T.has_component t "Queue" && T.last_component t = "create")
     || (T.has_component t "Stack" && T.last_component t = "create"))

let m001_domain_safe t =
  t.T.kind = T.Ident
  && (T.has_component t "Atomic" || T.has_component t "DLS"
    || T.has_component t "Mutex")

let m001_check ctx =
  if not (in_any m001_scope ctx.path) then []
  else begin
    let annotated_lines =
      List.filter_map
        (fun c ->
          if contains_sub "lint: domain-local" c.T.text then Some c.T.line
          else None)
        ctx.comments
    in
    let n = Array.length ctx.code in
    let boundary t =
      t.T.col = 1 && t.T.kind = T.Ident
      &&
      match t.T.text with
      | "let" | "and" | "type" | "module" | "open" | "include" | "exception"
      | "external" | "class" ->
        true
      | _ -> false
    in
    let out = ref [] in
    let i = ref 0 in
    while !i < n do
      let t = ctx.code.(!i) in
      if boundary t && (t.T.text = "let" || t.T.text = "and") then begin
        (* item extent: up to the next structure-level keyword *)
        let stop = ref (!i + 1) in
        while !stop < n && not (boundary ctx.code.(!stop)) do
          incr stop
        done;
        (* [let [rec] name = rhs] — only constant bindings can pin
           shared state; anything with parameters allocates per call *)
        let j = if tok_text ctx (!i + 1) = "rec" then !i + 2 else !i + 1 in
        let is_const_binding =
          (match tok ctx j with
          | Some name when name.T.kind = T.Ident -> (
            match tok_text ctx (j + 1) with "=" | ":" -> true | _ -> false)
          | _ -> false)
          && tok_text ctx (j + 1) <> "" (* name exists *)
        in
        if is_const_binding then begin
          let rhs_is_function =
            (* find the '=' then look at the first RHS token *)
            let rec eq k =
              if k >= !stop then None
              else if ctx.code.(k).T.text = "=" && ctx.code.(k).T.kind = T.Op
              then Some (k + 1)
              else eq (k + 1)
            in
            match eq (j + 1) with
            | Some k -> (
              match tok_text ctx k with "fun" | "function" -> true | _ -> false)
            | None -> true
          in
          if not rhs_is_function then begin
            let last_line =
              if !stop - 1 >= 0 && !stop - 1 < n then
                ctx.code.(!stop - 1).T.line
              else t.T.line
            in
            let exempt =
              List.exists
                (fun l -> l >= t.T.line - 1 && l <= last_line)
                annotated_lines
              ||
              let safe = ref false in
              for k = !i to !stop - 1 do
                if m001_domain_safe ctx.code.(k) then safe := true
              done;
              !safe
            in
            if not exempt then
              for k = !i to !stop - 1 do
                if m001_mutable_ctor ctx.code.(k) then begin
                  let c = ctx.code.(k) in
                  out :=
                    finding ctx "M001" Diag.Error c.T.line c.T.col
                      ("module-toplevel mutable state (" ^ c.T.text
                     ^ ") is shared across Netgraph.Pool worker domains; \
                        use Atomic / Domain.DLS or annotate with (* lint: \
                        domain-local reason *)")
                    :: !out
                end
              done
          end
        end;
        i := !stop
      end
      else incr i
    done;
    List.rev !out
  end

(* ---------- M002: mutable Graph construction in core paths ---------- *)

(* The Hashtbl-backed [Netgraph.Graph] cannot be grown from Pool
   worker domains, so every [G.add_edge] loop in lib/core pins that
   stage to one domain and to hash-table cache behaviour.  The sharded
   pipeline builds through [Netgraph.Builder]/[Csr] (or, for legacy
   record shapes, collects an edge list and seals it in one
   [G.of_edges]/[G.union] call); this rule keeps the mutation API from
   creeping back into construction paths. *)

let m002_check ctx =
  if not (under "lib/core" ctx.path) then []
  else
    Array.to_list ctx.code
    |> List.filter_map (fun t ->
           let hit =
             t.T.kind = T.Ident
             && (match T.last_component t with
                | "add_edge" | "remove_edge" -> true
                | _ -> false)
             && (T.has_component t "Graph" || T.has_component t "G")
           in
           if hit then
             Some
               (finding ctx "M002" Diag.Error t.T.line t.T.col
                  (t.T.text
                 ^ " mutates a Hashtbl graph on a lib/core construction \
                    path; collect an edge list and seal it through \
                    Netgraph.Builder/Csr (or G.of_edges / G.union)"))
           else None)

(* ---------- H001: every library module has an interface ---------- *)

let h001_check ctx =
  if under "lib" ctx.path && not ctx.has_mli then
    [
      finding ctx "H001" Diag.Error 1 1
        "library module without an .mli: every lib/**/*.ml commits to an \
         interface";
    ]
  else []

(* ---------- H002: Obj.magic ---------- *)

let h002_check ctx =
  Array.to_list ctx.code
  |> List.filter_map (fun t ->
         if
           t.T.kind = T.Ident
           && T.has_component t "Obj"
           && T.last_component t = "magic"
         then
           Some
             (finding ctx "H002" Diag.Error t.T.line t.T.col
                "Obj.magic defeats the type system; find a typed \
                 representation")
         else None)

(* ---------- H003: silent dead ends ---------- *)

let h003_check ctx =
  if under "test" ctx.path then []
  else begin
    let comment_lines =
      List.fold_left (fun acc c -> c.T.line :: acc) [] ctx.comments
    in
    let out = ref [] in
    Array.iteri
      (fun i t ->
        if t.T.kind = T.Ident && t.T.text = "assert"
           && tok_text ctx (i + 1) = "false"
        then begin
          if not (List.mem t.T.line comment_lines) then
            out :=
              finding ctx "H003" Diag.Warning t.T.line t.T.col
                "bare 'assert false': state why the branch is unreachable \
                 in a same-line comment, or raise a descriptive exception"
              :: !out
        end
        else if t.T.kind = T.Ident && t.T.text = "failwith" then
          match tok ctx (i + 1) with
          | Some u when u.T.kind = T.String_lit && String.trim u.T.text = ""
            ->
            out :=
              finding ctx "H003" Diag.Warning t.T.line t.T.col
                "failwith with an empty message explains nothing; say what \
                 failed"
              :: !out
          | _ -> ())
      ctx.code;
    List.rev !out
  end

(* ---------- O001: metric name literals follow the naming convention ---------- *)

let o001_registration = function
  | "counter" | "dist" | "gauge" | "histogram" -> true
  | _ -> false

let o001_valid name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.')
       name

let o001_check ctx =
  let out = ref [] in
  Array.iteri
    (fun i t ->
      if
        t.T.kind = T.Ident
        && T.has_component t "Obs"
        && o001_registration (T.last_component t)
      then
        (* only literal registrations are checkable; a computed name
           (Printf.sprintf ...) shows up as '(' and is skipped *)
        match tok ctx (i + 1) with
        | Some u when u.T.kind = T.String_lit ->
          if not (o001_valid u.T.text) then
            out :=
              finding ctx "O001" Diag.Error u.T.line u.T.col
                (Printf.sprintf
                   "metric name %S breaks the dotted lowercase convention \
                    ([a-z0-9_.]+); registry keys sort into reports and \
                    become /metrics sample names"
                   u.T.text)
              :: !out
        | _ -> ())
    ctx.code;
  List.rev !out

(* ---------- O002: protocol trace events only via Distsim.Stamp ---------- *)

let o002_hook = function "send" | "deliver" -> true | _ -> false

let o002_check ctx =
  (* Raw [Obs.Trace.send]/[Obs.Trace.deliver] calls outside the
     stamping helper fork the Lamport clocks and desynchronize the
     happens-before DAG.  lib/distsim hosts Stamp (the single writer)
     and lib/obs defines the hooks; tests exercising the raw hooks are
     out of scope. *)
  if not (in_any [ "lib"; "bin" ] ctx.path) then []
  else if in_any [ "lib/distsim"; "lib/obs" ] ctx.path then []
  else
    Array.to_list ctx.code
    |> List.filter_map (fun t ->
           if
             t.T.kind = T.Ident
             && T.has_component t "Trace"
             && o002_hook (T.last_component t)
           then
             Some
               (finding ctx "O002" Diag.Error t.T.line t.T.col
                  (Printf.sprintf
                     "raw %s forks the Lamport clocks; protocol Send/Deliver \
                      events must be emitted through Distsim.Stamp (the \
                      single stamping writer)"
                     t.T.text))
           else None)

(* ---------- catalog ---------- *)

let all =
  [
    {
      id = "D001";
      family = "determinism";
      severity = Diag.Error;
      title = "no Stdlib.Random";
      doc =
        "Stdlib.Random (and Random.self_init in particular) makes runs \
         unreproducible.  All randomness flows from the seeded, splittable \
         Wireless.Rand PRNG; only lib/wireless/rand.ml is exempt.";
      check = d001_check;
    };
    {
      id = "D002";
      family = "determinism";
      severity = Diag.Error;
      title = "no order-leaking Hashtbl iteration";
      doc =
        "Hashtbl.iter/fold visit bindings in hash order, which varies with \
         insertion history and hash seeds; results that reach outputs or \
         metrics must go through Graph.sorted_tbl_iter/fold or an explicit \
         sort (a List.sort within a few tokens of the call is recognised).  \
         lib/netgraph/graph.ml hosts the wrappers and is exempt.";
      check = d002_check;
    };
    {
      id = "D003";
      family = "determinism";
      severity = Diag.Error;
      title = "no wall clocks outside obs/bench";
      doc =
        "Sys.time and Unix.gettimeofday values differ run to run; only the \
         observability layer (lib/obs) and the benchmark harness may read \
         them.  Everything else reports timings through Obs spans.";
      check = d003_check;
    };
    {
      id = "F001";
      family = "float-robustness";
      severity = Diag.Error;
      title = "no polymorphic compare on floats";
      doc =
        "Polymorphic compare/min/max in lib/geometry, lib/netgraph and \
         lib/delaunay boxes its arguments, falls through to C, and orders \
         nan inconsistently with (<).  Use Float.compare / Int.compare or \
         a typed comparator.";
      check = f001_check;
    };
    {
      id = "F002";
      family = "float-robustness";
      severity = Diag.Error;
      title = "no exact float-literal equality";
      doc =
        "x = 0. style comparisons are exact and silently false for nan; \
         outside lib/geometry/predicates.ml (whose expansion arithmetic \
         makes zero tests exact) use Float.equal, a sign test, or an exact \
         predicate.";
      check = f002_check;
    };
    {
      id = "M001";
      family = "multicore-safety";
      severity = Diag.Error;
      title = "no shared toplevel mutable state";
      doc =
        "Module-toplevel refs, hash tables and scratch arrays in libraries \
         reachable from Netgraph.Pool workers are shared across domains \
         and race silently.  Use Atomic, Domain.DLS, pass state explicitly, \
         or annotate the binding with (* lint: domain-local reason *).";
      check = m001_check;
    };
    {
      id = "M002";
      family = "multicore-safety";
      severity = Diag.Error;
      title = "no mutable Graph construction in core paths";
      doc =
        "Graph.add_edge / remove_edge loops in lib/core pin a construction \
         stage to one domain (the Hashtbl graph cannot be grown from Pool \
         workers) and were retired from the hot path by the sharded CSR \
         pipeline.  Collect edge lists and seal through Netgraph.Builder / \
         Csr, or G.of_edges / G.union for legacy record shapes.";
      check = m002_check;
    };
    {
      id = "H001";
      family = "hygiene";
      severity = Diag.Error;
      title = "every library module has an .mli";
      doc =
        "An .mli per lib/**/*.ml keeps the dependency surface explicit and \
         lets warnings catch dead code.";
      check = h001_check;
    };
    {
      id = "H002";
      family = "hygiene";
      severity = Diag.Error;
      title = "no Obj.magic";
      doc = "Obj.magic hides type errors until runtime memory corruption.";
      check = h002_check;
    };
    {
      id = "H003";
      family = "hygiene";
      severity = Diag.Warning;
      title = "no silent dead ends";
      doc =
        "A bare 'assert false' (no same-line comment) or an empty failwith \
         message turns an impossible state into an undiagnosable crash; \
         say why the branch cannot happen.";
      check = h003_check;
    };
    {
      id = "O001";
      family = "hygiene";
      severity = Diag.Error;
      title = "metric name literals follow the dotted convention";
      doc =
        "Obs.counter/dist/gauge/histogram name literals must be nonempty \
         dotted lowercase ([a-z0-9_.]+): registry keys sort into every \
         report and become Prometheus sample names on /metrics, where a \
         typo'd or CamelCase name silently forks a new time series.";
      check = o001_check;
    };
    {
      id = "O002";
      family = "hygiene";
      severity = Diag.Error;
      title = "protocol trace events flow through Distsim.Stamp";
      doc =
        "Obs.Trace.send / Obs.Trace.deliver carry Lamport stamps that only \
         Distsim.Stamp maintains; constructing protocol events anywhere \
         else (outside lib/distsim and the lib/obs definitions) forks the \
         clocks and corrupts the happens-before DAG Obs.Causal rebuilds.";
      check = o002_check;
    };
  ]

let find id = List.find_opt (fun r -> r.id = id) all
