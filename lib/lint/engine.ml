(* Ties the pieces together: walk the tree, tokenize, run the rule
   catalog, honour inline suppressions, then net the committed
   baseline off.  Directory walks and finding lists are sorted, so a
   run's output is bit-identical across machines. *)

type result = {
  findings : Diag.t list;  (* unsuppressed, after the baseline *)
  grandfathered : (Diag.t * string) list;
  suppressed : int;
  files : int;
  unused_baseline : Baseline.entry list;
}

let scan_dirs = [ "lib"; "bin"; "bench"; "examples"; "test" ]

let skip_dir name =
  name = "_build" || name = "fixtures"
  || (String.length name > 0 && name.[0] = '.')

let scan_files root =
  let out = ref [] in
  let rec walk rel abs =
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | true ->
      let entries = Sys.readdir abs in
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          if not (skip_dir name) then
            walk (rel ^ "/" ^ name) (Filename.concat abs name))
        entries
    | false ->
      if Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
      then out := rel :: !out
  in
  List.iter
    (fun d ->
      let abs = Filename.concat root d in
      if Sys.file_exists abs then walk d abs)
    scan_dirs;
  List.rev !out

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ---------- inline suppressions ----------

   (* lint: disable RULE reason *) silences RULE on every line the
   comment touches and the line after it; the reason is mandatory — a
   reasonless disable is inert.  (* lint: domain-local reason *) is
   consumed by M001 directly. *)

type suppression = { s_rule : string; s_first : int; s_last : int }

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

let suppressions_of_comments comments =
  List.filter_map
    (fun (c : Tokenizer.token) ->
      let text = c.Tokenizer.text in
      let marker = "lint: disable" in
      let rec find i =
        if i + String.length marker > String.length text then None
        else if String.sub text i (String.length marker) = marker then
          Some (i + String.length marker)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some after -> (
        let rest = String.sub text after (String.length text - after) in
        (* drop the comment closer before splitting into words *)
        let rest =
          match String.index_opt rest '*' with
          | Some i when i + 1 < String.length rest && rest.[i + 1] = ')' ->
            String.sub rest 0 i
          | _ -> rest
        in
        match words rest with
        | rule :: (_ :: _ as _reason) ->
          let newlines =
            String.fold_left
              (fun n ch -> if ch = '\n' then n + 1 else n)
              0 text
          in
          Some
            {
              s_rule = rule;
              s_first = c.Tokenizer.line;
              s_last = c.Tokenizer.line + newlines + 1;
            }
        | _ -> None (* no reason given: the suppression is inert *))
    )
    comments

let suppressed sups (d : Diag.t) =
  List.exists
    (fun s -> s.s_rule = d.rule && d.line >= s.s_first && d.line <= s.s_last)
    sups

(* ---------- per-file lint ---------- *)

let split_lines s = Array.of_list (String.split_on_char '\n' s)

let lint_source ?(rules = Rules.all) ?(has_mli = true) ~path contents =
  let tokens = Tokenizer.tokenize contents in
  let comments =
    List.filter (fun t -> t.Tokenizer.kind = Tokenizer.Comment) tokens
  in
  let code =
    Array.of_list
      (List.filter (fun t -> t.Tokenizer.kind <> Tokenizer.Comment) tokens)
  in
  let ctx =
    { Rules.path; code; comments; lines = split_lines contents; has_mli }
  in
  let raw = List.concat_map (fun (r : Rules.rule) -> r.check ctx) rules in
  let sups = suppressions_of_comments comments in
  let kept, cut = List.partition (fun d -> not (suppressed sups d)) raw in
  (List.sort Diag.compare kept, List.length cut)

let lint_file ?rules ~root path =
  let abs = Filename.concat root path in
  let has_mli = Sys.file_exists (abs ^ "i") in
  lint_source ?rules ~has_mli ~path (read_file abs)

(* ---------- whole-project lint ----------

   Local rules run per .ml file; the interprocedural layer
   (Callgraph + Effects) runs once over lib/** with .mli siblings
   paired in.  Effect findings honour the same inline suppressions,
   looked up in whichever file the finding lands in (including .mli
   files for E003). *)

let keep_rule only id =
  match only with None -> true | Some ids -> List.mem id ids

let comments_of_source contents =
  List.filter
    (fun t -> t.Tokenizer.kind = Tokenizer.Comment)
    (Tokenizer.tokenize contents)

let apply_file_suppressions files findings =
  let cache = Hashtbl.create 16 in
  let sups_of path =
    match Hashtbl.find_opt cache path with
    | Some s -> s
    | None ->
      let s =
        match List.assoc_opt path files with
        | Some contents -> suppressions_of_comments (comments_of_source contents)
        | None -> []
      in
      Hashtbl.replace cache path s;
      s
  in
  List.partition (fun (d : Diag.t) -> not (suppressed (sups_of d.file) d)) findings

let under_lib p = String.length p > 4 && String.sub p 0 4 = "lib/"

let lint_project ?only files =
  let local_rules =
    List.filter (fun (r : Rules.rule) -> keep_rule only r.Rules.id) Rules.all
  in
  let mls =
    List.filter (fun (p, _) -> Filename.check_suffix p ".ml") files
  in
  let all = ref [] and cut_total = ref 0 in
  List.iter
    (fun (path, contents) ->
      let has_mli = List.mem_assoc (path ^ "i") files in
      let findings, cut = lint_source ~rules:local_rules ~has_mli ~path contents in
      all := List.rev_append findings !all;
      cut_total := !cut_total + cut)
    mls;
  let lib_files = List.filter (fun (p, _) -> under_lib p) files in
  let effect_findings =
    if List.exists (fun (p, _) -> Filename.check_suffix p ".ml") lib_files then
      Effects.findings ?only (Effects.analyze (Callgraph.of_sources lib_files))
    else []
  in
  let kept, cut = apply_file_suppressions files effect_findings in
  cut_total := !cut_total + List.length cut;
  (List.sort Diag.compare (List.rev_append kept !all), !cut_total, List.length mls)

(* ---------- whole-tree run ---------- *)

let project_files root =
  scan_files root
  |> List.map (fun p -> (p, read_file (Filename.concat root p)))

let run ?only ?(baseline = []) root =
  let files = project_files root in
  let sorted, suppressed, nml = lint_project ?only files in
  let findings, grandfathered = Baseline.apply baseline sorted in
  let used = Hashtbl.create 16 in
  List.iter
    (fun ((d : Diag.t), _) ->
      let key = (d.rule, d.file) in
      match Hashtbl.find_opt used key with
      | Some r -> incr r
      | None -> Hashtbl.replace used key (ref 1))
    grandfathered;
  let unused_baseline =
    List.filter
      (fun (e : Baseline.entry) ->
        match Hashtbl.find_opt used (e.rule, e.file) with
        | Some r -> !r < e.count
        | None -> true)
      baseline
  in
  { findings; grandfathered; suppressed; files = nml; unused_baseline }
