(* Typed lint findings plus the two sinks every other layer of the
   repo already uses for reports: a pretty formatter and kind-tagged
   JSON lines that round-trip through a Scanf reader (the same
   convention as Obs.Snapshot's json sink / of_json_lines). *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;  (* repo-relative, '/'-separated *)
  line : int;
  col : int;
  message : string;
  excerpt : string;  (* the offending source line, trimmed *)
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Error
  | "warning" -> Warning
  | s -> invalid_arg ("Diag.severity_of_string: " ^ s)

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let equal a b = compare a b = 0 && a.severity = b.severity
  && String.equal a.message b.message
  && String.equal a.excerpt b.excerpt

let pp fmt d =
  Format.fprintf fmt "@[<v 2>%s:%d:%d: [%s] %s: %s" d.file d.line d.col d.rule
    (severity_to_string d.severity)
    d.message;
  if d.excerpt <> "" then Format.fprintf fmt "@,| %s" d.excerpt;
  Format.fprintf fmt "@]"

let to_json_line d =
  Printf.sprintf
    "{\"kind\":\"finding\",\"rule\":%S,\"severity\":%S,\"file\":%S,\"line\":%d,\"col\":%d,\"message\":%S,\"excerpt\":%S}"
    d.rule
    (severity_to_string d.severity)
    d.file d.line d.col d.message d.excerpt

let of_json_line line =
  try
    Scanf.sscanf line
      "{\"kind\":\"finding\",\"rule\":%S,\"severity\":%S,\"file\":%S,\"line\":%d,\"col\":%d,\"message\":%S,\"excerpt\":%S}"
      (fun rule sev file line col message excerpt ->
        Some
          {
            rule;
            severity = severity_of_string sev;
            file;
            line;
            col;
            message;
            excerpt;
          })
  with Scanf.Scan_failure _ | End_of_file | Invalid_argument _ -> None

let read_json_lines s =
  String.split_on_char '\n' s
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" then None else of_json_line l)
