(* Per-function effect summaries propagated bottom-up over SCCs of the
   call graph, a reachability pass seeded at Netgraph.Pool callback
   sites, and the diagnostics built on both: the retargeted
   determinism/multicore rules (D001/D002/D003/M001/M002 now fire only
   on sites whose function is reachable from a parallel region, and
   each finding carries the witness call chain) and the new E-rules
   (E001 unguarded blocking I/O on a parallel chain, E002 exception
   escaping a parallel region without a handler on the chain, E003
   .mli-vs-.ml drift).  Sanctioned homes for an effect — lib/obs for
   clocks and I/O, lib/wireless/rand.ml for randomness,
   lib/netgraph/graph.ml for the sorted-iteration wrappers and the
   graph mutation API — export empty summaries, so the effect does not
   leak through the abstraction that exists to contain it. *)

module T = Tokenizer
module C = Callgraph

type kind =
  | Random
  | Clock
  | Unordered_iter
  | Mutable_global
  | Blocking_io
  | Raises
  | Graph_mut

let all_kinds =
  [ Random; Clock; Unordered_iter; Mutable_global; Blocking_io; Raises; Graph_mut ]

let bit = function
  | Random -> 1
  | Clock -> 2
  | Unordered_iter -> 4
  | Mutable_global -> 8
  | Blocking_io -> 16
  | Raises -> 32
  | Graph_mut -> 64

let all_bits = 127

let kind_name = function
  | Random -> "Random"
  | Clock -> "Clock"
  | Unordered_iter -> "Unordered_iter"
  | Mutable_global -> "Mutable_global"
  | Blocking_io -> "Blocking_io"
  | Raises -> "Raises"
  | Graph_mut -> "Graph_mut"

let under dir path =
  let dir = dir ^ "/" in
  String.length path >= String.length dir
  && String.sub path 0 (String.length dir) = dir

(* Sanctioned homes: effects intrinsic to these files are masked and
   do not propagate to callers. *)
let mask_of_path path =
  if under "lib/obs" path || under "bench" path then all_bits
  else if path = "lib/wireless/rand.ml" then bit Random
  else if path = "lib/netgraph/graph.ml" then bit Unordered_iter lor bit Graph_mut
  else 0

type site = {
  e_def : int;
  e_kind : kind;
  e_line : int;
  e_col : int;
  e_text : string;  (* the offending token *)
  e_note : string;  (* extra context, e.g. which global is touched *)
}

type analysis = {
  graph : C.t;
  summaries : int array;  (* per def: union of transitive effect bits *)
  intrinsic : int array;  (* per def: own effect bits, pre-propagation *)
  sites : site list;
  reachable : bool array;  (* from any parallel seed *)
  bfs_parent : int array;  (* BFS tree, -1 at roots *)
  bfs_root : int array;  (* seed def id per reachable def, -1 otherwise *)
  has_guard : bool array;  (* Atomic/DLS token inside the def *)
  has_try : bool array;  (* a [try] inside the def *)
}

(* ---------- intrinsic effect sites ---------- *)

let io_last = function
  | "print_string" | "print_endline" | "print_newline" | "print_char"
  | "print_int" | "print_float" | "prerr_string" | "prerr_endline"
  | "prerr_newline" | "read_line" | "output_string" | "output_char"
  | "output_byte" | "output_bytes" | "output_value" | "input_line"
  | "really_input_string" | "open_in" | "open_in_bin" | "open_out"
  | "open_out_bin" | "close_in" | "close_out" | "flush" ->
    true
  | _ -> false

let io_head (t : T.token) =
  match T.path_components t.T.text with
  | [ _ ] -> true  (* bare Stdlib name *)
  | head :: _ -> (
    match head with
    | "Stdlib" | "Printf" | "Format" | "Out_channel" | "In_channel" -> true
    | _ -> false)
  | [] -> false

let printf_last = function
  | "printf" | "eprintf" | "fprintf" -> true
  | _ -> false

let sort_window_before = 8
let sort_window_after = 48

let contains_sub needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let graph_names = [ "Netgraph.Graph.add_edge"; "Netgraph.Graph.remove_edge" ]

let scan_sites (g : C.t) =
  let sites = ref [] in
  let ndefs = Array.length g.defs in
  let has_guard = Array.make (max ndefs 1) false in
  let has_try = Array.make (max ndefs 1) false in
  (* one Mutable_global site per (user, global) pair keeps repeated
     reads of the same ref from flooding the report *)
  let mut_seen = Hashtbl.create 16 in
  Array.iteri
    (fun ui (u : C.unit_info) ->
      let mask = mask_of_path u.u_path in
      let code = u.u_code in
      let n = Array.length code in
      let emit o k (t : T.token) note =
        if bit k land mask = 0 then
          sites :=
            {
              e_def = o;
              e_kind = k;
              e_line = t.T.line;
              e_col = t.T.col;
              e_text = t.T.text;
              e_note = note;
            }
            :: !sites
      in
      Array.iteri
        (fun i (t : T.token) ->
          let o = g.owner.(ui).(i) in
          if o >= 0 && t.T.kind = T.Ident then begin
            if C.domain_safe t then has_guard.(o) <- true;
            if t.T.text = "try" then has_try.(o) <- true;
            let hits = g.resolved.(ui).(i) in
            let last = T.last_component t in
            (* Random *)
            if hits = [] && T.has_component t "Random" then emit o Random t "";
            (* Clock *)
            if
              (T.has_component t "Sys" && last = "time")
              || T.has_component t "Unix"
                 && (last = "gettimeofday" || last = "time")
            then emit o Clock t "";
            (* Unordered_iter *)
            if
              T.has_component t "Hashtbl"
              && (last = "iter" || last = "fold")
            then begin
              let sorted = ref false in
              for k = i - sort_window_before to i + sort_window_after do
                if k >= 0 && k < n then
                  let u' = code.(k) in
                  if
                    u'.T.kind = T.Ident
                    && contains_sub "sort"
                         (String.lowercase_ascii (T.last_component u'))
                  then sorted := true
              done;
              if not !sorted then emit o Unordered_iter t ""
            end;
            (* Blocking_io *)
            if
              hits = []
              && ((io_last last && io_head t)
                 || printf_last last
                 || T.has_component t "Unix"
                    && (match last with
                       | "read" | "write" | "select" | "sleep" | "sleepf"
                       | "openfile" | "system" ->
                         true
                       | _ -> false)
                 || T.has_component t "Thread"
                    && (match last with
                       | "create" | "join" | "delay" | "yield" -> true
                       | _ -> false))
            then emit o Blocking_io t "";
            (* Raises *)
            if
              hits = []
              && (t.T.text = "raise" || t.T.text = "raise_notrace"
                || t.T.text = "failwith")
            then emit o Raises t "";
            (* Mutable_global: a reference to an unguarded toplevel
               mutable binding *)
            List.iter
              (fun d ->
                let dd = g.defs.(d) in
                if dd.C.mutable_global && (not dd.C.guarded) && d <> o then
                  if not (Hashtbl.mem mut_seen (o, d)) then begin
                    Hashtbl.replace mut_seen (o, d) ();
                    emit o Mutable_global t
                      (Printf.sprintf "%s (%s:%d)" dd.C.name
                         g.units.(dd.C.unit_).C.u_path dd.C.line)
                  end)
              hits;
            (* Graph_mut *)
            if
              (hits <> []
              && List.exists (fun d -> List.mem g.defs.(d).C.name graph_names) hits)
              || (hits = []
                 && (last = "add_edge" || last = "remove_edge")
                 && (T.has_component t "Graph" || T.has_component t "G"))
            then emit o Graph_mut t ""
          end)
        code)
    g.units;
  (List.rev !sites, has_guard, has_try)

(* ---------- bottom-up propagation over SCCs (Tarjan) ---------- *)

let propagate (g : C.t) (sites : site list) =
  let n = Array.length g.defs in
  let intrinsic = Array.make (max n 1) 0 in
  List.iter (fun s -> intrinsic.(s.e_def) <- intrinsic.(s.e_def) lor bit s.e_kind) sites;
  let mask = Array.make (max n 1) 0 in
  Array.iteri
    (fun d (dd : C.def) -> mask.(d) <- mask_of_path g.units.(dd.C.unit_).C.u_path)
    g.defs;
  let succs = Array.make (max n 1) [] in
  Array.iteri
    (fun d calls ->
      succs.(d) <-
        List.sort_uniq Int.compare (List.map (fun (c, _, _) -> c) calls))
    g.calls;
  let summaries = Array.make (max n 1) 0 in
  (* iterative Tarjan; SCCs pop after every SCC they reach, so callee
     summaries are final when an SCC's union is taken *)
  let index = Array.make (max n 1) (-1) in
  let low = Array.make (max n 1) 0 in
  let on_stack = Array.make (max n 1) false in
  let stack = ref [] in
  let counter = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      succs.(v);
    if low.(v) = index.(v) then begin
      (* pop the SCC rooted at v *)
      let scc = ref [] in
      let brk = ref false in
      while not !brk do
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          scc := w :: !scc;
          if w = v then brk := true
        | [] -> brk := true
      done;
      let bits = ref 0 in
      List.iter
        (fun w ->
          bits := !bits lor intrinsic.(w);
          List.iter
            (fun s -> if not (List.mem s !scc) then bits := !bits lor summaries.(s))
            succs.(w))
        !scc;
      List.iter (fun w -> summaries.(w) <- !bits land lnot mask.(w)) !scc
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (summaries, intrinsic)

(* ---------- reachability from parallel seeds ---------- *)

let reach (g : C.t) =
  let n = Array.length g.defs in
  let reachable = Array.make (max n 1) false in
  let parent = Array.make (max n 1) (-1) in
  let root = Array.make (max n 1) (-1) in
  let q = Queue.create () in
  List.iter
    (fun (d, _) ->
      if not reachable.(d) then begin
        reachable.(d) <- true;
        root.(d) <- d;
        Queue.add d q
      end)
    g.seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (w, _, _) ->
        if not reachable.(w) then begin
          reachable.(w) <- true;
          parent.(w) <- v;
          root.(w) <- root.(v);
          Queue.add w q
        end)
      g.calls.(v)
  done;
  (reachable, parent, root)

let analyze (g : C.t) =
  let sites, has_guard, has_try = scan_sites g in
  let summaries, intrinsic = propagate g sites in
  let reachable, bfs_parent, bfs_root = reach g in
  {
    graph = g;
    summaries;
    intrinsic;
    sites;
    reachable;
    bfs_parent;
    bfs_root;
    has_guard;
    has_try;
  }

(* witness chain from the BFS seed down to [d], as def ids *)
let chain_ids a d =
  let rec up acc v = if v < 0 then acc else up (v :: acc) a.bfs_parent.(v) in
  up [] d

let chain_names a d =
  List.map (fun v -> a.graph.C.defs.(v).C.name) (chain_ids a d)

let seed_site_of a d =
  if d < 0 || not a.reachable.(d) then None
  else
    let r = a.bfs_root.(d) in
    List.assoc_opt r a.graph.C.seeds

(* ---------- diagnostics ---------- *)

type rule_info = {
  id : string;
  family : string;
  severity : Diag.severity;
  title : string;
  doc : string;
}

let rules =
  [
    {
      id = "D001";
      family = "determinism";
      severity = Diag.Error;
      title = "no Stdlib.Random on parallel paths";
      doc =
        "Stdlib.Random calls reachable from a Netgraph.Pool callback make \
         parallel runs unreproducible (the PRNG state is shared and \
         schedule-dependent).  All randomness flows from the seeded, \
         splittable Wireless.Rand; only lib/wireless/rand.ml may touch the \
         underlying generator.  Findings carry the witness call chain from \
         the Pool seed.";
    };
    {
      id = "D002";
      family = "determinism";
      severity = Diag.Error;
      title = "no order-leaking Hashtbl iteration on parallel paths";
      doc =
        "Hashtbl.iter/fold visit bindings in hash order; on a path executed \
         inside a parallel region the visit order leaks into outputs.  \
         Route through Graph.sorted_tbl_iter/fold or sort the result (a \
         *sort* within a few tokens of the call is recognised); \
         lib/netgraph/graph.ml hosts the wrappers and is exempt.";
    };
    {
      id = "D003";
      family = "determinism";
      severity = Diag.Error;
      title = "no wall clocks on parallel paths";
      doc =
        "Sys.time / Unix.gettimeofday readings on a Pool-reachable path \
         differ run to run and domain to domain.  Only lib/obs (whose \
         spans and counters are merged deterministically) and bench may \
         read wall clocks.";
    };
    {
      id = "M001";
      family = "multicore-safety";
      severity = Diag.Error;
      title = "no shared toplevel mutable state on parallel paths";
      doc =
        "A module-toplevel ref / hash table / scratch array referenced by a \
         function reachable from a Netgraph.Pool callback is shared across \
         worker domains and races silently.  Use Atomic, Domain.DLS, pass \
         state explicitly, or annotate the binding with \
         (* lint: domain-local reason *).";
    };
    {
      id = "M002";
      family = "multicore-safety";
      severity = Diag.Error;
      title = "no mutable Graph construction on parallel paths";
      doc =
        "Graph.add_edge / remove_edge reachable from a Pool callback mutate \
         the Hashtbl-backed Netgraph.Graph from worker domains.  Collect \
         edge lists and seal through Netgraph.Builder/Csr, or G.of_edges / \
         G.union for legacy record shapes.";
    };
    {
      id = "E001";
      family = "multicore-safety";
      severity = Diag.Error;
      title = "no unguarded blocking I/O in parallel regions";
      doc =
        "Blocking I/O (prints, channel writes, Unix reads/writes, thread \
         ops) reachable from a Pool callback serializes the region and \
         interleaves output nondeterministically, unless some function on \
         the witness chain holds an Atomic/Domain.DLS guard that makes the \
         access single-writer.";
    };
    {
      id = "E002";
      family = "multicore-safety";
      severity = Diag.Warning;
      title = "no exceptions escaping parallel regions unhandled";
      doc =
        "raise/failwith reachable from a Pool callback with no try handler \
         anywhere on the witness chain escapes the worker domain; \
         Netgraph.Pool re-raises the first failure after the join, so an \
         undocumented escape turns one bad element into a lost region.  \
         Add a handler on the chain or suppress with the contract spelled \
         out.";
    };
    {
      id = "E003";
      family = "hygiene";
      severity = Diag.Warning;
      title = "interface and implementation surfaces agree";
      doc =
        "Values exported by an .mli must exist as top-level bindings in the \
         .ml, and a top-level .ml value invisible to the .mli that nothing \
         in the project references is dead code behind the interface.  \
         Units whose surface is not structurally comparable (include, \
         functors, module types) are skipped.";
    };
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) rules

let rule_of_kind = function
  | Random -> "D001"
  | Clock -> "D003"
  | Unordered_iter -> "D002"
  | Mutable_global -> "M001"
  | Graph_mut -> "M002"
  | Blocking_io -> "E001"
  | Raises -> "E002"

let severity_of_rule id =
  match find_rule id with Some r -> r.severity | None -> Diag.Error

let excerpt (u : C.unit_info) line =
  if line >= 1 && line <= Array.length u.C.u_lines then
    String.trim u.C.u_lines.(line - 1)
  else ""

let base_message (s : site) =
  match s.e_kind with
  | Random ->
    "use of " ^ s.e_text
    ^ ": Stdlib.Random is nondeterministic across runs; thread a seeded \
       Wireless.Rand through instead"
  | Clock ->
    "wall-clock call " ^ s.e_text
    ^ " on a parallel path breaks reproducibility; report timings through \
       Obs spans"
  | Unordered_iter ->
    s.e_text
    ^ " iterates in hash order, which can leak into outputs; route through \
       Graph.sorted_tbl_iter/fold or sort the result"
  | Mutable_global ->
    "reference to shared toplevel mutable state " ^ s.e_note
    ^ " from a parallel region; use Atomic / Domain.DLS or annotate the \
       binding with (* lint: domain-local reason *)"
  | Graph_mut ->
    s.e_text
    ^ " mutates a Hashtbl graph on a parallel path; collect an edge list \
       and seal it through Netgraph.Builder/Csr (or G.of_edges / G.union)"
  | Blocking_io ->
    "blocking I/O " ^ s.e_text
    ^ " in a parallel region without an Atomic/DLS guard on the chain"
  | Raises ->
    s.e_text
    ^ " can escape the parallel region: no try handler on the witness chain"

let chain_suffix a d =
  let names = chain_names a d in
  let seed =
    match seed_site_of a d with
    | Some site ->
      Printf.sprintf " (Pool call at %s:%d)"
        a.graph.C.units.(site.C.site_unit).C.u_path site.C.site_line
    | None -> ""
  in
  Printf.sprintf "; parallel chain: %s%s" (String.concat " -> " names) seed

let reachability_findings a =
  let g = a.graph in
  let out = ref [] in
  List.iter
    (fun (s : site) ->
      let d = s.e_def in
      if d >= 0 && d < Array.length a.reachable && a.reachable.(d) then begin
        let ids = chain_ids a d in
        let guard_on_chain =
          List.exists
            (fun v -> a.has_guard.(v) || g.C.defs.(v).C.guarded)
            ids
        in
        let try_on_chain = List.exists (fun v -> a.has_try.(v)) ids in
        let skip =
          match s.e_kind with
          | Blocking_io -> guard_on_chain
          | Raises -> try_on_chain
          | _ -> false
        in
        if not skip then begin
          let rule = rule_of_kind s.e_kind in
          let u = g.C.units.(g.C.defs.(d).C.unit_) in
          out :=
            {
              Diag.rule;
              severity = severity_of_rule rule;
              file = u.C.u_path;
              line = s.e_line;
              col = s.e_col;
              message = base_message s ^ chain_suffix a d;
              excerpt = excerpt u s.e_line;
            }
            :: !out
        end
      end)
    a.sites;
  List.rev !out

(* ---------- E003: .mli drift ---------- *)

let drift_findings (g : C.t) =
  let ndefs = Array.length g.defs in
  let incoming = Array.make (max ndefs 1) 0 in
  Array.iteri
    (fun caller calls ->
      List.iter
        (fun (callee, _, _) ->
          if callee <> caller then incoming.(callee) <- incoming.(callee) + 1)
        calls)
    g.calls;
  (* textual fallback: every path component mentioned anywhere, with
     the owning def, so a use our resolver missed still counts *)
  let mentioned = Hashtbl.create 256 in
  Array.iteri
    (fun ui (u : C.unit_info) ->
      Array.iteri
        (fun i (t : T.token) ->
          if t.T.kind = T.Ident then
            List.iter
              (fun comp ->
                let o = g.owner.(ui).(i) in
                match Hashtbl.find_opt mentioned comp with
                | Some owners -> Hashtbl.replace mentioned comp (o :: owners)
                | None -> Hashtbl.replace mentioned comp [ o ])
              (T.path_components t.T.text))
        u.u_code)
    g.units;
  let out = ref [] in
  Array.iteri
    (fun _ (u : C.unit_info) ->
      if u.C.u_has_mli && (not u.C.u_mli_hazard) && not u.C.u_ml_hazard then begin
        let unit_defs =
          Array.to_list g.defs
          |> List.filter (fun (d : C.def) ->
                 g.C.units.(d.C.unit_).C.u_path = u.C.u_path
                 && d.C.kind = C.Toplevel)
        in
        let def_names = List.map (fun (d : C.def) -> d.C.name) unit_defs in
        (* exported but not implemented *)
        List.iter
          (fun (qname, mline) ->
            if not (List.mem qname def_names) then
              out :=
                {
                  Diag.rule = "E003";
                  severity = Diag.Warning;
                  file = u.C.u_path ^ "i";
                  line = mline;
                  col = 1;
                  message =
                    Printf.sprintf
                      "interface exports %s but the implementation has no \
                       matching top-level binding (renamed or removed?)"
                      qname;
                  excerpt = "";
                }
                :: !out)
          u.C.u_mli_vals;
        (* implemented, invisible to the interface, and unused *)
        let exported = List.map fst u.C.u_mli_vals in
        List.iter
          (fun (d : C.def) ->
            let b =
              match String.rindex_opt d.C.name '.' with
              | Some i ->
                String.sub d.C.name (i + 1) (String.length d.C.name - i - 1)
              | None -> d.C.name
            in
            if
              (not (List.mem d.C.name exported))
              && String.length b > 0
              && b.[0] <> '<'
              && incoming.(d.C.id) = 0
              &&
              (* no textual mention outside the def itself *)
              match Hashtbl.find_opt mentioned b with
              | Some owners -> List.for_all (fun o -> o = d.C.id) owners
              | None -> true
            then
              out :=
                {
                  Diag.rule = "E003";
                  severity = Diag.Warning;
                  file = u.C.u_path;
                  line = d.C.line;
                  col = d.C.col;
                  message =
                    Printf.sprintf
                      "top-level value %s is invisible to %si and never \
                       referenced: dead code behind the interface (export \
                       it or delete it)"
                      b u.C.u_path;
                  excerpt = excerpt u d.C.line;
                }
                :: !out)
          unit_defs
      end)
    g.units;
  List.rev !out

let findings ?only a =
  let keep id =
    match only with None -> true | Some ids -> List.mem id ids
  in
  let raw =
    List.filter (fun (d : Diag.t) -> keep d.Diag.rule)
      (reachability_findings a @ drift_findings a.graph)
  in
  (* dedup on position: over-approximate resolution can hit one site
     through several candidate defs *)
  let seen = Hashtbl.create 64 in
  let out =
    List.filter
      (fun (d : Diag.t) ->
        let key = (d.Diag.rule, d.Diag.file, d.Diag.line, d.Diag.col) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      raw
  in
  List.sort Diag.compare out

(* ---------- reports: stats, DOT, per-function summary ---------- *)

type stats = {
  s_functions : int;
  s_edges : int;  (* distinct caller -> callee pairs *)
  s_seeds : int;
  s_reachable : int;
}

let distinct_edges (g : C.t) =
  let tbl = Hashtbl.create 256 in
  Array.iteri
    (fun caller calls ->
      List.iter
        (fun (callee, _, _) ->
          if callee <> caller then Hashtbl.replace tbl (caller, callee) ())
        calls)
    g.calls;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort compare

let stats a =
  {
    s_functions = Array.length a.graph.C.defs;
    s_edges = List.length (distinct_edges a.graph);
    s_seeds = List.length a.graph.C.seeds;
    s_reachable =
      Array.fold_left (fun n r -> if r then n + 1 else n) 0 a.reachable;
  }

let stats_json s =
  Printf.sprintf
    "{\"kind\":\"callgraph\",\"functions\":%d,\"edges\":%d,\"seeds\":%d,\"reachable\":%d}"
    s.s_functions s.s_edges s.s_seeds s.s_reachable

let kind_color = function
  | Random -> "#e07a7a"
  | Clock -> "#e0a85f"
  | Unordered_iter -> "#d8c95a"
  | Mutable_global -> "#b58ad6"
  | Blocking_io -> "#7ab0e0"
  | Raises -> "#b0b0b0"
  | Graph_mut -> "#72c7a8"

let node_color a d =
  let bits = a.summaries.(d) in
  let rec first = function
    | [] -> "white"
    | k :: rest -> if bits land bit k <> 0 then kind_color k else first rest
  in
  first all_kinds

(* effect-colored call graph; the parallel-reachable region sits in
   its own cluster.  Every distinct edge appears exactly once, so the
   DOT edge count matches [stats.s_edges]. *)
let to_dot a =
  let g = a.graph in
  let b = Buffer.create 4096 in
  Buffer.add_string b "digraph callgraph {\n";
  Buffer.add_string b "  rankdir=LR;\n";
  Buffer.add_string b "  node [shape=box, style=filled, fontname=\"monospace\"];\n";
  Buffer.add_string b "  subgraph cluster_parallel {\n";
  Buffer.add_string b "    label=\"parallel-reachable\";\n";
  Buffer.add_string b "    color=\"#444444\";\n";
  Array.iteri
    (fun d (dd : C.def) ->
      if a.reachable.(d) then
        Buffer.add_string b
          (Printf.sprintf "    n%d [label=\"%s\", fillcolor=\"%s\"];\n" d
             dd.C.name (node_color a d)))
    g.C.defs;
  Buffer.add_string b "  }\n";
  Array.iteri
    (fun d (dd : C.def) ->
      if not a.reachable.(d) then
        Buffer.add_string b
          (Printf.sprintf "  n%d [label=\"%s\", fillcolor=\"%s\"];\n" d
             dd.C.name (node_color a d)))
    g.C.defs;
  List.iter
    (fun (caller, callee) ->
      Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" caller callee))
    (distinct_edges g);
  Buffer.add_string b "}\n";
  Buffer.contents b

let summary_kinds bits =
  List.filter (fun k -> bits land bit k <> 0) all_kinds

let function_summary a name =
  match C.find_def a.graph name with
  | None -> None
  | Some d ->
    let b = Buffer.create 256 in
    let u = a.graph.C.units.(d.C.unit_) in
    Buffer.add_string b
      (Printf.sprintf "%s (%s:%d)\n" d.C.name u.C.u_path d.C.line);
    let eff = summary_kinds a.summaries.(d.C.id) in
    Buffer.add_string b
      (Printf.sprintf "  effects: {%s}\n"
         (String.concat ", " (List.map kind_name eff)));
    let own = summary_kinds a.intrinsic.(d.C.id) in
    if own <> [] then
      Buffer.add_string b
        (Printf.sprintf "  intrinsic: {%s}\n"
           (String.concat ", " (List.map kind_name own)));
    if a.reachable.(d.C.id) then begin
      Buffer.add_string b "  parallel-reachable: yes\n";
      Buffer.add_string b
        (Printf.sprintf "  witness: %s"
           (String.concat " -> " (chain_names a d.C.id)));
      (match seed_site_of a d.C.id with
      | Some site ->
        Buffer.add_string b
          (Printf.sprintf " (Pool call at %s:%d)"
             a.graph.C.units.(site.C.site_unit).C.u_path site.C.site_line)
      | None -> ());
      Buffer.add_char b '\n'
    end
    else Buffer.add_string b "  parallel-reachable: no\n";
    Some (Buffer.contents b)
