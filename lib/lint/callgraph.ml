(* A lightweight structural parser over the token stream: enough of
   OCaml's module and binding structure to build a call graph of the
   repo's own sources, never a full parser.  It extracts top-level and
   nested-module [let]/[let rec]/[external] bindings, local
   [let ... in] bindings inside bodies, module aliases and functor
   instantiations, [open]s (file-level and [let open]/[M.(...)]
   local), and one call edge per identifier that resolves to a known
   binding.  Resolution is deliberately conservative: where OCaml's
   scoping rules would need types we over-approximate (all same-name
   locals of the enclosing binding shadow the unit, every [open] in
   scope contributes candidates), so the graph may carry edges the
   compiler would not create but never misses one the heuristics can
   see.  Layout assumptions (structure items start at column
   1 + 2*nesting, a module's [end] returns to the [module] keyword's
   column) match the repo's enforced ocamlformat style; DESIGN.md §15
   documents them as known approximations. *)

module T = Tokenizer

type def_kind =
  | Toplevel  (* unit- or nested-module-level binding *)
  | Init      (* [let () = ...] structure item *)
  | Local     (* [let ... in] inside a body *)
  | Lambda    (* anonymous [fun]/[function] at a Pool callback site *)

type def = {
  id : int;
  name : string;  (* qualified, e.g. [Netgraph.Pool.parallel_for];
                     bare for [Local], [Parent.<fun:LINE>] for lambdas *)
  kind : def_kind;
  unit_ : int;  (* index into [units] *)
  line : int;
  col : int;
  parent : int;  (* enclosing def id for Local/Lambda, -1 otherwise *)
  is_function : bool;
  mutable_global : bool;  (* non-function toplevel binding holding mutable state *)
  guarded : bool;  (* Atomic/DLS/Mutex in the binding, or annotated domain-local *)
}

type seed_site = { site_unit : int; site_line : int; site_col : int }

type unit_info = {
  u_path : string;  (* repo-relative .ml path *)
  u_module : string;  (* canonical module prefix, e.g. [Netgraph.Pool] *)
  u_lib : string option;  (* library dir name for lib/<d>/<f>.ml *)
  u_code : T.token array;  (* comments stripped *)
  u_comments : T.token list;
  u_lines : string array;
  u_has_mli : bool;
  u_mli_vals : (string * int) list;  (* exported qualified value, mli line *)
  u_mli_hazard : bool;  (* include / functor / module type in the mli *)
  u_ml_hazard : bool;  (* include in the ml: surface not parseable *)
}

type t = {
  units : unit_info array;
  defs : def array;
  calls : (int * int * int) list array;  (* per def: callee, line, col *)
  owner : int array array;  (* per unit: token index -> def id or -1 *)
  resolved : int list array array;  (* per unit: token index -> def ids *)
  seeds : (int * seed_site) list;  (* parallel-region root defs *)
  by_name : (string, int list) Hashtbl.t;  (* toplevel defs by full name *)
}

(* ---------- small shared helpers ---------- *)

let keywords =
  [
    "let"; "in"; "fun"; "function"; "match"; "with"; "if"; "then"; "else";
    "type"; "of"; "rec"; "and"; "begin"; "end"; "struct"; "sig"; "module";
    "open"; "include"; "val"; "external"; "mutable"; "while"; "for"; "do";
    "done"; "to"; "downto"; "try"; "when"; "as"; "lazy"; "assert"; "true";
    "false"; "exception"; "new"; "method"; "object"; "constraint"; "inherit";
    "initializer"; "nonrec"; "private"; "virtual"; "lor"; "land"; "lxor";
    "lsl"; "lsr"; "asr"; "mod"; "or"; "not"; "ignore"; "ref";
  ]

let is_keyword s = List.mem s keywords

let is_cap s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

let cap = String.capitalize_ascii

(* lib/<dir>/<file>.ml under a wrapped dune library: module is
   [Cap dir].[Cap file], except the library's root module (file named
   after the dir) which is just [Cap dir]. *)
let module_prefix_of_path path =
  let base = cap (Filename.remove_extension (Filename.basename path)) in
  match String.split_on_char '/' path with
  | "lib" :: dir :: _ ->
    let d = cap dir in
    ((if d = base then d else d ^ "." ^ base), Some dir)
  | _ -> (base, None)

let mutable_ctor (t : T.token) =
  t.T.kind = T.Ident
  && (t.T.text = "ref"
     || (T.has_component t "Hashtbl" && T.last_component t = "create")
     || (T.has_component t "Array"
        &&
        match T.last_component t with
        | "make" | "create_float" | "make_matrix" -> true
        | _ -> false)
     || (T.has_component t "Bytes" && T.last_component t = "create")
     || (T.has_component t "Buffer" && T.last_component t = "create")
     || (T.has_component t "Queue" && T.last_component t = "create")
     || (T.has_component t "Stack" && T.last_component t = "create"))

let domain_safe (t : T.token) =
  t.T.kind = T.Ident
  && (T.has_component t "Atomic" || T.has_component t "DLS"
    || T.has_component t "Mutex")

let contains_sub needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------- per-unit structural parse ---------- *)

type raw_def = {
  rd_name : string;
  rd_kind : def_kind;
  rd_line : int;
  rd_col : int;
  rd_parent : int;  (* raw index, -1 *)
  rd_is_function : bool;
  rd_mutable_global : bool;
  rd_guarded : bool;
  mutable rd_opens : string list;  (* local opens collected in the body *)
}

type raw_unit = {
  pdefs : raw_def array;
  powner : int array;  (* token -> raw def index or -1 *)
  popens : string list;  (* file-level opens *)
  paliases : (string * string) list;  (* module alias / functor app *)
}

let is_item_kw = function
  | "let" | "and" | "type" | "module" | "open" | "include" | "exception"
  | "external" | "class" ->
    true
  | _ -> false

let parse_ml ~prefix (code : T.token array) (comments : T.token list) =
  let n = Array.length code in
  let text i = if i >= 0 && i < n then code.(i).T.text else "" in
  let kindof i = if i >= 0 && i < n then code.(i).T.kind else T.Comment in
  let rev_defs = ref [] and ndefs = ref 0 in
  let push rd =
    rev_defs := rd :: !rev_defs;
    incr ndefs;
    !ndefs - 1
  in
  let owner = Array.make (max n 1) (-1) in
  let opens = ref [] and aliases = ref [] in
  let annotated_lines =
    List.filter_map
      (fun (c : T.token) ->
        if contains_sub "lint: domain-local" c.T.text then Some c.T.line
        else None)
      comments
  in
  (* module nesting: (name, declaration column) *)
  let mstack = ref [] in
  let item_col () = 1 + (2 * List.length !mstack) in
  let qualify name =
    let nested = List.rev_map fst !mstack in
    String.concat "." ((prefix :: nested) @ [ name ])
  in
  let at_item i =
    i < n
    &&
    let t = code.(i) in
    t.T.kind = T.Ident && t.T.col = item_col () && is_item_kw t.T.text
  in
  (* end of the structure item starting at [i]: the next item keyword
     at the current item column, an [end] at an enclosing module's
     declaration column, or EOF *)
  let item_end i =
    let stop = ref (i + 1) and fin = ref false in
    while not !fin do
      if !stop >= n then fin := true
      else
        let t = code.(!stop) in
        if at_item !stop then fin := true
        else if
          t.T.kind = T.Ident && t.T.text = "end"
          && List.exists (fun (_, c) -> c = t.T.col) !mstack
        then fin := true
        else incr stop
    done;
    !stop
  in
  (* binding header starting at [j] (after let/rec): bound names and
     the index of the first '=' at bracket depth 0 (or [bound]) *)
  let header j bound =
    let depth = ref 0 and eq = ref bound in
    let k = ref j in
    while !eq = bound && !k < bound do
      (match (kindof !k, text !k) with
      | T.Op, ("(" | "[" | "{") -> incr depth
      | T.Op, (")" | "]" | "}") -> decr depth
      | T.Op, "=" when !depth = 0 -> eq := !k
      | _ -> ());
      incr k
    done;
    let plain nm = (not (is_keyword nm)) && nm <> "_" && not (is_cap nm) in
    let names =
      match (kindof j, text j) with
      | T.Ident, name when (not (is_keyword name)) && name <> "_" ->
        (* also collect [let a, b = ...] tuple components *)
        let rec more acc k =
          if text k = "," && kindof (k + 1) = T.Ident && plain (text (k + 1))
          then more (text (k + 1) :: acc) (k + 2)
          else List.rev acc
        in
        more [ name ] (j + 1)
      | T.Op, "(" when kindof (j + 1) = T.Op && text (j + 2) = ")" ->
        [ text (j + 1) ]  (* operator definition *)
      | T.Op, ("(" | "{") ->
        (* tuple / record pattern: every plain ident up to '=' binds *)
        let out = ref [] in
        for k = j to !eq - 1 do
          if
            kindof k = T.Ident && plain (text k)
            && not (List.mem (text k) !out)
          then out := text k :: !out
        done;
        List.rev !out
      | _ -> []
    in
    (names, !eq)
  in
  (* scan a binding body for local [let]s, [let open]s and [M.(...)]
     opens; assigns token owners.  [parent_idx] owns everything not
     claimed by a local. *)
  let scan_body parent_idx lo hi =
    let local_opens = ref [] in
    let stack = ref [] in  (* (raw def idx, bracket depth at its let) *)
    let depth = ref 0 in
    let set_owner k =
      owner.(k) <- (match !stack with (d, _) :: _ -> d | [] -> parent_idx)
    in
    let k = ref lo in
    while !k < hi do
      let t = code.(!k) in
      (match (t.T.kind, t.T.text) with
      | T.Op, ("(" | "[" | "{") ->
        set_owner !k;
        incr depth
      | T.Op, (")" | "]" | "}") ->
        decr depth;
        let rec pop () =
          match !stack with
          | (_, d) :: rest when d > !depth ->
            stack := rest;
            pop ()
          | _ -> ()
        in
        pop ();
        set_owner !k
      | T.Ident, "in" ->
        (match !stack with
        | (_, d) :: rest when d = !depth -> stack := rest
        | _ -> ());
        set_owner !k
      | T.Ident, "let" when text (!k + 1) = "open" ->
        (match (kindof (!k + 2), text (!k + 2)) with
        | T.Ident, m when is_cap m -> local_opens := m :: !local_opens
        | _ -> ());
        set_owner !k
      | T.Ident, "let" when text (!k + 1) = "module" -> set_owner !k
      | T.Ident, ("let" | "and") -> (
        let is_and = t.T.text = "and" in
        let group_open =
          match !stack with (_, d) :: _ -> d = !depth | [] -> false
        in
        if is_and && not group_open then set_owner !k
        else begin
          if is_and then
            match !stack with _ :: rest -> stack := rest | [] -> ()
        end;
        if (not is_and) || group_open then
          let j = if text (!k + 1) = "rec" then !k + 2 else !k + 1 in
          let names, eq = header j hi in
          match names with
          | name :: _ when eq < hi ->
            let is_fn =
              (eq > j + 1 && text (j + 1) <> ":")
              ||
              match (kindof (eq + 1), text (eq + 1)) with
              | T.Ident, ("fun" | "function") -> true
              | _ -> false
            in
            let d =
              push
                {
                  rd_name = name;
                  rd_kind = Local;
                  rd_line = t.T.line;
                  rd_col = t.T.col;
                  rd_parent = parent_idx;
                  rd_is_function = is_fn;
                  rd_mutable_global = false;
                  rd_guarded = false;
                  rd_opens = [];
                }
            in
            (* header tokens stay with the previous owner *)
            for x = !k to min eq (hi - 1) do
              set_owner x
            done;
            stack := (d, !depth) :: !stack;
            k := eq
          | _ -> set_owner !k)
      | T.Ident, m
        when is_cap m
             && (not (String.contains m '.'))
             && text (!k + 1) = "."
             && text (!k + 2) = "(" ->
        (* [M.(...)] local open, scoped (over-approximately) to the
           whole binding *)
        local_opens := m :: !local_opens;
        set_owner !k
      | _ -> set_owner !k);
      incr k
    done;
    !local_opens
  in
  (* main structure walk *)
  let i = ref 0 in
  let prev_item = ref "" in
  while !i < n do
    let t = code.(!i) in
    if
      t.T.kind = T.Ident && t.T.text = "end"
      && (match !mstack with (_, c) :: _ -> c = t.T.col | [] -> false)
    then begin
      mstack := List.tl !mstack;
      incr i
    end
    else if at_item !i then begin
      match t.T.text with
      | "open" ->
        (match (kindof (!i + 1), text (!i + 1)) with
        | T.Ident, m when is_cap m -> opens := m :: !opens
        | _ -> ());
        prev_item := "open";
        i := item_end !i
      | "module" ->
        prev_item := "module";
        if text (!i + 1) = "type" then i := item_end !i
        else begin
          let name = text (!i + 1) in
          let s = item_end !i in
          (* '=' at depth 0, outside any sig/struct block before it *)
          let eq = ref (-1) and depth = ref 0 and blk = ref 0 in
          let k = ref (!i + 2) in
          while !eq < 0 && !k < s do
            (match (kindof !k, text !k) with
            | T.Op, ("(" | "[" | "{") -> incr depth
            | T.Op, (")" | "]" | "}") -> decr depth
            | T.Ident, ("sig" | "struct" | "begin" | "object") -> incr blk
            | T.Ident, "end" -> decr blk
            | T.Op, "=" when !depth = 0 && !blk = 0 -> eq := !k
            | _ -> ());
            incr k
          done;
          if !eq < 0 then i := s
          else
            match (kindof (!eq + 1), text (!eq + 1)) with
            | T.Ident, "struct" ->
              (* module or functor body: descend *)
              mstack := (name, t.T.col) :: !mstack;
              i := !eq + 2
            | T.Ident, target when is_cap target ->
              (* alias or functor instantiation: both map [name] to
                 the target's head path *)
              aliases := (name, target) :: !aliases;
              i := s
            | _ -> i := s
        end
      | "include" | "type" | "exception" | "class" ->
        prev_item := t.T.text;
        i := item_end !i
      | "external" ->
        prev_item := "let";
        let s = item_end !i in
        let name =
          match (kindof (!i + 1), text (!i + 1)) with
          | T.Ident, nm when not (is_keyword nm) -> Some nm
          | T.Op, "(" when kindof (!i + 2) = T.Op -> Some (text (!i + 2))
          | _ -> None
        in
        (match name with
        | Some nm ->
          ignore
            (push
               {
                 rd_name = qualify nm;
                 rd_kind = Toplevel;
                 rd_line = t.T.line;
                 rd_col = t.T.col;
                 rd_parent = -1;
                 rd_is_function = true;
                 rd_mutable_global = false;
                 rd_guarded = false;
                 rd_opens = [];
               })
        | None -> ());
        i := s
      | "let" | "and" ->
        if t.T.text = "and" && !prev_item <> "let" then i := item_end !i
        else begin
          prev_item := "let";
          let s = item_end !i in
          let j = if text (!i + 1) = "rec" then !i + 2 else !i + 1 in
          let names, eq = header j s in
          let last_line =
            if s - 1 >= 0 && s - 1 < n then code.(s - 1).T.line else t.T.line
          in
          let is_fn =
            (match names with
            | [ _ ] -> eq > j + 1 && text (j + 1) <> ":"
            | _ -> false)
            ||
            match (kindof (eq + 1), text (eq + 1)) with
            | T.Ident, ("fun" | "function") -> true
            | _ -> false
          in
          let mut = ref false and safe = ref false in
          if not is_fn then
            for k = eq + 1 to s - 1 do
              if mutable_ctor code.(k) then mut := true;
              if domain_safe code.(k) then safe := true
            done;
          let annotated =
            List.exists
              (fun l -> l >= t.T.line - 1 && l <= last_line)
              annotated_lines
          in
          let kind = if names = [] then Init else Toplevel in
          let name =
            match names with
            | [] -> qualify (Printf.sprintf "<init:%d>" t.T.line)
            | nm :: _ -> qualify nm
          in
          let rd =
            {
              rd_name = name;
              rd_kind = kind;
              rd_line = t.T.line;
              rd_col = t.T.col;
              rd_parent = -1;
              rd_is_function = is_fn;
              rd_mutable_global = (!mut && kind = Toplevel);
              rd_guarded = (!safe || annotated);
              rd_opens = [];
            }
          in
          let d = push rd in
          for x = !i to min eq (s - 1) do
            owner.(x) <- d
          done;
          if eq + 1 < s then rd.rd_opens <- scan_body d (eq + 1) s;
          (* extra tuple/record pattern names bind alongside the first *)
          (match names with
          | _ :: (_ :: _ as rest) ->
            List.iter
              (fun nm ->
                ignore
                  (push
                     {
                       rd_name = qualify nm;
                       rd_kind = Toplevel;
                       rd_line = t.T.line;
                       rd_col = t.T.col;
                       rd_parent = -1;
                       rd_is_function = false;
                       rd_mutable_global = !mut;
                       rd_guarded = !safe || annotated;
                       rd_opens = [];
                     }))
              rest
          | _ -> ());
          i := s
        end
      | _ -> incr i
    end
    else incr i
  done;
  {
    pdefs = Array.of_list (List.rev !rev_defs);
    powner = owner;
    popens = List.rev !opens;
    paliases = !aliases;
  }

(* ---------- .mli surface ---------- *)

let parse_mli ~prefix (code : T.token array) =
  let n = Array.length code in
  let text i = if i >= 0 && i < n then code.(i).T.text else "" in
  let kindof i = if i >= 0 && i < n then code.(i).T.kind else T.Comment in
  let vals = ref [] and hazard = ref false in
  let mstack = ref [] in
  let item_col () = 1 + (2 * List.length !mstack) in
  let qualify name =
    let nested = List.rev_map fst !mstack in
    String.concat "." ((prefix :: nested) @ [ name ])
  in
  let i = ref 0 in
  while !i < n do
    let t = code.(!i) in
    (if t.T.kind = T.Ident then
       match t.T.text with
       | "include" | "functor" -> hazard := true
       | "end" -> (
         match !mstack with
         | (_, c) :: rest when c = t.T.col -> mstack := rest
         | _ -> ())
       | "module" when t.T.col = item_col () ->
         if text (!i + 1) = "type" then hazard := true
         else begin
           (* [module M : sig] nests; [module M = Path] / [module M : S]
              do not *)
           let rec find_sig k =
             if k > !i + 8 || k >= n then None
             else if text k = "sig" then Some k
             else if text k = "end" || text k = "val" then None
             else find_sig (k + 1)
           in
           match find_sig (!i + 2) with
           | Some _ -> mstack := (text (!i + 1), t.T.col) :: !mstack
           | None -> ()
         end
       | ("val" | "external") when t.T.col = item_col () -> (
         match (kindof (!i + 1), text (!i + 1)) with
         | T.Ident, nm when not (is_keyword nm) ->
           vals := (qualify nm, t.T.line) :: !vals
         | T.Op, "(" when kindof (!i + 2) = T.Op ->
           vals := (qualify (text (!i + 2)), t.T.line) :: !vals
         | _ -> ())
       | _ -> ());
    incr i
  done;
  (List.rev !vals, !hazard)

(* ---------- cross-unit build ---------- *)

type source = {
  s_path : string;
  s_contents : string;
  s_mli : string option;  (* sibling .mli contents, if any *)
}

let pool_names = [ "Netgraph.Pool.parallel_for"; "Netgraph.Pool.parallel_for_slots" ]

(* textual fallback for projects that do not include Netgraph.Pool
   itself (test fixtures): a dotted reference through a [Pool]
   component ending in a parallel_for entry point *)
let pool_seed_ref (t : T.token) =
  T.has_component t "Pool"
  &&
  match T.last_component t with
  | "parallel_for" | "parallel_for_slots" -> true
  | _ -> false

let split_lines s = Array.of_list (String.split_on_char '\n' s)

let build (sources : source list) =
  let sources = Array.of_list sources in
  let nunits = Array.length sources in
  (* 1. per-unit tokenize + structural parse *)
  let raws = Array.make nunits { pdefs = [||]; powner = [||]; popens = []; paliases = [] } in
  let units =
    Array.mapi
      (fun ui (s : source) ->
        let prefix, lib = module_prefix_of_path s.s_path in
        let tokens = T.tokenize s.s_contents in
        let comments = List.filter (fun t -> t.T.kind = T.Comment) tokens in
        let code =
          Array.of_list (List.filter (fun t -> t.T.kind <> T.Comment) tokens)
        in
        raws.(ui) <- parse_ml ~prefix code comments;
        let mli_vals, mli_hazard =
          match s.s_mli with
          | Some c ->
            let mcode =
              Array.of_list
                (List.filter (fun t -> t.T.kind <> T.Comment) (T.tokenize c))
            in
            parse_mli ~prefix mcode
          | None -> ([], false)
        in
        let ml_hazard =
          Array.exists
            (fun (t : T.token) -> t.T.kind = T.Ident && t.T.text = "include")
            code
        in
        {
          u_path = s.s_path;
          u_module = prefix;
          u_lib = lib;
          u_code = code;
          u_comments = comments;
          u_lines = split_lines s.s_contents;
          u_has_mli = s.s_mli <> None;
          u_mli_vals = mli_vals;
          u_mli_hazard = mli_hazard;
          u_ml_hazard = ml_hazard;
        })
      sources
  in
  (* 2. global def table over the per-unit raw defs *)
  let base = Array.make (max nunits 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun ui r ->
      base.(ui) <- !total;
      total := !total + Array.length r.pdefs)
    raws;
  let defs0 = Array.make !total None in
  Array.iteri
    (fun ui r ->
      Array.iteri
        (fun k rd ->
          let id = base.(ui) + k in
          defs0.(id) <-
            Some
              {
                id;
                name = rd.rd_name;
                kind = rd.rd_kind;
                unit_ = ui;
                line = rd.rd_line;
                col = rd.rd_col;
                parent = (if rd.rd_parent >= 0 then base.(ui) + rd.rd_parent else -1);
                is_function = rd.rd_is_function;
                mutable_global = rd.rd_mutable_global;
                guarded = rd.rd_guarded;
              })
        r.pdefs)
    raws;
  let defs0 =
    Array.map
      (function Some d -> d | None -> assert false (* every slot filled above *))
      defs0
  in
  let ndefs0 = !total in
  let owner =
    Array.mapi
      (fun ui _ ->
        Array.map (fun r -> if r >= 0 then base.(ui) + r else -1) raws.(ui).powner)
      units
  in
  (* 3. name index and library tables *)
  let by_name = Hashtbl.create 256 in
  if ndefs0 > 0 then
    Array.iter
      (fun (d : def) ->
        if d.kind = Toplevel then
          Hashtbl.replace by_name d.name
            (match Hashtbl.find_opt by_name d.name with
            | Some ids -> ids @ [ d.id ]
            | None -> [ d.id ]))
      defs0;
  let lib_units = Hashtbl.create 32 in  (* (libdir, ModName) -> full prefix *)
  let lib_names = Hashtbl.create 8 in  (* Cap libdir -> () *)
  Array.iter
    (fun (u : unit_info) ->
      match u.u_lib with
      | Some l ->
        Hashtbl.replace lib_names (cap l) ();
        let leaf =
          match String.rindex_opt u.u_module '.' with
          | Some i ->
            String.sub u.u_module (i + 1) (String.length u.u_module - i - 1)
          | None -> u.u_module
        in
        Hashtbl.replace lib_units (l, leaf) u.u_module
      | None -> ())
    units;
  (* 4. reference resolution *)
  let top_of id =
    let rec go p = if defs0.(p).parent < 0 then p else go defs0.(p).parent in
    if id >= 0 && id < ndefs0 then go id else -1
  in
  let opens_of ui gid =
    let r = raws.(ui) in
    let rec up acc id =
      if id < 0 || id >= ndefs0 then acc
      else
        let k = id - base.(ui) in
        let acc =
          if k >= 0 && k < Array.length r.pdefs then r.pdefs.(k).rd_opens @ acc
          else acc
        in
        up acc defs0.(id).parent
    in
    up r.popens gid
  in
  let split_head path =
    match String.index_opt path '.' with
    | Some i -> (String.sub path 0 i, String.sub path i (String.length path - i))
    | None -> (path, "")
  in
  let alias_expand ui path =
    let rec go path fuel =
      if fuel = 0 then path
      else
        let head, rest = split_head path in
        match List.assoc_opt head raws.(ui).paliases with
        | Some target -> go (target ^ rest) (fuel - 1)
        | None -> path
    in
    go path 8
  in
  (* canonicalize a dotted module path as referenced from [ui]:
     expand aliases, then try the head as a module nested in this
     unit before resolving it as a sibling unit through the enclosing
     library's wrapping prefix.  Returns candidates most-local-first;
     the caller keeps the first tier that hits. *)
  let module_paths ui path =
    let path = alias_expand ui path in
    let head, _ = split_head path in
    let canonical =
      if Hashtbl.mem lib_names head then path
      else
        match units.(ui).u_lib with
        | Some l when Hashtbl.mem lib_units (l, head) -> cap l ^ "." ^ path
        | _ -> path
    in
    [ units.(ui).u_module ^ "." ^ path; canonical ]
  in
  let scopes_of_def gid =
    (* enclosing module prefixes of the owning toplevel binding *)
    let t = top_of gid in
    if t < 0 then []
    else
      let rec chop acc s =
        match String.rindex_opt s '.' with
        | Some i ->
          let p = String.sub s 0 i in
          chop (p :: acc) p
        | None -> acc
      in
      List.rev (chop [] defs0.(t).name)
  in
  let resolve ui gid txt =
    if is_keyword txt then []
    else
      let head, _ = split_head txt in
      if head = txt && not (is_cap txt) then begin
        (* bare lowercase name: locals shadow the unit, the unit
           shadows opens *)
        let t = top_of gid in
        let local_hits =
          if t < 0 then []
          else begin
            let out = ref [] in
            let r = raws.(ui) in
            Array.iteri
              (fun k rd ->
                let id = base.(ui) + k in
                if rd.rd_kind = Local && rd.rd_name = txt && id <> gid
                   && top_of id = t
                then out := id :: !out)
              r.pdefs;
            List.rev !out
          end
        in
        if local_hits <> [] then local_hits
        else
          let scopes =
            match scopes_of_def gid with
            | [] -> [ units.(ui).u_module ]
            | s -> s
          in
          let unit_hits =
            List.concat_map
              (fun sc ->
                match Hashtbl.find_opt by_name (sc ^ "." ^ txt) with
                | Some ids -> ids
                | None -> [])
              scopes
          in
          if unit_hits <> [] then unit_hits
          else
            List.concat_map
              (fun op ->
                List.concat_map
                  (fun mp ->
                    match Hashtbl.find_opt by_name (mp ^ "." ^ txt) with
                    | Some ids -> ids
                    | None -> [])
                  (module_paths ui op))
              (opens_of ui gid)
      end
      else if is_cap head && head <> txt then begin
        (* dotted path with a module head: nested module of this unit,
           then the canonical (alias/library-expanded) path, then via
           opens; first tier with hits wins *)
        let candidates =
          ((units.(ui).u_module ^ "." ^ txt) :: module_paths ui txt)
          @ List.concat_map
              (fun op -> List.map (fun mp -> mp ^ "." ^ txt) (module_paths ui op))
              (opens_of ui gid)
        in
        let rec first = function
          | [] -> []
          | c :: rest -> (
            match Hashtbl.find_opt by_name c with
            | Some ids -> ids
            | None -> first rest)
        in
        first candidates
      end
      else []
  in
  let resolved =
    Array.mapi
      (fun ui (u : unit_info) ->
        Array.mapi
          (fun k (t : T.token) ->
            let o = owner.(ui).(k) in
            if o < 0 || t.T.kind <> T.Ident then [] else resolve ui o t.T.text)
          u.u_code)
      units
  in
  (* 5. parallel seeds: Netgraph.Pool.parallel_for[_slots] call sites.
     The callback argument extent is seeded, not the whole caller:
     lambdas become fresh Lambda defs, named arguments seed the defs
     they resolve to.  Post-join code stays outside the region. *)
  let extras = ref [] and nextra = ref 0 in
  let add_lambda d =
    extras := d :: !extras;
    incr nextra;
    d.id
  in
  let seeds = ref [] in
  Array.iteri
    (fun ui (u : unit_info) ->
      let code = u.u_code in
      let nu = Array.length code in
      Array.iteri
        (fun k (t : T.token) ->
          let o = owner.(ui).(k) in
          let hits = resolved.(ui).(k) in
          let is_pool_call =
            t.T.kind = T.Ident && o >= 0
            && ((hits <> []
                && List.exists
                     (fun d -> d <> o && List.mem defs0.(d).name pool_names)
                     hits)
               || (hits = [] && pool_seed_ref t))
          in
          if is_pool_call then begin
            let site = { site_unit = ui; site_line = t.T.line; site_col = t.T.col } in
            let j = ref (k + 1) and depth = ref 0 and fin = ref false in
            while (not !fin) && !j < nu do
              let x = code.(!j) in
              match (x.T.kind, x.T.text) with
              | T.Op, ("(" | "[" | "{") ->
                incr depth;
                incr j
              | T.Op, (")" | "]" | "}") ->
                if !depth = 0 then fin := true
                else begin
                  decr depth;
                  incr j
                end
              | T.Op, ("~" | "?" | ":" | "." | "@@" | "!") -> incr j
              | T.Op, _ when !depth > 0 -> incr j
              | T.Op, _ -> fin := true
              | T.Ident, ("fun" | "function") ->
                (* anonymous callback: its own seeded def *)
                let d0 = !depth in
                let e = ref (!j + 1) and dd = ref d0 and stop = ref false in
                while (not !stop) && !e < nu do
                  (match (code.(!e).T.kind, code.(!e).T.text) with
                  | T.Op, ("(" | "[" | "{") -> incr dd
                  | T.Op, (")" | "]" | "}") ->
                    if !dd = d0 then stop := true else decr dd
                  | T.Ident, ("in" | "done" | "end") when !dd = d0 && d0 = 0 ->
                    stop := true
                  | T.Op, ";" when !dd = d0 && d0 = 0 -> stop := true
                  | _ -> ());
                  if not !stop then incr e
                done;
                let lam_id = ndefs0 + !nextra in
                let parent_name =
                  if o >= 0 && o < ndefs0 then defs0.(o).name else u.u_module
                in
                let last_line =
                  if !e - 1 >= 0 && !e - 1 < nu then code.(!e - 1).T.line
                  else x.T.line
                in
                ignore
                  (add_lambda
                     {
                       id = lam_id;
                       name = Printf.sprintf "%s.<fun:%d>" parent_name x.T.line;
                       kind = Lambda;
                       unit_ = ui;
                       line = x.T.line;
                       col = x.T.col;
                       parent = o;
                       is_function = true;
                       mutable_global = false;
                       guarded = false;
                     });
                (* the lambda takes over its tokens and any locals
                   declared inside its extent *)
                for y = !j to !e - 1 do
                  if owner.(ui).(y) = o then owner.(ui).(y) <- lam_id
                done;
                for d = 0 to ndefs0 - 1 do
                  let dd' = defs0.(d) in
                  if
                    dd'.unit_ = ui && dd'.parent = o && dd'.kind = Local
                    && dd'.line >= x.T.line && dd'.line <= last_line
                  then defs0.(d) <- { dd' with parent = lam_id }
                done;
                seeds := (lam_id, site) :: !seeds;
                j := !e
              | T.Ident, kw when !depth = 0 && is_keyword kw -> fin := true
              | T.Ident, _ ->
                if !depth = 0 then
                  List.iter
                    (fun d ->
                      if not (List.mem defs0.(d).name pool_names) then
                        seeds := (d, site) :: !seeds)
                    resolved.(ui).(!j);
                incr j
              | _ -> incr j
            done
          end)
        code)
    units;
  let defs = Array.append defs0 (Array.of_list (List.rev !extras)) in
  (* 6. call edges from the final owner map; a value local is executed
     by its parent, so it gets an implicit edge *)
  let calls = Array.make (max (Array.length defs) 1) [] in
  Array.iteri
    (fun ui (u : unit_info) ->
      Array.iteri
        (fun k (t : T.token) ->
          let o = owner.(ui).(k) in
          if o >= 0 then
            List.iter
              (fun callee ->
                if callee <> o then
                  calls.(o) <- (callee, t.T.line, t.T.col) :: calls.(o))
              resolved.(ui).(k))
        u.u_code)
    units;
  Array.iter
    (fun (d : def) ->
      if d.kind = Local && (not d.is_function) && d.parent >= 0 then
        calls.(d.parent) <- (d.id, d.line, d.col) :: calls.(d.parent))
    defs;
  Array.iteri (fun i l -> calls.(i) <- List.rev l) calls;
  (* dedup seeds by def, keeping the first site *)
  let seen = Hashtbl.create 16 in
  let seeds =
    List.rev !seeds
    |> List.filter (fun (d, _) ->
           if Hashtbl.mem seen d then false
           else begin
             Hashtbl.replace seen d ();
             true
           end)
  in
  { units; defs; calls; owner; resolved; seeds; by_name }

let of_sources files =
  let mli = Hashtbl.create 16 in
  List.iter
    (fun (path, contents) ->
      if Filename.check_suffix path ".mli" then Hashtbl.replace mli path contents)
    files;
  build
    (List.filter_map
       (fun (path, contents) ->
         if Filename.check_suffix path ".mli" then None
         else
           Some
             {
               s_path = path;
               s_contents = contents;
               s_mli = Hashtbl.find_opt mli (path ^ "i");
             })
       files)

let find_def g name =
  match Hashtbl.find_opt g.by_name name with
  | Some (id :: _) -> Some g.defs.(id)
  | _ ->
    (* suffix match as a CLI convenience: [--summary bfs] *)
    let suffix = "." ^ name in
    let hit = ref None in
    Array.iter
      (fun (d : def) ->
        if
          !hit = None && d.kind = Toplevel
          && String.length d.name > String.length suffix
          && String.sub d.name
               (String.length d.name - String.length suffix)
               (String.length suffix)
             = suffix
        then hit := Some d)
      g.defs;
    !hit
