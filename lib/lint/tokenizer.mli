(** A comment- and string-aware lexer for the subset of OCaml the lint
    rules need: identifiers (with dotted access paths merged into one
    token), literals, operators and comments, each carrying its
    1-based line and column.  It never parses — rules work directly on
    the token stream. *)

type kind =
  | Ident      (** possibly dotted: [Stdlib.Random.self_init], [h.keys] *)
  | Int_lit
  | Float_lit
  | String_lit (** contents only, quotes stripped *)
  | Char_lit
  | Op         (** symbolic operator or single punctuation character *)
  | Comment    (** full text including the [(* *)] delimiters *)

type token = { kind : kind; text : string; line : int; col : int }

(** [tokenize src] lexes a whole compilation unit.  Comments nest,
    strings inside comments are honoured, [{id|...|id}] quoted strings
    and char literals (including ['\'']) are recognised; a lone tick
    (type variable) comes out as an [Op].  Unterminated constructs are
    tolerated — the lexer never raises. *)
val tokenize : string -> token list

(** ["Stdlib.Random.int"] -> [["Stdlib"; "Random"; "int"]] *)
val path_components : string -> string list

(** [has_component tok "Random"] — membership in the dotted path. *)
val has_component : token -> string -> bool

(** Last path component: ["Hashtbl.iter"] -> ["iter"]. *)
val last_component : token -> string
