(* Grandfathered findings.  One tab-separated entry per line:

     RULE <tab> FILE <tab> COUNT <tab> REASON

   matching up to COUNT findings of RULE in FILE (by position order),
   so a new finding of the same kind in the same file still fails the
   build.  Line numbers are deliberately absent: they churn with every
   edit.  '#' starts a comment, blank lines are ignored, and a reason
   is mandatory — a baseline entry is a debt note, not a mute button. *)

type entry = { rule : string; file : string; count : int; reason : string }

let parse_line ln line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char '\t' line with
    | rule :: file :: count :: reason ->
      let reason = String.trim (String.concat "\t" reason) in
      if reason = "" then
        failwith
          (Printf.sprintf "baseline line %d: entry without a reason" ln)
      else begin
        match int_of_string_opt (String.trim count) with
        | Some count when count > 0 ->
          Some { rule = String.trim rule; file = String.trim file; count; reason }
        | _ ->
          failwith
            (Printf.sprintf "baseline line %d: bad count %S" ln count)
      end
    | _ ->
      failwith
        (Printf.sprintf
           "baseline line %d: expected RULE<tab>FILE<tab>COUNT<tab>REASON" ln)

let of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) -> parse_line i l)

let read path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

let to_string entries =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "# Lint baseline: grandfathered findings, one per line as\n\
     # RULE<tab>FILE<tab>COUNT<tab>REASON.  New findings beyond COUNT\n\
     # still fail; prefer fixing over baselining.\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%s\t%s\t%d\t%s\n" e.rule e.file e.count e.reason))
    entries;
  Buffer.contents b

let write path entries =
  let oc = open_out_bin path in
  output_string oc (to_string entries);
  close_out oc

let apply entries findings =
  (* consume budgets in position order so which findings are
     grandfathered is deterministic *)
  let budget = Hashtbl.create 16 in
  List.iter
    (fun e -> Hashtbl.replace budget (e.rule, e.file) (ref e.count, e.reason))
    entries;
  let keep = ref [] and grandfathered = ref [] in
  List.iter
    (fun (d : Diag.t) ->
      match Hashtbl.find_opt budget (d.rule, d.file) with
      | Some (left, reason) when !left > 0 ->
        decr left;
        grandfathered := (d, reason) :: !grandfathered
      | _ -> keep := d :: !keep)
    (List.sort Diag.compare findings);
  (List.rev !keep, List.rev !grandfathered)

let merge_reasons ~old entries =
  List.map
    (fun e ->
      match
        List.find_opt (fun o -> o.rule = e.rule && o.file = e.file) old
      with
      | Some o when o.reason <> "" -> { e with reason = o.reason }
      | _ -> e)
    entries

let of_findings ~reason findings =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (d : Diag.t) ->
      let key = (d.rule, d.file) in
      match Hashtbl.find_opt tbl key with
      | Some r -> incr r
      | None ->
        Hashtbl.replace tbl key (ref 1);
        order := key :: !order)
    findings;
  List.rev !order
  |> List.map (fun (rule, file) ->
         { rule; file; count = !(Hashtbl.find tbl (rule, file)); reason })
