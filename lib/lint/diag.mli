(** A typed lint finding and its two sinks: a pretty formatter and
    kind-tagged JSON lines in the same convention as Obs's json sink
    ([{"kind":...}] objects, one per line, read back losslessly with a
    Scanf parser). *)

type severity = Error | Warning

type t = {
  rule : string;       (** e.g. ["D001"] *)
  severity : severity;
  file : string;       (** repo-relative, '/'-separated *)
  line : int;          (** 1-based *)
  col : int;           (** 1-based *)
  message : string;
  excerpt : string;    (** offending source line, trimmed; may be [""] *)
}

val severity_to_string : severity -> string

(** Inverse of {!severity_to_string}; raises [Invalid_argument] on
    unknown names. *)
val severity_of_string : string -> severity

(** Position order: file, line, col, rule. *)
val compare : t -> t -> int

(** Structural equality over every field (used by round-trip tests). *)
val equal : t -> t -> bool

(** [file:line:col: [RULE] severity: message] with the excerpt on a
    second line. *)
val pp : Format.formatter -> t -> unit

(** One JSON object, no trailing newline. *)
val to_json_line : t -> string

(** Parse one {!to_json_line} output; [None] for lines of another kind
    (e.g. the summary object) or malformed input. *)
val of_json_line : string -> t option

(** Parse a whole [--json] report, skipping blank and non-finding
    lines. *)
val read_json_lines : string -> t list
