(** Per-function effect summaries over the {!Callgraph}, propagated
    bottom-up over SCCs, plus reachability from
    [Netgraph.Pool.parallel_for] callback sites.  The retargeted
    determinism/multicore rules (D001 D002 D003 M001 M002) and the new
    E-rules (E001 unguarded blocking I/O on a parallel chain, E002
    escaping exception, E003 .mli drift) are generated here; each
    reachability finding carries the witness call chain from the Pool
    seed to the offending site. *)

type kind =
  | Random  (** Stdlib.Random use outside lib/wireless/rand.ml *)
  | Clock  (** Sys.time / Unix.gettimeofday outside lib/obs *)
  | Unordered_iter  (** Hashtbl.iter/fold with no sort in sight *)
  | Mutable_global  (** touches an unguarded toplevel ref/table *)
  | Blocking_io  (** prints, channels, Unix/Thread blocking calls *)
  | Raises  (** raise / failwith *)
  | Graph_mut  (** Netgraph.Graph.add_edge / remove_edge *)

val all_kinds : kind list
val bit : kind -> int
val kind_name : kind -> string

(** Sanctioned-home mask: effect bits that do NOT propagate out of
    functions defined at this path (lib/obs and bench mask everything,
    lib/wireless/rand.ml masks [Random], lib/netgraph/graph.ml masks
    [Unordered_iter] and [Graph_mut]). *)
val mask_of_path : string -> int

type site = {
  e_def : int;
  e_kind : kind;
  e_line : int;
  e_col : int;
  e_text : string;
  e_note : string;
}

type analysis = {
  graph : Callgraph.t;
  summaries : int array;  (** per def: transitive effect bits *)
  intrinsic : int array;  (** per def: own effect bits *)
  sites : site list;
  reachable : bool array;
  bfs_parent : int array;
  bfs_root : int array;
  has_guard : bool array;
  has_try : bool array;
}

val analyze : Callgraph.t -> analysis

(** Witness chain (def names, seed first) to a reachable def. *)
val chain_names : analysis -> int -> string list

val seed_site_of : analysis -> int -> Callgraph.seed_site option

type rule_info = {
  id : string;
  family : string;
  severity : Diag.severity;
  title : string;
  doc : string;
}

(** The interprocedural rule catalog: D001 D002 D003 M001 M002 E001
    E002 E003. *)
val rules : rule_info list

val find_rule : string -> rule_info option

(** All diagnostics for the analysis, sorted, deduplicated by
    position; [only] filters by rule id. *)
val findings : ?only:string list -> analysis -> Diag.t list

type stats = {
  s_functions : int;
  s_edges : int;  (** distinct caller->callee pairs, = DOT edge count *)
  s_seeds : int;
  s_reachable : int;
}

val stats : analysis -> stats
val stats_json : stats -> string

(** Effect-colored DOT call graph; parallel-reachable defs live in
    [subgraph cluster_parallel]; one edge line per distinct pair. *)
val to_dot : analysis -> string

(** Human-readable effect set + witness chain for one function (by
    full name or unique suffix), or [None] if unknown. *)
val function_summary : analysis -> string -> string option
