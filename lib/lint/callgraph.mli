(** A conservative structural call graph over the repo's own sources.

    Built on the lint tokenizer, not the compiler: top-level and
    nested-module bindings, local [let ... in] bindings, module
    aliases and functor instantiations, and [open]-aware dotted-path
    resolution, over-approximating when ambiguous (every [open] in
    scope contributes candidates; same-name locals shadow the unit).
    Parallel-region roots ([seeds]) are the callback arguments of
    [Netgraph.Pool.parallel_for]/[parallel_for_slots] call sites —
    the argument extent only, so post-join code stays outside the
    region.  Layout assumptions (items at column 1 + 2*nesting,
    ocamlformat style) are documented in DESIGN.md §15. *)

type def_kind =
  | Toplevel  (** unit- or nested-module-level binding *)
  | Init  (** [let () = ...] structure item *)
  | Local  (** [let ... in] inside a body *)
  | Lambda  (** anonymous [fun] at a Pool callback site *)

type def = {
  id : int;
  name : string;
      (** qualified, e.g. [Netgraph.Pool.parallel_for]; bare for
          [Local]; [Parent.<fun:LINE>] for lambdas *)
  kind : def_kind;
  unit_ : int;  (** index into [units] *)
  line : int;
  col : int;
  parent : int;  (** enclosing def id for Local/Lambda, [-1] otherwise *)
  is_function : bool;
  mutable_global : bool;
      (** non-function toplevel binding holding mutable state *)
  guarded : bool;
      (** Atomic/DLS/Mutex in the binding, or annotated
          [(* lint: domain-local ... *)] *)
}

type seed_site = { site_unit : int; site_line : int; site_col : int }

type unit_info = {
  u_path : string;  (** repo-relative .ml path *)
  u_module : string;  (** canonical module prefix, e.g. [Netgraph.Pool] *)
  u_lib : string option;  (** library dir name for lib/<d>/<f>.ml *)
  u_code : Tokenizer.token array;  (** comments stripped *)
  u_comments : Tokenizer.token list;
  u_lines : string array;  (** source lines, for excerpts *)
  u_has_mli : bool;
  u_mli_vals : (string * int) list;
      (** exported qualified value names with their .mli lines *)
  u_mli_hazard : bool;
      (** [include] / functor / module type in the .mli: the export
          surface is not structurally comparable *)
  u_ml_hazard : bool;  (** [include] in the .ml *)
}

type t = {
  units : unit_info array;
  defs : def array;
  calls : (int * int * int) list array;
      (** per def id: (callee id, line, col) in token order *)
  owner : int array array;
      (** per unit: token index -> enclosing def id or [-1] *)
  resolved : int list array array;
      (** per unit: token index -> candidate def ids *)
  seeds : (int * seed_site) list;
      (** parallel-region root defs with the Pool call site *)
  by_name : (string, int list) Hashtbl.t;
}

type source = {
  s_path : string;  (** repo-relative .ml path *)
  s_contents : string;
  s_mli : string option;  (** sibling .mli contents, if any *)
}

val build : source list -> t

(** [of_sources files] pairs [.mli] entries with their [.ml] siblings
    by path and builds the graph over the [.ml] entries. *)
val of_sources : (string * string) list -> t

(** Look a toplevel binding up by full name, falling back to a unique
    [.name] suffix match ([find_def g "bfs"]). *)
val find_def : t -> string -> def option

(** [module_prefix_of_path "lib/netgraph/pool.ml"] =
    [("Netgraph.Pool", Some "netgraph")]; the library root module
    ([lib/obs/obs.ml]) collapses to just ["Obs"]. *)
val module_prefix_of_path : string -> string * string option

(** Shared with the effect layer: the token spells a mutable-state
    constructor ([ref], [Hashtbl.create], [Array.make], ...). *)
val mutable_ctor : Tokenizer.token -> bool

(** The token references an [Atomic]/[Domain.DLS]/[Mutex] guard. *)
val domain_safe : Tokenizer.token -> bool

val is_keyword : string -> bool
