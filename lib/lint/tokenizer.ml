(* A comment- and string-aware lexer for the subset of OCaml the lint
   rules care about.  It is not a full lexer: it only needs to place
   identifiers, literals, operators and comments at the right
   line/column, never to parse.  Dotted access paths are merged into a
   single token ([Stdlib.Random.self_init], [h.keys]) so rules can
   match on path components without reassembling them. *)

type kind =
  | Ident
  | Int_lit
  | Float_lit
  | String_lit
  | Char_lit
  | Op
  | Comment

type token = { kind : kind; text : string; line : int; col : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* maximal-munch set for symbolic operators; '.' is handled separately
   because it glues access paths and float literals *)
let is_op_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '/' | ':' | '<' | '=' | '>'
  | '?' | '@' | '^' | '|' | '~' | '#' ->
    true
  | _ -> false

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the current line's first byte *)
}

let peek cur k =
  let i = cur.pos + k in
  if i < String.length cur.src then Some cur.src.[i] else None

let advance cur =
  (if cur.pos < String.length cur.src then
     match cur.src.[cur.pos] with
     | '\n' ->
       cur.line <- cur.line + 1;
       cur.bol <- cur.pos + 1
     | _ -> ());
  cur.pos <- cur.pos + 1

let col_of cur start = start - cur.bol + 1

(* Skip a double-quoted string body; [cur.pos] is on the opening
   quote.  Returns the contents (without quotes). *)
let scan_string cur =
  let buf = Buffer.create 16 in
  advance cur;
  let continue = ref true in
  while !continue do
    match peek cur 0 with
    | None -> continue := false (* unterminated: tolerate, lint goes on *)
    | Some '"' ->
      advance cur;
      continue := false
    | Some '\\' ->
      Buffer.add_char buf '\\';
      advance cur;
      (match peek cur 0 with
      | Some c ->
        Buffer.add_char buf c;
        advance cur
      | None -> continue := false)
    | Some c ->
      Buffer.add_char buf c;
      advance cur
  done;
  Buffer.contents buf

(* Quoted string literal [{id|...|id}]; [cur.pos] is on '{' and the
   caller verified the shape.  Returns the contents. *)
let scan_quoted_string cur =
  let start = cur.pos in
  advance cur (* '{' *);
  let id = Buffer.create 4 in
  let continue = ref true in
  while !continue do
    match peek cur 0 with
    | Some c when (c >= 'a' && c <= 'z') || c = '_' ->
      Buffer.add_char id c;
      advance cur
    | _ -> continue := false
  done;
  advance cur (* '|' *);
  let id = Buffer.contents id in
  let closing = "|" ^ id ^ "}" in
  let buf = Buffer.create 16 in
  let n = String.length cur.src in
  let fin = ref false in
  while not !fin do
    if cur.pos >= n then fin := true
    else if
      cur.pos + String.length closing <= n
      && String.sub cur.src cur.pos (String.length closing) = closing
    then begin
      for _ = 1 to String.length closing do
        advance cur
      done;
      fin := true
    end
    else begin
      Buffer.add_char buf cur.src.[cur.pos];
      advance cur
    end
  done;
  ignore start;
  Buffer.contents buf

(* Shape probe for [{id|...|id}]: [cur.pos] is on '{'; true when a
   (possibly empty) lowercase id followed by '|' comes next. *)
let quoted_probe cur =
  let rec probe k =
    match peek cur k with
    | Some ch when (ch >= 'a' && ch <= 'z') || ch = '_' -> probe (k + 1)
    | Some '|' -> true
    | _ -> false
  in
  probe 1

(* Char literal starting at a single quote, or None if the quote is a
   type-variable tick (or an apostrophe in prose).  Shapes: 'c', '\n',
   '\\', '\'', '\xHH', '\123', '\uXXXX' (approximated: backslash
   followed by up to 6 non-quote chars then a quote). *)
let try_char_lit cur =
  match peek cur 1 with
  | Some '\\' ->
    (* the char right after the backslash is part of the escape even
       when it is a quote ('\''); scan for the closing quote after it *)
    let rec find k =
      if k > 8 then None
      else
        match peek cur k with
        | Some '\'' -> Some (k + 1)
        | Some _ -> find (k + 1)
        | None -> None
    in
    find 3
  | Some _ when peek cur 2 = Some '\'' -> Some 3
  | _ -> None

(* [cur.pos] is on '(' of "(*".  Comments nest; string, quoted-string
   and char literals inside a comment are honoured the way the real
   OCaml lexer honours them: a "*)" inside any of them does not close
   the comment (think [(* match c with '"' -> ... *)]). *)
let scan_comment cur =
  let start = cur.pos in
  advance cur;
  advance cur;
  let depth = ref 1 in
  while !depth > 0 && cur.pos < String.length cur.src do
    match (peek cur 0, peek cur 1) with
    | Some '(', Some '*' ->
      incr depth;
      advance cur;
      advance cur
    | Some '*', Some ')' ->
      decr depth;
      advance cur;
      advance cur
    | Some '"', _ ->
      ignore (scan_string cur)
    | Some '{', _ when quoted_probe cur ->
      ignore (scan_quoted_string cur)
    | Some '\'', _ -> (
      match try_char_lit cur with
      | Some len ->
        for _ = 1 to len do
          advance cur
        done
      | None -> advance cur)
    | _ ->
      advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let scan_number cur =
  let start = cur.pos in
  let is_float = ref false in
  (match (peek cur 0, peek cur 1) with
  | Some '0', Some ('x' | 'X' | 'o' | 'O' | 'b' | 'B') ->
    advance cur;
    advance cur;
    let continue = ref true in
    while !continue do
      match peek cur 0 with
      | Some c when is_ident_char c -> advance cur
      | _ -> continue := false
    done
  | _ ->
    let digits () =
      let continue = ref true in
      while !continue do
        match peek cur 0 with
        | Some c when is_digit c || c = '_' -> advance cur
        | _ -> continue := false
      done
    in
    digits ();
    (match (peek cur 0, peek cur 1) with
    | Some '.', next ->
      (* "1.5", "1." — but not "1..": leave further dots alone *)
      (match next with
      | Some c when is_digit c || c <> '.' ->
        is_float := true;
        advance cur;
        digits ()
      | None ->
        is_float := true;
        advance cur
      | _ -> ())
    | _ -> ());
    (match peek cur 0 with
    | Some ('e' | 'E') ->
      let k =
        match peek cur 1 with Some ('+' | '-') -> 2 | _ -> 1
      in
      (match peek cur k with
      | Some c when is_digit c ->
        is_float := true;
        advance cur;
        (match peek cur 0 with
        | Some ('+' | '-') -> advance cur
        | _ -> ());
        digits ()
      | _ -> ())
    | _ -> ());
    (* int literal suffixes *)
    if not !is_float then
      match peek cur 0 with
      | Some ('l' | 'L' | 'n') -> advance cur
      | _ -> ());
  let text = String.sub cur.src start (cur.pos - start) in
  (text, if !is_float then Float_lit else Int_lit)

let scan_ident cur =
  let start = cur.pos in
  let word () =
    let continue = ref true in
    while !continue do
      match peek cur 0 with
      | Some c when is_ident_char c -> advance cur
      | _ -> continue := false
    done
  in
  word ();
  (* merge dotted paths: ident ('.' ident)*, stopping before ".(",
     ".[", ".{" and float-ish forms *)
  let continue = ref true in
  while !continue do
    match (peek cur 0, peek cur 1) with
    | Some '.', Some c when is_ident_start c ->
      advance cur;
      word ()
    | _ -> continue := false
  done;
  String.sub cur.src start (cur.pos - start)

let tokenize src =
  let cur = { src; pos = 0; line = 1; bol = 0 } in
  let out = ref [] in
  let emit kind text line col = out := { kind; text; line; col } :: !out in
  let n = String.length src in
  while cur.pos < n do
    let c = src.[cur.pos] in
    let line = cur.line and col = col_of cur cur.pos in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance cur
    else if c = '(' && peek cur 1 = Some '*' then
      emit Comment (scan_comment cur) line col
    else if c = '"' then emit String_lit (scan_string cur) line col
    else if c = '{' then begin
      (* quoted string {id|...|id} ? *)
      if quoted_probe cur then emit String_lit (scan_quoted_string cur) line col
      else begin
        emit Op "{" line col;
        advance cur
      end
    end
    else if c = '\'' then begin
      match try_char_lit cur with
      | Some len ->
        let text = String.sub src cur.pos len in
        for _ = 1 to len do
          advance cur
        done;
        emit Char_lit text line col
      | None ->
        emit Op "'" line col;
        advance cur
    end
    else if is_digit c then begin
      let text, kind = scan_number cur in
      emit kind text line col
    end
    else if is_ident_start c then emit Ident (scan_ident cur) line col
    else if is_op_char c then begin
      let start = cur.pos in
      let continue = ref true in
      while !continue do
        match peek cur 0 with
        | Some ch when is_op_char ch -> advance cur
        | _ -> continue := false
      done;
      emit Op (String.sub src start (cur.pos - start)) line col
    end
    else begin
      emit Op (String.make 1 c) line col;
      advance cur
    end
  done;
  List.rev !out

let path_components text = String.split_on_char '.' text

let has_component token name =
  List.mem name (path_components token.text)

let last_component token =
  match List.rev (path_components token.text) with
  | last :: _ -> last
  | [] -> token.text
