(** Walking, per-file linting, suppression and baseline plumbing.

    The tree walk covers [lib], [bin], [bench], [examples] and [test]
    under a root, skipping [_build], [fixtures] and dot-directories;
    directory entries are visited in sorted order so reports are
    bit-identical across machines. *)

type result = {
  findings : Diag.t list;  (** unsuppressed, after the baseline; sorted *)
  grandfathered : (Diag.t * string) list;
      (** baselined findings with the baseline entry's reason *)
  suppressed : int;  (** silenced by inline [(* lint: disable ... *)] *)
  files : int;  (** .ml files scanned *)
  unused_baseline : Baseline.entry list;
      (** stale entries whose budget was not fully consumed *)
}

(** Repo-relative paths ('/'-separated) of the .ml files under [root]. *)
val scan_files : string -> string list

(** [lint_source ~path contents] lints one compilation unit with the
    given rules (default: the whole catalog), applying inline
    suppressions.  [has_mli] (default [true]) feeds H001; [path] is
    the repo-relative path used for rule scoping.  Returns sorted
    findings and the count of inline-suppressed ones. *)
val lint_source :
  ?rules:Rules.rule list ->
  ?has_mli:bool ->
  path:string ->
  string ->
  Diag.t list * int

(** [lint_file ~root path] — {!lint_source} on a file on disk;
    [has_mli] is derived from the sibling [.mli]'s existence. *)
val lint_file :
  ?rules:Rules.rule list -> root:string -> string -> Diag.t list * int

(** Lint the whole tree under [root] and net off [baseline]. *)
val run :
  ?rules:Rules.rule list -> ?baseline:Baseline.entry list -> string -> result
