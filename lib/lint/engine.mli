(** Walking, per-file linting, interprocedural analysis, suppression
    and baseline plumbing.

    The tree walk covers [lib], [bin], [bench], [examples] and [test]
    under a root, skipping [_build], [fixtures] and dot-directories;
    directory entries are visited in sorted order so reports are
    bit-identical across machines.  Local rules ({!Rules.all}) run per
    .ml file; the interprocedural layer ({!Callgraph} + {!Effects})
    runs once over lib/** with .mli siblings paired in. *)

type result = {
  findings : Diag.t list;  (** unsuppressed, after the baseline; sorted *)
  grandfathered : (Diag.t * string) list;
      (** baselined findings with the baseline entry's reason *)
  suppressed : int;  (** silenced by inline [(* lint: disable ... *)] *)
  files : int;  (** .ml files scanned *)
  unused_baseline : Baseline.entry list;
      (** stale entries whose budget was not fully consumed *)
}

(** Repo-relative paths ('/'-separated) of the .ml and .mli files
    under [root]. *)
val scan_files : string -> string list

(** [(path, contents)] for every scanned file. *)
val project_files : string -> (string * string) list

(** [lint_source ~path contents] lints one compilation unit with the
    given local rules (default: {!Rules.all}), applying inline
    suppressions.  [has_mli] (default [true]) feeds H001; [path] is
    the repo-relative path used for rule scoping.  Returns sorted
    findings and the count of inline-suppressed ones.  Interprocedural
    rules need the whole project: see {!lint_project}. *)
val lint_source :
  ?rules:Rules.rule list ->
  ?has_mli:bool ->
  path:string ->
  string ->
  Diag.t list * int

(** [lint_file ~root path] — {!lint_source} on a file on disk;
    [has_mli] is derived from the sibling [.mli]'s existence. *)
val lint_file :
  ?rules:Rules.rule list -> root:string -> string -> Diag.t list * int

(** [lint_project files] lints an in-memory project: local rules on
    every [.ml] entry, plus the Callgraph/Effects pass over the
    [lib/**] entries ([.mli] contents paired by path).  [only] filters
    by rule id across both layers.  Returns (sorted findings,
    inline-suppressed count, number of .ml files). *)
val lint_project :
  ?only:string list -> (string * string) list -> Diag.t list * int * int

(** Lint the whole tree under [root] and net off [baseline]; [only]
    filters by rule id. *)
val run :
  ?only:string list -> ?baseline:Baseline.entry list -> string -> result
