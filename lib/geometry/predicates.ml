type orientation = Ccw | Cw | Collinear

(* Work counters: every filtered-predicate call, and how often the
   float filter is inconclusive and falls through to the exact
   expansion arithmetic.  The fallback rate is the quantity that
   decides whether the filter bounds below are doing their job. *)
let c_orient2d = Obs.counter "predicates.orient2d"
let c_orient2d_exact = Obs.counter "predicates.orient2d.exact"
let c_incircle = Obs.counter "predicates.incircle"
let c_incircle_exact = Obs.counter "predicates.incircle.exact"

(* Error-free transformations: [two_sum], [two_diff] and [two_prod]
   return the rounded result together with the exact rounding error,
   so determinants can be evaluated exactly (as multi-term float
   "expansions", after Shewchuk) when the fast filtered path is not
   conclusive. *)
let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let err = (a -. (s -. bb)) +. (b -. bb) in
  (s, err)

let two_diff a b =
  let s = a -. b in
  let bb = s -. a in
  let err = (a -. (s -. bb)) -. (b +. bb) in
  (s, err)

let split_factor = 134217729. (* 2^27 + 1 *)

let split a =
  let c = split_factor *. a in
  let hi = c -. (c -. a) in
  (hi, a -. hi)

let two_prod a b =
  let p = a *. b in
  let ahi, alo = split a in
  let bhi, blo = split b in
  let err = alo *. blo -. (p -. (ahi *. bhi) -. (alo *. bhi) -. (ahi *. blo)) in
  (p, err)

(* Expansions: lists of floats, nonoverlapping and sorted by
   increasing magnitude, whose exact sum is the represented value.
   All arithmetic below preserves that invariant (grow-expansion /
   expansion-sum / scale-expansion, following Shewchuk). *)

let expansion_sum e f =
  let add_scalar e b =
    let rec go e q acc =
      match e with
      | [] -> List.rev (q :: acc)
      | h :: t ->
        let s, err = two_sum q h in
        go t s (if err <> 0. then err :: acc else acc)
    in
    go e b []
  in
  List.fold_left add_scalar e f

let expansion_scale e b =
  let rec go e acc =
    match e with
    | [] -> List.rev acc
    | h :: t ->
      let p, err = two_prod h b in
      let acc = if err <> 0. then err :: acc else acc in
      go t (p :: acc)
  in
  (* re-normalize into a valid expansion *)
  expansion_sum [] (go e [])

let expansion_mul p q =
  List.fold_left (fun acc m -> expansion_sum acc (expansion_scale p m)) [] q

let expansion_neg e = List.map (fun x -> -.x) e

let expansion_sub p q = expansion_sum p (expansion_neg q)

let expansion_sign e =
  (* the last nonzero component has the largest magnitude and
     dominates the exact sum *)
  let rec last_nonzero acc = function
    | [] -> acc
    | h :: t -> last_nonzero (if h <> 0. then h else acc) t
  in
  Float.compare (last_nonzero 0. e) 0.

(* exact difference as a (at most two-component) expansion *)
let diff_expansion x y =
  let s, e = two_diff x y in
  if e = 0. then [ s ] else [ e; s ]

let orient2d_det (a : Point.t) (b : Point.t) (c : Point.t) =
  ((b.x -. a.x) *. (c.y -. a.y)) -. ((b.y -. a.y) *. (c.x -. a.x))

let orient2d_exact_sign (a : Point.t) (b : Point.t) (c : Point.t) =
  let bax = diff_expansion b.x a.x in
  let cay = diff_expansion c.y a.y in
  let bay = diff_expansion b.y a.y in
  let cax = diff_expansion c.x a.x in
  expansion_sign (expansion_sub (expansion_mul bax cay) (expansion_mul bay cax))

let orient2d (a : Point.t) (b : Point.t) (c : Point.t) =
  Obs.incr c_orient2d;
  let detleft = (b.x -. a.x) *. (c.y -. a.y) in
  let detright = (b.y -. a.y) *. (c.x -. a.x) in
  let det = detleft -. detright in
  let detsum = Float.abs detleft +. Float.abs detright in
  (* standard error bound for this expression; inconclusive cases fall
     through to the exact evaluation *)
  let bound = 3.3306690738754716e-16 *. detsum in
  let s =
    if det > bound then 1
    else if det < -.bound then -1
    else begin
      Obs.incr c_orient2d_exact;
      orient2d_exact_sign a b c
    end
  in
  if s > 0 then Ccw else if s < 0 then Cw else Collinear

let incircle_det (a : Point.t) (b : Point.t) (c : Point.t) (d : Point.t) =
  let adx = a.x -. d.x and ady = a.y -. d.y in
  let bdx = b.x -. d.x and bdy = b.y -. d.y in
  let cdx = c.x -. d.x and cdy = c.y -. d.y in
  let alift = (adx *. adx) +. (ady *. ady) in
  let blift = (bdx *. bdx) +. (bdy *. bdy) in
  let clift = (cdx *. cdx) +. (cdy *. cdy) in
  (alift *. ((bdx *. cdy) -. (bdy *. cdx)))
  +. (blift *. ((cdx *. ady) -. (cdy *. adx)))
  +. (clift *. ((adx *. bdy) -. (ady *. bdx)))

let incircle_exact_sign (a : Point.t) (b : Point.t) (c : Point.t)
    (d : Point.t) =
  let adx = diff_expansion a.x d.x and ady = diff_expansion a.y d.y in
  let bdx = diff_expansion b.x d.x and bdy = diff_expansion b.y d.y in
  let cdx = diff_expansion c.x d.x and cdy = diff_expansion c.y d.y in
  let lift x y = expansion_sum (expansion_mul x x) (expansion_mul y y) in
  let minor x1 y1 x2 y2 =
    expansion_sub (expansion_mul x1 y2) (expansion_mul y1 x2)
  in
  let t1 = expansion_mul (lift adx ady) (minor bdx bdy cdx cdy) in
  let t2 = expansion_mul (lift bdx bdy) (minor cdx cdy adx ady) in
  let t3 = expansion_mul (lift cdx cdy) (minor adx ady bdx bdy) in
  expansion_sign (expansion_sum (expansion_sum t1 t2) t3)

let incircle_sign a b c d =
  Obs.incr c_incircle;
  let det = incircle_det a b c d in
  let ax, ay = (a.Point.x -. d.Point.x, a.Point.y -. d.Point.y) in
  let bx, by = (b.Point.x -. d.Point.x, b.Point.y -. d.Point.y) in
  let cx, cy = (c.Point.x -. d.Point.x, c.Point.y -. d.Point.y) in
  let alift = (ax *. ax) +. (ay *. ay) in
  let blift = (bx *. bx) +. (by *. by) in
  let clift = (cx *. cx) +. (cy *. cy) in
  let permanent =
    (alift *. (Float.abs (bx *. cy) +. Float.abs (by *. cx)))
    +. (blift *. (Float.abs (cx *. ay) +. Float.abs (cy *. ax)))
    +. (clift *. (Float.abs (ax *. by) +. Float.abs (ay *. bx)))
  in
  (* conservative filter: the rounded translations alone can carry a
     relative error of a few ulps through the degree-4 polynomial, so
     the bound is deliberately loose — borderline cases go exact *)
  let bound = 1e-14 *. permanent in
  if det > bound then 1
  else if det < -.bound then -1
  else begin
    Obs.incr c_incircle_exact;
    incircle_exact_sign a b c d
  end

let incircle a b c d =
  match orient2d a b c with
  | Ccw -> incircle_sign a b c d > 0
  | Cw -> incircle_sign a c b d > 0
  | Collinear -> false

let collinear a b c = orient2d a b c = Collinear

let between a b p =
  collinear a b p
  && Float.min a.Point.x b.Point.x <= p.Point.x
  && p.Point.x <= Float.max a.Point.x b.Point.x
  && Float.min a.Point.y b.Point.y <= p.Point.y
  && p.Point.y <= Float.max a.Point.y b.Point.y
