type t = {
  cell_size : float;
  points : Point.t array;
  cells : (int * int, int list ref) Hashtbl.t;
}

let c_queries = Obs.counter "grid.queries"
let d_results = Obs.dist "grid.query_results"

let cell_of t (p : Point.t) =
  (int_of_float (Float.floor (p.x /. t.cell_size)),
   int_of_float (Float.floor (p.y /. t.cell_size)))

let create ~cell_size points =
  if cell_size <= 0. then invalid_arg "Grid.create: cell_size <= 0";
  let t = { cell_size; points; cells = Hashtbl.create (Array.length points) } in
  Array.iteri
    (fun i p ->
      let key = cell_of t p in
      match Hashtbl.find_opt t.cells key with
      | Some l -> l := i :: !l
      | None -> Hashtbl.add t.cells key (ref [ i ]))
    points;
  t

let fold_cells t (cx, cy) rings f init =
  let acc = ref init in
  for dx = -rings to rings do
    for dy = -rings to rings do
      match Hashtbl.find_opt t.cells (cx + dx, cy + dy) with
      | Some l -> List.iter (fun i -> acc := f !acc i) !l
      | None -> ()
    done
  done;
  !acc

let neighbors_within t i r =
  if r > t.cell_size then invalid_arg "Grid.neighbors_within: r > cell_size";
  Obs.incr c_queries;
  let p = t.points.(i) in
  let r2 = r *. r in
  let res =
    fold_cells t (cell_of t p) 1
      (fun acc j ->
        if j <> i && Point.dist2 p t.points.(j) <= r2 then j :: acc else acc)
      []
  in
  if !Obs.on then Obs.observe d_results (float_of_int (List.length res));
  res

let points_within t p r =
  Obs.incr c_queries;
  let rings = max 1 (int_of_float (Float.ceil (r /. t.cell_size))) in
  let r2 = r *. r in
  let res =
    fold_cells t (cell_of t p) rings
      (fun acc j -> if Point.dist2 p t.points.(j) <= r2 then j :: acc else acc)
      []
  in
  if !Obs.on then Obs.observe d_results (float_of_int (List.length res));
  res

let size t = Array.length t.points
let points t = t.points
