type t = { a : Point.t; b : Point.t }

let make a b = { a; b }
let length s = Point.dist s.a s.b
let midpoint s = Point.midpoint s.a s.b
let contains s p = Predicates.between s.a s.b p

let properly_intersect s1 s2 =
  let o1 = Predicates.orient2d s1.a s1.b s2.a in
  let o2 = Predicates.orient2d s1.a s1.b s2.b in
  let o3 = Predicates.orient2d s2.a s2.b s1.a in
  let o4 = Predicates.orient2d s2.a s2.b s1.b in
  let opposite a b =
    (a = Predicates.Ccw && b = Predicates.Cw)
    || (a = Predicates.Cw && b = Predicates.Ccw)
  in
  opposite o1 o2 && opposite o3 o4

let intersect s1 s2 =
  properly_intersect s1 s2
  || contains s1 s2.a || contains s1 s2.b
  || contains s2 s1.a || contains s2 s1.b

let intersection_point s1 s2 =
  if not (properly_intersect s1 s2) then None
  else
    let r = Point.sub s1.b s1.a in
    let s = Point.sub s2.b s2.a in
    let denom = Point.cross r s in
    if Float.equal denom 0. then None
    else
      let t = Point.cross (Point.sub s2.a s1.a) s /. denom in
      Some (Point.add s1.a (Point.scale t r))

let dist_to_point s p =
  let v = Point.sub s.b s.a in
  let len2 = Point.norm2 v in
  if Float.equal len2 0. then Point.dist s.a p
  else
    let t = Point.dot (Point.sub p s.a) v /. len2 in
    let t = Float.max 0. (Float.min 1. t) in
    Point.dist p (Point.add s.a (Point.scale t v))

let pp fmt s = Format.fprintf fmt "[%a -- %a]" Point.pp s.a Point.pp s.b
