module Csr = Netgraph.Csr

(* Epoch publication is a single [Atomic.set] of an immutable record;
   a reader's [pin] is a single [Atomic.get].  Everything reachable
   from an epoch (the shard snapshot and the derived CSRs) is sealed
   before the set, so readers on other domains see a fully built
   epoch or the previous one, never a partial — the usual
   publish-by-pointer-swap discipline.  Old epochs stay valid as long
   as someone holds them and are reclaimed by the GC when the last
   pin is dropped. *)

type epoch = {
  id : int;
  snap : Core.Shard.snapshot;
  route : Csr.t;
  view : Netgraph.View.t;
  udg_w : Csr.t;
}

type t = { cell : epoch Atomic.t }

let seal ~id (snap : Core.Shard.snapshot) =
  let route = snap.Core.Shard.pldel' in
  let udg = snap.Core.Shard.udg in
  {
    id;
    snap;
    route;
    view = Netgraph.View.of_csr route;
    udg_w =
      (if Csr.has_weights udg then udg
       else Csr.with_weights udg snap.Core.Shard.points);
  }

let create snap =
  let e = seal ~id:0 snap in
  Obs.Recorder.record
    (Obs.Recorder.Epoch_published
       { epoch = 0; nodes = Array.length snap.Core.Shard.points });
  { cell = Atomic.make e }

let pin t = Atomic.get t.cell

let publish t snap =
  let e = seal ~id:((Atomic.get t.cell).id + 1) snap in
  Atomic.set t.cell e;
  Obs.Recorder.record
    (Obs.Recorder.Epoch_published
       { epoch = e.id; nodes = Array.length snap.Core.Shard.points });
  e

let id e = e.id
let points e = e.snap.Core.Shard.points
let node_count e = Array.length e.snap.Core.Shard.points
let view e = e.view
let route e = e.route
let udg_w e = e.udg_w
let snapshot e = e.snap
