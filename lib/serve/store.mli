(** Epoch-pinned snapshot store: the read side of the serving layer.

    A store holds the current {e epoch} — an immutable, sealed
    all-CSR {!Core.Shard.snapshot} plus the structures derived from
    it once per epoch (the [pldel'] routing view the query engine
    forwards on, and the UDG re-sealed {e with} Euclidean weights so
    stretch queries have their shortest-path denominator).  Updates
    build the next snapshot off to the side and {!publish} it with a
    single atomic pointer swap; readers {!pin} the epoch they start
    on and keep using it for as long as they like — queries in flight
    are never torn by a publish, and an old epoch is garbage
    collected when its last reader drops it.

    Concurrency contract: any number of domains may {!pin}
    concurrently with one publishing writer.  Publishing from
    multiple domains concurrently is not supported (epoch ids are
    read-increment-set, not atomic read-modify-write) — the serve
    engine rolls epochs only between query batches, from the caller
    domain. *)

type t

(** One published generation.  All fields are immutable; hold the
    value to keep the whole generation alive. *)
type epoch

(** [create snap] is a store whose epoch 0 serves [snap]. *)
val create : Core.Shard.snapshot -> t

(** Current epoch; a single atomic load. *)
val pin : t -> epoch

(** [publish t snap] seals [snap] as the next epoch (id one above the
    current) and makes it current; returns the new epoch.  Callers
    already pinned keep their old epoch. *)
val publish : t -> Core.Shard.snapshot -> epoch

val id : epoch -> int
val points : epoch -> Geometry.Point.t array
val node_count : epoch -> int

(** The serving structure: [pldel'] (the planar LDel(ICDS) backbone
    with dominatee links, spanning all nodes) as a routing view. *)
val view : epoch -> Netgraph.View.t

val route : epoch -> Netgraph.Csr.t

(** The epoch's UDG with Euclidean arc weights — the shortest-path
    baseline for stretch queries (sealed weightless by the pipeline;
    re-sealed here once per epoch). *)
val udg_w : epoch -> Netgraph.Csr.t

val snapshot : epoch -> Core.Shard.snapshot
