(** The concurrent query engine: runs a {!Workload.t} against a
    {!Store.t} across {!Netgraph.Pool} domains.

    Query index space is divided into batches; each batch {!Store.pin}s
    the current epoch once and fans its queries out over the pool's
    slots.  Batch boundaries depend only on [batch] and the workload
    size — never on the job count — and every per-query result lands
    in its own slot of the result arrays, so the deterministic part of
    the results ([hops], [stretch], [epoch]) is bit-identical for any
    [jobs].

    Steady-state allocation: each pool slot owns one {!Core.Routing.Scratch.t}
    (plus a Dijkstra heap/dist pair for stretch probes), created on
    the slot's first query and reused for the rest of the run.  With
    [latency:false] and a closed-loop workload, a greedy/compass route
    performs no per-query heap allocation and no clock reads — the
    configuration the allocation gauge probe measures. *)

type results = {
  count : int;
  hops : int array;
      (** hop count per query; [-1] when the router dropped it *)
  stretch : float array;
      (** walked length / UDG shortest path for delivered stretch
          probes; [nan] otherwise *)
  epoch : int array;  (** epoch id each query was served under *)
  latency_us : float array;
      (** per-query latency (completion minus arrival when open loop,
          minus service start when closed); [[||]] when [latency:false] *)
  batch_edge : int array;  (** batch [b] covers [[edge.(b), edge.(b+1))] *)
  batch_s : float array;  (** wall-clock seconds per batch *)
  elapsed_s : float;
  minor_words : float;
      (** caller-domain [Gc.minor_words] delta over the run *)
}

(** [run ~store w] serves workload [w].  [jobs] (default 1) sizes a
    temporary pool unless [pool] is given; [batch] (default: all
    queries) sets the epoch-pinning granularity; [on_batch b] runs on
    the caller domain before batch [b] is pinned — the hook where
    churn publishes a new epoch.  Latency sampling ([latency],
    default true) reads the wall clock twice per query; switch it off
    for throughput/allocation measurements.  Registry metrics
    ([serve.queries], [serve.delivered], [serve.batches],
    [serve.hops], [serve.stretch] and the
    [serve.minor_words_per_query] gauge) are recorded on the caller
    after the join, in query order — deterministic for any [jobs]. *)
val run :
  ?jobs:int ->
  ?pool:Netgraph.Pool.t ->
  ?batch:int ->
  ?latency:bool ->
  ?on_batch:(int -> unit) ->
  store:Store.t ->
  Workload.t ->
  results

(** {1 Aggregation} *)

type summary = {
  s_queries : int;
  s_delivered : int;
  s_qps : float;  (** queries / elapsed wall-clock second *)
  s_elapsed_s : float;
  s_hop_p50 : float;
  s_hop_p99 : float;
  s_lat_p50_us : float;
  s_lat_p99_us : float;
  s_lat_p999_us : float;
  s_stretch_p50 : float;
  s_stretch_max : float;
  s_minor_per_query : float;
}

(** P² sketch quantiles over the result arrays ([nan] where no sample
    fed a sketch — e.g. latencies of a [latency:false] run). *)
val summarize : results -> summary

(** Per-batch rounds ([serve.qps], [serve.delivered], [serve.epoch],
    and [serve.p50_us]/[serve.p99_us] when latency was sampled) for
    sparkline rendering. *)
val to_telemetry : Obs.Telemetry.t -> results -> unit

(** {1 The per-query result log}

    One JSON object per line, deterministic fields only (no
    latencies): [q], [op], [src], [dst], [epoch], [hops], and
    [stretch] on stretch probes ([null] when dropped).  Two runs of
    the same seed and flags produce byte-identical logs regardless of
    [--jobs]. *)

type row = {
  r_q : int;
  r_op : string;
  r_src : int;
  r_dst : int;
  r_epoch : int;
  r_hops : int;
  r_stretch : float;  (** [nan] when absent or [null] *)
}

val write_jsonl : Format.formatter -> Workload.t -> results -> unit

(** Parse a log written by {!write_jsonl} back into rows (in file
    order).  @raise Failure on malformed lines. *)
val read_jsonl : string -> row list
