module Rand = Wireless.Rand

(* Kind codes in the flat arrays; flat int/float arrays rather than a
   query record array so the engine's steady state reads plain
   unboxed slots. *)
let k_greedy = 0
let k_gfg = 1
let k_compass = 2
let k_stretch = 3

let op_name = function
  | 0 -> "greedy"
  | 1 -> "gfg"
  | 2 -> "compass"
  | _ -> "stretch"

type mix = { greedy : float; gfg : float; compass : float; stretch : float }

let default_mix = { greedy = 0.45; gfg = 0.35; compass = 0.15; stretch = 0.05 }

type skew = Uniform | Zipf of float | Hotspot of { nodes : int; frac : float }

type t = {
  n : int;
  count : int;
  kind : int array;
  src : int array;
  dst : int array;
  arrival_us : float array;  (* empty = closed loop *)
}

let generate ~seed ~n ~count ?(mix = default_mix) ?(skew = Uniform) ?rate () =
  if n <= 0 then invalid_arg "Workload.generate: n must be positive";
  if count < 0 then invalid_arg "Workload.generate: negative count";
  let { greedy; gfg; compass; stretch } = mix in
  if
    greedy < 0. || gfg < 0. || compass < 0. || stretch < 0.
    || greedy +. gfg +. compass +. stretch <= 0.
  then invalid_arg "Workload.generate: mix weights must be >= 0, sum > 0";
  (match rate with
  | Some r when r <= 0. -> invalid_arg "Workload.generate: rate must be positive"
  | _ -> ());
  let rng = Rand.create seed in
  let sample_node =
    match skew with
    | Uniform -> fun () -> Rand.int rng n
    | Zipf s ->
      (* inverse-CDF sampling over the ids' 1/(i+1)^s weights; the
         cumulative table is built once per workload *)
      let cum = Array.make n 0. in
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) s);
        cum.(i) <- !acc
      done;
      let total = !acc in
      fun () ->
        let u = Rand.float rng total in
        (* first index with cum.(i) > u *)
        let lo = ref 0 and hi = ref (n - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cum.(mid) > u then hi := mid else lo := mid + 1
        done;
        !lo
    | Hotspot { nodes; frac } ->
      if frac < 0. || frac > 1. then
        invalid_arg "Workload.generate: hotspot fraction outside [0, 1]";
      let k = max 1 (min nodes n) in
      let hot = Array.init k (fun _ -> Rand.int rng n) in
      fun () ->
        if Rand.float rng 1. < frac then hot.(Rand.int rng k)
        else Rand.int rng n
  in
  let total = greedy +. gfg +. compass +. stretch in
  let t1 = greedy /. total in
  let t2 = t1 +. (gfg /. total) in
  let t3 = t2 +. (compass /. total) in
  let kind = Array.make (max 1 count) 0 in
  let src = Array.make (max 1 count) 0 in
  let dst = Array.make (max 1 count) 0 in
  for q = 0 to count - 1 do
    let r = Rand.float rng 1. in
    kind.(q) <-
      (if r < t1 then k_greedy
       else if r < t2 then k_gfg
       else if r < t3 then k_compass
       else k_stretch);
    src.(q) <- sample_node ();
    dst.(q) <- sample_node ()
  done;
  let arrival_us =
    match rate with
    | None -> [||]
    | Some r -> Array.init count (fun i -> float_of_int i *. 1e6 /. r)
  in
  { n; count; kind; src; dst; arrival_us }

(* ---------------- CLI spellings ---------------- *)

let mix_to_string m =
  Printf.sprintf "greedy=%g,gfg=%g,compass=%g,stretch=%g" m.greedy m.gfg
    m.compass m.stretch

let mix_of_string s =
  let parts = String.split_on_char ',' s in
  let m = ref { greedy = 0.; gfg = 0.; compass = 0.; stretch = 0. } in
  let bad = ref None in
  List.iter
    (fun part ->
      let part = String.trim part in
      if part <> "" && !bad = None then
        match String.index_opt part '=' with
        | None -> bad := Some (Printf.sprintf "missing '=' in %S" part)
        | Some i -> (
          let key = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          match float_of_string_opt v with
          | None -> bad := Some (Printf.sprintf "bad weight %S" v)
          | Some w when w < 0. ->
            bad := Some (Printf.sprintf "negative weight %S" part)
          | Some w -> (
            match key with
            | "greedy" -> m := { !m with greedy = w }
            | "gfg" -> m := { !m with gfg = w }
            | "compass" -> m := { !m with compass = w }
            | "stretch" -> m := { !m with stretch = w }
            | _ -> bad := Some (Printf.sprintf "unknown scheme %S" key))))
    parts;
  match !bad with
  | Some e -> Error e
  | None ->
    let m = !m in
    if m.greedy +. m.gfg +. m.compass +. m.stretch <= 0. then
      Error "mix weights sum to zero"
    else Ok m

let skew_to_string = function
  | Uniform -> "uniform"
  | Zipf s -> Printf.sprintf "zipf:%g" s
  | Hotspot { nodes; frac } -> Printf.sprintf "hotspot:%g/%d" frac nodes

let skew_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "uniform" ] -> Ok Uniform
  | [ "zipf"; e ] -> (
    match float_of_string_opt e with
    | Some e when e > 0. -> Ok (Zipf e)
    | _ -> Error (Printf.sprintf "bad zipf exponent %S" e))
  | [ "hotspot"; spec ] -> (
    match String.split_on_char '/' spec with
    | [ f; k ] -> (
      match float_of_string_opt f, int_of_string_opt k with
      | Some frac, Some nodes when frac >= 0. && frac <= 1. && nodes > 0 ->
        Ok (Hotspot { nodes; frac })
      | _ -> Error (Printf.sprintf "bad hotspot spec %S (want frac/nodes)" spec))
    | _ -> Error (Printf.sprintf "bad hotspot spec %S (want frac/nodes)" spec))
  | _ -> Error (Printf.sprintf "unknown skew %S" s)
