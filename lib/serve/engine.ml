module Pool = Netgraph.Pool
module Csr = Netgraph.Csr
module R = Core.Routing
module P = Geometry.Point

(* Registry handles (caller-domain only: the worker fan-out runs
   under [Obs.quiesced] and every metric below is recorded after the
   join, folding the index-slotted result arrays in index order, so
   counters and dist counts are bit-identical for any job count). *)
let c_queries = Obs.counter "serve.queries"
let c_delivered = Obs.counter "serve.delivered"
let c_batches = Obs.counter "serve.batches"
let d_hops = Obs.dist "serve.hops"
let d_stretch = Obs.dist "serve.stretch"
let g_minor = Obs.gauge "serve.minor_words_per_query"

(* Mergeable histograms: observed into per-slot instances inside the
   quiesced fan-out, then merged into these registry cells post-join
   in slot index order.  Bucket merge is element-wise addition, so the
   merged contents are independent of which slot served which query —
   the hop histogram is bit-identical for any job count.  The latency
   histogram's *values* are wall-clock, so only its shape is
   meaningful; check gates must exclude it from references. *)
let h_hops = Obs.histogram "serve.hops.hist"
let h_latency = Obs.histogram "serve.latency_us.hist"

type results = {
  count : int;
  hops : int array;
  stretch : float array;
  epoch : int array;
  latency_us : float array;
  batch_edge : int array;
  batch_s : float array;
  elapsed_s : float;
  minor_words : float;
}

(* Per-slot worker state, created on a slot's first batch and reused
   for the rest of the run: this is what makes the steady-state query
   path allocation-free.  [dist]/[heap] serve the stretch queries'
   Dijkstra and are only sized when one arrives. *)
type slot_state = {
  rsc : R.Scratch.t;
  heap : Netgraph.Heap.t;
  mutable dist : float array;
  sh_hops : Obs.Histogram.t;
  sh_lat : Obs.Histogram.t;
}

let run ?(jobs = 1) ?pool ?batch ?(latency = true) ?on_batch ~store
    (w : Workload.t) =
  let count = w.Workload.count in
  let open_loop = Array.length w.Workload.arrival_us > 0 in
  let hops = Array.make (max 1 count) (-1) in
  let stretch = Array.make (max 1 count) nan in
  let epoch = Array.make (max 1 count) (-1) in
  let lat = if latency then Array.make (max 1 count) nan else [||] in
  let batch_size =
    match batch with Some b when b > 0 -> b | _ -> max 1 count
  in
  let nb = if count = 0 then 0 else ((count + batch_size - 1) / batch_size) in
  let batch_edge = Array.init (nb + 1) (fun b -> min count (b * batch_size)) in
  let batch_s = Array.make (max 1 nb) 0. in
  let run_in pool =
    Obs.span "serve.run" @@ fun () ->
    let slots = Pool.jobs pool in
    let states = Array.make slots None in
    let kinds = w.Workload.kind
    and srcs = w.Workload.src
    and dsts = w.Workload.dst
    and arrivals = w.Workload.arrival_us in
    let t_start = Obs.clock_us () in
    let m0 = Gc.minor_words () in
    for b = 0 to nb - 1 do
      (match on_batch with Some f -> f b | None -> ());
      (* the whole batch runs on the epoch pinned here: a publish
         from [on_batch] rolls the epoch only at a batch boundary,
         which keeps per-query results independent of scheduling *)
      let e = Store.pin store in
      let pts = Store.points e in
      let view = Store.view e in
      let n = Store.node_count e in
      let eid = Store.id e in
      let lo = batch_edge.(b) and hi = batch_edge.(b + 1) in
      let serve_one st q =
        let t_ref =
          if open_loop then begin
            let a = t_start +. arrivals.(q) in
            while Obs.clock_us () < a do
              Domain.cpu_relax ()
            done;
            a
          end
          else if latency then Obs.clock_us ()
          else 0.
        in
        let src = srcs.(q) and dst = dsts.(q) in
        let k = kinds.(q) in
        let h =
          if k = Workload.k_greedy then R.greedy_into st.rsc view pts ~src ~dst
          else if k = Workload.k_compass then
            R.compass_into st.rsc view pts ~src ~dst
          else R.gfg_into st.rsc view pts ~src ~dst
        in
        hops.(q) <- h;
        if h >= 0 then Obs.Histogram.observe_int st.sh_hops h;
        epoch.(q) <- eid;
        if k = Workload.k_stretch && h >= 0 then begin
          if src = dst then stretch.(q) <- 1.
          else begin
            if Array.length st.dist < n then st.dist <- Array.make n infinity;
            Csr.dijkstra_into (Store.udg_w e) ~heap:st.heap ~dist:st.dist src;
            let d = st.dist.(dst) in
            if d > 0. && d < infinity then begin
              let p = R.Scratch.path st.rsc
              and len = R.Scratch.path_len st.rsc in
              let acc = ref 0. in
              for i = 0 to len - 2 do
                acc := !acc +. P.dist pts.(p.(i)) pts.(p.(i + 1))
              done;
              stretch.(q) <- !acc /. d
            end
          end
        end;
        if latency then begin
          let l = Obs.clock_us () -. t_ref in
          lat.(q) <- l;
          Obs.Histogram.observe st.sh_lat l
        end
      in
      let t_b = Obs.clock_us () in
      Obs.quiesced (fun () ->
          Pool.parallel_for_slots pool ~n:(hi - lo) (fun ~slot ->
              let st =
                match states.(slot) with
                | Some st -> st
                | None ->
                  let st =
                    {
                      rsc = R.Scratch.create ~n ();
                      heap = Netgraph.Heap.create ();
                      dist = [||];
                      sh_hops = Obs.Histogram.create ();
                      sh_lat = Obs.Histogram.create ();
                    }
                  in
                  states.(slot) <- Some st;
                  st
              in
              fun i -> serve_one st (lo + i)));
      batch_s.(b) <- (Obs.clock_us () -. t_b) /. 1e6;
      Obs.incr c_batches;
      Obs.Recorder.record
        (Obs.Recorder.Batch
           { batch = b; queries = hi - lo; epoch = eid;
             wall_us = batch_s.(b) *. 1e6 })
    done;
    let minor = Gc.minor_words () -. m0 in
    let elapsed = (Obs.clock_us () -. t_start) /. 1e6 in
    Obs.add c_queries count;
    let delivered = ref 0 in
    for q = 0 to count - 1 do
      if hops.(q) >= 0 then begin
        incr delivered;
        Obs.observe d_hops (float_of_int hops.(q))
      end;
      if not (Float.is_nan stretch.(q)) then Obs.observe d_stretch stretch.(q)
    done;
    Obs.add c_delivered !delivered;
    Array.iter
      (function
        | Some st ->
          Obs.merge_hist ~into:h_hops st.sh_hops;
          Obs.merge_hist ~into:h_latency st.sh_lat
        | None -> ())
      states;
    if count > 0 then Obs.set_gauge g_minor (minor /. float_of_int count);
    {
      count;
      hops;
      stretch;
      epoch;
      latency_us = lat;
      batch_edge;
      batch_s;
      elapsed_s = elapsed;
      minor_words = minor;
    }
  in
  match pool with
  | Some p -> run_in p
  | None -> Pool.with_pool ~jobs run_in

(* ---------------- aggregation ---------------- *)

type summary = {
  s_queries : int;
  s_delivered : int;
  s_qps : float;
  s_elapsed_s : float;
  s_hop_p50 : float;
  s_hop_p99 : float;
  s_lat_p50_us : float;
  s_lat_p99_us : float;
  s_lat_p999_us : float;
  s_stretch_p50 : float;
  s_stretch_max : float;
  s_minor_per_query : float;
}

let summarize (r : results) =
  let hop_sk = Obs.Sketch.create ~quantiles:[ 0.5; 0.9; 0.99 ] () in
  let lat_sk = Obs.Sketch.create ~quantiles:[ 0.5; 0.9; 0.99; 0.999 ] () in
  let str_sk = Obs.Sketch.create ~quantiles:[ 0.5; 0.9; 0.99 ] () in
  let delivered = ref 0 in
  for q = 0 to r.count - 1 do
    if r.hops.(q) >= 0 then begin
      incr delivered;
      Obs.Sketch.observe hop_sk (float_of_int r.hops.(q))
    end;
    if not (Float.is_nan r.stretch.(q)) then
      Obs.Sketch.observe str_sk r.stretch.(q);
    if
      Array.length r.latency_us > q && not (Float.is_nan r.latency_us.(q))
    then Obs.Sketch.observe lat_sk r.latency_us.(q)
  done;
  {
    s_queries = r.count;
    s_delivered = !delivered;
    s_qps =
      (if r.elapsed_s > 0. then float_of_int r.count /. r.elapsed_s else nan);
    s_elapsed_s = r.elapsed_s;
    s_hop_p50 = Obs.Sketch.quantile hop_sk 0.5;
    s_hop_p99 = Obs.Sketch.quantile hop_sk 0.99;
    s_lat_p50_us = Obs.Sketch.quantile lat_sk 0.5;
    s_lat_p99_us = Obs.Sketch.quantile lat_sk 0.99;
    s_lat_p999_us = Obs.Sketch.quantile lat_sk 0.999;
    s_stretch_p50 = Obs.Sketch.quantile str_sk 0.5;
    s_stretch_max = Obs.Sketch.max_value str_sk;
    s_minor_per_query =
      (if r.count > 0 then r.minor_words /. float_of_int r.count else 0.);
  }

let to_telemetry tel (r : results) =
  let nb = Array.length r.batch_edge - 1 in
  let with_lat = Array.length r.latency_us > 0 in
  for b = 0 to nb - 1 do
    let lo = r.batch_edge.(b) and hi = r.batch_edge.(b + 1) in
    let m = hi - lo in
    if m > 0 then begin
      Obs.Telemetry.record tel ~round:b "serve.qps"
        (if r.batch_s.(b) > 0. then float_of_int m /. r.batch_s.(b) else nan);
      let del = ref 0 in
      for q = lo to hi - 1 do
        if r.hops.(q) >= 0 then incr del
      done;
      Obs.Telemetry.record tel ~round:b "serve.delivered"
        (float_of_int !del /. float_of_int m);
      Obs.Telemetry.record tel ~round:b "serve.epoch"
        (float_of_int r.epoch.(lo));
      if with_lat then begin
        let sk = Obs.Sketch.create ~quantiles:[ 0.5; 0.99 ] () in
        for q = lo to hi - 1 do
          if not (Float.is_nan r.latency_us.(q)) then
            Obs.Sketch.observe sk r.latency_us.(q)
        done;
        Obs.Telemetry.record tel ~round:b "serve.p50_us"
          (Obs.Sketch.quantile sk 0.5);
        Obs.Telemetry.record tel ~round:b "serve.p99_us"
          (Obs.Sketch.quantile sk 0.99)
      end
    end
  done

(* ---------------- the per-query result log ---------------- *)

type row = {
  r_q : int;
  r_op : string;
  r_src : int;
  r_dst : int;
  r_epoch : int;
  r_hops : int;  (* -1 = dropped *)
  r_stretch : float;  (* nan when absent or null *)
}

let write_jsonl fmt (w : Workload.t) r =
  for q = 0 to r.count - 1 do
    Format.fprintf fmt
      {|{"kind":"serve","q":%d,"op":%S,"src":%d,"dst":%d,"epoch":%d,"hops":%d|}
      q
      (Workload.op_name w.Workload.kind.(q))
      w.Workload.src.(q) w.Workload.dst.(q) r.epoch.(q) r.hops.(q);
    if w.Workload.kind.(q) = Workload.k_stretch then
      if Float.is_nan r.stretch.(q) then Format.fprintf fmt {|,"stretch":null|}
      else Format.fprintf fmt {|,"stretch":%.17g|} r.stretch.(q);
    Format.fprintf fmt "}@\n"
  done

let parse_fail line msg =
  failwith (Printf.sprintf "Serve.Engine.read_jsonl: %s in %S" msg line)

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1)
  in
  go 0

(* raw text of field [key], up to the next ',' or closing '}' *)
let raw_field line key =
  let pat = "\"" ^ key ^ "\":" in
  match index_of line pat with
  | -1 -> parse_fail line (Printf.sprintf "missing field %S" key)
  | i ->
    let start = i + String.length pat in
    let stop = ref start in
    let depth_done = ref false in
    while (not !depth_done) && !stop < String.length line do
      (match line.[!stop] with
      | ',' | '}' -> depth_done := true
      | _ -> incr stop);
      ()
    done;
    String.trim (String.sub line start (!stop - start))

let int_field line key =
  match int_of_string_opt (raw_field line key) with
  | Some v -> v
  | None -> parse_fail line (Printf.sprintf "bad int field %S" key)

let str_field line key =
  let v = raw_field line key in
  let n = String.length v in
  if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
  else parse_fail line (Printf.sprintf "bad string field %S" key)

let read_jsonl text =
  let rows = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then begin
           if str_field line "kind" <> "serve" then
             parse_fail line "unexpected kind";
           let r_op = str_field line "op" in
           let r_stretch =
             if r_op <> "stretch" then nan
             else
               match raw_field line "stretch" with
               | "null" -> nan
               | v -> (
                 match float_of_string_opt v with
                 | Some f -> f
                 | None -> parse_fail line "bad stretch value")
           in
           rows :=
             {
               r_q = int_field line "q";
               r_op;
               r_src = int_field line "src";
               r_dst = int_field line "dst";
               r_epoch = int_field line "epoch";
               r_hops = int_field line "hops";
               r_stretch;
             }
             :: !rows
         end);
  List.rev !rows
