(** Seeded, deterministic query workloads for the serving layer.

    A workload is a flat pre-generated sequence of queries — per
    query a kind (which router, or a sampled-stretch probe), a source
    and a destination — plus, for open-loop runs, an arrival
    timestamp per query.  Generation is a pure function of the seed
    ({!Wireless.Rand}), so the same flags reproduce the same queries
    on any machine and for any [--jobs], which is what makes the
    engine's per-query result log bit-identical across worker
    counts. *)

(** Kind codes stored in {!t.kind}: {!k_greedy}, {!k_gfg},
    {!k_compass} route with the corresponding kernel; {!k_stretch}
    routes with GFG and divides the walked length by the UDG
    shortest-path distance. *)

val k_greedy : int

val k_gfg : int
val k_compass : int
val k_stretch : int

(** Display name of a kind code (["greedy"], ["gfg"], ["compass"],
    ["stretch"]). *)
val op_name : int -> string

(** Relative scheme weights (normalized at generation). *)
type mix = { greedy : float; gfg : float; compass : float; stretch : float }

(** 45% greedy, 35% gfg, 15% compass, 5% stretch. *)
val default_mix : mix

(** Endpoint distribution: uniform over ids; Zipf with the given
    exponent over ids (low ids hot); or a hotspot set of [nodes]
    random nodes receiving [frac] of all endpoint draws. *)
type skew = Uniform | Zipf of float | Hotspot of { nodes : int; frac : float }

type t = {
  n : int;  (** node-id space the endpoints are drawn from *)
  count : int;
  kind : int array;
  src : int array;
  dst : int array;
  arrival_us : float array;
      (** open-loop arrival offsets in microseconds from run start
          ([i / rate]); empty for closed-loop workloads *)
}

(** [generate ~seed ~n ~count ()] draws [count] queries.  [rate]
    (queries per second) switches the workload to open loop.
    Endpoints may coincide ([src = dst] is a legal query: the trivial
    delivery).
    @raise Invalid_argument on non-positive [n] or [rate], negative
    count or weights, or an all-zero mix. *)
val generate :
  seed:int64 ->
  n:int ->
  count:int ->
  ?mix:mix ->
  ?skew:skew ->
  ?rate:float ->
  unit ->
  t

(** {2 Flag spellings}

    The CLI/bench surface: ["greedy=0.4,gfg=0.4,stretch=0.2"] for a
    mix (omitted schemes weigh 0); ["uniform"], ["zipf:0.9"] or
    ["hotspot:0.8/16"] (fraction/nodes) for a skew. *)

val mix_to_string : mix -> string

val mix_of_string : string -> (mix, string) result
val skew_to_string : skew -> string
val skew_of_string : string -> (skew, string) result
