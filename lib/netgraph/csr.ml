(* Offsets + flat neighbor array.  Arc [k] for node [u] lives at
   [offsets.(u) <= k < offsets.(u+1)]; rows are sorted because
   [Graph.iter_neighbors] yields neighbors in increasing id order.
   [ew]/[pw] are empty arrays (not options) so the hot loops index
   them without an indirection; emptiness doubles as the "absent"
   flag. *)

type t = {
  n : int;
  m : int;
  offsets : int array;
  targets : int array;
  ew : float array;  (* Euclidean weight per arc, or [||] *)
  pw : float array;  (* |e|^beta per arc, or [||] *)
}

let weights_of ?points ?beta ~n ~offsets ~targets () =
  match points with
  | None ->
    if beta <> None then invalid_arg "Csr: beta requires points";
    ([||], [||])
  | Some pts ->
    if Array.length pts < n then invalid_arg "Csr: fewer points than nodes";
    let ew = Array.make (Array.length targets) 0. in
    for u = 0 to n - 1 do
      for k = offsets.(u) to offsets.(u + 1) - 1 do
        ew.(k) <- Geometry.Point.dist pts.(u) pts.(targets.(k))
      done
    done;
    let pw =
      match beta with
      | None -> [||]
      | Some b -> Array.map (fun w -> w ** b) ew
    in
    (ew, pw)

let of_graph ?points ?beta g =
  let n = Graph.node_count g in
  let m = Graph.edge_count g in
  (match points, beta with
  | None, Some _ -> invalid_arg "Csr.of_graph: beta requires points"
  | Some pts, _ when Array.length pts < n ->
    invalid_arg "Csr.of_graph: fewer points than nodes"
  | _ -> ());
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Graph.degree g u
  done;
  let targets = Array.make (2 * m) 0 in
  for u = 0 to n - 1 do
    let k = ref offsets.(u) in
    Graph.iter_neighbors g u (fun v ->
        targets.(!k) <- v;
        incr k)
  done;
  let ew, pw = weights_of ?points ?beta ~n ~offsets ~targets () in
  { n; m; offsets; targets; ew; pw }

let of_rows ?points ?beta ~offsets ~targets () =
  let n = Array.length offsets - 1 in
  if n < 0 then invalid_arg "Csr.of_rows: empty offsets";
  if offsets.(0) <> 0 then invalid_arg "Csr.of_rows: offsets.(0) <> 0";
  if offsets.(n) <> Array.length targets then
    invalid_arg "Csr.of_rows: offsets.(n) <> |targets|";
  if Array.length targets land 1 <> 0 then
    invalid_arg "Csr.of_rows: odd arc count";
  for u = 0 to n - 1 do
    if offsets.(u + 1) < offsets.(u) then
      invalid_arg "Csr.of_rows: decreasing offsets";
    for k = offsets.(u) to offsets.(u + 1) - 1 do
      let v = targets.(k) in
      if v < 0 || v >= n || v = u then invalid_arg "Csr.of_rows: bad target";
      if k > offsets.(u) && targets.(k - 1) >= v then
        invalid_arg "Csr.of_rows: row not sorted strictly"
    done
  done;
  let m = Array.length targets / 2 in
  let ew, pw = weights_of ?points ?beta ~n ~offsets ~targets () in
  { n; m; offsets; targets; ew; pw }

let node_count t = t.n
let edge_count t = t.m
let degree t u = t.offsets.(u + 1) - t.offsets.(u)
let has_weights t = Array.length t.ew > 0
let has_power_weights t = Array.length t.pw > 0

let iter_neighbors t u f =
  for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f t.targets.(k)
  done

let fold_neighbors t u f init =
  let acc = ref init in
  for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    acc := f !acc t.targets.(k)
  done;
  !acc

let neighbors t u = List.rev (fold_neighbors t u (fun acc v -> v :: acc) [])

let mem_edge t u v =
  let lo = ref t.offsets.(u) and hi = ref (t.offsets.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.targets.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
      let v = t.targets.(k) in
      if u < v then f u v
    done
  done

let fold_edges t f init =
  let acc = ref init in
  iter_edges t (fun u v -> acc := f !acc u v);
  !acc

let edges t = List.rev (fold_edges t (fun acc u v -> (u, v) :: acc) [])

let to_graph t =
  let g = Graph.create t.n in
  iter_edges t (Graph.add_edge g);
  g

let with_weights ?beta t points =
  let ew, pw =
    weights_of ~points ?beta ~n:t.n ~offsets:t.offsets ~targets:t.targets ()
  in
  { t with ew; pw }

(* ---------------- traversals ---------------- *)

let bfs_into t ~dist ~queue s =
  Array.fill dist 0 t.n max_int;
  dist.(s) <- 0;
  queue.(0) <- s;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) + 1 in
    for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
      let v = t.targets.(k) in
      if dist.(v) = max_int then begin
        dist.(v) <- du;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done

let bfs t s =
  let dist = Array.make t.n max_int in
  if t.n > 0 then bfs_into t ~dist ~queue:(Array.make t.n 0) s;
  dist

(* One SSSP body over a caller-chosen arc-weight array.  Stale heap
   entries are recognized by key: [dist] only ever decreases, so the
   single entry whose key equals the final distance settles the node
   and every other (strictly larger) entry is skipped. *)
let sssp_into t w ~heap ~dist s =
  Array.fill dist 0 t.n infinity;
  dist.(s) <- 0.;
  Heap.clear heap;
  Heap.push heap 0. s;
  while not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_value heap in
    Heap.remove_min heap;
    if d <= dist.(u) then
      for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
        let v = t.targets.(k) in
        let nd = d +. w.(k) in
        if nd < dist.(v) then begin
          dist.(v) <- nd;
          Heap.push heap nd v
        end
      done
  done

let dijkstra_into t ~heap ~dist s =
  if not (has_weights t) then
    invalid_arg "Csr.dijkstra: snapshot built without points";
  sssp_into t t.ew ~heap ~dist s

let power_into t ~heap ~dist s =
  if not (has_power_weights t) then
    invalid_arg "Csr.power_sssp: snapshot built without beta";
  sssp_into t t.pw ~heap ~dist s

let dijkstra t s =
  let dist = Array.make (max 1 t.n) infinity in
  dijkstra_into t ~heap:(Heap.create ()) ~dist s;
  dist

let power_sssp t s =
  let dist = Array.make (max 1 t.n) infinity in
  power_into t ~heap:(Heap.create ()) ~dist s;
  dist

(* ---------------- components ---------------- *)

let component_labels t =
  let label = Array.make t.n (-1) in
  let queue = Array.make (max 1 t.n) 0 in
  for s = 0 to t.n - 1 do
    if label.(s) = -1 then begin
      label.(s) <- s;
      queue.(0) <- s;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
          let v = t.targets.(k) in
          if label.(v) = -1 then begin
            label.(v) <- s;
            queue.(!tail) <- v;
            incr tail
          end
        done
      done
    end
  done;
  label

let is_connected t =
  t.n = 0
  ||
  let label = component_labels t in
  Array.for_all (fun l -> l = 0) label
