(* Kruskal with path-compressing union-find, over the read-only View
   (legacy Graph entry points are adapters at the bottom). *)

(* explicit (weight, u, v) comparator: Float.compare on the weight
   keeps the hot sort monomorphic (no polymorphic-compare boxing) and
   orders any nan deterministically; ties break on (u, v) *)
let cmp_edge (w1, u1, v1) (w2, u2, v2) =
  let c = Float.compare w1 w2 in
  if c <> 0 then c
  else
    let c = Int.compare u1 u2 in
    if c <> 0 then c else Int.compare v1 v2

let find parent x =
  let rec root x = if parent.(x) = x then x else root parent.(x) in
  let r = root x in
  let rec compress x =
    if parent.(x) <> r then begin
      let next = parent.(x) in
      parent.(x) <- r;
      compress next
    end
  in
  compress x;
  r

let minimum_spanning_forest_v g points =
  let n = View.node_count g in
  let m = View.edge_count g in
  (* edges in one flat array sorted in place — no per-edge list cells;
     ties break on (u, v) so the forest is deterministic regardless of
     iteration order *)
  let edges = Array.make m (0., 0, 0) in
  let i = ref 0 in
  View.iter_edges g (fun u v ->
      edges.(!i) <- (Geometry.Point.dist points.(u) points.(v), u, v);
      incr i);
  Array.sort cmp_edge edges;
  let parent = Array.init n (fun i -> i) in
  let forest = Graph.create n in
  Array.iter
    (fun (_, u, v) ->
      let ru = find parent u and rv = find parent v in
      if ru <> rv then begin
        parent.(ru) <- rv;
        Graph.add_edge forest u v
      end)
    edges;
  forest

let minimum_spanning_forest g points =
  minimum_spanning_forest_v (View.of_graph g) points

let forest_weight g points = Metrics.total_edge_length g points

let is_spanning_forest g f =
  Graph.is_subgraph f g
  (* acyclic: edges = nodes - components *)
  && Graph.edge_count f = Graph.node_count f - Components.count f
  (* connects the same components *)
  && Components.component_labels f = Components.component_labels g
