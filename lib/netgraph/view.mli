(** A read-only view over either graph representation.

    Algorithms that only {e read} a topology — traversals, components,
    MST, planarity checks, quality metrics, routing — are written once
    against this signature and accept the legacy mutable {!Graph.t}
    and the read-optimized {!Csr.t} uniformly: wrap with {!of_graph}
    or {!of_csr} and call the same functions.  Construction code
    should produce {!Csr.t} via {!Builder} and hand consumers a
    snapshot view; [Graph]-typed entry points remain as thin adapters
    for tests and examples. *)

type t

val of_graph : Graph.t -> t
val of_csr : Csr.t -> t

val node_count : t -> int

(** Number of undirected edges. *)
val edge_count : t -> int

val degree : t -> int -> int
val has_edge : t -> int -> int -> bool

(** Neighbor iteration, increasing id order (both representations
    keep rows sorted). *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val neighbors : t -> int -> int list

(** Edge iteration with [u < v], lexicographic order. *)
val iter_edges : t -> (int -> int -> unit) -> unit

val fold_edges : t -> ('a -> int -> int -> 'a) -> 'a -> 'a
val edges : t -> (int * int) list

(** [to_csr v] freezes the view for engines that want flat rows.  A
    snapshot view is returned as-is when it already satisfies the
    weight request; otherwise weights are (re)computed from [points]
    (an existing snapshot's weights are trusted — pass the same
    [points] the snapshot was sealed with). *)
val to_csr :
  ?points:Geometry.Point.t array -> ?beta:float -> t -> Csr.t
