(* Append-only edge accumulator sealed into a CSR snapshot.

   The buffer is one flat int array of packed (u, v) records, so a
   million appended edges cost two words each and zero GC pressure.
   Duplicates are allowed (and cheap): sealing counting-sorts the
   arcs into rows, sorts each row, and drops adjacent duplicates, so
   the sealed snapshot depends only on the accumulated edge *set* —
   never on insertion order.  That is what lets per-tile workers
   append independently and still stitch deterministically. *)

type t = {
  n : int;
  mutable buf : int array;  (* packed: buf.(2k) = u, buf.(2k+1) = v *)
  mutable len : int;  (* appended edge records, including duplicates *)
}

let create n =
  if n < 0 then invalid_arg "Builder.create: negative node count";
  { n; buf = Array.make (max 2 (2 * 16)) 0; len = 0 }

let node_count b = b.n
let pending b = b.len

let ensure b extra =
  let need = 2 * (b.len + extra) in
  if need > Array.length b.buf then begin
    let cap = ref (Array.length b.buf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let buf = Array.make !cap 0 in
    Array.blit b.buf 0 buf 0 (2 * b.len);
    b.buf <- buf
  end

let add_edge b u v =
  if u = v then invalid_arg "Builder.add_edge: self-loop";
  if u < 0 || v < 0 || u >= b.n || v >= b.n then
    invalid_arg "Builder.add_edge: node out of range";
  ensure b 1;
  b.buf.(2 * b.len) <- u;
  b.buf.((2 * b.len) + 1) <- v;
  b.len <- b.len + 1

let add_edges b es = List.iter (fun (u, v) -> add_edge b u v) es
let add_graph b g = Graph.iter_edges g (add_edge b)

let append ~into b =
  if into.n <> b.n then invalid_arg "Builder.append: node count mismatch";
  ensure into b.len;
  Array.blit b.buf 0 into.buf (2 * into.len) (2 * b.len);
  into.len <- into.len + b.len

(* in-place sort of targets.(lo .. hi-1); rows are small (node
   degrees), so insertion sort is both simplest and fastest *)
let sort_row targets lo hi =
  for k = lo + 1 to hi - 1 do
    let x = targets.(k) in
    let j = ref (k - 1) in
    while !j >= lo && targets.(!j) > x do
      targets.(!j + 1) <- targets.(!j);
      decr j
    done;
    targets.(!j + 1) <- x
  done

let seal ?pool ?points ?beta b =
  let n = b.n in
  (* arc counts, duplicates included *)
  let deg = Array.make (n + 1) 0 in
  for k = 0 to b.len - 1 do
    deg.(b.buf.(2 * k)) <- deg.(b.buf.(2 * k)) + 1;
    deg.(b.buf.((2 * k) + 1)) <- deg.(b.buf.((2 * k) + 1)) + 1
  done;
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let cursor = Array.copy off in
  let raw = Array.make (2 * b.len) 0 in
  for k = 0 to b.len - 1 do
    let u = b.buf.(2 * k) and v = b.buf.((2 * k) + 1) in
    raw.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    raw.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  (* per-row sorts touch disjoint segments, so they can fan out over
     the pool; each row's result is independent of scheduling *)
  (match pool with
  | Some p when n > 0 ->
    Pool.parallel_for p ~n (fun () u -> sort_row raw off.(u) off.(u + 1))
  | _ ->
    for u = 0 to n - 1 do
      sort_row raw off.(u) off.(u + 1)
    done);
  (* drop adjacent duplicates row by row *)
  let uniq = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let c = ref 0 in
    for k = off.(u) to off.(u + 1) - 1 do
      if k = off.(u) || raw.(k) <> raw.(k - 1) then incr c
    done;
    uniq.(u) <- !c
  done;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + uniq.(u)
  done;
  let targets = Array.make offsets.(n) 0 in
  for u = 0 to n - 1 do
    let w = ref offsets.(u) in
    for k = off.(u) to off.(u + 1) - 1 do
      if k = off.(u) || raw.(k) <> raw.(k - 1) then begin
        targets.(!w) <- raw.(k);
        incr w
      end
    done
  done;
  Csr.of_rows ?points ?beta ~offsets ~targets ()

let seal_graph b =
  let g = Graph.create b.n in
  for k = 0 to b.len - 1 do
    Graph.add_edge g b.buf.(2 * k) b.buf.((2 * k) + 1)
  done;
  g
