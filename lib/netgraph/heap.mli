(** Array-backed binary min-heap over [(float, int)] pairs.

    The one priority queue behind every shortest-path computation in
    the library: {!Traversal.dijkstra}, the weighted SSSP inside
    {!Metrics}, and the CSR engine all share this module instead of
    carrying private copies.  Keys are compared as floats; entries
    with equal keys pop in unspecified order (Dijkstra's distances do
    not depend on tie order).

    The two-array layout (keys and values side by side) avoids one
    tuple allocation per entry; [clear] lets a worker reuse one heap
    across many sources without reallocating. *)

type t

(** [create ()] is an empty heap.  [capacity] pre-sizes the backing
    arrays (they still grow on demand). *)
val create : ?capacity:int -> unit -> t

val length : t -> int
val is_empty : t -> bool

(** Drop all entries, keeping the backing arrays. *)
val clear : t -> unit

(** [push h key value] inserts an entry. *)
val push : t -> float -> int -> unit

(** Smallest key / its value.  Unspecified among equal keys.
    @raise Invalid_argument when empty. *)
val min_key : t -> float

val min_value : t -> int

(** Remove the minimum entry.
    @raise Invalid_argument when empty. *)
val remove_min : t -> unit

(** [pop h] removes and returns the minimum entry, or [None] when
    empty — the allocating convenience over
    [min_key]/[min_value]/[remove_min]. *)
val pop : t -> (float * int) option
