(* All traversals are written once against the read-only View; the
   Graph-typed entry points below are thin adapters, so legacy callers
   and CSR snapshots get bit-identical distances from the same code. *)

let bfs_v g s =
  let n = View.node_count g in
  let dist = Array.make n max_int in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    View.iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
  done;
  dist

let bfs_parents g s =
  let n = View.node_count g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(s) <- true;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    View.iter_neighbors g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          Queue.add v q
        end)
  done;
  (parent, seen)

let reconstruct parent s t =
  let rec go acc v = if v = s then s :: acc else go (v :: acc) parent.(v) in
  go [] t

let bfs_path_v g s t =
  let parent, seen = bfs_parents g s in
  if not seen.(t) then None else Some (reconstruct parent s t)

let dijkstra_with_parents g points s =
  let n = View.node_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  dist.(s) <- 0.;
  let heap = Heap.create () in
  Heap.push heap 0. s;
  while not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_value heap in
    Heap.remove_min heap;
    (* [dist] only decreases, so exactly one entry per node carries
       its final distance; strictly larger entries are stale *)
    if d <= dist.(u) then
      View.iter_neighbors g u (fun v ->
          let w = Geometry.Point.dist points.(u) points.(v) in
          let nd = d +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            parent.(v) <- u;
            Heap.push heap nd v
          end)
  done;
  (dist, parent)

let dijkstra_v g points s = fst (dijkstra_with_parents g points s)

let dijkstra_path_v g points s t =
  let dist, parent = dijkstra_with_parents g points s in
  if dist.(t) = infinity then None else Some (reconstruct parent s t)

let path_length points p =
  let rec go acc = function
    | u :: (v :: _ as rest) ->
      go (acc +. Geometry.Point.dist points.(u) points.(v)) rest
    | [ _ ] | [] -> acc
  in
  go 0. p

let path_hops = function [] -> 0 | p -> List.length p - 1

let is_path_v g = function
  | [] -> false
  | p ->
    let rec go = function
      | u :: (v :: _ as rest) -> View.has_edge g u v && go rest
      | [ _ ] | [] -> true
    in
    go p

let eccentricity_v g s =
  Array.fold_left
    (fun acc d -> if d <> max_int && d > acc then d else acc)
    0 (bfs_v g s)

let diameter_v g =
  let n = View.node_count g in
  let best = ref 0 in
  for s = 0 to n - 1 do
    let e = eccentricity_v g s in
    if e > !best then best := e
  done;
  !best

(* ------------- legacy Graph-typed adapters ------------- *)

let bfs g s = bfs_v (View.of_graph g) s
let bfs_path g s t = bfs_path_v (View.of_graph g) s t
let dijkstra g points s = dijkstra_v (View.of_graph g) points s
let dijkstra_path g points s t = dijkstra_path_v (View.of_graph g) points s t
let is_path g p = is_path_v (View.of_graph g) p
let eccentricity g s = eccentricity_v (View.of_graph g) s
let diameter g = diameter_v (View.of_graph g)
