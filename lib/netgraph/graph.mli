(** Undirected graphs over dense integer node ids [0 .. n-1].

    This is the shared substrate for every topology in the library:
    the unit disk graph, the proximity baselines, the CDS backbone
    variants and the localized Delaunay structures are all values of
    this one type, so quality metrics and routing run uniformly over
    all of them.

    The representation is an adjacency list per node kept sorted and
    duplicate-free, which makes neighbor iteration cheap and edge
    queries logarithmic; the structures involved are sparse (linear
    number of edges), so this is the right trade-off. *)

type t

(** [create n] is the edgeless graph on [n] nodes. *)
val create : int -> t

(** Number of nodes. *)
val node_count : t -> int

(** Number of (undirected) edges. *)
val edge_count : t -> int

(** [add_edge g u v] inserts the undirected edge [{u, v}].  Inserting
    an existing edge is a no-op.  Self-loops are rejected.
    @raise Invalid_argument on [u = v] or out-of-range ids. *)
val add_edge : t -> int -> int -> unit

(** [remove_edge g u v] deletes the edge if present. *)
val remove_edge : t -> int -> int -> unit

(** [has_edge g u v] tests edge membership. *)
val has_edge : t -> int -> int -> bool

(** Neighbors of [u] in increasing id order. *)
val neighbors : t -> int -> int list

(** [degree g u] is the number of neighbors of [u]. *)
val degree : t -> int -> int

(** [iter_neighbors g u f] calls [f v] for each neighbor of [u] in
    increasing id order, without materializing a list — the
    allocation-free form of {!neighbors} that every traversal should
    prefer. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [fold_neighbors g u f init] folds [f] over the neighbors of [u]
    in increasing id order. *)
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** [iter_edges g f] calls [f u v] once per edge with [u < v]. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [fold_edges g f init] folds over edges with [u < v]. *)
val fold_edges : t -> ('a -> int -> int -> 'a) -> 'a -> 'a

(** All edges as [(u, v)] pairs with [u < v], lexicographically. *)
val edges : t -> (int * int) list

(** [of_edges n edges] builds a graph from an edge list. *)
val of_edges : int -> (int * int) list -> t

(** Deep copy. *)
val copy : t -> t

(** [union g1 g2] is the graph with every edge of both (same node
    count required).
    @raise Invalid_argument on mismatched node counts. *)
val union : t -> t -> t

(** [is_subgraph g1 g2] holds when every edge of [g1] is in [g2]. *)
val is_subgraph : t -> t -> bool

(** [induced g keep] is the subgraph of [g] whose edges have both
    endpoints satisfying [keep]; the node set (and ids) are unchanged,
    nodes outside [keep] simply become isolated. *)
val induced : t -> (int -> bool) -> t

(** [equal g1 g2] holds when both graphs have identical node counts
    and edge sets. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {2 Deterministic hash-table iteration}

    [Hashtbl.iter]/[fold] visit bindings in hash order, which varies
    with insertion history; anywhere that order can reach an output or
    a metric must go through these wrappers instead (lint rule D002).
    Bindings are materialized and sorted by key with the explicit
    comparator before visiting; with [Hashtbl.replace]-maintained
    tables the result is a deterministic one-pass iteration. *)

val sorted_tbl_bindings :
  ('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list

val sorted_tbl_iter :
  ('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit

val sorted_tbl_fold :
  ('k -> 'k -> int) ->
  ('k -> 'v -> 'a -> 'a) ->
  ('k, 'v) Hashtbl.t ->
  'a ->
  'a
