(** Geometric planarity of embedded graphs.

    A network topology drawn with straight-line links is planar when no
    two links cross; routing schemes such as GPSR's perimeter mode are
    only correct on such drawings.  These checks are geometric (they
    use the node positions), not abstract graph planarity.

    The [_v] forms accept a read-only {!View.t} ({!Graph.t} or
    {!Csr.t}); the [Graph]-typed functions are thin adapters. *)

val crossing_pairs_v :
  View.t -> Geometry.Point.t array -> ((int * int) * (int * int)) list

val crossing_count_v : View.t -> Geometry.Point.t array -> int
val is_planar_v : View.t -> Geometry.Point.t array -> bool
val euler_bound_ok_v : View.t -> bool

(** [crossing_pairs g points] lists every pair of edges that properly
    cross (edges sharing an endpoint never count).  Each pair is
    reported once as [((u1, v1), (u2, v2))]. *)
val crossing_pairs :
  Graph.t -> Geometry.Point.t array -> ((int * int) * (int * int)) list

(** Number of properly crossing edge pairs. *)
val crossing_count : Graph.t -> Geometry.Point.t array -> int

(** [is_planar g points] holds when no two edges properly cross. *)
val is_planar : Graph.t -> Geometry.Point.t array -> bool

(** [euler_bound_ok g] checks the planar edge bound [m <= 3n - 6]
    (trivially true for [n < 3]) — a cheap necessary condition. *)
val euler_bound_ok : Graph.t -> bool
