(* Long-lived workers wait on a condition variable for the next job
   generation; within a job, indices are claimed with a single
   fetch-and-add, so imbalance between sources (dense vs sparse
   neighborhoods) self-corrects.  The caller participates in the job
   and then waits for stragglers, so a job is fully quiescent when
   [parallel_for] returns. *)

let c_for = Obs.counter "pool.parallel_for"
let c_tasks = Obs.counter "pool.tasks"
let d_jobs = Obs.dist "pool.jobs"
let g_util = Obs.gauge "pool.utilization"

type shared = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable mk_body : slot:int -> int -> unit;
  mutable total : int;
  next : int Atomic.t;
  mutable active : int;  (* workers still inside the current job *)
  mutable stop : bool;
  mutable failure : (int * exn) option;  (* smallest failing index *)
  mutable trace_group : int;  (* Obs.Trace job group, -1 when not tracing *)
}

type t = { shared : shared; domains : unit Domain.t array }

let default_jobs () = Domain.recommended_domain_count ()

let record_failure shared i exn =
  Mutex.lock shared.mutex;
  (match shared.failure with
  | Some (j, _) when j <= i -> ()
  | _ -> shared.failure <- Some (i, exn));
  Mutex.unlock shared.mutex

(* Claim and run indices until the job is drained.  Runs in workers
   and in the caller; must not hold the mutex.  When tracing, each
   claimed index is declared to Obs.Trace so the events it records
   carry (group, task) and merge deterministically. *)
let drain shared body =
  let g = shared.trace_group in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add shared.next 1 in
    if i >= shared.total then continue := false
    else begin
      if g >= 0 then Obs.Trace.set_context ~group:g ~task:i;
      try body i with exn -> record_failure shared i exn
    end
  done;
  if g >= 0 then Obs.Trace.set_context ~group:(-1) ~task:(-1)

let worker shared slot =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock shared.mutex;
    while (not shared.stop) && shared.generation = !last_gen do
      Condition.wait shared.work_ready shared.mutex
    done;
    if shared.stop then begin
      Mutex.unlock shared.mutex;
      running := false
    end
    else begin
      last_gen := shared.generation;
      let mk_body = shared.mk_body in
      Mutex.unlock shared.mutex;
      (match mk_body ~slot with
      | body -> drain shared body
      | exception exn -> record_failure shared 0 exn);
      Mutex.lock shared.mutex;
      shared.active <- shared.active - 1;
      if shared.active = 0 then Condition.signal shared.work_done;
      Mutex.unlock shared.mutex
    end
  done

let create ~jobs () =
  let jobs = max 1 jobs in
  let shared =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      mk_body = (fun ~slot:_ _ -> ());
      total = 0;
      next = Atomic.make 0;
      active = 0;
      stop = false;
      failure = None;
      trace_group = -1;
    }
  in
  let domains =
    Array.init (jobs - 1) (fun k ->
        Domain.spawn (fun () -> worker shared (k + 1)))
  in
  { shared; domains }

let jobs t = Array.length t.domains + 1

let parallel_for_slots t ~n mk_body =
  if n > 0 then begin
    Obs.incr c_for;
    Obs.add c_tasks n;
    if !Obs.on then begin
      Obs.observe d_jobs (float_of_int (jobs t));
      (* worker domains in use as a fraction of what the host offers *)
      Obs.set_gauge g_util
        (float_of_int (jobs t) /. float_of_int (max 1 (default_jobs ())))
    end;
    let shared = t.shared in
    let g = if !Obs.Trace.on then Obs.Trace.new_group () else -1 in
    if g >= 0 then Obs.Trace.job_enter g;
    if Array.length t.domains = 0 then begin
      (* inline fast path: no locking, same claim/record protocol *)
      shared.trace_group <- g;
      shared.total <- n;
      Atomic.set shared.next 0;
      shared.failure <- None;
      drain shared (mk_body ~slot:0)
    end
    else begin
      Mutex.lock shared.mutex;
      shared.trace_group <- g;
      shared.mk_body <- mk_body;
      shared.total <- n;
      Atomic.set shared.next 0;
      shared.failure <- None;
      shared.active <- Array.length t.domains;
      shared.generation <- shared.generation + 1;
      Condition.broadcast shared.work_ready;
      Mutex.unlock shared.mutex;
      (match mk_body ~slot:0 with
      | body -> drain shared body
      | exception exn -> record_failure shared 0 exn);
      Mutex.lock shared.mutex;
      while shared.active > 0 do
        Condition.wait shared.work_done shared.mutex
      done;
      Mutex.unlock shared.mutex
    end;
    if g >= 0 then Obs.Trace.job_leave g;
    match shared.failure with
    | Some (_, exn) -> raise exn
    | None -> ()
  end

let parallel_for t ~n mk_body =
  parallel_for_slots t ~n (fun ~slot:_ -> mk_body ())

let shutdown t =
  let shared = t.shared in
  Mutex.lock shared.mutex;
  shared.stop <- true;
  Condition.broadcast shared.work_ready;
  Mutex.unlock shared.mutex;
  Array.iter Domain.join t.domains

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
