(** Minimum spanning trees / forests under Euclidean edge weights.

    The MST is the connectivity witness of the proximity structures:
    [MST ⊆ RNG ⊆ GG ⊆ Del], so showing a structure contains the MST of
    each component proves it preserves connectivity.  The test-suite
    uses exactly that chain. *)

(** [minimum_spanning_forest g points] is the minimum-weight spanning
    forest of [g] (one tree per connected component) with edge weight
    [dist points.(u) points.(v)], via Kruskal with union-find. *)
val minimum_spanning_forest :
  Graph.t -> Geometry.Point.t array -> Graph.t

(** Same computation over a read-only view (accepts {!Csr.t}
    snapshots); the forest itself is small, so it stays a {!Graph.t}. *)
val minimum_spanning_forest_v :
  View.t -> Geometry.Point.t array -> Graph.t

(** Total Euclidean weight of the forest of [g]. *)
val forest_weight : Graph.t -> Geometry.Point.t array -> float

(** [is_spanning_forest g f] checks that [f] is a subgraph of [g],
    acyclic, and connects exactly the components of [g]. *)
val is_spanning_forest : Graph.t -> Graph.t -> bool
