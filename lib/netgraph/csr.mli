(** Read-optimized graph snapshots in compressed sparse row form.

    {!Graph.t} is the mutable build-time representation; a [Csr.t]
    freezes it into two int arrays — per-node offsets and a flat,
    row-sorted neighbor array — so traversals touch contiguous memory
    and neighbor iteration allocates nothing.  Optionally the snapshot
    precomputes per-arc edge weights (Euclidean length, and the
    [|e|^beta] power cost), so Dijkstra relaxations stop recomputing
    [Point.dist] in the inner loop.

    This is the substrate of the metrics engine: all-pairs stretch
    runs one SSSP per source, and on CSR each pass is a tight loop
    over int/float arrays that is safe to run from multiple domains
    at once (snapshots are immutable after construction). *)

type t

(** [of_graph g] snapshots [g] without weights.  With [points], each
    arc [u->v] additionally carries the Euclidean weight
    [Point.dist points.(u) points.(v)]; with [beta] (requires
    [points]) also the power weight [dist^beta].
    @raise Invalid_argument when [beta] is given without [points] or
    [points] is shorter than the node count. *)
val of_graph : ?points:Geometry.Point.t array -> ?beta:float -> Graph.t -> t

val node_count : t -> int

(** Number of undirected edges (half the stored arc count). *)
val edge_count : t -> int

val degree : t -> int -> int

(** Whether Euclidean / power weights were precomputed. *)
val has_weights : t -> bool

val has_power_weights : t -> bool

(** [iter_neighbors t u f] calls [f v] per neighbor, increasing order. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [fold_neighbors t u f init] folds over neighbors in increasing
    order. *)
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** Neighbor list (allocates; for tests and interop). *)
val neighbors : t -> int -> int list

(** [mem_edge t u v] tests adjacency by binary search in [u]'s row. *)
val mem_edge : t -> int -> int -> bool

(** {1 Traversals}

    The [_into] forms write into caller-owned scratch so a worker can
    run thousands of sources with zero steady-state allocation; the
    plain forms allocate fresh result arrays.  Distances match
    {!Traversal.bfs} / {!Traversal.dijkstra} bit for bit (unreachable:
    [max_int] / [infinity]). *)

(** [bfs_into t ~dist ~queue s]: hop distances from [s] into [dist]
    (length [n], fully overwritten); [queue] is an [n]-slot scratch
    FIFO. *)
val bfs_into : t -> dist:int array -> queue:int array -> int -> unit

val bfs : t -> int -> int array

(** Euclidean SSSP; requires weights.
    @raise Invalid_argument when the snapshot has no weights. *)
val dijkstra_into : t -> heap:Heap.t -> dist:float array -> int -> unit

val dijkstra : t -> int -> float array

(** Power SSSP over the [dist^beta] arc costs; requires power
    weights.
    @raise Invalid_argument when the snapshot has no power weights. *)
val power_into : t -> heap:Heap.t -> dist:float array -> int -> unit

val power_sssp : t -> int -> float array

(** {1 Components} *)

(** Same labelling rule as {!Components.component_labels}: each node
    is labelled with the smallest node id of its component. *)
val component_labels : t -> int array

val is_connected : t -> bool
