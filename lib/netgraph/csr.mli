(** Read-optimized graph snapshots in compressed sparse row form.

    {!Graph.t} is the mutable build-time representation; a [Csr.t]
    freezes it into two int arrays — per-node offsets and a flat,
    row-sorted neighbor array — so traversals touch contiguous memory
    and neighbor iteration allocates nothing.  Optionally the snapshot
    precomputes per-arc edge weights (Euclidean length, and the
    [|e|^beta] power cost), so Dijkstra relaxations stop recomputing
    [Point.dist] in the inner loop.

    This is the substrate of the metrics engine: all-pairs stretch
    runs one SSSP per source, and on CSR each pass is a tight loop
    over int/float arrays that is safe to run from multiple domains
    at once (snapshots are immutable after construction). *)

type t

(** [of_graph g] snapshots [g] without weights.  With [points], each
    arc [u->v] additionally carries the Euclidean weight
    [Point.dist points.(u) points.(v)]; with [beta] (requires
    [points]) also the power weight [dist^beta].
    @raise Invalid_argument when [beta] is given without [points] or
    [points] is shorter than the node count. *)
val of_graph : ?points:Geometry.Point.t array -> ?beta:float -> Graph.t -> t

(** [of_rows ~offsets ~targets ()] adopts pre-built CSR rows without
    going through a {!Graph.t} — the sealing primitive of {!Builder}
    and the sharded construction pipeline.  [offsets] has length
    [n + 1] with [offsets.(0) = 0]; row [u] is
    [targets.(offsets.(u)) .. targets.(offsets.(u+1) - 1)] and must be
    strictly increasing (sorted, duplicate-free) with in-range,
    non-self targets.  Rows must be symmetric ([v] in row [u] iff [u]
    in row [v]); this is the caller's obligation — the cheap structural
    checks here do not verify it.  The arrays are adopted, not copied.
    [points]/[beta] precompute arc weights as in {!of_graph}.
    @raise Invalid_argument on malformed offsets or rows. *)
val of_rows :
  ?points:Geometry.Point.t array ->
  ?beta:float ->
  offsets:int array ->
  targets:int array ->
  unit ->
  t

(** [with_weights ?beta t points] is [t] with freshly computed
    Euclidean (and with [beta], power) arc weights — rows are shared,
    only the weight arrays are rebuilt.  Used to upgrade a weightless
    snapshot for the metrics engine without re-sealing. *)
val with_weights : ?beta:float -> t -> Geometry.Point.t array -> t

val node_count : t -> int

(** Number of undirected edges (half the stored arc count). *)
val edge_count : t -> int

val degree : t -> int -> int

(** Whether Euclidean / power weights were precomputed. *)
val has_weights : t -> bool

val has_power_weights : t -> bool

(** [iter_neighbors t u f] calls [f v] per neighbor, increasing order. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [fold_neighbors t u f init] folds over neighbors in increasing
    order. *)
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** Neighbor list (allocates; for tests and interop). *)
val neighbors : t -> int -> int list

(** [mem_edge t u v] tests adjacency by binary search in [u]'s row. *)
val mem_edge : t -> int -> int -> bool

(** [iter_edges t f] calls [f u v] once per undirected edge with
    [u < v], in lexicographic order. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [fold_edges t f init] folds over edges with [u < v],
    lexicographically. *)
val fold_edges : t -> ('a -> int -> int -> 'a) -> 'a -> 'a

(** All edges as [(u, v)] pairs with [u < v], lexicographically
    (allocates; for tests and interop). *)
val edges : t -> (int * int) list

(** Thaw back into the legacy mutable representation — the adapter for
    consumers that still require a {!Graph.t}.  Linear in the edge
    count; avoid on million-node snapshots. *)
val to_graph : t -> Graph.t

(** {1 Traversals}

    The [_into] forms write into caller-owned scratch so a worker can
    run thousands of sources with zero steady-state allocation; the
    plain forms allocate fresh result arrays.  Distances match
    {!Traversal.bfs} / {!Traversal.dijkstra} bit for bit (unreachable:
    [max_int] / [infinity]). *)

(** [bfs_into t ~dist ~queue s]: hop distances from [s] into [dist]
    (length [n], fully overwritten); [queue] is an [n]-slot scratch
    FIFO. *)
val bfs_into : t -> dist:int array -> queue:int array -> int -> unit

val bfs : t -> int -> int array

(** Euclidean SSSP; requires weights.
    @raise Invalid_argument when the snapshot has no weights. *)
val dijkstra_into : t -> heap:Heap.t -> dist:float array -> int -> unit

val dijkstra : t -> int -> float array

(** Power SSSP over the [dist^beta] arc costs; requires power
    weights.
    @raise Invalid_argument when the snapshot has no power weights. *)
val power_into : t -> heap:Heap.t -> dist:float array -> int -> unit

val power_sssp : t -> int -> float array

(** {1 Components} *)

(** Same labelling rule as {!Components.component_labels}: each node
    is labelled with the smallest node id of its component. *)
val component_labels : t -> int array

val is_connected : t -> bool
