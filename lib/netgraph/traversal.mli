(** Shortest paths by hops (BFS) and by Euclidean length (Dijkstra).

    The spanner definitions in the paper are stated for two metrics:
    the hop metric (number of links) and the length metric (sum of
    Euclidean link lengths).  Both traversals return per-source
    distance arrays so stretch factors can be computed over all pairs.

    Every traversal exists in two forms: a [_v] function over a
    read-only {!View.t} (works on {!Graph.t} and {!Csr.t} alike) and
    the historical [Graph]-typed adapter, which is [_v] composed with
    {!View.of_graph}.  Results are bit-identical. *)

val bfs_v : View.t -> int -> int array
val bfs_path_v : View.t -> int -> int -> int list option
val dijkstra_v : View.t -> Geometry.Point.t array -> int -> float array

val dijkstra_path_v :
  View.t -> Geometry.Point.t array -> int -> int -> int list option

val is_path_v : View.t -> int list -> bool
val eccentricity_v : View.t -> int -> int
val diameter_v : View.t -> int

(** Distance by hops from a single source.  Unreachable nodes get
    [max_int]. *)
val bfs : Graph.t -> int -> int array

(** [bfs_path g s t] is a shortest-hop path from [s] to [t] inclusive,
    or [None] when unreachable. *)
val bfs_path : Graph.t -> int -> int -> int list option

(** Euclidean shortest-path lengths from a single source, with edge
    weight [dist points.(u) points.(v)].  Unreachable nodes get
    [infinity]. *)
val dijkstra : Graph.t -> Geometry.Point.t array -> int -> float array

(** [dijkstra_path g points s t] is a shortest-length path from [s]
    to [t] inclusive, or [None] when unreachable. *)
val dijkstra_path :
  Graph.t -> Geometry.Point.t array -> int -> int -> int list option

(** [path_length points p] is the Euclidean length of the node path. *)
val path_length : Geometry.Point.t array -> int list -> float

(** [path_hops p] is the number of links in the node path. *)
val path_hops : int list -> int

(** [is_path g p] holds when consecutive nodes of [p] are adjacent in
    [g]. *)
val is_path : Graph.t -> int list -> bool

(** [eccentricity g s] is the largest finite hop distance from [s]. *)
val eccentricity : Graph.t -> int -> int

(** Largest hop distance over all pairs (graph must be connected). *)
val diameter : Graph.t -> int
