(* One read-only face over the two graph representations.  The
   dispatch is a single variant match per call; the per-neighbor work
   is the underlying representation's own iteration, so algorithms
   written against a view pay one branch per API call, not per
   neighbor. *)

type t = Adj of Graph.t | Snapshot of Csr.t

let of_graph g = Adj g
let of_csr c = Snapshot c

let node_count = function
  | Adj g -> Graph.node_count g
  | Snapshot c -> Csr.node_count c

let edge_count = function
  | Adj g -> Graph.edge_count g
  | Snapshot c -> Csr.edge_count c

let degree v u =
  match v with Adj g -> Graph.degree g u | Snapshot c -> Csr.degree c u

let has_edge v u w =
  match v with
  | Adj g -> Graph.has_edge g u w
  | Snapshot c -> Csr.mem_edge c u w

let iter_neighbors v u f =
  match v with
  | Adj g -> Graph.iter_neighbors g u f
  | Snapshot c -> Csr.iter_neighbors c u f

let fold_neighbors v u f init =
  match v with
  | Adj g -> Graph.fold_neighbors g u f init
  | Snapshot c -> Csr.fold_neighbors c u f init

let neighbors v u =
  match v with
  | Adj g -> Graph.neighbors g u
  | Snapshot c -> Csr.neighbors c u

let iter_edges v f =
  match v with
  | Adj g -> Graph.iter_edges g f
  | Snapshot c -> Csr.iter_edges c f

let fold_edges v f init =
  match v with
  | Adj g -> Graph.fold_edges g f init
  | Snapshot c -> Csr.fold_edges c f init

let edges = function
  | Adj g -> Graph.edges g
  | Snapshot c -> Csr.edges c

let to_csr ?points ?beta v =
  match v with
  | Adj g -> Csr.of_graph ?points ?beta g
  | Snapshot c -> (
    match points, beta with
    | None, None -> c
    | None, Some _ -> invalid_arg "View.to_csr: beta requires points"
    | Some pts, None -> if Csr.has_weights c then c else Csr.with_weights c pts
    | Some pts, Some b ->
      if Csr.has_weights c && Csr.has_power_weights c then c
      else Csr.with_weights ~beta:b c pts)
