(** A small fixed-size worker pool over OCaml 5 domains.

    Built from the stdlib only ([Domain], [Mutex], [Condition],
    [Atomic]); no external scheduler.  The pool exists to fan
    per-source SSSP passes out across cores: work items are the
    integers [0 .. n-1], workers pull indices from a shared atomic
    counter (dynamic load balancing), and each worker builds its own
    scratch state once per job, so the per-index body allocates
    nothing.

    Determinism: the pool never merges anything — each index writes
    to its own slot of caller-owned result arrays, and the caller
    folds those slots in index order after the join.  Results are
    therefore independent of worker count and scheduling (see
    DESIGN.md §6).

    The caller's domain participates in every job, so [create ~jobs:k]
    spawns [k - 1] worker domains and [jobs = 1] runs entirely inline.
    Worker bodies must not touch the {!Obs} registry (it is not
    domain-safe); the pool records its own obs counters and spans from
    the calling domain only.  {!Obs.Trace} hooks are fine from worker
    bodies — tracing is domain-local, and the pool brackets each job
    with a trace group and declares the (group, task) context around
    every claimed index, so merged traces are deterministic (see
    DESIGN.md §7). *)

type t

(** Number of domains the hardware supports well —
    [Domain.recommended_domain_count ()]; the default for every
    [--jobs] flag. *)
val default_jobs : unit -> int

(** [create ~jobs ()] spawns [jobs - 1] worker domains (clamped below
    at one job).  The pool must be shut down with {!shutdown} to join
    them. *)
val create : jobs:int -> unit -> t

(** Total parallelism including the calling domain. *)
val jobs : t -> int

(** [parallel_for pool ~n mk_body] runs [body i] for every
    [i in 0 .. n-1], where each participating domain obtains its own
    [body] as [mk_body ()] (build per-worker scratch there).  Blocks
    until all indices are done.  If bodies raise, the exception with
    the smallest index is re-raised in the caller after the join. *)
val parallel_for : t -> n:int -> (unit -> int -> unit) -> unit

(** [parallel_for_slots pool ~n mk_body] is {!parallel_for} with a
    stable identity for each participating domain: [mk_body ~slot]
    builds the body for worker slot [slot], where slot [0] is always
    the calling domain and slots [1 .. jobs-1] are the worker domains
    in spawn order.  A given slot is served by the same domain for the
    pool's whole lifetime, so callers running many jobs against one
    pool can keep long-lived per-domain scratch in a caller-owned
    array indexed by slot — each slot's entry is only ever touched by
    its own domain (the serve engine's query scratch works this way;
    the join in the caller publishes the slots' writes). *)
val parallel_for_slots : t -> n:int -> (slot:int -> int -> unit) -> unit

(** Join all workers.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] brackets [create]/[shutdown] around [f]. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
