type degree_stats = { deg_avg : float; deg_max : int; edges : int }

let degree_stats_v g =
  let n = View.node_count g in
  let m = View.edge_count g in
  let deg_max = ref 0 in
  for u = 0 to n - 1 do
    let d = View.degree g u in
    if d > !deg_max then deg_max := d
  done;
  {
    deg_avg = (if n = 0 then 0. else 2. *. float_of_int m /. float_of_int n);
    deg_max = !deg_max;
    edges = m;
  }

let degree_stats g = degree_stats_v (View.of_graph g)

type stretch = {
  len_avg : float;
  len_max : float;
  hop_avg : float;
  hop_max : float;
}

type combined = { c_stretch : stretch; c_power : (float * float) option }

let c_sources = Obs.counter "metrics.sources"
let c_sssp = Obs.counter "metrics.sssp"

(* Dijkstra with arbitrary edge costs — the generic escape hatch for
   costs that are not precomputable per arc.  The engine below never
   calls this; it runs on CSR snapshots with baked-in weights. *)
let weighted_sssp g cost s =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  dist.(s) <- 0.;
  let heap = Heap.create () in
  Heap.push heap 0. s;
  while not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_value heap in
    Heap.remove_min heap;
    if d <= dist.(u) then
      Graph.iter_neighbors g u (fun v ->
          let nd = d +. cost u v in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            Heap.push heap nd v
          end)
  done;
  dist

(* ------------------------------------------------------------------ *)
(* The fused all-pairs stretch engine.                                 *)
(*                                                                     *)
(* One pass per source computes every requested metric (Euclidean      *)
(* length, hop count, power cost) for the base graph once and for      *)
(* each compared substructure, then scans targets a single time to     *)
(* accumulate sum / max / pair-count partials.  Partials live in       *)
(* per-source slots, so worker domains never share mutable state and   *)
(* the final reduction folds sources in index order — results are      *)
(* independent of the worker count.                                    *)
(* ------------------------------------------------------------------ *)

let fused ~one_hop_direct ~jobs ~want_len ~want_hop ~beta ~base points subs =
  let n = View.node_count base in
  List.iter
    (fun (_, sub) ->
      if View.node_count sub <> n then
        invalid_arg "Metrics: node count mismatch")
    subs;
  let want_pow = beta <> None in
  let nsubs = List.length subs in
  let base_csr = View.to_csr ~points ?beta base in
  let subs_csr =
    Array.of_list (List.map (fun (_, g) -> View.to_csr ~points ?beta g) subs)
  in
  (* per-(sub, source) partial accumulators; [||] when the metric is
     off so a stray access fails loudly *)
  let slab want = if want then Array.init nsubs (fun _ -> Array.make n 0.) else [||] in
  let islab want = if want then Array.init nsubs (fun _ -> Array.make n 0) else [||] in
  let len_sum = slab want_len and len_mx = slab want_len and len_cnt = islab want_len in
  let hop_sum = slab want_hop and hop_mx = slab want_hop and hop_cnt = islab want_hop in
  let pow_sum = slab want_pow and pow_mx = slab want_pow and pow_cnt = islab want_pow in
  (* errors.(k).(s) = first target of a base-connected pair that the
     substructure disconnects, or -1 *)
  let errors = Array.init nsubs (fun _ -> Array.make n (-1)) in
  let mk_body () =
    (* per-worker scratch: reused across all sources this worker runs *)
    let heap = Heap.create ~capacity:1024 () in
    let queue = if want_hop then Array.make (max 1 n) 0 else [||] in
    let farr want = if want then Array.make n infinity else [||] in
    let iarr want = if want then Array.make n max_int else [||] in
    let db_len = farr want_len and ds_len = farr want_len in
    let db_hop = iarr want_hop and ds_hop = iarr want_hop in
    let db_pow = farr want_pow and ds_pow = farr want_pow in
    let adj = Bytes.make (max 1 n) '\000' in
    fun s ->
      if !Obs.Trace.on then Obs.Trace.span_begin "metrics.source";
      if want_len then Csr.dijkstra_into base_csr ~heap ~dist:db_len s;
      if want_hop then Csr.bfs_into base_csr ~dist:db_hop ~queue s;
      if want_pow then Csr.power_into base_csr ~heap ~dist:db_pow s;
      if one_hop_direct then
        Csr.iter_neighbors base_csr s (fun v -> Bytes.set adj v '\001');
      for k = 0 to nsubs - 1 do
        let sub = subs_csr.(k) in
        if want_len then Csr.dijkstra_into sub ~heap ~dist:ds_len s;
        if want_hop then Csr.bfs_into sub ~dist:ds_hop ~queue s;
        if want_pow then Csr.power_into sub ~heap ~dist:ds_pow s;
        let lsum = ref 0. and lmx = ref 0. and lcnt = ref 0 in
        let hsum = ref 0. and hmx = ref 0. and hcnt = ref 0 in
        let psum = ref 0. and pmx = ref 0. and pcnt = ref 0 in
        let err = ref (-1) in
        for t = s + 1 to n - 1 do
          if one_hop_direct && Bytes.get adj t = '\001' then begin
            (* the paper's routing sends directly to in-range nodes,
               so adjacent pairs have stretch exactly 1 *)
            if want_len then begin
              lsum := !lsum +. 1.;
              if !lmx < 1. then lmx := 1.;
              incr lcnt
            end;
            if want_hop then begin
              hsum := !hsum +. 1.;
              if !hmx < 1. then hmx := 1.;
              incr hcnt
            end;
            if want_pow then begin
              psum := !psum +. 1.;
              if !pmx < 1. then pmx := 1.;
              incr pcnt
            end
          end
          else begin
            let base_conn =
              if want_len then db_len.(t) <> infinity
              else if want_hop then db_hop.(t) <> max_int
              else db_pow.(t) <> infinity
            in
            if base_conn then begin
              let sub_conn =
                if want_len then ds_len.(t) <> infinity
                else if want_hop then ds_hop.(t) <> max_int
                else ds_pow.(t) <> infinity
              in
              if not sub_conn then begin
                if !err < 0 then err := t
              end
              else begin
                if want_len then begin
                  let b = db_len.(t) in
                  if b > 0. then begin
                    let r = ds_len.(t) /. b in
                    lsum := !lsum +. r;
                    if r > !lmx then lmx := r;
                    incr lcnt
                  end
                end;
                if want_hop then begin
                  let b = float_of_int db_hop.(t) in
                  if b > 0. then begin
                    let r = float_of_int ds_hop.(t) /. b in
                    hsum := !hsum +. r;
                    if r > !hmx then hmx := r;
                    incr hcnt
                  end
                end;
                if want_pow then begin
                  let b = db_pow.(t) in
                  if b > 0. then begin
                    let r = ds_pow.(t) /. b in
                    psum := !psum +. r;
                    if r > !pmx then pmx := r;
                    incr pcnt
                  end
                end
              end
            end
          end
        done;
        if want_len then begin
          len_sum.(k).(s) <- !lsum;
          len_mx.(k).(s) <- !lmx;
          len_cnt.(k).(s) <- !lcnt
        end;
        if want_hop then begin
          hop_sum.(k).(s) <- !hsum;
          hop_mx.(k).(s) <- !hmx;
          hop_cnt.(k).(s) <- !hcnt
        end;
        if want_pow then begin
          pow_sum.(k).(s) <- !psum;
          pow_mx.(k).(s) <- !pmx;
          pow_cnt.(k).(s) <- !pcnt
        end;
        errors.(k).(s) <- !err
      done;
      if one_hop_direct then
        Csr.iter_neighbors base_csr s (fun v -> Bytes.set adj v '\000');
      if !Obs.Trace.on then Obs.Trace.span_end "metrics.source"
  in
  let jobs = max 1 (min jobs (max 1 n)) in
  Obs.span "metrics.stretch" (fun () ->
      Pool.with_pool ~jobs (fun pool -> Pool.parallel_for pool ~n mk_body));
  let passes =
    (if want_len then 1 else 0)
    + (if want_hop then 1 else 0)
    + if want_pow then 1 else 0
  in
  Obs.add c_sources n;
  Obs.add c_sssp (n * (nsubs + 1) * passes);
  (* a substructure that loses connectivity is not a spanner at all:
     raise like the sequential implementation always did, for the
     lexicographically first offending pair of the first bad sub *)
  Array.iter
    (fun per_source ->
      Array.iteri
        (fun s t ->
          if t >= 0 then
            invalid_arg
              (Printf.sprintf
                 "Metrics.stretch_factors: pair (%d, %d) connected in base \
                  but not in subgraph"
                 s t))
        per_source)
    errors;
  (* deterministic reduction: fold per-source partials in source order *)
  let reduce sum mx cnt k =
    let s = ref 0. and m = ref 0. and c = ref 0 in
    for src = 0 to n - 1 do
      s := !s +. sum.(k).(src);
      if mx.(k).(src) > !m then m := mx.(k).(src);
      c := !c + cnt.(k).(src)
    done;
    if !c = 0 then (1., 1.) else (!s /. float_of_int !c, !m)
  in
  List.mapi
    (fun k (name, _) ->
      let len_avg, len_max =
        if want_len then reduce len_sum len_mx len_cnt k else (1., 1.)
      in
      let hop_avg, hop_max =
        if want_hop then reduce hop_sum hop_mx hop_cnt k else (1., 1.)
      in
      let c_power =
        if want_pow then Some (reduce pow_sum pow_mx pow_cnt k) else None
      in
      (name, { c_stretch = { len_avg; len_max; hop_avg; hop_max }; c_power }))
    subs

let combined_stretch_v ?(one_hop_direct = true) ?(jobs = 1) ?beta ~base points
    subs =
  fused ~one_hop_direct ~jobs ~want_len:true ~want_hop:true ~beta ~base points
    subs

let combined_stretch ?one_hop_direct ?jobs ?beta ~base points subs =
  combined_stretch_v ?one_hop_direct ?jobs ?beta ~base:(View.of_graph base)
    points
    (List.map (fun (name, g) -> (name, View.of_graph g)) subs)

let stretch_factors_v ?(one_hop_direct = true) ?(jobs = 1) ~base ~sub points =
  match
    fused ~one_hop_direct ~jobs ~want_len:true ~want_hop:true ~beta:None ~base
      points
      [ ("", sub) ]
  with
  | [ (_, c) ] -> c.c_stretch
  | _ -> assert false (* fused returns one cell per requested sub *)

let stretch_factors ?one_hop_direct ?jobs ~base ~sub points =
  stretch_factors_v ?one_hop_direct ?jobs ~base:(View.of_graph base)
    ~sub:(View.of_graph sub) points

let power_stretch ?(one_hop_direct = true) ?(jobs = 1) ~base ~sub points ~beta
    =
  match
    fused ~one_hop_direct ~jobs ~want_len:false ~want_hop:false
      ~beta:(Some beta) ~base:(View.of_graph base) points
      [ ("", View.of_graph sub) ]
  with
  | [ (_, { c_power = Some p; _ }) ] -> p
  | _ -> assert false (* beta:(Some _) forces a power cell per sub *)

(* Per-round health probe: stretch over a handful of sampled sources
   (each against every reachable target) instead of all pairs, so a
   monitor can afford it every round.  Same CSR + pool machinery and
   the same deterministic source-order reduction as [fused]; raises
   like [fused] when the substructure disconnects a base-connected
   pair. *)
let sampled_stretch ?(one_hop_direct = true) ?(jobs = 1) ~sources ~base ~sub
    points =
  let n = Graph.node_count base in
  if Graph.node_count sub <> n then
    invalid_arg "Metrics.sampled_stretch: node count mismatch";
  let ns = Array.length sources in
  Array.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Metrics.sampled_stretch: source out of range")
    sources;
  let base_csr = Csr.of_graph ~points base in
  let sub_csr = Csr.of_graph ~points sub in
  let len_sum = Array.make ns 0. and len_mx = Array.make ns 0. in
  let len_cnt = Array.make ns 0 in
  let hop_sum = Array.make ns 0. and hop_mx = Array.make ns 0. in
  let hop_cnt = Array.make ns 0 in
  let errors = Array.make ns (-1) in
  let mk_body () =
    let heap = Heap.create ~capacity:1024 () in
    let queue = Array.make (max 1 n) 0 in
    let db_len = Array.make n infinity and ds_len = Array.make n infinity in
    let db_hop = Array.make n max_int and ds_hop = Array.make n max_int in
    let adj = Bytes.make (max 1 n) '\000' in
    fun i ->
      let s = sources.(i) in
      Csr.dijkstra_into base_csr ~heap ~dist:db_len s;
      Csr.bfs_into base_csr ~dist:db_hop ~queue s;
      Csr.dijkstra_into sub_csr ~heap ~dist:ds_len s;
      Csr.bfs_into sub_csr ~dist:ds_hop ~queue s;
      if one_hop_direct then
        Csr.iter_neighbors base_csr s (fun v -> Bytes.set adj v '\001');
      let lsum = ref 0. and lmx = ref 0. and lcnt = ref 0 in
      let hsum = ref 0. and hmx = ref 0. and hcnt = ref 0 in
      let err = ref (-1) in
      for t = 0 to n - 1 do
        if t <> s then
          if one_hop_direct && Bytes.get adj t = '\001' then begin
            lsum := !lsum +. 1.;
            if !lmx < 1. then lmx := 1.;
            incr lcnt;
            hsum := !hsum +. 1.;
            if !hmx < 1. then hmx := 1.;
            incr hcnt
          end
          else if db_len.(t) <> infinity then begin
            if ds_len.(t) = infinity then begin
              if !err < 0 then err := t
            end
            else begin
              if db_len.(t) > 0. then begin
                let r = ds_len.(t) /. db_len.(t) in
                lsum := !lsum +. r;
                if r > !lmx then lmx := r;
                incr lcnt
              end;
              if db_hop.(t) > 0 then begin
                let r = float_of_int ds_hop.(t) /. float_of_int db_hop.(t) in
                hsum := !hsum +. r;
                if r > !hmx then hmx := r;
                incr hcnt
              end
            end
          end
      done;
      if one_hop_direct then
        Csr.iter_neighbors base_csr s (fun v -> Bytes.set adj v '\000');
      len_sum.(i) <- !lsum;
      len_mx.(i) <- !lmx;
      len_cnt.(i) <- !lcnt;
      hop_sum.(i) <- !hsum;
      hop_mx.(i) <- !hmx;
      hop_cnt.(i) <- !hcnt;
      errors.(i) <- !err
  in
  let jobs = max 1 (min jobs (max 1 ns)) in
  Obs.span "metrics.sampled_stretch" (fun () ->
      Pool.with_pool ~jobs (fun pool -> Pool.parallel_for pool ~n:ns mk_body));
  Obs.add c_sources ns;
  Obs.add c_sssp (ns * 2 * 2);
  Array.iteri
    (fun i t ->
      if t >= 0 then
        invalid_arg
          (Printf.sprintf
             "Metrics.sampled_stretch: pair (%d, %d) connected in base but \
              not in subgraph"
             sources.(i) t))
    errors;
  let reduce sum mx cnt =
    let s = ref 0. and m = ref 0. and c = ref 0 in
    for i = 0 to ns - 1 do
      s := !s +. sum.(i);
      if mx.(i) > !m then m := mx.(i);
      c := !c + cnt.(i)
    done;
    if !c = 0 then (1., 1.) else (!s /. float_of_int !c, !m)
  in
  let len_avg, len_max = reduce len_sum len_mx len_cnt in
  let hop_avg, hop_max = reduce hop_sum hop_mx hop_cnt in
  { len_avg; len_max; hop_avg; hop_max }

let pair_stretch ~base ~sub points s t =
  let db = Traversal.dijkstra base points s in
  let ds = Traversal.dijkstra sub points s in
  let hb = Traversal.bfs base s in
  let hs = Traversal.bfs sub s in
  if db.(t) = infinity || ds.(t) = infinity || Float.equal db.(t) 0. then None
  else
    Some
      ( ds.(t) /. db.(t),
        float_of_int hs.(t) /. float_of_int (max 1 hb.(t)) )

let total_edge_length_v g points =
  View.fold_edges g
    (fun acc u v -> acc +. Geometry.Point.dist points.(u) points.(v))
    0.

let total_edge_length g points = total_edge_length_v (View.of_graph g) points
