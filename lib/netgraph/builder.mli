(** Append-only edge accumulation sealed into {!Csr.t} snapshots.

    This is the construction substrate that retires the mutable
    Hashtbl-era {!Graph.t} from hot paths: producers append [(u, v)]
    records into a flat int buffer (two words per edge, duplicates
    welcome, no per-edge allocation) and {!seal} freezes the
    accumulated edge {e set} into a read-optimized CSR snapshot —
    counting-sort into rows, per-row sort, duplicate drop.

    The sealed snapshot depends only on the set of appended edges,
    never on append order, which is what makes per-tile parallel
    accumulation deterministic: workers fill private builders, the
    stitcher {!append}s them in tile order (any order would do), and
    one seal produces the same snapshot the serial build would.

    {!Graph.t} remains available as a thin adapter ({!seal_graph},
    {!Csr.to_graph}) for tests, examples and small instances. *)

type t

(** [create n] is an empty accumulator over nodes [0 .. n-1]. *)
val create : int -> t

val node_count : t -> int

(** Number of appended edge records, duplicates included. *)
val pending : t -> int

(** [add_edge b u v] appends one undirected edge.  Duplicates (in
    either orientation) are fine — sealing drops them.
    @raise Invalid_argument on a self-loop or out-of-range id. *)
val add_edge : t -> int -> int -> unit

val add_edges : t -> (int * int) list -> unit

(** Append every edge of a legacy graph (adapter direction). *)
val add_graph : t -> Graph.t -> unit

(** [append ~into b] bulk-appends [b]'s records into [into] — the
    stitch step merging per-tile accumulators.  [b] is unchanged.
    @raise Invalid_argument on node-count mismatch. *)
val append : into:t -> t -> unit

(** [seal b] freezes the accumulated edge set into a CSR snapshot.
    With [pool], per-row sorting fans out across the pool's domains
    (bit-identical result for any job count).  [points]/[beta]
    precompute arc weights as in {!Csr.of_graph}.  [b] is not
    consumed: further appends and later seals are allowed. *)
val seal :
  ?pool:Pool.t ->
  ?points:Geometry.Point.t array ->
  ?beta:float ->
  t ->
  Csr.t

(** Legacy adapter: the same edge set as a mutable {!Graph.t}. *)
val seal_graph : t -> Graph.t
