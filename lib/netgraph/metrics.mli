(** Topology quality metrics: degree statistics, stretch factors and
    planarity-related counts — the quantities reported in the paper's
    Table I and Figures 8–12.

    All-pairs stretch is the library's dominant cost (one SSSP per
    source per metric per graph), so it runs on a fused engine: graphs
    are frozen into {!Csr} snapshots, every requested metric (length,
    hop, optionally power) is computed in one pass per source, the
    base graph's distances are shared across all compared
    substructures ({!combined_stretch}), and sources fan out across a
    {!Pool} of domains ([?jobs]).  Results are bit-for-bit identical
    for every [jobs] value: each source writes partial sums into its
    own slot and the reduction folds them in source order. *)

type degree_stats = {
  deg_avg : float;  (** average degree over all nodes, [2m/n] *)
  deg_max : int;    (** maximum degree *)
  edges : int;      (** number of undirected edges *)
}

val degree_stats : Graph.t -> degree_stats

(** Same statistics over a read-only {!View.t} — accepts legacy
    graphs and {!Csr.t} snapshots uniformly. *)
val degree_stats_v : View.t -> degree_stats

type stretch = {
  len_avg : float;  (** average length stretch over connected pairs *)
  len_max : float;  (** maximum length stretch *)
  hop_avg : float;  (** average hop stretch over connected pairs *)
  hop_max : float;  (** maximum hop stretch *)
}

(** [stretch_factors ~base ~sub points] measures how much longer paths
    get when restricted to [sub] instead of [base], over every node
    pair connected in [base].

    With [one_hop_direct] (default [true]) pairs adjacent in [base]
    contribute stretch exactly 1: this is the paper's routing model,
    where a node transmits directly to any destination within range
    and only out-of-range destinations go through the structure.
    Pass [~one_hop_direct:false] to measure the raw subgraph stretch
    (used by the spanner-definition tests).

    [jobs] (default 1) fans per-source SSSPs out across that many
    domains; any value returns bit-identical numbers.

    @raise Invalid_argument if some pair connected in [base] is
    disconnected in [sub] — a subgraph that loses connectivity is not
    a spanner at all, and silently skipping such pairs would hide the
    failure. *)
val stretch_factors :
  ?one_hop_direct:bool ->
  ?jobs:int ->
  base:Graph.t -> sub:Graph.t -> Geometry.Point.t array -> stretch

(** [power_stretch ~base ~sub points ~beta] is the power stretch
    factor with path cost [sum |link|^beta] (the paper's power model
    with attenuation exponent [beta], typically in [2, 5]): average
    and maximum over connected pairs. *)
val power_stretch :
  ?one_hop_direct:bool ->
  ?jobs:int ->
  base:Graph.t ->
  sub:Graph.t ->
  Geometry.Point.t array ->
  beta:float ->
  float * float

(** One structure's fused measurement: length/hop stretch, plus the
    power stretch pair when a [beta] was requested. *)
type combined = { c_stretch : stretch; c_power : (float * float) option }

(** [combined_stretch ~base points subs] measures every substructure
    of [subs] against the same [base] in one engine run: the base
    graph's per-source distances are computed once and shared across
    all of them, and each source visits the target scan for length,
    hop and (with [?beta]) power together.  This is what Table I and
    the stretch sweeps call — comparing [k] structures costs
    [(k + 1) * n] SSSP passes per metric instead of [2 k n].

    Results are exactly {!stretch_factors} / {!power_stretch} of each
    pair, for any [jobs].

    @raise Invalid_argument on node-count mismatch or a base-connected
    pair disconnected in some sub (first bad sub in list order). *)
val combined_stretch :
  ?one_hop_direct:bool ->
  ?jobs:int ->
  ?beta:float ->
  base:Graph.t ->
  Geometry.Point.t array ->
  (string * Graph.t) list ->
  (string * combined) list

(** View-typed engine entry points: identical semantics and numbers,
    but base and substructures may be {!Csr.t} snapshots (already
    weight-sealed snapshots skip the freeze entirely). *)
val combined_stretch_v :
  ?one_hop_direct:bool ->
  ?jobs:int ->
  ?beta:float ->
  base:View.t ->
  Geometry.Point.t array ->
  (string * View.t) list ->
  (string * combined) list

val stretch_factors_v :
  ?one_hop_direct:bool ->
  ?jobs:int ->
  base:View.t -> sub:View.t -> Geometry.Point.t array -> stretch

(** [sampled_stretch ~sources ~base ~sub points] is length/hop stretch
    restricted to the given source nodes, each measured against every
    node reachable from it in [base] — the per-round health probe used
    by [Core.Monitor], costing [4 |sources|] SSSPs instead of the
    all-pairs engine's [4 n].  Semantics ([one_hop_direct], the
    deterministic source-order reduction, bit-identical results for
    any [jobs]) match {!stretch_factors}.

    @raise Invalid_argument on node-count mismatch, a source index out
    of range, or a base-connected pair disconnected in [sub]. *)
val sampled_stretch :
  ?one_hop_direct:bool ->
  ?jobs:int ->
  sources:int array ->
  base:Graph.t -> sub:Graph.t -> Geometry.Point.t array -> stretch

(** Stretch of a single pair: [(length ratio, hop ratio)], or [None]
    when the pair is disconnected in either graph. *)
val pair_stretch :
  base:Graph.t ->
  sub:Graph.t ->
  Geometry.Point.t array ->
  int ->
  int ->
  (float * float) option

(** Total Euclidean length of all edges. *)
val total_edge_length : Graph.t -> Geometry.Point.t array -> float

val total_edge_length_v : View.t -> Geometry.Point.t array -> float

(** [weighted_sssp g cost s] is Dijkstra from [s] with arbitrary edge
    costs [cost u v] — the generic fallback for costs that cannot be
    precomputed per CSR arc.  Unreachable nodes get [infinity]. *)
val weighted_sssp : Graph.t -> (int -> int -> float) -> int -> float array
