(* Adjacency sets per node.  [Set.Make (Int)] keeps neighbor lists
   sorted and duplicate-free with logarithmic updates; edge count is
   maintained incrementally. *)

module IntSet = Set.Make (Int)

type t = { adj : IntSet.t array; mutable edges : int }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { adj = Array.make n IntSet.empty; edges = 0 }

let node_count g = Array.length g.adj
let edge_count g = g.edges

let check g u v =
  let n = node_count g in
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: node id out of range (%d, %d)" u v);
  if u = v then invalid_arg "Graph: self-loop"

let add_edge g u v =
  check g u v;
  if not (IntSet.mem v g.adj.(u)) then begin
    g.adj.(u) <- IntSet.add v g.adj.(u);
    g.adj.(v) <- IntSet.add u g.adj.(v);
    g.edges <- g.edges + 1
  end

let remove_edge g u v =
  check g u v;
  if IntSet.mem v g.adj.(u) then begin
    g.adj.(u) <- IntSet.remove v g.adj.(u);
    g.adj.(v) <- IntSet.remove u g.adj.(v);
    g.edges <- g.edges - 1
  end

let has_edge g u v =
  let n = node_count g in
  u >= 0 && u < n && v >= 0 && v < n && u <> v && IntSet.mem v g.adj.(u)

let neighbors g u = IntSet.elements g.adj.(u)
let degree g u = IntSet.cardinal g.adj.(u)
let iter_neighbors g u f = IntSet.iter f g.adj.(u)
let fold_neighbors g u f init = IntSet.fold (fun v acc -> f acc v) g.adj.(u) init

let iter_edges g f =
  Array.iteri
    (fun u s -> IntSet.iter (fun v -> if u < v then f u v) s)
    g.adj

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edges g = List.rev (fold_edges g (fun acc u v -> (u, v) :: acc) [])

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { adj = Array.copy g.adj; edges = g.edges }

let union g1 g2 =
  if node_count g1 <> node_count g2 then
    invalid_arg "Graph.union: node count mismatch";
  let g = copy g1 in
  iter_edges g2 (fun u v -> add_edge g u v);
  g

let is_subgraph g1 g2 =
  node_count g1 = node_count g2
  && fold_edges g1 (fun acc u v -> acc && has_edge g2 u v) true

let induced g keep =
  let h = create (node_count g) in
  iter_edges g (fun u v -> if keep u && keep v then add_edge h u v);
  h

let equal g1 g2 =
  node_count g1 = node_count g2
  && edge_count g1 = edge_count g2
  && is_subgraph g1 g2

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" (node_count g) (edge_count g)

(* Deterministic hash-table iteration (the D002 allowlist lives here):
   materialize the bindings, sort by key with an explicit comparator,
   then visit.  Callers whose iteration order can reach outputs or
   metrics route through these instead of Hashtbl.iter/fold. *)

let sorted_tbl_bindings cmp tbl =
  List.sort
    (fun (k1, _) (k2, _) -> cmp k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let sorted_tbl_iter cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_tbl_bindings cmp tbl)

let sorted_tbl_fold cmp f tbl init =
  List.fold_left
    (fun acc (k, v) -> f k v acc)
    init (sorted_tbl_bindings cmp tbl)
