(* Classic binary heap in two parallel arrays; index 0 is the root,
   children of [i] at [2i+1] and [2i+2]. *)

type t = {
  mutable keys : float array;
  mutable vals : int array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { keys = Array.make capacity 0.; vals = Array.make capacity 0; size = 0 }

let length h = h.size
let is_empty h = h.size = 0
let clear h = h.size <- 0

let grow h =
  let cap = 2 * Array.length h.keys in
  let keys = Array.make cap 0. and vals = Array.make cap 0 in
  Array.blit h.keys 0 keys 0 h.size;
  Array.blit h.vals 0 vals 0 h.size;
  h.keys <- keys;
  h.vals <- vals

let push h key value =
  if h.size = Array.length h.keys then grow h;
  (* sift up by moving the hole, writing the new entry once *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if Float.compare h.keys.(p) key > 0 then begin
      h.keys.(!i) <- h.keys.(p);
      h.vals.(!i) <- h.vals.(p);
      i := p
    end
    else continue := false
  done;
  h.keys.(!i) <- key;
  h.vals.(!i) <- value

let min_key h =
  if h.size = 0 then invalid_arg "Heap.min_key: empty";
  h.keys.(0)

let min_value h =
  if h.size = 0 then invalid_arg "Heap.min_value: empty";
  h.vals.(0)

let remove_min h =
  if h.size = 0 then invalid_arg "Heap.remove_min: empty";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let key = h.keys.(h.size) and value = h.vals.(h.size) in
    (* sift the last entry down from the root *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i and skey = ref key in
      if l < h.size && Float.compare h.keys.(l) !skey < 0 then begin
        smallest := l;
        skey := h.keys.(l)
      end;
      if r < h.size && Float.compare h.keys.(r) !skey < 0 then smallest := r;
      if !smallest <> !i then begin
        h.keys.(!i) <- h.keys.(!smallest);
        h.vals.(!i) <- h.vals.(!smallest);
        i := !smallest
      end
      else continue := false
    done;
    h.keys.(!i) <- key;
    h.vals.(!i) <- value
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = (h.keys.(0), h.vals.(0)) in
    remove_min h;
    Some top
  end
