(* Written against the read-only View; Graph-typed adapters at the
   bottom keep existing callers compiling. *)

let segments g (points : Geometry.Point.t array) =
  List.map
    (fun (u, v) -> ((u, v), Geometry.Segment.make points.(u) points.(v)))
    (View.edges g)

let share_endpoint (u1, v1) (u2, v2) =
  u1 = u2 || u1 = v2 || v1 = u2 || v1 = v2

let crossing_pairs_v g points =
  let segs = Array.of_list (segments g points) in
  let m = Array.length segs in
  let acc = ref [] in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let e1, s1 = segs.(i) and e2, s2 = segs.(j) in
      if
        (not (share_endpoint e1 e2))
        && Geometry.Segment.properly_intersect s1 s2
      then acc := (e1, e2) :: !acc
    done
  done;
  List.rev !acc

let crossing_count_v g points = List.length (crossing_pairs_v g points)

let is_planar_v g points =
  (* Same pairwise scan as [crossing_pairs] but with early exit. *)
  let segs = Array.of_list (segments g points) in
  let m = Array.length segs in
  let rec outer i =
    if i >= m then true
    else
      let rec inner j =
        if j >= m then true
        else
          let e1, s1 = segs.(i) and e2, s2 = segs.(j) in
          if
            (not (share_endpoint e1 e2))
            && Geometry.Segment.properly_intersect s1 s2
          then false
          else inner (j + 1)
      in
      if inner (i + 1) then outer (i + 1) else false
  in
  outer 0

let euler_bound_ok_v g =
  let n = View.node_count g in
  n < 3 || View.edge_count g <= (3 * n) - 6

(* ------------- legacy Graph-typed adapters ------------- *)

let crossing_pairs g points = crossing_pairs_v (View.of_graph g) points
let crossing_count g points = crossing_count_v (View.of_graph g) points
let is_planar g points = is_planar_v (View.of_graph g) points
let euler_bound_ok g = euler_bound_ok_v (View.of_graph g)
