(** Connectivity queries.

    The [_v] forms work over a read-only {!View.t} ({!Graph.t} or
    {!Csr.t}); the [Graph]-typed functions are thin adapters kept for
    existing callers. *)

val component_labels_v : View.t -> int array
val count_v : View.t -> int
val is_connected_v : View.t -> bool
val connected_within_v : View.t -> int list -> bool
val reachable_v : View.t -> int -> int list

(** [component_labels g] assigns each node the smallest node id of its
    connected component. *)
val component_labels : Graph.t -> int array

(** Number of connected components (isolated nodes count). *)
val count : Graph.t -> int

(** [is_connected g] holds when the whole graph is one component.
    The empty graph is connected. *)
val is_connected : Graph.t -> bool

(** [connected_within g nodes] holds when the nodes in the set induce
    a connected subgraph of [g] (using only edges between members).
    An empty or singleton set is connected. *)
val connected_within : Graph.t -> int list -> bool

(** [reachable g s] is the list of nodes reachable from [s]
    (including [s]). *)
val reachable : Graph.t -> int -> int list
