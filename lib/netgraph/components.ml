(* Labelling runs on a CSR snapshot: freezing the adjacency costs one
   O(n + m) pass and the flood fills then touch flat int arrays
   instead of allocating neighbor lists; a view that already is a
   snapshot skips the freeze.  The labelling rule is unchanged: each
   node gets the smallest node id of its component. *)

let component_labels_v g = Csr.component_labels (View.to_csr g)

let count_v g =
  let label = component_labels_v g in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace distinct l ()) label;
  Hashtbl.length distinct

let is_connected_v g = View.node_count g = 0 || count_v g = 1

let connected_within_v g nodes =
  match nodes with
  | [] | [ _ ] -> true
  | s :: _ ->
    let members = Hashtbl.create (List.length nodes) in
    List.iter (fun u -> Hashtbl.replace members u ()) nodes;
    let seen = Hashtbl.create (List.length nodes) in
    let q = Queue.create () in
    Hashtbl.replace seen s ();
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      View.iter_neighbors g u (fun v ->
          if Hashtbl.mem members v && not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            Queue.add v q
          end)
    done;
    List.for_all (Hashtbl.mem seen) nodes

let reachable_v g s =
  let dist = Traversal.bfs_v g s in
  let acc = ref [] in
  Array.iteri (fun i d -> if d <> max_int then acc := i :: !acc) dist;
  List.rev !acc

(* ------------- legacy Graph-typed adapters ------------- *)

let component_labels g = component_labels_v (View.of_graph g)
let count g = count_v (View.of_graph g)
let is_connected g = is_connected_v (View.of_graph g)
let connected_within g nodes = connected_within_v (View.of_graph g) nodes
let reachable g s = reachable_v (View.of_graph g) s
