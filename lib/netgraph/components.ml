(* Labelling runs on a CSR snapshot: freezing the adjacency costs one
   O(n + m) pass and the flood fills then touch flat int arrays
   instead of allocating neighbor lists.  The labelling rule is
   unchanged: each node gets the smallest node id of its component. *)

let component_labels g = Csr.component_labels (Csr.of_graph g)

let count g =
  let label = component_labels g in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace distinct l ()) label;
  Hashtbl.length distinct

let is_connected g = Graph.node_count g = 0 || count g = 1

let connected_within g nodes =
  match nodes with
  | [] | [ _ ] -> true
  | s :: _ ->
    let members = Hashtbl.create (List.length nodes) in
    List.iter (fun u -> Hashtbl.replace members u ()) nodes;
    let seen = Hashtbl.create (List.length nodes) in
    let q = Queue.create () in
    Hashtbl.replace seen s ();
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Graph.iter_neighbors g u (fun v ->
          if Hashtbl.mem members v && not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            Queue.add v q
          end)
    done;
    List.for_all (Hashtbl.mem seen) nodes

let reachable g s =
  let dist = Traversal.bfs g s in
  let acc = ref [] in
  Array.iteri (fun i d -> if d <> max_int then acc := i :: !acc) dist;
  List.rev !acc
