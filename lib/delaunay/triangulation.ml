module P = Geometry.Point
module Pred = Geometry.Predicates

(* Triangles are ordered triples (i, j, k), counterclockwise.  The
   ghost vertex is [ghost = -1] and is kept in the last slot, so a
   ghost triangle (a, b, ghost) records the directed hull edge a -> b
   with the mesh exterior to its left. *)
let ghost = -1

(* Bowyer–Watson work counters: one insertion per point after the
   seed; the cavity size (bad triangles excavated per insertion) is
   this kernel's analogue of edge flips. *)
let c_triangulations = Obs.counter "delaunay.triangulations"
let c_insertions = Obs.counter "delaunay.insertions"
let c_cavity = Obs.counter "delaunay.cavity_triangles"
let d_cavity = Obs.dist "delaunay.cavity_size"

(* explicit int comparators: triangle ids never go through polymorphic
   compare, so the hot set operations stay monomorphic *)
let cmp_int_pair (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2

let cmp_tri (a1, b1, c1) (a2, b2, c2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c
  else
    let c = Int.compare b1 b2 in
    if c <> 0 then c else Int.compare c1 c2

module TriSet = Set.Make (struct
  type t = int * int * int

  let compare = cmp_tri
end)

type t = {
  pts : P.t array;
  mutable alive : TriSet.t;
  collinear_path : (int * int) list option;
      (* Delaunay graph of degenerate (collinear / tiny) inputs *)
}

let point_count t = Array.length t.pts
let points t = t.pts

(* Rotate a ccw triple so the smallest vertex (ghost sorts first as
   -1) comes first; cyclic order — hence orientation — is preserved.
   Ghosts end up as (ghost, a, b); we instead keep ghost LAST, so
   normalize ghosts to (a, b, ghost) with a < b not required (the
   directed edge a -> b is meaningful). *)
let normalize (a, b, c) =
  if c = ghost then (a, b, c)
  else if a = ghost then (b, c, a)
  else if b = ghost then (c, a, b)
  else if a <= b && a <= c then (a, b, c)
  else if b <= a && b <= c then (b, c, a)
  else (c, a, b)

let in_circumdisk pts (a, b, c) p =
  if c = ghost then
    (* Ghost triangle over directed hull edge a -> b (exterior left):
       the limiting circumdisk is the open exterior half-plane plus
       the open segment a b. *)
    match Pred.orient2d pts.(a) pts.(b) p with
    | Pred.Ccw -> true
    | Pred.Cw -> false
    | Pred.Collinear ->
      (* strictly between a and b on the line *)
      P.dot (P.sub pts.(a) p) (P.sub pts.(b) p) < 0.
  else Pred.incircle pts.(a) pts.(b) pts.(c) p

let directed_edges (a, b, c) = [ (a, b); (b, c); (c, a) ]

let insert t pi =
  Obs.incr c_insertions;
  let p = t.pts.(pi) in
  let bad =
    TriSet.filter (fun tri -> in_circumdisk t.pts tri p) t.alive
  in
  if !Obs.on then begin
    let cavity = TriSet.cardinal bad in
    Obs.add c_cavity cavity;
    Obs.observe d_cavity (float_of_int cavity)
  end;
  if TriSet.is_empty bad then
    (* Every point is covered by a real or ghost triangle; an empty
       cavity means a duplicate point sat exactly on a vertex. *)
    invalid_arg "Triangulation: duplicate point"
  else begin
    let edge_set = Hashtbl.create 32 in
    TriSet.iter
      (fun tri ->
        List.iter (fun e -> Hashtbl.replace edge_set e ()) (directed_edges tri))
      bad;
    let boundary =
      (* lint: disable D002 boundary edges are re-inserted into TriSet, a set — order cannot leak *)
      Hashtbl.fold
        (fun (u, v) () acc ->
          if Hashtbl.mem edge_set (v, u) then acc else (u, v) :: acc)
        edge_set []
    in
    t.alive <- TriSet.diff t.alive bad;
    List.iter
      (fun (u, v) -> t.alive <- TriSet.add (normalize (u, v, pi)) t.alive)
      boundary
  end

let find_seed pts =
  let n = Array.length pts in
  (* first pair of distinct points, then first point non-collinear
     with them *)
  let rec third i j k =
    if k >= n then None
    else if
      k <> i && k <> j && Pred.orient2d pts.(i) pts.(j) pts.(k) <> Pred.Collinear
    then Some (i, j, k)
    else third i j (k + 1)
  in
  if n < 2 then None else third 0 1 0

let check_distinct pts =
  let seen = Hashtbl.create (Array.length pts) in
  Array.iter
    (fun (p : P.t) ->
      if Hashtbl.mem seen (p.x, p.y) then
        invalid_arg "Triangulation: duplicate point";
      Hashtbl.add seen (p.x, p.y) ())
    pts

let collinear_fallback pts =
  (* All points on one line (or fewer than 3 points): the Delaunay
     graph is the path along the line in sorted order. *)
  let idx = Array.init (Array.length pts) (fun i -> i) in
  let order = Array.copy idx in
  Array.sort (fun i j -> P.compare pts.(i) pts.(j)) order;
  let rec path i acc =
    if i + 1 >= Array.length order then List.rev acc
    else
      let u = order.(i) and v = order.(i + 1) in
      path (i + 1) ((min u v, max u v) :: acc)
  in
  path 0 []

let triangulate pts =
  Obs.incr c_triangulations;
  check_distinct pts;
  match find_seed pts with
  | None ->
    { pts; alive = TriSet.empty; collinear_path = Some (collinear_fallback pts) }
  | Some (i, j, k) ->
    let i, j, k =
      match Pred.orient2d pts.(i) pts.(j) pts.(k) with
      | Pred.Ccw -> (i, j, k)
      | Pred.Cw -> (i, k, j)
      | Pred.Collinear -> assert false (* find_seed skips collinear triples *)
    in
    let t = { pts; alive = TriSet.empty; collinear_path = None } in
    t.alive <- TriSet.add (normalize (i, j, k)) t.alive;
    (* ghost triangles on the three hull edges, exterior to the left
       of their directed edge: reverse each ccw edge of the seed *)
    List.iter
      (fun (u, v) -> t.alive <- TriSet.add (v, u, ghost) t.alive)
      (directed_edges (i, j, k));
    for p = 0 to Array.length pts - 1 do
      if p <> i && p <> j && p <> k then insert t p
    done;
    t

let real_triangles t =
  TriSet.fold
    (fun (a, b, c) acc -> if c = ghost then acc else (a, b, c) :: acc)
    t.alive []

let triangles t = List.sort cmp_tri (real_triangles t)

let has_triangle t i j k =
  let candidates =
    [ (i, j, k); (j, k, i); (k, i, j); (i, k, j); (k, j, i); (j, i, k) ]
  in
  List.exists (fun tri -> TriSet.mem (normalize tri) t.alive) candidates

let edges t =
  match t.collinear_path with
  | Some path -> path
  | None ->
    let set = Hashtbl.create 64 in
    List.iter
      (fun (a, b, c) ->
        List.iter
          (fun (u, v) -> Hashtbl.replace set (min u v, max u v) ())
          [ (a, b); (b, c); (c, a) ])
      (real_triangles t);
    List.sort cmp_int_pair (Hashtbl.fold (fun e () acc -> e :: acc) set [])

let hull t =
  match t.collinear_path with
  | Some path ->
    (* ordered point sequence along the line *)
    (match path with
    | [] -> if Array.length t.pts = 1 then [ 0 ] else []
    | (u, _) :: _ ->
      u :: List.map (fun (_, v) -> v) path)
  | None ->
    (* ghost triangles (a, b, ghost) carry directed hull edges a -> b
       with exterior left, i.e. the hull in clockwise orientation;
       chain them and reverse for ccw. *)
    let next = Hashtbl.create 16 in
    TriSet.iter
      (fun (a, b, c) -> if c = ghost then Hashtbl.replace next a b)
      t.alive;
    (* lint: disable D002 commutative min-fold: any visit order yields the same minimum *)
    (match Hashtbl.fold (fun a _ acc -> min a acc) next max_int with
    | start when start = max_int -> []
    | start ->
      let rec chain v acc =
        let w = Hashtbl.find next v in
        if w = start then List.rev (v :: acc) else chain w (v :: acc)
      in
      List.rev (chain start []))

let triangles_of_vertex t v =
  List.filter (fun (a, b, c) -> a = v || b = v || c = v) (triangles t)

let is_delaunay pts tris =
  List.for_all
    (fun (a, b, c) ->
      Pred.orient2d pts.(a) pts.(b) pts.(c) <> Pred.Collinear
      && Array.for_all
           (fun p ->
             P.equal p pts.(a) || P.equal p pts.(b) || P.equal p pts.(c)
             || not (Pred.incircle pts.(a) pts.(b) pts.(c) p))
           pts)
    tris
