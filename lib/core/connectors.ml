module G = Netgraph.Graph

type result = {
  connector : bool array;
  cds_edges : (int * int) list;
  two_hop_pairs : (int * int) list;
  three_hop_pairs : (int * int) list;
}

let candidates_two_hop g roles u v =
  List.filter
    (fun w -> roles.(w) = Mis.Dominatee && G.has_edge g w v)
    (G.neighbors g u)

let elect g candidates =
  List.filter
    (fun w ->
      List.for_all (fun x -> x = w || (not (G.has_edge g w x)) || w < x)
        candidates)
    candidates

let ordered_edge u v = (min u v, max u v)

let cmp_pair (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2

(* Algorithm 1, centralized rendition.  Every election uses only
   information a candidate hears from its 1-hop neighbors, so the
   distributed protocol in [Protocol] reproduces the result
   message-for-message; the integration tests assert equality. *)
let find g roles =
  let n = G.node_count g in
  let connector = Array.make n false in
  let edges = Hashtbl.create 64 in
  let add_edge u v = Hashtbl.replace edges (ordered_edge u v) () in
  let dominatees =
    List.filter
      (fun w -> roles.(w) = Mis.Dominatee)
      (List.init n (fun i -> i))
  in

  (* Steps 3-4: a dominatee with two dominators u, v is a candidate
     connector for the unordered pair (u, v); local minima win. *)
  let two_hop_cands = Hashtbl.create 64 in
  List.iter
    (fun w ->
      let doms = Mis.dominators_of g roles w in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if u < v then
                Hashtbl.replace two_hop_cands (u, v)
                  (w
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt two_hop_cands (u, v))))
            doms)
        doms)
    dominatees;
  let two_hop_pairs = ref [] in
  G.sorted_tbl_iter cmp_pair
    (fun (u, v) cands ->
      two_hop_pairs := (u, v) :: !two_hop_pairs;
      List.iter
        (fun w ->
          connector.(w) <- true;
          add_edge u w;
          add_edge w v)
        (elect g cands))
    two_hop_cands;

  (* Steps 5-6: for each ordered dominator pair (u, v) with u a
     dominator of w and v two hops from w, dominatee w is a candidate
     FIRST connector on a path u - w - x - v.  Pairs already joined by
     a common dominatee are skipped: dominator u hears every
     IamDominatee its dominatees broadcast, so it knows its two-hop
     dominator set exactly and announces it in one extra message
     (TwoHopDoms), which every dominatee of u hears. *)
  let first_cands = Hashtbl.create 64 in
  List.iter
    (fun w ->
      let doms = Mis.dominators_of g roles w in
      let two_hop = Mis.two_hop_dominators g roles w in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if v <> u && candidates_two_hop g roles u v = [] then
                Hashtbl.replace first_cands (u, v)
                  (w
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt first_cands (u, v))))
            two_hop)
        doms)
    dominatees;
  (* Steps 7-8: dominatees of v that hear an elected first connector
     are candidate SECOND connectors for (u, v); local minima win. *)
  let three_hop_pairs = ref [] in
  G.sorted_tbl_iter cmp_pair
    (fun (u, v) cands ->
      three_hop_pairs := (u, v) :: !three_hop_pairs;
      let first = elect g cands in
      let second_cands =
        List.sort_uniq compare
          (List.concat_map
             (fun w ->
               List.filter
                 (fun x ->
                   roles.(x) = Mis.Dominatee && G.has_edge g x v && x <> w)
                 (G.neighbors g w))
             first)
      in
      let second = elect g second_cands in
      List.iter
        (fun w ->
          connector.(w) <- true;
          add_edge u w)
        first;
      List.iter
        (fun x ->
          connector.(x) <- true;
          add_edge x v;
          List.iter (fun w -> if G.has_edge g w x then add_edge w x) first)
        second)
    first_cands;

  {
    connector;
    cds_edges =
      List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edges []);
    two_hop_pairs = List.sort compare !two_hop_pairs;
    three_hop_pairs = List.sort compare !three_hop_pairs;
  }

(* CSR-native, tile-sharded rendition of [find].  Every pair election
   is 2-local around the smaller (two-hop stage) or first (three-hop
   stage) dominator of the pair, so each pair is processed exactly
   once, entirely from its owner's tile: candidate sets, gates and
   local-minima elections read only the immutable snapshot and the
   role array.  Per-tile accumulators are merged by a final sort
   ([sort_uniq] for edges, matching [find]'s Hashtbl dedup), and
   [connector] writes race only on the identical value [true], so the
   result equals [find]'s field for field, for any tiling and any job
   count. *)
let find_csr ?pool ?owners csr roles =
  let module C = Netgraph.Csr in
  let n = C.node_count csr in
  let owners =
    match owners with
    | Some o -> o
    | None -> [| Array.init n (fun u -> u) |]
  in
  let ntiles = Array.length owners in
  let connector = Array.make n false in
  let edges_by_tile = Array.make ntiles [] in
  let two_by_tile = Array.make ntiles [] in
  let three_by_tile = Array.make ntiles [] in
  let elect_csr cands =
    List.filter
      (fun w ->
        List.for_all
          (fun x -> x = w || (not (C.mem_edge csr w x)) || w < x)
          cands)
      cands
  in
  (* dominatees adjacent to both u and v — [candidates_two_hop] read
     off u's CSR row *)
  let common_dominatees u v =
    let acc = ref [] in
    C.iter_neighbors csr u (fun w ->
        if roles.(w) = Mis.Dominatee && C.mem_edge csr w v then
          acc := w :: !acc);
    List.rev !acc
  in
  let mk_body () =
    (* stamped scratch, one set per worker domain: [mark] dedups pair
       partners per u, [seen] dedups two-hop dominators per w, and
       [gmark]/[gval] cache the no-common-dominatee gate per u *)
    let mark = Array.make n (-1) and mstamp = ref 0 in
    let seen = Array.make n (-1) and sstamp = ref 0 in
    let gmark = Array.make n (-1) and gstamp = ref 0 in
    let gval = Array.make n false in
    let edges = ref [] and two = ref [] and three = ref [] in
    (* steps 3-4 for the unordered pair (u, v), owned by u = min *)
    let two_hop_at u =
      incr mstamp;
      let s = !mstamp in
      C.iter_neighbors csr u (fun w ->
          if roles.(w) = Mis.Dominatee then
            C.iter_neighbors csr w (fun v ->
                if v > u && roles.(v) = Mis.Dominator && mark.(v) <> s then begin
                  mark.(v) <- s;
                  two := (u, v) :: !two;
                  List.iter
                    (fun w' ->
                      connector.(w') <- true;
                      edges := ordered_edge u w' :: ordered_edge w' v :: !edges)
                    (elect_csr (common_dominatees u v))
                end))
    in
    (* steps 5-8 for ordered pairs (u, v), owned by u *)
    let three_hop_at u =
      incr gstamp;
      let gs = !gstamp in
      let gate_open v =
        (* true when u and v share no dominatee (pair not two-hop) *)
        if gmark.(v) <> gs then begin
          gmark.(v) <- gs;
          gval.(v) <- common_dominatees u v = []
        end;
        gval.(v)
      in
      let cands_by_v = Hashtbl.create 16 in
      C.iter_neighbors csr u (fun w ->
          if roles.(w) = Mis.Dominatee then begin
            incr sstamp;
            let s = !sstamp in
            C.iter_neighbors csr w (fun y ->
                C.iter_neighbors csr y (fun v ->
                    if
                      v <> w && v <> u
                      && roles.(v) = Mis.Dominator
                      && seen.(v) <> s
                      && not (C.mem_edge csr w v)
                    then begin
                      seen.(v) <- s;
                      if gate_open v then
                        Hashtbl.replace cands_by_v v
                          (w
                          :: Option.value ~default:[]
                               (Hashtbl.find_opt cands_by_v v))
                    end))
          end);
      G.sorted_tbl_iter Int.compare
        (fun v cands ->
          three := (u, v) :: !three;
          let first = elect_csr cands in
          let second_cands =
            List.sort_uniq compare
              (List.concat_map
                 (fun w ->
                   C.fold_neighbors csr w
                     (fun acc x ->
                       if
                         roles.(x) = Mis.Dominatee
                         && C.mem_edge csr x v
                         && x <> w
                       then x :: acc
                       else acc)
                     [])
                 first)
          in
          let second = elect_csr second_cands in
          List.iter
            (fun w ->
              connector.(w) <- true;
              edges := ordered_edge u w :: !edges)
            first;
          List.iter
            (fun x ->
              connector.(x) <- true;
              edges := ordered_edge x v :: !edges;
              List.iter
                (fun w ->
                  if C.mem_edge csr w x then edges := ordered_edge w x :: !edges)
                first)
            second)
        cands_by_v
    in
    fun t ->
      edges := [];
      two := [];
      three := [];
      Array.iter
        (fun u ->
          if roles.(u) = Mis.Dominator then begin
            two_hop_at u;
            three_hop_at u
          end)
        owners.(t);
      edges_by_tile.(t) <- !edges;
      two_by_tile.(t) <- !two;
      three_by_tile.(t) <- !three
  in
  Obs.quiesced (fun () ->
      match pool with
      | Some p -> Netgraph.Pool.parallel_for p ~n:ntiles mk_body
      | None ->
        let body = mk_body () in
        for t = 0 to ntiles - 1 do
          body t
        done);
  let concat_of by_tile = List.concat (Array.to_list by_tile) in
  {
    connector;
    cds_edges = List.sort_uniq compare (concat_of edges_by_tile);
    two_hop_pairs = List.sort compare (concat_of two_by_tile);
    three_hop_pairs = List.sort compare (concat_of three_by_tile);
  }

(* The Alzoubi-style dominator-initiated selection: one deterministic
   path per ordered dominator pair.  Dominator u "decides the next
   node on the path" — realized here as smallest-ID choices, which is
   what a node collecting its neighbors' announcements would pick. *)
let find_alzoubi g roles =
  let n = G.node_count g in
  let connector = Array.make n false in
  let edges = Hashtbl.create 64 in
  let add_edge u v = Hashtbl.replace edges (ordered_edge u v) () in
  let doms = Mis.dominators roles in
  let two_hop_pairs = ref [] in
  let three_hop_pairs = ref [] in
  let pick = function [] -> None | x :: _ -> Some x (* lists are sorted *) in
  List.iter
    (fun u ->
      (* two-hop targets: dominators with a common dominatee *)
      let two_hop = Mis.two_hop_dominators g roles u in
      List.iter
        (fun v ->
          match pick (candidates_two_hop g roles u v) with
          | Some w ->
            if u < v then two_hop_pairs := (u, v) :: !two_hop_pairs;
            connector.(w) <- true;
            add_edge u w;
            add_edge w v
          | None ->
            (* v is reachable in three hops only (no common dominatee):
               u picks its smallest dominatee w that can see a
               dominatee of v; w picks the smallest bridge x *)
            let w =
              pick
                (List.filter
                   (fun w ->
                     roles.(w) = Mis.Dominatee
                     && List.exists
                          (fun x ->
                            roles.(x) = Mis.Dominatee && G.has_edge g x v)
                          (G.neighbors g w))
                   (G.neighbors g u))
            in
            (match w with
            | None -> ()
            | Some w ->
              let x =
                pick
                  (List.filter
                     (fun x ->
                       roles.(x) = Mis.Dominatee && G.has_edge g x v)
                     (G.neighbors g w))
              in
              (match x with
              | None -> ()
              | Some x ->
                three_hop_pairs := (u, v) :: !three_hop_pairs;
                connector.(w) <- true;
                connector.(x) <- true;
                add_edge u w;
                add_edge w x;
                add_edge x v)))
        two_hop;
      (* three-hop-only targets do not appear in two_hop_dominators of
         u itself; enumerate them through u's dominatees' views *)
      let targets = Hashtbl.create 8 in
      List.iter
        (fun w ->
          if roles.(w) = Mis.Dominatee then
            List.iter
              (fun v ->
                if v <> u && not (List.mem v two_hop) then
                  Hashtbl.replace targets v ())
              (Mis.two_hop_dominators g roles w))
        (G.neighbors g u);
      G.sorted_tbl_iter Int.compare
        (fun v () ->
          let w =
            pick
              (List.filter
                 (fun w ->
                   roles.(w) = Mis.Dominatee
                   && List.exists
                        (fun x ->
                          roles.(x) = Mis.Dominatee && x <> w
                          && G.has_edge g x v)
                        (G.neighbors g w))
                 (G.neighbors g u))
          in
          match w with
          | None -> ()
          | Some w ->
            let x =
              pick
                (List.filter
                   (fun x ->
                     roles.(x) = Mis.Dominatee && x <> w && G.has_edge g x v)
                   (G.neighbors g w))
            in
            (match x with
            | None -> ()
            | Some x ->
              three_hop_pairs := (u, v) :: !three_hop_pairs;
              connector.(w) <- true;
              connector.(x) <- true;
              add_edge u w;
              add_edge w x;
              add_edge x v))
        targets)
    doms;
  {
    connector;
    cds_edges =
      List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edges []);
    two_hop_pairs = List.sort compare !two_hop_pairs;
    three_hop_pairs = List.sort_uniq compare !three_hop_pairs;
  }

(* Baker-Ephremides linked clusters: highest-ID gateways. *)
let find_baker g roles =
  let n = G.node_count g in
  let connector = Array.make n false in
  let edges = Hashtbl.create 64 in
  let add_edge u v = Hashtbl.replace edges (ordered_edge u v) () in
  let doms = Mis.dominators roles in
  let two_hop_pairs = ref [] in
  let three_hop_pairs = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u < v then begin
            match candidates_two_hop g roles u v with
            | _ :: _ as common ->
              (* overlapping clusters: highest ID in the intersection *)
              let w = List.fold_left max (List.hd common) common in
              two_hop_pairs := (u, v) :: !two_hop_pairs;
              connector.(w) <- true;
              add_edge u w;
              add_edge w v
            | [] ->
              (* nonoverlapping: adjacent dominatee pairs, one from
                 each cluster *)
              let pairs = ref [] in
              List.iter
                (fun x ->
                  if roles.(x) = Mis.Dominatee then
                    List.iter
                      (fun y ->
                        if
                          roles.(y) = Mis.Dominatee && y <> x
                          && G.has_edge g y v
                        then pairs := (x, y) :: !pairs)
                      (G.neighbors g x))
                (G.neighbors g u);
              (match !pairs with
              | [] -> ()
              | first :: rest ->
                let better (x1, y1) (x2, y2) =
                  let s1 = x1 + y1 and s2 = x2 + y2 in
                  s1 > s2 || (s1 = s2 && max x1 y1 > max x2 y2)
                in
                let x, y =
                  List.fold_left
                    (fun best p -> if better p best then p else best)
                    first rest
                in
                three_hop_pairs := (u, v) :: !three_hop_pairs;
                connector.(x) <- true;
                connector.(y) <- true;
                add_edge u x;
                add_edge x y;
                add_edge y v)
          end)
        (List.filter (fun v -> v <> u) doms))
    doms;
  (* restrict to pairs within three hops: the nonoverlapping search
     above already only finds dominatee pairs, i.e. 3-hop paths *)
  {
    connector;
    cds_edges =
      List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edges []);
    two_hop_pairs = List.sort compare !two_hop_pairs;
    three_hop_pairs = List.sort_uniq compare !three_hop_pairs;
  }
