(** Algorithm 1 — Finding Connectors.

    Dominators form an independent set, so they cannot talk to each
    other directly; connectivity is restored by electing dominatee
    nodes as connectors (gateways) between every pair of dominators
    that are two or three hops apart in the UDG.

    The election rule is the paper's local-minimum rule: every
    candidate announces itself with a [TryConnector] message, and a
    candidate becomes a connector exactly when its ID is the smallest
    among the candidates it can hear (itself included).  Two elected
    connectors for the same pair are therefore never adjacent — this
    bounds the number of connectors per pair (at most 2 for two-hop
    pairs, Lemma: the lune argument) without requiring a global
    leader. *)

type result = {
  connector : bool array;  (** elected as connector for some pair *)
  cds_edges : (int * int) list;
      (** backbone edges: dominator–connector and connector–connector
          links installed by the elections, each with [u < v] *)
  two_hop_pairs : (int * int) list;
      (** dominator pairs at hop distance 2 that were processed *)
  three_hop_pairs : (int * int) list;
      (** ordered dominator pairs processed by the 3-hop stage *)
}

(** [find g roles] runs the two elections of Algorithm 1 on the unit
    disk graph [g] with the clustering [roles]. *)
val find : Netgraph.Graph.t -> Mis.role array -> result

(** [find_csr csr roles] runs the same elections directly on a CSR
    snapshot and returns a result equal to [find] field for field.
    Every pair election is 2-local around one dominator of the pair
    (the smaller one for two-hop pairs, the first one for ordered
    three-hop pairs), so with [owners] (tile partition of the node
    ids) each pair is processed exactly once from its owner's tile;
    with [pool] the tiles fan out across its domains.  Per-tile
    results are merged by deterministic sorts, so the output is
    bit-identical for any tiling and any job count. *)
val find_csr :
  ?pool:Netgraph.Pool.t ->
  ?owners:int array array ->
  Netgraph.Csr.t ->
  Mis.role array ->
  result

(** [candidates_two_hop g roles u v] is the candidate connector set
    for the dominator pair [(u, v)] at hop distance two: their common
    dominatee neighbors. *)
val candidates_two_hop :
  Netgraph.Graph.t -> Mis.role array -> int -> int -> int list

(** [elect g candidates] applies the local-minimum rule: a candidate
    wins when no other candidate it can hear in [g] has a smaller id.
    The winner set is never empty when [candidates] is non-empty, and
    no two winners are adjacent. *)
val elect : Netgraph.Graph.t -> int list -> int list

(** [find_alzoubi g roles] is the alternative connector selection the
    paper reviews (Alzoubi et al.): instead of candidate elections,
    the initiating dominator deterministically picks ONE path per
    ordered pair — the smallest-ID common dominatee for two-hop
    pairs, and the smallest-ID dominatee with a two-hop view of the
    target (which then picks the smallest-ID bridge) for three-hop
    pairs.  Produces a leaner CDS (at most one path per direction)
    with the same connectivity guarantee; the benchmark harness
    compares both. *)
val find_alzoubi : Netgraph.Graph.t -> Mis.role array -> result

(** [find_baker g roles] is the Baker–Ephremides linked-cluster
    gateway selection the paper reviews: for {e overlapping} clusters
    (heads sharing a dominatee) the {b highest}-ID node in the
    intersection becomes the gateway; for {e nonoverlapping} adjacent
    clusters the dominatee pair with the largest ID sum (ties to the
    pair containing the highest node) becomes a gateway pair.  Same
    3-hop coverage, so the CDS is still connected; the paper's
    criticism — possibly duplicated gateway pairs under partial
    information — does not arise here because the selection is
    computed from complete candidate sets. *)
val find_baker : Netgraph.Graph.t -> Mis.role array -> result
