module G = Netgraph.Graph
module M = Netgraph.Metrics
module E = Distsim.Engine

type config = {
  side : float;
  seed : int64;
  instances : int;
  max_attempts : int;
  jobs : int;
}

let default =
  {
    side = 200.;
    seed = 2002L;
    instances = 10;
    max_attempts = 2000;
    jobs = Netgraph.Pool.default_jobs ();
  }

let quick = { default with instances = 3 }

(* every sweep builds its instances through here so cfg.jobs reaches
   the metrics engine via the Backbone record *)
let backbone_of cfg pts ~radius =
  Backbone.run
    { Backbone.Config.default with Backbone.Config.radius; jobs = cfg.jobs }
    pts

type series = { label : string; points : (float * float) list }

let deployments cfg ~n ~radius =
  (* one RNG per sweep point, split deterministically from the master
     seed so parameter points are independent of evaluation order *)
  let rng =
    Wireless.Rand.create
      (Int64.add cfg.seed (Int64.of_int ((n * 7919) + int_of_float radius)))
  in
  List.init cfg.instances (fun _ ->
      fst
        (Wireless.Deploy.connected_uniform rng ~n ~side:cfg.side ~radius
           ~max_attempts:cfg.max_attempts))

let table1 ?(cfg = default) ?(n = 100) ?(radius = 50.) () =
  let rows =
    List.map
      (fun pts -> Quality.rows (backbone_of cfg pts ~radius))
      (deployments cfg ~n ~radius)
  in
  Quality.aggregate rows

(* Aggregation helpers: every instance yields an association list of
   (curve label, value); "avg"-labelled curves are averaged across
   instances, "max"-labelled curves maximized. *)
let aggregate_instances per_instance =
  match per_instance with
  | [] -> []
  | first :: _ ->
    List.mapi
      (fun i (label, _) ->
        let vals = List.map (fun inst -> snd (List.nth inst i)) per_instance in
        let v =
          if
            String.length label >= 3
            && String.sub label (String.length label - 3) 3 = "max"
          then List.fold_left Float.max neg_infinity vals
          else
            List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)
        in
        (label, v))
      first

let sweep xs ~of_x =
  (* of_x returns the per-instance labelled values for one parameter
     point; the result is transposed into labelled series *)
  let per_x =
    List.map (fun x -> (x, aggregate_instances (of_x x))) xs
  in
  match per_x with
  | [] -> []
  | (_, first) :: _ ->
    List.mapi
      (fun i (label, _) ->
        {
          label;
          points = List.map (fun (x, vals) -> (x, snd (List.nth vals i))) per_x;
        })
      first

(* Figure 8's structures: the backbone family of the registry. *)
let degree_structures (bb : Backbone.t) =
  List.map (fun (name, g, _) -> (name, g)) (Backbone.backbone_structures bb)

let default_ns = [ 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
let default_radii = [ 20.; 25.; 30.; 35.; 40.; 45.; 50.; 55.; 60. ]

let degree_values bb =
  List.concat_map
    (fun (name, g) ->
      let d = M.degree_stats g in
      [
        (name ^ " deg max", float_of_int d.M.deg_max);
        (name ^ " deg avg", d.M.deg_avg);
      ])
    (degree_structures bb)

let degree_vs_n ?(cfg = default) ?(radius = 60.) ?(ns = default_ns) () =
  sweep
    (List.map float_of_int ns)
    ~of_x:(fun x ->
      let n = int_of_float x in
      List.map
        (fun pts -> degree_values (backbone_of cfg pts ~radius))
        (deployments cfg ~n ~radius))

let stretch_values bb =
  let spanning =
    List.map
      (fun (name, g, _) -> (name, g))
      (Backbone.spanning_backbone_structures bb)
  in
  (* one fused pass shares the UDG shortest-path trees across the
     three spanning curves instead of recomputing them per structure *)
  let combined =
    M.combined_stretch ~jobs:bb.Backbone.jobs ~base:bb.Backbone.udg
      bb.Backbone.points spanning
  in
  List.concat_map
    (fun (name, (c : M.combined)) ->
      let s = c.M.c_stretch in
      [
        (name ^ " length max", s.M.len_max);
        (name ^ " hop max", s.M.hop_max);
        (name ^ " length avg", s.M.len_avg);
        (name ^ " hop avg", s.M.hop_avg);
      ])
    combined

let stretch_vs_n ?(cfg = default) ?(radius = 60.) ?(ns = default_ns) () =
  sweep
    (List.map float_of_int ns)
    ~of_x:(fun x ->
      let n = int_of_float x in
      List.map
        (fun pts -> stretch_values (backbone_of cfg pts ~radius))
        (deployments cfg ~n ~radius))

let comm_values (r : Protocol.result) =
  let levels =
    [
      ("CDS", Protocol.cds_stats r);
      ("ICDS", Protocol.icds_stats r);
      ("LDelICDS", Protocol.ldel_stats r);
    ]
  in
  List.concat_map
    (fun (name, stats) ->
      [
        (name ^ " comm max", float_of_int (E.max_sent stats));
        (name ^ " comm avg", E.avg_sent stats);
      ])
    levels

let comm_vs_n ?(cfg = default) ?(radius = 60.) ?(ns = default_ns) () =
  sweep
    (List.map float_of_int ns)
    ~of_x:(fun x ->
      let n = int_of_float x in
      List.map
        (fun pts -> comm_values (Protocol.run pts ~radius))
        (deployments cfg ~n ~radius))

let stretch_vs_radius ?(cfg = default) ?(n = 500) ?(radii = default_radii) () =
  sweep radii ~of_x:(fun radius ->
      List.map
        (fun pts -> stretch_values (backbone_of cfg pts ~radius))
        (deployments cfg ~n ~radius))

let comm_and_degree_vs_radius ?(cfg = default) ?(n = 500)
    ?(radii = default_radii) () =
  sweep radii ~of_x:(fun radius ->
      List.map
        (fun pts ->
          let r = Protocol.run pts ~radius in
          let graphs =
            [
              ("CDS", G.of_edges n r.Protocol.cds_edges);
              ("ICDS", G.of_edges n r.Protocol.icds_edges);
              ("LDelICDS", r.Protocol.ldel_graph);
            ]
          in
          comm_values r
          @ List.concat_map
              (fun (name, g) ->
                let d = M.degree_stats g in
                [
                  (name ^ " deg max", float_of_int d.M.deg_max);
                  (name ^ " deg avg", d.M.deg_avg);
                ])
              graphs)
        (deployments cfg ~n ~radius))

let pp_series fmt = function
  | [] -> ()
  | series ->
    (* one array per curve: indexing rows is O(1), and a curve shorter
       than the x column renders a blank cell instead of raising *)
    let cols = List.map (fun s -> Array.of_list s.points) series in
    let xs = List.map fst (List.hd series).points in
    Format.fprintf fmt "%-10s" "x";
    List.iter (fun s -> Format.fprintf fmt " %22s" s.label) series;
    Format.pp_print_newline fmt ();
    List.iteri
      (fun i x ->
        Format.fprintf fmt "%-10g" x;
        List.iter
          (fun col ->
            if i < Array.length col then
              Format.fprintf fmt " %22.3f" (snd col.(i))
            else Format.fprintf fmt " %22s" "-")
          cols;
        Format.pp_print_newline fmt ())
      xs
