(** Sharded, CSR-native construction: the million-node pipeline.

    The deployment square is cut into grid tiles of side at least the
    transmission radius; each tile's node bucket is an {e ownership
    set}, and every stage — UDG, MIS clustering, connector elections,
    localized Delaunay — runs per-tile on the {!Netgraph.Pool}
    domains against the immutable CSR snapshot of the previous stage.
    Per-tile results are stitched with deterministic sorted merges
    (smallest-ID tie-breaks are inherited from the serial elections),
    so the pipeline's outputs are {b bit-identical} to the serial
    [Cds.of_udg] / [Ldel.build] chain for any tile count and any job
    count.  No stage touches a mutable Hashtbl graph; every
    intermediate and output is a sealed {!Netgraph.Csr} snapshot.

    See DESIGN.md §10 for the tile/halo geometry and the 2-locality
    argument behind per-tile ownership. *)

(** Everything the pipeline produces.  The CSR fields mirror the
    legacy [Backbone.t]/[Cds.t] graphs: [cds]/[icds] span the
    backbone nodes only, the primed variants add dominatee→dominator
    links, [pldel] is the planar LDel(ICDS) backbone (sealed with
    Euclidean arc weights), [pldel'] its primed variant. *)
type snapshot = {
  points : Geometry.Point.t array;
  radius : float;
  owners : int array array;  (** tile ownership sets, ascending ids *)
  udg : Netgraph.Csr.t;
  roles : Mis.role array;
  connectors : Connectors.result;
  ldel : Ldel.csr_parts;
  backbone : bool array;
  cds : Netgraph.Csr.t;
  cds' : Netgraph.Csr.t;
  icds : Netgraph.Csr.t;
  icds' : Netgraph.Csr.t;
  pldel : Netgraph.Csr.t;
  pldel' : Netgraph.Csr.t;
}

(** [tiling points ~radius] is the tile partition of the node ids:
    grid buckets of square tiles whose side is
    [max radius (side / tiles)] — the per-axis count [tiles] (default:
    targets ~4k nodes per tile) is clamped so a tile is never
    narrower than the radius.  Every node appears in exactly one
    tile, ascending ids within a tile.
    @raise Invalid_argument when [radius <= 0] or [tiles < 1]. *)
val tiling :
  ?tiles:int -> Geometry.Point.t array -> radius:float -> int array array

(** [pipeline points ~radius] runs the full sharded chain
    (UDG → MIS → connectors → LDel(ICDS) → assembly) and seals every
    structure.  [pool] fans the per-tile stages out across its
    domains; [tiles] overrides the per-axis tile count; [priority] is
    the MIS priority as in [Mis.compute_with_priority].  [udg]
    substitutes a pre-built snapshot for the UDG stage (the quasi-UDG
    robustness path — its RNG sequence is inherently serial).
    Stage timings land in the [shard.*] spans; tile count and
    populations in the [shard.tiles] gauge / [shard.tile_pop]
    distribution.
    @raise Invalid_argument when [radius <= 0], [tiles < 1], or [udg]
    disagrees with [points] on the node count. *)
val pipeline :
  ?pool:Netgraph.Pool.t ->
  ?tiles:int ->
  ?priority:(int -> int) ->
  ?udg:Netgraph.Csr.t ->
  Geometry.Point.t array ->
  radius:float ->
  snapshot
