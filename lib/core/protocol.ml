module G = Netgraph.Graph
module P = Geometry.Point
module E = Distsim.Engine

type position = Single | First | Second

type msg =
  | Hello of P.t
  | IamDominator
  | IamDominatee of int
  | TwoHopDoms of int list
  | TryConnector of (int * int) * position
  | IamConnector of (int * int) * position
  | Status of bool
  | Proposal of (int * int * int)
  | Accept of (int * int * int)
  | Reject of (int * int * int)
  | ShareTriangles of (int * int * int) list * (int * int) list
  | RemainingTriangles of (int * int * int) list
  | NeighborTable of (int * P.t) list
      (* my backbone neighbors with positions: one broadcast gives
         everyone its 2-hop backbone view *)

let classify = function
  | Hello _ -> "Hello"
  | IamDominator -> "IamDominator"
  | IamDominatee _ -> "IamDominatee"
  | TwoHopDoms _ -> "TwoHopDoms"
  | TryConnector _ -> "TryConnector"
  | IamConnector _ -> "IamConnector"
  | Status _ -> "Status"
  | Proposal _ -> "Proposal"
  | Accept _ -> "Accept"
  | Reject _ -> "Reject"
  | ShareTriangles _ -> "ShareTriangles"
  | RemainingTriangles _ -> "RemainingTriangles"
  | NeighborTable _ -> "NeighborTable"

module IntSet = Set.Make (Int)

module TriSet = Set.Make (struct
  type t = int * int * int

  let compare = compare
end)

module KeyMap = Map.Make (struct
  type t = (int * int) * position

  let compare = compare
end)

module PairSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let ordered_edge u v = (min u v, max u v)

(* ------------------------------------------------------------------ *)
(* Phase 1: clustering                                                  *)
(* ------------------------------------------------------------------ *)

type cluster_state = {
  mutable status : [ `White | `Dominator | `Dominatee ];
  mutable white_nbrs : IntSet.t;
  mutable my_dominators : IntSet.t;
  mutable nbr_dominators : (int * int) list;  (* (neighbor, its dominator) *)
  mutable nbr_pos : (int * P.t) list;
}

let cluster_protocol points =
  let init _ nbrs =
    {
      status = `White;
      white_nbrs = IntSet.of_list nbrs;
      my_dominators = IntSet.empty;
      nbr_dominators = [];
      nbr_pos = [];
    }
  in
  let on_round ctx st inbox =
    if ctx.E.round = 0 then ctx.E.broadcast (Hello points.(ctx.E.me));
    let new_dominators = ref [] in
    List.iter
      (fun { E.from; msg } ->
        match msg with
        | Hello p -> st.nbr_pos <- (from, p) :: st.nbr_pos
        | IamDominator ->
          st.white_nbrs <- IntSet.remove from st.white_nbrs;
          if not (IntSet.mem from st.my_dominators) then begin
            st.my_dominators <- IntSet.add from st.my_dominators;
            if st.status <> `Dominator then begin
              st.status <- `Dominatee;
              new_dominators := from :: !new_dominators
            end
          end
        | IamDominatee d ->
          st.white_nbrs <- IntSet.remove from st.white_nbrs;
          st.nbr_dominators <- (from, d) :: st.nbr_dominators
        | TwoHopDoms _ | TryConnector _ | IamConnector _ | Status _
        | Proposal _ | Accept _ | Reject _ | ShareTriangles _
        | RemainingTriangles _ | NeighborTable _ ->
          ())
      inbox;
    (* smallest-ID rule: claim dominatorship once no undecided
       neighbor has a smaller id (from round 1 on, when ids have
       certainly been exchanged) *)
    if
      ctx.E.round >= 1 && st.status = `White
      && IntSet.for_all (fun v -> ctx.E.me < v) st.white_nbrs
    then begin
      st.status <- `Dominator;
      ctx.E.broadcast IamDominator
    end;
    List.iter
      (fun d -> ctx.E.broadcast (IamDominatee d))
      (List.rev !new_dominators);
    st
  in
  { E.init; E.on_round = on_round }

(* ------------------------------------------------------------------ *)
(* Phase 2: connectors (Algorithm 1)                                    *)
(* ------------------------------------------------------------------ *)

(* Election schedule in engine rounds: Single/First candidacies are
   announced in round 0 and decided in round 1 (all rival
   announcements arrive together, synchronously); elected First
   connectors announce in round 1, which triggers Second candidacies
   in round 2, decided in round 3. *)
type conn_state = {
  c_role : [ `Dominator | `Dominatee ];
  c_dominators : int list;
  c_two_hop : int list;
  c_two_hop_as_dominator : int list;
      (* as a dominator: the two-hop dominators joined to me by a
         common dominatee (for the TwoHopDoms announcement) *)
  mutable c_is_connector : bool;
  mutable c_candidacies : ((int * int) * position) list;
  mutable c_elected : ((int * int) * position) list;
  mutable c_heard_try : IntSet.t KeyMap.t;
  mutable c_heard_first : int list KeyMap.t;
  mutable c_second_claimed : PairSet.t;
  c_dom_two_hop : (int, IntSet.t) Hashtbl.t;
      (* dominator -> its announced two-hop dominator set *)
  mutable c_edges : (int * int) list;
}

let connectors_protocol (cluster : cluster_state array) =
  let init me nbrs =
    let st = cluster.(me) in
    let nbr_set = IntSet.of_list nbrs in
    {
      c_role = (if st.status = `Dominator then `Dominator else `Dominatee);
      c_dominators = IntSet.elements st.my_dominators;
      c_two_hop =
        List.sort_uniq compare
          (List.filter_map
             (fun (_, d) ->
               if d <> me && not (IntSet.mem d nbr_set) then Some d else None)
             st.nbr_dominators);
      c_two_hop_as_dominator =
        (if st.status <> `Dominator then []
         else
           List.sort_uniq compare
             (List.filter_map
                (fun (_, d) -> if d <> me then Some d else None)
                st.nbr_dominators));
      c_is_connector = false;
      c_candidacies = [];
      c_elected = [];
      c_heard_try = KeyMap.empty;
      c_heard_first = KeyMap.empty;
      c_second_claimed = PairSet.empty;
      c_dom_two_hop = Hashtbl.create 8;
      c_edges = [];
    }
  in
  let add_edge st u v = st.c_edges <- ordered_edge u v :: st.c_edges in
  let on_round ctx st inbox =
    let me = ctx.E.me in
    List.iter
      (fun { E.from; msg } ->
        match msg with
        | TwoHopDoms doms ->
          Hashtbl.replace st.c_dom_two_hop from (IntSet.of_list doms)
        | TryConnector (pair, pos) ->
          st.c_heard_try <-
            KeyMap.update (pair, pos)
              (fun prev ->
                Some (IntSet.add from (Option.value ~default:IntSet.empty prev)))
              st.c_heard_try
        | IamConnector ((u, v), Single) ->
          if me = u || me = v then add_edge st me from
        | IamConnector ((u, v), First) ->
          if me = u then add_edge st me from;
          if st.c_role = `Dominatee && List.mem v st.c_dominators then begin
            st.c_heard_first <-
              KeyMap.update ((u, v), First)
                (fun prev -> Some (from :: Option.value ~default:[] prev))
                st.c_heard_first;
            if not (PairSet.mem (u, v) st.c_second_claimed) then begin
              st.c_second_claimed <- PairSet.add (u, v) st.c_second_claimed;
              st.c_candidacies <- ((u, v), Second) :: st.c_candidacies;
              ctx.E.broadcast (TryConnector ((u, v), Second))
            end
          end
        | IamConnector ((u, v), Second) ->
          if me = v then add_edge st me from;
          if List.mem ((u, v), First) st.c_elected then add_edge st me from
        | Hello _ | IamDominator | IamDominatee _ | Status _ | Proposal _
        | Accept _ | Reject _ | ShareTriangles _ | RemainingTriangles _
        | NeighborTable _ ->
          ())
      inbox;
    (* round 0: dominators announce their two-hop dominator sets (one
       message, derived from the IamDominatee broadcasts they heard);
       dominatees announce their two-hop-pair candidacies *)
    if ctx.E.round = 0 then begin
      match st.c_role with
      | `Dominator ->
        ctx.E.broadcast (TwoHopDoms st.c_two_hop_as_dominator)
      | `Dominatee ->
        List.iter
          (fun u ->
            List.iter
              (fun v ->
                if u < v then begin
                  st.c_candidacies <- ((u, v), Single) :: st.c_candidacies;
                  ctx.E.broadcast (TryConnector ((u, v), Single))
                end)
              st.c_dominators)
          st.c_dominators
    end;
    (* round 1: with the dominators' two-hop sets in hand, dominatees
       announce first-leg candidacies only for pairs that no common
       dominatee already joins *)
    if ctx.E.round = 1 && st.c_role = `Dominatee then
      List.iter
        (fun u ->
          let joined_by_common =
            match Hashtbl.find_opt st.c_dom_two_hop u with
            | Some s -> fun v -> IntSet.mem v s
            | None -> fun _ -> false
          in
          List.iter
            (fun v ->
              if not (joined_by_common v) then begin
                st.c_candidacies <- ((u, v), First) :: st.c_candidacies;
                ctx.E.broadcast (TryConnector ((u, v), First))
              end)
            st.c_two_hop)
        st.c_dominators;
    (* elections on schedule *)
    let due pos =
      match (ctx.E.round, pos) with
      | 1, Single -> true
      | 2, First -> true
      | 4, Second -> true
      | _ -> false
    in
    let decided, pending =
      List.partition (fun (_, pos) -> due pos) st.c_candidacies
    in
    st.c_candidacies <- pending;
    List.iter
      (fun ((pair, pos) as key) ->
        let rivals =
          Option.value ~default:IntSet.empty (KeyMap.find_opt key st.c_heard_try)
        in
        if IntSet.for_all (fun s -> me < s) rivals then begin
          st.c_is_connector <- true;
          st.c_elected <- key :: st.c_elected;
          ctx.E.broadcast (IamConnector (pair, pos));
          let u, v = pair in
          match pos with
          | Single ->
            add_edge st u me;
            add_edge st me v
          | First -> add_edge st u me
          | Second ->
            add_edge st me v;
            List.iter
              (fun w -> add_edge st w me)
              (Option.value ~default:[]
                 (KeyMap.find_opt (pair, First) st.c_heard_first))
        end)
      decided;
    st
  in
  { E.init; E.on_round = on_round }

(* ------------------------------------------------------------------ *)
(* Phase 3: status broadcast (induces ICDS at no further cost)          *)
(* ------------------------------------------------------------------ *)

type status_state = {
  s_backbone : bool;
  mutable s_bb_nbrs : IntSet.t;  (* backbone neighbors *)
}

let status_protocol (backbone : bool array) =
  let init me _ = { s_backbone = backbone.(me); s_bb_nbrs = IntSet.empty } in
  let on_round ctx st inbox =
    List.iter
      (fun { E.from; msg } ->
        match msg with
        | Status true -> st.s_bb_nbrs <- IntSet.add from st.s_bb_nbrs
        | _ -> ())
      inbox;
    if ctx.E.round = 0 then ctx.E.broadcast (Status st.s_backbone);
    st
  in
  { E.init; E.on_round = on_round }

(* ------------------------------------------------------------------ *)
(* Phase 4: localized Delaunay on ICDS (Algorithms 2 and 3)             *)
(* ------------------------------------------------------------------ *)

type ldel_state = {
  l_backbone : bool;
  l_bb_nbrs : (int * P.t) list;  (* ICDS neighbors with positions *)
  l_local_tris : TriSet.t;  (* incident triangles of Del(N1(me)) *)
  l_gabriel : (int * int) list;  (* incident Gabriel edges of ICDS *)
  mutable l_responded : TriSet.t;  (* proposals answered (or sent) *)
  l_endorsements : (int * int * int, IntSet.t) Hashtbl.t;
  mutable l_accepted : TriSet.t;  (* incident accepted triangles *)
  mutable l_known : TriSet.t;  (* triangles heard in gossip *)
  l_remaining_of : (int, TriSet.t) Hashtbl.t;
  mutable l_my_remaining : TriSet.t;
  mutable l_kept : TriSet.t;
}

let pi_third = (Float.pi /. 3.) -. 1e-12

let angle_at points_of (a, b, c) ~at =
  let other =
    List.filter (fun v -> v <> at) [ a; b; c ]
  in
  match other with
  | [ x; y ] -> P.angle (points_of x) (points_of at) (points_of y)
  | _ -> invalid_arg "angle_at: corner not in triangle"

let ldel_protocol (status : status_state array)
    (cluster : cluster_state array) points ~radius =
  let init me _nbrs =
    let backbone = status.(me).s_backbone in
    let bb_nbrs =
      if not backbone then []
      else
        List.filter
          (fun (v, _) -> IntSet.mem v status.(me).s_bb_nbrs)
          cluster.(me).nbr_pos
        |> List.sort_uniq compare
    in
    let local_tris =
      if backbone then
        TriSet.of_list
          (Ldel.local_triangles_of_neighborhood ~me ~me_pos:points.(me)
             ~nbrs:bb_nbrs)
      else TriSet.empty
    in
    (* Gabriel test from purely local data: a blocker of edge (me, v)
       lies within |me v| <= radius of me, hence among my ICDS
       neighbors. *)
    let gabriel =
      List.filter_map
        (fun (v, pv) ->
          let blocked =
            List.exists
              (fun (w, pw) ->
                w <> v && Geometry.Circle.in_diametral points.(me) pv pw)
              bb_nbrs
          in
          if blocked then None else Some (ordered_edge me v))
        bb_nbrs
    in
    {
      l_backbone = backbone;
      l_bb_nbrs = bb_nbrs;
      l_local_tris = local_tris;
      l_gabriel = gabriel;
      l_responded = TriSet.empty;
      l_endorsements = Hashtbl.create 16;
      l_accepted = TriSet.empty;
      l_known = TriSet.empty;
      l_remaining_of = Hashtbl.create 8;
      l_my_remaining = TriSet.empty;
      l_kept = TriSet.empty;
    }
  in
  let endorse st t from =
    let prev =
      Option.value ~default:IntSet.empty (Hashtbl.find_opt st.l_endorsements t)
    in
    Hashtbl.replace st.l_endorsements t (IntSet.add from prev)
  in
  let on_round ctx st inbox =
    let me = ctx.E.me in
    let corner_of (a, b, c) = me = a || me = b || me = c in
    List.iter
      (fun { E.from; msg } ->
        match msg with
        | Proposal t ->
          endorse st t from;
          if corner_of t && not (TriSet.mem t st.l_responded) then begin
            st.l_responded <- TriSet.add t st.l_responded;
            if TriSet.mem t st.l_local_tris then ctx.E.broadcast (Accept t)
            else ctx.E.broadcast (Reject t)
          end
        | Accept t -> endorse st t from
        | Reject _ -> ()
        | ShareTriangles (tris, _gabriel) ->
          List.iter (fun t -> st.l_known <- TriSet.add t st.l_known) tris
        | RemainingTriangles tris ->
          Hashtbl.replace st.l_remaining_of from (TriSet.of_list tris)
        | Hello _ | IamDominator | IamDominatee _ | TwoHopDoms _
        | TryConnector _ | IamConnector _ | Status _ | NeighborTable _ ->
          ())
      inbox;
    if st.l_backbone then begin
      (* round 0: proposals for well-shaped incident triangles *)
      if ctx.E.round = 0 then
        TriSet.iter
          (fun t ->
            if
              Ldel.triangle_fits points ~radius t
              && angle_at (fun v -> points.(v)) t ~at:me >= pi_third
            then begin
              ctx.E.broadcast (Proposal t);
              endorse st t me;
              st.l_responded <- TriSet.add t st.l_responded
            end)
          st.l_local_tris;
      (* round 2: all proposals and responses are in; settle
         acceptance and start the planarization gossip *)
      if ctx.E.round = 2 then begin
        TriSet.iter
          (fun ((a, b, c) as t) ->
            if TriSet.mem t st.l_local_tris then begin
              let endorsers =
                Option.value ~default:IntSet.empty
                  (Hashtbl.find_opt st.l_endorsements t)
              in
              (* my own endorsement is implicit in l_local_tris *)
              let endorsers = IntSet.add me endorsers in
              if
                IntSet.mem a endorsers && IntSet.mem b endorsers
                && IntSet.mem c endorsers
                && Ldel.triangle_fits points ~radius t
              then st.l_accepted <- TriSet.add t st.l_accepted
            end)
          st.l_local_tris;
        (* drop triangles nobody proposed: acceptance needs a proposal *)
        st.l_accepted <-
          TriSet.filter (fun t -> TriSet.mem t st.l_responded) st.l_accepted;
        if st.l_bb_nbrs <> [] then
          ctx.E.broadcast
            (ShareTriangles (TriSet.elements st.l_accepted, st.l_gabriel))
      end;
      (* round 3: apply the removal rule and gossip survivors *)
      if ctx.E.round = 3 then begin
        let known = TriSet.union st.l_known st.l_accepted in
        st.l_my_remaining <-
          TriSet.filter
            (fun t1 ->
              not
                (TriSet.exists
                   (fun t2 ->
                     t2 <> t1
                     && Ldel.triangles_intersect points t1 t2
                     && (let a2, b2, c2 = t2 in
                         List.exists
                           (Ldel.circumcircle_contains points t1)
                           [ a2; b2; c2 ]))
                   known))
            st.l_accepted;
        if st.l_bb_nbrs <> [] then
          ctx.E.broadcast
            (RemainingTriangles (TriSet.elements st.l_my_remaining))
      end;
      (* round 4: keep a triangle only if all three corners kept it *)
      if ctx.E.round = 4 then
        st.l_kept <-
          TriSet.filter
            (fun (a, b, c) ->
              List.for_all
                (fun v ->
                  v = me
                  ||
                  match Hashtbl.find_opt st.l_remaining_of v with
                  | Some s -> TriSet.mem (a, b, c) s
                  | None -> false)
                [ a; b; c ])
            st.l_my_remaining
    end;
    st
  in
  { E.init; E.on_round = on_round }

(* ------------------------------------------------------------------ *)
(* Alternative planarization: LDel^2 (no removal phase needed)          *)
(* ------------------------------------------------------------------ *)

(* With 2-hop neighborhoods the accepted triangles are planar outright
   (Li et al.), so Algorithm 3's two gossip rounds disappear; the price
   is one NeighborTable broadcast per node to assemble N_2. *)
type ldel2_state = {
  l2_backbone : bool;
  l2_bb_nbrs : (int * P.t) list;
  l2_two_hop : (int, (int * P.t) list) Hashtbl.t;
      (* neighbor -> its backbone neighbor table *)
  mutable l2_local_tris : TriSet.t;
  l2_gabriel : (int * int) list;
  mutable l2_responded : TriSet.t;
  l2_endorsements : (int * int * int, IntSet.t) Hashtbl.t;
  mutable l2_accepted : TriSet.t;
}

let ldel2_protocol (status : status_state array)
    (cluster : cluster_state array) points ~radius =
  let init me _nbrs =
    let backbone = status.(me).s_backbone in
    let bb_nbrs =
      if not backbone then []
      else
        List.filter
          (fun (v, _) -> IntSet.mem v status.(me).s_bb_nbrs)
          cluster.(me).nbr_pos
        |> List.sort_uniq compare
    in
    let gabriel =
      List.filter_map
        (fun (v, pv) ->
          let blocked =
            List.exists
              (fun (w, pw) ->
                w <> v && Geometry.Circle.in_diametral points.(me) pv pw)
              bb_nbrs
          in
          if blocked then None else Some (ordered_edge me v))
        bb_nbrs
    in
    {
      l2_backbone = backbone;
      l2_bb_nbrs = bb_nbrs;
      l2_two_hop = Hashtbl.create 8;
      l2_local_tris = TriSet.empty;
      l2_gabriel = gabriel;
      l2_responded = TriSet.empty;
      l2_endorsements = Hashtbl.create 16;
      l2_accepted = TriSet.empty;
    }
  in
  let endorse st t from =
    let prev =
      Option.value ~default:IntSet.empty (Hashtbl.find_opt st.l2_endorsements t)
    in
    Hashtbl.replace st.l2_endorsements t (IntSet.add from prev)
  in
  let on_round ctx st inbox =
    let me = ctx.E.me in
    let corner_of (a, b, c) = me = a || me = b || me = c in
    List.iter
      (fun { E.from; msg } ->
        match msg with
        | NeighborTable tbl ->
          if st.l2_backbone then Hashtbl.replace st.l2_two_hop from tbl
        | Proposal t ->
          endorse st t from;
          if corner_of t && not (TriSet.mem t st.l2_responded) then begin
            st.l2_responded <- TriSet.add t st.l2_responded;
            if TriSet.mem t st.l2_local_tris then ctx.E.broadcast (Accept t)
            else ctx.E.broadcast (Reject t)
          end
        | Accept t -> endorse st t from
        | _ -> ())
      inbox;
    if st.l2_backbone then begin
      (* round 0: publish my backbone neighbor table *)
      if ctx.E.round = 0 && st.l2_bb_nbrs <> [] then
        ctx.E.broadcast (NeighborTable st.l2_bb_nbrs);
      (* round 1: N_2 assembled; compute Del(N_2(me)) and propose *)
      if ctx.E.round = 1 then begin
        let two_hop = Hashtbl.create 16 in
        List.iter
          (fun (v, pv) ->
            Hashtbl.replace two_hop v pv;
            List.iter
              (fun (w, pw) -> if w <> me then Hashtbl.replace two_hop w pw)
              (Option.value ~default:[] (Hashtbl.find_opt st.l2_two_hop v)))
          st.l2_bb_nbrs;
        let nbrs =
          List.sort_uniq compare
            (Hashtbl.fold (fun v pv acc -> (v, pv) :: acc) two_hop [])
        in
        st.l2_local_tris <-
          TriSet.of_list
            (Ldel.local_triangles_of_neighborhood ~me ~me_pos:points.(me)
               ~nbrs);
        TriSet.iter
          (fun t ->
            if
              Ldel.triangle_fits points ~radius t
              && angle_at (fun v -> points.(v)) t ~at:me >= pi_third
            then begin
              ctx.E.broadcast (Proposal t);
              endorse st t me;
              st.l2_responded <- TriSet.add t st.l2_responded
            end)
          st.l2_local_tris
      end;
      (* round 3: settle acceptance *)
      if ctx.E.round = 3 then
        TriSet.iter
          (fun ((a, b, c) as t) ->
            let endorsers =
              IntSet.add me
                (Option.value ~default:IntSet.empty
                   (Hashtbl.find_opt st.l2_endorsements t))
            in
            if
              TriSet.mem t st.l2_responded
              && IntSet.mem a endorsers && IntSet.mem b endorsers
              && IntSet.mem c endorsers
              && Ldel.triangle_fits points ~radius t
            then st.l2_accepted <- TriSet.add t st.l2_accepted)
          st.l2_local_tris
    end;
    st
  in
  { E.init; E.on_round = on_round }

(* ------------------------------------------------------------------ *)
(* Assembly                                                             *)
(* ------------------------------------------------------------------ *)

type result = {
  roles : Mis.role array;
  connector : bool array;
  cds_edges : (int * int) list;
  icds_edges : (int * int) list;
  ldel_triangles : (int * int * int) list;
  kept_triangles : (int * int * int) list;
  gabriel_edges : (int * int) list;
  ldel_graph : G.t;
  stats_cluster : E.stats;
  stats_connector : E.stats;
  stats_status : E.stats;
  stats_ldel : E.stats;
}

type ldel2_result = {
  l2_triangles : (int * int * int) list;
  l2_gabriel_edges : (int * int) list;
  l2_graph : G.t;
  l2_stats : E.stats;
}

let cds_stats r = E.merge r.stats_cluster r.stats_connector
let icds_stats r = E.merge (cds_stats r) r.stats_status
let ldel_stats r = E.merge (icds_stats r) r.stats_ldel

(* the message-passing phases of [run], in execution order; these are
   the span names under "protocol", so trace events recorded during
   phase [p] carry the phase label "protocol/<p>" *)
let phase_cluster = "cluster"
let phase_connectors = "connectors"
let phase_status = "status"
let phase_ldel = "ldel"
let phases = [ phase_cluster; phase_connectors; phase_status; phase_ldel ]

let run points ~radius =
  Obs.span "protocol" @@ fun () ->
  let udg = Obs.span "udg" (fun () -> Wireless.Udg.build points ~radius) in
  let n = Array.length points in
  let cluster, stats_cluster =
    Obs.span phase_cluster (fun () ->
        E.run ~classify udg (cluster_protocol points))
  in
  let roles =
    Array.map
      (fun st ->
        match st.status with
        | `Dominator -> Mis.Dominator
        | `Dominatee -> Mis.Dominatee
        | `White -> assert false (* the clustering fixpoint colors every node *))
      cluster
  in
  let conn, stats_connector =
    Obs.span phase_connectors (fun () ->
        E.run ~classify udg (connectors_protocol cluster))
  in
  let connector = Array.map (fun st -> st.c_is_connector) conn in
  let cds_edges =
    List.sort_uniq compare
      (Array.to_list conn |> List.concat_map (fun st -> st.c_edges))
  in
  let backbone =
    Array.init n (fun u -> roles.(u) = Mis.Dominator || connector.(u))
  in
  let status, stats_status =
    Obs.span phase_status (fun () ->
        E.run ~classify udg (status_protocol backbone))
  in
  let icds_edges =
    let acc = ref [] in
    Array.iteri
      (fun u st ->
        if st.s_backbone then
          IntSet.iter
            (fun v -> if u < v then acc := (u, v) :: !acc)
            st.s_bb_nbrs)
      status;
    List.sort compare !acc
  in
  let ldel, stats_ldel =
    Obs.span phase_ldel (fun () ->
        E.run ~classify udg (ldel_protocol status cluster points ~radius))
  in
  let ldel_triangles =
    List.sort_uniq compare
      (Array.to_list ldel
      |> List.concat_map (fun st -> TriSet.elements st.l_accepted))
  in
  let kept_triangles =
    (* a triangle survives when every corner kept it; corners compute
       the same predicate, so collecting any corner's view suffices —
       take the intersection-by-unanimity *)
    List.sort_uniq compare
      (Array.to_list ldel |> List.concat_map (fun st -> TriSet.elements st.l_kept))
    |> List.filter (fun (a, b, c) ->
           List.for_all
             (fun v -> TriSet.mem (a, b, c) ldel.(v).l_kept)
             [ a; b; c ])
  in
  let gabriel_edges =
    List.sort_uniq compare
      (Array.to_list ldel |> List.concat_map (fun st -> st.l_gabriel))
  in
  let ldel_graph =
    let g = G.create n in
    List.iter (fun (u, v) -> G.add_edge g u v) gabriel_edges;
    List.iter
      (fun (a, b, c) ->
        G.add_edge g a b;
        G.add_edge g b c;
        G.add_edge g a c)
      kept_triangles;
    g
  in
  {
    roles;
    connector;
    cds_edges;
    icds_edges;
    ldel_triangles;
    kept_triangles;
    gabriel_edges;
    ldel_graph;
    stats_cluster;
    stats_connector;
    stats_status;
    stats_ldel;
  }


(* The LDel^2 pipeline variant: same clustering/connector/status
   phases, then the 2-hop localized Delaunay with no planarization
   gossip.  Returns only the final planar backbone pieces; tested
   against the centralized Ldel.build_k ~k:2 over ICDS. *)
let run_ldel2 points ~radius =
  let udg = Wireless.Udg.build points ~radius in
  let cluster, _ = E.run ~classify udg (cluster_protocol points) in
  let conn, _ = E.run ~classify udg (connectors_protocol cluster) in
  let n = Array.length points in
  let roles =
    Array.map
      (fun st ->
        match st.status with
        | `Dominator -> Mis.Dominator
        | `Dominatee -> Mis.Dominatee
        | `White -> assert false (* the clustering fixpoint colors every node *))
      cluster
  in
  let backbone =
    Array.init n (fun u ->
        roles.(u) = Mis.Dominator || conn.(u).c_is_connector)
  in
  let status, _ = E.run ~classify udg (status_protocol backbone) in
  let ldel2, l2_stats =
    E.run ~classify udg (ldel2_protocol status cluster points ~radius)
  in
  let l2_triangles =
    List.sort_uniq compare
      (Array.to_list ldel2
      |> List.concat_map (fun st -> TriSet.elements st.l2_accepted))
    |> List.filter (fun (a, b, c) ->
           List.for_all
             (fun v -> TriSet.mem (a, b, c) ldel2.(v).l2_accepted)
             [ a; b; c ])
  in
  let l2_gabriel_edges =
    List.sort_uniq compare
      (Array.to_list ldel2 |> List.concat_map (fun st -> st.l2_gabriel))
  in
  let l2_graph =
    let g = G.create n in
    List.iter (fun (u, v) -> G.add_edge g u v) l2_gabriel_edges;
    List.iter
      (fun (a, b, c) ->
        G.add_edge g a b;
        G.add_edge g b c;
        G.add_edge g a c)
      l2_triangles;
    g
  in
  { l2_triangles; l2_gabriel_edges; l2_graph; l2_stats }
