(** The full spanner pipeline: deployment → UDG → clustering →
    connectors → CDS family → localized Delaunay planarization.

    [run] computes every structure the paper evaluates, over one node
    deployment, driven by a {!Config.t}.  This is the library's front
    door: examples, the CLI, the benchmarks and the experiment sweeps
    all consume this record. *)

type t = {
  points : Geometry.Point.t array;
  radius : float;
  jobs : int;
      (** worker-domain budget carried from the config — the default
          parallelism for metrics computed on this instance *)
  udg : Netgraph.Graph.t;
  cds : Cds.t;  (** clustering, connectors, CDS / CDS′ / ICDS / ICDS′ *)
  ldel_icds : Ldel.t;  (** LDel over the induced backbone ICDS *)
  ldel_icds_g : Netgraph.Graph.t;  (** PLDel(ICDS): the planar backbone *)
  ldel_icds' : Netgraph.Graph.t;
      (** planar backbone plus dominatee–dominator edges — the routing
          structure spanning all nodes *)
  planar_csr : Netgraph.Csr.t;
      (** PLDel(ICDS) as a sealed CSR snapshot with Euclidean arc
          weights — the read-optimized form of [ldel_icds_g], identical
          on both the serial and the partitioned path *)
}

(** Pipeline configuration — one record instead of a growing pile of
    optional arguments. *)
module Config : sig
  (** The radio model: an ideal unit disk of radius [Config.radius],
      or a quasi unit disk whose links between [r_min] and the radius
      survive with distance-proportional probability (drawn from a
      dedicated RNG seeded by [seed], so a config is reproducible). *)
  type radio = Disk | Quasi of { r_min : float; seed : int64 }

  (** How the pipeline build itself is executed.  [Serial] is the
      legacy single-threaded chain; [Tiles k] forces the sharded
      CSR-native pipeline ({!Shard}) with [k] tiles per axis; [Auto]
      picks the sharded pipeline for disk-radio instances of at least
      ~5k nodes and the serial chain otherwise (the quasi radio's
      RNG-ordered link draws keep its UDG stage serial under [Auto]).
      Both paths produce bit-identical structures. *)
  type partition = Auto | Tiles of int | Serial

  type t = {
    radius : float;  (** transmission radius, shared by all nodes *)
    priority : (int -> int) option;
        (** clustering order override (smaller wins; default the node
            id, the paper's smallest-ID rule — see {!Cds.of_udg}) *)
    radio : radio;
    sink : Obs.sink option;
        (** when set, {!run} enables the observability layer for the
            duration of the build and emits a snapshot of the global
            obs state afterwards; call [Obs.reset] first for numbers
            isolated to one run *)
    jobs : int;
        (** worker domains (see {!Netgraph.Pool}) — used by the
            partitioned build and as the default parallelism for
            metrics over this instance *)
    partition : partition;
  }

  (** radius 60, smallest-ID clustering, ideal disk, no sink,
      [jobs = Netgraph.Pool.default_jobs ()], [partition = Auto]. *)
  val default : t
end

(** [run cfg points] runs the whole pipeline.  The UDG need not be
    connected, but the spanner guarantees only hold per component.
    On the serial path, stage timings are charged to obs spans
    [backbone/udg], [backbone/cds/mis], [backbone/cds/connectors],
    [backbone/cds/assemble], [backbone/ldel] and [backbone/links]; on
    the partitioned path the [shard.*] spans replace the per-stage
    ones (plus [backbone/thaw] for rebuilding the legacy graphs).
    Both paths return the same structures bit for bit.  For
    million-node instances prefer {!snapshot}, which skips the
    legacy-graph thaw entirely. *)
val run : Config.t -> Geometry.Point.t array -> t

(** [snapshot cfg points] runs the sharded CSR-native pipeline
    ({!Shard.pipeline}) under [cfg] — partition, jobs, radio, priority
    and sink are honored as in {!run} — and returns the sealed
    snapshot without ever materializing a mutable graph.  This is the
    front door for million-node instances. *)
val snapshot : Config.t -> Geometry.Point.t array -> Shard.snapshot

(** [build points ~radius] is
    [run { Config.default with radius; priority }] — the historical
    front door, kept so existing callers compile.  New code should
    construct a {!Config.t} and call {!run} (or {!snapshot} at
    scale). *)
val build :
  ?priority:(int -> int) -> Geometry.Point.t array -> radius:float -> t

(** [ldel_full t] lazily computes LDel/PLDel over the whole UDG — the
    "LDel" baseline row of Table I (not part of the backbone
    pipeline, so it is not built eagerly). *)
val ldel_full : t -> Ldel.t

(** {1 Structure registry}

    The named graphs the evaluation reports on, in Table I order: UDG,
    RNG, GG, LDel(V), CDS, CDS′, ICDS, ICDS′, LDel(ICDS), LDel(ICDS′).
    [`Spans_all] says whether the structure connects all nodes (only
    then are stretch factors defined).  The registry is the single
    source of that list: the CLI, the experiment sweeps and the bench
    harness all consume it rather than maintaining their own copies. *)

val registry :
  (string * (t -> Netgraph.Graph.t) * [ `Spans_all | `Backbone_only ]) list

(** Registry names, in Table I order. *)
val names : string list

(** [structures t] materializes the whole registry on one instance. *)
val structures :
  t -> (string * Netgraph.Graph.t * [ `Spans_all | `Backbone_only ]) list

(** The six backbone-family rows (CDS … LDel(ICDS′)) — Figure 8's
    structures. *)
val backbone_structures :
  t -> (string * Netgraph.Graph.t * [ `Spans_all | `Backbone_only ]) list

(** The spanning backbone rows (CDS′, ICDS′, LDel(ICDS′)) — the
    structures whose stretch Figures 9 and 11 track. *)
val spanning_backbone_structures :
  t -> (string * Netgraph.Graph.t * [ `Spans_all | `Backbone_only ]) list
