module AE = Distsim.Async_engine

type msg = Decided of bool

type state = {
  mutable decided : bool option;  (* my role, once fixed *)
  mutable waiting_on : int;  (* smaller-ID neighbors yet to announce *)
  mutable smaller_dominator : bool;  (* some smaller neighbor is a dominator *)
}

let run ~delay udg =
  let proto =
    {
      AE.init =
        (fun me nbrs ->
          {
            decided = None;
            waiting_on = List.length (List.filter (fun v -> v < me) nbrs);
            smaller_dominator = false;
          });
      AE.on_start =
        (fun ctx st ->
          if st.waiting_on = 0 then begin
            (* local minimum: dominator immediately *)
            st.decided <- Some true;
            ctx.AE.broadcast (Decided true)
          end;
          st);
      AE.on_message =
        (fun ctx st d ->
          let (Decided is_dominator) = d.AE.msg in
          if d.AE.from < ctx.AE.me && st.decided = None then begin
            st.waiting_on <- st.waiting_on - 1;
            if is_dominator then st.smaller_dominator <- true;
            if st.waiting_on = 0 then begin
              let me_dominator = not st.smaller_dominator in
              st.decided <- Some me_dominator;
              ctx.AE.broadcast (Decided me_dominator)
            end
          end;
          st);
    }
  in
  let classify = function
    | Decided true -> "IamDominator"
    | Decided false -> "IamDominatee"
  in
  let states, stats = AE.run ~classify ~delay udg proto in
  let roles =
    Array.map
      (fun st ->
        match st.decided with
        | Some true -> Mis.Dominator
        | Some false -> Mis.Dominatee
        | None -> assert false (* the dependency order is acyclic *))
      states
  in
  (roles, stats)
