module M = Netgraph.Metrics
module V = Netgraph.View

type row = {
  name : string;
  deg_avg : float;
  deg_max : int;
  len_avg : float option;
  len_max : float option;
  hop_avg : float option;
  hop_max : float option;
  edges : int;
}

let degree_row ~name g stretch =
  let d = M.degree_stats_v g in
  match stretch with
  | None ->
    {
      name;
      deg_avg = d.M.deg_avg;
      deg_max = d.M.deg_max;
      len_avg = None;
      len_max = None;
      hop_avg = None;
      hop_max = None;
      edges = d.M.edges;
    }
  | Some (s : M.stretch) ->
    {
      name;
      deg_avg = d.M.deg_avg;
      deg_max = d.M.deg_max;
      len_avg = Some s.M.len_avg;
      len_max = Some s.M.len_max;
      hop_avg = Some s.M.hop_avg;
      hop_max = Some s.M.hop_max;
      edges = d.M.edges;
    }

let row_of ?jobs (bb : Backbone.t) ~name g spans =
  let jobs = Option.value jobs ~default:bb.Backbone.jobs in
  let stretch =
    match spans with
    | `Backbone_only -> None
    | `Spans_all ->
      Some
        (M.stretch_factors_v ~jobs
           ~base:(V.of_graph bb.Backbone.udg)
           ~sub:(V.of_graph g) bb.Backbone.points)
  in
  degree_row ~name (V.of_graph g) stretch

(* Shared driver: one fused pass over named views — the base's
   shortest-path trees are computed once and amortized over every
   spanning structure in the table. *)
let rows_of_views ~jobs ~base ~points entries =
  let spanning =
    List.filter_map
      (fun (name, v, spans) ->
        if spans = `Spans_all then Some (name, v) else None)
      entries
  in
  let stretch_by_name = M.combined_stretch_v ~jobs ~base points spanning in
  List.map
    (fun (name, v, spans) ->
      let stretch =
        match spans with
        | `Backbone_only -> None
        | `Spans_all -> Some (List.assoc name stretch_by_name).M.c_stretch
      in
      degree_row ~name v stretch)
    entries

let rows ?jobs bb =
  let jobs = Option.value jobs ~default:bb.Backbone.jobs in
  rows_of_views ~jobs
    ~base:(V.of_graph bb.Backbone.udg)
    ~points:bb.Backbone.points
    (List.map
       (fun (name, g, spans) -> (name, V.of_graph g, spans))
       (Backbone.structures bb))

(* The same table measured directly on a sharded snapshot: every
   structure is already a sealed CSR, so nothing is thawed.  Rows
   cover the structures the snapshot carries (the UDG and the
   backbone family; the RNG/GG/LDel baselines are not part of the
   sharded pipeline). *)
let snapshot_rows ?(jobs = 1) (s : Shard.snapshot) =
  rows_of_views ~jobs ~base:(V.of_csr s.Shard.udg) ~points:s.Shard.points
    [
      ("UDG", V.of_csr s.Shard.udg, `Spans_all);
      ("CDS", V.of_csr s.Shard.cds, `Backbone_only);
      ("CDS'", V.of_csr s.Shard.cds', `Spans_all);
      ("ICDS", V.of_csr s.Shard.icds, `Backbone_only);
      ("ICDS'", V.of_csr s.Shard.icds', `Spans_all);
      ("LDel(ICDS)", V.of_csr s.Shard.pldel, `Backbone_only);
      ("LDel(ICDS')", V.of_csr s.Shard.pldel', `Spans_all);
    ]

type agg = {
  a_name : string;
  a_deg_avg : float;
  a_deg_max : int;
  a_len_avg : float option;
  a_len_max : float option;
  a_hop_avg : float option;
  a_hop_max : float option;
  a_edges : float;
}

let aggregate instances =
  match instances with
  | [] -> []
  | first :: _ ->
    let k = float_of_int (List.length instances) in
    List.mapi
      (fun i (proto : row) ->
        let col = List.map (fun rows -> List.nth rows i) instances in
        let avg f = List.fold_left (fun acc r -> acc +. f r) 0. col /. k in
        let avg_opt f =
          if List.for_all (fun r -> f r <> None) col then
            Some (avg (fun r -> Option.get (f r)))
          else None
        in
        let max_opt f =
          if List.for_all (fun r -> f r <> None) col then
            Some
              (List.fold_left
                 (fun acc r -> Float.max acc (Option.get (f r)))
                 neg_infinity col)
          else None
        in
        {
          a_name = proto.name;
          a_deg_avg = avg (fun r -> r.deg_avg);
          a_deg_max = List.fold_left (fun acc r -> max acc r.deg_max) 0 col;
          a_len_avg = avg_opt (fun r -> r.len_avg);
          a_len_max = max_opt (fun r -> r.len_max);
          a_hop_avg = avg_opt (fun r -> r.hop_avg);
          a_hop_max = max_opt (fun r -> r.hop_max);
          a_edges = avg (fun r -> float_of_int r.edges);
        })
      first

let pp_opt fmt = function
  | None -> Format.fprintf fmt "%8s" "-"
  | Some v -> Format.fprintf fmt "%8.2f" v

let pp_row fmt r =
  Format.fprintf fmt "%-13s %8.2f %8d %a %a %a %a %8d" r.name r.deg_avg
    r.deg_max pp_opt r.len_avg pp_opt r.len_max pp_opt r.hop_avg pp_opt
    r.hop_max r.edges

let pp_agg_header fmt () =
  Format.fprintf fmt "%-13s %8s %8s %8s %8s %8s %8s %8s" "structure" "deg_avg"
    "deg_max" "len_avg" "len_max" "hop_avg" "hop_max" "edges"

let pp_agg fmt a =
  Format.fprintf fmt "%-13s %8.2f %8d %a %a %a %a %8.1f" a.a_name a.a_deg_avg
    a.a_deg_max pp_opt a.a_len_avg pp_opt a.a_len_max pp_opt a.a_hop_avg
    pp_opt a.a_hop_max a.a_edges
