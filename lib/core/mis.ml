module G = Netgraph.Graph

type role = Dominator | Dominatee

type color = White | Black (* dominator *) | Gray (* dominatee *)

let compute_with_priority g ~priority =
  let n = G.node_count g in
  let color = Array.make n White in
  let better u v =
    let pu = priority u and pv = priority v in
    pu < pv || (pu = pv && u < v)
  in
  (* Iterate the rule to fixpoint.  Each pass blackens every white
     node that currently beats all of its white neighbors, then grays
     their white neighbors; at least one white node (the global
     minimum among whites) is decided per pass, so this terminates. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let winners = ref [] in
    for u = 0 to n - 1 do
      if
        color.(u) = White
        && List.for_all
             (fun v -> color.(v) <> White || better u v)
             (G.neighbors g u)
      then winners := u :: !winners
    done;
    List.iter
      (fun u ->
        color.(u) <- Black;
        changed := true;
        List.iter
          (fun v -> if color.(v) = White then color.(v) <- Gray)
          (G.neighbors g u))
      !winners
  done;
  Array.map
    (function
      | Black -> Dominator
      | Gray -> Dominatee
      | White -> assert false (* fixpoint colors every node *))
    color

let compute g = compute_with_priority g ~priority:(fun u -> u)

(* CSR-native, tile-sharded variant of the same fixpoint.  Each pass
   is split into two barrier-separated phases: every tile first elects
   its winners against the colors as they stood at the start of the
   pass (reads only), then every tile applies its winners (blacken,
   gray white neighbors).  Winners of one pass are pairwise
   non-adjacent — [better] is a strict total order, so two adjacent
   white nodes cannot both beat each other — which makes the apply
   phase conflict-free up to idempotent gray writes: a neighbor
   touched from two tiles is written the same value.  The fixpoint is
   therefore bit-identical to [compute_with_priority] for any tiling
   and any job count. *)
let compute_csr ?pool ?owners ?(priority = fun u -> u) csr =
  let module C = Netgraph.Csr in
  let n = C.node_count csr in
  let owners =
    match owners with
    | Some o -> o
    | None -> [| Array.init n (fun u -> u) |]
  in
  let ntiles = Array.length owners in
  (* 0 = white, 1 = black, 2 = gray *)
  let color = Array.make (max 1 n) 0 in
  let winner = Array.make (max 1 n) false in
  let wins = Array.make (max 1 ntiles) 0 in
  let better u v =
    let pu = priority u and pv = priority v in
    pu < pv || (pu = pv && u < v)
  in
  let for_tiles body =
    match pool with
    | Some p -> Netgraph.Pool.parallel_for p ~n:ntiles (fun () -> body)
    | None ->
      for t = 0 to ntiles - 1 do
        body t
      done
  in
  let compute_tile t =
    let w = ref 0 in
    Array.iter
      (fun u ->
        if color.(u) = 0 then begin
          let ok = ref true in
          C.iter_neighbors csr u (fun v ->
              if !ok && color.(v) = 0 && not (better u v) then ok := false);
          if !ok then begin
            winner.(u) <- true;
            incr w
          end
        end)
      owners.(t);
    wins.(t) <- !w
  in
  let apply_tile t =
    Array.iter
      (fun u ->
        if winner.(u) then begin
          winner.(u) <- false;
          color.(u) <- 1;
          C.iter_neighbors csr u (fun v ->
              if color.(v) = 0 then color.(v) <- 2)
        end)
      owners.(t)
  in
  Obs.quiesced (fun () ->
      let progress = ref true in
      while !progress do
        for_tiles compute_tile;
        if Array.for_all (fun w -> w = 0) wins then progress := false
        else for_tiles apply_tile
      done);
  Array.init n (fun u ->
      match color.(u) with
      | 1 -> Dominator
      | 2 -> Dominatee
      | _ -> assert false (* fixpoint colors every node *))

let dominators roles =
  let acc = ref [] in
  Array.iteri (fun u r -> if r = Dominator then acc := u :: !acc) roles;
  List.rev !acc

let dominators_of g roles u =
  if roles.(u) = Dominator then []
  else List.filter (fun v -> roles.(v) = Dominator) (G.neighbors g u)

let two_hop_dominators g roles u =
  let one_hop = G.neighbors g u in
  let at_two = Hashtbl.create 16 in
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          if w <> u && (not (G.has_edge g u w)) && roles.(w) = Dominator then
            Hashtbl.replace at_two w ())
        (G.neighbors g v))
    one_hop;
  List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) at_two [])

let is_independent g roles =
  G.fold_edges g
    (fun acc u v -> acc && not (roles.(u) = Dominator && roles.(v) = Dominator))
    true

let is_dominating g roles =
  let n = G.node_count g in
  let ok = ref true in
  for u = 0 to n - 1 do
    if
      roles.(u) = Dominatee
      && not (List.exists (fun v -> roles.(v) = Dominator) (G.neighbors g u))
    then ok := false
  done;
  !ok

(* For a maximal independent set the two conditions coincide, but the
   test-suite asserts them separately. *)
let is_maximal = is_dominating
