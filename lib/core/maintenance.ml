module G = Netgraph.Graph
module P = Geometry.Point

let c_refreshes = Obs.counter "maintenance.refreshes"
let c_rebuilds = Obs.counter "maintenance.rebuilds"
let c_links_broken = Obs.counter "maintenance.links_broken"
let c_role_changes = Obs.counter "maintenance.role_changes"
let c_backbone_changes = Obs.counter "maintenance.backbone_changes"
let c_edge_changes = Obs.counter "maintenance.edge_changes"
let g_backbone_nodes = Obs.gauge "maintenance.backbone_nodes"
let g_backbone_edges = Obs.gauge "maintenance.backbone_edges"
let g_last_broken = Obs.gauge "maintenance.last_links_broken"

type stats = {
  role_changes : int;
  backbone_changes : int;
  edge_changes : int;
  links_broken : int;
}

let flush_stats_to_obs s =
  if !Obs.on then begin
    Obs.add c_links_broken s.links_broken;
    Obs.add c_role_changes s.role_changes;
    Obs.add c_backbone_changes s.backbone_changes;
    Obs.add c_edge_changes s.edge_changes;
    Obs.set_gauge g_last_broken (float_of_int s.links_broken)
  end

let flush_gauges (next : Backbone.t) =
  if !Obs.on then begin
    let nodes = ref 0 in
    Array.iter (fun b -> if b then incr nodes) next.Backbone.cds.Cds.backbone;
    Obs.set_gauge g_backbone_nodes (float_of_int !nodes);
    Obs.set_gauge g_backbone_edges
      (float_of_int (G.edge_count next.Backbone.ldel_icds'))
  end

let needs_refresh (prev : Backbone.t) positions =
  let broken = ref 0 in
  G.iter_edges prev.Backbone.ldel_icds' (fun u v ->
      if P.dist positions.(u) positions.(v) > prev.Backbone.radius then
        incr broken);
  !broken

let diff_stats (prev : Backbone.t) (next : Backbone.t) ~links_broken =
  let n = Array.length prev.Backbone.points in
  let role_changes = ref 0 and backbone_changes = ref 0 in
  for u = 0 to n - 1 do
    if
      prev.Backbone.cds.Cds.roles.(u) <> next.Backbone.cds.Cds.roles.(u)
    then incr role_changes;
    if prev.Backbone.cds.Cds.backbone.(u) <> next.Backbone.cds.Cds.backbone.(u)
    then incr backbone_changes
  done;
  let edge_changes =
    G.fold_edges prev.Backbone.ldel_icds'
      (fun acc u v ->
        if G.has_edge next.Backbone.ldel_icds' u v then acc else acc + 1)
      0
    + G.fold_edges next.Backbone.ldel_icds'
        (fun acc u v ->
          if G.has_edge prev.Backbone.ldel_icds' u v then acc else acc + 1)
        0
  in
  {
    role_changes = !role_changes;
    backbone_changes = !backbone_changes;
    edge_changes;
    links_broken;
  }

let refresh (prev : Backbone.t) positions =
  Obs.span "maintenance.refresh" @@ fun () ->
  Obs.incr c_refreshes;
  let links_broken = needs_refresh prev positions in
  (* incumbent dominators get priority class 0, everyone else 1; ties
     still break by id, so this remains a greedy MIS under a total
     order and inherits every validity property *)
  let incumbent u =
    if prev.Backbone.cds.Cds.roles.(u) = Mis.Dominator then 0 else 1
  in
  let next =
    Backbone.build ~priority:incumbent positions ~radius:prev.Backbone.radius
  in
  let stats = diff_stats prev next ~links_broken in
  flush_stats_to_obs stats;
  flush_gauges next;
  (next, stats)

let rebuild (prev : Backbone.t) positions =
  Obs.span "maintenance.rebuild" @@ fun () ->
  Obs.incr c_rebuilds;
  let links_broken = needs_refresh prev positions in
  let next = Backbone.build positions ~radius:prev.Backbone.radius in
  let stats = diff_stats prev next ~links_broken in
  flush_stats_to_obs stats;
  flush_gauges next;
  (next, stats)
