(** Topology quality rows — the measurements of the paper's Table I.

    One row per structure: average/maximum node degree, average/maximum
    length and hop stretch factors relative to the UDG (only for
    structures that span all nodes; backbone-only structures get [None]
    as in the paper's "-" cells), and the edge count. *)

type row = {
  name : string;
  deg_avg : float;
  deg_max : int;
  len_avg : float option;
  len_max : float option;
  hop_avg : float option;
  hop_max : float option;
  edges : int;
}

(** [rows backbone] measures every structure of
    {!Backbone.structures} on one instance.  All spanning structures
    share one fused stretch pass (the UDG shortest-path trees are
    computed once — see {!Netgraph.Metrics.combined_stretch}), fanned
    across [jobs] worker domains (default [backbone.jobs]). *)
val rows : ?jobs:int -> Backbone.t -> row list

(** [snapshot_rows snapshot] measures the structures of a sharded
    {!Shard.snapshot} — the UDG plus the backbone family — directly
    on the sealed CSRs, without thawing any mutable graph.  Spanning
    structures share one fused stretch pass as in {!rows}; [jobs]
    defaults to 1. *)
val snapshot_rows : ?jobs:int -> Shard.snapshot -> row list

(** [row_of backbone ~name g spans] measures a single graph.
    [jobs] defaults to [backbone.jobs]. *)
val row_of :
  ?jobs:int ->
  Backbone.t ->
  name:string ->
  Netgraph.Graph.t ->
  [ `Spans_all | `Backbone_only ] ->
  row

(** Aggregate rows of the same structure across instances: averages
    are averaged, maxima are maximized, edges averaged (reported to
    one decimal as a float in [pp_agg]). *)
type agg = {
  a_name : string;
  a_deg_avg : float;
  a_deg_max : int;
  a_len_avg : float option;
  a_len_max : float option;
  a_hop_avg : float option;
  a_hop_max : float option;
  a_edges : float;
}

val aggregate : row list list -> agg list

val pp_row : Format.formatter -> row -> unit
val pp_agg_header : Format.formatter -> unit -> unit
val pp_agg : Format.formatter -> agg -> unit
