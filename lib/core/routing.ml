module G = Netgraph.Graph
module V = Netgraph.View
module P = Geometry.Point

(* Routers read the topology through {!Netgraph.View}, so the same
   code serves the legacy mutable graphs and sealed CSR snapshots;
   the [_v] forms are thin wrappers over the [_into] kernels below,
   the [Graph.t] entry points wrap those (neighbor iteration is
   ascending in both representations, so routes are identical).

   The kernels route into a caller-owned {!Scratch} and are written
   for the serve engine's steady state: no per-query heap allocation.
   Cycle guards are an epoch-stamped mark array (bumping the stamp
   invalidates every mark in O(1), replacing the per-query Hashtbl),
   paths land in a reusable int buffer, float temporaries live in a
   pre-sized float array, and the neighbor scans are closures created
   once per scratch that read their state from scratch registers.
   The scan bodies reproduce the historical fold semantics (same
   comparison structure, same float expression order as Point's own
   definitions), so routes are bit-identical to the pre-scratch
   implementation — including NaN corner cases from coincident
   points, where "replace best" conditions are spelled as the
   negation of the original "keep best" guards. *)

let max_steps g = (4 * V.edge_count g) + 16

(* Per-scheme route/delivery counters and a shared hop distribution.
   [hierarchical] drives [gfg] on the backbone, so a hierarchical
   route also charges one gfg route — counters count invocations. *)
let d_hops = Obs.dist "routing.path_hops"
let c_gfg_steps = Obs.counter "routing.gfg.steps"

let instrumented name =
  let c_routes = Obs.counter ("routing." ^ name ^ ".routes")
  and c_delivered = Obs.counter ("routing." ^ name ^ ".delivered") in
  fun result ->
    Obs.incr c_routes;
    (match result with
    | Some path ->
      Obs.incr c_delivered;
      Obs.observe d_hops (float_of_int (max 0 (List.length path - 1)))
    | None -> ());
    result

let obs_greedy = instrumented "greedy"
let obs_compass = instrumented "compass"
let obs_mfr = instrumented "mfr"
let obs_nfp = instrumented "nfp"
let obs_gfg = instrumented "gfg"
let obs_hierarchical = instrumented "hierarchical"

(* Float registers; a flat array so stores stay unboxed:
   0 — distance from the current node to dst (greedy scans)
   1 — key of the best candidate so far (distance/angle/progress/rel)
   2 — reference angle for the ccw scan
   3 — perimeter entry distance to dst (greedy resumes below it)
   4 — best crossing distance of the entry->dst segment so far
   5, 6 — the toward-dst vector at the current node
   7 — its norm *)
type scratch = {
  mutable mark : int array;  (* mark.(u) = stamp  <=>  visited this query *)
  mutable stamp : int;
  mutable path : int array;
  mutable len : int;  (* nodes of the last delivered path; 0 otherwise *)
  fl : float array;
  (* query registers, set by the kernels *)
  mutable g : V.t;
  mutable pts : P.t array;
  mutable dst : int;
  mutable cur : int;
  mutable best : int;  (* scan result, -1 = none *)
  mutable steps : int;
  mutable state : int;  (* 0 = routing, 1 = delivered, 2 = dropped *)
  mutable mode : int;  (* gfg header: 0 = greedy, 1 = perimeter *)
  mutable entry : P.t;  (* position where perimeter mode was entered *)
  mutable start_u : int;  (* first directed edge of the current face *)
  mutable start_w : int;
  mutable p_first : bool;  (* still on the starting edge of this face *)
  mutable prev : int;  (* previous node while in perimeter mode *)
  (* neighbor scans, created once per scratch (closing over it) *)
  mutable scan_closer : int -> unit;
  mutable scan_compass : int -> unit;
  mutable scan_mfr : int -> unit;
  mutable scan_nfp : int -> unit;
  mutable scan_ccw : int -> unit;
}

module Scratch = struct
  type t = scratch

  let nop (_ : int) = ()

  let create ?(n = 0) () =
    let sc =
      {
        mark = Array.make (max n 1) 0;
        stamp = 0;
        path = Array.make 16 0;
        len = 0;
        fl = Array.make 8 0.;
        g = V.of_graph (G.create 0);
        pts = [||];
        dst = 0;
        cur = 0;
        best = -1;
        steps = 0;
        state = 0;
        mode = 0;
        entry = P.origin;
        start_u = -1;
        start_w = -1;
        p_first = true;
        prev = -1;
        scan_closer = nop;
        scan_compass = nop;
        scan_mfr = nop;
        scan_nfp = nop;
        scan_ccw = nop;
      }
    in
    (* greedy: strictly closer to dst, minimal distance, smallest id
       among candidates scanned first wins (ascending iteration) *)
    sc.scan_closer <-
      (fun v ->
        let pv = sc.pts.(v) and pd = sc.pts.(sc.dst) in
        let dx = pv.P.x -. pd.P.x and dy = pv.P.y -. pd.P.y in
        let dv = sqrt ((dx *. dx) +. (dy *. dy)) in
        if sc.best >= 0 && sc.fl.(1) <= dv then ()
        else if dv < sc.fl.(0) then begin
          sc.best <- v;
          sc.fl.(1) <- dv
        end);
    (* compass: smallest unsigned angle between (u -> w) and (u -> dst) *)
    sc.scan_compass <-
      (fun w ->
        let pu = sc.pts.(sc.cur) and pw = sc.pts.(w) in
        let wx = pw.P.x -. pu.P.x and wy = pw.P.y -. pu.P.y in
        let d = (sc.fl.(5) *. wx) +. (sc.fl.(6) *. wy) in
        let nw = sqrt ((wx *. wx) +. (wy *. wy)) in
        let c = d /. (sc.fl.(7) *. nw) in
        let c = Float.max (-1.) (Float.min 1. c) in
        let s = acos c in
        if sc.best >= 0 && sc.fl.(1) <= s then ()
        else begin
          sc.best <- w;
          sc.fl.(1) <- s
        end);
    (* mfr: largest projection of the step onto the unit toward-vector *)
    sc.scan_mfr <-
      (fun v ->
        if sc.fl.(7) = 0. then ()
        else begin
          let pu = sc.pts.(sc.cur) and pv = sc.pts.(v) in
          let p =
            (((pv.P.x -. pu.P.x) *. sc.fl.(5))
            +. ((pv.P.y -. pu.P.y) *. sc.fl.(6)))
            /. sc.fl.(7)
          in
          if p <= 0. then ()
          else if sc.best >= 0 && sc.fl.(1) >= p then ()
          else begin
            sc.best <- v;
            sc.fl.(1) <- p
          end
        end);
    (* nfp: nearest neighbor with positive progress *)
    sc.scan_nfp <-
      (fun v ->
        let pu = sc.pts.(sc.cur) and pv = sc.pts.(v) in
        let p =
          if sc.fl.(7) = 0. then 0.
          else
            (((pv.P.x -. pu.P.x) *. sc.fl.(5))
            +. ((pv.P.y -. pu.P.y) *. sc.fl.(6)))
            /. sc.fl.(7)
        in
        if p <= 0. then ()
        else begin
          let dx = pu.P.x -. pv.P.x and dy = pu.P.y -. pv.P.y in
          let dv = sqrt ((dx *. dx) +. (dy *. dy)) in
          if sc.best >= 0 && sc.fl.(1) <= dv then ()
          else begin
            sc.best <- v;
            sc.fl.(1) <- dv
          end
        end);
    (* first edge counterclockwise from the reference angle fl.(2) *)
    sc.scan_ccw <-
      (fun w ->
        let pv = sc.pts.(sc.cur) and pw = sc.pts.(w) in
        let a = atan2 (pw.P.y -. pv.P.y) (pw.P.x -. pv.P.x) -. sc.fl.(2) in
        let r = if a <= 1e-13 then a +. (2. *. Float.pi) else a in
        if sc.best < 0 then begin
          sc.best <- w;
          sc.fl.(1) <- r
        end
        else if r < sc.fl.(1) then begin
          sc.best <- w;
          sc.fl.(1) <- r
        end);
    sc

  let ensure sc n = if n > Array.length sc.mark then sc.mark <- Array.make n 0

  let push sc u =
    let cap = Array.length sc.path in
    if sc.len >= cap then begin
      let bigger = Array.make (2 * cap) 0 in
      Array.blit sc.path 0 bigger 0 cap;
      sc.path <- bigger
    end;
    sc.path.(sc.len) <- u;
    sc.len <- sc.len + 1

  let path sc = sc.path
  let path_len sc = sc.len

  let path_list sc =
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (sc.path.(i) :: acc)
    in
    build (sc.len - 1) []
end

let in_range g u = u >= 0 && u < V.node_count g

let prepare sc g points ~dst =
  Scratch.ensure sc (V.node_count g);
  sc.g <- g;
  sc.pts <- points;
  sc.dst <- dst;
  sc.len <- 0

(* du into fl.(0), then the strictly-closer scan *)
let closer_scan sc u =
  let pu = sc.pts.(u) and pd = sc.pts.(sc.dst) in
  let dx = pu.P.x -. pd.P.x and dy = pu.P.y -. pd.P.y in
  sc.fl.(0) <- sqrt ((dx *. dx) +. (dy *. dy));
  sc.best <- -1;
  V.iter_neighbors sc.g u sc.scan_closer

let greedy_into sc g points ~src ~dst =
  if not (in_range g src && in_range g dst) then begin
    sc.len <- 0;
    -1
  end
  else begin
    prepare sc g points ~dst;
    sc.cur <- src;
    sc.steps <- max_steps g;
    sc.state <- 0;
    while sc.state = 0 do
      let u = sc.cur in
      if u = dst then begin
        Scratch.push sc u;
        sc.state <- 1
      end
      else if sc.steps <= 0 then sc.state <- 2
      else begin
        closer_scan sc u;
        if sc.best < 0 then sc.state <- 2
        else begin
          Scratch.push sc u;
          sc.cur <- sc.best;
          sc.steps <- sc.steps - 1
        end
      end
    done;
    if sc.state = 1 then sc.len - 1
    else begin
      sc.len <- 0;
      -1
    end
  end

(* toward-dst vector and norm at u, into fl.(5..7) *)
let toward_setup sc u =
  let pu = sc.pts.(u) and pd = sc.pts.(sc.dst) in
  let tx = pd.P.x -. pu.P.x and ty = pd.P.y -. pu.P.y in
  sc.fl.(5) <- tx;
  sc.fl.(6) <- ty;
  sc.fl.(7) <- sqrt ((tx *. tx) +. (ty *. ty))

(* The three classic localized forwarding rules differ only in how
   they score a neighbor; this factors the traversal (with the
   stamped visited guard, since compass/MFR can loop on some
   instances even where greedy cannot). *)
let directional_into sc g points ~src ~dst scan =
  if not (in_range g src && in_range g dst) then begin
    sc.len <- 0;
    -1
  end
  else begin
    prepare sc g points ~dst;
    sc.stamp <- sc.stamp + 1;
    sc.cur <- src;
    sc.steps <- max_steps g;
    sc.state <- 0;
    while sc.state = 0 do
      let u = sc.cur in
      if u = dst then begin
        Scratch.push sc u;
        sc.state <- 1
      end
      else if sc.steps <= 0 || sc.mark.(u) = sc.stamp then sc.state <- 2
      else begin
        sc.mark.(u) <- sc.stamp;
        if V.has_edge g u dst then begin
          Scratch.push sc u;
          sc.cur <- dst;
          sc.steps <- sc.steps - 1
        end
        else begin
          toward_setup sc u;
          sc.best <- -1;
          V.iter_neighbors g u scan;
          if sc.best < 0 then sc.state <- 2
          else begin
            Scratch.push sc u;
            sc.cur <- sc.best;
            sc.steps <- sc.steps - 1
          end
        end
      end
    done;
    if sc.state = 1 then sc.len - 1
    else begin
      sc.len <- 0;
      -1
    end
  end

let compass_into sc g points ~src ~dst =
  directional_into sc g points ~src ~dst sc.scan_compass

let mfr_into sc g points ~src ~dst =
  directional_into sc g points ~src ~dst sc.scan_mfr

let nfp_into sc g points ~src ~dst =
  directional_into sc g points ~src ~dst sc.scan_nfp

(* first edge counterclockwise from fl.(2) around u *)
let ccw_scan sc u =
  sc.best <- -1;
  V.iter_neighbors sc.g u sc.scan_ccw

(* pivot around [u] handling face changes, then forward along the
   settled edge.  Segment construction/intersection allocates, so a
   perimeter hop is not allocation-free — only the greedy steady
   state is; recovery is the rare path. *)
let rec advance_k sc u w =
  if (not sc.p_first) && u = sc.start_u && w = sc.start_w then sc.state <- 2
  else begin
    let pts = sc.pts in
    let seg_uw = Geometry.Segment.make pts.(u) pts.(w) in
    let seg_ed = Geometry.Segment.make sc.entry pts.(sc.dst) in
    let cross =
      match Geometry.Segment.intersection_point seg_uw seg_ed with
      | Some p ->
        let d = P.dist p pts.(sc.dst) in
        if d < sc.fl.(4) -. 1e-12 then d else nan
      | None -> nan
    in
    if Float.is_nan cross then begin
      sc.p_first <- false;
      sc.prev <- u;
      Scratch.push sc u;
      sc.cur <- w;
      sc.mode <- 1;
      sc.steps <- sc.steps - 1
    end
    else begin
      let pu = pts.(u) and pw = pts.(w) in
      sc.fl.(2) <- atan2 (pw.P.y -. pu.P.y) (pw.P.x -. pu.P.x);
      ccw_scan sc u;
      if sc.best < 0 then sc.state <- 2
      else begin
        let w' = sc.best in
        sc.fl.(4) <- cross;
        sc.start_u <- u;
        sc.start_w <- w';
        sc.p_first <- true;
        advance_k sc u w'
      end
    end
  end

let enter_perimeter_k sc u =
  let pu = sc.pts.(u) and pd = sc.pts.(sc.dst) in
  sc.fl.(2) <- atan2 (pd.P.y -. pu.P.y) (pd.P.x -. pu.P.x);
  ccw_scan sc u;
  if sc.best < 0 then sc.state <- 2
  else begin
    let w = sc.best in
    sc.entry <- pu;
    let dx = pu.P.x -. pd.P.x and dy = pu.P.y -. pd.P.y in
    let d = sqrt ((dx *. dx) +. (dy *. dy)) in
    sc.fl.(3) <- d;
    sc.fl.(4) <- d;
    sc.start_u <- u;
    sc.start_w <- w;
    sc.p_first <- true;
    advance_k sc u w
  end

let gfg_greedy_step sc u =
  closer_scan sc u;
  if sc.best >= 0 then begin
    Scratch.push sc u;
    sc.cur <- sc.best;
    sc.mode <- 0;
    sc.steps <- sc.steps - 1
  end
  else enter_perimeter_k sc u

let gfg_into sc g points ~src ~dst =
  if not (in_range g src && in_range g dst) then begin
    sc.len <- 0;
    -1
  end
  else begin
    prepare sc g points ~dst;
    if src = dst then begin
      Scratch.push sc src;
      0
    end
    else begin
      sc.cur <- src;
      sc.steps <- max_steps g;
      sc.state <- 0;
      sc.mode <- 0;
      sc.prev <- -1;
      while sc.state = 0 do
        if sc.steps <= 0 then sc.state <- 2
        else begin
          Obs.incr c_gfg_steps;
          let u = sc.cur in
          if u = dst then begin
            Scratch.push sc u;
            sc.state <- 1
          end
          else if sc.mode = 0 then gfg_greedy_step sc u
          else begin
            let pts = sc.pts in
            let pu = pts.(u) and pd = pts.(dst) in
            let dx = pu.P.x -. pd.P.x and dy = pu.P.y -. pd.P.y in
            let du = sqrt ((dx *. dx) +. (dy *. dy)) in
            if du < sc.fl.(3) then gfg_greedy_step sc u
            else begin
              let pp = pts.(sc.prev) in
              sc.fl.(2) <- atan2 (pp.P.y -. pu.P.y) (pp.P.x -. pu.P.x);
              ccw_scan sc u;
              if sc.best < 0 then sc.state <- 2
              else advance_k sc u sc.best
            end
          end
        end
      done;
      if sc.state = 1 then sc.len - 1
      else begin
        sc.len <- 0;
        -1
      end
    end
  end

(* [_v] wrappers: allocate-on-demand scratch, list extraction, obs *)

let fresh_or sc g =
  match sc with
  | Some sc -> sc
  | None -> Scratch.create ~n:(V.node_count g) ()

let extract sc code = if code < 0 then None else Some (Scratch.path_list sc)

let greedy_v ?scratch g points ~src ~dst =
  let sc = fresh_or scratch g in
  obs_greedy (extract sc (greedy_into sc g points ~src ~dst))

let compass_v ?scratch g points ~src ~dst =
  let sc = fresh_or scratch g in
  obs_compass (extract sc (compass_into sc g points ~src ~dst))

let mfr_v ?scratch g points ~src ~dst =
  let sc = fresh_or scratch g in
  obs_mfr (extract sc (mfr_into sc g points ~src ~dst))

let nfp_v ?scratch g points ~src ~dst =
  let sc = fresh_or scratch g in
  obs_nfp (extract sc (nfp_into sc g points ~src ~dst))

let gfg_v ?scratch g points ~src ~dst =
  let sc = fresh_or scratch g in
  obs_gfg (extract sc (gfg_into sc g points ~src ~dst))

(* Perimeter-mode machinery of the per-node forwarding automaton.
   [gfg_step_v] drives the packet-level protocol in [Packetsim]; the
   [gfg_into] kernel above replicates the same decisions over scratch
   registers, and the packetsim tests assert path-level and
   packet-level GPSR agree exactly — which now doubles as the
   kernel-vs-automaton equivalence check. *)
let next_ccw g points v ~from_angle =
  let nbrs = V.neighbors g v in
  let angle w = P.angle_of (P.sub points.(w) points.(v)) in
  let rel w =
    let a = angle w -. from_angle in
    let a = if a <= 1e-13 then a +. (2. *. Float.pi) else a in
    a
  in
  match nbrs with
  | [] -> None
  | _ ->
    Some
      (List.fold_left
         (fun best w -> if rel w < rel best then w else best)
         (List.hd nbrs) nbrs)

type perimeter = {
  p_entry : P.t;  (* position where perimeter mode was entered *)
  p_entry_dist : float;  (* distance to dst at entry: greedy resumes below it *)
  p_best_cross : float;  (* closest crossing of the entry->dst segment so far *)
  p_start : int * int;  (* first directed edge of the current face *)
  p_first : bool;  (* still on the starting edge of this face *)
}

type header = Greedy | Perimeter of perimeter * int  (* previous node *)

type decision = Deliver | Forward of int * header | Drop

let closer_neighbor g points ~dst u =
  let du = P.dist points.(u) points.(dst) in
  List.fold_left
    (fun acc v ->
      let dv = P.dist points.(v) points.(dst) in
      match acc with
      | Some (_, dbest) when dbest <= dv -> acc
      | _ -> if dv < du then Some (v, dv) else acc)
    None (V.neighbors g u)
  |> Option.map fst

(* pivot around [u] handling face changes, then forward along the
   settled edge *)
let rec advance g points ~dst u st w =
  if (not st.p_first) && (u, w) = st.p_start then Drop
  else
    let seg_uw = Geometry.Segment.make points.(u) points.(w) in
    let seg_ed = Geometry.Segment.make st.p_entry points.(dst) in
    let crossing =
      match Geometry.Segment.intersection_point seg_uw seg_ed with
      | Some p ->
        let d = P.dist p points.(dst) in
        if d < st.p_best_cross -. 1e-12 then Some d else None
      | None -> None
    in
    match crossing with
    | Some d -> begin
      let a = P.angle_of (P.sub points.(w) points.(u)) in
      match next_ccw g points u ~from_angle:a with
      | None -> Drop
      | Some w' ->
        advance g points ~dst u
          { st with p_best_cross = d; p_start = (u, w'); p_first = true }
          w'
    end
    | None -> Forward (w, Perimeter ({ st with p_first = false }, u))

let gfg_step_v g points ~dst u header =
  Obs.incr c_gfg_steps;
  if u = dst then Deliver
  else
    let enter_perimeter () =
      let toward = P.angle_of (P.sub points.(dst) points.(u)) in
      match next_ccw g points u ~from_angle:toward with
      | None -> Drop
      | Some w ->
        let entry = points.(u) in
        let st =
          {
            p_entry = entry;
            p_entry_dist = P.dist entry points.(dst);
            p_best_cross = P.dist entry points.(dst);
            p_start = (u, w);
            p_first = true;
          }
        in
        advance g points ~dst u st w
    in
    let greedy_step () =
      match closer_neighbor g points ~dst u with
      | Some v -> Forward (v, Greedy)
      | None -> enter_perimeter ()
    in
    match header with
    | Greedy -> greedy_step ()
    | Perimeter (st, prev) ->
      if P.dist points.(u) points.(dst) < st.p_entry_dist then greedy_step ()
      else begin
        let a = P.angle_of (P.sub points.(prev) points.(u)) in
        match next_ccw g points u ~from_angle:a with
        | None -> Drop
        | Some w -> advance g points ~dst u st w
      end

let hierarchical (bb : Backbone.t) ~src ~dst =
  obs_hierarchical
    (let udg = bb.Backbone.udg in
     if src = dst then Some [ src ]
     else if G.has_edge udg src dst then Some [ src; dst ]
     else
       let cds = bb.Backbone.cds in
       let enter = Cds.dominator_of cds udg src in
       let exit = Cds.dominator_of cds udg dst in
       let backbone_path =
         if enter = exit then Some [ enter ]
         else
           (* perimeter mode runs on the sealed planar snapshot — the
              read-optimized twin of [ldel_icds_g], identical routes *)
           gfg_v
             (V.of_csr bb.Backbone.planar_csr)
             bb.Backbone.points ~src:enter ~dst:exit
       in
       match backbone_path with
       | None -> None
       | Some p ->
         let p = if enter = src then p else src :: p in
         let p = if exit = dst then p else p @ [ dst ] in
         Some p)

(* legacy Graph.t entry points *)
let greedy g = greedy_v (V.of_graph g)
let compass g = compass_v (V.of_graph g)
let mfr g = mfr_v (V.of_graph g)
let nfp g = nfp_v (V.of_graph g)
let gfg g = gfg_v (V.of_graph g)
let gfg_step g = gfg_step_v (V.of_graph g)

type evaluation = {
  pairs : int;
  delivered : int;
  avg_length_stretch : float;
  avg_hop_stretch : float;
}

let evaluate_v ~router ~base points ~pairs rng =
  Obs.span "routing.evaluate" @@ fun () ->
  let n = V.node_count base in
  let delivered = ref 0 in
  let len_sum = ref 0. and hop_sum = ref 0. and measured = ref 0 in
  let tried = ref 0 in
  let attempts = ref 0 in
  while !tried < pairs && !attempts < 100 * pairs do
    incr attempts;
    let src = Wireless.Rand.int rng n in
    let dst = Wireless.Rand.int rng n in
    if src <> dst then begin
      let hops = Netgraph.Traversal.bfs_v base src in
      if hops.(dst) <> max_int then begin
        incr tried;
        match router ~src ~dst with
        | None -> ()
        | Some path ->
          incr delivered;
          let sp = Netgraph.Traversal.dijkstra_v base points src in
          let plen = Netgraph.Traversal.path_length points path in
          if sp.(dst) > 0. then begin
            incr measured;
            len_sum := !len_sum +. (plen /. sp.(dst));
            hop_sum :=
              !hop_sum
              +. (float_of_int (Netgraph.Traversal.path_hops path)
                 /. float_of_int hops.(dst))
          end
      end
    end
  done;
  {
    pairs = !tried;
    delivered = !delivered;
    avg_length_stretch =
      (if !measured = 0 then 0. else !len_sum /. float_of_int !measured);
    avg_hop_stretch =
      (if !measured = 0 then 0. else !hop_sum /. float_of_int !measured);
  }

let evaluate ~router ~base = evaluate_v ~router ~base:(V.of_graph base)
