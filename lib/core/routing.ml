module G = Netgraph.Graph
module V = Netgraph.View
module P = Geometry.Point

(* Routers read the topology through {!Netgraph.View}, so the same
   code serves the legacy mutable graphs and sealed CSR snapshots;
   the [_v] forms are the primaries, the [Graph.t] entry points wrap
   them (neighbor iteration is ascending in both representations, so
   routes are identical). *)

let max_steps g = (4 * V.edge_count g) + 16

(* Per-scheme route/delivery counters and a shared hop distribution.
   [hierarchical] drives [gfg] on the backbone, so a hierarchical
   route also charges one gfg route — counters count invocations. *)
let d_hops = Obs.dist "routing.path_hops"
let c_gfg_steps = Obs.counter "routing.gfg.steps"

let instrumented name =
  let c_routes = Obs.counter ("routing." ^ name ^ ".routes")
  and c_delivered = Obs.counter ("routing." ^ name ^ ".delivered") in
  fun result ->
    Obs.incr c_routes;
    (match result with
    | Some path ->
      Obs.incr c_delivered;
      Obs.observe d_hops (float_of_int (max 0 (List.length path - 1)))
    | None -> ());
    result

let obs_greedy = instrumented "greedy"
let obs_compass = instrumented "compass"
let obs_mfr = instrumented "mfr"
let obs_nfp = instrumented "nfp"
let obs_gfg = instrumented "gfg"
let obs_hierarchical = instrumented "hierarchical"

let greedy_v g points ~src ~dst =
  let rec go path u steps =
    if u = dst then Some (List.rev (u :: path))
    else if steps <= 0 then None
    else
      let du = P.dist points.(u) points.(dst) in
      let best =
        List.fold_left
          (fun acc v ->
            let dv = P.dist points.(v) points.(dst) in
            match acc with
            | Some (_, dbest) when dbest <= dv -> acc
            | _ -> if dv < du then Some (v, dv) else acc)
          None (V.neighbors g u)
      in
      match best with
      | Some (v, _) -> go (u :: path) v (steps - 1)
      | None -> None
  in
  obs_greedy (go [] src (max_steps g))

(* The three classic localized forwarding rules differ only in how
   they score a neighbor; [directional_route] factors the traversal
   (with a visited-set guard, since compass/MFR can loop on some
   instances even where greedy cannot). *)
let directional_route g ~src ~dst ~choose =
  let visited = Hashtbl.create 16 in
  let rec go path u steps =
    if u = dst then Some (List.rev (u :: path))
    else if steps <= 0 || Hashtbl.mem visited u then None
    else begin
      Hashtbl.add visited u ();
      match choose u with
      | Some v -> go (u :: path) v (steps - 1)
      | None -> None
    end
  in
  go [] src (max_steps g)

let compass_v g points ~src ~dst =
  let d = points.(dst) in
  let choose u =
    if V.has_edge g u dst then Some dst
    else
      let toward = P.sub d points.(u) in
      List.fold_left
        (fun best v ->
          let score w =
            (* unsigned angle between (u -> w) and (u -> dst) *)
            let vw = P.sub points.(w) points.(u) in
            let c = P.dot toward vw /. (P.norm toward *. P.norm vw) in
            let c = Float.max (-1.) (Float.min 1. c) in
            acos c
          in
          match best with
          | Some b when score b <= score v -> best
          | _ -> Some v)
        None (V.neighbors g u)
  in
  obs_compass (directional_route g ~src ~dst ~choose)

let progress points u v dst =
  (* projection of the step u -> v onto the unit vector toward dst *)
  let toward = P.sub points.(dst) points.(u) in
  let n = P.norm toward in
  if n = 0. then 0. else P.dot (P.sub points.(v) points.(u)) toward /. n

let mfr_v g points ~src ~dst =
  let choose u =
    if V.has_edge g u dst then Some dst
    else
      List.fold_left
        (fun best v ->
          let p = progress points u v dst in
          if p <= 0. then best
          else
            match best with
            | Some (_, pb) when pb >= p -> best
            | _ -> Some (v, p))
        None (V.neighbors g u)
      |> Option.map fst
  in
  obs_mfr (directional_route g ~src ~dst ~choose)

let nfp_v g points ~src ~dst =
  let choose u =
    if V.has_edge g u dst then Some dst
    else
      List.fold_left
        (fun best v ->
          if progress points u v dst <= 0. then best
          else
            let dv = P.dist points.(u) points.(v) in
            match best with
            | Some (_, db) when db <= dv -> best
            | _ -> Some (v, dv))
        None (V.neighbors g u)
      |> Option.map fst
  in
  obs_nfp (directional_route g ~src ~dst ~choose)

(* Perimeter-mode machinery: neighbors ordered by angle let us apply
   the right-hand rule — after arriving at [v] over edge (v, prev),
   the next edge is the first one counterclockwise from (v, prev). *)
let next_ccw g points v ~from_angle =
  let nbrs = V.neighbors g v in
  let angle w = P.angle_of (P.sub points.(w) points.(v)) in
  let rel w =
    let a = angle w -. from_angle in
    let a = if a <= 1e-13 then a +. (2. *. Float.pi) else a in
    a
  in
  match nbrs with
  | [] -> None
  | _ ->
    Some
      (List.fold_left
         (fun best w -> if rel w < rel best then w else best)
         (List.hd nbrs) nbrs)

(* GFG as a pure per-node forwarding automaton.  The packet header
   carries the mode; every decision uses only the current node's
   neighbor positions and the destination's position, so the same
   [step] drives both the centralized route computation below and the
   packet-level protocol in [Packetsim]. *)
type perimeter = {
  p_entry : P.t;  (* position where perimeter mode was entered *)
  p_entry_dist : float;  (* distance to dst at entry: greedy resumes below it *)
  p_best_cross : float;  (* closest crossing of the entry->dst segment so far *)
  p_start : int * int;  (* first directed edge of the current face *)
  p_first : bool;  (* still on the starting edge of this face *)
}

type header = Greedy | Perimeter of perimeter * int  (* previous node *)

type decision = Deliver | Forward of int * header | Drop

let closer_neighbor g points ~dst u =
  let du = P.dist points.(u) points.(dst) in
  List.fold_left
    (fun acc v ->
      let dv = P.dist points.(v) points.(dst) in
      match acc with
      | Some (_, dbest) when dbest <= dv -> acc
      | _ -> if dv < du then Some (v, dv) else acc)
    None (V.neighbors g u)
  |> Option.map fst

(* pivot around [u] handling face changes, then forward along the
   settled edge *)
let rec advance g points ~dst u st w =
  if (not st.p_first) && (u, w) = st.p_start then Drop
  else
    let seg_uw = Geometry.Segment.make points.(u) points.(w) in
    let seg_ed = Geometry.Segment.make st.p_entry points.(dst) in
    let crossing =
      match Geometry.Segment.intersection_point seg_uw seg_ed with
      | Some p ->
        let d = P.dist p points.(dst) in
        if d < st.p_best_cross -. 1e-12 then Some d else None
      | None -> None
    in
    match crossing with
    | Some d -> begin
      let a = P.angle_of (P.sub points.(w) points.(u)) in
      match next_ccw g points u ~from_angle:a with
      | None -> Drop
      | Some w' ->
        advance g points ~dst u
          { st with p_best_cross = d; p_start = (u, w'); p_first = true }
          w'
    end
    | None -> Forward (w, Perimeter ({ st with p_first = false }, u))

let gfg_step_v g points ~dst u header =
  Obs.incr c_gfg_steps;
  if u = dst then Deliver
  else
    let enter_perimeter () =
      let toward = P.angle_of (P.sub points.(dst) points.(u)) in
      match next_ccw g points u ~from_angle:toward with
      | None -> Drop
      | Some w ->
        let entry = points.(u) in
        let st =
          {
            p_entry = entry;
            p_entry_dist = P.dist entry points.(dst);
            p_best_cross = P.dist entry points.(dst);
            p_start = (u, w);
            p_first = true;
          }
        in
        advance g points ~dst u st w
    in
    let greedy_step () =
      match closer_neighbor g points ~dst u with
      | Some v -> Forward (v, Greedy)
      | None -> enter_perimeter ()
    in
    match header with
    | Greedy -> greedy_step ()
    | Perimeter (st, prev) ->
      if P.dist points.(u) points.(dst) < st.p_entry_dist then greedy_step ()
      else begin
        let a = P.angle_of (P.sub points.(prev) points.(u)) in
        match next_ccw g points u ~from_angle:a with
        | None -> Drop
        | Some w -> advance g points ~dst u st w
      end

let gfg_v g points ~src ~dst =
  let rec go path u header steps =
    if steps <= 0 then None
    else
      match gfg_step_v g points ~dst u header with
      | Deliver -> Some (List.rev (u :: path))
      | Drop -> None
      | Forward (v, header') -> go (u :: path) v header' (steps - 1)
  in
  obs_gfg
    (if src = dst then Some [ src ] else go [] src Greedy (max_steps g))

let hierarchical (bb : Backbone.t) ~src ~dst =
  obs_hierarchical
    (let udg = bb.Backbone.udg in
     if src = dst then Some [ src ]
     else if G.has_edge udg src dst then Some [ src; dst ]
     else
       let cds = bb.Backbone.cds in
       let enter = Cds.dominator_of cds udg src in
       let exit = Cds.dominator_of cds udg dst in
       let backbone_path =
         if enter = exit then Some [ enter ]
         else
           (* perimeter mode runs on the sealed planar snapshot — the
              read-optimized twin of [ldel_icds_g], identical routes *)
           gfg_v
             (V.of_csr bb.Backbone.planar_csr)
             bb.Backbone.points ~src:enter ~dst:exit
       in
       match backbone_path with
       | None -> None
       | Some p ->
         let p = if enter = src then p else src :: p in
         let p = if exit = dst then p else p @ [ dst ] in
         Some p)

(* legacy Graph.t entry points *)
let greedy g = greedy_v (V.of_graph g)
let compass g = compass_v (V.of_graph g)
let mfr g = mfr_v (V.of_graph g)
let nfp g = nfp_v (V.of_graph g)
let gfg g = gfg_v (V.of_graph g)
let gfg_step g = gfg_step_v (V.of_graph g)

type evaluation = {
  pairs : int;
  delivered : int;
  avg_length_stretch : float;
  avg_hop_stretch : float;
}

let evaluate_v ~router ~base points ~pairs rng =
  Obs.span "routing.evaluate" @@ fun () ->
  let n = V.node_count base in
  let delivered = ref 0 in
  let len_sum = ref 0. and hop_sum = ref 0. and measured = ref 0 in
  let tried = ref 0 in
  let attempts = ref 0 in
  while !tried < pairs && !attempts < 100 * pairs do
    incr attempts;
    let src = Wireless.Rand.int rng n in
    let dst = Wireless.Rand.int rng n in
    if src <> dst then begin
      let hops = Netgraph.Traversal.bfs_v base src in
      if hops.(dst) <> max_int then begin
        incr tried;
        match router ~src ~dst with
        | None -> ()
        | Some path ->
          incr delivered;
          let sp = Netgraph.Traversal.dijkstra_v base points src in
          let plen = Netgraph.Traversal.path_length points path in
          if sp.(dst) > 0. then begin
            incr measured;
            len_sum := !len_sum +. (plen /. sp.(dst));
            hop_sum :=
              !hop_sum
              +. (float_of_int (Netgraph.Traversal.path_hops path)
                 /. float_of_int hops.(dst))
          end
      end
    end
  done;
  {
    pairs = !tried;
    delivered = !delivered;
    avg_length_stretch =
      (if !measured = 0 then 0. else !len_sum /. float_of_int !measured);
    avg_hop_stretch =
      (if !measured = 0 then 0. else !hop_sum /. float_of_int !measured);
  }

let evaluate ~router ~base = evaluate_v ~router ~base:(V.of_graph base)
