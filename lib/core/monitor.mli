(** Invariant health monitoring for the live backbone.

    The paper's value proposition is a set of structural guarantees —
    geometric planarity of the routing structure, per-component
    connectivity, the ICDS degree bound (Lemma 8), CDS domination, and
    constant length/hop stretch (Lemmas 5–6) — all proved for a static
    deployment.  Under {!Mobility} + {!Maintenance} the backbone
    evolves for hundreds of rounds; this module re-checks those
    guarantees every round, as probes recorded into an
    {!Obs.Telemetry} time-series, and raises typed alerts when one is
    violated.

    Each {!observe} call evaluates the invariant probes below against
    a {!Backbone.t}, records every value under the given round,
    compares against the configured {!thresholds}, and for each
    violated probe appends a {!violation} and fires
    {!Obs.Trace.alert} (when tracing is armed) so failures correlate
    with the protocol event stream.

    Invariant probes (value vs. limit):
    - [crossings] — properly crossing edge pairs in the planar
      backbone [PLDel(ICDS)] (limit 0: Lemma 4 planarity);
    - [extra_components] — components of the routing structure
      [ICDS'+LDel] beyond those of the UDG (limit 0: the spanner must
      not disconnect anything the radio graph connects);
    - [domination_gaps] — dominatees with no adjacent dominator
      (limit 0: MIS domination);
    - [cds_extra_parts] — connected parts of the CDS restricted to
      backbone nodes beyond one per UDG component (limit 0: CDS
      connectivity);
    - [deg_max] — maximum ICDS degree (limit {!Bounds.icds_degree});
    - [len_stretch_max], [hop_stretch_max] — sampled stretch of the
      routing structure over the UDG via
      {!Netgraph.Metrics.sampled_stretch}; a disconnection surfaces
      as [infinity], which violates any finite limit.

    Runtime gauges (recorded, never gated): [backbone_nodes],
    [backbone_edges], [messages] (per-round delta of the distsim
    engines' sent counters), [gc_heap_words], [gc_minor_words]. *)

type thresholds = {
  max_crossings : float;
  max_extra_components : float;
  max_domination_gaps : float;
  max_cds_extra_parts : float;
  max_degree : float;
  max_len_stretch : float;
  max_hop_stretch : float;
}

(** Zero tolerance on the structural invariants;
    [max_degree = Bounds.icds_degree]; pragmatic operational limits on
    the sampled stretch factors (the lemmas' worst-case constants,
    loose by the paper's own admission, would never fire). *)
val default_thresholds : thresholds

type violation = {
  v_round : int;
  v_probe : string;
  v_value : float;
  v_limit : float;
  v_node : int;  (** witness node, [-1] when none is implicated *)
}

type t

(** [create ()] builds a monitor.  [stretch_sources] (default 8) is
    the number of sampled sources per round for the stretch probes;
    they are drawn afresh each round from [seed] (default [0L])
    combined with the round number, so a run is reproducible.  [jobs]
    (default 1) parallelizes the stretch probe. *)
val create :
  ?thresholds:thresholds ->
  ?stretch_sources:int ->
  ?seed:int64 ->
  ?jobs:int ->
  unit ->
  t

(** [observe t ~round bb] evaluates every probe against [bb], records
    them under [round], and returns the violations of this round (also
    appended to {!violations}).  [extra] values (e.g. maintenance
    deltas) are recorded into the telemetry under the same round,
    ungated. *)
val observe :
  t -> round:int -> ?extra:(string * float) list -> Backbone.t ->
  violation list

(** The recorded time-series: every invariant probe and gauge, one
    value per observed round. *)
val telemetry : t -> Obs.Telemetry.t

(** All violations so far, in round order. *)
val violations : t -> violation list

(** No violations so far. *)
val healthy : t -> bool

(** The probe names {!observe} gates, with their configured limits. *)
val invariants : t -> (string * float) list

val thresholds : t -> thresholds
