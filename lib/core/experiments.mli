(** The paper's evaluation, reproduced: Table I and Figures 8–12.

    Deployment parameters follow Section IV: nodes are drawn uniformly
    at random in a square, instances whose unit disk graph comes out
    disconnected are redrawn, and reported numbers aggregate several
    vertex sets ("avg" curves average across instances, "max" curves
    take the maximum).  The archived text garbles the square's side
    and Table I's radius; we use a 200 × 200 square and reconstruct
    Table I's setting as n = 100, R = 50, which reproduces the
    reported UDG density (average degree ≈ 21, ≈ 1070 edges) — see
    DESIGN.md and EXPERIMENTS.md. *)

type config = {
  side : float;  (** deployment square side *)
  seed : int64;  (** master seed; every sweep is deterministic *)
  instances : int;  (** vertex sets per parameter point *)
  max_attempts : int;  (** redraws allowed to hit a connected UDG *)
  jobs : int;
      (** worker domains for the stretch metrics (results are
          bit-identical for any value — see {!Netgraph.Pool}) *)
}

val default : config

(** A fast configuration (fewer, smaller instances) for tests. *)
val quick : config

(** One labelled curve, paper-legend style (e.g. ["CDS deg max"]). *)
type series = { label : string; points : (float * float) list }

(** Table I: per-structure quality over [instances] deployments. *)
val table1 : ?cfg:config -> ?n:int -> ?radius:float -> unit -> Quality.agg list

(** Figure 8: maximum and average node degree vs number of nodes, for
    the six backbone structures, at fixed radius. *)
val degree_vs_n :
  ?cfg:config -> ?radius:float -> ?ns:int list -> unit -> series list

(** Figure 9: maximum and average length/hop spanning ratios vs number
    of nodes for CDS′, ICDS′ and LDel(ICDS′). *)
val stretch_vs_n :
  ?cfg:config -> ?radius:float -> ?ns:int list -> unit -> series list

(** Figure 10: maximum and average per-node communication cost (number
    of transmissions) vs number of nodes, for building CDS, ICDS and
    LDel(ICDS) — measured on the distributed protocol. *)
val comm_vs_n :
  ?cfg:config -> ?radius:float -> ?ns:int list -> unit -> series list

(** Figure 11: spanning ratios vs transmission radius at fixed n. *)
val stretch_vs_radius :
  ?cfg:config -> ?n:int -> ?radii:float list -> unit -> series list

(** Figure 12: communication cost and node degree vs transmission
    radius at fixed n (both panels' curves). *)
val comm_and_degree_vs_radius :
  ?cfg:config -> ?n:int -> ?radii:float list -> unit -> series list

(** Render series as an aligned text table, one row per x value. *)
val pp_series : Format.formatter -> series list -> unit
