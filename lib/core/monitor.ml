module G = Netgraph.Graph
module Components = Netgraph.Components
module Planarity = Netgraph.Planarity
module Metrics = Netgraph.Metrics

let c_rounds = Obs.counter "monitor.rounds"
let c_violations = Obs.counter "monitor.violations"

type thresholds = {
  max_crossings : float;
  max_extra_components : float;
  max_domination_gaps : float;
  max_cds_extra_parts : float;
  max_degree : float;
  max_len_stretch : float;
  max_hop_stretch : float;
}

(* The stretch limits are operational, not the lemmas' worst cases:
   Lemma 6's constant 6 through the Keil–Gutwin Delaunay factor for
   length, and twice Lemma 5's 3h+2 slope for hops (Lemma 7 adds a
   deliberately loose per-link constant the paper itself calls "very
   large", so the proved bound would never fire). *)
let default_thresholds =
  {
    max_crossings = 0.;
    max_extra_components = 0.;
    max_domination_gaps = 0.;
    max_cds_extra_parts = 0.;
    max_degree = float_of_int Bounds.icds_degree;
    max_len_stretch =
      Bounds.delaunay_stretch *. float_of_int Bounds.length_stretch;
    max_hop_stretch = (2. *. float_of_int Bounds.hop_stretch) +. 2.;
  }

type violation = {
  v_round : int;
  v_probe : string;
  v_value : float;
  v_limit : float;
  v_node : int;
}

type t = {
  thresholds : thresholds;
  stretch_sources : int;
  seed : int64;
  jobs : int;
  telemetry : Obs.Telemetry.t;
  mutable all_violations : violation list; (* reversed *)
  mutable last_messages : int;
}

let engine_messages () =
  Obs.value (Obs.counter "distsim.messages")
  + Obs.value (Obs.counter "distsim.async.sent")

let create ?(thresholds = default_thresholds) ?(stretch_sources = 8)
    ?(seed = 0L) ?(jobs = 1) () =
  {
    thresholds;
    stretch_sources = max 1 stretch_sources;
    seed;
    jobs;
    telemetry = Obs.Telemetry.create ();
    all_violations = [];
    last_messages = engine_messages ();
  }

let telemetry t = t.telemetry
let violations t = List.rev t.all_violations
let healthy t = t.all_violations = []
let thresholds t = t.thresholds

let invariants t =
  [
    ("crossings", t.thresholds.max_crossings);
    ("extra_components", t.thresholds.max_extra_components);
    ("domination_gaps", t.thresholds.max_domination_gaps);
    ("cds_extra_parts", t.thresholds.max_cds_extra_parts);
    ("deg_max", t.thresholds.max_degree);
    ("len_stretch_max", t.thresholds.max_len_stretch);
    ("hop_stretch_max", t.thresholds.max_hop_stretch);
  ]

(* distinct stretch sources for this round, reproducible from
   (seed, round) *)
let pick_sources t ~round n =
  let ids = Array.init n Fun.id in
  let rng =
    Wireless.Rand.create
      (Int64.logxor t.seed (Int64.of_int ((round * 0x9e3779b1) lor 1)))
  in
  Wireless.Rand.shuffle rng ids;
  Array.sub ids 0 (min t.stretch_sources n)

let observe t ~round ?(extra = []) (bb : Backbone.t) =
  Obs.span "monitor.observe" @@ fun () ->
  Obs.incr c_rounds;
  let pts = bb.Backbone.points in
  let n = Array.length pts in
  let round_violations = ref [] in
  let record name v = Obs.Telemetry.record t.telemetry ~round name v in
  let gate name v limit node =
    record name v;
    if v > limit then begin
      let viol =
        { v_round = round; v_probe = name; v_value = v; v_limit = limit;
          v_node = node }
      in
      t.all_violations <- viol :: t.all_violations;
      round_violations := viol :: !round_violations;
      Obs.incr c_violations;
      Obs.Recorder.record
        (Obs.Recorder.Monitor_violation
           { round; probe = name; value = v; limit; node });
      if !Obs.Trace.on then
        Obs.Trace.alert ~round ~probe:name ~value:v ~limit ~node
    end
  in
  (* geometric planarity of the planar backbone *)
  let crossings = Planarity.crossing_pairs bb.Backbone.ldel_icds_g pts in
  let cross_node =
    match crossings with ((u, _), _) :: _ -> u | [] -> -1
  in
  gate "crossings"
    (float_of_int (List.length crossings))
    t.thresholds.max_crossings cross_node;
  (* the routing structure must not disconnect what the radio graph
     connects *)
  let udg_parts = Components.count bb.Backbone.udg in
  let routing_parts = Components.count bb.Backbone.ldel_icds' in
  gate "extra_components"
    (float_of_int (routing_parts - udg_parts))
    t.thresholds.max_extra_components (-1);
  (* MIS domination *)
  let roles = bb.Backbone.cds.Cds.roles in
  let gaps = ref 0 and gap_node = ref (-1) in
  for u = 0 to n - 1 do
    if
      roles.(u) = Mis.Dominatee
      && Mis.dominators_of bb.Backbone.udg roles u = []
    then begin
      if !gap_node < 0 then gap_node := u;
      incr gaps
    end
  done;
  gate "domination_gaps" (float_of_int !gaps) t.thresholds.max_domination_gaps
    !gap_node;
  (* CDS connectivity: one backbone part per UDG component *)
  let labels = Components.component_labels bb.Backbone.cds.Cds.cds in
  let parts = Hashtbl.create 16 in
  Array.iteri
    (fun u is_bb ->
      if is_bb then Hashtbl.replace parts labels.(u) ())
    bb.Backbone.cds.Cds.backbone;
  gate "cds_extra_parts"
    (float_of_int (Hashtbl.length parts - udg_parts))
    t.thresholds.max_cds_extra_parts (-1);
  (* Lemma 8 degree bound on the induced backbone *)
  let deg_max = ref 0 and deg_node = ref (-1) in
  for u = 0 to n - 1 do
    let d = G.degree bb.Backbone.cds.Cds.icds u in
    if d > !deg_max then begin
      deg_max := d;
      deg_node := u
    end
  done;
  gate "deg_max" (float_of_int !deg_max) t.thresholds.max_degree !deg_node;
  (* sampled stretch of the routing structure over the UDG; a
     disconnected sampled pair surfaces as infinite stretch *)
  let len_max, hop_max =
    if n = 0 then (1., 1.)
    else
      let sources = pick_sources t ~round n in
      match
        Metrics.sampled_stretch ~jobs:t.jobs ~sources ~base:bb.Backbone.udg
          ~sub:bb.Backbone.ldel_icds' pts
      with
      | { Metrics.len_max; hop_max; _ } -> (len_max, hop_max)
      | exception Invalid_argument _ -> (infinity, infinity)
  in
  gate "len_stretch_max" len_max t.thresholds.max_len_stretch (-1);
  gate "hop_stretch_max" hop_max t.thresholds.max_hop_stretch (-1);
  (* runtime gauges: recorded, never gated *)
  let backbone_nodes = ref 0 in
  Array.iter
    (fun b -> if b then incr backbone_nodes)
    bb.Backbone.cds.Cds.backbone;
  record "backbone_nodes" (float_of_int !backbone_nodes);
  record "backbone_edges"
    (float_of_int (G.edge_count bb.Backbone.ldel_icds'));
  let msgs = engine_messages () in
  record "messages" (float_of_int (msgs - t.last_messages));
  t.last_messages <- msgs;
  let gc = Gc.quick_stat () in
  record "gc_heap_words" (float_of_int gc.Gc.heap_words);
  record "gc_minor_words" gc.Gc.minor_words;
  List.iter (fun (name, v) -> record name v) extra;
  List.rev !round_violations
