module G = Netgraph.Graph

type t = {
  roles : Mis.role array;
  connectors : Connectors.result;
  backbone : bool array;
  cds : G.t;
  cds' : G.t;
  icds : G.t;
  icds' : G.t;
}

let build udg roles connectors =
  let n = G.node_count udg in
  let backbone =
    Array.init n (fun u ->
        roles.(u) = Mis.Dominator || connectors.Connectors.connector.(u))
  in
  let cds = G.of_edges n connectors.Connectors.cds_edges in
  let links =
    List.concat
      (List.init n (fun u ->
           if roles.(u) = Mis.Dominatee then
             List.map (fun d -> (u, d)) (Mis.dominators_of udg roles u)
           else []))
  in
  let dominatee_links g = G.union g (G.of_edges n links) in
  let cds' = dominatee_links cds in
  let icds = G.induced udg (fun u -> backbone.(u)) in
  let icds' = dominatee_links icds in
  { roles; connectors; backbone; cds; cds'; icds; icds' }

let of_udg ?priority udg =
  Obs.span "cds" (fun () ->
      let roles =
        Obs.span "mis" (fun () ->
            match priority with
            | None -> Mis.compute udg
            | Some priority -> Mis.compute_with_priority udg ~priority)
      in
      let connectors = Obs.span "connectors" (fun () -> Connectors.find udg roles) in
      Obs.span "assemble" (fun () -> build udg roles connectors))

let backbone_nodes t =
  let acc = ref [] in
  Array.iteri (fun u b -> if b then acc := u :: !acc) t.backbone;
  List.rev !acc

let dominator_of t udg u =
  if t.backbone.(u) then u
  else
    match Mis.dominators_of udg t.roles u with
    | d :: _ -> d
    | [] -> invalid_arg "Cds.dominator_of: node has no dominator"
