(* Sharded, CSR-native construction pipeline (DESIGN.md §10).

   The deployment square is cut into grid tiles whose side is at
   least the transmission radius; a tile's bucket is its ownership
   set.  Every stage then runs per-tile on the pool's domains against
   the immutable CSR snapshot of the previous stage — MIS in
   pass-synchronous rounds, connector elections and LDel acceptance
   from each item's owning tile — and per-tile results are stitched
   by deterministic sorted merges.  No stage consults a mutable
   Hashtbl graph; every intermediate is a sealed CSR.  The outputs
   are bit-identical to the serial [Cds.of_udg] / [Ldel.build] chain
   for any tile count and any job count (asserted by the shard test
   suite). *)

module Csr = Netgraph.Csr
module Builder = Netgraph.Builder

type snapshot = {
  points : Geometry.Point.t array;
  radius : float;
  owners : int array array;  (* tile ownership sets, ascending ids *)
  udg : Csr.t;
  roles : Mis.role array;
  connectors : Connectors.result;
  ldel : Ldel.csr_parts;
  backbone : bool array;
  cds : Csr.t;
  cds' : Csr.t;
  icds : Csr.t;
  icds' : Csr.t;
  pldel : Csr.t;
  pldel' : Csr.t;
}

(* Per-axis tile count whose average tile holds ~4k nodes — small
   enough for balance, large enough that per-tile overhead is noise. *)
let auto_tiles_per_axis n =
  max 1 (int_of_float (sqrt (float_of_int n /. 4096.) +. 0.5))

let tiling ?tiles points ~radius =
  if radius <= 0. then invalid_arg "Shard.tiling: radius <= 0";
  let n = Array.length points in
  if n = 0 then [| [||] |]
  else begin
    let k =
      match tiles with
      | Some k when k >= 1 -> k
      | Some _ -> invalid_arg "Shard.tiling: tiles < 1"
      | None -> auto_tiles_per_axis n
    in
    (* tile side >= radius keeps halos at one ring of tiles; the grid
       clamps the per-axis count accordingly *)
    let module P = Geometry.Point in
    let x0 = ref infinity and y0 = ref infinity in
    let x1 = ref neg_infinity and y1 = ref neg_infinity in
    Array.iter
      (fun (p : P.t) ->
        if p.x < !x0 then x0 := p.x;
        if p.x > !x1 then x1 := p.x;
        if p.y < !y0 then y0 := p.y;
        if p.y > !y1 then y1 := p.y)
      points;
    let side = Float.max (!x1 -. !x0) (!y1 -. !y0) in
    let cell = Float.max radius (side /. float_of_int k) in
    let grid = Wireless.Cellgrid.create ~cell_size:cell points in
    Array.init (Wireless.Cellgrid.cells grid) (Wireless.Cellgrid.nodes_of grid)
  end

(* Dominatee -> adjacent-dominator links, appended off each
   dominatee's CSR row (the CDS'/ICDS' "prime" augmentation). *)
let add_dominatee_links_csr b udg roles =
  Array.iteri
    (fun u r ->
      if r = Mis.Dominatee then
        Csr.iter_neighbors udg u (fun d ->
            if roles.(d) = Mis.Dominator then Builder.add_edge b u d))
    roles

let pipeline ?pool ?tiles ?priority ?udg points ~radius =
  Obs.span "shard" (fun () ->
      let owners =
        Obs.span "shard.tiling" (fun () -> tiling ?tiles points ~radius)
      in
      Obs.set_gauge (Obs.gauge "shard.tiles")
        (float_of_int (Array.length owners));
      let pop = Obs.dist "shard.tile_pop" in
      Array.iter
        (fun tile -> Obs.observe pop (float_of_int (Array.length tile)))
        owners;
      let udg =
        match udg with
        | Some csr ->
          if Csr.node_count csr <> Array.length points then
            invalid_arg "Shard.pipeline: udg node count mismatch";
          csr
        | None ->
          Obs.span "shard.udg" (fun () ->
              Wireless.Udg.build_csr ?pool points ~radius)
      in
      let roles =
        Obs.span "shard.mis" (fun () ->
            Mis.compute_csr ?pool ~owners ?priority udg)
      in
      let connectors =
        Obs.span "shard.connectors" (fun () ->
            Connectors.find_csr ?pool ~owners udg roles)
      in
      let ldel =
        Obs.span "shard.ldel" (fun () ->
            (* LDel of the induced backbone, as in the serial chain *)
            let backbone u =
              roles.(u) = Mis.Dominator || connectors.Connectors.connector.(u)
            in
            let b = Builder.create (Array.length points) in
            Csr.iter_edges udg (fun u v ->
                if backbone u && backbone v then Builder.add_edge b u v);
            let icds = Builder.seal ?pool b in
            Ldel.build_csr ?pool ~owners icds points ~radius)
      in
      Obs.span "shard.assemble" (fun () ->
          let n = Array.length points in
          let backbone =
            Array.init n (fun u ->
                roles.(u) = Mis.Dominator
                || connectors.Connectors.connector.(u))
          in
          let seal_of ?points fill =
            let b = Builder.create n in
            fill b;
            Builder.seal ?pool ?points b
          in
          let cds_b = Builder.create n in
          Builder.add_edges cds_b connectors.Connectors.cds_edges;
          let cds = Builder.seal ?pool cds_b in
          add_dominatee_links_csr cds_b udg roles;
          let cds' = Builder.seal ?pool cds_b in
          let icds_b = Builder.create n in
          Csr.iter_edges udg (fun u v ->
              if backbone.(u) && backbone.(v) then Builder.add_edge icds_b u v);
          let icds = Builder.seal ?pool icds_b in
          add_dominatee_links_csr icds_b udg roles;
          let icds' = Builder.seal ?pool icds_b in
          let add_pldel b =
            Builder.add_edges b ldel.Ldel.p_gabriel;
            List.iter
              (fun (a, b', c) ->
                Builder.add_edge b a b';
                Builder.add_edge b b' c;
                Builder.add_edge b a c)
              ldel.Ldel.p_kept
          in
          let pldel = seal_of ~points add_pldel in
          let pldel' =
            seal_of ~points (fun b ->
                add_pldel b;
                add_dominatee_links_csr b udg roles)
          in
          {
            points;
            radius;
            owners;
            udg;
            roles;
            connectors;
            ldel;
            backbone;
            cds;
            cds';
            icds;
            icds';
            pldel;
            pldel';
          }))
