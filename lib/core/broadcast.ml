module G = Netgraph.Graph
module E = Distsim.Engine

type outcome = {
  reached : bool array;
  transmissions : int;
  rounds : int;
}

let c_transmissions = Obs.counter "broadcast.transmissions"

let coverage o =
  let n = Array.length o.reached in
  if n = 0 then 1.
  else
    float_of_int (Array.fold_left (fun a r -> if r then a + 1 else a) 0 o.reached)
    /. float_of_int n

(* One shared packet type: the payload is irrelevant, only the relay
   discipline differs. *)
type state = { mutable heard : bool; mutable relayed : bool }

let run_relay udg ~source ~should_relay =
  let proto =
    {
      E.init = (fun me _ -> { heard = me = source; relayed = false });
      E.on_round =
        (fun ctx st inbox ->
          let heard_from = List.map (fun d -> d.E.from) inbox in
          if heard_from <> [] then st.heard <- true;
          let is_source_start = ctx.E.round = 0 && ctx.E.me = source in
          if
            (is_source_start
            || (st.heard && not st.relayed && heard_from <> []))
            && (not st.relayed)
            && (is_source_start || should_relay ctx.E.me heard_from)
          then begin
            st.relayed <- true;
            ctx.E.broadcast ()
          end;
          st);
    }
  in
  let states, stats = E.run ~classify:(fun () -> "Packet") udg proto in
  Obs.add c_transmissions (E.total_sent stats);
  {
    reached = Array.map (fun st -> st.heard) states;
    transmissions = E.total_sent stats;
    rounds = stats.E.rounds;
  }

let flood udg ~source = run_relay udg ~source ~should_relay:(fun _ _ -> true)

let backbone_broadcast udg (cds : Cds.t) ~source =
  run_relay udg ~source ~should_relay:(fun me _ -> cds.Cds.backbone.(me))

let rng_relay udg points ~source =
  let rng_g = Wireless.Proximity.rng_graph udg points in
  run_relay udg ~source ~should_relay:(fun me heard_from ->
      (* relay only if some RNG neighbor has not (necessarily) heard
         the packet yet: it is not among the senders we heard *)
      List.exists
        (fun v -> not (List.mem v heard_from))
        (G.neighbors rng_g me))
