(** Clustering: maximal independent set by the smallest-ID rule.

    The paper's clustering phase (after Baker–Ephremides and Alzoubi)
    marks a white node as dominator when it has the smallest ID among
    its white neighbors; its white neighbors then become dominatees.
    The fixpoint of that rule is a maximal independent set, hence a
    dominating set.  This module is the centralized reference
    implementation — {!Protocol} runs the same rule as a distributed
    message-passing protocol and must produce the identical set. *)

type role = Dominator | Dominatee

(** [compute g] runs the smallest-ID clustering to fixpoint and
    returns each node's role.  Node ids double as the protocol's
    distinct IDs. *)
val compute : Netgraph.Graph.t -> role array

(** Same rule with an arbitrary total order on nodes: [priority u]
    smaller means more eligible; ties broken by id.  [compute] is
    [compute_with_priority g ~priority:(fun u -> u)]. *)
val compute_with_priority :
  Netgraph.Graph.t -> priority:(int -> int) -> role array

(** [compute_csr csr] runs the same rule directly on a CSR snapshot —
    no intermediate mutable graph — and is bit-identical to {!compute}
    on the same edge set.  [owners] partitions the node ids into tiles
    (default: one tile holding every node); with [pool], each pass
    elects per-tile winners and applies them in two barrier-separated
    phases across the pool's domains.  Winners within a pass are
    pairwise non-adjacent, so the result is bit-identical for any
    tiling and any job count.  [priority] is as in
    {!compute_with_priority}. *)
val compute_csr :
  ?pool:Netgraph.Pool.t ->
  ?owners:int array array ->
  ?priority:(int -> int) ->
  Netgraph.Csr.t ->
  role array

(** Dominator ids, increasing. *)
val dominators : role array -> int list

(** [dominators_of g roles u] is the list of dominators adjacent to
    [u] ([u]'s "Dominators" link list); empty when [u] is itself a
    dominator. *)
val dominators_of : Netgraph.Graph.t -> role array -> int -> int list

(** [two_hop_dominators g roles u] is [u]'s "2HopDominators" list:
    dominators at UDG-hop distance exactly two from [u]. *)
val two_hop_dominators : Netgraph.Graph.t -> role array -> int -> int list

(** Validation: no two dominators adjacent. *)
val is_independent : Netgraph.Graph.t -> role array -> bool

(** Validation: every dominatee has an adjacent dominator. *)
val is_dominating : Netgraph.Graph.t -> role array -> bool

(** Validation: no dominatee could be promoted (maximality). *)
val is_maximal : Netgraph.Graph.t -> role array -> bool
