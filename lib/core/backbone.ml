module G = Netgraph.Graph

type t = {
  points : Geometry.Point.t array;
  radius : float;
  jobs : int;
  udg : G.t;
  cds : Cds.t;
  ldel_icds : Ldel.t;
  ldel_icds_g : G.t;
  ldel_icds' : G.t;
}

module Config = struct
  type radio = Disk | Quasi of { r_min : float; seed : int64 }

  type t = {
    radius : float;
    priority : (int -> int) option;
    radio : radio;
    sink : Obs.sink option;
    jobs : int;
  }

  let default =
    {
      radius = 60.;
      priority = None;
      radio = Disk;
      sink = None;
      jobs = Netgraph.Pool.default_jobs ();
    }
end

let add_dominatee_links udg roles g =
  let g = G.copy g in
  Array.iteri
    (fun u r ->
      if r = Mis.Dominatee then
        List.iter (fun d -> G.add_edge g u d) (Mis.dominators_of udg roles u))
    roles;
  g

let run (cfg : Config.t) points =
  let radius = cfg.Config.radius in
  let build_stages () =
    Obs.span "backbone" (fun () ->
        let udg =
          Obs.span "udg" (fun () ->
              match cfg.Config.radio with
              | Config.Disk -> Wireless.Udg.build points ~radius
              | Config.Quasi { r_min; seed } ->
                Wireless.Udg.build_quasi
                  (Wireless.Rand.create seed)
                  points ~r_min ~r_max:radius)
        in
        let cds = Cds.of_udg ?priority:cfg.Config.priority udg in
        let ldel_icds =
          Obs.span "ldel" (fun () -> Ldel.build cds.Cds.icds points ~radius)
        in
        let ldel_icds_g = ldel_icds.Ldel.planar in
        let ldel_icds' =
          Obs.span "links" (fun () ->
              add_dominatee_links udg cds.Cds.roles ldel_icds_g)
        in
        {
          points;
          radius;
          jobs = max 1 cfg.Config.jobs;
          udg;
          cds;
          ldel_icds;
          ldel_icds_g;
          ldel_icds';
        })
  in
  match cfg.Config.sink with
  | None -> build_stages ()
  | Some sink ->
    let was = Obs.enabled () in
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.set_enabled was;
        Obs.report sink)
      build_stages

let build ?priority points ~radius =
  run { Config.default with Config.radius; priority } points

let ldel_full t = Ldel.build t.udg t.points ~radius:t.radius

(* The structure registry: Table I order, defined in exactly one
   place.  The four baseline rows span all nodes by construction; the
   backbone family carries the paper's spans-all / backbone-only
   distinction.  Everything that enumerates structures — [structures],
   the CLI's build/dump subcommands, the experiment sweeps, the bench
   extensions — derives from these lists. *)

let baseline_registry : (string * (t -> G.t) * [ `Spans_all | `Backbone_only ]) list
    =
  [
    ("UDG", (fun t -> t.udg), `Spans_all);
    ("RNG", (fun t -> Wireless.Proximity.rng_graph t.udg t.points), `Spans_all);
    ("GG", (fun t -> Wireless.Proximity.gabriel_graph t.udg t.points), `Spans_all);
    ("LDel", (fun t -> (ldel_full t).Ldel.planar), `Spans_all);
  ]

let backbone_registry : (string * (t -> G.t) * [ `Spans_all | `Backbone_only ]) list
    =
  [
    ("CDS", (fun t -> t.cds.Cds.cds), `Backbone_only);
    ("CDS'", (fun t -> t.cds.Cds.cds'), `Spans_all);
    ("ICDS", (fun t -> t.cds.Cds.icds), `Backbone_only);
    ("ICDS'", (fun t -> t.cds.Cds.icds'), `Spans_all);
    ("LDel(ICDS)", (fun t -> t.ldel_icds_g), `Backbone_only);
    ("LDel(ICDS')", (fun t -> t.ldel_icds'), `Spans_all);
  ]

let registry = baseline_registry @ backbone_registry

let names = List.map (fun (n, _, _) -> n) registry

let materialize entries t =
  List.map (fun (name, builder, scope) -> (name, builder t, scope)) entries

let structures t = materialize registry t
let backbone_structures t = materialize backbone_registry t

let spanning_backbone_structures t =
  materialize
    (List.filter (fun (_, _, scope) -> scope = `Spans_all) backbone_registry)
    t
