module G = Netgraph.Graph

type t = {
  points : Geometry.Point.t array;
  radius : float;
  jobs : int;
  udg : G.t;
  cds : Cds.t;
  ldel_icds : Ldel.t;
  ldel_icds_g : G.t;
  ldel_icds' : G.t;
  planar_csr : Netgraph.Csr.t;
}

module Config = struct
  type radio = Disk | Quasi of { r_min : float; seed : int64 }
  type partition = Auto | Tiles of int | Serial

  type t = {
    radius : float;
    priority : (int -> int) option;
    radio : radio;
    sink : Obs.sink option;
    jobs : int;
    partition : partition;
  }

  let default =
    {
      radius = 60.;
      priority = None;
      radio = Disk;
      sink = None;
      jobs = Netgraph.Pool.default_jobs ();
      partition = Auto;
    }
end

(* Instances below this size gain nothing from tiling: the serial
   chain finishes in milliseconds and avoids the per-stage scratch. *)
let auto_partition_threshold = 5_000

let add_dominatee_links udg roles g =
  let links = ref [] in
  Array.iteri
    (fun u r ->
      if r = Mis.Dominatee then
        List.iter
          (fun d -> links := (u, d) :: !links)
          (Mis.dominators_of udg roles u))
    roles;
  G.union g (G.of_edges (G.node_count g) !links)

(* Enable the sink (when given) around [stages], reporting on exit. *)
let with_sink sink stages =
  match sink with
  | None -> stages ()
  | Some sink ->
    let was = Obs.enabled () in
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.set_enabled was;
        Obs.report sink)
      stages

let with_jobs jobs f =
  if jobs > 1 then Netgraph.Pool.with_pool ~jobs (fun p -> f (Some p))
  else f None

let quasi_udg points ~radius ~r_min ~seed =
  Wireless.Udg.build_quasi
    (Wireless.Rand.create seed)
    points ~r_min ~r_max:radius

let partitioned (cfg : Config.t) n =
  match cfg.Config.partition with
  | Config.Serial -> false
  | Config.Tiles _ -> true
  | Config.Auto -> (
    n >= auto_partition_threshold
    && match cfg.Config.radio with Config.Disk -> true | Config.Quasi _ -> false)

let run_sharded (cfg : Config.t) points =
  let radius = cfg.Config.radius in
  Obs.span "backbone" (fun () ->
      let tiles =
        match cfg.Config.partition with Config.Tiles k -> Some k | _ -> None
      in
      let pre_udg =
        (* the quasi radio draws links from a sequential RNG stream, so
           its UDG is built serially and only the later stages shard *)
        match cfg.Config.radio with
        | Config.Disk -> None
        | Config.Quasi { r_min; seed } ->
          Some
            (Obs.span "udg" (fun () ->
                 Netgraph.Csr.of_graph (quasi_udg points ~radius ~r_min ~seed)))
      in
      let snap =
        with_jobs cfg.Config.jobs (fun pool ->
            Shard.pipeline ?pool ?tiles ?priority:cfg.Config.priority
              ?udg:pre_udg points ~radius)
      in
      (* rebuild the legacy record from the snapshot: the stitched
         role/connector/LDel lists equal the serial ones, so these
         adapters reproduce [run]'s serial output graph for graph *)
      Obs.span "thaw" (fun () ->
          let udg = Netgraph.Csr.to_graph snap.Shard.udg in
          let cds = Cds.build udg snap.Shard.roles snap.Shard.connectors in
          let ldel_icds = Ldel.of_parts (Array.length points) snap.Shard.ldel in
          let ldel_icds_g = ldel_icds.Ldel.planar in
          let ldel_icds' =
            add_dominatee_links udg snap.Shard.roles ldel_icds_g
          in
          {
            points;
            radius;
            jobs = max 1 cfg.Config.jobs;
            udg;
            cds;
            ldel_icds;
            ldel_icds_g;
            ldel_icds';
            planar_csr = snap.Shard.pldel;
          }))

let run_serial (cfg : Config.t) points =
  let radius = cfg.Config.radius in
  Obs.span "backbone" (fun () ->
      let udg =
        Obs.span "udg" (fun () ->
            match cfg.Config.radio with
            | Config.Disk -> Wireless.Udg.build points ~radius
            | Config.Quasi { r_min; seed } ->
              quasi_udg points ~radius ~r_min ~seed)
      in
      let cds = Cds.of_udg ?priority:cfg.Config.priority udg in
      let ldel_icds =
        Obs.span "ldel" (fun () -> Ldel.build cds.Cds.icds points ~radius)
      in
      let ldel_icds_g = ldel_icds.Ldel.planar in
      let ldel_icds' =
        Obs.span "links" (fun () ->
            add_dominatee_links udg cds.Cds.roles ldel_icds_g)
      in
      {
        points;
        radius;
        jobs = max 1 cfg.Config.jobs;
        udg;
        cds;
        ldel_icds;
        ldel_icds_g;
        ldel_icds';
        planar_csr = Netgraph.Csr.of_graph ~points ldel_icds_g;
      })

let run (cfg : Config.t) points =
  with_sink cfg.Config.sink (fun () ->
      if partitioned cfg (Array.length points) then run_sharded cfg points
      else run_serial cfg points)

let snapshot (cfg : Config.t) points =
  let radius = cfg.Config.radius in
  with_sink cfg.Config.sink (fun () ->
      let tiles =
        match cfg.Config.partition with Config.Tiles k -> Some k | _ -> None
      in
      let pre_udg =
        match cfg.Config.radio with
        | Config.Disk -> None
        | Config.Quasi { r_min; seed } ->
          Some (Netgraph.Csr.of_graph (quasi_udg points ~radius ~r_min ~seed))
      in
      with_jobs cfg.Config.jobs (fun pool ->
          Shard.pipeline ?pool ?tiles ?priority:cfg.Config.priority ?udg:pre_udg
            points ~radius))

let build ?priority points ~radius =
  run { Config.default with Config.radius; priority } points

let ldel_full t = Ldel.build t.udg t.points ~radius:t.radius

(* The structure registry: Table I order, defined in exactly one
   place.  The four baseline rows span all nodes by construction; the
   backbone family carries the paper's spans-all / backbone-only
   distinction.  Everything that enumerates structures — [structures],
   the CLI's build/dump subcommands, the experiment sweeps, the bench
   extensions — derives from these lists. *)

let baseline_registry : (string * (t -> G.t) * [ `Spans_all | `Backbone_only ]) list
    =
  [
    ("UDG", (fun t -> t.udg), `Spans_all);
    ("RNG", (fun t -> Wireless.Proximity.rng_graph t.udg t.points), `Spans_all);
    ("GG", (fun t -> Wireless.Proximity.gabriel_graph t.udg t.points), `Spans_all);
    ("LDel", (fun t -> (ldel_full t).Ldel.planar), `Spans_all);
  ]

let backbone_registry : (string * (t -> G.t) * [ `Spans_all | `Backbone_only ]) list
    =
  [
    ("CDS", (fun t -> t.cds.Cds.cds), `Backbone_only);
    ("CDS'", (fun t -> t.cds.Cds.cds'), `Spans_all);
    ("ICDS", (fun t -> t.cds.Cds.icds), `Backbone_only);
    ("ICDS'", (fun t -> t.cds.Cds.icds'), `Spans_all);
    ("LDel(ICDS)", (fun t -> t.ldel_icds_g), `Backbone_only);
    ("LDel(ICDS')", (fun t -> t.ldel_icds'), `Spans_all);
  ]

let registry = baseline_registry @ backbone_registry

let names = List.map (fun (n, _, _) -> n) registry

let materialize entries t =
  List.map (fun (name, builder, scope) -> (name, builder t, scope)) entries

let structures t = materialize registry t
let backbone_structures t = materialize backbone_registry t

let spanning_backbone_structures t =
  materialize
    (List.filter (fun (_, _, scope) -> scope = `Spans_all) backbone_registry)
    t
