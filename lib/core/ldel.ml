module G = Netgraph.Graph
module P = Geometry.Point
module Pred = Geometry.Predicates

type t = {
  ldel1 : G.t;
  planar : G.t;
  gabriel_edges : (int * int) list;
  triangles : (int * int * int) list;
  kept_triangles : (int * int * int) list;
}

let norm3 (a, b, c) =
  let l = List.sort compare [ a; b; c ] in
  match l with
  | [ x; y; z ] -> (x, y, z)
  | _ -> assert false (* sort preserves the three elements *)

(* What one node computes in Algorithm 2 from purely local data: the
   Delaunay triangulation of itself plus its 1-hop neighbors, filtered
   to the triangles it participates in.  Both the centralized builder
   and the distributed protocol call this with the same inputs, which
   is what makes their outputs identical. *)
let local_triangles_of_neighborhood ~me ~me_pos ~nbrs =
  match nbrs with
  | [] | [ _ ] -> []
  | _ ->
    let locals = Array.of_list ((me, me_pos) :: nbrs) in
    let local_pts = Array.map snd locals in
    let dt = Delaunay.Triangulation.triangulate local_pts in
    List.filter_map
      (fun (a, b, c) ->
        if a = 0 || b = 0 || c = 0 then
          Some (norm3 (fst locals.(a), fst locals.(b), fst locals.(c)))
        else None)
      (Delaunay.Triangulation.triangles dt)

let local_delaunay_triangles g points u =
  local_triangles_of_neighborhood ~me:u ~me_pos:points.(u)
    ~nbrs:(List.map (fun v -> (v, points.(v))) (G.neighbors g u))

(* k-hop variant: the same computation over N_k(u). *)
let local_delaunay_triangles_k g points ~k u =
  let nbrs =
    List.filter_map
      (fun v -> if v = u then None else Some (v, points.(v)))
      (Wireless.Udg.neighborhood g u ~hops:k)
  in
  local_triangles_of_neighborhood ~me:u ~me_pos:points.(u) ~nbrs

module TriSet = Set.Make (struct
  type t = int * int * int

  let compare = compare
end)

let triangle_fits points ~radius (a, b, c) =
  P.dist points.(a) points.(b) <= radius
  && P.dist points.(b) points.(c) <= radius
  && P.dist points.(a) points.(c) <= radius

let accepted_triangles_gen g points ~radius ~local_triangles =
  let n = G.node_count g in
  (* A triangle is accepted when all three corners find it in their
     local Delaunay (= its circumcircle is empty of each corner's
     k-hop neighborhood) and all its links are within range. *)
  let local = Array.make n TriSet.empty in
  for u = 0 to n - 1 do
    local.(u) <- TriSet.of_list (local_triangles u)
  done;
  let acc = ref TriSet.empty in
  for u = 0 to n - 1 do
    TriSet.iter
      (fun (a, b, c) ->
        if
          triangle_fits points ~radius (a, b, c)
          && TriSet.mem (a, b, c) local.(a)
          && TriSet.mem (a, b, c) local.(b)
          && TriSet.mem (a, b, c) local.(c)
        then acc := TriSet.add (a, b, c) !acc)
      local.(u)
  done;
  TriSet.elements !acc

let triangles_intersect points (a1, b1, c1) (a2, b2, c2) =
  let t1 = [ a1; b1; c1 ] and t2 = [ a2; b2; c2 ] in
  let shared v = List.mem v t1 in
  let edge_of l =
    match l with
    | [ x; y; z ] -> [ (x, y); (y, z); (z, x) ]
    | _ -> assert false (* only ever applied to 3-element triangle lists *)
  in
  let seg (u, v) = Geometry.Segment.make points.(u) points.(v) in
  let crossing =
    List.exists
      (fun e1 ->
        List.exists
          (fun e2 -> Geometry.Segment.properly_intersect (seg e1) (seg e2))
          (edge_of t2))
      (edge_of t1)
  in
  crossing
  ||
  let strictly_inside (x, y, z) v =
    let inside_ccw a b c p =
      Pred.orient2d points.(a) points.(b) p = Pred.Ccw
      && Pred.orient2d points.(b) points.(c) p = Pred.Ccw
      && Pred.orient2d points.(c) points.(a) p = Pred.Ccw
    in
    match Pred.orient2d points.(x) points.(y) points.(z) with
    | Pred.Ccw -> inside_ccw x y z points.(v)
    | Pred.Cw -> inside_ccw x z y points.(v)
    | Pred.Collinear -> false
  in
  List.exists (fun v -> (not (shared v)) && strictly_inside (a1, b1, c1) v) t2
  || List.exists
       (fun v -> (not (List.mem v t2)) && strictly_inside (a2, b2, c2) v)
       t1

let circumcircle_contains points (a, b, c) v =
  v <> a && v <> b && v <> c
  && Pred.incircle points.(a) points.(b) points.(c) points.(v)

(* A triangle pair can only be compared by nodes that hear about both:
   in Algorithm 3 a node gathers the triangles of its 1-hop neighbors,
   so corner visibility is required.  This mirrors exactly what the
   distributed protocol can decide. *)
let mutually_visible g t1 t2 =
  let corners (a, b, c) = [ a; b; c ] in
  List.exists
    (fun c1 ->
      List.exists (fun c2 -> c1 = c2 || G.has_edge g c1 c2) (corners t2))
    (corners t1)

let planarize g points triangles =
  let tris = Array.of_list triangles in
  let m = Array.length tris in
  let removed = Array.make m false in
  let boxes =
    Array.map
      (fun (a, b, c) ->
        Geometry.Bbox.of_points [ points.(a); points.(b); points.(c) ])
      tris
  in
  let boxes_overlap (b1 : Geometry.Bbox.t) (b2 : Geometry.Bbox.t) =
    b1.xmin <= b2.xmax && b2.xmin <= b1.xmax && b1.ymin <= b2.ymax
    && b2.ymin <= b1.ymax
  in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if
        boxes_overlap boxes.(i) boxes.(j)
        && mutually_visible g tris.(i) tris.(j)
        && triangles_intersect points tris.(i) tris.(j)
      then begin
        let a2, b2, c2 = tris.(j) in
        if List.exists (circumcircle_contains points tris.(i)) [ a2; b2; c2 ]
        then removed.(i) <- true;
        let a1, b1, c1 = tris.(i) in
        if List.exists (circumcircle_contains points tris.(j)) [ a1; b1; c1 ]
        then removed.(j) <- true
      end
    done
  done;
  let kept = ref [] in
  for i = m - 1 downto 0 do
    if not removed.(i) then kept := tris.(i) :: !kept
  done;
  !kept

let graph_of n gabriel triangles =
  G.of_edges n
    (gabriel
    @ List.concat_map (fun (a, b, c) -> [ (a, b); (b, c); (a, c) ]) triangles)

let gabriel_edges_of g points =
  List.filter
    (fun (u, v) -> Wireless.Proximity.is_gabriel_edge points g u v)
    (G.edges g)

let build_gen g points ~radius ~local_triangles =
  let gabriel_edges = gabriel_edges_of g points in
  let triangles =
    accepted_triangles_gen g points ~radius ~local_triangles
  in
  let kept_triangles = planarize g points triangles in
  let n = G.node_count g in
  {
    ldel1 = graph_of n gabriel_edges triangles;
    planar = graph_of n gabriel_edges kept_triangles;
    gabriel_edges;
    triangles;
    kept_triangles;
  }

let build g points ~radius =
  build_gen g points ~radius
    ~local_triangles:(local_delaunay_triangles g points)

(* ---- CSR-native, tile-sharded construction ------------------------- *)

type csr_parts = {
  p_gabriel : (int * int) list;
  p_triangles : (int * int * int) list;
  p_kept : (int * int * int) list;
}

let of_parts n { p_gabriel; p_triangles; p_kept } =
  {
    ldel1 = graph_of n p_gabriel p_triangles;
    planar = graph_of n p_gabriel p_kept;
    gabriel_edges = p_gabriel;
    triangles = p_triangles;
    kept_triangles = p_kept;
  }

(* Algorithm 3 driven by a bucket grid instead of the O(T^2) pair
   scan.  Every accepted triangle has all links within [radius], so
   its bbox is at most [radius] wide and tall; two overlapping bboxes
   therefore have min-corners within [radius] of each other, i.e. in
   the same or an adjacent grid cell of side [radius] — scanning the
   3x3 block around each triangle's min-corner cell visits every
   overlapping pair.  Pair decisions are pure predicates of the
   snapshot (they never read the removal flags), so processing pair
   (i, j) from i's worker and letting [removed] writes race on the
   identical value [true] loses nothing: the flags after the join
   equal the serial ones bit for bit. *)
let planarize_csr ?pool csr points ~radius tris_list =
  let module C = Netgraph.Csr in
  let tris = Array.of_list tris_list in
  let m = Array.length tris in
  if m = 0 then []
  else begin
    let boxes =
      Array.map
        (fun (a, b, c) ->
          Geometry.Bbox.of_points [ points.(a); points.(b); points.(c) ])
        tris
    in
    let boxes_overlap (b1 : Geometry.Bbox.t) (b2 : Geometry.Bbox.t) =
      b1.xmin <= b2.xmax && b2.xmin <= b1.xmax && b1.ymin <= b2.ymax
      && b2.ymin <= b1.ymax
    in
    let mutually_visible_csr (a1, b1, c1) (a2, b2, c2) =
      List.exists
        (fun x ->
          List.exists (fun y -> x = y || C.mem_edge csr x y) [ a2; b2; c2 ])
        [ a1; b1; c1 ]
    in
    (* bucket triangle indices by the grid cell of their bbox
       min-corner (side = radius, origin = least min-corner) *)
    let bx0 = ref infinity and by0 = ref infinity in
    let bx1 = ref neg_infinity and by1 = ref neg_infinity in
    Array.iter
      (fun (b : Geometry.Bbox.t) ->
        if b.xmin < !bx0 then bx0 := b.xmin;
        if b.xmin > !bx1 then bx1 := b.xmin;
        if b.ymin < !by0 then by0 := b.ymin;
        if b.ymin > !by1 then by1 := b.ymin)
      boxes;
    let nx = 1 + int_of_float ((!bx1 -. !bx0) /. radius) in
    let ny = 1 + int_of_float ((!by1 -. !by0) /. radius) in
    let cell_of (b : Geometry.Bbox.t) =
      let cx = int_of_float ((b.xmin -. !bx0) /. radius) in
      let cy = int_of_float ((b.ymin -. !by0) /. radius) in
      (cy * nx) + cx
    in
    let tcell = Array.map cell_of boxes in
    let start = Array.make ((nx * ny) + 1) 0 in
    Array.iter (fun k -> start.(k + 1) <- start.(k + 1) + 1) tcell;
    for k = 0 to (nx * ny) - 1 do
      start.(k + 1) <- start.(k) + start.(k + 1)
    done;
    let order = Array.make m 0 in
    let cursor = Array.copy start in
    for i = 0 to m - 1 do
      let k = tcell.(i) in
      order.(cursor.(k)) <- i;
      cursor.(k) <- cursor.(k) + 1
    done;
    let removed = Array.make m false in
    let process i =
      let bi = boxes.(i) in
      let k = tcell.(i) in
      let cx = k mod nx and cy = k / nx in
      for dy = -1 to 1 do
        let y = cy + dy in
        if y >= 0 && y < ny then
          for dx = -1 to 1 do
            let x = cx + dx in
            if x >= 0 && x < nx then begin
              let c = (y * nx) + x in
              for idx = start.(c) to start.(c + 1) - 1 do
                let j = order.(idx) in
                if
                  j > i
                  && boxes_overlap bi boxes.(j)
                  && mutually_visible_csr tris.(i) tris.(j)
                  && triangles_intersect points tris.(i) tris.(j)
                then begin
                  let a2, b2, c2 = tris.(j) in
                  if
                    List.exists
                      (circumcircle_contains points tris.(i))
                      [ a2; b2; c2 ]
                  then removed.(i) <- true;
                  let a1, b1, c1 = tris.(i) in
                  if
                    List.exists
                      (circumcircle_contains points tris.(j))
                      [ a1; b1; c1 ]
                  then removed.(j) <- true
                end
              done
            end
          done
      done
    in
    (match pool with
    | Some p -> Netgraph.Pool.parallel_for p ~n:m (fun () -> process)
    | None ->
      for i = 0 to m - 1 do
        process i
      done);
    let kept = ref [] in
    for i = m - 1 downto 0 do
      if not removed.(i) then kept := tris.(i) :: !kept
    done;
    !kept
  end

(* Binary search in a sorted array of normalized triples. *)
let mem_tri (arr : (int * int * int) array) t =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if compare arr.(mid) t < 0 then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length arr && arr.(!lo) = t

(* [build] on a CSR snapshot, without the Hashtbl graph.  Stage L1
   computes every node's local Delaunay triangles (neighbor lists fed
   in the same ascending order as [G.neighbors], so degenerate
   tie-breaks inside the triangulation match the serial build); stage
   L2 accepts a triangle from its min-corner's tile exactly when the
   other two corners also found it and the links fit — the same
   intersection [accepted_triangles_gen] computes, each triangle
   decided exactly once; Gabriel edges are filtered from the owner
   side of each row.  Per-tile lists merge by sorting, which
   reproduces the serial sorted outputs for any tiling and job
   count. *)
let build_csr ?pool ?owners csr points ~radius =
  let module C = Netgraph.Csr in
  let n = C.node_count csr in
  let owners =
    match owners with
    | Some o -> o
    | None -> [| Array.init n (fun u -> u) |]
  in
  let ntiles = Array.length owners in
  let for_tiles mk_body =
    match pool with
    | Some p -> Netgraph.Pool.parallel_for p ~n:ntiles mk_body
    | None ->
      let body = mk_body () in
      for t = 0 to ntiles - 1 do
        body t
      done
  in
  Obs.quiesced (fun () ->
      (* L1: per-node local triangles, sorted for binary search *)
      let locals = Array.make n [||] in
      let l1 u =
        let nbrs =
          List.rev
            (C.fold_neighbors csr u (fun acc v -> (v, points.(v)) :: acc) [])
        in
        locals.(u) <-
          Array.of_list
            (List.sort_uniq compare
               (local_triangles_of_neighborhood ~me:u ~me_pos:points.(u) ~nbrs))
      in
      (match pool with
      | Some p -> Netgraph.Pool.parallel_for p ~n (fun () -> l1)
      | None ->
        for u = 0 to n - 1 do
          l1 u
        done);
      (* L2 + Gabriel: per-tile over owned nodes *)
      let gab_by_tile = Array.make ntiles [] in
      let acc_by_tile = Array.make ntiles [] in
      let mk_body () =
        let gab = ref [] and acc = ref [] in
        let at u =
          C.iter_neighbors csr u (fun v ->
              if v > u then begin
                (* [Proximity.is_gabriel_edge] off u's CSR row *)
                let blocked = ref false in
                C.iter_neighbors csr u (fun w ->
                    if
                      (not !blocked) && w <> v
                      && Geometry.Circle.in_diametral points.(u) points.(v)
                           points.(w)
                    then blocked := true);
                if not !blocked then gab := (u, v) :: !gab
              end);
          Array.iter
            (fun ((a, b, c) as t) ->
              if
                a = u
                && triangle_fits points ~radius t
                && mem_tri locals.(b) t
                && mem_tri locals.(c) t
              then acc := t :: !acc)
            locals.(u)
        in
        fun t ->
          gab := [];
          acc := [];
          Array.iter at owners.(t);
          gab_by_tile.(t) <- !gab;
          acc_by_tile.(t) <- !acc
      in
      for_tiles mk_body;
      let concat_of by_tile = List.concat (Array.to_list by_tile) in
      let p_gabriel = List.sort compare (concat_of gab_by_tile) in
      let p_triangles = List.sort compare (concat_of acc_by_tile) in
      let p_kept = planarize_csr ?pool csr points ~radius p_triangles in
      { p_gabriel; p_triangles; p_kept })

let build_k g points ~radius ~k =
  if k < 1 then invalid_arg "Ldel.build_k: k < 1";
  build_gen g points ~radius
    ~local_triangles:(local_delaunay_triangles_k g points ~k)
