module G = Netgraph.Graph
module P = Geometry.Point
module Pred = Geometry.Predicates

type t = {
  ldel1 : G.t;
  planar : G.t;
  gabriel_edges : (int * int) list;
  triangles : (int * int * int) list;
  kept_triangles : (int * int * int) list;
}

let norm3 (a, b, c) =
  let l = List.sort compare [ a; b; c ] in
  match l with
  | [ x; y; z ] -> (x, y, z)
  | _ -> assert false (* sort preserves the three elements *)

(* What one node computes in Algorithm 2 from purely local data: the
   Delaunay triangulation of itself plus its 1-hop neighbors, filtered
   to the triangles it participates in.  Both the centralized builder
   and the distributed protocol call this with the same inputs, which
   is what makes their outputs identical. *)
let local_triangles_of_neighborhood ~me ~me_pos ~nbrs =
  match nbrs with
  | [] | [ _ ] -> []
  | _ ->
    let locals = Array.of_list ((me, me_pos) :: nbrs) in
    let local_pts = Array.map snd locals in
    let dt = Delaunay.Triangulation.triangulate local_pts in
    List.filter_map
      (fun (a, b, c) ->
        if a = 0 || b = 0 || c = 0 then
          Some (norm3 (fst locals.(a), fst locals.(b), fst locals.(c)))
        else None)
      (Delaunay.Triangulation.triangles dt)

let local_delaunay_triangles g points u =
  local_triangles_of_neighborhood ~me:u ~me_pos:points.(u)
    ~nbrs:(List.map (fun v -> (v, points.(v))) (G.neighbors g u))

(* k-hop variant: the same computation over N_k(u). *)
let local_delaunay_triangles_k g points ~k u =
  let nbrs =
    List.filter_map
      (fun v -> if v = u then None else Some (v, points.(v)))
      (Wireless.Udg.neighborhood g u ~hops:k)
  in
  local_triangles_of_neighborhood ~me:u ~me_pos:points.(u) ~nbrs

module TriSet = Set.Make (struct
  type t = int * int * int

  let compare = compare
end)

let triangle_fits points ~radius (a, b, c) =
  P.dist points.(a) points.(b) <= radius
  && P.dist points.(b) points.(c) <= radius
  && P.dist points.(a) points.(c) <= radius

let accepted_triangles_gen g points ~radius ~local_triangles =
  let n = G.node_count g in
  (* A triangle is accepted when all three corners find it in their
     local Delaunay (= its circumcircle is empty of each corner's
     k-hop neighborhood) and all its links are within range. *)
  let local = Array.make n TriSet.empty in
  for u = 0 to n - 1 do
    local.(u) <- TriSet.of_list (local_triangles u)
  done;
  let acc = ref TriSet.empty in
  for u = 0 to n - 1 do
    TriSet.iter
      (fun (a, b, c) ->
        if
          triangle_fits points ~radius (a, b, c)
          && TriSet.mem (a, b, c) local.(a)
          && TriSet.mem (a, b, c) local.(b)
          && TriSet.mem (a, b, c) local.(c)
        then acc := TriSet.add (a, b, c) !acc)
      local.(u)
  done;
  TriSet.elements !acc

let triangles_intersect points (a1, b1, c1) (a2, b2, c2) =
  let t1 = [ a1; b1; c1 ] and t2 = [ a2; b2; c2 ] in
  let shared v = List.mem v t1 in
  let edge_of l =
    match l with
    | [ x; y; z ] -> [ (x, y); (y, z); (z, x) ]
    | _ -> assert false (* only ever applied to 3-element triangle lists *)
  in
  let seg (u, v) = Geometry.Segment.make points.(u) points.(v) in
  let crossing =
    List.exists
      (fun e1 ->
        List.exists
          (fun e2 -> Geometry.Segment.properly_intersect (seg e1) (seg e2))
          (edge_of t2))
      (edge_of t1)
  in
  crossing
  ||
  let strictly_inside (x, y, z) v =
    let inside_ccw a b c p =
      Pred.orient2d points.(a) points.(b) p = Pred.Ccw
      && Pred.orient2d points.(b) points.(c) p = Pred.Ccw
      && Pred.orient2d points.(c) points.(a) p = Pred.Ccw
    in
    match Pred.orient2d points.(x) points.(y) points.(z) with
    | Pred.Ccw -> inside_ccw x y z points.(v)
    | Pred.Cw -> inside_ccw x z y points.(v)
    | Pred.Collinear -> false
  in
  List.exists (fun v -> (not (shared v)) && strictly_inside (a1, b1, c1) v) t2
  || List.exists
       (fun v -> (not (List.mem v t2)) && strictly_inside (a2, b2, c2) v)
       t1

let circumcircle_contains points (a, b, c) v =
  v <> a && v <> b && v <> c
  && Pred.incircle points.(a) points.(b) points.(c) points.(v)

(* A triangle pair can only be compared by nodes that hear about both:
   in Algorithm 3 a node gathers the triangles of its 1-hop neighbors,
   so corner visibility is required.  This mirrors exactly what the
   distributed protocol can decide. *)
let mutually_visible g t1 t2 =
  let corners (a, b, c) = [ a; b; c ] in
  List.exists
    (fun c1 ->
      List.exists (fun c2 -> c1 = c2 || G.has_edge g c1 c2) (corners t2))
    (corners t1)

let planarize g points triangles =
  let tris = Array.of_list triangles in
  let m = Array.length tris in
  let removed = Array.make m false in
  let boxes =
    Array.map
      (fun (a, b, c) ->
        Geometry.Bbox.of_points [ points.(a); points.(b); points.(c) ])
      tris
  in
  let boxes_overlap (b1 : Geometry.Bbox.t) (b2 : Geometry.Bbox.t) =
    b1.xmin <= b2.xmax && b2.xmin <= b1.xmax && b1.ymin <= b2.ymax
    && b2.ymin <= b1.ymax
  in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if
        boxes_overlap boxes.(i) boxes.(j)
        && mutually_visible g tris.(i) tris.(j)
        && triangles_intersect points tris.(i) tris.(j)
      then begin
        let a2, b2, c2 = tris.(j) in
        if List.exists (circumcircle_contains points tris.(i)) [ a2; b2; c2 ]
        then removed.(i) <- true;
        let a1, b1, c1 = tris.(i) in
        if List.exists (circumcircle_contains points tris.(j)) [ a1; b1; c1 ]
        then removed.(j) <- true
      end
    done
  done;
  let kept = ref [] in
  for i = m - 1 downto 0 do
    if not removed.(i) then kept := tris.(i) :: !kept
  done;
  !kept

let graph_of n gabriel triangles =
  let g = G.create n in
  List.iter (fun (u, v) -> G.add_edge g u v) gabriel;
  List.iter
    (fun (a, b, c) ->
      G.add_edge g a b;
      G.add_edge g b c;
      G.add_edge g a c)
    triangles;
  g

let gabriel_edges_of g points =
  List.filter
    (fun (u, v) -> Wireless.Proximity.is_gabriel_edge points g u v)
    (G.edges g)

let build_gen g points ~radius ~local_triangles =
  let gabriel_edges = gabriel_edges_of g points in
  let triangles =
    accepted_triangles_gen g points ~radius ~local_triangles
  in
  let kept_triangles = planarize g points triangles in
  let n = G.node_count g in
  {
    ldel1 = graph_of n gabriel_edges triangles;
    planar = graph_of n gabriel_edges kept_triangles;
    gabriel_edges;
    triangles;
    kept_triangles;
  }

let build g points ~radius =
  build_gen g points ~radius
    ~local_triangles:(local_delaunay_triangles g points)

let build_k g points ~radius ~k =
  if k < 1 then invalid_arg "Ldel.build_k: k < 1";
  build_gen g points ~radius
    ~local_triangles:(local_delaunay_triangles_k g points ~k)
