(** Distributed, message-counted construction of the backbone.

    Every structure the centralized pipeline computes is rebuilt here
    as an actual message-passing protocol on the {!Distsim.Engine}:

    + {b clustering} — [Hello] (position/ID announcement), then the
      smallest-ID rule with [IamDominator] / [IamDominatee];
    + {b connectors} — Algorithm 1's [TryConnector] / [IamConnector]
      elections for two-hop pairs and for the first/second legs of
      three-hop pairs;
    + {b status} — the single per-node broadcast from which neighbors
      derive the induced backbone ICDS;
    + {b localized Delaunay} — Algorithm 2's [Proposal] / [Accept] /
      [Reject] handshake followed by Algorithm 3's two rounds of
      triangle gossip and the circumcircle removal rule.

    The protocol output is checked (in the test-suite) to be
    *identical* to the centralized {!Backbone.build}; the per-node
    transmission counters are the paper's communication-cost metric
    (Figures 10 and 12). *)

type position = Single | First | Second

type msg =
  | Hello of Geometry.Point.t
  | IamDominator
  | IamDominatee of int  (** my dominator's id *)
  | TwoHopDoms of int list
      (** a dominator's announcement of the two-hop dominators already
          joined to it by a common dominatee; its dominatees use it to
          skip redundant three-hop elections *)
  | TryConnector of (int * int) * position
      (** candidate for the dominator pair; [Single] pairs are
          unordered (u < v), [First]/[Second] pairs are ordered *)
  | IamConnector of (int * int) * position
  | Status of bool  (** "I am a backbone node" *)
  | Proposal of (int * int * int)
  | Accept of (int * int * int)
  | Reject of (int * int * int)
  | ShareTriangles of (int * int * int) list * (int * int) list
      (** my accepted incident triangles and incident Gabriel edges *)
  | RemainingTriangles of (int * int * int) list
  | NeighborTable of (int * Geometry.Point.t) list
      (** LDel² variant: my backbone neighbor table, broadcast once so
          every backbone node assembles its 2-hop view *)

(** Message kind name, for per-kind statistics. *)
val classify : msg -> string

(** The message-passing phases of {!run} in execution order
    ([["cluster"; "connectors"; "status"; "ldel"]]).  Each is also the
    {!Obs.span} name under ["protocol"], so trace events recorded
    during phase [p] carry the phase label ["protocol/" ^ p]. *)
val phases : string list

type result = {
  roles : Mis.role array;
  connector : bool array;
  cds_edges : (int * int) list;  (** with [u < v], sorted *)
  icds_edges : (int * int) list;
  ldel_triangles : (int * int * int) list;  (** accepted LDel¹ triangles *)
  kept_triangles : (int * int * int) list;  (** after planarization *)
  gabriel_edges : (int * int) list;  (** of ICDS *)
  ldel_graph : Netgraph.Graph.t;  (** distributed PLDel(ICDS) *)
  stats_cluster : Distsim.Engine.stats;
  stats_connector : Distsim.Engine.stats;
  stats_status : Distsim.Engine.stats;
  stats_ldel : Distsim.Engine.stats;
}

(** Communication cost of building CDS: clustering + connectors. *)
val cds_stats : result -> Distsim.Engine.stats

(** Communication cost of ICDS: CDS plus the status broadcast. *)
val icds_stats : result -> Distsim.Engine.stats

(** Communication cost of LDel(ICDS): everything. *)
val ldel_stats : result -> Distsim.Engine.stats

(** [run points ~radius] executes the full protocol stack on the unit
    disk graph of [points]. *)
val run : Geometry.Point.t array -> radius:float -> result


(** Output of the LDel² pipeline variant. *)
type ldel2_result = {
  l2_triangles : (int * int * int) list;
  l2_gabriel_edges : (int * int) list;
  l2_graph : Netgraph.Graph.t;
  l2_stats : Distsim.Engine.stats;  (** the LDel² phase only *)
}

(** [run_ldel2 points ~radius] is the alternative pipeline: identical
    clustering/connectors/status phases, then the {b 2-hop} localized
    Delaunay — one [NeighborTable] broadcast per node replaces
    Algorithm 3's two triangle-gossip rounds because LDel² is planar
    outright.  The result equals the centralized
    [Ldel.build_k ~k:2] over ICDS (tested). *)
val run_ldel2 : Geometry.Point.t array -> radius:float -> ldel2_result
