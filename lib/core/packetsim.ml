module G = Netgraph.Graph
module E = Distsim.Engine

let c_packets = Obs.counter "packetsim.packets"
let c_delivered = Obs.counter "packetsim.delivered"
let d_tx = Obs.dist "packetsim.transmissions"
let d_rounds = Obs.dist "packetsim.rounds"
let g_delivery_ratio = Obs.gauge "packetsim.delivery_ratio"

type result = {
  delivered : bool;
  path : int list;
  transmissions : int;
  rounds : int;
}

(* The packet: destination, GFG header, the intended next hop (radio
   unicast = named broadcast), remaining TTL, and the trajectory for
   verification. *)
type packet = {
  dst : int;
  header : Routing.header;
  next_hop : int;
  ttl : int;
  trace : int list;  (* reversed *)
}

type node_state = {
  mutable ns_delivered : int list option;  (* the packet's path if it ended here *)
}

let run_one g points ~src ~dst ~use_perimeter =
  (* forwarding decisions read the destination off the packet itself,
     as a radio would; [run_one]'s [dst] only originates and collects *)
  let step ~dst u header =
    match header with
    | Routing.Greedy when not use_perimeter -> begin
      (* plain greedy discipline: never enter perimeter mode *)
      if u = dst then Routing.Deliver
      else
        match
          List.fold_left
            (fun acc v ->
              let dv = Geometry.Point.dist points.(v) points.(dst) in
              match acc with
              | Some (_, dbest) when dbest <= dv -> acc
              | _ ->
                if dv < Geometry.Point.dist points.(u) points.(dst) then
                  Some (v, dv)
                else acc)
            None (G.neighbors g u)
        with
        | Some (v, _) -> Routing.Forward (v, Routing.Greedy)
        | None -> Routing.Drop
    end
    | header -> Routing.gfg_step g points ~dst u header
  in
  let ttl0 = (4 * G.edge_count g) + 16 in
  let proto =
    {
      E.init = (fun _ _ -> { ns_delivered = None });
      E.on_round =
        (fun ctx st inbox ->
          let me = ctx.E.me in
          let handle (pkt : packet) =
            if pkt.next_hop = me && pkt.ttl > 0 then begin
              let trace = me :: pkt.trace in
              match step ~dst:pkt.dst me pkt.header with
              | Routing.Deliver -> st.ns_delivered <- Some (List.rev trace)
              | Routing.Drop -> ()
              | Routing.Forward (v, header') ->
                ctx.E.broadcast
                  { pkt with header = header'; next_hop = v;
                    ttl = pkt.ttl - 1; trace }
            end
          in
          if ctx.E.round = 0 && me = src then begin
            if src = dst then st.ns_delivered <- Some [ src ]
            else
              (* originate: the source makes the first forwarding
                 decision and transmits *)
              handle
                { dst; header = Routing.Greedy; next_hop = src; ttl = ttl0;
                  trace = [] }
          end;
          List.iter (fun d -> handle d.E.msg) inbox;
          st);
    }
  in
  let states, stats = E.run ~classify:(fun _ -> "Data") g proto in
  Obs.incr c_packets;
  Obs.observe d_tx (float_of_int (E.total_sent stats));
  Obs.observe d_rounds (float_of_int stats.E.rounds);
  match states.(dst).ns_delivered with
  | Some path ->
    Obs.incr c_delivered;
    {
      delivered = true;
      path;
      transmissions = E.total_sent stats;
      rounds = stats.E.rounds;
    }
  | None ->
    {
      delivered = false;
      path = [];
      transmissions = E.total_sent stats;
      rounds = stats.E.rounds;
    }

let gpsr g points ~src ~dst = run_one g points ~src ~dst ~use_perimeter:true

let greedy g points ~src ~dst =
  run_one g points ~src ~dst ~use_perimeter:false

let many g points ~pairs rng ~router =
  Obs.span "packetsim.many" @@ fun () ->
  let n = G.node_count g in
  let delivered = ref 0 and tx = ref 0 and sent = ref 0 in
  while !sent < pairs do
    let src = Wireless.Rand.int rng n and dst = Wireless.Rand.int rng n in
    if src <> dst then begin
      incr sent;
      let r =
        match router with
        | `Gpsr -> gpsr g points ~src ~dst
        | `Greedy -> greedy g points ~src ~dst
      in
      if r.delivered then begin
        incr delivered;
        tx := !tx + r.transmissions
      end
    end
  done;
  if !Obs.on && pairs > 0 then
    Obs.set_gauge g_delivery_ratio
      (float_of_int !delivered /. float_of_int pairs);
  ( !delivered,
    pairs,
    if !delivered = 0 then 0. else float_of_int !tx /. float_of_int !delivered
  )
