(** Localized Delaunay triangulation (Algorithms 2 and 3).

    [LDel¹(G)] is the planar-izable proxy for the true Delaunay
    triangulation that each node can compute from 1-hop information:
    its edges are the Gabriel edges of [G] plus the edges of every
    triangle [uvw] whose circumcircle is empty of the 1-hop
    neighborhoods of all three corners (equivalently: [uvw] is a
    Delaunay triangle of [Del(N₁(x))] for each corner [x]) and whose
    edges all fit within the transmission radius.

    [LDel¹] can still contain crossing triangles from distant
    neighborhoods; Algorithm 3 removes, for every intersecting pair,
    any triangle whose circumcircle contains a corner of the other —
    the survivors plus the Gabriel edges form the planar graph
    [PLDel(G)] the paper routes on.

    The functions here are the centralized reference computation; the
    message-level protocol in {!Protocol} produces identical output
    (asserted by the integration tests). *)

type t = {
  ldel1 : Netgraph.Graph.t;  (** LDel¹: Gabriel edges + triangle edges *)
  planar : Netgraph.Graph.t;
      (** PLDel: Gabriel edges + surviving triangle edges *)
  gabriel_edges : (int * int) list;  (** with [u < v], sorted *)
  triangles : (int * int * int) list;
      (** accepted 1-localized Delaunay triangles, sorted triples *)
  kept_triangles : (int * int * int) list;
      (** triangles surviving planarization *)
}

(** [build g points ~radius] computes LDel¹ and PLDel of the unit disk
    graph [g] (edges of [g] must join nodes at distance [<= radius];
    nodes with no incident edge are simply isolated — this is how the
    construction runs on the induced backbone ICDS, whose vertex set
    is only the dominators and connectors). *)
val build : Netgraph.Graph.t -> Geometry.Point.t array -> radius:float -> t

(** The three edge/triangle lists of a build, without the materialized
    graphs — what the sharded pipeline computes and stitches.  Field
    for field equal to the corresponding fields of {!t}. *)
type csr_parts = {
  p_gabriel : (int * int) list;
  p_triangles : (int * int * int) list;
  p_kept : (int * int * int) list;
}

(** [build_csr csr points ~radius] computes the same lists as {!build}
    directly on a CSR snapshot of the (unit disk or induced backbone)
    graph: per-node local Delaunay triangles, min-corner-owned
    acceptance, owner-side Gabriel filtering, and a bucket-grid
    rendition of Algorithm 3 that only examines triangle pairs whose
    bounding boxes can overlap.  With [owners] (tile partition of the
    node ids) and [pool] all four stages fan out across the pool's
    domains; per-tile results merge by deterministic sorts, so the
    output is bit-identical to {!build}'s lists for any tiling and
    any job count. *)
val build_csr :
  ?pool:Netgraph.Pool.t ->
  ?owners:int array array ->
  Netgraph.Csr.t ->
  Geometry.Point.t array ->
  radius:float ->
  csr_parts

(** [of_parts n parts] materializes the two graphs from the lists,
    yielding a record equal to the serial {!build}'s. *)
val of_parts : int -> csr_parts -> t

(** [build_k g points ~radius ~k] is the k-localized Delaunay graph
    [LDel^k]: triangles must have circumcircles empty of every
    corner's k-hop neighborhood.  Li et al. prove [LDel^k] is planar
    outright for [k >= 2] (the [planar]/[ldel1] fields then coincide —
    the test-suite verifies this empirically); larger [k] trades
    communication for fewer crossings.  [build_k ~k:1 = build].
    @raise Invalid_argument when [k < 1]. *)
val build_k :
  Netgraph.Graph.t -> Geometry.Point.t array -> radius:float -> k:int -> t

(** [local_delaunay_triangles_k g points ~k u] is the k-hop analogue
    of {!local_delaunay_triangles}: triangles incident to [u] in
    [Del(N_k(u))]. *)
val local_delaunay_triangles_k :
  Netgraph.Graph.t ->
  Geometry.Point.t array ->
  k:int ->
  int ->
  (int * int * int) list

(** [local_delaunay_triangles g points u] is the set of triangles
    incident to [u] in [Del(N₁(u))] — what node [u] computes in
    Algorithm 2 — as normalized sorted triples. *)
val local_delaunay_triangles :
  Netgraph.Graph.t -> Geometry.Point.t array -> int -> (int * int * int) list

(** Same computation from a node's own view: its id, position, and
    1-hop neighbors with positions.  The distributed protocol calls
    this with exactly the data its messages carry, so protocol and
    centralized builds coincide by construction. *)
val local_triangles_of_neighborhood :
  me:int ->
  me_pos:Geometry.Point.t ->
  nbrs:(int * Geometry.Point.t) list ->
  (int * int * int) list

(** [triangle_fits points ~radius t] checks all three links fit the
    transmission range. *)
val triangle_fits :
  Geometry.Point.t array -> radius:float -> int * int * int -> bool

(** [planarize g points tris] is Algorithm 3: for every pair of
    intersecting triangles whose corners can hear of each other in
    [g] (1-hop gathering), remove any whose circumcircle contains a
    corner of the other; returns the survivors. *)
val planarize :
  Netgraph.Graph.t ->
  Geometry.Point.t array ->
  (int * int * int) list ->
  (int * int * int) list

(** Gabriel edges of [g] (each with [u < v], sorted). *)
val gabriel_edges_of :
  Netgraph.Graph.t -> Geometry.Point.t array -> (int * int) list

(** [circumcircle_contains points t v] holds when node [v] (not a
    corner) lies strictly inside [t]'s circumcircle. *)
val circumcircle_contains :
  Geometry.Point.t array -> int * int * int -> int -> bool

(** [triangles_intersect points t1 t2] decides whether two triangles
    overlap improperly: an edge of one properly crosses an edge of the
    other, or a non-shared corner lies strictly inside the other
    triangle.  Triangles merely sharing a vertex or an edge do not
    intersect. *)
val triangles_intersect :
  Geometry.Point.t array -> int * int * int -> int * int * int -> bool
