(** Localized geographic routing on the constructed topologies.

    The backbone exists to be routed on: the paper pairs it with
    Dominating-Set-Based Routing and with Greedy Perimeter Stateless
    Routing (GPSR), which needs the planar [LDel(ICDS)] for its
    perimeter mode.  Everything here is stateless per-packet routing
    from purely local information (positions of self, neighbors and
    the destination), as in the protocols the paper cites.

    All routers return the traversed node path (inclusive of both
    endpoints), or [None] when the packet is dropped (greedy local
    minimum with no recovery, or a step budget exhausted).

    Every router exists in two forms: a [_v] primary over a
    {!Netgraph.View.t} (so sealed CSR snapshots route without thawing
    into a mutable graph) and the historical [Graph]-typed adapter,
    which is the [_v] form composed with [View.of_graph].  Routes are
    identical in both representations. *)

val greedy_v :
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val compass_v :
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val mfr_v :
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val nfp_v :
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val gfg_v :
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [greedy g points ~src ~dst] forwards to the neighbor strictly
    closest to the destination; fails at a local minimum. *)
val greedy :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [compass g points ~src ~dst] forwards to the neighbor whose
    direction is angularly closest to the destination's (Kranakis et
    al.); unlike greedy it can loop, so traversal is cycle-guarded
    and returns [None] on a revisit. *)
val compass :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [mfr g points ~src ~dst] is Most Forward within Radius
    (Takagi–Kleinrock): forward to the neighbor with the largest
    progress — the projection of the step onto the line toward the
    destination; fails when no neighbor makes positive progress. *)
val mfr :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [nfp g points ~src ~dst] is Nearest with Forward Progress (Hou &
    Li): the closest neighbor that still makes positive progress —
    the power-friendly variant. *)
val nfp :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [gfg g points ~src ~dst] is greedy routing with face-routing
    recovery (GPSR's perimeter mode: right-hand rule plus the
    cross-the-[sd]-line face changes).  Delivery is guaranteed when
    [g] is planar and [src], [dst] are in the same component. *)
val gfg :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** The GFG packet header: greedy mode, or perimeter mode with the
    face-traversal state GPSR carries in its packets. *)
type perimeter = {
  p_entry : Geometry.Point.t;
  p_entry_dist : float;
  p_best_cross : float;
  p_start : int * int;
  p_first : bool;
}

type header = Greedy | Perimeter of perimeter * int

type decision = Deliver | Forward of int * header | Drop

(** [gfg_step g points ~dst u header] is one forwarding decision at
    node [u], from purely local information (u's neighbors and the
    header).  {!gfg} is the fold of this step; {!Packetsim} runs the
    same step inside the message-passing simulator, so path-level and
    packet-level GPSR agree exactly (tested). *)
val gfg_step :
  Netgraph.Graph.t ->
  Geometry.Point.t array ->
  dst:int ->
  int ->
  header ->
  decision

val gfg_step_v :
  Netgraph.View.t ->
  Geometry.Point.t array ->
  dst:int ->
  int ->
  header ->
  decision

(** [hierarchical backbone ~src ~dst] is dominating-set-based routing:
    a direct hop when the nodes are adjacent, otherwise src → its
    dominator → GFG over the planar backbone [LDel(ICDS)] (routed on
    the sealed [planar_csr] snapshot) → dst's dominator → dst. *)
val hierarchical : Backbone.t -> src:int -> dst:int -> int list option

(** Success statistics of a router over every connected node pair:
    delivery ratio, and average stretch of delivered routes relative
    to the UDG shortest path (length and hops). *)
type evaluation = {
  pairs : int;
  delivered : int;
  avg_length_stretch : float;  (** over delivered pairs *)
  avg_hop_stretch : float;
}

(** [evaluate ~router ~base points ~pairs rng] samples [pairs] random
    connected node pairs in [base] and runs [router] on each. *)
val evaluate :
  router:(src:int -> dst:int -> int list option) ->
  base:Netgraph.Graph.t ->
  Geometry.Point.t array ->
  pairs:int ->
  Wireless.Rand.t ->
  evaluation

val evaluate_v :
  router:(src:int -> dst:int -> int list option) ->
  base:Netgraph.View.t ->
  Geometry.Point.t array ->
  pairs:int ->
  Wireless.Rand.t ->
  evaluation
