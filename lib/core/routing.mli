(** Localized geographic routing on the constructed topologies.

    The backbone exists to be routed on: the paper pairs it with
    Dominating-Set-Based Routing and with Greedy Perimeter Stateless
    Routing (GPSR), which needs the planar [LDel(ICDS)] for its
    perimeter mode.  Everything here is stateless per-packet routing
    from purely local information (positions of self, neighbors and
    the destination), as in the protocols the paper cites.

    All routers return the traversed node path (inclusive of both
    endpoints), or [None] when the packet is dropped (greedy local
    minimum with no recovery, or a step budget exhausted).

    Every router exists in three forms: an [_into] kernel routing
    into a caller-owned {!Scratch.t} with no per-query allocation on
    the steady path (the serve engine's form), a [_v] wrapper over a
    {!Netgraph.View.t} returning the path as a list (so sealed CSR
    snapshots route without thawing into a mutable graph), and the
    historical [Graph]-typed adapter, which is the [_v] form composed
    with [View.of_graph].  Routes are bit-identical in all three.

    Node-id handling is uniform: [src = dst] delivers the trivial
    path [[src]] (hop count 0), and an out-of-range [src] or [dst]
    drops the query ([None] / [-1]) instead of raising. *)

(** Reusable per-query state: an epoch-stamped visited mark array
    (bumping the stamp retires every mark in O(1) — no per-query
    Hashtbl), a growable path buffer, float registers and the
    neighbor-scan closures, all allocated once and reused across
    queries.  A scratch is single-domain state: share one per worker,
    never across workers. *)
module Scratch : sig
  type t

  (** [create ~n ()] pre-sizes the visited marks for [n]-node graphs;
      every buffer still grows on demand, so any scratch serves any
      graph. *)
  val create : ?n:int -> unit -> t

  (** The last delivered path lives in [path t].(0 .. path_len t - 1)
      (src and dst inclusive); [path_len] is [0] after a drop.  The
      array is borrowed — read it before the next query, never write
      it. *)
  val path : t -> int array

  val path_len : t -> int

  (** Allocating copy of the last delivered path. *)
  val path_list : t -> int list
end

(** The [_into] kernels: route and leave the path in the scratch,
    returning the hop count ([>= 0], with [0] for [src = dst]) or
    [-1] when the packet is dropped (including out-of-range ids).
    Unlike the [_v] wrappers they record no per-route obs metrics
    (the serve engine aggregates its own), with one exception: the
    [routing.gfg.steps] counter, which counts forwarding decisions
    exactly as the historical implementation did. *)

val greedy_into :
  Scratch.t -> Netgraph.View.t -> Geometry.Point.t array ->
  src:int -> dst:int -> int

val compass_into :
  Scratch.t -> Netgraph.View.t -> Geometry.Point.t array ->
  src:int -> dst:int -> int

val mfr_into :
  Scratch.t -> Netgraph.View.t -> Geometry.Point.t array ->
  src:int -> dst:int -> int

val nfp_into :
  Scratch.t -> Netgraph.View.t -> Geometry.Point.t array ->
  src:int -> dst:int -> int

val gfg_into :
  Scratch.t -> Netgraph.View.t -> Geometry.Point.t array ->
  src:int -> dst:int -> int

(** The [_v] wrappers accept an optional scratch to reuse; without
    one, each call allocates a fresh scratch sized to the view. *)

val greedy_v :
  ?scratch:Scratch.t ->
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val compass_v :
  ?scratch:Scratch.t ->
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val mfr_v :
  ?scratch:Scratch.t ->
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val nfp_v :
  ?scratch:Scratch.t ->
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

val gfg_v :
  ?scratch:Scratch.t ->
  Netgraph.View.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [greedy g points ~src ~dst] forwards to the neighbor strictly
    closest to the destination; fails at a local minimum. *)
val greedy :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [compass g points ~src ~dst] forwards to the neighbor whose
    direction is angularly closest to the destination's (Kranakis et
    al.); unlike greedy it can loop, so traversal is cycle-guarded
    and returns [None] on a revisit. *)
val compass :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [mfr g points ~src ~dst] is Most Forward within Radius
    (Takagi–Kleinrock): forward to the neighbor with the largest
    progress — the projection of the step onto the line toward the
    destination; fails when no neighbor makes positive progress. *)
val mfr :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [nfp g points ~src ~dst] is Nearest with Forward Progress (Hou &
    Li): the closest neighbor that still makes positive progress —
    the power-friendly variant. *)
val nfp :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** [gfg g points ~src ~dst] is greedy routing with face-routing
    recovery (GPSR's perimeter mode: right-hand rule plus the
    cross-the-[sd]-line face changes).  Delivery is guaranteed when
    [g] is planar and [src], [dst] are in the same component. *)
val gfg :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int ->
  int list option

(** The GFG packet header: greedy mode, or perimeter mode with the
    face-traversal state GPSR carries in its packets. *)
type perimeter = {
  p_entry : Geometry.Point.t;
  p_entry_dist : float;
  p_best_cross : float;
  p_start : int * int;
  p_first : bool;
}

type header = Greedy | Perimeter of perimeter * int

type decision = Deliver | Forward of int * header | Drop

(** [gfg_step g points ~dst u header] is one forwarding decision at
    node [u], from purely local information (u's neighbors and the
    header).  {!gfg} is the fold of this step; {!Packetsim} runs the
    same step inside the message-passing simulator, so path-level and
    packet-level GPSR agree exactly (tested). *)
val gfg_step :
  Netgraph.Graph.t ->
  Geometry.Point.t array ->
  dst:int ->
  int ->
  header ->
  decision

val gfg_step_v :
  Netgraph.View.t ->
  Geometry.Point.t array ->
  dst:int ->
  int ->
  header ->
  decision

(** [hierarchical backbone ~src ~dst] is dominating-set-based routing:
    a direct hop when the nodes are adjacent, otherwise src → its
    dominator → GFG over the planar backbone [LDel(ICDS)] (routed on
    the sealed [planar_csr] snapshot) → dst's dominator → dst. *)
val hierarchical : Backbone.t -> src:int -> dst:int -> int list option

(** Success statistics of a router over every connected node pair:
    delivery ratio, and average stretch of delivered routes relative
    to the UDG shortest path (length and hops). *)
type evaluation = {
  pairs : int;
  delivered : int;
  avg_length_stretch : float;  (** over delivered pairs *)
  avg_hop_stretch : float;
}

(** [evaluate ~router ~base points ~pairs rng] samples [pairs] random
    connected node pairs in [base] and runs [router] on each. *)
val evaluate :
  router:(src:int -> dst:int -> int list option) ->
  base:Netgraph.Graph.t ->
  Geometry.Point.t array ->
  pairs:int ->
  Wireless.Rand.t ->
  evaluation

val evaluate_v :
  router:(src:int -> dst:int -> int list option) ->
  base:Netgraph.View.t ->
  Geometry.Point.t array ->
  pairs:int ->
  Wireless.Rand.t ->
  evaluation
