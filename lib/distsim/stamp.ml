(* The single writer of causally-stamped protocol trace events (lint
   rule O002): both engines route their Send/Deliver emission through
   here, so Lamport clocks never fork.  Clocks are per-run arrays —
   engines are single-domain, so plain mutation is safe. *)

type t = { lam : int array; seq : int array }

let create n = { lam = Array.make n 0; seq = Array.make n 0 }

let send t ~round ~time ~kind ~src =
  let lam = t.lam.(src) + 1 in
  t.lam.(src) <- lam;
  let sseq = t.seq.(src) in
  t.seq.(src) <- sseq + 1;
  if !Obs.Trace.on then
    Obs.Trace.send ~round ~time ~kind ~src ~dst:(-1) ~lam ~sseq;
  (lam, sseq)

let deliver t ~round ~time ~kind ~src ~dst ~sent_lam ~sseq =
  let lam = (if t.lam.(dst) > sent_lam then t.lam.(dst) else sent_lam) + 1 in
  t.lam.(dst) <- lam;
  let dseq = t.seq.(dst) in
  t.seq.(dst) <- dseq + 1;
  if !Obs.Trace.on then
    Obs.Trace.deliver ~round ~time ~kind ~src ~dst ~lam ~sseq ~dseq
