(** Asynchronous message-passing simulator.

    The synchronous {!Engine} steps all nodes in lockstep rounds; real
    radios do not.  This engine is event-driven: a broadcast from [u]
    at time [t] is delivered to each neighbor [v] at [t + delay ~from:u
    ~dst:v ~seq], where [delay] is supplied by the caller (and can be
    adversarial — per-link, per-message, reordering messages at will,
    as long as it is positive).  There are no rounds and no global
    clock visible to nodes; a node reacts only to deliveries.

    The paper claims its clustering "can also be implemented using
    asynchronous communications" when each node knows its neighbor
    count a priori; {!Core.Async_cluster} runs that protocol here and
    the test-suite checks the resulting maximal independent set is
    identical to the synchronous one under randomized delays. *)

type 'msg delivery = { from : int; time : float; msg : 'msg }

type 'msg context = {
  me : int;
  now : float;
  neighbors : int list;
  broadcast : 'msg -> unit;
      (** transmit once; each neighbor receives it after its own delay *)
}

type ('state, 'msg) protocol = {
  init : int -> int list -> 'state;
  on_start : 'msg context -> 'state -> 'state;
      (** called once per node at time 0, in id order *)
  on_message : 'msg context -> 'state -> 'msg delivery -> 'state;
}

type stats = {
  deliveries : int;  (** total point-to-point deliveries *)
  sent : int array;  (** transmissions per node *)
  finish_time : float;  (** time of the last delivery *)
  by_kind : (string * int) list;
      (** total transmissions per message kind, sorted by kind *)
}

(** [run ~delay ~max_messages graph protocol] drives the event loop to
    quiescence (empty event queue).  [delay ~from ~dst ~seq] gives the
    latency of the [seq]-th transmission overall from [from] to [dst];
    it must be [> 0].  [max_messages] (default [10_000_000]) bounds
    total deliveries — exceeding it signals a non-terminating
    protocol.  [classify] names each message's kind for the per-kind
    stats, obs counters ([distsim.async.msg.<kind>]) and trace events
    (default: every message is ["msg"]).
    @raise Failure when the delivery bound is exceeded.
    @raise Invalid_argument on a non-positive delay. *)
val run :
  ?max_messages:int ->
  ?classify:('msg -> string) ->
  delay:(from:int -> dst:int -> seq:int -> float) ->
  Netgraph.Graph.t ->
  ('state, 'msg) protocol ->
  'state array * stats
