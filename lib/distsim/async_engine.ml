let c_runs = Obs.counter "distsim.async.runs"
let c_sent = Obs.counter "distsim.async.sent"
let c_deliveries = Obs.counter "distsim.async.deliveries"
let d_sent = Obs.dist "distsim.async.sent_per_node"
let g_finish = Obs.gauge "distsim.async.finish_time"

type 'msg delivery = { from : int; time : float; msg : 'msg }

type 'msg context = {
  me : int;
  now : float;
  neighbors : int list;
  broadcast : 'msg -> unit;
}

type ('state, 'msg) protocol = {
  init : int -> int list -> 'state;
  on_start : 'msg context -> 'state -> 'state;
  on_message : 'msg context -> 'state -> 'msg delivery -> 'state;
}

type stats = {
  deliveries : int;
  sent : int array;
  finish_time : float;
  by_kind : (string * int) list;
}

(* Event queue: a binary min-heap on (time, tiebreak).  The tiebreak
   (a global sequence number) makes simultaneous deliveries process in
   send order, keeping runs deterministic for a deterministic delay
   function. *)
module Heap = struct
  type 'a t = { mutable data : (float * int * 'a) array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let lt (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push h ((_, _, _) as e) =
    if h.size = Array.length h.data then begin
      let cap = max 16 (2 * h.size) in
      let bigger = Array.make cap e in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && lt h.data.(!i) h.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(p);
      h.data.(p) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 and continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let run ?(max_messages = 10_000_000) ?(classify = fun _ -> "msg") ~delay graph
    protocol =
  let n = Netgraph.Graph.node_count graph in
  let neighbors = Array.init n (Netgraph.Graph.neighbors graph) in
  let states = Array.init n (fun i -> protocol.init i neighbors.(i)) in
  let sent = Array.make n 0 in
  let kinds = Hashtbl.create 8 in
  let queue = Heap.create () in
  let stamp = Stamp.create n in
  let seq = ref 0 in
  let tiebreak = ref 0 in
  let transmit u now m =
    sent.(u) <- sent.(u) + 1;
    let k = classify m in
    Hashtbl.replace kinds k
      (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k));
    let lam, sseq = Stamp.send stamp ~round:(-1) ~time:now ~kind:k ~src:u in
    List.iter
      (fun v ->
        let d = delay ~from:u ~dst:v ~seq:!seq in
        if d <= 0. then invalid_arg "Async_engine.run: non-positive delay";
        incr tiebreak;
        (* encode the receiver in the payload triple via a wrapper *)
        Heap.push queue
          (now +. d, !tiebreak, (v, lam, sseq, { from = u; time = now +. d; msg = m })))
      neighbors.(u);
    incr seq
  in
  let ctx u now =
    { me = u; now; neighbors = neighbors.(u); broadcast = (fun m -> transmit u now m) }
  in
  for u = 0 to n - 1 do
    states.(u) <- protocol.on_start (ctx u 0.) states.(u)
  done;
  let deliveries = ref 0 in
  let finish = ref 0. in
  let rec loop () =
    match Heap.pop queue with
    | None -> ()
    | Some (t, _, (v, lam, sseq, d)) ->
      incr deliveries;
      if !deliveries > max_messages then
        failwith "Async_engine.run: delivery bound exceeded";
      finish := t;
      let k = if !Obs.Trace.on then classify d.msg else "" in
      Stamp.deliver stamp ~round:(-1) ~time:t ~kind:k ~src:d.from ~dst:v
        ~sent_lam:lam ~sseq;
      states.(v) <- protocol.on_message (ctx v t) states.(v) d;
      loop ()
  in
  loop ();
  let by_kind =
    List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) kinds [])
  in
  if !Obs.on then begin
    Obs.incr c_runs;
    Obs.add c_sent (Array.fold_left ( + ) 0 sent);
    Obs.add c_deliveries !deliveries;
    Obs.set_gauge g_finish !finish;
    Array.iter (fun s -> Obs.observe d_sent (float_of_int s)) sent;
    List.iter
      (fun (k, c) -> Obs.add (Obs.counter ("distsim.async.msg." ^ k)) c)
      by_kind
  end;
  (states,
   { deliveries = !deliveries; sent; finish_time = !finish; by_kind })
