(* The per-run [stats] record remains the protocol-facing return value
   (figures 10/12 need per-node counts per phase), but every run also
   settles its tallies into the global obs counters below, so message
   work is reported through the same channel as the predicate and
   Delaunay counters.  The flush happens once per run — nothing is
   charged per message. *)
let c_runs = Obs.counter "distsim.runs"
let c_rounds = Obs.counter "distsim.rounds"
let c_messages = Obs.counter "distsim.messages"
let d_sent = Obs.dist "distsim.sent_per_node"
let d_round_messages = Obs.dist "distsim.round_messages"
let g_last_round_messages = Obs.gauge "distsim.last_round_messages"

let flush_stats_to_obs ~rounds ~sent ~by_kind =
  if !Obs.on then begin
    Obs.incr c_runs;
    Obs.add c_rounds rounds;
    Obs.add c_messages (Array.fold_left ( + ) 0 sent);
    Array.iter (fun s -> Obs.observe d_sent (float_of_int s)) sent;
    List.iter
      (fun (k, c) -> Obs.add (Obs.counter ("distsim.msg." ^ k)) c)
      by_kind
  end

type 'msg delivery = { from : int; msg : 'msg }

type 'msg context = {
  me : int;
  round : int;
  neighbors : int list;
  broadcast : 'msg -> unit;
}

type ('state, 'msg) protocol = {
  init : int -> int list -> 'state;
  on_round : 'msg context -> 'state -> 'msg delivery list -> 'state;
}

type stats = {
  rounds : int;
  sent : int array;
  by_kind : (string * int) list;
}

let max_sent s = Array.fold_left max 0 s.sent

let avg_sent s =
  let n = Array.length s.sent in
  if n = 0 then 0.
  else float_of_int (Array.fold_left ( + ) 0 s.sent) /. float_of_int n

let total_sent s = Array.fold_left ( + ) 0 s.sent

let merge s1 s2 =
  if Array.length s1.sent <> Array.length s2.sent then
    invalid_arg "Engine.merge: node count mismatch";
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, c) -> Hashtbl.replace tbl k c) s1.by_kind;
  List.iter
    (fun (k, c) ->
      Hashtbl.replace tbl k (c + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    s2.by_kind;
  {
    rounds = s1.rounds + s2.rounds;
    sent = Array.init (Array.length s1.sent) (fun i -> s1.sent.(i) + s2.sent.(i));
    by_kind =
      List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []);
  }

let run ?max_rounds ~classify graph protocol =
  let n = Netgraph.Graph.node_count graph in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 16) in
  let neighbors = Array.init n (Netgraph.Graph.neighbors graph) in
  let states = Array.init n (fun i -> protocol.init i neighbors.(i)) in
  let sent = Array.make n 0 in
  let kinds = Hashtbl.create 16 in
  let stamp = Stamp.create n in
  (* Messages in flight: those broadcast this round, delivered next
     round.  Inboxes are rebuilt per round in sender order, so a
     node's inbox is sorted by sender id. *)
  let in_flight = ref [] (* (sender, lam, sseq, msg) in reverse send order *) in
  let rounds = ref 0 in
  let quiescent = ref false in
  while not !quiescent do
    if !rounds >= max_rounds then
      failwith
        (Printf.sprintf "Engine.run: no quiescence after %d rounds" max_rounds);
    let inboxes = Array.make n [] in
    List.iter
      (fun (s, lam, sseq, m) ->
        let k = if !Obs.Trace.on then classify m else "" in
        List.iter
          (fun v ->
            inboxes.(v) <- { from = s; msg = m } :: inboxes.(v);
            Stamp.deliver stamp ~round:!rounds ~time:0. ~kind:k ~src:s ~dst:v
              ~sent_lam:lam ~sseq)
          neighbors.(s))
      !in_flight;
    for i = 0 to n - 1 do
      inboxes.(i) <- List.rev inboxes.(i)
    done;
    in_flight := [];
    let sent_this_round = ref false in
    for u = 0 to n - 1 do
      let ctx =
        {
          me = u;
          round = !rounds;
          neighbors = neighbors.(u);
          broadcast =
            (fun m ->
              sent.(u) <- sent.(u) + 1;
              sent_this_round := true;
              let k = classify m in
              Hashtbl.replace kinds k
                (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k));
              let lam, sseq =
                Stamp.send stamp ~round:!rounds ~time:0. ~kind:k ~src:u
              in
              in_flight := (u, lam, sseq, m) :: !in_flight);
        }
      in
      states.(u) <- protocol.on_round ctx states.(u) inboxes.(u)
    done;
    in_flight := List.rev !in_flight;
    if !Obs.on then begin
      let m = List.length !in_flight in
      Obs.observe d_round_messages (float_of_int m);
      Obs.set_gauge g_last_round_messages (float_of_int m)
    end;
    incr rounds;
    if not !sent_this_round then quiescent := true
  done;
  let by_kind =
    List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) kinds [])
  in
  let stats = { rounds = !rounds; sent; by_kind } in
  flush_stats_to_obs ~rounds:stats.rounds ~sent ~by_kind;
  (states, stats)
