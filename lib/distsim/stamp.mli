(** Lamport stamping for the distsim engines.

    One [t] per engine run carries a Lamport clock and an event
    sequence per node; {!send} and {!deliver} advance them and emit the
    causally-annotated [Obs.Trace] protocol events.  This is the single
    writer of those events — lint rule O002 rejects raw
    [Obs.Trace.send]/[Obs.Trace.deliver] calls outside [lib/distsim] —
    so the clocks recorded in a trace are coherent by construction and
    [Obs.Causal] can rebuild the happens-before DAG from them.

    Clocks advance whether or not tracing is armed (a few integer ops
    per message); only the event emission is gated on
    [!Obs.Trace.on]. *)

type t

(** [create n] — fresh clocks for an [n]-node run, all zero. *)
val create : int -> t

(** [send t ~round ~time ~kind ~src] ticks [src]'s clock and sequence,
    emits the [Send] event (with [dst = -1]: engines broadcast
    locally), and returns [(lam, sseq)] — the stamp to carry with the
    in-flight message so its deliveries can reference it. *)
val send :
  t -> round:int -> time:float -> kind:string -> src:int -> int * int

(** [deliver t ~round ~time ~kind ~src ~dst ~sent_lam ~sseq] updates
    [dst]'s clock to [max (local, sent_lam) + 1], ticks its sequence,
    and emits the [Deliver] event referencing send [(src, sseq)]. *)
val deliver :
  t ->
  round:int ->
  time:float ->
  kind:string ->
  src:int ->
  dst:int ->
  sent_lam:int ->
  sseq:int ->
  unit
