(* Benchmark and experiment harness.

   Running with no arguments regenerates every table and figure of the
   paper's evaluation (Section IV), then the ablation studies from
   DESIGN.md, then Bechamel micro-benchmarks of the construction
   algorithms.  Individual artifacts can be selected:

     dune exec bench/main.exe -- table1 fig8 fig12
     dune exec bench/main.exe -- --quick          # smaller instances
     dune exec bench/main.exe -- metrics --check  # regression gate

   --check re-runs a gated benchmark (metrics, pipeline, serve) and
   compares it against its committed BENCH_*.json baseline: counters
   must match exactly, span timings may regress by at most
   --check-threshold (default 0.5, i.e. +50%).  The baseline's
   bench.jobs pin is validated before anything is compared.  Any
   violation fails the run with exit code 1.  The pipeline gate
   compares only top-level spans — nested stage spans are
   milliseconds-scale and dominated by scheduler noise, while the
   determinism counters (edge counts per structure) already pin the
   outputs exactly.

   Reported numbers are deterministic for a fixed configuration. *)

let pf = Format.printf

(* --out DIR: also export each figure's series as CSV and SVG charts *)
let out_dir : string option ref = ref None

(* --stats: per-artifact obs report (counters + stage spans) *)
let with_stats = ref false

let chart_series (s : Core.Experiments.series) =
  { Viz.Chart.label = s.Core.Experiments.label; points = s.Core.Experiments.points }

let export name ~xlabel series =
  match !out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    (* CSV: one row per x, one column per curve.  Each curve's points
       are materialized as an array once (row lookups are O(1), not
       List.nth), and a curve shorter than the x column yields empty
       cells instead of raising. *)
    let csv = Filename.concat dir (name ^ ".csv") in
    let oc = open_out csv in
    (match series with
    | [] -> ()
    | first :: _ ->
      Printf.fprintf oc "x,%s\n"
        (String.concat ","
           (List.map (fun s -> s.Core.Experiments.label) series));
      let cols =
        List.map (fun s -> Array.of_list s.Core.Experiments.points) series
      in
      List.iteri
        (fun i (x, _) ->
          Printf.fprintf oc "%g" x;
          List.iter
            (fun col ->
              if i < Array.length col then
                Printf.fprintf oc ",%g" (snd col.(i))
              else output_string oc ",")
            cols;
          output_char oc '\n')
        first.Core.Experiments.points);
    close_out oc;
    (* SVG panels: split max and avg curves as the paper does *)
    let has_suffix suf (s : Core.Experiments.series) =
      let l = s.Core.Experiments.label and n = String.length suf in
      String.length l >= n && String.sub l (String.length l - n) n = suf
    in
    let panel suffix =
      match List.filter (has_suffix suffix) series with
      | [] -> ()
      | sel ->
        let file =
          Filename.concat dir
            (Printf.sprintf "%s-%s.svg" name
               (String.concat "" (String.split_on_char ' ' suffix)))
        in
        Viz.Chart.write_file
          ~title:(name ^ " (" ^ String.trim suffix ^ ")")
          ~xlabel ~ylabel:(String.trim suffix)
          (List.map chart_series sel)
          file
    in
    if List.exists (has_suffix " max") series then begin
      panel " max";
      panel " avg"
    end
    else
      Viz.Chart.write_file ~title:name ~xlabel ~ylabel:"value"
        (List.map chart_series series)
        (Filename.concat dir (name ^ ".svg"));
    pf "  [exported %s to %s]@." name dir

let header title =
  pf "@.============================================================@.";
  pf "%s@." title;
  pf "============================================================@."

(* ------------------------------------------------------------------ *)
(* Paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let table1 cfg =
  header
    "Table I: topology quality (n = 100, R = 60, 200x200 square)\n\
     paper-vs-measured comparison recorded in EXPERIMENTS.md";
  let aggs = Core.Experiments.table1 ~cfg ~n:100 ~radius:60. () in
  pf "%a@." Core.Quality.pp_agg_header ();
  List.iter (fun a -> pf "%a@." Core.Quality.pp_agg a) aggs

let fig8 cfg =
  header "Figure 8: node degree vs number of nodes (R = 60)";
  let series = Core.Experiments.degree_vs_n ~cfg ~radius:60. () in
  pf "%a@." Core.Experiments.pp_series series;
  export "fig8" ~xlabel:"number of nodes" series

let fig9 cfg =
  header "Figure 9: spanning ratios vs number of nodes (R = 60)";
  let series = Core.Experiments.stretch_vs_n ~cfg ~radius:60. () in
  pf "%a@." Core.Experiments.pp_series series;
  export "fig9" ~xlabel:"number of nodes" series

let fig10 cfg =
  header "Figure 10: per-node communication cost vs number of nodes (R = 60)";
  let series = Core.Experiments.comm_vs_n ~cfg ~radius:60. () in
  pf "%a@." Core.Experiments.pp_series series;
  export "fig10" ~xlabel:"number of nodes" series

let fig11 cfg n =
  header
    (Printf.sprintf
       "Figure 11: spanning ratios vs transmission radius (n = %d)" n);
  let series = Core.Experiments.stretch_vs_radius ~cfg ~n () in
  pf "%a@." Core.Experiments.pp_series series;
  export "fig11" ~xlabel:"transmission radius" series

let fig12 cfg n =
  header
    (Printf.sprintf
       "Figure 12: communication cost and node degree vs radius (n = %d)" n);
  let series = Core.Experiments.comm_and_degree_vs_radius ~cfg ~n () in
  pf "%a@." Core.Experiments.pp_series series;
  export "fig12" ~xlabel:"transmission radius" series

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 4)                                     *)
(* ------------------------------------------------------------------ *)

let instances cfg n radius =
  let rng = Wireless.Rand.create cfg.Core.Experiments.seed in
  List.init cfg.Core.Experiments.instances (fun _ ->
      fst
        (Wireless.Deploy.connected_uniform rng ~n
           ~side:cfg.Core.Experiments.side ~radius
           ~max_attempts:cfg.Core.Experiments.max_attempts))

let ablation_clustering cfg =
  header "Ablation: clustering priority (smallest-ID vs highest-degree-first)";
  let radius = 60. in
  let stats priority =
    let doms = ref 0. and edges = ref 0. and stretch = ref 0. and k = ref 0 in
    List.iter
      (fun pts ->
        let udg = Wireless.Udg.build pts ~radius in
        let roles =
          Core.Mis.compute_with_priority udg ~priority:(priority udg)
        in
        let conn = Core.Connectors.find udg roles in
        let cds = Core.Cds.build udg roles conn in
        let l = Core.Ldel.build cds.Core.Cds.icds pts ~radius in
        let ldel' = Netgraph.Graph.copy l.Core.Ldel.planar in
        Array.iteri
          (fun u r ->
            if r = Core.Mis.Dominatee then
              List.iter
                (fun d -> Netgraph.Graph.add_edge ldel' u d)
                (Core.Mis.dominators_of udg roles u))
          roles;
        let s = Netgraph.Metrics.stretch_factors ~base:udg ~sub:ldel' pts in
        doms := !doms +. float_of_int (List.length (Core.Mis.dominators roles));
        edges :=
          !edges +. float_of_int (Netgraph.Graph.edge_count cds.Core.Cds.cds);
        stretch := !stretch +. s.Netgraph.Metrics.len_avg;
        incr k)
      (instances cfg 100 radius);
    let k = float_of_int !k in
    (!doms /. k, !edges /. k, !stretch /. k)
  in
  let d1, e1, s1 = stats (fun _ _ -> 0) in
  let d2, e2, s2 = stats (fun udg u -> -Netgraph.Graph.degree udg u) in
  pf "%-22s %10s %10s %12s@." "priority" "dominators" "CDS edges" "len stretch";
  pf "%-22s %10.1f %10.1f %12.3f@." "smallest-ID (paper)" d1 e1 s1;
  pf "%-22s %10.1f %10.1f %12.3f@." "highest-degree-first" d2 e2 s2

let ablation_ldel_scope cfg =
  header "Ablation: LDel over the whole UDG vs over the backbone ICDS";
  let radius = 60. in
  let total_v = ref 0.
  and total_i = ref 0.
  and tris_v = ref 0.
  and tris_i = ref 0. in
  let k = ref 0 in
  List.iter
    (fun pts ->
      let bb = Core.Backbone.build pts ~radius in
      let lv = Core.Backbone.ldel_full bb in
      total_v :=
        !total_v +. float_of_int (Netgraph.Graph.edge_count lv.Core.Ldel.planar);
      total_i :=
        !total_i
        +. float_of_int
             (Netgraph.Graph.edge_count bb.Core.Backbone.ldel_icds_g);
      tris_v := !tris_v +. float_of_int (List.length lv.Core.Ldel.triangles);
      tris_i :=
        !tris_i
        +. float_of_int
             (List.length bb.Core.Backbone.ldel_icds.Core.Ldel.triangles);
      incr k)
    (instances cfg 100 radius);
  let k = float_of_int !k in
  pf "%-18s %12s %12s@." "scope" "PLDel edges" "LDel1 tris";
  pf "%-18s %12.1f %12.1f@." "whole UDG" (!total_v /. k) (!tris_v /. k);
  pf "%-18s %12.1f %12.1f@." "backbone ICDS" (!total_i /. k) (!tris_i /. k)

let ablation_connectors cfg =
  header "Ablation: connector selection (paper elections / Alzoubi / Baker)";
  let radius = 60. in
  let agg = Hashtbl.create 4 in
  let bump key v =
    Hashtbl.replace agg key (v +. Option.value ~default:0. (Hashtbl.find_opt agg key))
  in
  let k = ref 0 in
  List.iter
    (fun pts ->
      let udg = Wireless.Udg.build pts ~radius in
      let roles = Core.Mis.compute udg in
      List.iter
        (fun (name, find) ->
          let conn = find udg roles in
          let cds = Core.Cds.build udg roles conn in
          let connectors =
            Array.fold_left (fun a c -> if c then a + 1 else a) 0
              conn.Core.Connectors.connector
          in
          bump (name, "connectors") (float_of_int connectors);
          bump (name, "cds edges")
            (float_of_int (Netgraph.Graph.edge_count cds.Core.Cds.cds));
          bump (name, "icds edges")
            (float_of_int (Netgraph.Graph.edge_count cds.Core.Cds.icds));
          let s =
            Netgraph.Metrics.stretch_factors ~base:udg ~sub:cds.Core.Cds.cds'
              pts
          in
          bump (name, "hop avg") s.Netgraph.Metrics.hop_avg)
        [
          ("elections (paper)", Core.Connectors.find);
          ("alzoubi single-path", Core.Connectors.find_alzoubi);
          ("baker highest-ID", Core.Connectors.find_baker);
        ];
      incr k)
    (instances cfg 100 radius);
  let kf = float_of_int !k in
  pf "%-22s %11s %10s %11s %9s@." "selection" "connectors" "CDS edges"
    "ICDS edges" "hop avg";
  List.iter
    (fun name ->
      let get m = Hashtbl.find agg (name, m) /. kf in
      pf "%-22s %11.1f %10.1f %11.1f %9.3f@." name (get "connectors")
        (get "cds edges") (get "icds edges") (get "hop avg"))
    [ "elections (paper)"; "alzoubi single-path"; "baker highest-ID" ]

let extension_power_stretch cfg =
  header
    "Extension: power stretch factors (path cost = sum |link|^beta)";
  let radius = 60. in
  let pts = List.hd (instances cfg 100 radius) in
  let bb = Core.Backbone.build pts ~radius in
  let udg = bb.Core.Backbone.udg in
  (* every spanning structure of the registry, measured against the
     UDG base (which is excluded: its power stretch is 1) *)
  let structures =
    List.filter_map
      (fun (name, g, scope) ->
        if scope = `Spans_all && name <> "UDG" then Some (name, g) else None)
      (Core.Backbone.structures bb)
  in
  pf "%-13s %12s %12s %12s %12s@." "structure" "b=2 avg" "b=2 max" "b=4 avg"
    "b=4 max";
  List.iter
    (fun (name, g) ->
      let a2, m2 = Netgraph.Metrics.power_stretch ~base:udg ~sub:g pts ~beta:2. in
      let a4, m4 = Netgraph.Metrics.power_stretch ~base:udg ~sub:g pts ~beta:4. in
      pf "%-13s %12.3f %12.3f %12.3f %12.3f@." name a2 m2 a4 m4)
    structures

let ablation_routing cfg =
  header "Ablation: routing scheme delivery and stretch (n = 100, R = 60)";
  let radius = 60. in
  let pts = List.hd (instances cfg 100 radius) in
  let bb = Core.Backbone.build pts ~radius in
  let planar_full = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
  let rng = Wireless.Rand.create 424242L in
  let eval name router =
    let ev =
      Core.Routing.evaluate ~router ~base:bb.Core.Backbone.udg pts ~pairs:200
        (Wireless.Rand.split rng)
    in
    pf "%-28s %5d/%-5d %12.3f %12.3f@." name ev.Core.Routing.delivered
      ev.Core.Routing.pairs ev.Core.Routing.avg_length_stretch
      ev.Core.Routing.avg_hop_stretch
  in
  pf "%-28s %11s %12s %12s@." "router" "delivered" "len stretch" "hop stretch";
  eval "greedy on UDG" (fun ~src ~dst ->
      Core.Routing.greedy bb.Core.Backbone.udg pts ~src ~dst);
  eval "greedy on PLDel(V)" (fun ~src ~dst ->
      Core.Routing.greedy planar_full pts ~src ~dst);
  eval "GFG on PLDel(V)" (fun ~src ~dst ->
      Core.Routing.gfg planar_full pts ~src ~dst);
  eval "hierarchical on backbone" (fun ~src ~dst ->
      Core.Routing.hierarchical bb ~src ~dst)

let extension_broadcast cfg =
  header "Extension: broadcast transmissions (flooding vs backbone relay)";
  let radius = 60. in
  pf "%-6s %9s %9s %9s %10s@." "n" "flood" "rng-relay" "backbone" "coverage";
  List.iter
    (fun n ->
      let cfg = { cfg with Core.Experiments.instances = 3 } in
      let f = ref 0 and r = ref 0 and b = ref 0 and k = ref 0 in
      let cover = ref 1. in
      List.iter
        (fun pts ->
          let udg = Wireless.Udg.build pts ~radius in
          let cds = Core.Cds.of_udg udg in
          let of_ o = o.Core.Broadcast.transmissions in
          f := !f + of_ (Core.Broadcast.flood udg ~source:0);
          r := !r + of_ (Core.Broadcast.rng_relay udg pts ~source:0);
          let bb = Core.Broadcast.backbone_broadcast udg cds ~source:0 in
          b := !b + of_ bb;
          cover := Float.min !cover (Core.Broadcast.coverage bb);
          incr k)
        (instances cfg n radius);
      pf "%-6d %9.1f %9.1f %9.1f %10.2f@." n
        (float_of_int !f /. float_of_int !k)
        (float_of_int !r /. float_of_int !k)
        (float_of_int !b /. float_of_int !k)
        !cover)
    [ 50; 100; 200 ]

let extension_packet_level cfg =
  header "Extension: packet-level GPSR on the planar backbone (distsim)";
  let radius = 60. in
  let pts = List.hd (instances cfg 100 radius) in
  let bb = Core.Backbone.build pts ~radius in
  let planar = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
  pf "%-10s %11s %16s@." "router" "delivered" "tx/packet";
  List.iter
    (fun (name, router) ->
      let delivered, pairs, avg =
        Core.Packetsim.many planar pts ~pairs:200
          (Wireless.Rand.create 9L)
          ~router
      in
      pf "%-10s %6d/%-6d %16.2f@." name delivered pairs avg)
    [ ("greedy", `Greedy); ("gpsr", `Gpsr) ]

let extension_quasi_udg cfg =
  header
    "Extension: robustness under a quasi unit disk radio (future work)";
  let r_max = 60. in
  pf "%-12s %10s %12s %12s %12s@." "r_min/r_max" "planar" "connected"
    "crossings" "edges";
  List.iter
    (fun alpha ->
      let planar_ok = ref 0 and connected_ok = ref 0 in
      let crossings = ref 0 and edges = ref 0 and k = ref 0 in
      List.iter
        (fun pts ->
          let rng = Wireless.Rand.create (Int64.of_float (alpha *. 1000.)) in
          let g =
            Wireless.Udg.build_quasi rng pts ~r_min:(alpha *. r_max) ~r_max
          in
          if Netgraph.Components.is_connected g then begin
            incr k;
            (* run the paper's construction on the non-ideal graph *)
            let cds = Core.Cds.of_udg g in
            let l = Core.Ldel.build cds.Core.Cds.icds pts ~radius:r_max in
            let planar = l.Core.Ldel.planar in
            if Netgraph.Planarity.is_planar planar pts then incr planar_ok;
            crossings := !crossings + Netgraph.Planarity.crossing_count planar pts;
            edges := !edges + Netgraph.Graph.edge_count planar;
            let spanning = Netgraph.Graph.copy planar in
            Array.iteri
              (fun u r ->
                if r = Core.Mis.Dominatee then
                  List.iter
                    (fun d -> Netgraph.Graph.add_edge spanning u d)
                    (Core.Mis.dominators_of g cds.Core.Cds.roles u))
              cds.Core.Cds.roles;
            if Netgraph.Components.is_connected spanning then incr connected_ok
          end)
        (instances { cfg with Core.Experiments.instances = 5 } 100 r_max);
      let kf = float_of_int (max 1 !k) in
      pf "%-12.2f %6d/%-3d %8d/%-3d %12.1f %12.1f@." alpha !planar_ok !k
        !connected_ok !k
        (float_of_int !crossings /. kf)
        (float_of_int !edges /. kf))
    [ 1.0; 0.9; 0.75; 0.5 ]

let extension_lifetime cfg =
  header
    "Extension: network lifetime, static vs energy-aware clusterhead \
     rotation (beta = 3)";
  let radius = 60. in
  pf "%-16s %12s %8s %10s@." "policy" "first death" "deaths" "delivery";
  let pts = List.hd (instances cfg 100 radius) in
  List.iter
    (fun (name, policy) ->
      let r =
        Core.Energy.run pts ~radius ~sink:0 ~policy ~epochs:100 ~battery:2e8
          ~beta:3.
      in
      pf "%-16s %12s %8d %10.3f@." name
        (match r.Core.Energy.first_death with
        | Some e -> string_of_int e
        | None -> "-")
        (List.length r.Core.Energy.deaths)
        (Core.Energy.delivery_ratio r))
    [
      ("static", Core.Energy.Static);
      ("rotate every 5", Core.Energy.Energy_aware 5);
      ("rotate every 2", Core.Energy.Energy_aware 2);
    ]

let extension_bounds cfg =
  header
    "Extension: the lemmas' theoretical constants vs measured worst cases";
  let radius = 60. in
  let max_doms_per_dominatee = ref 0 in
  let max_doms_2r = ref 0 in
  let max_icds_deg = ref 0 in
  let worst_hop = ref 0. and worst_len = ref 0. in
  List.iter
    (fun pts ->
      let udg = Wireless.Udg.build pts ~radius in
      let cds = Core.Cds.of_udg udg in
      let roles = cds.Core.Cds.roles in
      Array.iteri
        (fun u r ->
          if r = Core.Mis.Dominatee then
            max_doms_per_dominatee :=
              max !max_doms_per_dominatee
                (List.length (Core.Mis.dominators_of udg roles u)))
        roles;
      Array.iteri
        (fun u _ ->
          let c = ref 0 in
          Array.iteri
            (fun v r ->
              if
                r = Core.Mis.Dominator
                && Geometry.Point.dist pts.(u) pts.(v) <= 2. *. radius
              then incr c)
            roles;
          max_doms_2r := max !max_doms_2r !c)
        pts;
      max_icds_deg :=
        max !max_icds_deg
          (Netgraph.Metrics.degree_stats cds.Core.Cds.icds)
            .Netgraph.Metrics.deg_max;
      let s =
        Netgraph.Metrics.stretch_factors ~base:udg ~sub:cds.Core.Cds.cds' pts
      in
      worst_hop := Float.max !worst_hop s.Netgraph.Metrics.hop_max;
      worst_len := Float.max !worst_len s.Netgraph.Metrics.len_max)
    (instances cfg 100 radius);
  pf "%-38s %10s %10s@." "quantity" "theory" "measured";
  pf "%-38s %10d %10d@." "dominators per dominatee (L1)"
    Core.Bounds.max_dominators_per_dominatee !max_doms_per_dominatee;
  pf "%-38s %10d %10d@." "dominators within 2R (L2, C_2)"
    (Core.Bounds.dominators_within 2.) !max_doms_2r;
  pf "%-38s %10d %10d@." "ICDS degree (L8, 5C_2 + C_3)"
    Core.Bounds.icds_degree !max_icds_deg;
  pf "%-38s %10d %10.2f@." "CDS' hop stretch (L5)" Core.Bounds.hop_stretch
    !worst_hop;
  pf "%-38s %10d %10.2f@." "CDS' length stretch (L6)"
    Core.Bounds.length_stretch !worst_len;
  pf "%-38s %10d %10s@." "LDel(ICDS) hops per ICDS link (L7)"
    Core.Bounds.ldel_link_hops "<< bound";
  pf "(the paper itself notes these constants are loose)@."

(* ------------------------------------------------------------------ *)
(* Metrics engine benchmark                                            *)
(* ------------------------------------------------------------------ *)

(* A faithful copy of the stretch implementation the fused CSR engine
   replaced: one pass per metric, adjacency-set neighbor lists, a
   boxed-tuple heap and a settled array.  Kept verbatim so the
   reported speedup is measured against the real predecessor. *)
module Seed_metrics = struct
  module G = Netgraph.Graph

  let weighted_sssp g cost s =
    let n = G.node_count g in
    let dist = Array.make n infinity in
    let settled = Array.make n false in
    dist.(s) <- 0.;
    let data = ref (Array.make 16 (0., 0)) in
    let size = ref 0 in
    let swap i j =
      let t = !data.(i) in
      !data.(i) <- !data.(j);
      !data.(j) <- t
    in
    let push k v =
      if !size = Array.length !data then begin
        let bigger = Array.make (2 * !size) (0., 0) in
        Array.blit !data 0 bigger 0 !size;
        data := bigger
      end;
      !data.(!size) <- (k, v);
      incr size;
      let i = ref (!size - 1) in
      while !i > 0 && fst !data.((!i - 1) / 2) > fst !data.(!i) do
        swap ((!i - 1) / 2) !i;
        i := (!i - 1) / 2
      done
    in
    let pop () =
      if !size = 0 then None
      else begin
        let top = !data.(0) in
        decr size;
        !data.(0) <- !data.(!size);
        let i = ref 0 and continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < !size && fst !data.(l) < fst !data.(!smallest) then
            smallest := l;
          if r < !size && fst !data.(r) < fst !data.(!smallest) then
            smallest := r;
          if !smallest <> !i then begin
            swap !i !smallest;
            i := !smallest
          end
          else continue := false
        done;
        Some top
      end
    in
    push 0. s;
    let rec loop () =
      match pop () with
      | None -> ()
      | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun v ->
              let nd = d +. cost u v in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                push nd v
              end)
            (G.neighbors g u)
        end;
        loop ()
    in
    loop ();
    dist

  let bfs g s =
    let n = G.node_count g in
    let dist = Array.make n max_int in
    dist.(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (G.neighbors g u)
    done;
    dist

  let generic_stretch ~base ~sub sssp to_float =
    let n = G.node_count base in
    let sum = ref 0. and maxr = ref 0. and pairs = ref 0 in
    for s = 0 to n - 1 do
      let db = sssp base s in
      let ds = sssp sub s in
      for t = s + 1 to n - 1 do
        if G.has_edge base s t then begin
          sum := !sum +. 1.;
          if !maxr < 1. then maxr := 1.;
          incr pairs
        end
        else
          match (to_float db.(t), to_float ds.(t)) with
          | None, _ -> ()
          | Some _, None -> failwith "disconnected"
          | Some b, Some sb ->
            if b > 0. then begin
              let r = sb /. b in
              sum := !sum +. r;
              if r > !maxr then maxr := r;
              incr pairs
            end
      done
    done;
    if !pairs = 0 then (1., 1.) else (!sum /. float_of_int !pairs, !maxr)

  let stretch_factors ~base ~sub points =
    let float_dist d = if d = infinity then None else Some d in
    let hop_dist d = if d = max_int then None else Some (float_of_int d) in
    let euclid u v = Geometry.Point.dist points.(u) points.(v) in
    let len_avg, len_max =
      generic_stretch ~base ~sub
        (fun g s -> weighted_sssp g euclid s)
        float_dist
    in
    let hop_avg, hop_max =
      generic_stretch ~base ~sub (fun g s -> bfs g s) hop_dist
    in
    (len_avg, len_max, hop_avg, hop_max)

  let power_stretch ~base ~sub points ~beta =
    let cost u v = Geometry.Point.dist points.(u) points.(v) ** beta in
    let to_float d = if d = infinity then None else Some d in
    generic_stretch ~base ~sub (fun g s -> weighted_sssp g cost s) to_float
end

(* committed baseline configuration marker: a jobs mismatch between the
   checking run and the committed baseline shows up as a counter
   violation instead of a silent apples-to-oranges timing comparison *)
let c_bench_jobs = Obs.counter "bench.jobs"

(* ------------------------------------------------------------------ *)
(* Shared regression-gate plumbing (metrics, pipeline, serve)          *)
(* ------------------------------------------------------------------ *)

(* any failure here names the artifact file: "Scanf: bad input" alone
   is useless when three BENCH_*.json baselines are in play *)
let read_baseline file =
  let contents =
    match open_in_bin file with
    | exception Sys_error msg ->
      pf "  [check FAILED: cannot read baseline %s: %s]@." file msg;
      exit 1
    | ic ->
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      contents
  in
  match Obs.Snapshot.of_json_lines contents with
  | snap -> snap
  | exception Failure msg ->
    pf "  [check FAILED: baseline %s does not parse: %s]@." file msg;
    exit 1

let write_baseline file snap =
  let oc = open_out file in
  let fmt = Format.formatter_of_out_channel oc in
  Obs.json fmt snap;
  Format.pp_print_flush fmt ();
  close_out oc;
  pf "  [wrote %s]@." file

(* the one per-key expected/actual/delta table every gate prints *)
let pp_mismatches file threshold (mismatches : Obs.Snapshot.mismatch list) =
  pf "  [check FAILED against %s: %d mismatches, span threshold +%.0f%%]@."
    file (List.length mismatches) (100. *. threshold);
  pf "    %-12s %-44s %14s %14s %10s@." "kind" "key" "expected" "actual"
    "delta";
  List.iter
    (fun (m : Obs.Snapshot.mismatch) ->
      let delta =
        if Float.is_nan m.Obs.Snapshot.m_actual then "missing"
        else begin
          let d = m.Obs.Snapshot.m_actual -. m.Obs.Snapshot.m_expected in
          if m.Obs.Snapshot.m_expected <> 0. then
            Printf.sprintf "%+.1f%%" (100. *. d /. m.Obs.Snapshot.m_expected)
          else Printf.sprintf "%+g" d
        end
      in
      pf "    %-12s %-44s %14g %14g %10s@." m.Obs.Snapshot.m_kind
        m.Obs.Snapshot.m_name m.Obs.Snapshot.m_expected m.Obs.Snapshot.m_actual
        delta)
    mismatches

(* [bench.jobs] pinning, validated up front: comparing a --jobs J run
   against a baseline recorded at a different J would fail on every
   j-suffixed span/counter key anyway — fail fast with the reason
   instead of a wall of per-key noise.  Returns true when the gate may
   proceed. *)
let validate_bench_jobs file (reference : Obs.Snapshot.t) jobs =
  match List.assoc_opt "bench.jobs" reference.Obs.Snapshot.counters with
  | Some j when j = jobs -> true
  | Some j ->
    pf
      "  [check FAILED: %s was recorded with --jobs %d, this run uses --jobs \
       %d — rerun with --jobs %d or regenerate the baseline]@."
      file j jobs j;
    false
  | None ->
    pf "  [check FAILED: %s has no bench.jobs pin — regenerate the baseline]@."
      file;
    false

let bench_metrics ?check quick jobs =
  header
    (Printf.sprintf
       "Metrics engine: seed-style sequential vs fused CSR (jobs = 1 and %d)"
       jobs);
  let cases =
    if quick then [ (200, 40.) ] else [ (200, 40.); (500, 30.); (1000, 25.) ]
  in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Obs.add c_bench_jobs jobs;
  let checks =
    List.map
      (fun (n, radius) ->
        let rng = Wireless.Rand.create 77L in
        let pts, _ =
          Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
            ~max_attempts:5000
        in
        let bb = Core.Backbone.build pts ~radius in
        let base = bb.Core.Backbone.udg in
        let sub = bb.Core.Backbone.ldel_icds' in
        pf "n = %-5d R = %-4g (UDG %d edges, LDel(ICDS') %d edges)@." n radius
          (Netgraph.Graph.edge_count base)
          (Netgraph.Graph.edge_count sub);
        let seed =
          Obs.span
            (Printf.sprintf "bench.metrics.seed.n%d" n)
            (fun () ->
              let l_avg, l_max, h_avg, h_max =
                Seed_metrics.stretch_factors ~base ~sub pts
              in
              let p_avg, p_max =
                Seed_metrics.power_stretch ~base ~sub pts ~beta:2.
              in
              (l_avg, l_max, h_avg, h_max, p_avg, p_max))
        in
        let fused j =
          Obs.span
            (Printf.sprintf "bench.metrics.fused.j%d.n%d" j n)
            (fun () ->
              match
                Netgraph.Metrics.combined_stretch ~jobs:j ~beta:2. ~base pts
                  [ ("LDel(ICDS')", sub) ]
              with
              | [ (_, c) ] ->
                let s = c.Netgraph.Metrics.c_stretch in
                let p_avg, p_max =
                  Option.get c.Netgraph.Metrics.c_power
                in
                ( s.Netgraph.Metrics.len_avg,
                  s.Netgraph.Metrics.len_max,
                  s.Netgraph.Metrics.hop_avg,
                  s.Netgraph.Metrics.hop_max,
                  p_avg,
                  p_max )
              | _ -> assert false (* fused returns one cell per sub *))
        in
        let f1 = fused 1 in
        let fj = if jobs > 1 then fused jobs else f1 in
        (* the engine must agree with its predecessor: maxima are
           grouping-insensitive, so exactly; averages only differ in
           summation order, so to 1e-9 relative *)
        let close a b = abs_float (a -. b) <= 1e-9 *. Float.max 1. (abs_float b) in
        let agree (la, lm, ha, hm, pa, pm) (la', lm', ha', hm', pa', pm') =
          lm = lm' && hm = hm' && pm = pm' && close la la' && close ha ha'
          && close pa pa'
        in
        if not (agree seed f1 && agree seed fj) then
          failwith
            (Printf.sprintf "metrics bench: results diverge at n = %d" n);
        (n, seed))
      cases
  in
  let snap = Obs.Snapshot.capture () in
  let seconds path =
    match
      List.find_opt
        (fun (sp : Obs.Snapshot.span_stats) -> sp.Obs.Snapshot.path = path)
        snap.Obs.Snapshot.spans
    with
    | Some sp -> sp.Obs.Snapshot.seconds
    | None -> nan
  in
  pf "@.%-8s %10s %10s %10s %8s %8s@." "n" "seed (s)" "fused (s)"
    (Printf.sprintf "j=%d (s)" jobs) "x fused" "x par";
  List.iter
    (fun (n, _) ->
      let ts = seconds (Printf.sprintf "bench.metrics.seed.n%d" n) in
      let t1 = seconds (Printf.sprintf "bench.metrics.fused.j%d.n%d" 1 n) in
      let tj =
        if jobs > 1 then
          seconds (Printf.sprintf "bench.metrics.fused.j%d.n%d" jobs n)
        else t1
      in
      pf "%-8d %10.3f %10.3f %10.3f %8.2f %8.2f@." n ts t1 tj (ts /. t1)
        (ts /. tj))
    checks;
  pf "(all variants returned identical stretch results)@.";
  let file = "BENCH_metrics.json" in
  (match check with
  | Some threshold ->
    (* regression gate: compare this run against the committed baseline
       instead of overwriting it *)
    let reference = read_baseline file in
    if not (validate_bench_jobs file reference jobs) then begin
      Obs.set_enabled was;
      exit 1
    end;
    (match Obs.Snapshot.compare_against ~threshold ~reference snap with
    | [] ->
      pf "  [check ok: within +%.0f%% of %s]@." (100. *. threshold) file
    | mismatches ->
      pp_mismatches file threshold mismatches;
      Obs.set_enabled was;
      exit 1)
  | None -> write_baseline file snap);
  Obs.set_enabled was

(* ------------------------------------------------------------------ *)
(* Construction pipeline benchmark                                     *)
(* ------------------------------------------------------------------ *)

(* Legacy Hashtbl-graph construction ([Backbone.run] with [Serial]
   partition, the seed pipeline) against the sharded CSR-native
   pipeline ([Backbone.snapshot]: tiles, Builder accumulation, sealed
   snapshots, no mutable graph materialized).  Outputs are asserted
   bit-identical before any timing is reported.  The headline on a
   one-CPU box is the algorithmic speedup of the CSR pipeline at j = 1;
   the jobs column is reported honestly and is NOT expected to beat it
   without additional cores. *)
let bench_pipeline ?check quick jobs =
  header
    (Printf.sprintf
       "Construction pipeline: legacy Hashtbl graph vs sharded CSR (jobs = \
        1 and %d)"
       jobs);
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Obs.add c_bench_jobs jobs;
  (* constant density: side = 10 sqrt n, R = 20 => average degree
     ~12.6 at every size *)
  let radius = 20. in
  let deploy n =
    let rng = Wireless.Rand.create 4242L in
    Wireless.Deploy.uniform rng ~n ~side:(10. *. sqrt (float_of_int n))
  in
  let cfg partition j =
    {
      Core.Backbone.Config.default with
      Core.Backbone.Config.radius;
      partition;
      jobs = j;
    }
  in
  let compare_cases = if quick then [ 2_000; 5_000 ] else [ 20_000; 50_000 ] in
  let n_big = if quick then 20_000 else 1_000_000 in
  let module S = Core.Shard in
  let count name n v =
    Obs.add (Obs.counter (Printf.sprintf "bench.pipeline.%s.n%d" name n)) v
  in
  let record_counts n (s : S.snapshot) =
    count "udg_edges" n (Netgraph.Csr.edge_count s.S.udg);
    count "cds_edges" n (Netgraph.Csr.edge_count s.S.cds);
    count "pldel_edges" n (Netgraph.Csr.edge_count s.S.pldel);
    count "pldel'_edges" n (Netgraph.Csr.edge_count s.S.pldel')
  in
  let timed = ref [] in
  List.iter
    (fun n ->
      let pts = deploy n in
      let legacy =
        Obs.span
          (Printf.sprintf "bench.pipeline.legacy.n%d" n)
          (fun () -> Core.Backbone.run (cfg Core.Backbone.Config.Serial 1) pts)
      in
      let snap j =
        Obs.span
          (Printf.sprintf "bench.pipeline.sharded.j%d.n%d" j n)
          (fun () ->
            Core.Backbone.snapshot (cfg Core.Backbone.Config.Auto j) pts)
      in
      let s1 = snap 1 in
      let sj = if jobs > 1 then snap jobs else s1 in
      (* bit-identity gate: the speedup below is only meaningful if the
         CSR pipeline rebuilt exactly the legacy structures *)
      let same_csr c g = Netgraph.Csr.edges c = Netgraph.Graph.edges g in
      if
        not
          (s1.S.roles = legacy.Core.Backbone.cds.Core.Cds.roles
          && same_csr s1.S.udg legacy.Core.Backbone.udg
          && same_csr s1.S.cds' legacy.Core.Backbone.cds.Core.Cds.cds'
          && same_csr s1.S.pldel legacy.Core.Backbone.ldel_icds_g
          && same_csr s1.S.pldel' legacy.Core.Backbone.ldel_icds')
      then
        failwith
          (Printf.sprintf "pipeline bench: sharded diverges from legacy at n = %d" n);
      if
        not
          (Netgraph.Csr.edges sj.S.udg = Netgraph.Csr.edges s1.S.udg
          && Netgraph.Csr.edges sj.S.pldel = Netgraph.Csr.edges s1.S.pldel)
      then
        failwith
          (Printf.sprintf "pipeline bench: jobs=%d diverges at n = %d" jobs n);
      record_counts n s1;
      pf "n = %-8d UDG %d edges, PLDel %d edges: identical across variants@."
        n
        (Netgraph.Csr.edge_count s1.S.udg)
        (Netgraph.Csr.edge_count s1.S.pldel);
      timed := (n, true) :: !timed)
    compare_cases;
  (* the million-node run: sharded CSR only — the Hashtbl pipeline is
     not run at this size, so the row reports absolute wall time *)
  let pts = deploy n_big in
  let big =
    Obs.span
      (Printf.sprintf "bench.pipeline.sharded.j%d.n%d" 1 n_big)
      (fun () ->
        Core.Backbone.snapshot (cfg Core.Backbone.Config.Auto 1) pts)
  in
  record_counts n_big big;
  pf "n = %-8d UDG %d edges, PLDel %d edges (sharded CSR only)@." n_big
    (Netgraph.Csr.edge_count big.S.udg)
    (Netgraph.Csr.edge_count big.S.pldel);
  timed := (n_big, false) :: !timed;
  let snap = Obs.Snapshot.capture () in
  let seconds path =
    match
      List.find_opt
        (fun (sp : Obs.Snapshot.span_stats) -> sp.Obs.Snapshot.path = path)
        snap.Obs.Snapshot.spans
    with
    | Some sp -> sp.Obs.Snapshot.seconds
    | None -> nan
  in
  pf "@.%-9s %11s %12s %12s %8s@." "n" "legacy (s)" "sharded (s)"
    (Printf.sprintf "j=%d (s)" jobs)
    "x csr";
  List.iter
    (fun (n, compared) ->
      let t1 = seconds (Printf.sprintf "bench.pipeline.sharded.j%d.n%d" 1 n) in
      let tj =
        if jobs > 1 && compared then
          seconds (Printf.sprintf "bench.pipeline.sharded.j%d.n%d" jobs n)
        else t1
      in
      if compared then begin
        let tl = seconds (Printf.sprintf "bench.pipeline.legacy.n%d" n) in
        pf "%-9d %11.3f %12.3f %12.3f %8.2f@." n tl t1 tj (tl /. t1)
      end
      else pf "%-9d %11s %12.3f %12s %8s@." n "-" t1 "-" "-")
    (List.rev !timed);
  pf "(sharded outputs verified bit-identical to the legacy pipeline)@.";
  let file = "BENCH_pipeline.json" in
  (match check with
  | Some threshold ->
    let reference = read_baseline file in
    if not (validate_bench_jobs file reference jobs) then begin
      Obs.set_enabled was;
      exit 1
    end;
    (* Gate on counters (exact: the determinism edge counts) and the
       top-level per-case spans (multi-second aggregates).  Nested
       stage spans stay in the committed JSON for inspection but are
       too short and scheduler-sensitive for a +threshold gate. *)
    let reference =
      {
        reference with
        Obs.Snapshot.spans =
          List.filter
            (fun (sp : Obs.Snapshot.span_stats) ->
              not (String.contains sp.Obs.Snapshot.path '/'))
            reference.Obs.Snapshot.spans;
      }
    in
    (match Obs.Snapshot.compare_against ~threshold ~reference snap with
    | [] -> pf "  [check ok: within +%.0f%% of %s]@." (100. *. threshold) file
    | mismatches ->
      pp_mismatches file threshold mismatches;
      Obs.set_enabled was;
      exit 1)
  | None -> write_baseline file snap);
  Obs.set_enabled was

(* ------------------------------------------------------------------ *)
(* Route-query serving benchmark                                       *)
(* ------------------------------------------------------------------ *)

(* The serving layer under load: one epoch-pinned snapshot, a seeded
   hotspot workload, and the zero-allocation query kernels.  The
   headline is queries/sec.  Three runs: closed-loop jobs = 1 and
   jobs = J with latency sampling off (throughput + the allocation
   probe), then a shorter open-loop run with latency sampling for the
   tail percentiles.  Per-query results are asserted bit-identical
   across the job counts before any number is reported; the jobs
   column is honest — on a one-CPU box it shows ~1x, the machinery is
   validated by the determinism assertion either way. *)
let bench_serve ?check quick jobs =
  header
    (Printf.sprintf
       "Route-query serving: epoch store + concurrent readers (jobs = 1 and \
        %d)"
       jobs);
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Obs.add c_bench_jobs jobs;
  let n = if quick then 5_000 else 100_000 in
  let q_count = if quick then 20_000 else 100_000 in
  (* constant density, radius comfortably above the connectivity
     threshold so GFG's delivery guarantee applies *)
  let radius = 25. in
  let side = 10. *. sqrt (float_of_int n) in
  let rng = Wireless.Rand.create 4242L in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side ~radius ~max_attempts:50
  in
  let snap =
    Obs.span
      (Printf.sprintf "bench.serve.build.n%d" n)
      (fun () ->
        Core.Backbone.snapshot
          {
            Core.Backbone.Config.default with
            Core.Backbone.Config.radius;
            jobs = 1;
          }
          pts)
  in
  let store = Serve.Store.create snap in
  let mix = { Serve.Workload.default_mix with Serve.Workload.stretch = 0.002 } in
  let skew = Serve.Workload.Hotspot { nodes = 64; frac = 0.3 } in
  let w = Serve.Workload.generate ~seed:99L ~n ~count:q_count ~mix ~skew () in
  pf "n = %d nodes, %d queries, mix %s, skew %s@." n q_count
    (Serve.Workload.mix_to_string mix)
    (Serve.Workload.skew_to_string skew);
  let serve label jobs latency w =
    Obs.span
      (Printf.sprintf "bench.serve.%s.n%d" label n)
      (fun () -> Serve.Engine.run ~jobs ~batch:4096 ~latency ~store w)
  in
  let r1 = serve "q.j1" 1 false w in
  let rj =
    if jobs > 1 then serve (Printf.sprintf "q.j%d" jobs) jobs false w else r1
  in
  (* determinism gate: the throughput comparison below is only
     meaningful if both job counts served exactly the same answers
     (compare, not =, so NaN stretch slots compare equal) *)
  if
    not
      (r1.Serve.Engine.hops = rj.Serve.Engine.hops
      && r1.Serve.Engine.epoch = rj.Serve.Engine.epoch
      && compare r1.Serve.Engine.stretch rj.Serve.Engine.stretch = 0)
  then
    failwith
      (Printf.sprintf "serve bench: jobs=%d diverges from jobs=1 at n = %d"
         jobs n);
  (* scrape-while-serving overhead: the same closed loop again at
     jobs = 1, with the exposition listener live and a client thread
     hammering /metrics for the whole run.  The listener only reads
     the registry, so results must stay bit-identical; the qps delta
     against the unscraped run is the price of sharing the domain
     with a scraper, reported as gauges (wall-clock, not gated). *)
  let scrape_stop = Atomic.make false in
  let scrape_n = Atomic.make 0 in
  let h = Obs.Export.start ~port:0 () in
  let port = Obs.Export.port h in
  let scraper =
    Thread.create
      (fun () ->
        while not (Atomic.get scrape_stop) do
          (match Obs.Export.get ~port "/metrics" with
          | _ -> Atomic.incr scrape_n
          | exception _ -> ());
          Thread.yield ()
        done)
      ()
  in
  let r_scrape = serve "q.scrape" 1 false w in
  Atomic.set scrape_stop true;
  Thread.join scraper;
  Obs.Export.stop h;
  if
    not
      (r1.Serve.Engine.hops = r_scrape.Serve.Engine.hops
      && r1.Serve.Engine.epoch = r_scrape.Serve.Engine.epoch
      && compare r1.Serve.Engine.stretch r_scrape.Serve.Engine.stretch = 0)
  then
    failwith
      (Printf.sprintf
         "serve bench: results diverge under scrape load at n = %d" n);
  (* open-loop latency run: a tenth of the queries at a fixed arrival
     rate, latency sampling on *)
  let w_lat =
    Serve.Workload.generate ~seed:99L ~n ~count:(q_count / 10) ~mix ~skew
      ~rate:(if quick then 20_000. else 5_000.)
      ()
  in
  let r_lat = serve "lat.j1" 1 true w_lat in
  let s1 = Serve.Engine.summarize r1
  and sj = Serve.Engine.summarize rj
  and ss = Serve.Engine.summarize r_scrape
  and sl = Serve.Engine.summarize r_lat in
  let scrapes = Atomic.get scrape_n in
  let overhead_pct =
    if s1.Serve.Engine.s_qps > 0. then
      100. *. (1. -. (ss.Serve.Engine.s_qps /. s1.Serve.Engine.s_qps))
    else nan
  in
  Obs.set_gauge
    (Obs.gauge "bench.serve.scrape.count")
    (float_of_int scrapes);
  Obs.set_gauge (Obs.gauge "bench.serve.scrape.overhead_pct") overhead_pct;
  (* deterministic result counters for the regression gate: any change
     to the kernels, the workload generator or the store shows up as
     an exact-match violation here *)
  let count name v =
    Obs.add (Obs.counter (Printf.sprintf "bench.serve.%s.n%d" name n)) v
  in
  let hops_total =
    Array.fold_left (fun acc h -> if h > 0 then acc + h else acc) 0
      r1.Serve.Engine.hops
  in
  count "queries" q_count;
  count "delivered" s1.Serve.Engine.s_delivered;
  count "hops_total" hops_total;
  pf "@.%-10s %14s %12s %10s@." "variant" "queries/s" "elapsed(s)" "speedup";
  pf "%-10s %14.0f %12.3f %10s@." "jobs=1" s1.Serve.Engine.s_qps
    r1.Serve.Engine.elapsed_s "1.00";
  if jobs > 1 then
    pf "%-10s %14.0f %12.3f %10.2f@."
      (Printf.sprintf "jobs=%d" jobs)
      sj.Serve.Engine.s_qps rj.Serve.Engine.elapsed_s
      (sj.Serve.Engine.s_qps /. s1.Serve.Engine.s_qps);
  pf "%-10s %14.0f %12.3f %10.2f@." "scraped"
    ss.Serve.Engine.s_qps r_scrape.Serve.Engine.elapsed_s
    (ss.Serve.Engine.s_qps /. s1.Serve.Engine.s_qps);
  pf
    "scrape load: %d /metrics scrapes during the run, %.1f%% qps overhead \
     vs unscraped@."
    scrapes overhead_pct;
  pf "delivered:  %d/%d   hops p50 %.0f p99 %.0f   stretch p50 %.3f@."
    s1.Serve.Engine.s_delivered q_count s1.Serve.Engine.s_hop_p50
    s1.Serve.Engine.s_hop_p99 s1.Serve.Engine.s_stretch_p50;
  pf
    "open loop at %g/s: latency p50 %.1f us  p99 %.1f us  p999 %.1f us (%d \
     queries)@."
    (if quick then 20_000. else 5_000.)
    sl.Serve.Engine.s_lat_p50_us sl.Serve.Engine.s_lat_p99_us
    sl.Serve.Engine.s_lat_p999_us (q_count / 10);
  pf "allocation: %.2f minor words/query at jobs = 1 (steady-state scratch)@."
    s1.Serve.Engine.s_minor_per_query;
  pf "(per-query results verified bit-identical across job counts)@.";
  let osnap = Obs.Snapshot.capture () in
  let file = "BENCH_serve.json" in
  (match check with
  | Some threshold ->
    let reference = read_baseline file in
    if not (validate_bench_jobs file reference jobs) then begin
      Obs.set_enabled was;
      exit 1
    end;
    (* Gate on everything deterministic — counters, dist counts and
       the hop histogram bucket-for-bucket.  The latency histogram's
       values are wall-clock, so its bucket shape varies run to run:
       it stays in the committed JSON for inspection but is excluded
       here, mirroring the pipeline gate's nested-span filter. *)
    let reference =
      {
        reference with
        Obs.Snapshot.hists =
          List.filter
            (fun (name, _) -> name <> "serve.latency_us.hist")
            reference.Obs.Snapshot.hists;
      }
    in
    (match Obs.Snapshot.compare_against ~threshold ~reference osnap with
    | [] -> pf "  [check ok: within +%.0f%% of %s]@." (100. *. threshold) file
    | mismatches ->
      pp_mismatches file threshold mismatches;
      Obs.set_enabled was;
      exit 1)
  | None -> write_baseline file osnap);
  Obs.set_enabled was

(* ------------------------------------------------------------------ *)
(* Causal analyzer throughput                                          *)
(* ------------------------------------------------------------------ *)

(* Trace one full protocol run, then time Obs.Causal.analyze over the
   merged stream: the post-run DAG reconstruction must stay cheap
   relative to the run it explains, and the run itself must be
   causally clean. *)
let bench_causal quick =
  header "Causal analyzer: happens-before DAG over a traced protocol run";
  let n = if quick then 150 else 400 in
  let rng = Wireless.Rand.create 2002L in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius:60.
      ~max_attempts:5000
  in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.Trace.start ~capacity:(1 lsl 21) ();
  let t0 = Unix.gettimeofday () in
  ignore (Core.Protocol.run pts ~radius:60.);
  let t_run = Unix.gettimeofday () -. t0 in
  Obs.Trace.stop ();
  Obs.set_enabled was;
  let evs = Obs.Trace.events () in
  let n_ev = List.length evs in
  let t1 = Unix.gettimeofday () in
  let r = Obs.Causal.analyze evs in
  let t_an = Unix.gettimeofday () -. t1 in
  pf "protocol run (n=%d): %.3fs, %d trace events@." n t_run n_ev;
  pf "analyze: %.3fs (%.2f Mev/s, %.0f%% of the traced run)@." t_an
    (float_of_int n_ev /. t_an /. 1e6)
    (100. *. t_an /. t_run);
  pf "  %-22s %8s %6s %7s@." "phase" "events" "depth" "rounds";
  List.iter
    (fun (ph : Obs.Causal.phase_report) ->
      pf "  %-22s %8d %6d %7d@." ph.Obs.Causal.ph_phase
        ph.Obs.Causal.ph_events ph.Obs.Causal.ph_depth ph.Obs.Causal.ph_rounds)
    r.Obs.Causal.r_phases;
  pf "end-to-end critical path: %d hops, %d rounds@." r.Obs.Causal.r_depth
    r.Obs.Causal.r_rounds;
  if r.Obs.Causal.r_violations <> [] then begin
    pf "causality violations in a stamped run: %d@."
      (List.length r.Obs.Causal.r_violations);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Static analyzer self-run                                            *)
(* ------------------------------------------------------------------ *)

(* The lint layer's interprocedural pass (DESIGN.md §15) runs on every
   `dune runtest`; tracking its cost here keeps analyzer regressions
   as visible as any other hot path.  The three phases are timed
   separately because they scale differently: tokenization is linear
   in bytes, call-graph construction in tokens, and effect
   propagation in SCC edges. *)
let bench_lint () =
  header "Static analyzer self-run: tokenize + call graph + effects";
  if not (Sys.file_exists "lib") then
    pf "lint: lib/ not found (run from the repository root); skipped@."
  else begin
    let files =
      Lint.Engine.project_files "."
      |> List.filter (fun (p, _) ->
             String.length p > 4 && String.sub p 0 4 = "lib/")
    in
    let bytes =
      List.fold_left (fun a (_, c) -> a + String.length c) 0 files
    in
    let t0 = Unix.gettimeofday () in
    let n_tokens =
      List.fold_left
        (fun a (_, c) -> a + List.length (Lint.Tokenizer.tokenize c))
        0 files
    in
    let t_tok = Unix.gettimeofday () -. t0 in
    let t1 = Unix.gettimeofday () in
    let g = Lint.Callgraph.of_sources files in
    let t_graph = Unix.gettimeofday () -. t1 in
    let t2 = Unix.gettimeofday () in
    let a = Lint.Effects.analyze g in
    let findings = Lint.Effects.findings a in
    let t_eff = Unix.gettimeofday () -. t2 in
    let s = Lint.Effects.stats a in
    Obs.add (Obs.counter "bench.lint.files") (List.length files);
    Obs.add (Obs.counter "bench.lint.tokens") n_tokens;
    Obs.add (Obs.counter "bench.lint.functions") s.Lint.Effects.s_functions;
    Obs.add (Obs.counter "bench.lint.edges") s.Lint.Effects.s_edges;
    Obs.add (Obs.counter "bench.lint.seeds") s.Lint.Effects.s_seeds;
    Obs.add (Obs.counter "bench.lint.reachable") s.Lint.Effects.s_reachable;
    pf "sources: %d files, %d KB, %d tokens@." (List.length files)
      (bytes / 1024) n_tokens;
    pf "tokenize: %.3fs (%.1f MB/s)@." t_tok
      (float_of_int bytes /. t_tok /. 1e6);
    pf "call graph: %.3fs (%d functions, %d edges, %d parallel seeds)@."
      t_graph s.Lint.Effects.s_functions s.Lint.Effects.s_edges
      s.Lint.Effects.s_seeds;
    pf "effects: %.3fs (%d reachable, %d findings pre-suppression)@." t_eff
      s.Lint.Effects.s_reachable (List.length findings)
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel micro-benchmarks (time per run)";
  let open Bechamel in
  let open Toolkit in
  let rng = Wireless.Rand.create 31337L in
  let pts100, _ =
    Wireless.Deploy.connected_uniform rng ~n:100 ~side:200. ~radius:60.
      ~max_attempts:2000
  in
  let pts500 = Wireless.Deploy.uniform rng ~n:500 ~side:200. in
  let udg100 = Wireless.Udg.build pts100 ~radius:60. in
  let bb100 = Core.Backbone.build pts100 ~radius:60. in
  let planar = (Core.Backbone.ldel_full bb100).Core.Ldel.planar in
  let tests =
    [
      (* one Test.make per paper artifact's workload, plus substrates *)
      Test.make ~name:"table1: backbone build (n=100)"
        (Staged.stage (fun () -> Core.Backbone.build pts100 ~radius:60.));
      Test.make ~name:"fig8/9: quality rows (n=100)"
        (Staged.stage (fun () -> Core.Quality.rows bb100));
      Test.make ~name:"fig10/12: protocol run (n=100)"
        (Staged.stage (fun () -> Core.Protocol.run pts100 ~radius:60.));
      Test.make ~name:"udg build (n=500)"
        (Staged.stage (fun () -> Wireless.Udg.build pts500 ~radius:30.));
      Test.make ~name:"delaunay (n=500)"
        (Staged.stage (fun () -> Delaunay.Triangulation.triangulate pts500));
      Test.make ~name:"ldel on udg (n=100)"
        (Staged.stage (fun () -> Core.Ldel.build udg100 pts100 ~radius:60.));
      Test.make ~name:"gfg route (n=100)"
        (Staged.stage (fun () -> Core.Routing.gfg planar pts100 ~src:0 ~dst:99));
      Test.make ~name:"mis clustering (n=100)"
        (Staged.stage (fun () -> Core.Mis.compute udg100));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let witnesses = Instance.[ monotonic_clock ] in
  pf "%-36s %16s@." "benchmark" "ns/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg witnesses elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> pf "%-36s %16.0f@." (Test.Elt.name elt) t
          | Some _ | None -> pf "%-36s %16s@." (Test.Elt.name elt) "n/a")
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  with_stats := List.mem "--stats" args;
  let args = List.filter (fun a -> a <> "--stats") args in
  let do_check = List.mem "--check" args in
  let args = List.filter (fun a -> a <> "--check") args in
  let jobs = ref (Netgraph.Pool.default_jobs ()) in
  let check_threshold = ref 0.5 in
  let rec take_out acc = function
    | "--out" :: dir :: rest ->
      out_dir := Some dir;
      take_out acc rest
    | "--jobs" :: j :: rest ->
      jobs := max 1 (int_of_string j);
      take_out acc rest
    | "--check-threshold" :: t :: rest ->
      check_threshold := float_of_string t;
      take_out acc rest
    | x :: rest -> take_out (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = take_out [] args in
  if do_check && quick then begin
    prerr_endline
      "bench: --check compares against the committed full-size \
       BENCH_*.json baselines; it cannot be combined with --quick";
    exit 2
  end;
  let check = if do_check then Some !check_threshold else None in
  if !with_stats then Obs.set_enabled true;
  let cfg =
    if quick then
      { Core.Experiments.quick with instances = 2; jobs = !jobs }
    else { Core.Experiments.default with jobs = !jobs }
  in
  (* the n = 500 radius sweeps are the heavy ones: fewer vertex sets *)
  let cfg_sweep =
    { cfg with Core.Experiments.instances = (if quick then 2 else 5) }
  in
  let n_sweep = if quick then 150 else 500 in
  let all = args = [] in
  let want name = all || List.mem name args in
  (* with --stats each artifact gets its own isolated work account:
     counters are reset before and reported after the run *)
  let artifact name f =
    if want name then begin
      if !with_stats then Obs.reset ();
      f ();
      if !with_stats then begin
        pf "@.-- %s: work counters and stage spans --@." name;
        Obs.report (Obs.pretty Format.std_formatter)
      end
    end
  in
  artifact "table1" (fun () -> table1 cfg);
  artifact "fig8" (fun () -> fig8 cfg);
  artifact "fig9" (fun () -> fig9 cfg);
  artifact "fig10" (fun () -> fig10 cfg);
  artifact "fig11" (fun () -> fig11 cfg_sweep n_sweep);
  artifact "fig12" (fun () -> fig12 cfg_sweep n_sweep);
  artifact "ablation" (fun () ->
      ablation_clustering cfg;
      ablation_connectors cfg;
      ablation_ldel_scope cfg;
      ablation_routing cfg;
      extension_power_stretch cfg;
      extension_broadcast cfg;
      extension_packet_level cfg;
      extension_quasi_udg cfg;
      extension_lifetime cfg;
      extension_bounds cfg);
  artifact "metrics" (fun () -> bench_metrics ?check quick !jobs);
  artifact "pipeline" (fun () -> bench_pipeline ?check quick !jobs);
  artifact "serve" (fun () -> bench_serve ?check quick !jobs);
  artifact "causal" (fun () -> bench_causal quick);
  artifact "lint" (fun () -> bench_lint ());
  artifact "micro" micro
