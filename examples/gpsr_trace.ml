(* GPSR trace: watch one packet cross the planar backbone, hop by hop,
   with its greedy/perimeter mode switches.

     dune exec examples/gpsr_trace.exe

   The forwarding automaton (Core.Routing.gfg_step) is the same one
   the packet-level simulator runs; here we drive it manually and
   narrate each decision.  A sparse, hole-y deployment is chosen so
   the packet actually needs perimeter mode. *)

let deployment_with_hole seed radius =
  (* uniform points minus a central disk, so greedy routes hit local
     minima; redraw until connected *)
  let rec attempt s =
    let rng = Wireless.Rand.create (Int64.of_int s) in
    let acc = ref [] in
    while List.length !acc < 90 do
      let p =
        Geometry.Point.make
          (Wireless.Rand.float rng 260.)
          (Wireless.Rand.float rng 260.)
      in
      if Geometry.Point.dist p (Geometry.Point.make 130. 130.) > 62. then
        acc := p :: !acc
    done;
    let points = Array.of_list !acc in
    if Netgraph.Components.is_connected (Wireless.Udg.build points ~radius)
    then points
    else attempt (s + 1)
  in
  attempt seed

let () =
  let radius = 45. in
  let points = deployment_with_hole 31 radius in
  begin
    let bb =
      Core.Backbone.run
        { Core.Backbone.Config.default with Core.Backbone.Config.radius }
        points
    in
    let planar = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
    (* pick a pair where plain greedy actually gets stuck, so the
       trace shows the perimeter recovery; fall back to the farthest
       pair if none exists on this instance *)
    let n = Array.length points in
    let pick () =
      let found = ref None in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d && !found = None
             && Core.Routing.greedy planar points ~src:s ~dst:d = None
          then found := Some (s, d)
        done
      done;
      match !found with
      | Some p -> p
      | None -> (0, n - 1)
    in
    let src, dst = pick () in
    Printf.printf "routing %d -> %d across the hole on PLDel(V) (%d edges)\n\n"
      src dst
      (Netgraph.Graph.edge_count planar);
    let mode_name = function
      | Core.Routing.Greedy -> "greedy"
      | Core.Routing.Perimeter (_, _) -> "perimeter"
    in
    let rec walk u header steps =
      if steps > 200 then print_endline "... step budget exceeded"
      else
        match Core.Routing.gfg_step planar points ~dst u header with
        | Core.Routing.Deliver -> Printf.printf "%4d. node %d: DELIVERED\n" steps u
        | Core.Routing.Drop -> Printf.printf "%4d. node %d: dropped\n" steps u
        | Core.Routing.Forward (v, header') ->
          let switch =
            match (header, header') with
            | Core.Routing.Greedy, Core.Routing.Perimeter _ ->
              "  << entering perimeter mode"
            | Core.Routing.Perimeter _, Core.Routing.Greedy ->
              "  >> back to greedy"
            | _ -> ""
          in
          Printf.printf "%4d. node %-3d --%s--> node %-3d (%.1f to go)%s\n"
            steps u (mode_name header') v
            (Geometry.Point.dist points.(v) points.(dst))
            switch;
          walk v header' (steps + 1)
    in
    walk src Core.Routing.Greedy 1;
    (* compare against what plain greedy would have done *)
    print_newline ();
    match Core.Routing.greedy planar points ~src ~dst with
    | Some p ->
      Printf.printf "plain greedy also made it, in %d hops\n"
        (Netgraph.Traversal.path_hops p)
    | None ->
      print_endline
        "plain greedy would have dropped this packet at a local minimum"
  end
