(* Topologies: regenerate the paper's Figures 6-7 — one unit disk
   graph and every derived structure — as edge-list CSVs plus ready-to-
   view SVG drawings (dominators as red squares, connectors blue,
   dominatees gray, matching the paper's markers).

     dune exec examples/topologies.exe [-- OUTPUT_DIR]

   Writes <dir>/<structure>.csv and <dir>/<structure>.svg, plus
   nodes.csv with "id,x,y,role".  Default directory: ./topologies. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "topologies" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;

  (* same setting as Figure 6: 100 nodes, radius 60 *)
  let rng = Wireless.Rand.create 6L in
  let points, _ =
    Wireless.Deploy.connected_uniform rng ~n:100 ~side:200. ~radius:60.
      ~max_attempts:1000
  in
  let bb =
    Core.Backbone.run
      { Core.Backbone.Config.default with Core.Backbone.Config.radius = 60. }
      points
  in

  let roles = bb.Core.Backbone.cds.Core.Cds.roles in
  let connector = bb.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.connector in
  let oc = open_out (Filename.concat dir "nodes.csv") in
  Array.iteri
    (fun i (p : Geometry.Point.t) ->
      let role =
        if roles.(i) = Core.Mis.Dominator then "dominator"
        else if connector.(i) then "connector"
        else "dominatee"
      in
      Printf.fprintf oc "%d,%.4f,%.4f,%s\n" i p.x p.y role)
    points;
  close_out oc;

  let slug = function
    | "CDS'" -> "cds-prime"
    | "ICDS'" -> "icds-prime"
    | "LDel(ICDS)" -> "ldel-icds"
    | "LDel(ICDS')" -> "ldel-icds-prime"
    | name -> String.lowercase_ascii name
  in
  let world =
    Geometry.Bbox.expand 5. (Geometry.Bbox.of_points (Array.to_list points))
  in
  let style_of i =
    if roles.(i) = Core.Mis.Dominator then Viz.Svg.dominator_style
    else if connector.(i) then Viz.Svg.connector_style
    else Viz.Svg.dominatee_style
  in
  List.iter
    (fun (name, g, _) ->
      let file = Filename.concat dir (slug name ^ ".csv") in
      let oc = open_out file in
      Netgraph.Graph.iter_edges g (fun u v ->
          let (pu : Geometry.Point.t) = points.(u)
          and (pv : Geometry.Point.t) = points.(v) in
          Printf.fprintf oc "%.4f,%.4f,%.4f,%.4f\n" pu.x pu.y pv.x pv.y);
      close_out oc;
      let svg = Viz.Svg.create ~width:600 ~height:600 ~world in
      Viz.Svg.add_edges svg points g ~stroke:"#444444" ~stroke_width:0.8;
      Viz.Svg.add_nodes svg points ~style_of;
      Viz.Svg.add_label svg
        (Geometry.Point.make world.Geometry.Bbox.xmin world.Geometry.Bbox.ymax)
        name;
      let svg_file = Filename.concat dir (slug name ^ ".svg") in
      Viz.Svg.write_file svg svg_file;
      Printf.printf "%-14s %4d edges  -> %s, %s\n" name
        (Netgraph.Graph.edge_count g) file svg_file)
    (Core.Backbone.structures bb);
  Printf.printf "\nOpen the SVGs to see Figure 7; the CSVs feed any plotter.\n"
