(* Sensor network data gathering — the introduction's motivating
   scenario: environmental sensors periodically report to one static
   sink, and the backbone carries the traffic.

     dune exec examples/sensor_sink.exe

   Every sensor sends one report per epoch to the sink via
   dominating-set-based routing over the planar backbone.  We account
   for energy with the paper's power-attenuation model (transmitting
   over distance d costs d^beta) and compare against direct routing on
   the UDG shortest path, then simulate battery drain to see how the
   backbone concentrates load on dominators — the reason rotating the
   clusterhead role matters in practice. *)

let beta = 3. (* path-loss exponent, paper: 2 <= beta <= 5 *)

let link_energy points u v = Geometry.Point.dist points.(u) points.(v) ** beta

let path_energy points p =
  let rec go acc = function
    | u :: (v :: _ as rest) -> go (acc +. link_energy points u v) rest
    | [ _ ] | [] -> acc
  in
  go 0. p

let () =
  let rng = Wireless.Rand.create 2024L in
  let points, _ =
    Wireless.Deploy.connected_uniform rng ~n:120 ~side:220. ~radius:60.
      ~max_attempts:1000
  in
  let n = Array.length points in
  (* the sink is the node closest to the region's corner (a gateway) *)
  let sink =
    let best = ref 0 in
    Array.iteri
      (fun i (p : Geometry.Point.t) ->
        let (q : Geometry.Point.t) = points.(!best) in
        if p.x +. p.y < q.x +. q.y then best := i)
      points;
    !best
  in
  let bb =
    Core.Backbone.run
      { Core.Backbone.Config.default with Core.Backbone.Config.radius = 60. }
      points
  in
  let udg = bb.Core.Backbone.udg in
  Printf.printf "%d sensors, sink = node %d\n\n" n sink;

  (* one epoch: every sensor reports once *)
  let routes =
    List.filter_map
      (fun src ->
        if src = sink then None else Core.Routing.hierarchical bb ~src ~dst:sink)
      (List.init n Fun.id)
  in
  Printf.printf "epoch delivery: %d/%d reports reached the sink\n"
    (List.length routes) (n - 1);

  let backbone_energy =
    List.fold_left (fun acc p -> acc +. path_energy points p) 0. routes
  in
  let optimal_energy =
    (* minimum-energy routing = shortest paths under the d^beta cost;
       approximate with Euclidean shortest paths on the UDG, whose
       energy we then price with the same model *)
    let total = ref 0. in
    for src = 0 to n - 1 do
      if src <> sink then
        match Netgraph.Traversal.dijkstra_path udg points src sink with
        | Some p -> total := !total +. path_energy points p
        | None -> ()
    done;
    !total
  in
  Printf.printf "energy per epoch: backbone %.3e vs UDG shortest-path %.3e (x%.2f)\n"
    backbone_energy optimal_energy
    (backbone_energy /. optimal_energy);

  (* battery simulation: who burns out first? *)
  let battery = Array.make n 0. in
  List.iter
    (fun p ->
      let rec charge = function
        | u :: (v :: _ as rest) ->
          battery.(u) <- battery.(u) +. link_energy points u v;
          charge rest
        | [ _ ] | [] -> ()
      in
      charge p)
    routes;
  let hottest = ref 0 in
  Array.iteri (fun i e -> if e > battery.(!hottest) then hottest := i) battery;
  let roles = bb.Core.Backbone.cds.Core.Cds.roles in
  let role i =
    if i = sink then "sink"
    else if roles.(i) = Core.Mis.Dominator then "dominator"
    else if bb.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.connector.(i)
    then "connector"
    else "dominatee"
  in
  Printf.printf "hottest node: %d (%s), %.2fx the average transmit energy\n"
    !hottest (role !hottest)
    (battery.(!hottest)
    /. (Array.fold_left ( +. ) 0. battery /. float_of_int n));

  (* load split by role: the backbone carries almost everything *)
  let by_role = Hashtbl.create 4 in
  Array.iteri
    (fun i e ->
      let r = role i in
      Hashtbl.replace by_role r (e +. Option.value ~default:0. (Hashtbl.find_opt by_role r)))
    battery;
  Printf.printf "\ntransmit energy by role:\n";
  List.iter
    (fun r ->
      match Hashtbl.find_opt by_role r with
      | Some e -> Printf.printf "  %-10s %8.1f%%\n" r (100. *. e /. (backbone_energy +. 1e-9))
      | None -> ())
    [ "dominator"; "connector"; "dominatee"; "sink" ];

  (* lifetime: with finite batteries, rotating the clusterhead role
     (energy-aware reclustering) keeps the field alive longer *)
  Printf.printf "\nlifetime with finite batteries (100 epochs):\n";
  Printf.printf "  %-18s %12s %7s %9s\n" "policy" "first death" "deaths"
    "delivery";
  List.iter
    (fun (name, policy) ->
      let r =
        Core.Energy.run points ~radius:60. ~sink ~policy ~epochs:100
          ~battery:2e8 ~beta
      in
      Printf.printf "  %-18s %12s %7d %9.3f\n" name
        (match r.Core.Energy.first_death with
        | Some e -> string_of_int e
        | None -> "-")
        (List.length r.Core.Energy.deaths)
        (Core.Energy.delivery_ratio r))
    [
      ("static", Core.Energy.Static);
      ("rotate every 5", Core.Energy.Energy_aware 5);
    ]
